// Flights: using the Datalog layer end to end — parse a program,
// rewrite it with magic sets, and evaluate it on the generic engine.
// The query asks for "fare-balanced" round trips: city pairs reachable
// from the origin by an outbound path and a return path of the same
// number of hops, a canonical strongly linear query over a cyclic
// route network (cyclic data is what grounds the magic counting
// family; the pure counting rewrite diverges here).
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
	"magiccounting/internal/rewrite"
)

const network = `
% outbound(from, to) — directed flight legs; the network has cycles.
outbound(sfo, den).  outbound(den, ord).  outbound(ord, jfk).
outbound(jfk, ord).  outbound(ord, den).  outbound(den, aus).
outbound(aus, iah).  outbound(iah, mia).  outbound(sfo, lax).
outbound(lax, aus).

% inbound(from, to) — return legs flown by the partner airline.
inbound(mia, iah).  inbound(iah, aus).  inbound(aus, den).
inbound(den, sfo).  inbound(jfk, bos).  inbound(bos, jfk).
inbound(aus, lax).  inbound(lax, sfo).

% hub(city, city): every city pairs with itself at the turn-around.
hub(sfo, sfo). hub(den, den). hub(ord, ord). hub(jfk, jfk).
hub(aus, aus). hub(iah, iah). hub(mia, mia). hub(lax, lax).

% balanced(Out, Back): Back is reachable by as many inbound legs from
% the turn-around as outbound legs reached it.
balanced(X, Y) :- hub(X, Y).
balanced(X, Y) :- outbound(X, X1), balanced(X1, Y1), inbound(Y, Y1).

?- balanced(sfo, Y).
`

func main() {
	prog, err := datalog.Parse(network)
	if err != nil {
		log.Fatal(err)
	}
	goal := prog.Queries[0]

	// Generic engine with the magic-sets rewrite.
	rewritten, renamed, err := rewrite.MagicSetsForQuery(prog, goal)
	if err != nil {
		log.Fatal(err)
	}
	store := relation.NewStore()
	tuples, err := engine.Answers(rewritten, renamed, store, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var cities []string
	for _, t := range tuples {
		cities = append(cities, t[1].String())
	}
	fmt.Printf("balanced round-trip turnarounds from sfo: %s\n", strings.Join(cities, ", "))
	fmt.Printf("magic rewrite on the generic engine: %d tuple retrievals\n", store.Meter().Retrievals())

	// The counting rewrite diverges on this cyclic network — the
	// engine's guard reports it instead of hanging.
	counted, cgoal, err := rewrite.Counting(prog, goal)
	if err != nil {
		log.Fatal(err)
	}
	_, err = engine.Answers(counted, cgoal, relation.NewStore(), engine.Options{MaxIterations: 200})
	if errors.Is(err, engine.ErrIterationLimit) {
		fmt.Println("counting rewrite: diverges on the cyclic network (iteration guard tripped)")
	} else {
		log.Fatalf("expected divergence, got %v", err)
	}

	// The magic counting pipeline handles it: extract the core query,
	// split the route graph, and evaluate.
	q, _, err := rewrite.ExtractQuery(prog, goal)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.SolveMagicCounting(core.Recurring, core.Integrated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recurring/integrated magic counting: %d answers, %d tuple retrievals (|RM|=%d recurring cities)\n",
		len(res.Answers), res.Stats.Retrievals, res.Stats.RMSize)
}
