// Quickstart: the classic same-generation query on a small family
// tree, evaluated with the counting method, the magic set method, and
// a magic counting method — showing that they agree and what each one
// costs in tuple retrievals (the paper's cost unit).
package main

import (
	"fmt"
	"log"

	"magiccounting/internal/core"
)

func main() {
	// parent(child, parent): arcs go from a person to their parent.
	parent := []core.Pair{
		{From: "ann", To: "carl"}, {From: "ben", To: "carl"},
		{From: "carl", To: "ed"}, {From: "dora", To: "ed"},
		{From: "eve", To: "frank"}, {From: "frank", To: "ed"},
	}
	// Who is of the same generation as ann?
	q := core.SameGeneration(parent, "ann")

	counting, err := q.SolveCounting()
	if err != nil {
		log.Fatal(err)
	}
	magic, err := q.SolveMagic()
	if err != nil {
		log.Fatal(err)
	}
	mc, err := q.SolveMagicCounting(core.Multiple, core.Integrated)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same generation as ann:", counting.Answers)
	fmt.Printf("counting method:        %v\n", counting)
	fmt.Printf("magic set method:       %v\n", magic)
	fmt.Printf("magic counting (M/int): %v\n", mc)

	p := q.Params()
	fmt.Printf("magic graph: nL=%d mL=%d regular=%v cyclic=%v\n",
		p.NL, p.ML, p.Regular, p.Cyclic)
}
