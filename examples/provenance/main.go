// Provenance: inspecting *why* a magic counting method gives its
// answers. Explain narrates a run — magic-graph classification, the
// Step 1 partition, the Step 2 plan, and costs — and Witness produces
// the concrete Fact 2 path (k L-arcs, one E-arc, k R-arcs) behind any
// individual answer, machine-checkable with VerifyProof.
//
// The instance is the paper's own Figure 1 example in its cyclic
// variant (the added tuple ⟨a5, a2⟩ makes a2, a3, a5 recurring).
package main

import (
	"fmt"
	"log"
	"os"

	"magiccounting"
	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

func main() {
	q := workload.PaperFig1Cyclic()

	fmt.Println("=== explain: recurring / integrated on Figure 1 (cyclic variant) ===")
	if err := core.Explain(os.Stdout, q, magiccounting.Recurring, magiccounting.Integrated); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== witnesses ===")
	res, err := q.SolveMagicCounting(magiccounting.Recurring, magiccounting.Integrated)
	if err != nil {
		log.Fatal(err)
	}
	for _, answer := range res.Answers {
		proof, err := magiccounting.Witness(q, answer)
		if err != nil {
			log.Fatal(err)
		}
		if err := magiccounting.VerifyProof(q, proof); err != nil {
			log.Fatalf("proof for %s does not verify: %v", answer, err)
		}
		fmt.Printf("%-3s  k=%d  %s\n", answer, proof.K(), proof)
	}

	fmt.Println("\nnote the witness for b3: it needs the cyclic descent through the")
	fmt.Println("self-loop at b8 — the kind of path that breaks the counting method")
	fmt.Println("when it occurs on the L side, and that the paper's Figure 1 uses to")
	fmt.Println("show answers can ride cyclic R-side paths safely.")
}
