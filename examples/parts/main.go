// Parts: a bill-of-materials query where L and R genuinely differ.
// Two product lines share a component catalog; starting from one
// audited leaf component, the query asks which reference-design parts
// sit at the same assembly depth — the canonical query with
// L = part_of (audited), R = part_of (reference), and E = the
// cross-listing between the two catalogs. A size sweep shows the
// counting-family advantage growing on this regular workload: the
// magic set method materializes every same-depth part pair, the
// counting method only one depth index per part.
package main

import (
	"fmt"
	"log"

	"magiccounting/internal/core"
)

// buildBOM creates an assembly tree of the given fan-out and depth
// with part names under the given prefix, returning part_of pairs
// (component, containing assembly) — arcs point from a part up to its
// assembly — plus the total number of parts.
func buildBOM(prefix string, fanout, depth int) ([]core.Pair, int) {
	var pairs []core.Pair
	id := func(i int) string { return fmt.Sprintf("%s%d", prefix, i) }
	total := 0
	per := 1
	for d := 0; d < depth; d++ {
		total += per
		per *= fanout
	}
	for i := 0; i < total; i++ {
		for c := 0; c < fanout; c++ {
			child := fanout*i + c + 1
			pairs = append(pairs, core.Pair{From: id(child), To: id(i)})
		}
	}
	return pairs, total + per // internal nodes + leaves
}

// crossListing links shared subassemblies of the audited design to
// their reference counterparts (they use the same numbering).
func crossListing(parts int) []core.Pair {
	var pairs []core.Pair
	for i := 0; i < parts; i++ {
		if i%2 == 0 { // only even-numbered parts are shared
			pairs = append(pairs, core.Pair{
				From: fmt.Sprintf("audit%d", i),
				To:   fmt.Sprintf("ref%d", i),
			})
		}
	}
	return pairs
}

func main() {
	fmt.Println("depth  parts  answers  counting     magic    speedup")
	for depth := 4; depth <= 7; depth++ {
		audited, parts := buildBOM("audit", 2, depth)
		reference, _ := buildBOM("ref", 2, depth)
		q := core.Query{
			L:      audited,
			R:      reference,
			E:      crossListing(parts),
			Source: fmt.Sprintf("audit%d", parts-1), // a deep leaf component
		}
		c, err := q.SolveCounting()
		if err != nil {
			log.Fatal(err)
		}
		m, err := q.SolveMagic()
		if err != nil {
			log.Fatal(err)
		}
		mc, err := q.SolveMagicCounting(core.Recurring, core.Integrated)
		if err != nil {
			log.Fatal(err)
		}
		if len(c.Answers) != len(m.Answers) || len(mc.Answers) != len(m.Answers) {
			log.Fatalf("methods disagree at depth %d", depth)
		}
		fmt.Printf("%5d  %5d  %7d  %8d  %8d  %8.1fx\n",
			depth, parts, len(c.Answers),
			c.Stats.Retrievals, m.Stats.Retrievals,
			float64(m.Stats.Retrievals)/float64(c.Stats.Retrievals))
	}
	fmt.Println()
	fmt.Println("the widening gap is Table 1's regular row: Θ(mL + nL·mR) vs")
	fmt.Println("Θ(mL·mR); magic counting tracks the counting column while staying")
	fmt.Println("safe if a recycled part ever makes the containment graph cyclic.")
}
