// Genealogy: the paper's §3 motivation for magic counting, played out
// on data. A family database is logically acyclic, but nothing stops
// a bad load from inserting an "accidental cycle" — and checking
// acyclicity on every update is too expensive to do in practice. The
// counting method silently depends on there being no cycle; the magic
// counting methods keep counting's speed on the clean part of the
// data while surviving the corruption.
package main

import (
	"errors"
	"fmt"
	"log"

	"magiccounting/internal/core"
)

// family builds a clean multi-generation family: `gens` generations
// of `width` people, everyone's parent in the next generation.
func family(gens, width int) []core.Pair {
	person := func(g, i int) string { return fmt.Sprintf("p%d_%d", g, i) }
	var parent []core.Pair
	for g := 0; g+1 < gens; g++ {
		for i := 0; i < width; i++ {
			parent = append(parent, core.Pair{From: person(g, i), To: person(g+1, (i+g)%width)})
			if i%3 == 0 { // some people have a known second parent
				parent = append(parent, core.Pair{From: person(g, i), To: person(g+1, (i+g+1)%width)})
			}
		}
	}
	return parent
}

func main() {
	clean := family(8, 6)
	q := core.SameGeneration(clean, "p0_0")

	res, err := q.SolveCounting()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean database:  counting works: %v\n", res)

	// A bad import lists a great-grandparent as somebody's child:
	// p4_0 is an ancestor of p1_0 (via p2_1 and p3_3), so recording
	// p1_0 as p4_0's parent closes a cycle in the parent relation.
	corrupted := append(append([]core.Pair(nil), clean...),
		core.Pair{From: "p4_0", To: "p1_0"})
	qc := core.SameGeneration(corrupted, "p0_0")

	if _, err := qc.SolveCounting(); errors.Is(err, core.ErrUnsafe) {
		fmt.Println("corrupted database: counting method is UNSAFE (accidental cycle detected)")
	} else {
		log.Fatal("expected the counting method to be unsafe here")
	}

	// Every magic counting method still answers, and the recurring
	// method confines the magic-set slowdown to the cycle itself.
	for _, spec := range []struct {
		s core.Strategy
		m core.Mode
	}{
		{core.Basic, core.Integrated},
		{core.Single, core.Integrated},
		{core.Multiple, core.Integrated},
		{core.Recurring, core.Integrated},
	} {
		r, err := qc.SolveMagicCounting(spec.s, spec.m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corrupted database: %-9s/integrated: %d answers, %6d retrievals (|RM|=%d |RC|=%d)\n",
			spec.s, len(r.Answers), r.Stats.Retrievals, r.Stats.RMSize, r.Stats.RCSize)
	}

	magic, err := qc.SolveMagic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted database: magic set method:      %d answers, %6d retrievals\n",
		len(magic.Answers), magic.Stats.Retrievals)
}
