package magiccounting_test

import (
	"errors"
	"fmt"
	"os"

	"magiccounting"
)

// The classic same-generation query: who shares ann's generation?
func Example() {
	parent := []magiccounting.Pair{
		{From: "ann", To: "carl"}, {From: "ben", To: "carl"},
		{From: "carl", To: "ed"}, {From: "dora", To: "ed"},
	}
	q := magiccounting.SameGeneration(parent, "ann")
	res, err := q.SolveMagicCounting(magiccounting.Multiple, magiccounting.Integrated)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Answers)
	// Output: [ann ben]
}

// The counting method is fast but unsafe on cyclic data; the magic
// counting methods keep its speed where the data is clean and fall
// back to magic sets only where it is not.
func ExampleQuery_SolveCounting_unsafe() {
	q := magiccounting.SameGeneration([]magiccounting.Pair{
		{From: "a", To: "b"}, {From: "b", To: "a"}, // an accidental cycle
	}, "a")
	_, err := q.SolveCounting()
	fmt.Println(errors.Is(err, magiccounting.ErrUnsafe))

	res, err := q.SolveMagicCounting(magiccounting.Recurring, magiccounting.Integrated)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Answers)
	// Output:
	// true
	// [a]
}

// Params exposes the paper's query-graph measures, including the
// regularity test that decides whether counting alone is safe.
func ExampleQuery_Params() {
	q := magiccounting.SameGeneration([]magiccounting.Pair{
		{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "a", To: "c"},
	}, "a")
	p := q.Params()
	fmt.Println(p.Regular, p.Cyclic, p.NL, p.ML)
	// Output: false false 3 3
}

// Witness produces provenance: the concrete k-L-arcs / E / k-R-arcs
// path (Fact 2 of the paper) behind an answer.
func ExampleWitness() {
	q := magiccounting.Query{
		L:      []magiccounting.Pair{magiccounting.P("a", "b")},
		E:      []magiccounting.Pair{magiccounting.P("b", "y1")},
		R:      []magiccounting.Pair{magiccounting.P("y0", "y1")},
		Source: "a",
	}
	proof, err := magiccounting.Witness(q, "y0")
	if err != nil {
		panic(err)
	}
	fmt.Println(proof)
	fmt.Println(magiccounting.VerifyProof(q, proof))
	// Output:
	// L:[a b] E:(b,y1) R:[y1 y0]
	// <nil>
}

// ReducedSetsFor exposes the Step 1 partition each strategy computes,
// and CheckReducedSets validates the Theorem 1/2 conditions.
func ExampleQuery_ReducedSetsFor() {
	q := magiccounting.SameGeneration([]magiccounting.Pair{
		{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "a", To: "c"},
	}, "a")
	rs, names, err := q.ReducedSetsFor(magiccounting.Multiple, magiccounting.Independent, magiccounting.Options{})
	if err != nil {
		panic(err)
	}
	for v, inRM := range rs.RM {
		if inRM {
			fmt.Println("RM:", names[v])
		}
	}
	fmt.Println("conditions:", magiccounting.CheckReducedSets(q, rs, magiccounting.Independent))
	// Output:
	// RM: c
	// conditions: <nil>
}

// WriteMagicGraphDOT renders the classified magic graph for Graphviz.
func ExampleQuery_WriteMagicGraphDOT() {
	q := magiccounting.SameGeneration([]magiccounting.Pair{{From: "a", To: "b"}}, "a")
	_ = q.WriteMagicGraphDOT(os.Stdout)
	// Output:
	// digraph "magic_graph" {
	//   "a" [style=filled, fillcolor="palegreen", tooltip="single"];
	//   "b" [style=filled, fillcolor="palegreen", tooltip="single"];
	//   "a" -> "b";
	// }
}
