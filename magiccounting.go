// Package magiccounting is a from-scratch implementation of the query
// evaluation methods of Saccà & Zaniolo, "Magic Counting Methods"
// (SIGMOD 1987), together with the deductive-database substrate they
// run on: an in-memory relational store with tuple-retrieval cost
// accounting, a Datalog dialect with parser and stratified bottom-up
// engine, the magic-sets and counting program rewrites, and the full
// magic counting family — {basic, single, multiple, recurring} ×
// {independent, integrated} — for canonical strongly linear queries
//
//	?- P(a, Y).
//	P(X, Y) :- E(X, Y).
//	P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
//
// This package is the stable facade: it re-exports the core solver
// API so users need not reach into internal packages.
//
// Quick start:
//
//	q := magiccounting.SameGeneration(parentPairs, "ann")
//	res, err := q.SolveMagicCounting(magiccounting.Multiple, magiccounting.Integrated)
//
// See examples/ for runnable programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduction of the paper's
// tables and figures.
package magiccounting

import "magiccounting/internal/core"

// Pair is one fact of a binary database relation.
type Pair = core.Pair

// Query is an instance of the canonical strongly linear query class.
type Query = core.Query

// Result is a method's answer set with its cost statistics.
type Result = core.Result

// Stats carries a run's tuple-retrieval cost and set sizes.
type Stats = core.Stats

// GraphParams are the paper's §3 and §§7–9 query-graph measures.
type GraphParams = core.GraphParams

// Strategy selects the Step 1 reduced-set construction.
type Strategy = core.Strategy

// Mode selects independent (§4) or integrated (§5) evaluation.
type Mode = core.Mode

// Options tunes a magic counting run.
type Options = core.Options

// ReducedSets is the Step 1 partition (RM, RC) of the magic set.
type ReducedSets = core.ReducedSets

// The four reduced-set strategies of §§6–9.
const (
	Basic     = core.Basic
	Single    = core.Single
	Multiple  = core.Multiple
	Recurring = core.Recurring
)

// The two evaluation modes of §§4–5.
const (
	Independent = core.Independent
	Integrated  = core.Integrated
)

// ErrUnsafe reports that the pure counting method would not terminate
// on the given database (cyclic magic graph).
var ErrUnsafe = core.ErrUnsafe

// P constructs a Pair.
func P(from, to string) Pair { return core.P(from, to) }

// SameGeneration builds the classic instance: L = R = parent and E the
// identity on every person.
func SameGeneration(parent []Pair, source string) Query {
	return core.SameGeneration(parent, source)
}

// CheckReducedSets validates the Theorem 1/2 correctness conditions
// of a reduced-set pair against a query's true node classification.
func CheckReducedSets(q Query, rs *ReducedSets, mode Mode) error {
	return core.CheckReducedSets(q, rs, mode)
}

// Proof is provenance for one answer: the concrete Fact 2 path of k
// L arcs, one E arc, and k R arcs.
type Proof = core.Proof

// Witness returns a minimal-length proof that answer belongs to the
// query's answer set, or an error if it does not.
func Witness(q Query, answer string) (*Proof, error) { return core.Witness(q, answer) }

// VerifyProof checks a proof against the database relations.
func VerifyProof(q Query, p *Proof) error { return core.VerifyProof(q, p) }

// SolveWithReducedSets evaluates the query with caller-supplied
// reduced sets, bypassing Step 1 — the tool for probing the exact
// correctness boundary of Theorems 1 and 2.
func SolveWithReducedSets(q Query, rs *ReducedSets, mode Mode) (*Result, error) {
	return core.SolveWithReducedSets(q, rs, mode)
}

// Regime is the database regime of Figure 3: regular, acyclic, or
// cyclic, as determined by the magic graph reachable from the source.
type Regime = core.Regime

// Selection is an automatically chosen method with its justification.
type Selection = core.Selection

// The three Figure 3 regimes.
const (
	RegimeRegular = core.RegimeRegular
	RegimeAcyclic = core.RegimeAcyclic
	RegimeCyclic  = core.RegimeCyclic
)

// ChooseMethod picks the magic counting method Figure 3's efficiency
// hierarchy ranks best for the query's regime. Queries also support
// cancellation: q.SolveMagicCountingCtx(ctx, strategy, mode) (or
// Options.Ctx) stops a run promptly when ctx is done, and internal/
// server plus cmd/mcserved build a concurrent query service on top.
func ChooseMethod(q Query) Selection { return core.ChooseMethod(q) }
