package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProgram = `
up(a, b). up(b, c). up(x, b). up(y, c).
person(a). person(b). person(c). person(x). person(y).
sg(X, Y) :- person(X), X = Y.
sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).
?- sg(a, Y).
`

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.dl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runMCQ(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestAllMethodsAgreeOnSample(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	want := "a\nx\n"
	methods := []string{
		"naive", "seminaive", "magic-rewrite", "counting-rewrite",
		"magic", "counting", "mc-basic-ind", "mc-multiple-int",
		"mc-recurring-scc", "mc-single-int-rewrite", "mc-recurring-ind-rewrite",
	}
	for _, m := range methods {
		out, err := runMCQ(t, "-method", m, path)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if out != want {
			t.Fatalf("%s output = %q, want %q", m, out, want)
		}
	}
}

func TestStatsFlag(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	out, err := runMCQ(t, "-method", "mc-multiple-int", "-stats", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuple retrievals") || !strings.Contains(out, "|MS|=") {
		t.Fatalf("stats missing: %q", out)
	}
	out, err = runMCQ(t, "-method", "seminaive", "-stats", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuple retrievals") {
		t.Fatalf("engine stats missing: %q", out)
	}
}

func TestCyclicCountingReportsUnsafe(t *testing.T) {
	cyclic := `
up(a, b). up(b, a).
person(a). person(b).
sg(X, Y) :- person(X), X = Y.
sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).
?- sg(a, Y).
`
	path := writeProgram(t, cyclic)
	if _, err := runMCQ(t, "-method", "counting", path); err == nil {
		t.Fatal("counting on cyclic data should fail")
	}
	out, err := runMCQ(t, "-method", "mc-recurring-int", path)
	if err != nil {
		t.Fatal(err)
	}
	// On the 2-cycle, b is only ever at odd distance from a, so the
	// answer is a alone (same-generation parity).
	if out != "a\n" {
		t.Fatalf("answers = %q", out)
	}
}

func TestCountingRewriteGuardTrips(t *testing.T) {
	cyclic := `
up(a, b). up(b, a).
person(a). person(b).
sg(X, Y) :- person(X), X = Y.
sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).
?- sg(a, Y).
`
	path := writeProgram(t, cyclic)
	if _, err := runMCQ(t, "-method", "counting-rewrite", "-max-iterations", "50", path); err == nil {
		t.Fatal("counting rewrite should trip the guard")
	}
}

func TestRightLinearQueryCanonicalizesForCoreMethods(t *testing.T) {
	tc := `
e(a, b). e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
`
	path := writeProgram(t, tc)
	out, err := runMCQ(t, "-method", "magic-rewrite", path)
	if err != nil {
		t.Fatal(err)
	}
	if out != "b\nc\n" {
		t.Fatalf("answers = %q", out)
	}
	// Transitive closure is right-linear: Canonicalize makes it
	// acceptable to the core solvers too.
	out, err = runMCQ(t, "-method", "magic", path)
	if err != nil {
		t.Fatal(err)
	}
	if out != "b\nc\n" {
		t.Fatalf("core magic answers = %q", out)
	}
}

func TestOutOfClassQueryRejectedByCoreMethods(t *testing.T) {
	nonlinear := `
e(a, b). e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
?- tc(a, Y).
`
	path := writeProgram(t, nonlinear)
	// The generic engine handles it fine.
	out, err := runMCQ(t, "-method", "seminaive", path)
	if err != nil {
		t.Fatal(err)
	}
	if out != "b\nc\n" {
		t.Fatalf("answers = %q", out)
	}
	// The core solvers are defined for the linear class only.
	if _, err := runMCQ(t, "-method", "counting", path); err == nil {
		t.Fatal("core method on nonlinear program should fail")
	}
}

func TestMultipleFilesConcatenate(t *testing.T) {
	rules := writeProgram(t, `
sg(X, Y) :- person(X), X = Y.
sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).
?- sg(a, Y).
`)
	facts := writeProgram(t, `
up(a, b). up(x, b).
person(a). person(b). person(x).
`)
	out, err := runMCQ(t, "-method", "mc-single-int", rules, facts)
	if err != nil {
		t.Fatal(err)
	}
	if out != "a\nx\n" {
		t.Fatalf("answers = %q", out)
	}
}

func TestExplainFlag(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	out, err := runMCQ(t, "-explain", "multiple-int", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy=multiple mode=integrated", "step 1", "answers:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in explain output:\n%s", want, out)
		}
	}
	if _, err := runMCQ(t, "-explain", "bogus-int", path); err == nil {
		t.Fatal("bad explain spec should fail")
	}
}

func TestErrors(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	cases := [][]string{
		{path, "extra"},                       // too many args
		{"-method", "nosuch", path},           // unknown method
		{"-method", "mc-bogus-int", path},     // bad mc name handled by registry
		{"-method", "mc-x-rewrite", path},     // malformed rewrite name
		{"-method", "mc-x-y-z-rewrite", path}, // malformed rewrite name
		{filepath.Join(t.TempDir(), "missing.dl")},
	}
	for _, args := range cases {
		if _, err := runMCQ(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	noQuery := writeProgram(t, `e(a, b).`)
	if _, err := runMCQ(t, noQuery); err == nil {
		t.Error("program without query should fail")
	}
	badSyntax := writeProgram(t, `e(a, b`)
	if _, err := runMCQ(t, badSyntax); err == nil {
		t.Error("bad syntax should fail")
	}
}

func TestParseMCName(t *testing.T) {
	good := map[string][2]string{
		"mc-basic-ind":     {"basic", "independent"},
		"mc-single-int":    {"single", "integrated"},
		"mc-multiple-ind":  {"multiple", "independent"},
		"mc-recurring-int": {"recurring", "integrated"},
	}
	for name, want := range good {
		s, m, err := parseMCName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.String() != want[0] || m.String() != want[1] {
			t.Fatalf("%s = %v/%v", name, s, m)
		}
	}
	for _, bad := range []string{"mc-basic", "xx-basic-ind", "mc-basic-sideways", "mc-bogus-ind"} {
		if _, _, err := parseMCName(bad); err == nil {
			t.Errorf("%s should fail", bad)
		}
	}
}

// TestTraceFlagCoreMethod: -trace prints the span tree after the
// answers, with the stage spans and exact retrieval accounting the
// core solver records.
func TestTraceFlagCoreMethod(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	out, err := runMCQ(t, "-method", "mc-multiple-int", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "a\nx\n") {
		t.Fatalf("answers missing or reordered: %q", out)
	}
	for _, want := range []string{"mc-multiple-int", "step1/multiple", "step2/integrated", "retrievals="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceFlagEngineMethod: the engine paths trace too, with
// stratum and round spans.
func TestTraceFlagEngineMethod(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	out, err := runMCQ(t, "-method", "seminaive", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seminaive", "load", "stratum/0", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("engine trace missing %q:\n%s", want, out)
		}
	}
}

// TestTraceFlagUnsupported: methods without an options entry point
// refuse -trace instead of silently ignoring it. ("naive" is not
// here: mcq routes it to the engine evaluator, which traces.)
func TestTraceFlagUnsupported(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	if _, err := runMCQ(t, "-method", "magic", "-trace", path); err == nil ||
		!strings.Contains(err.Error(), "does not support tracing") {
		t.Errorf("magic -trace: err = %v, want unsupported-tracing error", err)
	}
}

func TestSourcesFlag(t *testing.T) {
	path := writeProgram(t, sampleProgram)
	out, err := runMCQ(t, "-method", "mc-multiple-int", "-sources", "a,x,ghost", path)
	if err != nil {
		t.Fatal(err)
	}
	// a and x are same-generation peers; ghost occurs in no relation,
	// so it has no identity fact and answers nothing — the
	// virtual-source bind path.
	want := "-- source a\na\nx\n-- source x\na\nx\n-- source ghost\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	// Per-source answers match the single-source path.
	single, err := runMCQ(t, "-method", "mc-multiple-int", path)
	if err != nil {
		t.Fatal(err)
	}
	if single != "a\nx\n" {
		t.Fatalf("single-source output = %q", single)
	}
	// Engine methods cannot batch; the error names the core methods.
	if _, err := runMCQ(t, "-method", "seminaive", "-sources", "a,b", path); err == nil {
		t.Fatal("seminaive -sources succeeded, want error")
	}
	if _, err := runMCQ(t, "-method", "mc-basic-int", "-sources", "a,,b", path); err == nil {
		t.Fatal("empty source accepted, want error")
	}
}
