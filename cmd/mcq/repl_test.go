package main

import (
	"bytes"
	"strings"
	"testing"
)

func runREPL(t *testing.T, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := repl(strings.NewReader(script), &out, "seminaive", 1000); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLFactsRulesAndQuery(t *testing.T) {
	out := runREPL(t, `
e(a, b).
e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
:quit
`)
	for _, want := range []string{"b", "c", "bye"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestREPLMultilineClause(t *testing.T) {
	out := runREPL(t, `
tc(X, Y) :-
    e(X, Z),
    tc(Z, Y).
tc(X, Y) :- e(X, Y).
e(a, b).
?- tc(a, Y).
:quit
`)
	if !strings.Contains(out, "b\n") {
		t.Fatalf("multiline rule lost:\n%s", out)
	}
}

func TestREPLMethodSwitchAndClassify(t *testing.T) {
	out := runREPL(t, `
l(a, b). l(b, c). l(c, a).
e0(a, hit).
p(X, Y) :- e0(X, Y).
p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).
:method mc-recurring-int
?- p(a, Y).
:classify p(a,Y)
:quit
`)
	if !strings.Contains(out, "method set to mc-recurring-int") {
		t.Fatalf("method switch missing:\n%s", out)
	}
	if !strings.Contains(out, "hit") {
		t.Fatalf("answer missing:\n%s", out)
	}
	if !strings.Contains(out, "cyclic=true") {
		t.Fatalf("classify missing:\n%s", out)
	}
}

func TestREPLListClearHelpAndErrors(t *testing.T) {
	out := runREPL(t, `
e(a, b).
:list
:clear
:list
:help
:nosuch
:method
e(a, b
?- undefined_pred(X).
:quit
`)
	if !strings.Contains(out, "e(a, b).") {
		t.Fatalf(":list missing fact:\n%s", out)
	}
	if !strings.Contains(out, "cleared") || !strings.Contains(out, "unknown directive") {
		t.Fatalf("directives misbehaved:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("parse error not surfaced:\n%s", out)
	}
}

func TestREPLQueryDoesNotPolluteSession(t *testing.T) {
	// Run the same query twice; answers must not duplicate or change
	// (evaluation happens on a snapshot).
	out := runREPL(t, `
e(a, b).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
?- tc(a, Y).
:quit
`)
	if strings.Count(out, "b\n") != 2 {
		t.Fatalf("want exactly one answer line per query:\n%s", out)
	}
}

func TestREPLCommentDoesNotHideTerminator(t *testing.T) {
	out := runREPL(t, `
e(a, b). % trailing comment
?- e(a, Y).
:quit
`)
	if !strings.Contains(out, "b\n") {
		t.Fatalf("comment swallowed the clause:\n%s", out)
	}
}

func TestInteractiveFlagRejectsFileArg(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-i", "somefile.dl"}, &buf); err == nil {
		t.Fatal("interactive mode with file should fail")
	}
}
