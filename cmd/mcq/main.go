// Command mcq evaluates a Datalog query file with a selectable
// method: the generic naive/seminaive engine, the magic-sets or
// counting rewrites, or — for canonical strongly linear queries — any
// member of the magic counting family, run either on the specialized
// core solver or as a rewritten program on the generic engine.
//
// Usage:
//
//	mcq [flags] program.dl
//
// The program file holds facts, rules, and one ?- query. Example:
//
//	up(a, b). up(b, c).
//	sg(X, Y) :- person(X), X = Y.
//	sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).
//	?- sg(a, Y).
//
// With -sources a,b,c the program's relations compile once and each
// listed constant solves against the shared compiled instance in turn
// (core methods only).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/harness"
	"magiccounting/internal/obs"
	"magiccounting/internal/relation"
	"magiccounting/internal/rewrite"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcq:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcq", flag.ContinueOnError)
	method := fs.String("method", "seminaive",
		"evaluation method: naive, seminaive, magic-rewrite, counting-rewrite,\n"+
			"any core method ("+strings.Join(harness.MethodNames(), ", ")+"),\n"+
			"or mc-<strategy>-<mode>-rewrite to run magic counting on the generic engine")
	showStats := fs.Bool("stats", false, "print cost statistics")
	showTrace := fs.Bool("trace", false, "print the per-stage span tree (durations and tuple retrievals) after the answers")
	maxIter := fs.Int("max-iterations", engine.DefaultMaxIterations, "fixpoint iteration guard")
	interactive := fs.Bool("i", false, "interactive session (reads clauses and queries from stdin)")
	sources := fs.String("sources", "", "comma-separated bound constants replacing the query's: the database\ncompiles once and every source solves against the shared instance\n(core methods only)")
	explain := fs.String("explain", "", "explain a magic counting run instead of just answering: <strategy>-<mode>, e.g. multiple-int")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interactive {
		if fs.NArg() != 0 {
			return fmt.Errorf("interactive mode takes no file argument")
		}
		if *showTrace {
			return fmt.Errorf("-trace is not available in interactive mode")
		}
		if *sources != "" {
			return fmt.Errorf("-sources is not available in interactive mode")
		}
		return repl(os.Stdin, out, *method, *maxIter)
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("expected at least one program file")
	}
	// Several files concatenate: rules in one, generated facts in
	// another (see cmd/graphgen).
	prog := &datalog.Program{}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		chunk, err := datalog.Parse(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		prog.Facts = append(prog.Facts, chunk.Facts...)
		prog.Rules = append(prog.Rules, chunk.Rules...)
		prog.Queries = append(prog.Queries, chunk.Queries...)
	}
	if len(prog.Queries) != 1 {
		return fmt.Errorf("program must contain exactly one ?- query, found %d", len(prog.Queries))
	}
	goal := prog.Queries[0]
	if *sources != "" {
		if *explain != "" || *showTrace {
			return fmt.Errorf("-sources cannot be combined with -explain or -trace")
		}
		return evaluateSources(prog, goal, *method, strings.Split(*sources, ","), *showStats, out)
	}
	if *explain != "" {
		strategy, mode, err := parseMCName("mc-" + *explain)
		if err != nil {
			return err
		}
		q, _, err := rewrite.ExtractQuery(prog, goal)
		if err != nil {
			return err
		}
		return core.Explain(out, q, strategy, mode)
	}
	return evaluate(prog, goal, *method, *showStats, *showTrace, *maxIter, out)
}

func evaluate(prog *datalog.Program, goal datalog.Atom, method string, showStats, showTrace bool, maxIter int, out io.Writer) error {
	opts := engine.Options{MaxIterations: maxIter}
	// engineRun attaches the trace only on engine paths: the core
	// branch below builds its own trace, and a second one allocated up
	// front would be dead there (and ambiguous about which is printed).
	engineRun := func(p *datalog.Program, g datalog.Atom) error {
		if showTrace {
			opts.Trace = obs.New(method, 0)
		}
		return runEngine(p, g, opts, showStats, out)
	}
	switch {
	case method == "naive" || method == "seminaive":
		opts.Naive = method == "naive"
		return engineRun(prog, goal)
	case method == "magic-rewrite":
		rewritten, renamed, err := rewrite.MagicSetsForQuery(prog, goal)
		if err != nil {
			return err
		}
		return engineRun(rewritten, renamed)
	case method == "counting-rewrite":
		rewritten, renamed, err := rewrite.Counting(prog, goal)
		if err != nil {
			return err
		}
		return engineRun(rewritten, renamed)
	case strings.HasPrefix(method, "mc-") && strings.HasSuffix(method, "-rewrite"):
		strategy, mode, err := parseMCName(strings.TrimSuffix(method, "-rewrite"))
		if err != nil {
			return err
		}
		rewritten, renamed, err := rewrite.MCProgram(prog, goal, strategy, mode)
		if err != nil {
			return err
		}
		return engineRun(rewritten, renamed)
	default:
		def, ok := harness.MethodByName(method)
		if !ok {
			return fmt.Errorf("unknown method %q", method)
		}
		q, _, err := rewrite.ExtractQuery(prog, goal)
		if err != nil {
			return fmt.Errorf("method %s needs a canonical strongly linear query: %w", method, err)
		}
		var res *core.Result
		var tr *obs.Trace
		if showTrace {
			if def.RunOpts == nil {
				return fmt.Errorf("method %q does not support tracing", method)
			}
			tr = obs.New(method, 0)
			res, err = def.RunOpts(q, core.Options{Trace: tr})
		} else {
			res, err = def.Run(q)
		}
		if err != nil {
			return err
		}
		for _, a := range res.Answers {
			fmt.Fprintln(out, a)
		}
		if showStats {
			fmt.Fprintf(out, "-- %d answers, %d tuple retrievals, %d iterations\n",
				len(res.Answers), res.Stats.Retrievals, res.Stats.Iterations)
			if res.Stats.MagicSetSize > 0 {
				fmt.Fprintf(out, "-- |MS|=%d |RM|=%d |RC|=%d regular=%v\n",
					res.Stats.MagicSetSize, res.Stats.RMSize, res.Stats.RCSize, res.Stats.Regular)
			}
		}
		if tr != nil {
			return obs.WriteText(out, tr.Finish(res.Stats.Retrievals))
		}
		return nil
	}
}

// evaluateSources is the batch path behind -sources: the program's
// relations compile once and every requested source binds against the
// shared instance — the CLI counterpart of the server's batch
// endpoint. Core methods only: the engine and rewrite methods
// re-evaluate a whole program per goal, so there is nothing to share.
func evaluateSources(prog *datalog.Program, goal datalog.Atom, method string, sources []string, showStats bool, out io.Writer) error {
	def, ok := harness.MethodByName(method)
	if !ok || def.RunC == nil {
		return fmt.Errorf("-sources requires a core method (one of %s)", strings.Join(harness.MethodNames(), ", "))
	}
	q, _, err := rewrite.ExtractQuery(prog, goal)
	if err != nil {
		return fmt.Errorf("method %s needs a canonical strongly linear query: %w", method, err)
	}
	c := core.Compile(q.L, q.E, q.R)
	for _, src := range sources {
		src = strings.TrimSpace(src)
		if src == "" {
			return fmt.Errorf("empty source in -sources")
		}
		res, err := def.RunC(c, src, core.Options{})
		if err != nil {
			return fmt.Errorf("source %s: %w", src, err)
		}
		fmt.Fprintf(out, "-- source %s\n", src)
		for _, a := range res.Answers {
			fmt.Fprintln(out, a)
		}
		if showStats {
			fmt.Fprintf(out, "-- %d answers, %d tuple retrievals, %d iterations\n",
				len(res.Answers), res.Stats.Retrievals, res.Stats.Iterations)
		}
	}
	return nil
}

func runEngine(prog *datalog.Program, goal datalog.Atom, opts engine.Options, showStats bool, out io.Writer) error {
	store := relation.NewStore()
	tuples, err := engine.Answers(prog, goal, store, opts)
	if err != nil {
		return err
	}
	// Print the bindings of the goal's free positions.
	var free []int
	for i, a := range goal.Args {
		if a.IsVar() {
			free = append(free, i)
		}
	}
	seen := map[string]bool{}
	for _, t := range tuples {
		parts := make([]string, len(free))
		for i, f := range free {
			parts[i] = t[f].String()
		}
		line := strings.Join(parts, "\t")
		if !seen[line] {
			seen[line] = true
			fmt.Fprintln(out, line)
		}
	}
	if showStats {
		fmt.Fprintf(out, "-- %d answers, %d tuple retrievals\n", len(seen), store.Meter().Retrievals())
	}
	if opts.Trace != nil {
		return obs.WriteText(out, opts.Trace.Finish(store.Meter().Retrievals()))
	}
	return nil
}

func parseMCName(name string) (core.Strategy, core.Mode, error) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 || parts[0] != "mc" {
		return 0, 0, fmt.Errorf("bad magic counting method name %q (want mc-<strategy>-<mode>)", name)
	}
	var s core.Strategy
	switch parts[1] {
	case "basic":
		s = core.Basic
	case "single":
		s = core.Single
	case "multiple":
		s = core.Multiple
	case "recurring":
		s = core.Recurring
	default:
		return 0, 0, fmt.Errorf("unknown strategy %q", parts[1])
	}
	switch parts[2] {
	case "ind":
		return s, core.Independent, nil
	case "int":
		return s, core.Integrated, nil
	default:
		return 0, 0, fmt.Errorf("unknown mode %q", parts[2])
	}
}
