package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"magiccounting/internal/datalog"
	"magiccounting/internal/rewrite"
)

// repl runs the interactive session: facts and rules accumulate,
// queries evaluate immediately. Directives:
//
//	?- goal.            evaluate goal with the current method
//	:method NAME        switch evaluation method
//	:list               print the accumulated program
//	:clear              drop all facts and rules
//	:help               show directives
//	:quit               leave
//
// Clauses may span lines; input is buffered until a terminating '.'.
func repl(in io.Reader, out io.Writer, method string, maxIter int) error {
	prog := &datalog.Program{}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Fprintln(out, "magic counting repl — :help for directives")
	var pending strings.Builder
	prompt := func() { fmt.Fprint(out, "mcq> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if done := directive(trimmed, &prog, &method, out); done {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(strings.TrimRight(stripComment(line), " \t"), ".") {
			continue // clause not finished yet
		}
		text := pending.String()
		pending.Reset()
		chunk, err := datalog.Parse(text)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			prompt()
			continue
		}
		prog.Facts = append(prog.Facts, chunk.Facts...)
		prog.Rules = append(prog.Rules, chunk.Rules...)
		for _, goal := range chunk.Queries {
			// Evaluate on a copy so queries never pollute the session.
			snapshot := &datalog.Program{Facts: prog.Facts, Rules: prog.Rules}
			if err := evaluate(snapshot, goal, method, true, false, maxIter, out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
		prompt()
	}
	return scanner.Err()
}

// stripComment removes a trailing %- or //-comment so clause
// termination detection sees the real last token.
func stripComment(line string) string {
	if i := strings.Index(line, "%"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

// directive handles a :command; it reports whether the session ends.
func directive(cmd string, prog **datalog.Program, method *string, out io.Writer) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		fmt.Fprintln(out, "bye")
		return true
	case ":help":
		fmt.Fprintln(out, "  fact.                add a fact          ?- goal.   run a query")
		fmt.Fprintln(out, "  head :- body.        add a rule")
		fmt.Fprintln(out, "  :method NAME         switch method (current:", *method+")")
		fmt.Fprintln(out, "  :list  :clear  :classify  :quit")
	case ":method":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: :method NAME")
			break
		}
		*method = fields[1]
		fmt.Fprintln(out, "method set to", *method)
	case ":list":
		fmt.Fprint(out, (*prog).String())
	case ":clear":
		*prog = &datalog.Program{}
		fmt.Fprintln(out, "cleared")
	case ":classify":
		// Classify the magic graph of the last query's predicate, if
		// the program is canonical.
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: :classify goalAtom   e.g. :classify p(a,Y)")
			break
		}
		sub, err := datalog.Parse("?- " + fields[1] + ".")
		if err != nil || len(sub.Queries) != 1 {
			fmt.Fprintln(out, "error: cannot parse goal")
			break
		}
		q, _, err := rewrite.ExtractQuery(*prog, sub.Queries[0])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		p := q.Params()
		fmt.Fprintf(out, "magic graph: nL=%d mL=%d regular=%v cyclic=%v i_x=%d singles=%d multiples=%d\n",
			p.NL, p.ML, p.Regular, p.Cyclic, p.IX, p.NS, p.NM-p.NS)
	default:
		fmt.Fprintln(out, "unknown directive", fields[0], "- try :help")
	}
	return false
}
