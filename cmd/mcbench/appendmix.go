package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"magiccounting/internal/core"
)

// appendmixResult is the -appendmix probe record, embedded into
// BENCH_*.json under "appendmix": the amortized compile cost of an
// append-heavy mixed workload with full recompilation per append
// versus delta compilation (core.Extend), over the identical seeded
// append sequence.
type appendmixResult struct {
	// BaseFacts is the size of the pre-loaded database (total pairs);
	// Appends the number of append steps replayed on top of it.
	BaseFacts int `json:"base_facts"`
	Appends   int `json:"appends"`
	// AppendedFacts is the total pairs the append sequence carried
	// (duplicates included — the mix deliberately re-sends facts);
	// FinalFacts is the deduplicated arc count of the end-state
	// artifact. Together they size the probe: a speedup claim without
	// them says nothing about how much data it was measured over.
	AppendedFacts int `json:"appended_facts"`
	FinalFacts    int `json:"final_facts"`
	// FullNsPerAppend and DeltaNsPerAppend are the amortized compile
	// cost per append (fastest of -benchrounds rounds) for the two
	// maintenance policies.
	FullNsPerAppend  float64 `json:"full_ns_per_append"`
	DeltaNsPerAppend float64 `json:"delta_ns_per_append"`
	// Speedup is FullNsPerAppend / DeltaNsPerAppend.
	Speedup float64 `json:"speedup"`
	// OracleQueries counts the per-step query comparisons between the
	// two artifacts; Divergence the ones that disagreed (must be 0).
	// StructChecks counts the StructuralEqual audits (all must pass to
	// get here — a failure aborts the probe).
	OracleQueries int `json:"oracle_queries"`
	Divergence    int `json:"divergence"`
	StructChecks  int `json:"struct_checks"`
	// FlattenNs is the cost of collapsing the end-state Extend chain
	// into a self-contained artifact (core.Flatten) — the operation the
	// serving layer's retention policy pays when a chain hits its cap.
	// ChainBytes and FlatBytes are the ResidentBytes estimates before
	// and after, the memory the collapse reclaims.
	FlattenNs  int64 `json:"flatten_ns"`
	ChainBytes int64 `json:"chain_bytes"`
	FlatBytes  int64 `json:"flat_bytes"`
}

// appendmixStep is one append of the seeded mix: mostly fresh chain
// links (growing the symbol tables), with periodic arcs back into the
// existing region (re-laying already-populated rows, the
// copy-on-write path) and periodic duplicates (the dedupe path).
func appendmixStep(rng *rand.Rand, step, base int) (dL, dE, dR []core.Pair) {
	n := func(j int) string { return fmt.Sprintf("m%d", j) }
	cur := base + step
	dL = []core.Pair{{From: n(cur), To: n(cur + 1)}}
	dE = []core.Pair{{From: n(cur), To: n(cur)}}
	dR = []core.Pair{{From: n(cur), To: n(cur + 1)}}
	if step%3 == 0 {
		// Arc into the settled region: the target row already has arcs.
		old := rng.Intn(base)
		dL = append(dL, core.Pair{From: n(old), To: n(cur)})
		dR = append(dR, core.Pair{From: n(old), To: n(cur)})
	}
	if step%5 == 0 {
		// Re-send an existing fact: must dedupe to nothing.
		old := rng.Intn(base)
		dL = append(dL, core.Pair{From: n(old), To: n(old + 1)})
	}
	return dL, dE, dR
}

// runAppendmixProbe replays the same seeded append+query mix twice —
// full recompile per append versus delta compilation — timing only
// the artifact maintenance, and cross-checks the two paths: every
// few steps both artifacts answer a probe query set (sorted answers
// and stats must match exactly) and periodically the artifacts are
// audited with StructuralEqual. The timed section is repeated rounds
// times and the fastest round kept, the micro-benchmark convention.
func runAppendmixProbe(base, appends, rounds int, out io.Writer) (*appendmixResult, error) {
	if base < 100 {
		base = 100
	}
	if appends < 10 {
		appends = 10
	}
	if rounds < 1 {
		rounds = 1
	}
	// Seeded base: a chain with identity E facts, the same shape the
	// recovery probe commits, so the compiled CSR has base rows to
	// alias.
	n := func(j int) string { return fmt.Sprintf("m%d", j) }
	var l, e, r []core.Pair
	for i := 0; i < base/3; i++ {
		l = append(l, core.Pair{From: n(i), To: n(i + 1)})
		e = append(e, core.Pair{From: n(i), To: n(i)})
		r = append(r, core.Pair{From: n(i), To: n(i + 1)})
	}
	baseN := base / 3
	res := &appendmixResult{BaseFacts: len(l) + len(e) + len(r), Appends: appends}

	// Pre-generate the append sequence once so every round and both
	// policies replay the identical deltas.
	type delta struct{ dL, dE, dR []core.Pair }
	rng := rand.New(rand.NewSource(20260808))
	steps := make([]delta, appends)
	for i := range steps {
		dL, dE, dR := appendmixStep(rng, i, baseN)
		steps[i] = delta{dL, dE, dR}
		res.AppendedFacts += len(dL) + len(dE) + len(dR)
	}

	fullBest, deltaBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		// Full-recompile policy: every append pays Compile over the
		// whole database, the PR-5 behavior under mixed traffic.
		fl := append([]core.Pair(nil), l...)
		fe := append([]core.Pair(nil), e...)
		fr := append([]core.Pair(nil), r...)
		var fullComp *core.Compiled
		var fullTime time.Duration
		for _, d := range steps {
			fl = append(fl, d.dL...)
			fe = append(fe, d.dE...)
			fr = append(fr, d.dR...)
			start := time.Now()
			fullComp = core.Compile(fl, fe, fr)
			fullTime += time.Since(start)
		}

		// Delta policy: one cold compile of the base (untimed — the
		// serving layer pays it once per artifact lifetime, on the
		// first query), then every append extends.
		deltaComp := core.Compile(l, e, r)
		var deltaTime time.Duration
		for _, d := range steps {
			start := time.Now()
			deltaComp = deltaComp.Extend(d.dL, d.dE, d.dR)
			deltaTime += time.Since(start)
		}

		if fullTime < fullBest {
			fullBest = fullTime
		}
		if deltaTime < deltaBest {
			deltaBest = deltaTime
		}

		// Oracle pass (first round only — the artifacts are
		// deterministic across rounds): the two end-state artifacts
		// must agree structurally and on every probe query.
		if round == 0 {
			if err := deltaComp.StructuralEqual(fullComp); err != nil {
				return nil, fmt.Errorf("appendmix: delta artifact diverges after %d appends: %w", appends, err)
			}
			res.StructChecks++
			al, ae, ar := fullComp.Arcs()
			res.FinalFacts = al + ae + ar

			// Flatten probe: collapsing the full Extend chain must yield
			// an artifact structurally identical to the cold recompile,
			// and its timing and the before/after memory estimates size
			// the retention policy's collapse cost.
			res.ChainBytes = deltaComp.ResidentBytes()
			start := time.Now()
			flat := deltaComp.Flatten()
			res.FlattenNs = time.Since(start).Nanoseconds()
			res.FlatBytes = flat.ResidentBytes()
			if err := flat.StructuralEqual(fullComp); err != nil {
				return nil, fmt.Errorf("appendmix: flattened artifact diverges after %d appends: %w", appends, err)
			}
			res.StructChecks++
			sources := []string{n(0), n(baseN / 2), n(baseN + appends/2), n(baseN + appends), "absent-from-mix"}
			for _, src := range sources {
				for _, s := range []core.Strategy{core.Basic, core.Multiple, core.Recurring} {
					want, werr := fullComp.Solve(src, s, core.Integrated, core.Options{})
					got, gerr := deltaComp.Solve(src, s, core.Integrated, core.Options{})
					res.OracleQueries++
					if (werr == nil) != (gerr == nil) ||
						(werr == nil && (fmt.Sprint(want.Answers) != fmt.Sprint(got.Answers) || want.Stats != got.Stats)) {
						res.Divergence++
					}
				}
			}
			if res.Divergence > 0 {
				return nil, fmt.Errorf("appendmix: %d of %d oracle queries diverged between full and delta artifacts", res.Divergence, res.OracleQueries)
			}
		}
	}

	res.FullNsPerAppend = float64(fullBest.Nanoseconds()) / float64(appends)
	res.DeltaNsPerAppend = float64(deltaBest.Nanoseconds()) / float64(appends)
	if deltaBest > 0 {
		res.Speedup = float64(fullBest) / float64(deltaBest)
	}

	fmt.Fprintf(out, "appendmix probe: %d base facts, %d appends (%d pairs, final %d), %d oracle queries (0 divergent)\n",
		res.BaseFacts, res.Appends, res.AppendedFacts, res.FinalFacts, res.OracleQueries)
	fmt.Fprintf(out, "  full recompile: %12.0f ns/append\n", res.FullNsPerAppend)
	fmt.Fprintf(out, "  delta compile:  %12.0f ns/append\n", res.DeltaNsPerAppend)
	fmt.Fprintf(out, "  speedup:        %12.2fx\n", res.Speedup)
	fmt.Fprintf(out, "  flatten:        %12d ns (chain %d B -> flat %d B)\n", res.FlattenNs, res.ChainBytes, res.FlatBytes)
	return res, nil
}
