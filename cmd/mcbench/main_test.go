package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "tab2", "-sizes", "8,16"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "mc-basic-ind") {
		t.Fatalf("output incomplete:\n%s", out)
	}
}

func TestAllExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "8,12"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 5", "Figure 1", "Figure 2", "Figure 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in output", want)
		}
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig2", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 2") {
		t.Fatalf("file content wrong: %s", data)
	}
	if buf.Len() != 0 {
		t.Fatal("stdout should be empty when -o is used")
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig2", "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"id": "Figure 2"`) {
		t.Fatalf("json output wrong:\n%s", buf.String())
	}
}

func TestBenchJSONFile(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "tab2", "-sizes", "8", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("BENCH files: %v (err %v), want exactly 1", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"wall_ms"`, `"id": "Table 2"`, `"timestamp"`, "mc-basic-ind"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("bench file missing %q:\n%s", want, data)
		}
	}
	if !strings.Contains(buf.String(), "wrote ") {
		t.Errorf("run did not announce the bench file: %q", buf.String())
	}
}

func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "tab2", "-sizes", "8", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) != 1 {
		t.Fatalf("BENCH files: %v", matches)
	}
	baseline := matches[0]

	// Identical rerun: retrieval counts are deterministic, so compare
	// must pass.
	buf.Reset()
	if err := run([]string{"-experiment", "tab2", "-compare", baseline}, &buf); err != nil {
		t.Fatalf("compare against own baseline failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "compare: OK") {
		t.Fatalf("missing OK line:\n%s", buf.String())
	}

	// A tampered retrieval cell must be flagged.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	bf.Experiments[0].Rows[0][1] = "999999"
	tampered, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "tampered.json")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-experiment", "tab2", "-compare", bad}, &buf); err == nil {
		t.Fatalf("tampered baseline should fail compare:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION:") {
		t.Fatalf("missing REGRESSION line:\n%s", buf.String())
	}
}

func TestFig3DOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig3-dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig3_hierarchy") {
		t.Fatalf("dot output wrong:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "nosuch"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-sizes", "abc"}, &buf); err == nil {
		t.Error("bad sizes should fail")
	}
	if err := run([]string{"-sizes", "0"}, &buf); err == nil {
		t.Error("non-positive size should fail")
	}
	if err := run([]string{"-experiment", "fig2", "-format", "yaml"}, &buf); err == nil {
		t.Error("unknown format should fail")
	}
}

// TestRecoveryProbeFlag runs the crash-recovery probe on a small
// history: the report and BENCH record must carry both recovery
// times, and the speedup gate must be enforced.
func TestRecoveryProbeFlag(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var buf bytes.Buffer
	// A tiny history keeps the test fast; the 5x acceptance gate is
	// only meaningful at production record counts, so disable it here.
	if err := run([]string{"-recovery", "-recovery-records", "500", "-recovery-min-speedup", "0", "-benchrounds", "1", "-json"}, &buf); err != nil {
		t.Fatalf("recovery probe failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"recovery probe: 500 records", "cold replay:", "snapshot + 5 tail:", "speedup:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("BENCH files: %v (err %v), want exactly 1", matches, err)
	}
	var bf benchFile
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Recovery == nil || bf.Recovery.Records != 500 || bf.Recovery.ColdRecordsPerSec <= 0 ||
		bf.Recovery.ColdMS <= 0 || bf.Recovery.SnapMS <= 0 || bf.Recovery.TailRecords != 5 {
		t.Fatalf("bench recovery record wrong: %+v", bf.Recovery)
	}

	// An unreachable gate must fail the run.
	buf.Reset()
	err = run([]string{"-recovery", "-recovery-records", "500", "-recovery-min-speedup", "1e12", "-benchrounds", "1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "below the required") {
		t.Fatalf("speedup gate did not fire: %v", err)
	}
}

// TestTraceGuardFlag runs the tracing-overhead guard in its cheap
// drift-only mode (-benchrounds 0 skips the timing loops).
func TestTraceGuardFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-traceguard", "-benchrounds", "0"}, &buf); err != nil {
		t.Fatalf("traceguard failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "traceguard: OK") {
		t.Fatalf("no OK verdict:\n%s", out)
	}
	for _, probe := range []string{"solve/counting-tree", "solve/mc-recurring-int-tree", "engine/seminaive-chain"} {
		if !strings.Contains(out, probe) {
			t.Errorf("guard output missing probe %s:\n%s", probe, out)
		}
	}
}
