// Command mcbench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as aligned text tables with
// measured tuple-retrieval costs next to the Θ formulas.
//
// Usage:
//
//	mcbench                       # run everything at default sizes
//	mcbench -experiment tab1      # a single table
//	mcbench -sizes 32,64,128      # a custom sweep
//	mcbench -o results.txt        # write to a file
//	mcbench -json                 # also write BENCH_<timestamp>.json
//	mcbench -json -micro          # include ns/op + allocs/op micro benchmarks
//	mcbench -compare BENCH_x.json # regression-check against a baseline
//	mcbench -traceguard           # tracing-overhead guard: disabled vs unsampled
//	mcbench -recovery             # crash-recovery probe: cold replay vs snapshot+tail
//	mcbench -appendmix            # append-heavy probe: full recompile vs delta compile
//	mcbench -shardmix             # region-sharding probe: monolithic vs per-shard delta compile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"magiccounting/internal/bench"
	"magiccounting/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, tab1..tab5, fig1..fig3, fig3-dot")
	sizesFlag := fs.String("sizes", "", "comma-separated sweep sizes (default 16,32,64)")
	outPath := fs.String("o", "", "write results to this file instead of stdout")
	format := fs.String("format", "text", "output format: text or json")
	jsonOut := fs.Bool("json", false, "also write BENCH_<timestamp>.json with per-experiment wall times")
	micro := fs.Bool("micro", false, "measure the micro benchmarks (ns/op, allocs/op) into the -json record")
	comparePath := fs.String("compare", "", "baseline BENCH_*.json: fail on retrieval-count drift or micro ns/op regressions beyond -tolerance")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional micro ns/op regression for -compare")
	benchRounds := fs.Int("benchrounds", 3, "micro benchmark repetitions; the fastest round is recorded")
	traceGuard := fs.Bool("traceguard", false, "compare tracing-disabled vs enabled-but-unsampled hot paths; fail on slowdown beyond -trace-tolerance or any retrieval-count drift")
	traceTolerance := fs.Float64("trace-tolerance", 0.02, "allowed fractional slowdown of the unsampled path for -traceguard")
	recovery := fs.Bool("recovery", false, "probe crash recovery: cold WAL replay vs snapshot+tail over the same history; fail below -recovery-min-speedup")
	recoveryRecords := fs.Int("recovery-records", 20_000, "committed WAL records for the -recovery probe")
	recoveryMinSpeedup := fs.Float64("recovery-min-speedup", 5, "required cold/snapshot recovery speedup for -recovery (0 disables the gate)")
	appendmix := fs.Bool("appendmix", false, "probe append-heavy maintenance: full recompile vs delta compile per append over the same seeded mix; fail below -appendmix-min-speedup or on any oracle divergence")
	appendmixBase := fs.Int("appendmix-base", 4_000, "pre-loaded facts for the -appendmix probe")
	appendmixAppends := fs.Int("appendmix-appends", 400, "append steps for the -appendmix probe")
	appendmixMinSpeedup := fs.Float64("appendmix-min-speedup", 5, "required full/delta amortized-compile speedup for -appendmix (0 disables the gate)")
	shardmix := fs.Bool("shardmix", false, "probe region-sharded maintenance: monolithic delta compile vs per-shard delta compile over the same multi-region append mix; fail below -shardmix-min-speedup or on any oracle divergence")
	shardmixShards := fs.Int("shardmix-shards", 8, "shard slots for the -shardmix probe")
	shardmixBase := fs.Int("shardmix-base", 48_000, "pre-loaded facts for the -shardmix probe")
	shardmixAppends := fs.Int("shardmix-appends", 400, "append steps for the -shardmix probe")
	shardmixMinSpeedup := fs.Float64("shardmix-min-speedup", 3, "required monolithic/sharded amortized-append speedup for -shardmix (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceGuard {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return runTraceGuard(*benchRounds, *traceTolerance, out)
	}
	if *recovery {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		res, err := runRecoveryProbe(*recoveryRecords, *benchRounds, out)
		if err != nil {
			return err
		}
		if *jsonOut {
			path, err := writeRecoveryJSON(".", res)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
		if *recoveryMinSpeedup > 0 && res.Speedup < *recoveryMinSpeedup {
			return fmt.Errorf("recovery speedup %.2fx below the required %.2fx", res.Speedup, *recoveryMinSpeedup)
		}
		return nil
	}
	if *appendmix {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		res, err := runAppendmixProbe(*appendmixBase, *appendmixAppends, *benchRounds, out)
		if err != nil {
			return err
		}
		if *jsonOut {
			path, err := writeAppendmixJSON(".", res)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
		if *appendmixMinSpeedup > 0 && res.Speedup < *appendmixMinSpeedup {
			return fmt.Errorf("appendmix speedup %.2fx below the required %.2fx", res.Speedup, *appendmixMinSpeedup)
		}
		return nil
	}
	if *shardmix {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		res, err := runShardmixProbe(*shardmixShards, *shardmixBase, *shardmixAppends, *benchRounds, out)
		if err != nil {
			return err
		}
		if *jsonOut {
			path, err := writeShardmixJSON(".", res)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
		if *shardmixMinSpeedup > 0 && res.Speedup < *shardmixMinSpeedup {
			return fmt.Errorf("shardmix speedup %.2fx below the required %.2fx", res.Speedup, *shardmixMinSpeedup)
		}
		return nil
	}
	var baseline *benchFile
	if *comparePath != "" {
		bf, err := readBenchJSON(*comparePath)
		if err != nil {
			return err
		}
		baseline = bf
	}
	sizes := harness.DefaultSizes
	if baseline != nil {
		// Compare like with like: reproduce the baseline's sweep.
		sizes = baseline.Sizes
	}
	if *sizesFlag != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			sizes = append(sizes, n)
		}
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *experiment == "fig3-dot" {
		return harness.WriteHierarchyDOT(out)
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = []string{"tab1", "tab2", "tab3", "tab4", "tab5", "fig1", "fig2", "fig3"}
	}
	var tables []*harness.Table
	var wall []time.Duration
	for _, id := range ids {
		start := time.Now()
		t, err := harness.ByID(id, sizes)
		if err != nil {
			return err
		}
		wall = append(wall, time.Since(start))
		tables = append(tables, t)
	}
	var micros []bench.Micro
	if *micro || (baseline != nil && len(baseline.Micro) > 0) {
		micros = bench.Run(*benchRounds)
	}
	if *jsonOut {
		path, err := writeBenchJSON(".", sizes, tables, wall, micros)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	if baseline != nil {
		if err := compareBaseline(baseline, tables, micros, *tolerance, out); err != nil {
			return err
		}
		fmt.Fprintf(out, "compare: OK against %s\n", *comparePath)
	}
	switch *format {
	case "text":
		for _, t := range tables {
			t.Render(out)
		}
		return nil
	case "json":
		return harness.WriteJSON(out, tables)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}

// runTraceGuard runs the tracing-overhead guard: every instrumented
// solver path, tracing disabled vs enabled-but-unsampled. Any
// retrieval-count difference is an instrumentation bug (spans must
// never charge the meter); a disabled-vs-unsampled slowdown beyond
// tolerance means the "pays nothing when off" contract broke.
func runTraceGuard(rounds int, tolerance float64, out io.Writer) error {
	guards, err := bench.RunTraceGuard(rounds)
	if err != nil {
		return err
	}
	var violations []string
	for _, g := range guards {
		fmt.Fprintf(out, "traceguard: %-28s disabled %.1f ns/op, unsampled %.1f ns/op, retrievals %d/%d\n",
			g.Name, g.DisabledNsPerOp, g.UnsampledNsPerOp, g.RetrievalsDisabled, g.RetrievalsUnsampled)
		if g.RetrievalsDisabled != g.RetrievalsUnsampled {
			violations = append(violations, fmt.Sprintf("%s: retrievals drifted, %d disabled vs %d unsampled (instrumentation charged the meter)",
				g.Name, g.RetrievalsDisabled, g.RetrievalsUnsampled))
		}
		if g.DisabledNsPerOp > 0 && g.UnsampledNsPerOp > g.DisabledNsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf("%s: unsampled %.1f ns/op vs disabled %.1f (>%.0f%% overhead)",
				g.Name, g.UnsampledNsPerOp, g.DisabledNsPerOp, tolerance*100))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(out, "TRACE-OVERHEAD:", v)
		}
		return fmt.Errorf("%d trace-overhead violation(s)", len(violations))
	}
	fmt.Fprintln(out, "traceguard: OK")
	return nil
}

// benchExperiment is one experiment's machine-readable record: its
// rendered cells (method names and retrieval counts) plus the wall
// time the run took.
type benchExperiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// benchFile is the BENCH_<timestamp>.json schema, the unit of the
// repo's machine-readable perf trajectory.
type benchFile struct {
	Timestamp   string            `json:"timestamp"`
	Sizes       []int             `json:"sizes"`
	Experiments []benchExperiment `json:"experiments"`
	Micro       []bench.Micro     `json:"micro,omitempty"`
	Recovery    *recoveryResult   `json:"recovery,omitempty"`
	Appendmix   *appendmixResult  `json:"appendmix,omitempty"`
	Shardmix    *shardmixResult   `json:"shardmix,omitempty"`
}

// writeAppendmixJSON writes a BENCH record holding only the appendmix
// probe (the -appendmix mode runs no experiment sweep).
func writeAppendmixJSON(dir string, res *appendmixResult) (string, error) {
	now := time.Now()
	bf := benchFile{Timestamp: now.Format(time.RFC3339), Appendmix: res}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102T150405"))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bf); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// writeRecoveryJSON writes a BENCH record holding only the recovery
// probe (the -recovery mode runs no experiment sweep).
func writeRecoveryJSON(dir string, res *recoveryResult) (string, error) {
	now := time.Now()
	bf := benchFile{Timestamp: now.Format(time.RFC3339), Recovery: res}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102T150405"))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bf); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// writeBenchJSON writes the benchmark record into dir and returns the
// file's path.
func writeBenchJSON(dir string, sizes []int, tables []*harness.Table, wall []time.Duration, micros []bench.Micro) (string, error) {
	now := time.Now()
	bf := benchFile{Timestamp: now.Format(time.RFC3339), Sizes: sizes, Micro: micros}
	for i, t := range tables {
		bf.Experiments = append(bf.Experiments, benchExperiment{
			ID:     t.ID,
			Title:  t.Title,
			WallMS: float64(wall[i].Microseconds()) / 1000,
			Header: t.Header,
			Rows:   t.Rows,
			Notes:  t.Notes,
		})
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102T150405"))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bf); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// readBenchJSON loads a BENCH_*.json baseline.
func readBenchJSON(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &bf, nil
}

// compareBaseline checks the current run against a baseline record.
// Retrieval-count cells are deterministic, so any drift in an
// experiment shared with the baseline is an error. Micro ns/op and
// allocs/op are timing-dependent: they may regress by at most the
// given fractional tolerance. All violations are reported, not just
// the first.
func compareBaseline(baseline *benchFile, tables []*harness.Table, micros []bench.Micro, tolerance float64, out io.Writer) error {
	current := make(map[string]*harness.Table, len(tables))
	for _, t := range tables {
		current[t.ID] = t
	}
	var violations []string
	for _, be := range baseline.Experiments {
		t, ok := current[be.ID]
		if !ok {
			continue // baseline has experiments this invocation did not run
		}
		if len(be.Rows) != len(t.Rows) {
			violations = append(violations, fmt.Sprintf("%s: %d rows, baseline has %d", be.ID, len(t.Rows), len(be.Rows)))
			continue
		}
		for i := range be.Rows {
			for j := range be.Rows[i] {
				if j < len(t.Rows[i]) && be.Rows[i][j] != t.Rows[i][j] {
					violations = append(violations,
						fmt.Sprintf("%s row %d col %d: %q, baseline %q (retrieval counts are deterministic — this is a behavior change)",
							be.ID, i, j, t.Rows[i][j], be.Rows[i][j]))
				}
			}
		}
	}
	cur := make(map[string]bench.Micro, len(micros))
	for _, m := range micros {
		cur[m.Name] = m
	}
	for _, base := range baseline.Micro {
		m, ok := cur[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("micro %s: present in baseline, not measured", base.Name))
			continue
		}
		if base.NsPerOp > 0 && m.NsPerOp > base.NsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf("micro %s: %.1f ns/op, baseline %.1f (>%.0f%% regression)",
				base.Name, m.NsPerOp, base.NsPerOp, tolerance*100))
		} else {
			fmt.Fprintf(out, "compare: %s %.1f ns/op vs baseline %.1f\n", base.Name, m.NsPerOp, base.NsPerOp)
		}
		if float64(m.AllocsPerOp) > float64(base.AllocsPerOp)*(1+tolerance)+0.5 {
			violations = append(violations, fmt.Sprintf("micro %s: %d allocs/op, baseline %d",
				base.Name, m.AllocsPerOp, base.AllocsPerOp))
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(out, "REGRESSION:", v)
		}
		return fmt.Errorf("%d regression(s) against baseline", len(violations))
	}
	return nil
}
