// Command mcbench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as aligned text tables with
// measured tuple-retrieval costs next to the Θ formulas.
//
// Usage:
//
//	mcbench                       # run everything at default sizes
//	mcbench -experiment tab1      # a single table
//	mcbench -sizes 32,64,128      # a custom sweep
//	mcbench -o results.txt        # write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"magiccounting/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, tab1..tab5, fig1..fig3, fig3-dot")
	sizesFlag := fs.String("sizes", "", "comma-separated sweep sizes (default 16,32,64)")
	outPath := fs.String("o", "", "write results to this file instead of stdout")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes := harness.DefaultSizes
	if *sizesFlag != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			sizes = append(sizes, n)
		}
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *experiment == "fig3-dot" {
		return harness.WriteHierarchyDOT(out)
	}
	var tables []*harness.Table
	if *experiment == "all" {
		for _, id := range []string{"tab1", "tab2", "tab3", "tab4", "tab5", "fig1", "fig2", "fig3"} {
			t, err := harness.ByID(id, sizes)
			if err != nil {
				return err
			}
			tables = append(tables, t)
		}
	} else {
		t, err := harness.ByID(*experiment, sizes)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	switch *format {
	case "text":
		for _, t := range tables {
			t.Render(out)
		}
		return nil
	case "json":
		return harness.WriteJSON(out, tables)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}
