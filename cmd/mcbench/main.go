// Command mcbench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as aligned text tables with
// measured tuple-retrieval costs next to the Θ formulas.
//
// Usage:
//
//	mcbench                       # run everything at default sizes
//	mcbench -experiment tab1      # a single table
//	mcbench -sizes 32,64,128      # a custom sweep
//	mcbench -o results.txt        # write to a file
//	mcbench -json                 # also write BENCH_<timestamp>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"magiccounting/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, tab1..tab5, fig1..fig3, fig3-dot")
	sizesFlag := fs.String("sizes", "", "comma-separated sweep sizes (default 16,32,64)")
	outPath := fs.String("o", "", "write results to this file instead of stdout")
	format := fs.String("format", "text", "output format: text or json")
	jsonOut := fs.Bool("json", false, "also write BENCH_<timestamp>.json with per-experiment wall times")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes := harness.DefaultSizes
	if *sizesFlag != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad size %q", s)
			}
			sizes = append(sizes, n)
		}
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *experiment == "fig3-dot" {
		return harness.WriteHierarchyDOT(out)
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = []string{"tab1", "tab2", "tab3", "tab4", "tab5", "fig1", "fig2", "fig3"}
	}
	var tables []*harness.Table
	var wall []time.Duration
	for _, id := range ids {
		start := time.Now()
		t, err := harness.ByID(id, sizes)
		if err != nil {
			return err
		}
		wall = append(wall, time.Since(start))
		tables = append(tables, t)
	}
	if *jsonOut {
		path, err := writeBenchJSON(".", sizes, tables, wall)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	switch *format {
	case "text":
		for _, t := range tables {
			t.Render(out)
		}
		return nil
	case "json":
		return harness.WriteJSON(out, tables)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}

// benchExperiment is one experiment's machine-readable record: its
// rendered cells (method names and retrieval counts) plus the wall
// time the run took.
type benchExperiment struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	WallMS float64    `json:"wall_ms"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// benchFile is the BENCH_<timestamp>.json schema, the unit of the
// repo's machine-readable perf trajectory.
type benchFile struct {
	Timestamp   string            `json:"timestamp"`
	Sizes       []int             `json:"sizes"`
	Experiments []benchExperiment `json:"experiments"`
}

// writeBenchJSON writes the benchmark record into dir and returns the
// file's path.
func writeBenchJSON(dir string, sizes []int, tables []*harness.Table, wall []time.Duration) (string, error) {
	now := time.Now()
	bf := benchFile{Timestamp: now.Format(time.RFC3339), Sizes: sizes}
	for i, t := range tables {
		bf.Experiments = append(bf.Experiments, benchExperiment{
			ID:     t.ID,
			Title:  t.Title,
			WallMS: float64(wall[i].Microseconds()) / 1000,
			Header: t.Header,
			Rows:   t.Rows,
			Notes:  t.Notes,
		})
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102T150405"))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bf); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
