package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"magiccounting/internal/core"
)

// shardmixResult is the -shardmix probe record, embedded into
// BENCH_*.json under "shardmix": the amortized append-maintenance
// cost of a monolithic delta-compiled artifact versus a region-sharded
// one over the identical multi-region append sequence, plus a batch
// fan-out timing and the oracle cross-check between the two artifacts.
type shardmixResult struct {
	// BaseFacts is the pre-loaded database size (total pairs) spread
	// over Regions disjoint chain regions; Shards the configured slot
	// count; Appends the append steps replayed on top.
	BaseFacts int `json:"base_facts"`
	Regions   int `json:"regions"`
	Shards    int `json:"shards"`
	Appends   int `json:"appends"`
	// AppendedFacts counts the pairs the append sequence carried;
	// FinalFacts the deduplicated arc count of the end-state artifact.
	AppendedFacts int `json:"appended_facts"`
	FinalFacts    int `json:"final_facts"`
	// MonoNsPerAppend and ShardedNsPerAppend are the amortized
	// maintenance cost per append (fastest of -benchrounds rounds):
	// the monolithic policy extends the whole-database artifact, the
	// sharded one delta-compiles only the touched shard.
	MonoNsPerAppend    float64 `json:"mono_ns_per_append"`
	ShardedNsPerAppend float64 `json:"sharded_ns_per_append"`
	// Speedup is MonoNsPerAppend / ShardedNsPerAppend — the number the
	// CI gate holds to -shardmix-min-speedup.
	Speedup float64 `json:"speedup"`
	// Merges counts shards absorbed by the mid-run bridging append;
	// LiveShards is the end-state live slot count.
	Merges     int `json:"merges"`
	LiveShards int `json:"live_shards"`
	// BatchMonoNsPerItem and BatchShardedNsPerItem time the same
	// query batch against the two (flattened) end-state artifacts:
	// sequentially on the monolithic one, fanned out with one worker
	// per shard on the sharded one. Informational, not gated — the
	// available parallelism depends on the host.
	BatchMonoNsPerItem    float64 `json:"batch_mono_ns_per_item"`
	BatchShardedNsPerItem float64 `json:"batch_sharded_ns_per_item"`
	// OracleQueries counts the end-state query comparisons between the
	// two artifacts; Divergence the ones that disagreed (must be 0).
	OracleQueries int `json:"oracle_queries"`
	Divergence    int `json:"divergence"`
}

// runShardmixProbe replays a multi-region append mix against a
// monolithic delta-compiled artifact and a region-sharded one, timing
// only the artifact maintenance. The mix keeps each append inside one
// region — the confinement region sharding exploits — except for one
// mid-run bridging arc that joins two regions and forces a shard
// merge, so the probe also covers the policy's worst case. At end of
// run the two artifacts must agree on every probe query (answers and
// solver stats, bridged regions included).
func runShardmixProbe(shards, base, appends, rounds int, out io.Writer) (*shardmixResult, error) {
	const regions = 8
	if shards < 2 {
		shards = 2
	}
	if base < 3*regions {
		base = 3 * regions
	}
	if appends < regions {
		appends = regions
	}
	if rounds < 1 {
		rounds = 1
	}
	n := func(g, j int) string { return fmt.Sprintf("g%d_m%d", g, j) }
	baseLinks := base / (3 * regions)
	var l, e, r []core.Pair
	for g := 0; g < regions; g++ {
		for j := 0; j < baseLinks; j++ {
			l = append(l, core.Pair{From: n(g, j), To: n(g, j+1)})
			e = append(e, core.Pair{From: n(g, j), To: n(g, j)})
			r = append(r, core.Pair{From: n(g, j), To: n(g, j+1)})
		}
	}
	res := &shardmixResult{
		BaseFacts: len(l) + len(e) + len(r),
		Regions:   regions,
		Shards:    shards,
		Appends:   appends,
	}

	// Pre-generate the append sequence once so every round and both
	// policies replay the identical deltas: round-robin over the
	// regions, each step one fresh chain link, plus the one bridging
	// arc halfway through.
	type delta struct{ dL, dE, dR []core.Pair }
	links := make([]int, regions)
	steps := make([]delta, appends)
	for i := range steps {
		g := i % regions
		j := baseLinks + links[g]
		links[g]++
		d := delta{
			dL: []core.Pair{{From: n(g, j), To: n(g, j+1)}},
			dE: []core.Pair{{From: n(g, j+1), To: n(g, j+1)}},
			dR: []core.Pair{{From: n(g, j), To: n(g, j+1)}},
		}
		if i == appends/2 {
			// Bridge regions 0 and 1: the sharded policy must merge
			// their shards, the monolithic one just extends.
			d.dL = append(d.dL, core.Pair{From: n(0, 0), To: n(1, 0)})
			d.dR = append(d.dR, core.Pair{From: n(0, 0), To: n(1, 0)})
		}
		steps[i] = d
		res.AppendedFacts += len(d.dL) + len(d.dE) + len(d.dR)
	}

	// The per-shard delta gate: generous enough that a single-link
	// delta always extends, so the timed loop measures the delta path
	// (the bridging merge still cold-rebuilds its merged shard, as the
	// serving policy would).
	const maxFrac = 0.5

	var mono *core.Compiled
	var sc *core.ShardedCompiled
	monoBest, shBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		// Both cold compiles are untimed: the serving layer pays them
		// once per artifact lifetime, the probe measures maintenance.
		mono = core.Compile(l, e, r)
		var monoTime time.Duration
		for _, d := range steps {
			start := time.Now()
			mono = mono.Extend(d.dL, d.dE, d.dR)
			monoTime += time.Since(start)
		}

		sc = core.CompileSharded(l, e, r, core.ShardOpts{Shards: shards})
		var shTime time.Duration
		var merges int
		for _, d := range steps {
			start := time.Now()
			var st core.ShardExtendStats
			sc, st = sc.Extend(d.dL, d.dE, d.dR, maxFrac)
			shTime += time.Since(start)
			merges += st.Merges
		}

		if monoTime < monoBest {
			monoBest = monoTime
		}
		if shTime < shBest {
			shBest = shTime
		}
		if round == 0 {
			res.Merges = merges
			res.LiveShards = len(sc.LiveSlots())
			al, ae, ar := mono.Arcs()
			res.FinalFacts = al + ae + ar
		}
	}

	res.MonoNsPerAppend = float64(monoBest.Nanoseconds()) / float64(appends)
	res.ShardedNsPerAppend = float64(shBest.Nanoseconds()) / float64(appends)
	if shBest > 0 {
		res.Speedup = float64(monoBest) / float64(shBest)
	}

	// Oracle pass over the end-state artifacts (deterministic across
	// rounds): sampled sources in every region — bridged ones
	// included — under three explicit methods plus auto-selection.
	var sources []string
	for g := 0; g < regions; g++ {
		sources = append(sources, n(g, 0), n(g, baseLinks/2), n(g, baseLinks+links[g]))
	}
	sources = append(sources, "absent-from-mix")
	for _, src := range sources {
		for _, s := range []core.Strategy{core.Basic, core.Multiple, core.Recurring} {
			want, werr := mono.Solve(src, s, core.Integrated, core.Options{})
			got, gerr := sc.Solve(src, s, core.Integrated, core.Options{})
			res.OracleQueries++
			if (werr == nil) != (gerr == nil) ||
				(werr == nil && (fmt.Sprint(want.Answers) != fmt.Sprint(got.Answers) || want.Stats != got.Stats)) {
				res.Divergence++
			}
		}
		want, wsel, werr := mono.SolveAuto(src, core.Options{})
		got, gsel, gerr := sc.SolveAuto(src, core.Options{})
		res.OracleQueries++
		if (werr == nil) != (gerr == nil) || wsel != gsel ||
			(werr == nil && (fmt.Sprint(want.Answers) != fmt.Sprint(got.Answers) || want.Stats != got.Stats)) {
			res.Divergence++
		}
	}
	if res.Divergence > 0 {
		return nil, fmt.Errorf("shardmix: %d of %d oracle queries diverged between monolithic and sharded artifacts", res.Divergence, res.OracleQueries)
	}

	// Batch fan-out timing on flattened artifacts (both at depth 0, so
	// the comparison isolates the fan-out, not chain-walking costs):
	// the monolithic artifact answers the batch sequentially, the
	// sharded one with one worker per live shard.
	monoFlat := mono.Flatten()
	for _, slot := range sc.LiveSlots() {
		sc.SetShardArtifact(slot, sc.ShardArtifact(slot).Flatten())
	}
	batch := make([]string, 0, 4*len(sources))
	for i := 0; i < 4; i++ {
		batch = append(batch, sources...)
	}
	monoBatchBest, shBatchBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		start := time.Now()
		for _, src := range batch {
			monoFlat.Solve(src, core.Multiple, core.Integrated, core.Options{})
		}
		if d := time.Since(start); d < monoBatchBest {
			monoBatchBest = d
		}

		groups := make(map[int][]string)
		for _, src := range batch {
			slot := sc.ShardOf(src)
			groups[slot] = append(groups[slot], src)
		}
		start = time.Now()
		var wg sync.WaitGroup
		for _, srcs := range groups {
			wg.Add(1)
			go func(srcs []string) {
				defer wg.Done()
				for _, src := range srcs {
					sc.Solve(src, core.Multiple, core.Integrated, core.Options{})
				}
			}(srcs)
		}
		wg.Wait()
		if d := time.Since(start); d < shBatchBest {
			shBatchBest = d
		}
	}
	res.BatchMonoNsPerItem = float64(monoBatchBest.Nanoseconds()) / float64(len(batch))
	res.BatchShardedNsPerItem = float64(shBatchBest.Nanoseconds()) / float64(len(batch))

	fmt.Fprintf(out, "shardmix probe: %d base facts over %d regions, %d shards, %d appends (%d pairs, final %d), %d oracle queries (0 divergent), %d merges\n",
		res.BaseFacts, res.Regions, res.Shards, res.Appends, res.AppendedFacts, res.FinalFacts, res.OracleQueries, res.Merges)
	fmt.Fprintf(out, "  monolithic extend: %12.0f ns/append\n", res.MonoNsPerAppend)
	fmt.Fprintf(out, "  sharded extend:    %12.0f ns/append\n", res.ShardedNsPerAppend)
	fmt.Fprintf(out, "  speedup:           %12.2fx\n", res.Speedup)
	fmt.Fprintf(out, "  batch fan-out:     %12.0f ns/item sequential-monolithic, %.0f ns/item sharded (%d live shards)\n",
		res.BatchMonoNsPerItem, res.BatchShardedNsPerItem, res.LiveShards)
	return res, nil
}

// writeShardmixJSON writes a BENCH record holding only the shardmix
// probe (the -shardmix mode runs no experiment sweep).
func writeShardmixJSON(dir string, res *shardmixResult) (string, error) {
	now := time.Now()
	bf := benchFile{Timestamp: now.Format(time.RFC3339), Shardmix: res}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102T150405"))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bf); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
