package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/durable"
)

// recoveryResult is the -recovery probe record, embedded into
// BENCH_*.json under "recovery": cold WAL replay versus
// snapshot-plus-tail recovery over the same committed state.
type recoveryResult struct {
	// Records is the number of committed WAL records; Facts the total
	// pairs across them.
	Records int `json:"records"`
	Facts   int `json:"facts"`
	// ColdMS is the recovery wall time with no snapshot (full replay);
	// ColdRecordsPerSec the implied replay throughput.
	ColdMS            float64 `json:"cold_ms"`
	ColdRecordsPerSec float64 `json:"cold_records_per_sec"`
	// SnapMS is the recovery wall time from a snapshot covering 99% of
	// the records plus a replayed 1% tail (TailRecords).
	SnapMS      float64 `json:"snap_ms"`
	TailRecords int     `json:"tail_records"`
	// Speedup is ColdMS / SnapMS — the factor the snapshot buys.
	Speedup float64 `json:"speedup"`
}

// probeRecord builds record i of the probe workload: a three-pair
// delta with record-unique constants, the shape of an incremental
// same-generation load, so replay cost is dominated by the same
// string decoding a production log would pay.
func probeRecord(gen uint64) durable.Record {
	a := fmt.Sprintf("n%d", gen)
	b := fmt.Sprintf("n%d", gen+1)
	return durable.Record{
		Gen: gen,
		L:   []core.Pair{{From: a, To: b}},
		E:   []core.Pair{{From: a, To: a}},
		R:   []core.Pair{{From: a, To: b}},
	}
}

// buildWAL appends records gens lo..hi to the store.
func buildWAL(st *durable.Store, lo, hi uint64) error {
	for g := lo; g <= hi; g++ {
		if err := st.Append(probeRecord(g)); err != nil {
			return err
		}
	}
	return nil
}

// timeOpen measures one recovery of dir and sanity-checks the
// recovered generation.
func timeOpen(dir string, wantGen uint64) (time.Duration, *durable.RecoveryInfo, error) {
	start := time.Now()
	st, info, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever}, nil)
	elapsed := time.Since(start)
	if err != nil {
		return 0, nil, err
	}
	if err := st.Close(); err != nil {
		return 0, nil, err
	}
	if info.Generation != wantGen {
		return 0, nil, fmt.Errorf("recovery reached generation %d, want %d", info.Generation, wantGen)
	}
	return elapsed, info, nil
}

// runRecoveryProbe measures crash recovery two ways over the same
// n-record committed history: cold (WAL only, full replay) and warm
// (a snapshot covering 99% of the records, replaying the 1% tail).
// Each variant is recovered `rounds` times and the fastest round is
// kept, the same convention as the micro benchmarks.
func runRecoveryProbe(n, rounds int, out io.Writer) (*recoveryResult, error) {
	if n < 100 {
		n = 100
	}
	if rounds < 1 {
		rounds = 1
	}
	opts := durable.Options{Fsync: durable.FsyncNever}

	coldDir, err := os.MkdirTemp("", "mcbench-recovery-cold-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(coldDir)
	st, _, err := durable.Open(coldDir, opts, nil)
	if err != nil {
		return nil, err
	}
	if err := buildWAL(st, 1, uint64(n)); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	snapDir, err := os.MkdirTemp("", "mcbench-recovery-snap-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)
	st, _, err = durable.Open(snapDir, opts, nil)
	if err != nil {
		return nil, err
	}
	cut := uint64(n - n/100) // snapshot covers 99%
	if err := buildWAL(st, 1, cut); err != nil {
		return nil, err
	}
	floor, err := st.Rotate()
	if err != nil {
		return nil, err
	}
	// The snapshot carries what a Service checkpoint would: the
	// accumulated fact slices plus the compiled artifact.
	var l, e, r []core.Pair
	for g := uint64(1); g <= cut; g++ {
		rec := probeRecord(g)
		l = append(l, rec.L...)
		e = append(e, rec.E...)
		r = append(r, rec.R...)
	}
	comp := core.Compile(l, e, r)
	comp.Generation = cut
	if err := st.WriteSnapshot(durable.Snapshot{Gen: cut, L: l, E: e, R: r, Compiled: comp}, floor); err != nil {
		return nil, err
	}
	if err := buildWAL(st, cut+1, uint64(n)); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	res := &recoveryResult{Records: n, Facts: 3 * n, TailRecords: n - int(cut)}
	cold, snap := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		d, _, err := timeOpen(coldDir, uint64(n))
		if err != nil {
			return nil, fmt.Errorf("cold recovery: %w", err)
		}
		if d < cold {
			cold = d
		}
		d, info, err := timeOpen(snapDir, uint64(n))
		if err != nil {
			return nil, fmt.Errorf("snapshot recovery: %w", err)
		}
		if !info.SnapshotLoaded || info.ReplayedRecords != res.TailRecords {
			return nil, fmt.Errorf("snapshot recovery loaded=%v replayed=%d, want tail of %d",
				info.SnapshotLoaded, info.ReplayedRecords, res.TailRecords)
		}
		if d < snap {
			snap = d
		}
	}
	res.ColdMS = float64(cold.Microseconds()) / 1000
	res.SnapMS = float64(snap.Microseconds()) / 1000
	if cold > 0 {
		res.ColdRecordsPerSec = float64(n) / cold.Seconds()
	}
	if snap > 0 {
		res.Speedup = float64(cold) / float64(snap)
	}

	fmt.Fprintf(out, "recovery probe: %d records (%d facts)\n", res.Records, res.Facts)
	fmt.Fprintf(out, "  cold replay:        %8.3fms  (%.0f records/s)\n", res.ColdMS, res.ColdRecordsPerSec)
	fmt.Fprintf(out, "  snapshot + %d tail: %8.3fms\n", res.TailRecords, res.SnapMS)
	fmt.Fprintf(out, "  speedup:            %8.2fx\n", res.Speedup)
	return res, nil
}
