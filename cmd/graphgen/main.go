// Command graphgen emits generated workloads as Datalog program files
// consumable by mcq: the base facts, the canonical same-generation
// rules, and the query goal.
//
// Usage:
//
//	graphgen -shape lasso -n 32 > lasso.dl
//	graphgen -shape random -n 20 -seed 7 -out random.dl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	shape := fs.String("shape", "chain",
		"workload shape: chain, tree, grid, shortcut, lasso, cycle, frontier, frontier-cyclic, comb, cycletail, random, dag, fig1, fig2")
	n := fs.Int("n", 16, "scale parameter")
	seed := fs.Int64("seed", 1, "seed for random shapes")
	outPath := fs.String("out", "", "output file (default stdout)")
	dot := fs.Bool("dot", false, "emit the classified magic graph as Graphviz DOT instead of Datalog")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := generate(*shape, *n, *seed)
	if err != nil {
		return err
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *dot {
		return q.WriteMagicGraphDOT(out)
	}
	return emit(out, *shape, q)
}

func generate(shape string, n int, seed int64) (core.Query, error) {
	switch shape {
	case "chain":
		return workload.Chain(n), nil
	case "tree":
		depth := 2
		for total := 3; total < n; total = total*2 + 1 {
			depth++
		}
		return workload.Tree(2, depth), nil
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		return workload.Grid(side, side), nil
	case "shortcut":
		return workload.ShortcutChain(n, 3), nil
	case "lasso":
		return workload.Lasso(n/2, n-n/2), nil
	case "cycle":
		return workload.Cycle(n), nil
	case "frontier":
		return workload.SingleFrontier(n, 10, false), nil
	case "frontier-cyclic":
		return workload.SingleFrontier(n, 10, true), nil
	case "comb":
		return workload.Comb(n), nil
	case "cycletail":
		return workload.CycleTail(n, 6), nil
	case "random":
		return workload.Random(seed, n, n), nil
	case "dag":
		return workload.RandomDAG(seed, n/4+2, 4, 0.3), nil
	case "fig1":
		return workload.PaperFig1(), nil
	case "fig2":
		return workload.PaperFig2(), nil
	default:
		return core.Query{}, fmt.Errorf("unknown shape %q", shape)
	}
}

// emit writes the query as a canonical Datalog program over l/e/r (or
// the same-generation form when L and R coincide).
func emit(w io.Writer, shape string, q core.Query) error {
	fmt.Fprintf(w, "%% generated workload: shape=%s\n", shape)
	fmt.Fprintf(w, "%% magic graph: %s\n", describe(q))
	for _, p := range q.L {
		fmt.Fprintf(w, "l(%s, %s).\n", p.From, p.To)
	}
	for _, p := range q.E {
		fmt.Fprintf(w, "e(%s, %s).\n", p.From, p.To)
	}
	for _, p := range q.R {
		fmt.Fprintf(w, "r(%s, %s).\n", p.From, p.To)
	}
	fmt.Fprintln(w, "p(X, Y) :- e(X, Y).")
	fmt.Fprintln(w, "p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).")
	fmt.Fprintf(w, "?- p(%s, Y).\n", q.Source)
	return nil
}

func describe(q core.Query) string {
	p := q.Params()
	class := "regular"
	switch {
	case p.Cyclic:
		class = "cyclic"
	case !p.Regular:
		class = "acyclic non-regular"
	}
	return fmt.Sprintf("%s, nL=%d mL=%d nR=%d mR=%d", class, p.NL, p.ML, p.NR, p.MR)
}
