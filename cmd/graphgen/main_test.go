package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"magiccounting/internal/datalog"
)

func TestEveryShapeEmitsParseableCanonicalProgram(t *testing.T) {
	shapes := []string{"chain", "tree", "grid", "shortcut", "lasso", "cycle",
		"frontier", "frontier-cyclic", "comb", "cycletail", "random", "dag",
		"fig1", "fig2"}
	for _, shape := range shapes {
		var buf bytes.Buffer
		if err := run([]string{"-shape", shape, "-n", "8"}, &buf); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		prog, err := datalog.Parse(buf.String())
		if err != nil {
			t.Fatalf("%s output does not parse: %v", shape, err)
		}
		if len(prog.Queries) != 1 || len(prog.Rules) != 2 {
			t.Fatalf("%s: expected canonical program, got %d rules %d queries",
				shape, len(prog.Rules), len(prog.Queries))
		}
	}
}

func TestOutputFileAndHeaderComment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.dl")
	var buf bytes.Buffer
	if err := run([]string{"-shape", "lasso", "-n", "10", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cyclic") {
		t.Fatalf("header should classify the magic graph: %s", data[:80])
	}
}

func TestSeedDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-shape", "random", "-n", "6", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shape", "random", "-n", "6", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed should give same workload")
	}
}

func TestUnknownShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shape", "moebius"}, &buf); err == nil {
		t.Fatal("unknown shape should fail")
	}
}
