// Command mcsoak soaks a live mcserved: it replays a seeded,
// deterministic workload mix — singleton queries (auto and explicit
// methods, trace-sampled), batch queries, fact appends sized to land
// on both the delta-compile and fallback paths, stats scrapes, and
// intentional bad-request probes — at a controlled target rate for a
// fixed duration, then holds the run to a declarative SLO.
//
// Correctness is checked against internal/oracle, not against the
// server's own code: a sampled fraction of answers is recorded with
// the generation each response reports, the driver keeps a ledger of
// every fact it appended keyed by the generation the append produced,
// and at end of run each sampled answer is recomputed by the oracle
// over the database as it stood at that generation — so appends
// landing mid-flight never cause a false divergence. The final
// /metrics scrape is additionally held to metric-consistency
// invariants (compiles == full + delta, the query-accounting
// partition, zero in-flight queries on an idle server, ...).
//
// Usage:
//
//	mcsoak -duration 60s -qps 200            # against localhost:8377
//	mcsoak -addr host:port -seed 7 -report soak-report.json
//	mcsoak -slo slo.json                     # custom ceilings (JSON SLOSpec)
//	mcsoak -allow-dirty                      # non-empty server: load only, no oracle
//	mcsoak -child-bin ./mcserved -child-args "-shards 4" -source-skew 1.3
//	                                         # own a sharded child, skew query sources Zipf-style
//
// The exit status is 0 iff the run passed: every latency ceiling
// held, zero oracle divergences, zero unexpected HTTP statuses, and
// every metric invariant intact (ceilings adjustable via -slo).
// Verification needs the server's whole fact history, so the target
// must be empty at start unless -allow-dirty skips the oracle.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"magiccounting/internal/harness"
	"magiccounting/internal/server"
	"magiccounting/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcsoak", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8377", "mcserved address (host:port)")
	duration := fs.Duration("duration", 60*time.Second, "soak duration")
	qps := fs.Float64("qps", 200, "target operations per second")
	workers := fs.Int("workers", 16, "concurrent request workers")
	seed := fs.Int64("seed", 1, "workload seed; the same seed replays the same operation sequence")
	reportPath := fs.String("report", "", "write the JSON report here (empty = stdout summary only)")
	sloPath := fs.String("slo", "", "JSON SLOSpec overriding the default ceilings")
	verifyEvery := fs.Int("verify-every", 8, "oracle-check every Nth operation's answer (0 disables)")
	maxVerifyGens := fs.Int("max-verify-gens", 40, "bound on distinct generations verified (one oracle fixpoint each)")
	badFrac := fs.Float64("bad-frac", 0.03, "fraction of intentional bad-request probes")
	batchFrac := fs.Float64("batch-frac", 0.08, "fraction of batch queries")
	appendFrac := fs.Float64("append-frac", 0.10, "fraction of fact appends")
	statsFrac := fs.Float64("stats-frac", 0.02, "fraction of stats scrapes")
	traceFrac := fs.Float64("trace-frac", 0.05, "fraction of singleton queries requesting a trace")
	baseLayers := fs.Int("base-layers", 6, "seeded base DAG layers")
	baseWidth := fs.Int("base-width", 8, "seeded base DAG width")
	bulkEvery := fs.Int("bulk-every", 10, "every Nth append is bulk (overshoots the delta threshold); 0 disables")
	maxFacts := fs.Int("max-facts", 10000, "soft cap on database growth")
	allowDirty := fs.Bool("allow-dirty", false, "accept a non-empty server; disables oracle verification and ledger cross-checks")
	childBin := fs.String("child-bin", "", "mcserved binary to spawn and own (required for -kill-every; overrides -addr)")
	childDataDir := fs.String("child-data-dir", "", "data directory for the owned child (empty = a fresh temp dir)")
	childArgs := fs.String("child-args", "", "extra space-separated flags for the owned child (e.g. \"-shards 4\")")
	sourceSkew := fs.Float64("source-skew", 0, "Zipf exponent for query-source popularity (>1 concentrates traffic on few regions; <=1 uniform)")
	killEvery := fs.Duration("kill-every", 0, "SIGKILL and restart the owned child this often (0 disables; needs -child-bin)")
	minRecoveries := fs.Int("min-recoveries", 0, "fail unless at least this many kill/restart cycles completed")
	memSampleEvery := fs.Duration("mem-sample-every", time.Second, "period of the /v1/stats memory scrape (0 disables)")
	heapGrowthFrac := fs.Float64("heap-growth-frac", 0, "fail if the late-run heap watermark exceeds the mid-run one by this fraction (0 disables)")
	maxCompiledBytes := fs.Int64("max-compiled-bytes", 0, "fail if the resident compiled-artifact estimate ever exceeds this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := harness.DefaultSLO()
	if *sloPath != "" {
		var err error
		if spec, err = harness.LoadSLO(*sloPath); err != nil {
			return err
		}
	}
	// Memory and fault-injection ceilings come from flags (they
	// describe this run's shape), layered over whichever latency spec
	// is in force.
	if *heapGrowthFrac > 0 {
		spec.MaxHeapGrowthFrac = *heapGrowthFrac
	}
	if *maxCompiledBytes > 0 {
		spec.MaxCompiledBytes = *maxCompiledBytes
	}
	if *minRecoveries > 0 {
		spec.MinRecoveries = *minRecoveries
	}

	if *killEvery > 0 && *childBin == "" {
		return fmt.Errorf("-kill-every needs -child-bin (mcsoak must own the process it kills)")
	}
	var child *childServer
	target := "http://" + *addr
	if *childBin != "" {
		dir := *childDataDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "mcsoak-child-*"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		child = &childServer{bin: *childBin, dataDir: dir, extraArgs: strings.Fields(*childArgs)}
		if err := child.start(); err != nil {
			return err
		}
		defer child.terminate()
		target = "http://" + child.addr
	}

	c := &client{base: target, http: &http.Client{Timeout: 60 * time.Second}}
	verify, err := preflight(c, *allowDirty)
	if err != nil {
		return err
	}

	mix := workload.NewMix(workload.MixConfig{
		Seed:       *seed,
		BaseLayers: *baseLayers, BaseWidth: *baseWidth,
		BadFrac: *badFrac, BatchFrac: *batchFrac, AppendFrac: *appendFrac, StatsFrac: *statsFrac,
		TraceFrac:  *traceFrac,
		SourceSkew: *sourceSkew,
		BulkEvery:  *bulkEvery,
		MaxFacts:   *maxFacts,
	})
	led := newLedger()

	// Seed the base instance. Its generation (1 on a fresh server)
	// anchors the ledger; every answer observed at generation g is
	// later verified against base + the deltas up to g.
	base := mix.Base()
	var seedResp server.FactsResponse
	status, _, err := c.do("POST", "/v1/facts", server.FactsRequest{L: base.L, E: base.E, R: base.R}, &seedResp)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("seed base instance: status %d, err %v", status, err)
	}
	if verify && seedResp.Generation != 1 {
		return fmt.Errorf("seed base instance: generation %d, want 1 (server not fresh?)", seedResp.Generation)
	}
	led.record(seedResp.Generation, base.L, base.E, base.R, seedResp.AddedL+seedResp.AddedE+seedResp.AddedR)

	fmt.Fprintf(stdout, "mcsoak: soaking %s for %s at %g qps (seed %d, %d workers, verify=%v, kill-every=%s)\n",
		strings.TrimPrefix(target, "http://"), *duration, *qps, *seed, *workers, verify, killEvery)
	d := newDriver(c, mix, led, *verifyEvery, verify)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	started := time.Now()
	waitAux := d.runAux(ctx, started, child, *killEvery, *memSampleEvery)
	d.run(ctx, *qps, *workers)
	waitAux()
	elapsed := time.Since(started).Seconds()

	// The load has fully drained (every worker returned), so the final
	// scrapes see an idle server: in-flight must read zero and the
	// counter identities must hold exactly.
	rep := &harness.SoakReport{
		Seed:            *seed,
		DurationSeconds: elapsed,
		TargetQPS:       *qps,
		AchievedQPS:     float64(d.ops) / elapsed,
		Ops:             d.ops,
		Classes:         make(map[string]*harness.ClassStats),
	}
	for class, ms := range d.ms {
		rep.Classes[class] = harness.MakeClassStats(ms, d.statuses[class])
	}
	rep.UnexpectedStatuses = d.unexpected
	rep.Recoveries = d.recoveries
	rep.RecoveryFailures = d.recoveryFailures
	if len(d.memSamples) > 0 {
		rep.Memory = harness.MakeMemoryCheck(d.memSamples)
	}

	var finalStats server.Stats
	if status, _, err := c.do("GET", "/v1/stats", nil, &finalStats); err != nil || status != http.StatusOK {
		return fmt.Errorf("final stats scrape: status %d, err %v", status, err)
	}
	req, err := http.NewRequest("GET", c.baseURL()+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("final metrics scrape: %w", err)
	}
	metrics, err := harness.ParseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	rep.InvariantViolations = harness.CheckInvariants(metrics)

	if verify {
		// Driver-level cross-checks: the server's view of its database
		// must match the ledger fact for fact, generation for generation.
		maxGen, facts := led.stats()
		if finalStats.Generation != maxGen {
			rep.InvariantViolations = append(rep.InvariantViolations,
				fmt.Sprintf("driver: server generation %d != ledger generation %d", finalStats.Generation, maxGen))
		}
		if got := finalStats.FactsL + finalStats.FactsE + finalStats.FactsR; got != facts {
			rep.InvariantViolations = append(rep.InvariantViolations,
				fmt.Sprintf("driver: server holds %d facts, ledger appended %d", got, facts))
		}
		rep.Oracle = verifyChecks(d.checks, led, *maxVerifyGens)
	}

	rep.Evaluate(spec)
	rep.Summary(stdout)
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mcsoak: report written to %s\n", *reportPath)
	}
	if !rep.Pass {
		return fmt.Errorf("soak failed: %d SLO violations", len(rep.SLOViolations))
	}
	return nil
}

// preflight waits for the server to answer and decides whether the
// run can verify answers: oracle verification needs the whole fact
// history, so a server that has already seen traffic can only be
// load-tested (-allow-dirty), not verified.
func preflight(c *client, allowDirty bool) (verify bool, err error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, err := c.do("GET", "/healthz", nil, nil)
		if err == nil && status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			return false, fmt.Errorf("server at %s not answering /healthz: status %d, err %v", c.base, status, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	var st server.Stats
	status, _, err := c.do("GET", "/v1/stats", nil, &st)
	if err != nil || status != http.StatusOK {
		return false, fmt.Errorf("preflight stats: status %d, err %v", status, err)
	}
	if st.Generation != 0 || st.Queries != 0 {
		if !allowDirty {
			return false, fmt.Errorf("server already has state (generation %d, %d queries); start it fresh or pass -allow-dirty to soak without oracle verification",
				st.Generation, st.Queries)
		}
		return false, nil
	}
	return true, nil
}
