package main

// Fault injection: mcsoak can own the mcserved it soaks (-child-bin),
// SIGKILL it mid-run on a schedule (-kill-every), restart it on the
// same data directory, and verify the recovery boundary — the
// restarted server must report exactly the generation the ledger says
// was acknowledged (fsync-always means no acked append may be lost,
// and a higher generation would mean phantom state), and re-queried
// answers at the recovered generation join the normal end-of-run
// oracle verification. The memory sampler rides the same run: a
// periodic /v1/stats scrape feeding the heap-watermark SLO.

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"magiccounting/internal/harness"
	"magiccounting/internal/server"
)

// childServer owns the mcserved process under test. Methods are not
// concurrency-safe: the kill controller is the only caller, and it
// serializes cycles behind the driver gate.
type childServer struct {
	bin     string
	dataDir string
	// extraArgs are appended to the fixed spawn arguments (e.g.
	// "-shards 4" to soak a region-sharded server).
	extraArgs []string
	cmd       *exec.Cmd
	addr      string // host:port the child reported
}

// start spawns the child on an ephemeral port over the shared data
// directory and waits for its listening line. fsync always is forced:
// the whole point of the kill mode is that acknowledged appends
// survive SIGKILL, which only that policy guarantees.
func (ch *childServer) start() error {
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", ch.dataDir, "-fsync", "always", "-quiet"}
	args = append(args, ch.extraArgs...)
	cmd := exec.Command(ch.bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", ch.bin, err)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				cmd.Process.Kill()
				cmd.Wait()
				return fmt.Errorf("child exited before listening")
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				// Keep draining so the child never blocks on a full pipe.
				go func() {
					for range lines {
					}
				}()
				ch.cmd = cmd
				ch.addr = strings.TrimSpace(line[i+len("listening on "):])
				return nil
			}
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("child never became ready")
		}
	}
}

// kill SIGKILLs the child — no handler, no checkpoint, no goodbye —
// and reaps it.
func (ch *childServer) kill() {
	if ch.cmd == nil {
		return
	}
	ch.cmd.Process.Kill()
	ch.cmd.Wait()
	ch.cmd = nil
}

// terminate shuts the child down gracefully at end of run (so it
// writes its final snapshot), falling back to SIGKILL on a timeout.
func (ch *childServer) terminate() {
	if ch.cmd == nil {
		return
	}
	ch.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { ch.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		ch.cmd.Process.Kill()
		<-done
	}
	ch.cmd = nil
}

// recordRecovery files the outcome of one kill/restart cycle.
func (d *driver) recordRecovery(failure string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if failure != "" {
		if len(d.recoveryFailures) < 20 {
			d.recoveryFailures = append(d.recoveryFailures, failure)
		}
		return
	}
	d.recoveries++
}

// recentSources returns up to n distinct sources from the newest
// sampled checks — the ones a recovery boundary is most likely to
// have disturbed.
func (d *driver) recentSources(n int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := len(d.checks) - 1; i >= 0 && len(out) < n; i-- {
		src := d.checks[i].source
		if !seen[src] {
			seen[src] = true
			out = append(out, src)
		}
	}
	return out
}

// killLoop is the fault-injection controller: every `every`, it takes
// the driver gate exclusively (draining all in-flight requests),
// SIGKILLs the child, restarts it over the same data directory,
// repoints the workers, and verifies the boundary before releasing
// the load. Returns when ctx expires.
func (d *driver) killLoop(ctx context.Context, ch *childServer, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		d.gate.Lock()
		d.killCycle(ch)
		d.gate.Unlock()
	}
}

// killCycle runs one kill/restart/verify cycle. Caller holds the gate
// exclusively, so the ledger is quiescent: its maxGen is exactly the
// set of acknowledged appends, which is what the restarted child must
// report.
func (d *driver) killCycle(ch *childServer) {
	wantGen, _ := d.led.stats()
	ch.kill()
	if err := ch.start(); err != nil {
		d.recordRecovery(fmt.Sprintf("restart after kill: %v", err))
		return
	}
	d.client.setBase("http://" + ch.addr)

	var st server.Stats
	status, _, err := d.client.do("GET", "/v1/stats", nil, &st)
	if err != nil || status != http.StatusOK {
		d.recordRecovery(fmt.Sprintf("post-restart stats: status %d, err %v", status, err))
		return
	}
	if st.Generation != wantGen {
		d.recordRecovery(fmt.Sprintf("recovered generation %d, ledger says %d acknowledged", st.Generation, wantGen))
		return
	}

	// Re-query recent sources across the boundary and queue the
	// answers for oracle verification at the recovered generation: a
	// recovery that replayed the WAL wrong diverges here.
	for _, src := range d.recentSources(3) {
		var resp server.QueryResponse
		status, _, err := d.client.do("POST", "/v1/query", server.QueryRequest{Source: src}, &resp)
		if err != nil || status != http.StatusOK {
			d.recordRecovery(fmt.Sprintf("post-restart query %q: status %d, err %v", src, status, err))
			return
		}
		if resp.Generation != wantGen {
			d.recordRecovery(fmt.Sprintf("post-restart query %q answered at generation %d, want %d", src, resp.Generation, wantGen))
			return
		}
		d.queueCheck(check{seq: -1, source: src, gen: resp.Generation, answers: resp.Answers})
	}
	d.recordRecovery("")
}

// sampleMemory scrapes the /v1/stats memory block every `every` until
// ctx expires, holding the gate shared so samples never race a
// restart window (a scrape against a dead child would record a
// spurious failure). Scrape errors are tolerated — the SLO rule fails
// the run if too few samples accumulate.
func (d *driver) sampleMemory(ctx context.Context, started time.Time, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		d.gate.RLock()
		var st server.Stats
		status, _, err := d.client.do("GET", "/v1/stats", nil, &st)
		d.gate.RUnlock()
		if err != nil || status != http.StatusOK {
			continue
		}
		d.mu.Lock()
		d.memSamples = append(d.memSamples, harness.MemorySample{
			ElapsedSeconds:   time.Since(started).Seconds(),
			HeapInuseBytes:   st.Memory.HeapInuseBytes,
			CompiledBytes:    st.Memory.CompiledBytes,
			ResidentCompiled: st.Memory.ResidentCompiled,
		})
		d.mu.Unlock()
	}
}

// runAux starts the memory sampler and (when armed) the kill loop
// beside the load, returning a wait function the caller invokes after
// the load drains.
func (d *driver) runAux(ctx context.Context, started time.Time, ch *childServer, killEvery, memEvery time.Duration) func() {
	var wg sync.WaitGroup
	if memEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.sampleMemory(ctx, started, memEvery)
		}()
	}
	if ch != nil && killEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.killLoop(ctx, ch, killEvery)
		}()
	}
	return wg.Wait
}
