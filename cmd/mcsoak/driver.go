package main

// The closed-loop driver: a token-bucket pacer releases operations at
// the target rate, a bounded pool of workers pulls the next operation
// of the deterministic schedule under a lock (so the request sequence
// is exactly the seeded mix's, replayable from the seed alone), and
// every response is classified, timed, and — for a sampled fraction of
// answers — queued for end-of-run oracle verification.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"magiccounting/internal/harness"
	"magiccounting/internal/server"
	"magiccounting/internal/workload"
)

// client is the HTTP side: JSON in, JSON out, one latency sample per
// call. base is mutex-guarded because fault injection restarts the
// child server on a fresh port mid-run and repoints every worker at
// it with setBase.
type client struct {
	mu   sync.RWMutex
	base string
	http *http.Client
}

func (c *client) baseURL() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base
}

func (c *client) setBase(base string) {
	c.mu.Lock()
	c.base = base
	c.mu.Unlock()
}

// do issues one request and decodes a 200 body into out (when out is
// non-nil). Transport-level failures report status 0.
func (c *client) do(method, path string, body, out any) (status int, elapsed time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.baseURL()+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	started := time.Now()
	resp, err := c.http.Do(req)
	elapsed = time.Since(started)
	if err != nil {
		return 0, elapsed, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, elapsed, fmt.Errorf("decode %s: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, elapsed, nil
}

// expectedStatus is the HTTP status each operation kind predicts; any
// other status is recorded as unexpected and fails the default SLO.
func expectedStatus(k workload.OpKind) int {
	if k == workload.OpBadQuery {
		return http.StatusBadRequest
	}
	return http.StatusOK
}

// maxChecks bounds the verification queue; past it, sampling stops
// (the run reports how many checks it did, so a silent shortfall is
// visible in the report's oracle block).
const maxChecks = 5000

// driver owns one soak run's mutable state. mu guards the schedule
// (mix), the per-class samples, and the check queue; workers hold it
// only to pull an op or record an outcome, never across a request.
type driver struct {
	client      *client
	led         *ledger
	verifyEvery int
	verify      bool

	// gate pauses the load during a kill/restart cycle: workers hold
	// it shared around each operation, and the kill controller takes
	// it exclusively — so acquiring the write side means every
	// in-flight request has drained and no new one starts until the
	// restarted child is verified. Uncontended (the no-fault-injection
	// case) it costs one atomic RLock per op.
	gate sync.RWMutex

	mu         sync.Mutex
	mix        *workload.Mix
	ops        int
	ms         map[string][]float64
	statuses   map[string]map[int]int
	unexpected []string
	checks     []check
	// recoveries and recoveryFailures are the fault-injection record:
	// completed kill/restart cycles, and boundary checks that failed.
	recoveries       int
	recoveryFailures []string
	// memSamples is the periodic /v1/stats memory scrape record.
	memSamples []harness.MemorySample
}

func newDriver(c *client, mix *workload.Mix, led *ledger, verifyEvery int, verify bool) *driver {
	return &driver{
		client:      c,
		led:         led,
		verifyEvery: verifyEvery,
		verify:      verify && verifyEvery > 0,
		mix:         mix,
		ms:          make(map[string][]float64),
		statuses:    make(map[string]map[int]int),
	}
}

// next pulls the next scheduled operation.
func (d *driver) next() workload.Op {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mix.Next()
}

// record files one response under its class.
func (d *driver) record(op workload.Op, status int, elapsed time.Duration, err error) {
	class := op.Kind.String()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	d.ms[class] = append(d.ms[class], float64(elapsed.Microseconds())/1000)
	if d.statuses[class] == nil {
		d.statuses[class] = make(map[int]int)
	}
	d.statuses[class][status]++
	if status != expectedStatus(op.Kind) && len(d.unexpected) < 20 {
		detail := fmt.Sprintf("op %d %s: status %d (want %d)", op.Seq, class, status, expectedStatus(op.Kind))
		if err != nil {
			detail += ": " + err.Error()
		}
		d.unexpected = append(d.unexpected, detail)
	}
}

// noteUnexpected records a non-status anomaly (a missing trace, a
// failed append decode) against the run.
func (d *driver) noteUnexpected(format string, args ...any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.unexpected) < 20 {
		d.unexpected = append(d.unexpected, fmt.Sprintf(format, args...))
	}
}

// sample decides deterministically (by schedule position, so the same
// seed checks the same answers) whether op's answer joins the
// verification queue.
func (d *driver) sample(op workload.Op) bool {
	return d.verify && op.Seq%d.verifyEvery == 0
}

func (d *driver) queueCheck(c check) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.checks) < maxChecks {
		d.checks = append(d.checks, c)
	}
}

// execute issues one operation and files its outcome.
func (d *driver) execute(op workload.Op) {
	switch op.Kind {
	case workload.OpQuery, workload.OpBadQuery:
		req := server.QueryRequest{Source: op.Source, Strategy: op.Strategy, Mode: op.Mode, Trace: op.Trace}
		var resp server.QueryResponse
		status, elapsed, err := d.client.do("POST", "/v1/query", req, &resp)
		d.record(op, status, elapsed, err)
		if status != http.StatusOK || err != nil {
			return
		}
		if op.Trace && resp.Trace == nil {
			d.noteUnexpected("op %d query: trace requested but absent", op.Seq)
		}
		if d.sample(op) {
			d.queueCheck(check{seq: op.Seq, source: op.Source, gen: resp.Generation, answers: resp.Answers})
		}
	case workload.OpBatch:
		req := server.BatchRequest{Sources: op.Sources}
		var resp server.BatchResponse
		status, elapsed, err := d.client.do("POST", "/v1/query/batch", req, &resp)
		d.record(op, status, elapsed, err)
		if status != http.StatusOK || err != nil {
			return
		}
		if d.sample(op) {
			// One sampled item per batch: the first that answered. Every
			// item shares the batch's snapshot generation.
			for _, item := range resp.Items {
				if item.Source != "" && item.Error == "" {
					d.queueCheck(check{seq: op.Seq, source: item.Source, gen: resp.Generation, answers: item.Answers})
					break
				}
			}
		}
	case workload.OpAppend:
		req := server.FactsRequest{L: op.L, E: op.E, R: op.R}
		var resp server.FactsResponse
		status, elapsed, err := d.client.do("POST", "/v1/facts", req, &resp)
		d.record(op, status, elapsed, err)
		if status != http.StatusOK || err != nil {
			return
		}
		added := resp.AddedL + resp.AddedE + resp.AddedR
		if added != len(op.L)+len(op.E)+len(op.R) {
			// Disjoint-by-construction appends must add every fact; a
			// shortfall means the generator or the server dedupe is wrong,
			// and the ledger could silently drift.
			d.noteUnexpected("op %d append: added %d of %d facts", op.Seq, added, len(op.L)+len(op.E)+len(op.R))
		}
		d.led.record(resp.Generation, op.L, op.E, op.R, added)
	case workload.OpStats:
		var st server.Stats
		status, elapsed, err := d.client.do("GET", "/v1/stats", nil, &st)
		d.record(op, status, elapsed, err)
	}
}

// run drives the load until ctx expires: a token-bucket pacer accrues
// capacity at qps and workers block on a token before issuing each
// request, so the offered rate is capped at qps with a small burst
// allowance (smoothing scheduler jitter) rather than lock-stepped.
func (d *driver) run(ctx context.Context, qps float64, workers int) {
	burst := int(qps / 4)
	if burst < 1 {
		burst = 1
	}
	tokens := make(chan struct{}, burst)
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		acc := 1.0 // one immediate token so short runs start instantly
		last := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-tick.C:
				acc += qps * now.Sub(last).Seconds()
				last = now
				for acc >= 1 {
					select {
					case tokens <- struct{}{}:
						acc--
					default:
						// Bucket full: drop the surplus so an idle stretch
						// cannot bank an unbounded burst.
						acc = 0
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tokens:
					// Shared gate: blocks while a kill/restart cycle holds
					// the write side, so no request races the dead or
					// half-recovered child.
					d.gate.RLock()
					d.execute(d.next())
					d.gate.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
}
