package main

import (
	"reflect"
	"testing"
)

func seqGens(n int) []uint64 {
	gens := make([]uint64, n)
	for i := range gens {
		gens[i] = uint64(i + 1)
	}
	return gens
}

// TestPickGens pins the sampling contract: at most maxGens generations,
// evenly spaced, and the last generation — the one recovery boundaries
// land on — is always included.
func TestPickGens(t *testing.T) {
	cases := []struct {
		name    string
		gens    []uint64
		maxGens int
		want    []uint64
	}{
		{"nil passthrough", nil, 5, nil},
		{"under cap passthrough", seqGens(3), 5, []uint64{1, 2, 3}},
		{"at cap passthrough", seqGens(5), 5, []uint64{1, 2, 3, 4, 5}},
		{"cap disabled", seqGens(10), 0, seqGens(10)},
		{"cap one keeps only last", seqGens(10), 1, []uint64{10}},
		{"cap two keeps both ends", seqGens(10), 2, []uint64{1, 10}},
		{"even split", seqGens(9), 5, []uint64{1, 3, 5, 7, 9}},
		// 100 generations at cap 7: stride doesn't divide evenly, the
		// old formula truncated past the end and dropped generation 100.
		{"uneven split pins last", seqGens(100), 7, []uint64{1, 17, 34, 50, 67, 83, 100}},
		{"two gens cap one", []uint64{4, 9}, 1, []uint64{9}},
		{"sparse gens", []uint64{2, 30, 31, 90}, 3, []uint64{2, 30, 90}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pickGens(tc.gens, tc.maxGens)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("pickGens(%v, %d) = %v, want %v", tc.gens, tc.maxGens, got, tc.want)
			}
		})
	}
}

// TestPickGensAlwaysKeepsLast sweeps sizes and caps: whatever the
// shape, the newest generation survives and the cap holds.
func TestPickGensAlwaysKeepsLast(t *testing.T) {
	for n := 1; n <= 60; n++ {
		for maxGens := 1; maxGens <= 12; maxGens++ {
			gens := seqGens(n)
			got := pickGens(gens, maxGens)
			if len(got) == 0 || got[len(got)-1] != uint64(n) {
				t.Fatalf("n=%d maxGens=%d: last generation dropped: %v", n, maxGens, got)
			}
			if len(got) > maxGens {
				t.Fatalf("n=%d maxGens=%d: cap exceeded: %v", n, maxGens, got)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("n=%d maxGens=%d: not strictly increasing: %v", n, maxGens, got)
				}
			}
		}
	}
}
