package main

import (
	"fmt"
	"sort"
	"sync"

	"magiccounting/internal/core"
	"magiccounting/internal/harness"
	"magiccounting/internal/oracle"
)

// delta is the facts one append added, in the oracle's arc form.
type delta struct {
	l, e, r []oracle.Arc
}

// ledger is the client-side fact record, keyed by the generation each
// append's response reports. Every generated append is disjoint from
// all prior facts, so each successful POST /v1/facts bumps the server
// generation by exactly one and the response's generation names this
// delta unambiguously — however many appends were in flight at once.
// The facts at generation g are then the union of the deltas at 1..g,
// which is what end-of-run verification replays through the oracle:
// answers observed at generation g are compared against the database
// as it stood at g, so appends landing mid-flight can never cause a
// false divergence.
type ledger struct {
	mu     sync.Mutex
	deltas map[uint64]delta
	maxGen uint64
	// facts sums the server-reported added counts, the cross-check
	// against the final /v1/stats fact totals.
	facts int
}

func newLedger() *ledger {
	return &ledger{deltas: make(map[uint64]delta)}
}

func toArcs(ps []core.Pair) []oracle.Arc {
	out := make([]oracle.Arc, len(ps))
	for i, p := range ps {
		out[i] = oracle.Arc{From: p.From, To: p.To}
	}
	return out
}

// record stores the delta an append committed as generation gen.
// added is the server-reported added_l+added_e+added_r.
func (ld *ledger) record(gen uint64, l, e, r []core.Pair, added int) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.deltas[gen] = delta{l: toArcs(l), e: toArcs(e), r: toArcs(r)}
	if gen > ld.maxGen {
		ld.maxGen = gen
	}
	ld.facts += added
}

// factsAt accumulates the database as of generation gen. ok is false
// when any generation in 1..gen is missing (an append whose response
// was lost), in which case answers at gen are unverifiable rather
// than divergent.
func (ld *ledger) factsAt(gen uint64) (l, e, r []oracle.Arc, ok bool) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	for g := uint64(1); g <= gen; g++ {
		d, present := ld.deltas[g]
		if !present {
			return nil, nil, nil, false
		}
		l = append(l, d.l...)
		e = append(e, d.e...)
		r = append(r, d.r...)
	}
	return l, e, r, true
}

func (ld *ledger) stats() (maxGen uint64, facts int) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.maxGen, ld.facts
}

// check is one sampled answer awaiting verification: the server said
// that at generation gen, the query ?- P(source, Y) has these answers.
type check struct {
	seq     int
	source  string
	gen     uint64
	answers []string
}

// verifyChecks replays sampled answers through the oracle: one shared
// fixpoint per generation (oracle.Solver) answers every sampled
// source of that generation, and the server's answer sets must match
// exactly. It also cross-checks the server against itself first: the
// same (generation, source) answered two different ways is a
// divergence no oracle is needed to see. At most maxGens distinct
// generations are verified (evenly spaced across those observed, the
// newest always included) to bound end-of-run cost; checks in skipped
// generations are simply not counted.
func verifyChecks(checks []check, led *ledger, maxGens int) harness.OracleCheck {
	oc := harness.OracleCheck{}
	addDetail := func(d string) {
		if len(oc.Details) < 10 {
			oc.Details = append(oc.Details, d)
		}
	}

	type key struct {
		gen    uint64
		source string
	}
	seen := make(map[key][]string)
	byGen := make(map[uint64][]check)
	for _, c := range checks {
		k := key{c.gen, c.source}
		if prev, ok := seen[k]; ok {
			if !equalStrings(prev, c.answers) {
				oc.Divergences++
				addDetail(fmt.Sprintf("server inconsistent: gen %d source %q answered %v and %v",
					c.gen, c.source, prev, c.answers))
			}
			continue // one oracle comparison per (gen, source) is enough
		}
		seen[k] = c.answers
		byGen[c.gen] = append(byGen[c.gen], c)
	}

	gens := make([]uint64, 0, len(byGen))
	for g := range byGen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	gens = pickGens(gens, maxGens)

	for _, g := range gens {
		l, e, r, ok := led.factsAt(g)
		if !ok {
			oc.Unverifiable += len(byGen[g])
			continue
		}
		solve := oracle.Solver(l, e, r)
		for _, c := range byGen[g] {
			want := solve(c.source)
			got := append([]string(nil), c.answers...)
			sort.Strings(got)
			if !equalStrings(got, want) {
				oc.Divergences++
				addDetail(fmt.Sprintf("op %d: gen %d source %q: server %v, oracle %v",
					c.seq, c.gen, c.source, got, want))
			}
			oc.Sources++
		}
		oc.Generations++
	}
	return oc
}

// pickGens bounds the sorted generation list to maxGens entries,
// evenly spaced with both endpoints pinned: early generations catch
// base-instance bugs, and the last generation — the one a
// crash-recovery boundary lands on — must never be skipped. The pin
// is explicit rather than trusted to the spacing arithmetic: the old
// formula divided by maxGens-1, which both panicked at maxGens==1 and
// made the endpoint guarantee an accident of integer truncation
// instead of a stated contract.
func pickGens(gens []uint64, maxGens int) []uint64 {
	if maxGens <= 0 || len(gens) <= maxGens {
		return gens
	}
	if maxGens == 1 {
		return gens[len(gens)-1:]
	}
	picked := make([]uint64, 0, maxGens)
	for i := 0; i < maxGens-1; i++ {
		picked = append(picked, gens[i*(len(gens)-1)/(maxGens-1)])
	}
	picked = append(picked, gens[len(gens)-1])
	return dedupeGens(picked)
}

func dedupeGens(gens []uint64) []uint64 {
	out := gens[:0]
	for i, g := range gens {
		if i == 0 || g != out[len(out)-1] {
			out = append(out, g)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
