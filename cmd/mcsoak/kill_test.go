package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"magiccounting/internal/harness"
)

// TestSoakKillMode runs the full fault-injection path end to end: it
// builds a real mcserved, hands it to mcsoak as -child-bin, and lets
// the kill controller SIGKILL and restart it mid-soak. The run must
// pass — zero oracle divergences, zero recovery failures — with at
// least one completed kill/restart cycle, proving acked appends
// survive the boundary and post-restart answers still match the
// oracle.
func TestSoakKillMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "mcserved")
	build := exec.Command("go", "build", "-o", bin, "../mcserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-child-bin", bin,
		"-child-data-dir", t.TempDir(),
		"-kill-every", "1200ms",
		"-min-recoveries", "1",
		"-duration", "4s",
		"-qps", "150",
		"-workers", "8",
		"-seed", "11",
		"-verify-every", "4",
		"-mem-sample-every", "250ms",
		"-report", reportPath,
	}, &out)
	if err != nil {
		t.Fatalf("kill-mode soak failed: %v\noutput:\n%s", err, out.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.SoakReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("report not passing: %s", data)
	}
	if rep.Recoveries < 1 {
		t.Fatalf("no kill/restart cycles completed: %s", data)
	}
	if len(rep.RecoveryFailures) != 0 {
		t.Fatalf("recovery failures: %v", rep.RecoveryFailures)
	}
	if rep.Oracle.Divergences != 0 || rep.Oracle.Sources == 0 {
		t.Fatalf("oracle block wrong across recovery boundaries: %+v", rep.Oracle)
	}
	if rep.Memory == nil || rep.Memory.Samples == 0 {
		t.Fatalf("memory sampler recorded nothing: %s", data)
	}
}
