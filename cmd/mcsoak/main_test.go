package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/harness"
	"magiccounting/internal/server"
)

// startServer brings up an in-process mcserved equivalent (the real
// handler over the real service) and returns its host:port.
func startServer(t *testing.T) (*server.Service, string) {
	t.Helper()
	svc := server.New(server.Config{})
	ts := httptest.NewServer(server.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return svc, u.Host
}

// TestSoakInProcess drives a short real soak — HTTP, concurrency,
// churning appends, oracle verification — against an in-process
// server. Run under -race this doubles as the concurrency regression
// test for the whole serving path.
func TestSoakInProcess(t *testing.T) {
	svc, host := startServer(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-addr", host,
		"-duration", "2s",
		"-qps", "400",
		"-workers", "8",
		"-seed", "42",
		"-verify-every", "4",
		"-report", reportPath,
	}, &out)
	if err != nil {
		t.Fatalf("soak failed: %v\noutput:\n%s", err, out.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.SoakReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("report not passing: %s", data)
	}
	if rep.Oracle.Divergences != 0 || rep.Oracle.Sources == 0 {
		t.Fatalf("oracle block wrong: %+v", rep.Oracle)
	}
	for _, class := range []string{"query", "batch", "append", "bad"} {
		cs := rep.Classes[class]
		if cs == nil || cs.Count == 0 {
			t.Errorf("class %s never exercised: %s", class, data)
		}
	}
	// The intentional probes landed as 400s and nowhere else.
	if bad := rep.Classes["bad"]; bad != nil && bad.Statuses["400"] != bad.Count {
		t.Errorf("bad probes got non-400 statuses: %+v", bad)
	}

	// The append mix hit both compile paths and the fallback, and the
	// drained server reads idle.
	st := svc.Stats()
	if st.DeltaCompile.DeltaCompiles == 0 {
		t.Error("no delta compiles: small appends never extended the artifact")
	}
	if st.DeltaCompile.FullCompiles == 0 {
		t.Error("no full compiles")
	}
	if st.DeltaCompile.Fallbacks == 0 {
		t.Error("no delta fallbacks: bulk appends never overshot the threshold")
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after drain, want 0", st.InFlight)
	}
	if st.BadRequests == 0 {
		t.Error("no bad requests counted despite the probe mix")
	}
}

// TestSoakCatchesCorruptAnswers asserts the verification machinery
// actually bites: a server that tampers with one in every few answers
// must fail the soak with oracle divergences.
func TestSoakCatchesCorruptAnswers(t *testing.T) {
	svc := server.New(server.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()
	inner := server.NewHandler(svc)
	mux := http.NewServeMux()
	corrupted := 0
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req server.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := svc.Query(r.Context(), req)
		if err != nil {
			status := http.StatusInternalServerError
			if strings.Contains(err.Error(), "bad request") {
				status = http.StatusBadRequest
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		// Tamper with every third answered query.
		corrupted++
		if corrupted%3 == 0 {
			resp.Answers = append(resp.Answers, "zzz-tampered")
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.Handle("/", inner)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err = run([]string{
		"-addr", u.Host,
		"-duration", "1500ms",
		"-qps", "300",
		"-seed", "7",
		"-verify-every", "1",
		"-report", reportPath,
	}, &out)
	if err == nil {
		t.Fatalf("soak passed against a tampering server:\n%s", out.String())
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.SoakReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Oracle.Divergences == 0 {
		t.Fatalf("tampered answers not reported as divergences: %s", data)
	}
}

// TestSoakRefusesDirtyServer asserts a server with prior state is
// rejected (the oracle needs the whole fact history) unless
// -allow-dirty explicitly downgrades the run to load-only.
func TestSoakRefusesDirtyServer(t *testing.T) {
	svc, host := startServer(t)
	if _, err := svc.AppendFacts(server.FactsRequest{Parent: []core.Pair{core.P("x", "y")}}); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-addr", host, "-duration", "200ms", "-qps", "50"}, &out)
	if err == nil || !strings.Contains(err.Error(), "allow-dirty") {
		t.Fatalf("dirty server not refused: err=%v", err)
	}

	// With -allow-dirty the run proceeds but verifies nothing.
	reportPath := filepath.Join(t.TempDir(), "report.json")
	out.Reset()
	err = run([]string{
		"-addr", host,
		"-duration", "500ms",
		"-qps", "100",
		"-allow-dirty",
		"-report", reportPath,
	}, &out)
	if err != nil {
		t.Fatalf("allow-dirty soak failed: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.SoakReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Oracle.Sources != 0 || rep.Oracle.Generations != 0 {
		t.Fatalf("allow-dirty run should pass with no oracle checks: %s", data)
	}
}
