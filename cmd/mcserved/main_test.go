package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeAndShutdown boots the server on an ephemeral port, drives
// one facts-load/query round trip over real HTTP, and shuts it down
// with SIGTERM.
func TestServeAndShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := fmt.Sprintf("http://%s", addr)

	resp, err := http.Post(base+"/v1/facts", "application/json",
		strings.NewReader(`{"parent": [{"from":"ann","to":"bob"}, {"from":"amy","to":"bob"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts: status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"source": "ann"}`))
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		Answers []string `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fmt.Sprint(q.Answers) != fmt.Sprint([]string{"amy", "ann"}) {
		t.Fatalf("answers = %v, want [amy ann]", q.Answers)
	}
	// Request logging: every response carries a request id.
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header on the query response")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("unexpected log output: %q", out.String())
	}
	// The log buffer is only safe to read now, after Shutdown has
	// waited out every handler: the id echoed to the client must
	// appear in the structured log next to the request path.
	if !strings.Contains(out.String(), "id="+id) || !strings.Contains(out.String(), "path=/v1/query") {
		t.Fatalf("request log missing id %q or path: %q", id, out.String())
	}
}

// TestQuietSuppressesRequestLog: -quiet drops per-request lines (and
// the X-Request-Id header that comes with the middleware) but keeps
// the lifecycle messages.
func TestQuietSuppressesRequestLog(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-quiet"}, &out, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/query", addr), "application/json",
		strings.NewReader(`{"source": "nobody"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "" {
		t.Fatalf("quiet server still sets X-Request-Id %q", id)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if strings.Contains(out.String(), "msg=request") {
		t.Fatalf("quiet server logged requests: %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected flag error")
	}
}

// TestDebugAddrServesPprof boots with -debug-addr and checks the
// profiling index answers there while staying off the service mux.
func TestDebugAddrServesPprof(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, &out, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	// The pprof line is printed before the ready signal.
	line := out.String()
	i := strings.Index(line, "pprof on ")
	if i < 0 {
		t.Fatalf("no pprof line in output: %q", line)
	}
	debugURL := "http://" + strings.TrimSpace(strings.TrimSuffix(line[i+len("pprof on "):strings.Index(line[i:], "\n")+i], "/debug/pprof/"))

	resp, err := http.Get(debugURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	// The service listener must not expose the profiler.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service listener should not serve pprof")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
