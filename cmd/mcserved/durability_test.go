package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServer boots run() in-process on an ephemeral port and waits
// for readiness.
func startServer(t *testing.T, out io.Writer, args ...string) (string, chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, args...), out, ready) }()
	select {
	case addr := <-ready:
		return fmt.Sprintf("http://%s", addr), done
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

func post(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func stopServer(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestDataDirRestart: facts appended to a -data-dir server survive a
// graceful restart — the shutdown checkpoint plus recovery hand the
// next process the same database, warm enough that no WAL replay runs.
func TestDataDirRestart(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	base, done := startServer(t, &out, "-data-dir", dir, "-quiet")
	post(t, base+"/v1/facts", `{"parent": [{"from":"ann","to":"bob"}, {"from":"amy","to":"bob"}]}`)
	post(t, base+"/v1/facts", `{"parent": [{"from":"zoe","to":"bob"}]}`)
	stopServer(t, done)

	var out2 bytes.Buffer
	base2, done2 := startServer(t, &out2, "-data-dir", dir, "-quiet")
	defer stopServer(t, done2)
	if !strings.Contains(out2.String(), "recovered") || !strings.Contains(out2.String(), "generation 2") {
		t.Fatalf("no recovery log line: %q", out2.String())
	}
	if !strings.Contains(out2.String(), "0 wal records replayed") {
		t.Fatalf("graceful restart should recover from the snapshot alone: %q", out2.String())
	}
	var q struct {
		Answers    []string `json:"answers"`
		Generation uint64   `json:"generation"`
	}
	if err := json.Unmarshal(post(t, base2+"/v1/query", `{"source": "ann"}`), &q); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(q.Answers) != fmt.Sprint([]string{"amy", "ann", "zoe"}) || q.Generation != 2 {
		t.Fatalf("recovered answers %v at gen %d, want [amy ann zoe] at 2", q.Answers, q.Generation)
	}
}

// TestIncompatibleFormatRejected: a data directory written by a
// different on-disk format version fails startup with a clear error
// instead of misparsing the log.
func TestIncompatibleFormatRejected(t *testing.T) {
	dir := t.TempDir()
	// A segment header stamped with a future format version.
	header := append([]byte("MCWAL"), 99, 0, 0)
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), header, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-data-dir", dir}, io.Discard, nil)
	if err == nil {
		t.Fatal("run succeeded on an incompatible data directory")
	}
	if !strings.Contains(err.Error(), "format version") {
		t.Fatalf("error does not name the version mismatch: %v", err)
	}

	// An unknown -fsync spelling is rejected up front too.
	if err := run([]string{"-fsync", "sometimes"}, io.Discard, nil); err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("bad -fsync not rejected: %v", err)
	}
}

// TestKillRecovery is the hard acceptance path: a real mcserved
// process is SIGKILLed mid-serving — no shutdown hook runs — and a
// restart on the same directory must serve the same database, because
// every acknowledged append was fsynced ahead of the commit. This is
// also the CI recovery-smoke entry point.
func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "mcserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	dir := t.TempDir()

	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dir, "-fsync", "always", "-quiet")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		deadline := time.After(10 * time.Second)
		lines := make(chan string, 16)
		go func() {
			for sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					cmd.Process.Kill()
					t.Fatal("server exited before listening")
				}
				if i := strings.Index(line, "listening on "); i >= 0 {
					go func() {
						for range lines {
						}
					}()
					return cmd, "http://" + strings.TrimSpace(line[i+len("listening on "):])
				}
			case <-deadline:
				cmd.Process.Kill()
				t.Fatal("server never became ready")
			}
		}
	}

	cmd, base := start()
	post(t, base+"/v1/facts", `{"parent": [{"from":"ann","to":"bob"}, {"from":"amy","to":"bob"}]}`)
	post(t, base+"/v1/facts", `{"parent": [{"from":"zoe","to":"bob"}, {"from":"bob","to":"cat"}]}`)
	statsBefore := post(t, base+"/v1/query/batch", `{"sources": ["ann", "bob", "zoe"]}`)

	// SIGKILL: no handler, no checkpoint, no goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, base2 := start()
	defer func() { cmd2.Process.Kill(); cmd2.Wait() }()
	statsAfter := post(t, base2+"/v1/query/batch", `{"sources": ["ann", "bob", "zoe"]}`)

	var before, after struct {
		Items []struct {
			Source  string   `json:"source"`
			Answers []string `json:"answers"`
		} `json:"items"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(statsBefore, &before); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(statsAfter, &after); err != nil {
		t.Fatal(err)
	}
	if before.Generation != after.Generation {
		t.Fatalf("generation %d after kill, was %d", after.Generation, before.Generation)
	}
	for i := range before.Items {
		if fmt.Sprint(before.Items[i].Answers) != fmt.Sprint(after.Items[i].Answers) {
			t.Fatalf("source %s: answers %v after kill, were %v",
				before.Items[i].Source, after.Items[i].Answers, before.Items[i].Answers)
		}
	}

	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sa map[string]any
	err = json.NewDecoder(resp.Body).Decode(&sa)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"facts_l", "facts_e", "facts_r"} {
		if sa[key].(float64) == 0 {
			t.Fatalf("stats after kill: %s = 0", key)
		}
	}
	if sa["durable"] != true {
		t.Fatalf("stats after kill: durable = %v", sa["durable"])
	}
}
