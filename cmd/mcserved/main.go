// Command mcserved serves magic counting queries over HTTP: a
// long-lived database of L/E/R facts, a bounded solver worker pool,
// a compiled query graph built once per database generation and
// shared by every query against it, and a per-(source, strategy,
// mode) result cache invalidated by fact appends. Small appends roll
// the compiled graph forward with a delta patch instead of forcing a
// rebuild (see -delta-max-frac), so append-heavy mixed traffic keeps
// its amortized compile cost near zero.
//
// Usage:
//
//	mcserved                       # listen on :8377, memory-only
//	mcserved -data-dir ./data      # restart-safe: WAL + snapshots + recovery
//	mcserved -data-dir ./data -fsync interval -snapshot-every 10000
//	mcserved -addr :9000 -workers 8 -timeout 5s
//	mcserved -delta-max-frac 0.5   # delta-compile appends up to half the database
//	mcserved -shards 8             # region-sharded artifacts: route queries and scope appends per shard
//	mcserved -debug-addr :6060     # also serve net/http/pprof there
//	mcserved -quiet                # no per-request log lines
//
// With -data-dir every acknowledged fact append is write-ahead logged
// (fsynced per -fsync) and the database is periodically snapshotted;
// on startup the newest valid snapshot is loaded and the log tail
// replayed, so a crash — even SIGKILL — loses nothing acknowledged
// under -fsync always. A data directory written by an incompatible
// on-disk format version is rejected at startup with a clear error.
//
// Every request is logged via log/slog with a sequential request id
// that is also echoed in the X-Request-Id response header.
//
// API (JSON unless noted):
//
//	POST /v1/query        {"source": "ann", "strategy": "multiple", "mode": "integrated", "timeout_ms": 100}
//	                      strategy/mode optional: omitted, the method is
//	                      chosen per the query graph's Figure 3 regime
//	POST /v1/query/batch  {"sources": ["ann", "bob"], "strategy": "...", "mode": "...", "timeout_ms": 100}
//	                      many bound constants against one snapshot and
//	                      one compiled graph; items succeed or fail
//	                      independently
//	POST /v1/facts        {"l": [...], "e": [...], "r": [...], "parent": [...]}
//	                      pairs are {"from": "x", "to": "y"}; parent pairs
//	                      feed L and R plus identity E facts (the classic
//	                      same-generation instance, loaded incrementally)
//	GET  /v1/stats        service counters
//	GET  /healthz         liveness probe (text)
//	GET  /metrics         Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"magiccounting/internal/durable"
	"magiccounting/internal/server"
)

// syncWriter serializes writes to a shared writer. The slog handler
// writes request lines from handler goroutines while run() writes
// lifecycle lines from the main goroutine; both must funnel through
// one lock or the two interleave (and race, on a plain buffer).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// statusWriter captures the response status and byte count for the
// request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers keep
// their flush capability behind the logging middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController,
// preserving the optional interfaces (Hijacker, deadlines) this
// wrapper does not reimplement.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// requestLog wraps h with structured request logging: every request
// gets a sequential id, echoed back in X-Request-Id and attached to
// its log line so a client-reported failure can be matched to the
// server-side record.
func requestLog(h http.Handler, log *slog.Logger) http.Handler {
	var seq atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", seq.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		started := time.Now()
		h.ServeHTTP(sw, r)
		log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"elapsed_ms", float64(time.Since(started).Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until a shutdown signal (or until
// ready is closed after being sent the bound address, in tests).
func run(args []string, stdout io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	workers := fs.Int("workers", 0, "solver worker-pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-query timeout")
	cacheCap := fs.Int("cache", 1024, "result-cache capacity (entries)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (disabled when empty; keep it off public interfaces)")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	dataDir := fs.String("data-dir", "", "durable state directory (empty = memory-only, state lost on exit)")
	fsyncMode := fs.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync interval")
	snapshotEvery := fs.Int("snapshot-every", 50_000, "snapshot once this many facts have been appended since the last one (0 = only on shutdown)")
	deltaMaxFrac := fs.Float64("delta-max-frac", 0.25, "delta-compile appends up to this fraction of the database; larger appends recompile lazily (negative disables delta compilation)")
	maxResident := fs.Int("max-resident-compiled", 8, "collapse the delta chain once it pins this many compiled generations (negative disables the cap)")
	maxCompiledBytes := fs.Int64("max-compiled-bytes", 256<<20, "collapse the delta chain once its pinned-bytes estimate crosses this (negative disables the byte trigger)")
	shards := fs.Int("shards", 1, "partition the compiled artifact into this many region shards: queries route to one shard, appends delta-compile only touched shards (<=1 = monolithic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	out := &syncWriter{w: stdout}
	svc := server.New(server.Config{
		Workers:        *workers,
		DefaultTimeout: *timeout,
		CacheCap:       *cacheCap,
		Fsync:          fsync,
		FsyncInterval:  *fsyncInterval,
		SnapshotEvery:  *snapshotEvery,
		DeltaMaxFrac:   *deltaMaxFrac,

		MaxResidentCompiled: *maxResident,
		MaxCompiledBytes:    *maxCompiledBytes,
		Shards:              *shards,
	})
	if *dataDir != "" {
		// Recover before listening: a port that answers implies a
		// database that is fully restored.
		info, err := svc.Open(*dataDir)
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		fmt.Fprintf(out, "mcserved: recovered %s: generation %d, %d facts (snapshot gen %d, %d wal records replayed, %d bytes truncated)\n",
			*dataDir, info.Generation, len(info.L)+len(info.E)+len(info.R),
			info.SnapshotGeneration, info.ReplayedRecords, info.TruncatedBytes)
		for _, skipped := range info.SkippedSnapshots {
			fmt.Fprintf(out, "mcserved: skipped corrupt snapshot %s\n", skipped)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := http.Handler(server.NewHandler(svc))
	if !*quiet {
		handler = requestLog(handler, slog.New(slog.NewTextHandler(out, nil)))
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		// A dedicated mux so the profiling endpoints never leak onto
		// the service listener (and vice versa).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		fmt.Fprintf(out, "mcserved: pprof on %s/debug/pprof/\n", dln.Addr())
		go debugSrv.Serve(dln)
	}
	fmt.Fprintf(out, "mcserved: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// ErrServerClosed means an orderly Shutdown elsewhere, not a
		// serving failure; reporting it as an error would flip the exit
		// status of every clean stop. Either way the service still gets
		// its Close — with -data-dir that is the final checkpoint.
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return errors.Join(err, svc.Close(ctx))
	case sig := <-stop:
		fmt.Fprintf(out, "mcserved: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Stop accepting and wait for in-flight handlers, then drain
		// the solver pool, then the debug listener. Every error is
		// kept: a failed drain must not be masked by a clean listener
		// close (or vice versa).
		var errs []error
		if err := srv.Shutdown(ctx); err != nil {
			errs = append(errs, fmt.Errorf("server shutdown: %w", err))
		}
		if err := svc.Close(ctx); err != nil {
			errs = append(errs, err)
		}
		if debugSrv != nil {
			if err := debugSrv.Shutdown(ctx); err != nil {
				errs = append(errs, fmt.Errorf("debug server shutdown: %w", err))
			}
		}
		return errors.Join(errs...)
	}
}
