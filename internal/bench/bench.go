// Package bench packages the repo's performance probes as callable
// functions, so cmd/mcbench can measure ns/op and allocs/op outside
// `go test` and write them into the BENCH_*.json trajectory.
package bench

import (
	"context"
	"fmt"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
	"magiccounting/internal/server"
	"magiccounting/internal/workload"
)

// Micro is one micro-benchmark measurement.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// probes are the tracked micro benchmarks: the relation hot paths the
// interning work targets, the solve methods on workload generators,
// the generic engine, and the server query path.
var probes = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"relation/insert-fresh", benchInsertFresh},
	{"relation/insert-dup", benchInsertDup},
	{"relation/lookup-indexed", benchLookupIndexed},
	{"relation/frozen-scan", benchFrozenScan},
	{"solve/counting-tree", benchSolveCounting},
	{"solve/mc-recurring-int-tree", benchSolveRecurring},
	{"engine/seminaive-chain", benchSeminaive},
	{"server/query-hit", benchServerQuery},
	{"compile/build-cold", benchCompileBuild},
	{"compile/solve-warm", benchCompileSolveWarm},
	{"compile/solve-cold", benchCompileSolveCold},
	{"compile/bfs-csr", benchBFSCSR},
	{"compile/bfs-slices", benchBFSSlices},
}

// Names lists the tracked probe names in run order.
func Names() []string {
	out := make([]string, len(probes))
	for i, p := range probes {
		out[i] = p.name
	}
	return out
}

// Run measures every probe with the testing package's benchmark
// driver and returns the results in run order. Each probe is measured
// `rounds` times and the fastest round is kept — the standard guard
// against scheduler noise on shared machines, where the minimum is
// the best estimate of the code's true cost. rounds < 1 means 1.
func Run(rounds int) []Micro {
	if rounds < 1 {
		rounds = 1
	}
	out := make([]Micro, 0, len(probes))
	for _, p := range probes {
		var best Micro
		for round := 0; round < rounds; round++ {
			r := testing.Benchmark(p.fn)
			m := Micro{
				Name:        p.name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if round == 0 || m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		out = append(out, best)
	}
	return out
}

// benchTuples returns n distinct arity-2 symbol tuples, mirroring the
// relation package's microbenchmark corpus.
func benchTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{relation.Sym(fmt.Sprintf("a%d", i)), relation.Sym(fmt.Sprintf("b%d", i%97))}
	}
	return out
}

func benchInsertFresh(b *testing.B) {
	tuples := benchTuples(1 << 12)
	store := relation.NewStore()
	var rel *relation.Relation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(tuples) == 0 {
			b.StopTimer()
			rel = store.Scratch("bench", 2)
			rel.EnsureIndex(0)
			b.StartTimer()
		}
		rel.Insert(tuples[i%len(tuples)])
	}
}

func benchInsertDup(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Insert(tuples[i%len(tuples)])
	}
}

func benchLookupIndexed(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.EnsureIndex(1)
	cols := []int{1}
	vals := make([]relation.Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][1]
		r.Lookup(cols, vals, func(relation.Tuple) bool { return true })
	}
}

func benchFrozenScan(b *testing.B) {
	tuples := benchTuples(1 << 8)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.Freeze()
	cols := []int{0}
	vals := make([]relation.Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][0]
		r.Lookup(cols, vals, func(relation.Tuple) bool { return true })
	}
}

func benchSolveCounting(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(3, 6)
	for i := 0; i < b.N; i++ {
		if _, err := q.SolveCounting(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSolveRecurring(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(3, 6)
	for i := 0; i < b.N; i++ {
		if _, err := q.SolveMagicCounting(core.Recurring, core.Integrated); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeminaive(b *testing.B) {
	b.ReportAllocs()
	var src string
	src += "tc(X, Y) :- e(X, Y).\n"
	src += "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < 48; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
	}
	prog := datalog.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := relation.NewStore()
		if _, err := engine.Eval(prog, store, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// compileWorkload is the instance behind the compile/* amortization
// probes: a tree large enough that interning and CSR layout dominate a
// warm solve from a leaf. The leaf source makes the warm probe measure
// per-query setup (bind, scratch allocation) rather than fixpoint
// work, which is what amortization buys.
func compileWorkload() (core.Query, string) {
	const branch, depth = 3, 8
	q := workload.Tree(branch, depth)
	total := 0
	for d, p := 0, 1; d < depth; d, p = d+1, p*branch {
		total += p
	}
	// Node i's children are branch*i+c+1, so the last leaf under the
	// last internal node (total-1) is branch*total.
	return q, fmt.Sprintf("t%d", branch*total)
}

// benchCompileBuild measures the cold cost a query pays when nothing
// is shared: interning three relations and laying out four CSR graphs.
func benchCompileBuild(b *testing.B) {
	q, _ := compileWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := core.Compile(q.L, q.E, q.R); c.NumL() == 0 {
			b.Fatal("empty compile")
		}
	}
}

// benchCompileSolveWarm measures a query's marginal cost once the
// compiled artifact exists. Against compile/build-cold it is the
// amortization ratio the serving layer's per-generation cache banks on.
func benchCompileSolveWarm(b *testing.B) {
	q, leaf := compileWorkload()
	c := core.Compile(q.L, q.E, q.R)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Solve(leaf, core.Basic, core.Integrated, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCompileSolveCold is the same query through the one-shot Query
// wrapper: build plus solve every op, the pre-compiled-layer cost.
func benchCompileSolveCold(b *testing.B) {
	q, leaf := compileWorkload()
	q.Source = leaf
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.SolveMagicCounting(core.Basic, core.Integrated); err != nil {
			b.Fatal(err)
		}
	}
}

// benchArcs interns the workload's L relation into dense ids, the
// common input to the two BFS layout probes. Local to the bench
// package so the probes stay self-contained against core internals.
func benchArcs() (n int, arcs [][2]int32) {
	q, _ := compileWorkload()
	id := make(map[string]int32, len(q.L))
	intern := func(s string) int32 {
		if v, ok := id[s]; ok {
			return v
		}
		v := int32(len(id))
		id[s] = v
		return v
	}
	for _, p := range q.L {
		arcs = append(arcs, [2]int32{intern(p.From), intern(p.To)})
	}
	return len(id), arcs
}

// bfs runs a full traversal from node 0 given a row accessor, reusing
// the caller's visited/queue scratch; returns nodes reached.
func bfs(visited []bool, queue []int32, row func(int32) []int32) int {
	for i := range visited {
		visited[i] = false
	}
	queue = append(queue[:0], 0)
	visited[0] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range row(u) {
			if !visited[v] {
				visited[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached
}

// benchBFSCSR traverses the tree over a CSR layout (flat arc array
// plus offsets) — the representation the compiled layer adopted.
func benchBFSCSR(b *testing.B) {
	n, arcs := benchArcs()
	off := make([]int32, n+1)
	for _, a := range arcs {
		off[a[0]+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	flat := make([]int32, len(arcs))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, a := range arcs {
		flat[cur[a[0]]] = a[1]
		cur[a[0]]++
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	row := func(u int32) []int32 { return flat[off[u]:off[u+1]] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bfs(visited, queue, row); got != n {
			b.Fatalf("reached %d of %d", got, n)
		}
	}
}

// benchBFSSlices is the identical traversal over per-node adjacency
// slices — the layout the CSR form replaced.
func benchBFSSlices(b *testing.B) {
	n, arcs := benchArcs()
	adj := make([][]int32, n)
	for _, a := range arcs {
		adj[a[0]] = append(adj[a[0]], a[1])
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	row := func(u int32) []int32 { return adj[u] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bfs(visited, queue, row); got != n {
			b.Fatalf("reached %d of %d", got, n)
		}
	}
}

func benchServerQuery(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(2, 8)
	svc := server.New(server.Config{})
	if _, err := svc.AppendFacts(server.FactsRequest{L: q.L, E: q.E, R: q.R}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := server.QueryRequest{Source: "t0", Strategy: "recurring", Mode: "integrated"}
	if _, err := svc.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
