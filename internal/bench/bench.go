// Package bench packages the repo's performance probes as callable
// functions, so cmd/mcbench can measure ns/op and allocs/op outside
// `go test` and write them into the BENCH_*.json trajectory.
package bench

import (
	"context"
	"fmt"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
	"magiccounting/internal/server"
	"magiccounting/internal/workload"
)

// Micro is one micro-benchmark measurement.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// probes are the tracked micro benchmarks: the relation hot paths the
// interning work targets, the solve methods on workload generators,
// the generic engine, and the server query path.
var probes = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"relation/insert-fresh", benchInsertFresh},
	{"relation/insert-dup", benchInsertDup},
	{"relation/lookup-indexed", benchLookupIndexed},
	{"relation/frozen-scan", benchFrozenScan},
	{"solve/counting-tree", benchSolveCounting},
	{"solve/mc-recurring-int-tree", benchSolveRecurring},
	{"engine/seminaive-chain", benchSeminaive},
	{"server/query-hit", benchServerQuery},
}

// Names lists the tracked probe names in run order.
func Names() []string {
	out := make([]string, len(probes))
	for i, p := range probes {
		out[i] = p.name
	}
	return out
}

// Run measures every probe with the testing package's benchmark
// driver and returns the results in run order. Each probe is measured
// `rounds` times and the fastest round is kept — the standard guard
// against scheduler noise on shared machines, where the minimum is
// the best estimate of the code's true cost. rounds < 1 means 1.
func Run(rounds int) []Micro {
	if rounds < 1 {
		rounds = 1
	}
	out := make([]Micro, 0, len(probes))
	for _, p := range probes {
		var best Micro
		for round := 0; round < rounds; round++ {
			r := testing.Benchmark(p.fn)
			m := Micro{
				Name:        p.name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if round == 0 || m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		out = append(out, best)
	}
	return out
}

// benchTuples returns n distinct arity-2 symbol tuples, mirroring the
// relation package's microbenchmark corpus.
func benchTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{relation.Sym(fmt.Sprintf("a%d", i)), relation.Sym(fmt.Sprintf("b%d", i%97))}
	}
	return out
}

func benchInsertFresh(b *testing.B) {
	tuples := benchTuples(1 << 12)
	store := relation.NewStore()
	var rel *relation.Relation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(tuples) == 0 {
			b.StopTimer()
			rel = store.Scratch("bench", 2)
			rel.EnsureIndex(0)
			b.StartTimer()
		}
		rel.Insert(tuples[i%len(tuples)])
	}
}

func benchInsertDup(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Insert(tuples[i%len(tuples)])
	}
}

func benchLookupIndexed(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.EnsureIndex(1)
	cols := []int{1}
	vals := make([]relation.Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][1]
		r.Lookup(cols, vals, func(relation.Tuple) bool { return true })
	}
}

func benchFrozenScan(b *testing.B) {
	tuples := benchTuples(1 << 8)
	r := relation.NewStore().Scratch("bench", 2)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.Freeze()
	cols := []int{0}
	vals := make([]relation.Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][0]
		r.Lookup(cols, vals, func(relation.Tuple) bool { return true })
	}
}

func benchSolveCounting(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(3, 6)
	for i := 0; i < b.N; i++ {
		if _, err := q.SolveCounting(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSolveRecurring(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(3, 6)
	for i := 0; i < b.N; i++ {
		if _, err := q.SolveMagicCounting(core.Recurring, core.Integrated); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeminaive(b *testing.B) {
	b.ReportAllocs()
	var src string
	src += "tc(X, Y) :- e(X, Y).\n"
	src += "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < 48; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
	}
	prog := datalog.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := relation.NewStore()
		if _, err := engine.Eval(prog, store, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchServerQuery(b *testing.B) {
	b.ReportAllocs()
	q := workload.Tree(2, 8)
	svc := server.New(server.Config{})
	if _, err := svc.AppendFacts(server.FactsRequest{L: q.L, E: q.E, R: q.R}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := server.QueryRequest{Source: "t0", Strategy: "recurring", Mode: "integrated"}
	if _, err := svc.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
