package bench

import "testing"

// TestTraceGuardNoDrift is the cheap (timing-free) half of the trace
// guard: across every instrumented path, an enabled-but-unsampled
// trace must charge exactly the retrievals the disabled path does.
func TestTraceGuardNoDrift(t *testing.T) {
	guards, err := RunTraceGuard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(guards) == 0 {
		t.Fatal("no trace probes ran")
	}
	for _, g := range guards {
		if g.RetrievalsDisabled != g.RetrievalsUnsampled {
			t.Errorf("%s: retrievals drifted, %d disabled vs %d unsampled",
				g.Name, g.RetrievalsDisabled, g.RetrievalsUnsampled)
		}
		if g.RetrievalsDisabled == 0 {
			t.Errorf("%s: probe charged no retrievals — not exercising the hot path", g.Name)
		}
		if g.DisabledNsPerOp != 0 || g.UnsampledNsPerOp != 0 {
			t.Errorf("%s: rounds=0 should skip timing, got %v/%v ns",
				g.Name, g.DisabledNsPerOp, g.UnsampledNsPerOp)
		}
	}
}
