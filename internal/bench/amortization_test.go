package bench

import "testing"

// TestCompileAmortization pins the acceptance criterion of the
// compiled-instance layer: a warm per-query solve against a shared
// Compiled must cost at least 5x less than the cold per-query build it
// replaces. The observed ratio is ~100x; 5x leaves generous headroom
// for scheduler noise, and a timing-flake retry keeps CI honest.
func TestCompileAmortization(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const want = 5.0
	var ratio float64
	for round := 0; round < 3; round++ {
		cold := testing.Benchmark(benchCompileBuild)
		warm := testing.Benchmark(benchCompileSolveWarm)
		coldNs := float64(cold.T.Nanoseconds()) / float64(cold.N)
		warmNs := float64(warm.T.Nanoseconds()) / float64(warm.N)
		if warmNs <= 0 {
			continue
		}
		ratio = coldNs / warmNs
		if ratio >= want {
			return
		}
	}
	t.Errorf("compile amortization ratio = %.1fx, want >= %.0fx", ratio, want)
}
