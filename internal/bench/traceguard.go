package bench

import (
	"fmt"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/obs"
	"magiccounting/internal/relation"
	"magiccounting/internal/workload"
)

// TraceGuard is one probe's tracing-overhead comparison: the same
// work run with tracing disabled (nil trace, the production default)
// and with a trace that is enabled but unsampled (obs.Disarmed —
// every instrumentation site reached, nothing recorded). The two runs
// must retrieve identical tuple counts, and the disabled path must
// not have slowed down to pay for the instrumentation.
type TraceGuard struct {
	Name                string  `json:"name"`
	DisabledNsPerOp     float64 `json:"disabled_ns_per_op"`
	UnsampledNsPerOp    float64 `json:"unsampled_ns_per_op"`
	RetrievalsDisabled  int64   `json:"retrievals_disabled"`
	RetrievalsUnsampled int64   `json:"retrievals_unsampled"`
}

// traceProbe is one instrumented path: run evaluates it under the
// given trace (nil = disabled) and reports the tuple retrievals
// charged.
type traceProbe struct {
	name string
	run  func(tr *obs.Trace) (int64, error)
}

// traceProbes covers every instrumented solver family: the counting
// solver, the magic counting Step 1/Step 2 path, and the generic
// engine's stratum/round loop.
func traceProbes() []traceProbe {
	qTree := workload.Tree(3, 6)
	var src string
	src += "tc(X, Y) :- e(X, Y).\n"
	src += "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < 48; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
	}
	prog := datalog.MustParse(src)
	return []traceProbe{
		{"solve/counting-tree", func(tr *obs.Trace) (int64, error) {
			res, err := qTree.SolveCountingOpts(core.Options{Trace: tr})
			if err != nil {
				return 0, err
			}
			return res.Stats.Retrievals, nil
		}},
		{"solve/mc-recurring-int-tree", func(tr *obs.Trace) (int64, error) {
			res, err := qTree.SolveMagicCountingOpts(core.Recurring, core.Integrated, core.Options{Trace: tr})
			if err != nil {
				return 0, err
			}
			return res.Stats.Retrievals, nil
		}},
		{"engine/seminaive-chain", func(tr *obs.Trace) (int64, error) {
			store := relation.NewStore()
			if _, err := engine.Eval(prog, store, engine.Options{Trace: tr}); err != nil {
				return 0, err
			}
			return store.Meter().Retrievals(), nil
		}},
	}
}

// RunTraceGuard measures every trace probe disabled vs unsampled.
// Retrieval counts always come from one run of each configuration.
// With rounds >= 1, each configuration is also timed that many times
// through the testing benchmark driver, interleaved so machine drift
// hits both sides alike, keeping the fastest round (as in Run); with
// rounds < 1 the timing is skipped and the ns fields stay zero —
// the cheap drift-only mode the unit tests use.
func RunTraceGuard(rounds int) ([]TraceGuard, error) {
	var out []TraceGuard
	for _, p := range traceProbes() {
		disabled, err := p.run(nil)
		if err != nil {
			return nil, fmt.Errorf("%s (tracing disabled): %w", p.name, err)
		}
		unsampled, err := p.run(obs.Disarmed())
		if err != nil {
			return nil, fmt.Errorf("%s (unsampled trace): %w", p.name, err)
		}
		g := TraceGuard{
			Name:                p.name,
			RetrievalsDisabled:  disabled,
			RetrievalsUnsampled: unsampled,
		}
		run := p.run
		for round := 0; round < rounds; round++ {
			rd := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := run(nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			ru := testing.Benchmark(func(b *testing.B) {
				tr := obs.Disarmed()
				for i := 0; i < b.N; i++ {
					if _, err := run(tr); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsd := float64(rd.T.Nanoseconds()) / float64(rd.N)
			nsu := float64(ru.T.Nanoseconds()) / float64(ru.N)
			if round == 0 || nsd < g.DisabledNsPerOp {
				g.DisabledNsPerOp = nsd
			}
			if round == 0 || nsu < g.UnsampledNsPerOp {
				g.UnsampledNsPerOp = nsu
			}
		}
		out = append(out, g)
	}
	return out, nil
}
