// Package rewrite implements the program transformations of the
// paper: the generalized magic-sets rewrite for adorned Datalog
// programs, the counting rewrite for canonical strongly linear
// queries, and the emission of the independent (§4) and integrated
// (§5) magic counting rule sets as ordinary Datalog — so the generic
// engine can cross-validate the specialized core solvers rule for
// rule.
package rewrite

import (
	"fmt"

	"magiccounting/internal/datalog"
)

// MagicPrefix prefixes the magic predicate of an adorned predicate.
const MagicPrefix = "m_"

// MagicSets rewrites an adorned program with the generalized magic
// sets transformation:
//
//   - every adorned rule p :- B gets a modified version
//     p :- m_p(bound args), B;
//   - every positive IDB body literal q in a rule for p yields a magic
//     rule m_q(its bound args) :- m_p(p's bound args), literals before q;
//   - the query seeds m_goal with the goal's constants.
//
// It returns the rewritten program (rules plus the magic seed fact)
// and the renamed goal to ask of it.
func MagicSets(ap *datalog.AdornedProgram) (*datalog.Program, datalog.Atom, error) {
	idb := make(map[string]bool)
	for _, r := range ap.Rules {
		idb[r.Head.Pred] = true
	}
	out := &datalog.Program{}
	for _, r := range ap.Rules {
		headAd, err := adornmentOf(r.Head.Pred)
		if err != nil {
			return nil, datalog.Atom{}, err
		}
		magicHead := magicAtom(r.Head, headAd)
		// Modified rule: gate the original rule with its magic
		// predicate.
		modified := datalog.Rule{Head: r.Head}
		modified.Body = append(modified.Body, datalog.Pos(magicHead))
		modified.Body = append(modified.Body, r.Body...)
		out.AddRule(modified)
		// Magic rules for IDB body literals.
		for i, l := range r.Body {
			if l.Negated || l.Atom.IsBuiltin() || !idb[l.Atom.Pred] {
				continue
			}
			bodyAd, err := adornmentOf(l.Atom.Pred)
			if err != nil {
				return nil, datalog.Atom{}, err
			}
			if bodyAd.AllFree() {
				// A free call needs no restriction: seed its magic
				// predicate unconditionally.
				out.AddFact(datalog.Atom{Pred: MagicPrefix + l.Atom.Pred})
				continue
			}
			mr := datalog.Rule{Head: magicAtom(l.Atom, bodyAd)}
			mr.Body = append(mr.Body, datalog.Pos(magicHead))
			mr.Body = append(mr.Body, r.Body[:i]...)
			out.AddRule(mr)
		}
	}
	// Seed: the query's bound constants.
	goal := datalog.Atom{Pred: ap.QueryPred, Args: ap.Goal.Args}
	seed := magicAtom(goal, ap.QueryAdornment)
	if len(seed.Args) > 0 || ap.QueryAdornment.AllFree() {
		out.AddFact(seed)
	}
	return out, goal, nil
}

// magicAtom projects an atom onto its bound positions under the given
// adornment and renames it with the magic prefix.
func magicAtom(a datalog.Atom, ad datalog.Adornment) datalog.Atom {
	var args []datalog.Term
	for _, i := range ad.BoundPositions() {
		args = append(args, a.Args[i])
	}
	return datalog.Atom{Pred: MagicPrefix + a.Pred, Args: args}
}

// adornmentOf extracts the adornment from an adorned predicate name
// (the suffix after the final "__").
func adornmentOf(pred string) (datalog.Adornment, error) {
	for i := len(pred) - 2; i > 0; i-- {
		if pred[i] == '_' && pred[i-1] == '_' {
			return datalog.Adornment(pred[i+1:]), nil
		}
	}
	return "", fmt.Errorf("rewrite: %s is not an adorned predicate name", pred)
}

// MagicSetsForQuery is the full pipeline: adorn p for the goal, then
// apply the magic rewrite. The returned program still needs the
// original program's facts (they are not copied).
func MagicSetsForQuery(p *datalog.Program, goal datalog.Atom) (*datalog.Program, datalog.Atom, error) {
	ap, err := datalog.Adorn(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	rewritten, renamed, err := MagicSets(ap)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	rewritten.Facts = append(rewritten.Facts, p.Facts...)
	return rewritten, renamed, nil
}
