package rewrite

import (
	"strings"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
)

// canonAnswers evaluates the canonicalized query with a core method
// and with the plain seminaive engine, requiring both to agree, and
// returns the answers.
func canonAnswers(t *testing.T, src string) []string {
	t.Helper()
	prog := datalog.MustParse(src)
	goal := prog.Queries[0]
	// Ground truth: seminaive on the untouched program.
	store := relation.NewStore()
	tuples, err := engine.Answers(prog, goal, store, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := extractFree(tuples, goal)
	// Canonicalize, extract, and solve with the magic set method and
	// a magic counting method.
	canon, cgoal, err := Canonicalize(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := ExtractQuery(canon, cgoal)
	if err != nil {
		t.Fatal(err)
	}
	magic, err := q.SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(magic.Answers, want) {
		t.Fatalf("magic on canonicalized = %v, engine = %v", magic.Answers, want)
	}
	mc, err := q.SolveMagicCounting(core.Recurring, core.Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(mc.Answers, want) {
		t.Fatalf("magic counting on canonicalized = %v, engine = %v", mc.Answers, want)
	}
	return want
}

func TestCanonicalizeStrictShapePassesThrough(t *testing.T) {
	prog := datalog.MustParse(`
e(a, ra).
p(X, Y) :- e(X, Y).
p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).
l(a, b). r(rb, ra).
?- p(a, Y).
`)
	goal := prog.Queries[0]
	canon, _, err := Canonicalize(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	if canon != prog {
		t.Fatal("strict programs should pass through unchanged")
	}
}

func TestCanonicalizeConjunctiveSameGeneration(t *testing.T) {
	// Same generation counted in grandparent steps: the up and down
	// links are two-atom conjuncts.
	src := `
par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).
par(d1, p2). par(q1, g2). par(d2, q1).
person(c1). person(c2). person(d1). person(d2).
person(p1). person(p2). person(g1). person(g2). person(q1).
sg2(X, Y) :- person(X), X = Y.
sg2(X, Y) :- par(X, P), par(P, X1), sg2(X1, Y1), par(Y, Q), par(Q, Y1).
?- sg2(c1, Y).
`
	got := canonAnswers(t, src)
	// c1's grandparent is g1; d1's grandparent is g1 too (via p2);
	// d2's is g2 — not connected upward from c1's line, so d2 only
	// appears if g2 is reachable, which it is not.
	want := []string{"c1", "c2", "d1"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestCanonicalizeRightLinearTransitiveClosure(t *testing.T) {
	// p(X, Y) :- e0(X, Y). p(X, Y) :- l(X, X1), p(X1, Y): Y passes
	// through, so R is the identity over exit targets.
	src := `
l(a, b). l(b, c). l(c, d). l(z, z2).
e0(b, t1). e0(d, t2).
p(X, Y) :- e0(X, Y).
p(X, Y) :- l(X, X1), p(X1, Y).
?- p(a, Y).
`
	got := canonAnswers(t, src)
	want := []string{"t1", "t2"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestCanonicalizeRightLinearOnCycleStaysSafe(t *testing.T) {
	src := `
l(a, b). l(b, a).
e0(a, hit).
p(X, Y) :- e0(X, Y).
p(X, Y) :- l(X, X1), p(X1, Y).
?- p(a, Y).
`
	got := canonAnswers(t, src)
	if !equalStrings(got, []string{"hit"}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestCanonicalizeLeftLinear(t *testing.T) {
	// p(X, Y) :- p(X, Y1), r(Y, Y1): X passes through — the magic
	// graph is the query constant alone (with the identity self-loop,
	// making it recurring; counting is unsafe, magic counting fine).
	src := `
e0(a, r3).
r(r2, r3). r(r1, r2). r(r0, r1).
p(X, Y) :- e0(X, Y).
p(X, Y) :- p(X, Y1), r(Y, Y1).
?- p(a, Y).
`
	got := canonAnswers(t, src)
	want := []string{"r0", "r1", "r2", "r3"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestCanonicalizeFiltersJoinTheirSide(t *testing.T) {
	// An extra filter on the X side rides along in the up conjunct.
	src := `
l(a, b). l(b, c). ok(a). ok(b).
e0(a, ra). e0(b, rb). e0(c, rc).
r(rx, ra). r(rx, rb). r(rx, rc).
p(X, Y) :- e0(X, Y).
p(X, Y) :- l(X, X1), ok(X), p(X1, Y1), r(Y, Y1).
?- p(a, Y).
`
	got := canonAnswers(t, src)
	// k=0: ra. k=1 via b (ok(a)): rb one step below... descent lands
	// on rx's sources; engine is ground truth here.
	if len(got) == 0 {
		t.Fatalf("expected answers, got none")
	}
}

func TestCanonicalizeRejectsOutOfClass(t *testing.T) {
	cases := []string{
		// nonlinear
		`p(X, Y) :- e0(X, Y).
		 p(X, Y) :- p(X, Z), p(Z, Y).
		 ?- p(a, Y).`,
		// sides share a variable
		`p(X, Y) :- e0(X, Y).
		 p(X, Y) :- l(X, W, X1), p(X1, Y1), r(Y, W, Y1).
		 ?- p(a, Y).`,
		// X not connected to X1
		`p(X, Y) :- e0(X, Y).
		 p(X, Y) :- l(X, X), p(X1, Y1), r(Y, Y1), q(X1).
		 ?- p(a, Y).`,
	}
	for i, src := range cases {
		prog := datalog.MustParse(src)
		if _, _, err := Canonicalize(prog, prog.Queries[0]); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestMCProgramEndToEnd(t *testing.T) {
	src := `
l(a, b). l(b, c). l(c, a).
e0(b, rb). e0(c, rc).
r(rz, rb). r(ry, rc). r(rx, ry).
p(X, Y) :- e0(X, Y).
p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).
?- p(a, Y).
`
	prog := datalog.MustParse(src)
	goal := prog.Queries[0]
	q, _, err := ExtractQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.Independent, core.Integrated} {
		for _, strat := range []core.Strategy{core.Basic, core.Recurring} {
			mc, renamed, err := MCProgram(datalog.MustParse(src), goal, strat, mode)
			if err != nil {
				t.Fatalf("%v/%v: %v", strat, mode, err)
			}
			got := answersOf(t, mc, renamed, engine.Options{})
			if !equalStrings(got, want.Answers) {
				t.Fatalf("%v/%v: %v, want %v", strat, mode, got, want.Answers)
			}
		}
	}
	// Out-of-class programs propagate the recognition error.
	bad := datalog.MustParse(`
p(X, Y) :- e0(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
?- p(a, Y).
`)
	if _, _, err := MCProgram(bad, bad.Queries[0], core.Basic, core.Independent); err == nil {
		t.Fatal("nonlinear program should fail")
	}
}

func TestCanonicalizeEmitsAuxiliaryRules(t *testing.T) {
	src := `
par(a, b).
sg2(X, Y) :- peer(X, Y).
sg2(X, Y) :- par(X, P), par(P, X1), sg2(X1, Y1), par(Y, Q), par(Q, Y1).
?- sg2(a, Y).
`
	prog := datalog.MustParse(src)
	canon, _, err := Canonicalize(prog, prog.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	text := canon.String()
	if !strings.Contains(text, "up__sg2") || !strings.Contains(text, "down__sg2") {
		t.Fatalf("auxiliary rules missing:\n%s", text)
	}
	if _, err := Recognize(canon, prog.Queries[0]); err != nil {
		t.Fatalf("canonicalized program not strict: %v", err)
	}
}
