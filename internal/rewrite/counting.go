package rewrite

import (
	"fmt"

	"magiccounting/internal/datalog"
)

// CanonicalQuery is the recognized canonical strongly linear shape:
//
//	?- P(a, Y).
//	P(X, Y) :- <exit body over X, Y>.
//	P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
//
// Up and Down are the L and R literals of the recursive rule; Exit is
// the exit rule's body.
type CanonicalQuery struct {
	Pred     string
	Goal     datalog.Atom
	Exit     datalog.Rule
	Up, Down datalog.Atom
	// HeadX, HeadY, RecX1, RecY1 are the variable names playing the
	// X, Y, X1, Y1 roles of the recursive rule.
	HeadX, HeadY, RecX1, RecY1 string
}

// Recognize matches p and goal against the canonical strongly linear
// shape. It returns an error describing the first mismatch; the
// counting and magic counting rewrites are defined only for this
// class (the paper defers the general case to future work).
func Recognize(p *datalog.Program, goal datalog.Atom) (*CanonicalQuery, error) {
	if len(goal.Args) != 2 {
		return nil, fmt.Errorf("rewrite: goal %s must be binary", goal)
	}
	if goal.Args[0].IsVar() || !goal.Args[1].IsVar() {
		return nil, fmt.Errorf("rewrite: goal %s must bind its first argument only", goal)
	}
	pred := goal.Pred
	var exitRules, recRules []datalog.Rule
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			// Other predicates must not depend on pred (strict
			// canonical form keeps the recursion self-contained).
			for _, l := range r.Body {
				if l.Atom.Pred == pred {
					return nil, fmt.Errorf("rewrite: %s is used outside its own recursion", pred)
				}
			}
			continue
		}
		occurrences := 0
		for _, l := range r.Body {
			if l.Atom.Pred == pred {
				if l.Negated {
					return nil, fmt.Errorf("rewrite: negated recursion in %s", r)
				}
				occurrences++
			}
		}
		switch occurrences {
		case 0:
			exitRules = append(exitRules, r)
		case 1:
			recRules = append(recRules, r)
		default:
			return nil, fmt.Errorf("rewrite: rule %s is not linear", r)
		}
	}
	if len(exitRules) != 1 || len(recRules) != 1 {
		return nil, fmt.Errorf("rewrite: %s needs exactly one exit and one linear recursive rule, found %d/%d",
			pred, len(exitRules), len(recRules))
	}
	exit, rec := exitRules[0], recRules[0]
	if len(exit.Head.Args) != 2 || len(rec.Head.Args) != 2 {
		return nil, fmt.Errorf("rewrite: %s must be binary", pred)
	}
	if !rec.Head.Args[0].IsVar() || !rec.Head.Args[1].IsVar() {
		return nil, fmt.Errorf("rewrite: recursive head %s must have variable arguments", rec.Head)
	}
	cq := &CanonicalQuery{
		Pred:  pred,
		Goal:  goal,
		Exit:  exit,
		HeadX: rec.Head.Args[0].Var,
		HeadY: rec.Head.Args[1].Var,
	}
	if cq.HeadX == cq.HeadY {
		return nil, fmt.Errorf("rewrite: recursive head %s repeats a variable", rec.Head)
	}
	// Find the three body atoms and their roles.
	var recAtom datalog.Atom
	var others []datalog.Atom
	for _, l := range rec.Body {
		if l.Negated || l.Atom.IsBuiltin() {
			return nil, fmt.Errorf("rewrite: canonical recursive rule cannot contain %s", l)
		}
		if l.Atom.Pred == pred {
			recAtom = l.Atom
		} else {
			others = append(others, l.Atom)
		}
	}
	if len(others) != 2 {
		return nil, fmt.Errorf("rewrite: recursive rule must have exactly the L, P, R literals, found %d extras", len(others))
	}
	if len(recAtom.Args) != 2 || !recAtom.Args[0].IsVar() || !recAtom.Args[1].IsVar() {
		return nil, fmt.Errorf("rewrite: recursive call %s must have two variables", recAtom)
	}
	cq.RecX1 = recAtom.Args[0].Var
	cq.RecY1 = recAtom.Args[1].Var
	if cq.RecX1 == cq.RecY1 {
		return nil, fmt.Errorf("rewrite: recursive call %s repeats a variable", recAtom)
	}
	// The up atom connects HeadX to RecX1; the down atom connects
	// HeadY to RecY1, in either order in the body.
	for _, a := range others {
		switch {
		case isLink(a, cq.HeadX, cq.RecX1):
			cq.Up = a
		case isLink(a, cq.HeadY, cq.RecY1):
			cq.Down = a
		default:
			return nil, fmt.Errorf("rewrite: literal %s links neither X to X1 nor Y to Y1", a)
		}
	}
	if cq.Up.Pred == "" || cq.Down.Pred == "" {
		return nil, fmt.Errorf("rewrite: recursive rule lacks an up or down literal")
	}
	return cq, nil
}

// isLink reports whether a is a binary atom over exactly the two
// given variables, in order (v1 first): the canonical L(X, X1) /
// R(Y, Y1) orientation.
func isLink(a datalog.Atom, v1, v2 string) bool {
	return len(a.Args) == 2 &&
		a.Args[0].IsVar() && a.Args[0].Var == v1 &&
		a.Args[1].IsVar() && a.Args[1].Var == v2
}

// Counting rewrites a canonical query into the counting program Q_C
// of §2:
//
//	cs_p(0, a).
//	cs_p(J1, X1) :- cs_p(J, X), L(X, X1), J1 is J + 1.
//	pc_p(J, Y)   :- cs_p(J, X), <exit body>.
//	pc_p(J1, Y)  :- pc_p(J, Y1), R(Y, Y1), J1 is J - 1.
//	answer_p(Y)  :- pc_p(0, Y).
//
// The returned goal is answer_p(Y). The rewritten program diverges on
// cyclic magic graphs — exactly the paper's unsafe regime — which the
// engine's iteration guard turns into ErrIterationLimit.
func Counting(p *datalog.Program, goal datalog.Atom) (*datalog.Program, datalog.Atom, error) {
	cq, err := Recognize(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	cs := "cs_" + cq.Pred
	pc := "pc_" + cq.Pred
	ans := "answer_" + cq.Pred
	j, j1 := datalog.V("J#"), datalog.V("J1#")
	out := &datalog.Program{}
	out.Facts = append(out.Facts, p.Facts...)
	copyNonRecursiveRules(out, p, cq.Pred)
	out.AddFact(datalog.NewAtom(cs, datalog.N(0), cq.Goal.Args[0]))
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(cs, j1, datalog.V(cq.RecX1)),
		datalog.NewAtom(cs, j, datalog.V(cq.HeadX)),
		cq.Up,
		datalog.NewAtom(datalog.BuiltinAdd, j, datalog.N(1), j1),
	))
	// Exit transfer keeps the exit rule's own body, with its head
	// variables renamed to the roles X and Y.
	exitBody := cq.Exit.Body
	exitX, exitY := cq.Exit.Head.Args[0], cq.Exit.Head.Args[1]
	transfer := datalog.Rule{Head: datalog.NewAtom(pc, j, termOrVar(exitY))}
	transfer.Body = append(transfer.Body, datalog.Pos(datalog.NewAtom(cs, j, termOrVar(exitX))))
	transfer.Body = append(transfer.Body, exitBody...)
	out.AddRule(transfer)
	// Descent stops at index 0: without the J >= 1 guard a cyclic
	// R side would generate ever more negative indices.
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(pc, j1, datalog.V(cq.HeadY)),
		datalog.NewAtom(pc, j, datalog.V(cq.RecY1)),
		datalog.NewAtom(datalog.BuiltinGe, j, datalog.N(1)),
		cq.Down,
		datalog.NewAtom(datalog.BuiltinAdd, j1, datalog.N(1), j),
	))
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(ans, datalog.V("Y#")),
		datalog.NewAtom(pc, datalog.N(0), datalog.V("Y#")),
	))
	return out, datalog.NewAtom(ans, datalog.V("Y#")), nil
}

// termOrVar passes a term through (it may be a variable of the exit
// rule or a constant such as the same-generation identity).
func termOrVar(t datalog.Term) datalog.Term { return t }

// copyNonRecursiveRules copies every rule not defining pred, so exit
// bodies over derived predicates keep working after the rewrite.
func copyNonRecursiveRules(dst, src *datalog.Program, pred string) {
	for _, r := range src.Rules {
		if r.Head.Pred != pred {
			dst.AddRule(r)
		}
	}
}
