package rewrite

import (
	"fmt"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
)

// ExtractQuery converts a canonical Datalog program plus goal into a
// core.Query, so the specialized solvers can run side by side with
// the generic engine. Programs in the broader canonical strongly
// linear class are first normalized with Canonicalize (conjunctive
// links, left/right-linear rules). The L and R relations are then
// taken from the program's facts (and any rules defining them); the
// E relation is the materialization of the exit rule's body projected
// onto the head arguments, which also covers non-atomic exits such as
// the same-generation identity `sg(X, X) :- person(X)`.
func ExtractQuery(p *datalog.Program, goal datalog.Atom) (core.Query, *CanonicalQuery, error) {
	p, goal, err := Canonicalize(p, goal)
	if err != nil {
		return core.Query{}, nil, err
	}
	cq, err := Recognize(p, goal)
	if err != nil {
		return core.Query{}, nil, err
	}
	// Materialize the base relations (they may themselves be derived
	// by non-recursive rules).
	store := relation.NewStore()
	base := &datalog.Program{Facts: p.Facts}
	copyNonRecursiveRules(base, p, cq.Pred)
	// Project the exit body onto (X, Y).
	exitX, exitY := cq.Exit.Head.Args[0], cq.Exit.Head.Args[1]
	exitPred := "exit#" + cq.Pred
	exitRule := datalog.Rule{Head: datalog.NewAtom(exitPred, exitX, exitY)}
	exitRule.Body = append(exitRule.Body, cq.Exit.Body...)
	base.AddRule(exitRule)
	if _, err := engine.Eval(base, store, engine.Options{}); err != nil {
		return core.Query{}, nil, fmt.Errorf("rewrite: materializing base relations: %w", err)
	}
	q := core.Query{Source: cq.Goal.Args[0].Const.String()}
	q.L = pairsOf(store, cq.Up.Pred)
	q.R = pairsOf(store, cq.Down.Pred)
	q.E = pairsOf(store, exitPred)
	return q, cq, nil
}

func pairsOf(store *relation.Store, pred string) []core.Pair {
	rel, ok := store.Lookup(pred)
	if !ok {
		return nil
	}
	var out []core.Pair
	for _, t := range rel.SortedTuples() {
		out = append(out, core.P(t[0].String(), t[1].String()))
	}
	return out
}

// MCProgram is the end-to-end pipeline for evaluating a canonical
// query with a magic counting method on the generic engine: extract
// the core query, run Step 1, emit the §4/§5 rule set, and inject the
// reduced sets as facts. It returns the ready-to-evaluate program and
// its goal.
func MCProgram(p *datalog.Program, goal datalog.Atom, strategy core.Strategy, mode core.Mode) (*datalog.Program, datalog.Atom, error) {
	q, cq, err := ExtractQuery(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	preds := DefaultReducedSetPreds(cq.Pred)
	facts, err := ReducedSetFacts(q, strategy, mode, preds)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	var prog *datalog.Program
	var renamed datalog.Atom
	if mode == core.Integrated {
		prog, renamed, err = IntegratedMC(p, goal, preds)
	} else {
		prog, renamed, err = IndependentMC(p, goal, preds)
	}
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	for _, f := range facts {
		prog.AddFact(f)
	}
	return prog, renamed, nil
}
