package rewrite

import (
	"fmt"

	"magiccounting/internal/datalog"
)

// Canonicalize transforms a query in the broader canonical strongly
// linear class ([SZ1]) into the strict L/P/R shape Recognize accepts,
// emitting auxiliary rules that materialize the composed relations:
//
//   - conjunctive links become derived predicates, e.g.
//     sg(X, Y) :- par(X, P), par(P, X1), sg(X1, Y1), par(Y, Q), par(Q, Y1).
//     gains up__sg(X, X1) :- par(X, P), par(P, X1)  (and down__sg alike);
//
//   - a right-linear rule p(X, Y) :- l(X, X1), p(X1, Y) (the
//     transitive-closure shape) gets the identity down relation over
//     the exit targets;
//
//   - a left-linear rule p(X, Y) :- p(X, Y1), r(Y, Y1) gets the
//     identity up relation over the query constant.
//
// The returned program contains the original facts, the auxiliary
// rules, and the rewritten recursive rule; the goal is unchanged. If
// the program is already in strict shape it is returned as is. The
// transformation fails on programs outside the class (nonlinear
// recursion, links sharing variables across the X and Y sides, ...).
func Canonicalize(p *datalog.Program, goal datalog.Atom) (*datalog.Program, datalog.Atom, error) {
	if _, err := Recognize(p, goal); err == nil {
		return p, goal, nil
	}
	exit, rec, err := splitRules(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	if len(rec.Head.Args) != 2 || !rec.Head.Args[0].IsVar() || !rec.Head.Args[1].IsVar() {
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: recursive head %s must be binary over variables", rec.Head)
	}
	headX, headY := rec.Head.Args[0].Var, rec.Head.Args[1].Var
	if headX == headY {
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: recursive head repeats a variable")
	}
	var recAtom datalog.Atom
	var rest []datalog.Literal
	for _, l := range rec.Body {
		if !l.Negated && l.Atom.Pred == goal.Pred {
			recAtom = l.Atom
		} else {
			rest = append(rest, l)
		}
	}
	if len(recAtom.Args) != 2 || !recAtom.Args[0].IsVar() || !recAtom.Args[1].IsVar() {
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: recursive call %s must be binary over variables", recAtom)
	}
	recX1, recY1 := recAtom.Args[0].Var, recAtom.Args[1].Var

	// Partition the remaining literals into the X side (connecting
	// headX to recX1) and the Y side (headY to recY1) by variable
	// connectivity.
	xSide, ySide, err := partitionSides(rest, headX, headY, recX1, recY1)
	if err != nil {
		return nil, datalog.Atom{}, err
	}

	out := &datalog.Program{Facts: append([]datalog.Atom(nil), p.Facts...)}
	copyNonRecursiveRules(out, p, goal.Pred)
	out.AddRule(exit)
	upPred := "up__" + goal.Pred
	downPred := "down__" + goal.Pred

	// X side: a conjunct, or the identity when the rule is
	// left-linear (X passes through unchanged).
	switch {
	case headX == recX1:
		if len(xSide) > 0 {
			return nil, datalog.Atom{}, fmt.Errorf("rewrite: left-linear rule must not constrain X further")
		}
		// The magic graph is the single query constant.
		out.AddFact(datalog.NewAtom(upPred, goal.Args[0], goal.Args[0]))
	case len(xSide) == 0:
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: no literals connect %s to %s", headX, recX1)
	default:
		up := datalog.Rule{Head: datalog.NewAtom(upPred, datalog.V(headX), datalog.V(recX1))}
		up.Body = xSide
		out.AddRule(up)
	}

	// Y side: a conjunct, or the identity over exit targets when the
	// rule is right-linear (Y passes through unchanged).
	switch {
	case headY == recY1:
		if len(ySide) > 0 {
			return nil, datalog.Atom{}, fmt.Errorf("rewrite: right-linear rule must not constrain Y further")
		}
		// Identity over every value the exit rule can produce: the
		// descent then carries answers through unchanged.
		idRule := datalog.Rule{Head: datalog.NewAtom(downPred, exit.Head.Args[1], exit.Head.Args[1])}
		idRule.Body = append(idRule.Body, exit.Body...)
		out.AddRule(idRule)
	case len(ySide) == 0:
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: no literals connect %s to %s", headY, recY1)
	default:
		down := datalog.Rule{Head: datalog.NewAtom(downPred, datalog.V(headY), datalog.V(recY1))}
		down.Body = ySide
		out.AddRule(down)
	}

	// For left/right-linear rules the call variable equals the head
	// variable; rename it apart and let the identity link relation
	// carry the value, restoring the strict shape.
	callX, callY := recX1, recY1
	if headX == recX1 {
		callX = recX1 + "__id"
	}
	if headY == recY1 {
		callY = recY1 + "__id"
	}
	newRec := datalog.NewRule(rec.Head,
		datalog.NewAtom(upPred, datalog.V(headX), datalog.V(callX)),
		datalog.NewAtom(goal.Pred, datalog.V(callX), datalog.V(callY)),
		datalog.NewAtom(downPred, datalog.V(headY), datalog.V(callY)),
	)
	out.AddRule(newRec)
	if _, err := Recognize(out, goal); err != nil {
		return nil, datalog.Atom{}, fmt.Errorf("rewrite: canonicalization failed to reach strict shape: %w", err)
	}
	return out, goal, nil
}

// splitRules finds the single exit rule and single linear recursive
// rule for the goal predicate.
func splitRules(p *datalog.Program, goal datalog.Atom) (exit, rec datalog.Rule, err error) {
	var exits, recs []datalog.Rule
	for _, r := range p.Rules {
		if r.Head.Pred != goal.Pred {
			for _, l := range r.Body {
				if l.Atom.Pred == goal.Pred {
					return exit, rec, fmt.Errorf("rewrite: %s is used outside its own recursion", goal.Pred)
				}
			}
			continue
		}
		n := 0
		for _, l := range r.Body {
			if l.Atom.Pred == goal.Pred {
				if l.Negated {
					return exit, rec, fmt.Errorf("rewrite: negated recursion in %s", r)
				}
				n++
			}
		}
		switch n {
		case 0:
			exits = append(exits, r)
		case 1:
			recs = append(recs, r)
		default:
			return exit, rec, fmt.Errorf("rewrite: rule %s is not linear", r)
		}
	}
	if len(exits) != 1 || len(recs) != 1 {
		return exit, rec, fmt.Errorf("rewrite: %s needs exactly one exit and one linear recursive rule, found %d/%d",
			goal.Pred, len(exits), len(recs))
	}
	return exits[0], recs[0], nil
}

// partitionSides splits literals into the X-side and Y-side conjuncts
// by variable connectivity, rejecting literals that connect the two
// sides or float free of both.
func partitionSides(lits []datalog.Literal, headX, headY, recX1, recY1 string) (xSide, ySide []datalog.Literal, err error) {
	// Union-find over variable names.
	parent := map[string]string{}
	var find func(string) string
	find = func(v string) string {
		if parent[v] == "" || parent[v] == v {
			parent[v] = v
			return v
		}
		r := find(parent[v])
		parent[v] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, l := range lits {
		vars := l.Atom.Vars(nil)
		for i := 1; i < len(vars); i++ {
			union(vars[0], vars[i])
		}
	}
	// The head and link variables anchor the two sides. If the rule
	// is left/right-linear the corresponding side has no literals.
	xRoot, yRoot := find(headX), find(headY)
	if headX != recX1 {
		if find(recX1) != xRoot {
			return nil, nil, fmt.Errorf("rewrite: %s and %s are not connected by the rule body", headX, recX1)
		}
	}
	if headY != recY1 {
		if find(recY1) != yRoot {
			return nil, nil, fmt.Errorf("rewrite: %s and %s are not connected by the rule body", headY, recY1)
		}
	}
	if xRoot == yRoot {
		return nil, nil, fmt.Errorf("rewrite: the X and Y sides of the rule share variables")
	}
	for _, l := range lits {
		vars := l.Atom.Vars(nil)
		if len(vars) == 0 {
			return nil, nil, fmt.Errorf("rewrite: ground literal %s belongs to neither side", l)
		}
		switch find(vars[0]) {
		case xRoot:
			xSide = append(xSide, l)
		case yRoot:
			ySide = append(ySide, l)
		default:
			return nil, nil, fmt.Errorf("rewrite: literal %s is disconnected from both sides", l)
		}
	}
	return xSide, ySide, nil
}
