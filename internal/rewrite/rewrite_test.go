package rewrite

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
)

// sgProgram renders a canonical same-generation program with the
// given parent facts.
func sgProgram(parent []core.Pair) string {
	var b strings.Builder
	b.WriteString("sg(X, Y) :- person(X), X = Y.\n")
	b.WriteString("sg(X, Y) :- up(X, X1), sg(X1, Y1), up(Y, Y1).\n")
	people := map[string]bool{}
	for _, p := range parent {
		fmt.Fprintf(&b, "up(%s, %s).\n", p.From, p.To)
		people[p.From] = true
		people[p.To] = true
	}
	for x := range people {
		fmt.Fprintf(&b, "person(%s).\n", x)
	}
	return b.String()
}

// canonicalProgram renders a general canonical program from a core
// query, using distinct l, e, r relations.
func canonicalProgram(q core.Query) (*datalog.Program, datalog.Atom) {
	prog := &datalog.Program{}
	prog.AddRule(datalog.MustParse(`p(X, Y) :- e(X, Y).`).Rules[0])
	prog.AddRule(datalog.MustParse(`p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).`).Rules[0])
	for _, pr := range q.L {
		prog.AddFact(datalog.NewAtom("l", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.E {
		prog.AddFact(datalog.NewAtom("e", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.R {
		prog.AddFact(datalog.NewAtom("r", datalog.S(pr.From), datalog.S(pr.To)))
	}
	goal := datalog.NewAtom("p", datalog.S(q.Source), datalog.V("Y"))
	return prog, goal
}

// answersOf evaluates prog and extracts the goal's free-column values.
func answersOf(t *testing.T, prog *datalog.Program, goal datalog.Atom, opts engine.Options) []string {
	t.Helper()
	store := relation.NewStore()
	tuples, err := engine.Answers(prog, goal, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return extractFree(tuples, goal)
}

func extractFree(tuples []relation.Tuple, goal datalog.Atom) []string {
	free := -1
	for i, a := range goal.Args {
		if a.IsVar() {
			free = i
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, tup := range tuples {
		v := tup[free].String()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var testQuery = core.Query{
	L: []core.Pair{
		core.P("a", "b"), core.P("a", "c"), core.P("b", "d"), core.P("c", "d"),
	},
	E: []core.Pair{core.P("d", "rd"), core.P("b", "rb")},
	R: []core.Pair{
		core.P("r1", "rd"), core.P("r2", "r1"), core.P("r0", "rb"),
	},
	Source: "a",
}

func TestRecognizeCanonical(t *testing.T) {
	prog, goal := canonicalProgram(testQuery)
	cq, err := Recognize(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Pred != "p" || cq.Up.Pred != "l" || cq.Down.Pred != "r" {
		t.Fatalf("cq = %+v", cq)
	}
	if cq.HeadX != "X" || cq.HeadY != "Y" || cq.RecX1 != "X1" || cq.RecY1 != "Y1" {
		t.Fatalf("roles = %+v", cq)
	}
}

func TestRecognizeRejectsNonCanonical(t *testing.T) {
	bad := []string{
		// nonlinear
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- p(X, Z), p(Z, Y).`,
		// two exit rules
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- f(X, Y).
		 p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).`,
		// extra body literal
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- l(X, X1), q(X), p(X1, Y1), r(Y, Y1).`,
		// down literal misoriented
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- l(X, X1), p(X1, Y1), r(Y1, Y).`,
		// used outside its recursion
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).
		 q(X) :- p(X, X).`,
	}
	for i, src := range bad {
		prog := datalog.MustParse(src)
		goal := datalog.NewAtom("p", datalog.S("a"), datalog.V("Y"))
		if _, err := Recognize(prog, goal); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
	prog := datalog.MustParse(`p(X, Y) :- e(X, Y).
	p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).`)
	if _, err := Recognize(prog, datalog.NewAtom("p", datalog.V("X"), datalog.V("Y"))); err == nil {
		t.Error("free goal should be rejected")
	}
	if _, err := Recognize(prog, datalog.NewAtom("p", datalog.S("a"), datalog.S("b"))); err == nil {
		t.Error("ground goal should be rejected")
	}
}

func TestMagicSetsRewriteMatchesCore(t *testing.T) {
	prog, goal := canonicalProgram(testQuery)
	rewritten, renamed, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, rewritten, renamed, engine.Options{})
	want, err := testQuery.SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(got, want.Answers) {
		t.Fatalf("rewrite answers = %v, core = %v", got, want.Answers)
	}
}

func TestMagicSetsRestrictsComputation(t *testing.T) {
	// The magic rewrite must not materialize sg pairs for people
	// unreachable from the query constant.
	parent := []core.Pair{
		core.P("a", "p1"), core.P("b", "p1"),
		core.P("z1", "z2"), core.P("z2", "z3"), // unrelated family
	}
	prog := datalog.MustParse(sgProgram(parent))
	goal := datalog.NewAtom("sg", datalog.S("a"), datalog.V("Y"))
	rewritten, renamed, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	store := relation.NewStore()
	tuples, err := engine.Answers(rewritten, renamed, store, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := extractFree(tuples, renamed)
	if !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("answers = %v, want [a b]", got)
	}
	sg, ok := store.Lookup(renamed.Pred)
	if !ok {
		t.Fatal("adorned sg relation missing")
	}
	for _, tup := range sg.Tuples() {
		if strings.HasPrefix(tup[0].String(), "z") {
			t.Fatalf("magic rewrite computed irrelevant tuple %v", tup)
		}
	}
}

func TestMagicSeedFact(t *testing.T) {
	prog, goal := canonicalProgram(testQuery)
	rewritten, _, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rewritten.Facts {
		if f.Pred == "m_p__bf" && len(f.Args) == 1 && f.Args[0].Const == relation.Sym("a") {
			found = true
		}
	}
	if !found {
		t.Fatal("magic seed fact m_p__bf(a) missing")
	}
}

func TestCountingRewriteMatchesCore(t *testing.T) {
	prog, goal := canonicalProgram(testQuery)
	rewritten, renamed, err := Counting(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, rewritten, renamed, engine.Options{})
	want, err := testQuery.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(got, want.Answers) {
		t.Fatalf("rewrite answers = %v, core = %v", got, want.Answers)
	}
}

func TestCountingRewriteDivergesOnCycle(t *testing.T) {
	q := core.Query{
		L:      []core.Pair{core.P("a", "b"), core.P("b", "a")},
		E:      []core.Pair{core.P("a", "ra")},
		R:      nil,
		Source: "a",
	}
	prog, goal := canonicalProgram(q)
	rewritten, renamed, err := Counting(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	store := relation.NewStore()
	_, err = engine.Answers(rewritten, renamed, store, engine.Options{MaxIterations: 60})
	if !errors.Is(err, engine.ErrIterationLimit) {
		t.Fatalf("err = %v, want iteration limit (unsafe counting)", err)
	}
}

func TestCountingRewriteSameGenerationIdentityExit(t *testing.T) {
	parent := []core.Pair{core.P("c1", "p"), core.P("c2", "p")}
	prog := datalog.MustParse(sgProgram(parent))
	goal := datalog.NewAtom("sg", datalog.S("c1"), datalog.V("Y"))
	rewritten, renamed, err := Counting(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, rewritten, renamed, engine.Options{})
	if !equalStrings(got, []string{"c1", "c2"}) {
		t.Fatalf("answers = %v, want siblings", got)
	}
}

func TestIndependentAndIntegratedMCMatchCore(t *testing.T) {
	for _, q := range []core.Query{testQuery, core.SameGeneration(testQuery.L, "a")} {
		want, err := q.SolveNaive()
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
			for _, mode := range []core.Mode{core.Independent, core.Integrated} {
				prog, goal := canonicalProgram(q)
				preds := DefaultReducedSetPreds("p")
				facts, err := ReducedSetFacts(q, strat, mode, preds)
				if err != nil {
					t.Fatal(err)
				}
				var rewritten *datalog.Program
				var renamed datalog.Atom
				if mode == core.Independent {
					rewritten, renamed, err = IndependentMC(prog, goal, preds)
				} else {
					rewritten, renamed, err = IntegratedMC(prog, goal, preds)
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range facts {
					rewritten.AddFact(f)
				}
				// Declare possibly-empty reduced-set relations so the
				// engine knows their arity even when no fact exists.
				rewritten.AddRule(datalog.MustParse(
					"declare_rm(X) :- " + preds.RM + "(X).\n" +
						"declare_ms(X) :- " + preds.MS + "(X).\n" +
						"declare_rc(J, X) :- " + preds.RC + "(J, X).\n").Rules[0])
				got := answersOf(t, rewritten, renamed, engine.Options{})
				if !equalStrings(got, want.Answers) {
					t.Fatalf("%v/%v: rewrite = %v, naive = %v", strat, mode, got, want.Answers)
				}
			}
		}
	}
}

// Property: the magic rewrite evaluated by the generic engine agrees
// with the specialized core magic solver on random instances.
func TestMagicRewriteMatchesCoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCanonical(rng)
		prog, goal := canonicalProgram(q)
		rewritten, renamed, err := MagicSetsForQuery(prog, goal)
		if err != nil {
			return false
		}
		store := relation.NewStore()
		tuples, err := engine.Answers(rewritten, renamed, store, engine.Options{})
		if err != nil {
			return false
		}
		got := extractFree(tuples, renamed)
		want, err := q.SolveMagic()
		if err != nil {
			return false
		}
		if !equalStrings(got, want.Answers) {
			t.Logf("seed %d: rewrite %v, core %v", seed, got, want.Answers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomCanonical(rng *rand.Rand) core.Query {
	nL := 2 + rng.Intn(5)
	nR := 2 + rng.Intn(5)
	var q core.Query
	q.Source = "x0"
	for i := 0; i < rng.Intn(2*nL); i++ {
		q.L = append(q.L, core.P(fmt.Sprintf("x%d", rng.Intn(nL)), fmt.Sprintf("x%d", rng.Intn(nL))))
	}
	for i := 0; i < 1+rng.Intn(nL); i++ {
		q.E = append(q.E, core.P(fmt.Sprintf("x%d", rng.Intn(nL)), fmt.Sprintf("y%d", rng.Intn(nR))))
	}
	for i := 0; i < rng.Intn(2*nR); i++ {
		q.R = append(q.R, core.P(fmt.Sprintf("y%d", rng.Intn(nR)), fmt.Sprintf("y%d", rng.Intn(nR))))
	}
	return q
}

func TestAdornmentOfErrors(t *testing.T) {
	if _, err := adornmentOf("plain"); err == nil {
		t.Fatal("non-adorned name should error")
	}
	ad, err := adornmentOf("p__bf")
	if err != nil || ad != "bf" {
		t.Fatalf("adornmentOf = %v, %v", ad, err)
	}
}

func TestMagicSetsOnNonRecursiveProgram(t *testing.T) {
	prog := datalog.MustParse(`
e(a, b). e(b, c).
path(X, Y) :- e(X, Y).
`)
	goal := datalog.NewAtom("path", datalog.S("a"), datalog.V("Y"))
	rewritten, renamed, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, rewritten, renamed, engine.Options{})
	if !equalStrings(got, []string{"b"}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestMagicSetsWithNegatedEDBLiterals(t *testing.T) {
	// Stratified negation over EDB predicates survives the rewrite:
	// the negated literal rides along in both the modified and the
	// magic rules.
	prog := datalog.MustParse(`
e(a, b). e(b, c). e(c, d). bad(c).
path(X, Y) :- e(X, Y), not bad(Y).
path(X, Y) :- e(X, Z), not bad(Z), path(Z, Y).
`)
	goal := datalog.NewAtom("path", datalog.S("a"), datalog.V("Y"))
	rewritten, renamed, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, rewritten, renamed, engine.Options{})
	// c is bad, so only b is reachable through good nodes.
	if !equalStrings(got, []string{"b"}) {
		t.Fatalf("answers = %v, want [b]", got)
	}
}

func TestMagicSetsTransitiveClosure(t *testing.T) {
	// A non-canonical (but linear) program: the generic rewrite must
	// handle it even though the counting rewrite rejects it.
	prog := datalog.MustParse(`
e(a, b). e(b, c). e(c, d). e(z, z2).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
`)
	goal := datalog.NewAtom("tc", datalog.S("a"), datalog.V("Y"))
	rewritten, renamed, err := MagicSetsForQuery(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	store := relation.NewStore()
	tuples, err := engine.Answers(rewritten, renamed, store, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := extractFree(tuples, renamed)
	if !equalStrings(got, []string{"b", "c", "d"}) {
		t.Fatalf("answers = %v", got)
	}
	// The z component must not be touched.
	tc, _ := store.Lookup(renamed.Pred)
	for _, tup := range tc.Tuples() {
		if tup[0].String() == "z" {
			t.Fatal("magic rewrite explored unreachable region")
		}
	}
}
