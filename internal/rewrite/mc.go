package rewrite

import (
	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
)

// ReducedSetPreds names the EDB predicates carrying a Step 1 result
// into the emitted magic counting programs: rm(X), rc(J, X), ms(X).
type ReducedSetPreds struct {
	RM, RC, MS string
}

// DefaultReducedSetPreds uses rm_p / rc_p / ms_p derived from the
// recursive predicate's name.
func DefaultReducedSetPreds(pred string) ReducedSetPreds {
	return ReducedSetPreds{RM: "rm_" + pred, RC: "rc_" + pred, MS: "ms_" + pred}
}

// IndependentMC rewrites a canonical query into the §4 independent
// magic counting program, parameterized by the reduced-set predicates:
//
//	pc(J, Y)  :- rc(J, X), <exit body>.
//	pc(J1, Y) :- pc(J, Y1), J >= 1, R(Y, Y1), J1 is J - 1.
//	pm(X, Y)  :- rm(X), <exit body>.
//	pm(X, Y)  :- ms(X), L(X, X1), pm(X1, Y1), R(Y, Y1).
//	answer(Y) :- pc(0, Y).
//	answer(Y) :- pm(a, Y).
func IndependentMC(p *datalog.Program, goal datalog.Atom, preds ReducedSetPreds) (*datalog.Program, datalog.Atom, error) {
	cq, err := Recognize(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	out := &datalog.Program{}
	out.Facts = append(out.Facts, p.Facts...)
	copyNonRecursiveRules(out, p, cq.Pred)
	pc := "pc_" + cq.Pred
	pm := "pm_" + cq.Pred
	ans := "answer_" + cq.Pred
	addCountingPart(out, cq, pc, preds.RC)
	addMagicPart(out, cq, pm, preds.RM, preds.MS)
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(ans, datalog.V("Y#")),
		datalog.NewAtom(pc, datalog.N(0), datalog.V("Y#")),
	))
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(ans, datalog.V("Y#")),
		datalog.NewAtom(pm, cq.Goal.Args[0], datalog.V("Y#")),
	))
	return out, datalog.NewAtom(ans, datalog.V("Y#")), nil
}

// IntegratedMC rewrites a canonical query into the §5 integrated
// magic counting program:
//
//	pm(X, Y)  :- rm(X), <exit body>.
//	pm(X, Y)  :- rm(X), L(X, X1), pm(X1, Y1), R(Y, Y1).
//	pc(J, Y)  :- rc(J, X), L(X, X1), pm(X1, Y1), R(Y, Y1).   (transfer)
//	pc(J, Y)  :- rc(J, X), <exit body>.
//	pc(J1, Y) :- pc(J, Y1), J >= 1, R(Y, Y1), J1 is J - 1.
//	answer(Y) :- pc(0, Y).
func IntegratedMC(p *datalog.Program, goal datalog.Atom, preds ReducedSetPreds) (*datalog.Program, datalog.Atom, error) {
	cq, err := Recognize(p, goal)
	if err != nil {
		return nil, datalog.Atom{}, err
	}
	out := &datalog.Program{}
	out.Facts = append(out.Facts, p.Facts...)
	copyNonRecursiveRules(out, p, cq.Pred)
	pc := "pc_" + cq.Pred
	pm := "pm_" + cq.Pred
	ans := "answer_" + cq.Pred
	addMagicPart(out, cq, pm, preds.RM, preds.RM)
	// Transfer rule: results of the magic part enter the counting
	// descent at the RC/RM boundary.
	j := datalog.V("J#")
	transfer := datalog.Rule{Head: datalog.NewAtom(pc, j, datalog.V(cq.HeadY))}
	transfer.Body = append(transfer.Body,
		datalog.Pos(datalog.NewAtom(preds.RC, j, datalog.V(cq.HeadX))),
		datalog.Pos(cq.Up),
		datalog.Pos(datalog.NewAtom(pm, datalog.V(cq.RecX1), datalog.V(cq.RecY1))),
		datalog.Pos(cq.Down),
	)
	out.AddRule(transfer)
	addCountingPart(out, cq, pc, preds.RC)
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(ans, datalog.V("Y#")),
		datalog.NewAtom(pc, datalog.N(0), datalog.V("Y#")),
	))
	return out, datalog.NewAtom(ans, datalog.V("Y#")), nil
}

// addCountingPart emits the counting exit transfer and descent rules
// seeded from the rc predicate.
func addCountingPart(out *datalog.Program, cq *CanonicalQuery, pc, rcPred string) {
	j, j1 := datalog.V("J#"), datalog.V("J1#")
	exitX, exitY := cq.Exit.Head.Args[0], cq.Exit.Head.Args[1]
	exit := datalog.Rule{Head: datalog.NewAtom(pc, j, exitY)}
	exit.Body = append(exit.Body, datalog.Pos(datalog.NewAtom(rcPred, j, exitX)))
	exit.Body = append(exit.Body, cq.Exit.Body...)
	out.AddRule(exit)
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(pc, j1, datalog.V(cq.HeadY)),
		datalog.NewAtom(pc, j, datalog.V(cq.RecY1)),
		datalog.NewAtom(datalog.BuiltinGe, j, datalog.N(1)),
		cq.Down,
		datalog.NewAtom(datalog.BuiltinAdd, j1, datalog.N(1), j),
	))
}

// addMagicPart emits the magic exit and recursive rules; exitPred
// gates the exit rule and recPred the recursive rule (MS for
// independent methods, RM for integrated ones).
func addMagicPart(out *datalog.Program, cq *CanonicalQuery, pm, exitPred, recPred string) {
	exitX, exitY := cq.Exit.Head.Args[0], cq.Exit.Head.Args[1]
	exit := datalog.Rule{Head: datalog.NewAtom(pm, exitX, exitY)}
	exit.Body = append(exit.Body, datalog.Pos(datalog.NewAtom(exitPred, exitX)))
	exit.Body = append(exit.Body, cq.Exit.Body...)
	out.AddRule(exit)
	out.AddRule(datalog.NewRule(
		datalog.NewAtom(pm, datalog.V(cq.HeadX), datalog.V(cq.HeadY)),
		datalog.NewAtom(recPred, datalog.V(cq.HeadX)),
		cq.Up,
		datalog.NewAtom(pm, datalog.V(cq.RecX1), datalog.V(cq.RecY1)),
		cq.Down,
	))
}

// ReducedSetFacts converts a core Step 1 result into the EDB facts the
// emitted programs read: rm(x), rc(j, x), and ms(x).
func ReducedSetFacts(q core.Query, strategy core.Strategy, mode core.Mode, preds ReducedSetPreds) ([]datalog.Atom, error) {
	rs, names, err := q.ReducedSetsFor(strategy, mode, core.Options{})
	if err != nil {
		return nil, err
	}
	var facts []datalog.Atom
	for v, inRM := range rs.RM {
		if inRM {
			facts = append(facts, datalog.NewAtom(preds.RM, datalog.S(names[v])))
		}
	}
	for v, inMS := range rs.MS {
		if inMS {
			facts = append(facts, datalog.NewAtom(preds.MS, datalog.S(names[v])))
		}
	}
	for _, pair := range rs.RCPairs() {
		facts = append(facts, datalog.NewAtom(preds.RC, datalog.N(int64(pair.Index)), datalog.S(names[pair.Node])))
	}
	return facts, nil
}
