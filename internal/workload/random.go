package workload

import (
	"fmt"
	"math/rand"

	"magiccounting/internal/core"
)

// This file holds the seeded random instance generators behind the
// differential correctness sweep: one generator per Figure-3 regime
// of the magic graph, each guaranteeing its regime by construction,
// plus a pack of adversarial shapes. All generators are deterministic
// in their seed so a failing instance can be replayed from its seed
// alone.

// RegimeKind names the magic-graph regime a generator targets.
type RegimeKind uint8

const (
	// KindRegular: layered G_L, arcs only between adjacent layers, so
	// every reachable node has exactly one walk length.
	KindRegular RegimeKind = iota
	// KindCyclicRegular: a regular reachable region plus cycles that
	// are NOT reachable from the source (they may reach it). The magic
	// graph stays regular even though G_L as a whole is cyclic.
	KindCyclicRegular
	// KindMultiple: layered G_L plus layer-skipping arcs, so some
	// nodes have several distinct walk lengths but no cycle is
	// reachable (acyclic non-regular).
	KindMultiple
	// KindRecurring: a reachable cycle is forced, so some nodes have
	// infinitely many walk lengths and pure counting is unsafe.
	KindRecurring
)

// String names the kind.
func (k RegimeKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindCyclicRegular:
		return "cyclic-but-regular"
	case KindMultiple:
		return "multiple"
	default:
		return "recurring"
	}
}

// RandomRegime returns a random instance whose magic graph falls in
// the given regime by construction. Size scales the node counts;
// sizes 1..4 keep instances small enough for the literal walk oracle.
func RandomRegime(kind RegimeKind, seed int64, size int) core.Query {
	if size < 1 {
		size = 1
	}
	rng := rand.New(rand.NewSource(seed ^ int64(kind)<<32))
	layers := 2 + rng.Intn(2+size)   // 2..3+size
	width := 1 + rng.Intn(1+size)    // 1..1+size
	var q core.Query
	q.Source = "a"
	node := func(l, i int) string { return fmt.Sprintf("n%d_%d", l, i) }

	// Layered spine: source feeds layer 0; arcs only l -> l+1.
	for i := 0; i < width; i++ {
		if i == 0 || rng.Intn(2) == 0 {
			q.L = append(q.L, core.P(q.Source, node(0, i)))
		}
	}
	for l := 0; l+1 < layers; l++ {
		// Column 0 is a guaranteed chain, so regime-forcing arcs below
		// can anchor on provably reachable nodes.
		q.L = append(q.L, core.P(node(l, 0), node(l+1, 0)))
		for i := 0; i < width; i++ {
			arcs := 1 + rng.Intn(2)
			for a := 0; a < arcs; a++ {
				q.L = append(q.L, core.P(node(l, i), node(l+1, rng.Intn(width))))
			}
		}
	}

	switch kind {
	case KindRegular:
		// Nothing more: adjacent-layer arcs keep every node single.
	case KindCyclicRegular:
		// A cycle among fresh nodes, unreachable from the source, with
		// arcs INTO the reachable region (never out of it).
		loop := 2 + rng.Intn(3)
		for i := 0; i < loop; i++ {
			q.L = append(q.L, core.P(node(-1, i), node(-1, (i+1)%loop)))
		}
		q.L = append(q.L, core.P(node(-1, rng.Intn(loop)), q.Source))
		if rng.Intn(2) == 0 {
			q.L = append(q.L, core.P(node(-1, rng.Intn(loop)), node(rng.Intn(layers), rng.Intn(width))))
		}
	case KindMultiple:
		// Layer-skipping arcs along the column-0 chain give their
		// targets a second walk length without creating any cycle:
		// node(l+2, 0) is reachable at length l+3 via the chain and
		// l+2 via the skip.
		if layers >= 3 {
			skips := 1 + rng.Intn(2)
			for s := 0; s < skips; s++ {
				l := rng.Intn(layers - 2)
				q.L = append(q.L, core.P(node(l, 0), node(l+2, 0)))
			}
		} else {
			// Not enough layers to skip within: route the source past
			// layer 0 (node(1, 0) then has lengths 1 and 2).
			q.L = append(q.L, core.P(q.Source, node(1, 0)))
		}
	case KindRecurring:
		// A back arc on the column-0 chain forces a 2-cycle that is
		// provably reachable from the source.
		l := rng.Intn(layers - 1)
		u, v := node(l, 0), node(l+1, 0)
		q.L = append(q.L, core.P(v, u))
		if rng.Intn(3) == 0 {
			w := node(rng.Intn(layers), rng.Intn(width))
			q.L = append(q.L, core.P(w, w)) // self-loop for good measure
		}
	}

	// E: a mix of identity arcs (same-generation style), cross arcs to
	// the R-side domain, and the occasional arc from an L-node that may
	// be unreachable. Constants on the R side intentionally reuse some
	// L-side names to exercise the separate-name-space rule.
	rname := func(i int) string {
		if i%3 == 0 {
			return fmt.Sprintf("n%d_%d", i%layers, i%width) // alias an L-side name
		}
		return fmt.Sprintf("r%d", i)
	}
	rdom := 2 + rng.Intn(3+2*size)
	eArcs := 1 + rng.Intn(2+size)
	for i := 0; i < eArcs; i++ {
		var from string
		switch rng.Intn(4) {
		case 0:
			from = q.Source
		default:
			from = node(rng.Intn(layers), rng.Intn(width))
		}
		q.E = append(q.E, core.P(from, rname(rng.Intn(rdom))))
	}
	if rng.Intn(3) == 0 {
		// Same-generation-style identity on the source.
		q.E = append(q.E, core.P(q.Source, q.Source))
	}

	// R: random pairs over the R-side domain, cycles and diamonds
	// included (the descent graph may be arbitrary).
	rArcs := rng.Intn(3 + 3*size)
	for i := 0; i < rArcs; i++ {
		q.R = append(q.R, core.P(rname(rng.Intn(rdom)), rname(rng.Intn(rdom))))
	}
	return q
}

// AdversarialCount is the number of distinct adversarial shapes
// Adversarial generates; variants wrap modulo this count.
const AdversarialCount = 10

// Adversarial returns small handcrafted instances around the shapes
// that historically break walk-semantics implementations: empty
// relations, sources outside the database, self-loops, diamond
// fan-out, duplicated facts, and L/R name aliasing. The seed perturbs
// constants and duplication; the variant selects the shape.
func Adversarial(variant int, seed int64) core.Query {
	rng := rand.New(rand.NewSource(seed))
	dup := func(pairs []core.Pair) []core.Pair {
		// Duplicate a random fact: inputs are bags, semantics sets.
		if len(pairs) > 0 && rng.Intn(2) == 0 {
			pairs = append(pairs, pairs[rng.Intn(len(pairs))])
		}
		return pairs
	}
	switch variant % AdversarialCount {
	case 0: // empty E: no crossing, no answers.
		return core.Query{
			L:      dup([]core.Pair{core.P("a", "b"), core.P("b", "c")}),
			R:      []core.Pair{core.P("x", "y")},
			Source: "a",
		}
	case 1: // empty L: only k=0 crossings count.
		return core.Query{
			E:      dup([]core.Pair{core.P("a", "x"), core.P("b", "y")}),
			R:      []core.Pair{core.P("z", "x")},
			Source: "a",
		}
	case 2: // source absent from every relation.
		return core.Query{
			L:      []core.Pair{core.P("u", "v")},
			E:      []core.Pair{core.P("u", "x")},
			R:      []core.Pair{core.P("y", "x")},
			Source: "ghost",
		}
	case 3: // self-loop on the source: every k has a witness frontier.
		return core.Query{
			L:      dup([]core.Pair{core.P("a", "a"), core.P("a", "b")}),
			E:      []core.Pair{core.P("b", "x")},
			R:      dup([]core.Pair{core.P("y", "x"), core.P("x", "y")}),
			Source: "a",
		}
	case 4: // diamond fan-out in L and R: multiple nodes both sides.
		return core.Query{
			L: []core.Pair{
				core.P("a", "b"), core.P("a", "c"),
				core.P("b", "d"), core.P("c", "d"), core.P("b", "e"), core.P("e", "d"),
			},
			E: []core.Pair{core.P("d", "x"), core.P("a", "w")},
			R: []core.Pair{
				core.P("y", "x"), core.P("z", "x"),
				core.P("w", "y"), core.P("w", "z"),
			},
			Source: "a",
		}
	case 5: // L and R share every constant name (alias stress).
		return core.Query{
			L:      []core.Pair{core.P("a", "b"), core.P("b", "c")},
			E:      []core.Pair{core.P("b", "b"), core.P("c", "a")},
			R:      dup([]core.Pair{core.P("a", "b"), core.P("b", "a"), core.P("c", "b")}),
			Source: "a",
		}
	case 6: // E from unreachable nodes only: no answers despite facts.
		return core.Query{
			L:      []core.Pair{core.P("a", "b"), core.P("u", "v")},
			E:      []core.Pair{core.P("u", "x"), core.P("v", "y")},
			R:      []core.Pair{core.P("z", "x")},
			Source: "a",
		}
	case 7: // cycle through the source with an R-side cycle to match.
		return core.Query{
			L:      dup([]core.Pair{core.P("a", "b"), core.P("b", "a")}),
			E:      []core.Pair{core.P("a", "x")},
			R:      []core.Pair{core.P("y", "x"), core.P("x", "y")},
			Source: "a",
		}
	case 8: // same-generation instance (identity E) over a tiny tree.
		return core.SameGeneration([]core.Pair{
			core.P("a", "b"), core.P("a", "c"), core.P("b", "d"), core.P("c", "e"),
		}, "a")
	default: // single node, all relations self-loops on it.
		return core.Query{
			L:      []core.Pair{core.P("a", "a")},
			E:      []core.Pair{core.P("a", "a")},
			R:      []core.Pair{core.P("a", "a")},
			Source: "a",
		}
	}
}
