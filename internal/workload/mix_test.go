package workload

import (
	"reflect"
	"testing"

	"magiccounting/internal/core"
)

func soakCfg(seed int64) MixConfig {
	return MixConfig{
		Seed:      seed,
		BatchFrac: 0.08, AppendFrac: 0.10, StatsFrac: 0.02, BadFrac: 0.03,
		TraceFrac: 0.05, ExplicitFrac: 0.3, GhostFrac: 0.05,
		BulkEvery: 10,
	}
}

// TestMixDeterministic pins the soak's replayability contract: the
// same seed and config produce the identical base instance and the
// identical operation sequence, op for op.
func TestMixDeterministic(t *testing.T) {
	a, b := NewMix(soakCfg(42)), NewMix(soakCfg(42))
	if !reflect.DeepEqual(a.Base(), b.Base()) {
		t.Fatal("same seed produced different base instances")
	}
	for i := 0; i < 2000; i++ {
		oa, ob := a.Next(), b.Next()
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("op %d diverged:\n%+v\n%+v", i, oa, ob)
		}
	}
	// A different seed diverges somewhere in the first stretch.
	c := NewMix(soakCfg(43))
	same := true
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(a.Next(), c.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same 200-op prefix")
	}
}

// TestMixCoversEveryKind asserts a long enough stream hits every
// operation kind, both bulk and small appends, traced and explicit
// queries, and duplicate batch sources.
func TestMixCoversEveryKind(t *testing.T) {
	m := NewMix(soakCfg(7))
	kinds := map[OpKind]int{}
	var bulk, small, traced, explicit, dupBatch int
	for i := 0; i < 5000; i++ {
		op := m.Next()
		kinds[op.Kind]++
		switch op.Kind {
		case OpAppend:
			if op.Bulk {
				bulk++
			} else {
				small++
			}
		case OpQuery:
			if op.Trace {
				traced++
			}
			if op.Strategy != "" {
				explicit++
			}
		case OpBatch:
			seen := map[string]bool{}
			for _, s := range op.Sources {
				if s != "" && seen[s] {
					dupBatch++
				}
				seen[s] = true
			}
		}
	}
	for _, k := range []OpKind{OpQuery, OpBadQuery, OpBatch, OpAppend, OpStats} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never generated", k)
		}
	}
	if bulk == 0 || small == 0 {
		t.Errorf("appends: bulk=%d small=%d, want both > 0", bulk, small)
	}
	if traced == 0 || explicit == 0 {
		t.Errorf("queries: traced=%d explicit=%d, want both > 0", traced, explicit)
	}
	if dupBatch == 0 {
		t.Errorf("no batch ever contained a duplicate source")
	}
}

// TestMixAppendsDisjointAndAcyclic asserts every append is disjoint
// from all facts generated before it (so the server's dedupe can never
// turn it into a generation-preserving no-op) and that the L graph
// stays acyclic (so explicit counting-based strategies stay safe).
func TestMixAppendsDisjointAndAcyclic(t *testing.T) {
	m := NewMix(soakCfg(11))
	// Relations are separate namespaces (the server dedupes per
	// relation), so disjointness is tracked per relation.
	seen := map[string]map[core.Pair]bool{"l": {}, "e": {}, "r": {}}
	adj := map[string][]string{}
	base := m.Base()
	for _, p := range base.L {
		seen["l"][p] = true
		adj[p.From] = append(adj[p.From], p.To)
	}
	for _, p := range base.E {
		seen["e"][p] = true
	}
	for _, p := range base.R {
		seen["r"][p] = true
	}
	count := len(base.L) + len(base.E) + len(base.R)
	for i := 0; i < 3000; i++ {
		op := m.Next()
		if op.Kind != OpAppend {
			continue
		}
		for rel, set := range map[string][]core.Pair{"l": op.L, "e": op.E, "r": op.R} {
			for _, p := range set {
				if seen[rel][p] {
					t.Fatalf("op %d re-appended %s fact %+v", op.Seq, rel, p)
				}
				seen[rel][p] = true
				count++
			}
		}
		for _, p := range op.L {
			adj[p.From] = append(adj[p.From], p.To)
		}
		if m.FactCount() != count {
			t.Fatalf("op %d: FactCount = %d, want %d", op.Seq, m.FactCount(), count)
		}
	}
	// Acyclicity of the accumulated L graph: iterative DFS three-color.
	const (white, gray, black = 0, 1, 2)
	color := map[string]int{}
	var stack []string
	for n := range adj {
		if color[n] != white {
			continue
		}
		stack = append(stack[:0], n)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if color[u] == white {
				color[u] = gray
				for _, v := range adj[u] {
					if color[v] == gray {
						t.Fatalf("L graph grew a cycle through %s -> %s", u, v)
					}
					if color[v] == white {
						stack = append(stack, v)
					}
				}
			} else {
				color[u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
}

// TestMixSourceSkew pins the skewed-source draw: the stream stays
// seed-replayable (a fresh Zipf per draw is still a pure function of
// the rng state), skew concentrates queries on a small hot set far
// beyond the uniform draw, and skew <= 1 leaves the uniform stream
// untouched.
func TestMixSourceSkew(t *testing.T) {
	skewed := func(seed int64, skew float64) MixConfig {
		cfg := soakCfg(seed)
		cfg.SourceSkew = skew
		return cfg
	}

	a, b := NewMix(skewed(42, 1.3)), NewMix(skewed(42, 1.3))
	for i := 0; i < 2000; i++ {
		oa, ob := a.Next(), b.Next()
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("skewed op %d diverged:\n%+v\n%+v", i, oa, ob)
		}
	}

	// Concentration: count how often the single hottest source shows
	// up among singleton queries, skewed vs uniform.
	top := func(skew float64) (max, total int) {
		m := NewMix(skewed(7, skew))
		counts := map[string]int{}
		for i := 0; i < 8000; i++ {
			if op := m.Next(); op.Kind == OpQuery {
				counts[op.Source]++
				total++
			}
		}
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max, total
	}
	hotSkew, totalSkew := top(1.5)
	hotUni, totalUni := top(0)
	if float64(hotSkew)/float64(totalSkew) < 3*float64(hotUni)/float64(totalUni) {
		t.Fatalf("skew 1.5 barely concentrates: hottest %d/%d vs uniform %d/%d",
			hotSkew, totalSkew, hotUni, totalUni)
	}

	// Skew at or below 1 must not perturb the uniform stream: the two
	// configs draw identically, op for op.
	u, s := NewMix(soakCfg(11)), NewMix(skewed(11, 1.0))
	for i := 0; i < 1000; i++ {
		ou, os := u.Next(), s.Next()
		if !reflect.DeepEqual(ou, os) {
			t.Fatalf("skew 1.0 perturbed the uniform stream at op %d", i)
		}
	}
}
