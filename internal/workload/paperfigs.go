package workload

import "magiccounting/internal/core"

// PaperFig1 reconstructs the Figure 1 query graph of the paper from
// the properties its prose states: a regular magic graph over
// a, a1..a5; R-side arcs over b1..b9 including a cyclic path (the
// self-loop at b8) through which b3 is reached; answer set
// {b3, b5, b7, b8, b9}.
func PaperFig1() core.Query {
	return core.Query{
		L: []core.Pair{
			core.P("a", "a1"), core.P("a", "a2"), core.P("a1", "a3"),
			core.P("a2", "a3"), core.P("a3", "a5"), core.P("a1", "a4"),
		},
		E: []core.Pair{core.P("a1", "b3"), core.P("a5", "b8"), core.P("a4", "b6")},
		R: []core.Pair{
			core.P("b5", "b3"),
			core.P("b8", "b8"),
			core.P("b9", "b8"),
			core.P("b7", "b9"),
			core.P("b3", "b7"),
			core.P("b4", "b6"),
			core.P("b2", "b1"), core.P("b1", "b2"),
		},
		Source: "a",
	}
}

// PaperFig1Answers is the answer set Figure 1's discussion states.
var PaperFig1Answers = []string{"b3", "b5", "b7", "b8", "b9"}

// PaperFig1Acyclic adds the tuple ⟨a2, a5⟩ to L: the paper notes this
// makes the query acyclic non-regular (a5 becomes multiple).
func PaperFig1Acyclic() core.Query {
	q := PaperFig1()
	q.L = append(q.L, core.P("a2", "a5"))
	return q
}

// PaperFig1Cyclic adds the tuple ⟨a5, a2⟩ to L: the paper notes this
// makes the query cyclic (a2, a3, a5 become recurring).
func PaperFig1Cyclic() core.Query {
	q := PaperFig1()
	q.L = append(q.L, core.P("a5", "a2"))
	return q
}

// PaperFig2Parent is the reconstructed magic graph of Figure 2 over
// nodes a..l: single {a,b,c,d,e,f}, multiple {h,k}, recurring
// {g,i,j,l}, i_x = 2. It reproduces the paper's reduced sets for all
// four strategies and fourteen of the sixteen §7–§9 parameter values
// (the figure itself is lost from the surviving text; see DESIGN.md).
func PaperFig2Parent() []core.Pair {
	return []core.Pair{
		core.P("a", "b"), core.P("a", "c"), core.P("a", "d"),
		core.P("b", "e"), core.P("b", "f"), core.P("c", "f"),
		core.P("c", "h"), core.P("e", "h"), core.P("h", "k"),
		core.P("e", "g"), core.P("g", "i"), core.P("i", "g"),
		core.P("i", "j"), core.P("j", "l"),
	}
}

// PaperFig2 is the same-generation query over the Figure 2 magic
// graph, rooted at a.
func PaperFig2() core.Query { return core.SameGeneration(PaperFig2Parent(), "a") }
