package workload

// This file holds the serving-tier soak mix: a deterministic,
// seed-replayable stream of HTTP-shaped operations — singleton queries
// (auto and explicit methods, trace-sampled), batch queries (duplicate
// sources included, to exercise folding), fact appends sized to land
// on both the delta-compile and fallback paths, stats scrapes, and
// intentional bad-request probes. cmd/mcsoak replays the stream
// against a live mcserved; the same seed always produces the same
// operation sequence, so a failing soak replays from its seed alone.

import (
	"fmt"
	"math/rand"

	"magiccounting/internal/core"
)

// OpKind names one soak operation.
type OpKind uint8

const (
	// OpQuery is a singleton POST /v1/query expected to return 200.
	OpQuery OpKind = iota
	// OpBadQuery is an intentionally invalid singleton query expected
	// to return 400 — the probe that asserts validation failures stay
	// out of the latency percentiles and error counters.
	OpBadQuery
	// OpBatch is a POST /v1/query/batch expected to return 200.
	OpBatch
	// OpAppend is a POST /v1/facts expected to return 200 and bump the
	// generation (every append carries at least one fresh fact).
	OpAppend
	// OpStats is a GET /v1/stats scrape.
	OpStats
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpQuery:
		return "query"
	case OpBadQuery:
		return "bad"
	case OpBatch:
		return "batch"
	case OpAppend:
		return "append"
	default:
		return "stats"
	}
}

// Op is one generated operation. Exactly the fields for its kind are
// set; appends come pre-expanded to raw L/E/R facts so the driver can
// both POST them and feed its generation ledger from the same value.
type Op struct {
	// Seq is the operation's position in the schedule, starting at 0.
	Seq int
	Kind OpKind

	// OpQuery / OpBadQuery.
	Source         string
	Strategy, Mode string
	Trace          bool

	// OpBatch. Sources may repeat (folding) and may include "" (a
	// per-item bad request).
	Sources []string

	// OpAppend: the delta, disjoint from every fact generated before
	// it (fresh node names), so the server's dedupe never turns the
	// append into a generation-preserving no-op.
	L, E, R []core.Pair
	// Bulk marks an append sized above BulkFrac of the database at
	// generation time, which the server answers with a delta-compile
	// fallback (lazy invalidation) instead of an Extend.
	Bulk bool
}

// MixConfig tunes a Mix. Fractions are weights in [0, 1]; the
// remainder after BatchFrac+AppendFrac+StatsFrac+BadFrac goes to
// singleton queries.
type MixConfig struct {
	Seed int64
	// BaseLayers and BaseWidth shape the seeded base instance: a
	// layered same-generation DAG (acyclic magic graph, so every
	// explicit strategy is safe to request). Zero selects 6×8.
	BaseLayers, BaseWidth int
	// SkipFrac adds layer-skipping arcs to the base, making some nodes
	// multiple so the auto-selector exercises more than one regime.
	// Zero selects 0.15.
	SkipFrac float64

	BatchFrac, AppendFrac, StatsFrac, BadFrac float64
	// TraceFrac of singleton queries set "trace": true.
	TraceFrac float64
	// ExplicitFrac of singleton queries pin an explicit strategy (and
	// half of those an explicit mode); the rest auto-select.
	ExplicitFrac float64
	// GhostFrac of query sources name a node absent from the database
	// (empty answer set, still a 200).
	GhostFrac float64
	// SourceSkew > 1 draws query sources from a Zipf distribution with
	// that exponent instead of uniformly: low-ranked nodes dominate
	// the stream, concentrating traffic on few graph regions — the
	// shape that makes region-sharded serving (and result caching)
	// pay. Values <= 1 keep the uniform draw.
	SourceSkew float64

	// BatchMax bounds batch size (min 2). Zero selects 16.
	BatchMax int
	// AppendMax bounds a small append's chain length. Zero selects 4.
	AppendMax int
	// BulkEvery makes every Nth append bulk (sized to overshoot
	// BulkFrac of the current database). Zero disables bulk appends.
	BulkEvery int
	// BulkFrac is the server's delta-max-frac to overshoot. Zero
	// selects 0.25.
	BulkFrac float64
	// MaxFacts soft-caps database growth: every bulk append multiplies
	// the database by ~1/(1−BulkFrac), so an uncapped stream grows it
	// geometrically (and pushes the end-of-run oracle fixpoints past
	// any CI budget). At the cap, bulk appends demote to small ones and
	// small ones shrink to single links — the generation still churns,
	// the database stops compounding. Zero selects 10000.
	MaxFacts int
}

func (c MixConfig) withDefaults() MixConfig {
	if c.BaseLayers <= 0 {
		c.BaseLayers = 6
	}
	if c.BaseWidth <= 0 {
		c.BaseWidth = 8
	}
	if c.SkipFrac == 0 {
		c.SkipFrac = 0.15
	}
	if c.BatchMax < 2 {
		c.BatchMax = 16
	}
	if c.AppendMax <= 0 {
		c.AppendMax = 4
	}
	if c.BulkFrac == 0 {
		c.BulkFrac = 0.25
	}
	if c.MaxFacts <= 0 {
		c.MaxFacts = 10000
	}
	return c
}

// Mix generates the operation stream. Not safe for concurrent use:
// the driver pulls ops under a lock, which also fixes the request
// sequence — the property the determinism test pins down.
type Mix struct {
	cfg  MixConfig
	rng  *rand.Rand
	base core.Query
	// nodes are the L-side constants queries may name; appends push
	// the roots of their fresh chains so later queries reach new
	// regions of the graph.
	nodes []string
	// facts estimates the database size (appends are disjoint by
	// construction, so the estimate is exact) — the input to bulk
	// append sizing.
	facts int
	// fresh numbers fresh append nodes; seq numbers ops; appends
	// counts appends for the BulkEvery cadence.
	fresh, seq, appends int
}

// NewMix builds the generator and its base instance.
func NewMix(cfg MixConfig) *Mix {
	cfg = cfg.withDefaults()
	m := &Mix{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	m.base = RandomDAG(cfg.Seed, cfg.BaseLayers, cfg.BaseWidth, cfg.SkipFrac)
	seen := make(map[string]bool)
	for _, p := range m.base.L {
		for _, n := range []string{p.From, p.To} {
			if !seen[n] {
				seen[n] = true
				m.nodes = append(m.nodes, n)
			}
		}
	}
	m.facts = len(m.base.L) + len(m.base.E) + len(m.base.R)
	return m
}

// Base returns the instance the driver seeds the server with before
// replaying the stream.
func (m *Mix) Base() core.Query { return m.base }

// Next generates the next operation of the schedule.
func (m *Mix) Next() Op {
	op := Op{Seq: m.seq}
	m.seq++
	roll := m.rng.Float64()
	c := m.cfg
	switch {
	case roll < c.BadFrac:
		op.Kind = OpBadQuery
		m.fillBadQuery(&op)
	case roll < c.BadFrac+c.BatchFrac:
		op.Kind = OpBatch
		m.fillBatch(&op)
	case roll < c.BadFrac+c.BatchFrac+c.AppendFrac:
		op.Kind = OpAppend
		m.fillAppend(&op)
	case roll < c.BadFrac+c.BatchFrac+c.AppendFrac+c.StatsFrac:
		op.Kind = OpStats
	default:
		op.Kind = OpQuery
		m.fillQuery(&op)
	}
	return op
}

var strategies = []string{"basic", "single", "multiple", "recurring"}
var modes = []string{"independent", "integrated"}

func (m *Mix) source() string {
	if m.rng.Float64() < m.cfg.GhostFrac {
		return fmt.Sprintf("ghost%d", m.rng.Intn(1000))
	}
	if m.cfg.SourceSkew > 1 && len(m.nodes) > 1 {
		// A fresh Zipf per draw keeps the stream a pure function of
		// the rng state even as appends grow the node set (rand.Zipf
		// memoizes its imax). Rank 0 is the hottest node; appends
		// push fresh roots to the back, so the hot set stays the base
		// instance's early nodes.
		z := rand.NewZipf(m.rng, m.cfg.SourceSkew, 1, uint64(len(m.nodes)-1))
		return m.nodes[z.Uint64()]
	}
	return m.nodes[m.rng.Intn(len(m.nodes))]
}

func (m *Mix) fillQuery(op *Op) {
	op.Source = m.source()
	if m.rng.Float64() < m.cfg.ExplicitFrac {
		op.Strategy = strategies[m.rng.Intn(len(strategies))]
		if m.rng.Intn(2) == 0 {
			op.Mode = modes[m.rng.Intn(len(modes))]
		}
	}
	op.Trace = m.rng.Float64() < m.cfg.TraceFrac
}

func (m *Mix) fillBadQuery(op *Op) {
	switch m.rng.Intn(4) {
	case 0: // empty source
		op.Source = ""
	case 1: // unknown strategy
		op.Source, op.Strategy = m.source(), "bogus"
	case 2: // unknown mode
		op.Source, op.Strategy, op.Mode = m.source(), strategies[m.rng.Intn(len(strategies))], "bogus"
	default: // mode without strategy
		op.Source, op.Mode = m.source(), modes[m.rng.Intn(len(modes))]
	}
}

func (m *Mix) fillBatch(op *Op) {
	n := 2 + m.rng.Intn(m.cfg.BatchMax-1)
	op.Sources = make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i > 0 && m.rng.Intn(8) == 0:
			// Deliberate duplicate: exercises in-batch folding.
			op.Sources = append(op.Sources, op.Sources[m.rng.Intn(len(op.Sources))])
		case m.rng.Intn(32) == 0:
			// Deliberate empty source: a per-item bad request.
			op.Sources = append(op.Sources, "")
		default:
			op.Sources = append(op.Sources, m.source())
		}
	}
}

// fillAppend grows the graph with a chain of fresh nodes hanging off
// an existing node — parent-style facts (the pair joins L and R, fresh
// endpoints get identity E arcs), expanded here so the driver's ledger
// sees exactly what the server will add. Fresh names guarantee the
// delta is disjoint from the database: the append always bumps the
// generation, and the client-side fact count stays exact. Arcs only
// run existing→fresh and fresh→fresh, so G_L stays acyclic and every
// explicit strategy remains safe.
func (m *Mix) fillAppend(op *Op) {
	m.appends++
	k := 1 + m.rng.Intn(m.cfg.AppendMax)
	if m.facts >= m.cfg.MaxFacts {
		k = 1 // at the cap: keep the generation churning, stop growing
	} else if m.cfg.BulkEvery > 0 && m.appends%m.cfg.BulkEvery == 0 {
		// Size the chain so added/(facts+added) overshoots BulkFrac:
		// each chain link adds 3 facts (L, R, identity E), so
		// 3k > facts·f/(1−f) forces the fallback.
		f := m.cfg.BulkFrac
		k = int(float64(m.facts)*f/(1-f))/3 + 2
		op.Bulk = true
	}
	from := m.nodes[m.rng.Intn(len(m.nodes))]
	var chain []string
	for i := 0; i < k; i++ {
		to := fmt.Sprintf("z%d", m.fresh)
		m.fresh++
		op.L = append(op.L, core.P(from, to))
		op.R = append(op.R, core.P(from, to))
		op.E = append(op.E, core.P(to, to))
		chain = append(chain, to)
		from = to
	}
	// Only the chain root joins the queryable node set: keeping the
	// set's growth bounded keeps query sources concentrated enough for
	// the result cache to see hits.
	m.nodes = append(m.nodes, chain[0])
	m.facts += 3 * k
}

// FactCount reports the generator's running database-size estimate
// (exact, since every generated append is disjoint).
func (m *Mix) FactCount() int { return m.facts }
