package workload

import (
	"testing"

	"magiccounting/internal/core"
)

func params(t *testing.T, q core.Query) core.GraphParams {
	t.Helper()
	return q.Params()
}

func TestChainIsRegular(t *testing.T) {
	p := params(t, Chain(10))
	if !p.Regular || p.Cyclic {
		t.Fatalf("chain params = %+v", p)
	}
	if p.NL != 11 || p.ML != 10 {
		t.Fatalf("NL=%d ML=%d, want 11/10", p.NL, p.ML)
	}
}

func TestTreeIsRegular(t *testing.T) {
	p := params(t, Tree(2, 4))
	if !p.Regular || p.Cyclic {
		t.Fatalf("tree params = %+v", p)
	}
	// 1+2+4+8+16 = 31 nodes, 30 arcs.
	if p.NL != 31 || p.ML != 30 {
		t.Fatalf("NL=%d ML=%d, want 31/30", p.NL, p.ML)
	}
}

func TestGridIsRegular(t *testing.T) {
	p := params(t, Grid(4, 5))
	if !p.Regular || p.Cyclic {
		t.Fatalf("grid params = %+v", p)
	}
	if p.NL != 20 {
		t.Fatalf("NL = %d, want 20", p.NL)
	}
}

func TestShortcutChainIsAcyclicNonRegular(t *testing.T) {
	p := params(t, ShortcutChain(12, 3))
	if p.Regular || p.Cyclic {
		t.Fatalf("shortcut chain params = %+v", p)
	}
}

func TestLassoIsCyclic(t *testing.T) {
	p := params(t, Lasso(5, 4))
	if !p.Cyclic {
		t.Fatalf("lasso params = %+v", p)
	}
	if _, err := Lasso(5, 4).SolveCounting(); err == nil {
		t.Fatal("counting should be unsafe on a lasso")
	}
}

func TestCycleIsCyclic(t *testing.T) {
	p := params(t, Cycle(6))
	if !p.Cyclic {
		t.Fatalf("cycle params = %+v", p)
	}
}

func TestSingleFrontierShapes(t *testing.T) {
	ac := params(t, SingleFrontier(8, 6, false))
	if ac.Regular || ac.Cyclic {
		t.Fatalf("acyclic frontier params = %+v", ac)
	}
	// The regular prefix keeps i_x at the prefix boundary.
	if ac.IX < 2 || ac.IX > 9 {
		t.Fatalf("IX = %d, want within prefix", ac.IX)
	}
	cy := params(t, SingleFrontier(8, 6, true))
	if !cy.Cyclic {
		t.Fatalf("cyclic frontier params = %+v", cy)
	}
}

func TestCombHasMultipleButNoRecurring(t *testing.T) {
	p := params(t, Comb(10))
	if p.Regular || p.Cyclic {
		t.Fatalf("comb params = %+v", p)
	}
	// The spine nodes are single; only the diamond sink is multiple.
	if p.NS < 10 {
		t.Fatalf("NS = %d, want most nodes single", p.NS)
	}
}

func TestCycleTailHasAllThreeClasses(t *testing.T) {
	p := params(t, CycleTail(10, 4))
	if !p.Cyclic {
		t.Fatalf("cycle tail params = %+v", p)
	}
	if p.NS == 0 || p.NM <= p.NS {
		t.Fatalf("expected singles and multiples: NS=%d NM=%d", p.NS, p.NM)
	}
	if p.NM >= p.NL {
		t.Fatal("expected recurring nodes too")
	}
}

func TestChordCycleAllRecurringAndDense(t *testing.T) {
	q := ChordCycle(20)
	p := params(t, q)
	if !p.Cyclic {
		t.Fatalf("chord cycle params = %+v", p)
	}
	// Every node sits on the cycle, so everything is recurring: the
	// single+multiple region is empty.
	if p.NM != 0 {
		t.Fatalf("NM = %d, want 0 (all recurring)", p.NM)
	}
	// The shape exists to make the naive recurring Step 1 quadratic;
	// methods must still be correct on it.
	want, err := q.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.SolveMagicCounting(core.Recurring, core.Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(want.Answers) {
		t.Fatalf("answers = %v, want %v", res.Answers, want.Answers)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a := Random(42, 6, 6)
	b := Random(42, 6, 6)
	if len(a.L) != len(b.L) || len(a.R) != len(b.R) || len(a.E) != len(b.E) {
		t.Fatal("Random not deterministic")
	}
	for i := range a.L {
		if a.L[i] != b.L[i] {
			t.Fatal("Random not deterministic in L")
		}
	}
}

func TestRandomDAGIsAcyclic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := params(t, RandomDAG(seed, 6, 4, 0.5))
		if p.Cyclic {
			t.Fatalf("seed %d: RandomDAG produced a cycle", seed)
		}
	}
}

func TestWithRDensityScalesMR(t *testing.T) {
	q := Chain(10)
	small := WithRDensity(q, 20).Params()
	large := WithRDensity(q, 200).Params()
	if large.MR <= small.MR {
		t.Fatalf("MR did not scale: %d vs %d", small.MR, large.MR)
	}
	// The L side must be untouched.
	if small.NL != large.NL || small.ML != large.ML {
		t.Fatal("WithRDensity changed the magic graph")
	}
}

func TestWithRDensityKeepsMethodsCorrect(t *testing.T) {
	q := WithRDensity(ShortcutChain(9, 3), 60)
	want, err := q.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
		for _, m := range []core.Mode{core.Independent, core.Integrated} {
			res, err := q.SolveMagicCounting(s, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Answers) != len(want.Answers) {
				t.Fatalf("%v/%v = %v, want %v", s, m, res.Answers, want.Answers)
			}
		}
	}
}

// Every generator's instance must be solved identically by naive,
// magic, and the full magic counting family.
func TestGeneratorsCrossValidate(t *testing.T) {
	cases := map[string]core.Query{
		"chain":          Chain(8),
		"tree":           Tree(2, 3),
		"grid":           Grid(3, 3),
		"shortcut":       ShortcutChain(9, 3),
		"lasso":          Lasso(4, 3),
		"cycle":          Cycle(5),
		"frontier":       SingleFrontier(5, 4, false),
		"frontierCyclic": SingleFrontier(5, 4, true),
		"comb":           Comb(6),
		"cycletail":      CycleTail(6, 3),
		"random":         Random(7, 5, 5),
		"dag":            RandomDAG(3, 4, 3, 0.4),
	}
	for tname, q := range cases {
		want, err := q.SolveNaive()
		if err != nil {
			t.Fatalf("%s: %v", tname, err)
		}
		m, err := q.SolveMagic()
		if err != nil {
			t.Fatalf("%s: %v", tname, err)
		}
		if len(m.Answers) != len(want.Answers) {
			t.Fatalf("%s: magic %v, want %v", tname, m.Answers, want.Answers)
		}
		for _, s := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
			for _, md := range []core.Mode{core.Independent, core.Integrated} {
				res, err := q.SolveMagicCounting(s, md)
				if err != nil {
					t.Fatalf("%s %v/%v: %v", tname, s, md, err)
				}
				if len(res.Answers) != len(want.Answers) {
					t.Fatalf("%s %v/%v: %v, want %v", tname, s, md, res.Answers, want.Answers)
				}
			}
		}
	}
}
