// Package workload generates deterministic query instances covering
// every magic-graph regime of the paper: regular (all nodes single),
// acyclic non-regular (multiple nodes), and cyclic (recurring nodes).
// The generators parameterize the experiment harness that regenerates
// the paper's Tables 1–5 and Figure 3.
package workload

import (
	"fmt"
	"math/rand"

	"magiccounting/internal/core"
)

// name formats a node constant with a role prefix, so L-side and
// R-side constants never collide accidentally.
func name(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// Chain returns a same-generation instance over a path of n arcs:
// the magic graph is a chain — regular, n_L = n+1, m_L = n.
func Chain(n int) core.Query {
	return core.SameGeneration(chainPairs("v", n), name("v", 0))
}

func chainPairs(prefix string, n int) []core.Pair {
	pairs := make([]core.Pair, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, core.P(name(prefix, i), name(prefix, i+1)))
	}
	return pairs
}

// Tree returns a same-generation instance over a complete tree with
// the given branching factor and depth, arcs pointing away from the
// root. All nodes are single (every node has one distance from the
// root), so the magic graph is regular.
func Tree(branch, depth int) core.Query {
	var pairs []core.Pair
	// Nodes are numbered heap-style: node i has children branch*i+1..
	total := 0
	per := 1
	for d := 0; d < depth; d++ {
		total += per
		per *= branch
	}
	for i := 0; i < total; i++ {
		for c := 0; c < branch; c++ {
			pairs = append(pairs, core.P(name("t", i), name("t", branch*i+c+1)))
		}
	}
	return core.SameGeneration(pairs, name("t", 0))
}

// Grid returns a same-generation instance over a w×h grid with arcs
// right and down: every path from corner to a cell has the same
// length (Manhattan distance), so the magic graph is regular with
// m_L ≈ 2·n_L.
func Grid(w, h int) core.Query {
	id := func(x, y int) string { return fmt.Sprintf("g%d_%d", x, y) }
	var pairs []core.Pair
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				pairs = append(pairs, core.P(id(x, y), id(x+1, y)))
			}
			if y+1 < h {
				pairs = append(pairs, core.P(id(x, y), id(x, y+1)))
			}
		}
	}
	return core.SameGeneration(pairs, id(0, 0))
}

// ShortcutChain returns a chain of n arcs plus shortcut arcs skipping
// `stride` nodes: nodes past the first shortcut have several distinct
// distances, so the magic graph is acyclic but non-regular (Table 1's
// middle row).
func ShortcutChain(n, stride int) core.Query {
	pairs := chainPairs("s", n)
	for i := 0; i+stride+1 <= n; i += stride {
		pairs = append(pairs, core.P(name("s", i), name("s", i+stride+1)))
	}
	return core.SameGeneration(pairs, name("s", 0))
}

// Lasso returns a chain of `tail` arcs ending in a cycle of `loop`
// arcs: every cycle node (and anything past it) is recurring, making
// the counting method unsafe (Table 1's bottom row).
func Lasso(tail, loop int) core.Query {
	pairs := chainPairs("c", tail)
	// Cycle over fresh nodes c(tail)..c(tail+loop-1).
	for i := 0; i < loop; i++ {
		from := name("c", tail+i)
		to := name("c", tail+(i+1)%loop)
		pairs = append(pairs, core.P(from, to))
	}
	return core.SameGeneration(pairs, name("c", 0))
}

// Cycle returns a pure cycle of n arcs through the source.
func Cycle(n int) core.Query {
	var pairs []core.Pair
	for i := 0; i < n; i++ {
		pairs = append(pairs, core.P(name("c", i), name("c", (i+1)%n)))
	}
	return core.SameGeneration(pairs, name("c", 0))
}

// SingleFrontier builds the §7 shape: a regular prefix region of
// `low` chain nodes below the first non-regular level, followed by a
// non-regular suffix region of `high` nodes containing a shortcut
// (acyclic) or a back arc (cyclic). The single/multiple/recurring
// methods split this graph at increasingly precise boundaries.
func SingleFrontier(low, high int, cyclic bool) core.Query {
	pairs := chainPairs("f", low+high)
	// Make the suffix non-regular right at level `low`.
	if high >= 2 {
		pairs = append(pairs, core.P(name("f", low-1), name("f", low+1)))
	}
	if cyclic && high >= 3 {
		pairs = append(pairs, core.P(name("f", low+high), name("f", low+2)))
	}
	return core.SameGeneration(pairs, name("f", 0))
}

// Comb builds the §8 shape: a long regular spine with one multiple
// branch hanging off its start, so the single method discards almost
// everything while the multiple method keeps the whole spine in RC.
// The spine has `spine` arcs; the branch is a diamond with sides of
// length 2 and 3 rooted next to the source.
func Comb(spine int) core.Query {
	pairs := chainPairs("m", spine)
	root := name("m", 0)
	// Short side: root -> d1 -> dx. Long side: root -> d2 -> d3 -> dx.
	pairs = append(pairs,
		core.P(root, "d1"), core.P("d1", "dx"),
		core.P(root, "d2"), core.P("d2", "d3"), core.P("d3", "dx"),
	)
	return core.SameGeneration(pairs, root)
}

// CycleTail builds the §9 shape: a large single+multiple region (a
// spine with a diamond) whose far end drops into a small cycle, so
// only the recurring method keeps the multiple nodes in RC.
func CycleTail(spine, loop int) core.Query {
	q := Comb(spine)
	parent := append([]core.Pair(nil), q.L...)
	// Attach a cycle past the diamond.
	parent = append(parent, core.P("dx", "r0"))
	for i := 0; i < loop; i++ {
		parent = append(parent, core.P(name("r", i), name("r", (i+1)%loop)))
	}
	return core.SameGeneration(parent, name("m", 0))
}

// ChordCycle returns a cycle of n arcs with a skip-one chord at every
// even node: every node then has Θ(n) distinct walk lengths below the
// recurring method's 2K−1 bound, which makes the §9 naive Step 1 do
// its full Θ(n_L·m_L) work — the adversarial shape for the Step 1
// ablation (the Tarjan variant stays linear).
func ChordCycle(n int) core.Query {
	var pairs []core.Pair
	for i := 0; i < n; i++ {
		pairs = append(pairs, core.P(name("h", i), name("h", (i+1)%n)))
		if i%2 == 0 && i+2 < n {
			pairs = append(pairs, core.P(name("h", i), name("h", i+2)))
		}
	}
	return core.SameGeneration(pairs, name("h", 0))
}

// Random returns a random canonical query with independently chosen
// L, E, and R relations over domains of the given sizes, driven by a
// seeded generator for reproducibility.
func Random(seed int64, nL, nR int) core.Query {
	rng := rand.New(rand.NewSource(seed))
	var q core.Query
	q.Source = name("x", 0)
	for i := 0; i < 3*nL; i++ {
		q.L = append(q.L, core.P(name("x", rng.Intn(nL)), name("x", rng.Intn(nL))))
	}
	for i := 0; i < nL; i++ {
		q.E = append(q.E, core.P(name("x", rng.Intn(nL)), name("y", rng.Intn(nR))))
	}
	for i := 0; i < 3*nR; i++ {
		q.R = append(q.R, core.P(name("y", rng.Intn(nR)), name("y", rng.Intn(nR))))
	}
	return q
}

// RandomDAG returns a random layered DAG instance: `layers` layers of
// `width` nodes, arcs only between adjacent layers plus a fraction of
// layer-skipping arcs that create multiple nodes. Acyclic by
// construction.
func RandomDAG(seed int64, layers, width int, skipFrac float64) core.Query {
	rng := rand.New(rand.NewSource(seed))
	id := func(l, i int) string { return fmt.Sprintf("d%d_%d", l, i) }
	var pairs []core.Pair
	src := "droot"
	for i := 0; i < width; i++ {
		pairs = append(pairs, core.P(src, id(0, i)))
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			// Two forward arcs per node keep the graph connected.
			for k := 0; k < 2; k++ {
				pairs = append(pairs, core.P(id(l, i), id(l+1, rng.Intn(width))))
			}
			if rng.Float64() < skipFrac && l+2 < layers {
				pairs = append(pairs, core.P(id(l, i), id(l+2, rng.Intn(width))))
			}
		}
	}
	return core.SameGeneration(pairs, src)
}

// WithRDensity replaces the R relation of a same-generation query by
// a chain-shaped relation with the given number of arcs over fresh
// constants attached to the E targets, letting experiments scale m_R
// independently of m_L (the paper's m_L = O(m_R) average-case
// assumption is varied this way).
func WithRDensity(q core.Query, mr int) core.Query {
	// Keep E as identity on L-side values, but rebuild R as a set of
	// chains hanging from each E target so the descent has work
	// proportional to mr.
	targets := make(map[string]bool)
	for _, e := range q.E {
		targets[e.To] = true
	}
	if len(targets) == 0 {
		return q
	}
	per := mr / len(targets)
	var r []core.Pair
	i := 0
	for _, e := range q.E {
		if !targets[e.To] {
			continue
		}
		delete(targets, e.To)
		prev := e.To
		for k := 0; k < per; k++ {
			next := fmt.Sprintf("w%d_%d", i, k)
			// Pair (next, prev) is the R fact; descent arc prev->next.
			r = append(r, core.P(next, prev))
			prev = next
		}
		i++
	}
	q.R = r
	return q
}
