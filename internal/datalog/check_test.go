package datalog

import (
	"strings"
	"testing"
)

func TestCheckSafetyAcceptsRangeRestricted(t *testing.T) {
	prog := MustParse(`
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
lvl(J1, X) :- lvl(J, Y), arc(Y, X), J1 is J + 1.
ok(X) :- node(X), not bad(X).
big(X) :- n(X), X > 3.
`)
	if err := prog.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSafetyRejectsFreeHeadVar(t *testing.T) {
	prog := MustParse(`p(X, Y) :- e(X, X).`)
	err := prog.CheckSafety()
	if err == nil || !strings.Contains(err.Error(), "Y") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckSafetyRejectsFreeNegatedVar(t *testing.T) {
	prog := MustParse(`p(X) :- e(X, X), not q(X, Z).`)
	if err := prog.CheckSafety(); err == nil {
		t.Fatal("free variable in negated literal should be unsafe")
	}
}

func TestCheckSafetyRejectsUnboundComparison(t *testing.T) {
	prog := MustParse(`p(X) :- e(X, X), Z < 3.`)
	if err := prog.CheckSafety(); err == nil {
		t.Fatal("comparison over unlimited variable should be unsafe")
	}
}

func TestCheckSafetyBuiltinChains(t *testing.T) {
	// Z limited through #add from limited J; W limited via = from Z.
	prog := MustParse(`p(Z, W) :- e(J, J), Z is J + 1, W = Z.`)
	if err := prog.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	// #add with only one known argument cannot limit the others.
	prog2 := MustParse(`p(Z) :- e(J, J), Z is Q + 1.`)
	if err := prog2.CheckSafety(); err == nil {
		t.Fatal("underdetermined #add should be unsafe")
	}
}

func TestStratifyPositiveProgramIsSingleStratum(t *testing.T) {
	prog := MustParse(`
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
`)
	s, err := prog.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if s["p"] != 0 || s["e"] != 0 {
		t.Fatalf("strata = %v", s)
	}
}

func TestStratifyNegationRaisesStratum(t *testing.T) {
	prog := MustParse(`
reach(X) :- src(X).
reach(Y) :- reach(X), e(X, Y).
unreach(X) :- node(X), not reach(X).
`)
	s, err := prog.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if s["unreach"] != s["reach"]+1 {
		t.Fatalf("strata = %v", s)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	prog := MustParse(`
win(X) :- move(X, Y), not win(Y).
`)
	if _, err := prog.Stratify(); err == nil {
		t.Fatal("negation through recursion should be rejected")
	}
}

func TestDependencyOrderGroupsRules(t *testing.T) {
	prog := MustParse(`
reach(X) :- src(X).
reach(Y) :- reach(X), e(X, Y).
unreach(X) :- node(X), not reach(X).
pretty(X) :- node(X), not unreach(X).
`)
	groups, err := prog.DependencyOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d strata, want 3", len(groups))
	}
	if groups[0][0].Head.Pred != "reach" || groups[1][0].Head.Pred != "unreach" || groups[2][0].Head.Pred != "pretty" {
		t.Fatalf("groups = %v", groups)
	}
}

func TestAdornSameGeneration(t *testing.T) {
	prog := MustParse(`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`)
	ap, err := Adorn(prog, MustParse(`?- sg(john, Y).`).Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if ap.QueryPred != "sg__bf" || ap.QueryAdornment != "bf" {
		t.Fatalf("query pred %s ad %s", ap.QueryPred, ap.QueryAdornment)
	}
	if len(ap.Rules) != 2 {
		t.Fatalf("rules = %v", ap.Rules)
	}
	// The recursive call must also be adorned bf (binding passes X ->
	// U through up).
	rec := ap.Rules[1]
	if rec.Head.Pred != "sg__bf" {
		t.Fatalf("head = %v", rec.Head)
	}
	if rec.Body[1].Atom.Pred != "sg__bf" {
		t.Fatalf("recursive literal = %v", rec.Body[1].Atom)
	}
	if got := ap.Adornments["sg"]; len(got) != 1 || got[0] != "bf" {
		t.Fatalf("Adornments = %v", ap.Adornments)
	}
}

func TestAdornGeneratesMultipleAdornments(t *testing.T) {
	// The second rule flips the argument order, producing an fb call
	// from a bf context.
	prog := MustParse(`
p(X, Y) :- e(X, Y).
p(X, Y) :- p(Y, X).
`)
	ap, err := Adorn(prog, MustParse(`?- p(a, Y).`).Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	ads := ap.Adornments["p"]
	if len(ads) != 2 {
		t.Fatalf("adornments = %v", ads)
	}
	seen := map[Adornment]bool{}
	for _, ad := range ads {
		seen[ad] = true
	}
	if !seen["bf"] || !seen["fb"] {
		t.Fatalf("adornments = %v", ads)
	}
	if len(ap.Rules) != 4 {
		t.Fatalf("expected 2 rules x 2 adornments, got %d", len(ap.Rules))
	}
}

func TestAdornBuiltinPropagatesBindings(t *testing.T) {
	prog := MustParse(`
lvl(J, X) :- seed(J, X).
lvl(J1, X) :- J1 is J + 1, lvl(J, Y), arc(Y, X).
`)
	// Query lvl(0, X): first arg bound. In the recursive rule J1 is
	// bound; the preceding #add computes J from J1 (J = J1 - 1), so
	// the recursive call is adorned bf, not ff. The SIP is strictly
	// textual left to right: only literals before the call bind.
	ap, err := Adorn(prog, MustParse(`?- lvl(0, X).`).Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ap.Rules {
		for _, l := range r.Body {
			if strings.HasPrefix(l.Atom.Pred, "lvl__") && l.Atom.Pred != "lvl__bf" {
				t.Fatalf("recursive call adorned %s, want lvl__bf", l.Atom.Pred)
			}
		}
	}
}

func TestAdornErrors(t *testing.T) {
	prog := MustParse(`p(X, Y) :- e(X, Y).`)
	if _, err := Adorn(prog, NewAtom("q", S("a"), V("Y"))); err == nil {
		t.Fatal("unknown query predicate should fail")
	}
	neg := MustParse(`
p(X) :- e(X, X).
q(X) :- e(X, X), not p(X).
`)
	if _, err := Adorn(neg, NewAtom("q", S("a"))); err == nil {
		t.Fatal("negated IDB should be rejected")
	}
}

func TestAdornmentHelpers(t *testing.T) {
	ad := Adornment("bfb")
	pos := ad.BoundPositions()
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 2 {
		t.Fatalf("BoundPositions = %v", pos)
	}
	if ad.AllFree() || !Adornment("ff").AllFree() {
		t.Fatal("AllFree wrong")
	}
	if AdornedName("p", "bf") != "p__bf" {
		t.Fatal("AdornedName wrong")
	}
	bound := map[string]bool{"X": true}
	got := AdornmentFor(NewAtom("p", V("X"), V("Y"), S("c")), bound)
	if got != "bfb" {
		t.Fatalf("AdornmentFor = %s", got)
	}
}
