package datalog

import (
	"fmt"
	"sort"
)

// CheckSafety verifies that every rule of the program is range
// restricted: each head variable, each variable of a negated literal,
// and each variable consumed by a comparison builtin must be limited —
// bound by a positive non-builtin literal, or derivable through #eq /
// #add chains from limited variables and constants. Unsafe rules would
// denote infinite relations.
func (p *Program) CheckSafety() error {
	for _, r := range p.Rules {
		if err := checkRuleSafety(r); err != nil {
			return err
		}
	}
	return nil
}

func checkRuleSafety(r Rule) error {
	limited := make(map[string]bool)
	for _, l := range r.Body {
		if !l.Negated && !l.Atom.IsBuiltin() {
			for _, t := range l.Atom.Args {
				if t.IsVar() {
					limited[t.Var] = true
				}
			}
		}
	}
	// Propagate through #eq and #add until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Negated || !l.Atom.IsBuiltin() {
				continue
			}
			a := l.Atom
			known := func(t Term) bool { return !t.IsVar() || limited[t.Var] }
			mark := func(t Term) {
				if t.IsVar() && !limited[t.Var] {
					limited[t.Var] = true
					changed = true
				}
			}
			switch a.Pred {
			case BuiltinEq:
				if len(a.Args) == 2 {
					if known(a.Args[0]) {
						mark(a.Args[1])
					}
					if known(a.Args[1]) {
						mark(a.Args[0])
					}
				}
			case BuiltinAdd:
				if len(a.Args) == 3 {
					kn := 0
					for _, t := range a.Args {
						if known(t) {
							kn++
						}
					}
					if kn >= 2 {
						for _, t := range a.Args {
							mark(t)
						}
					}
				}
			}
		}
	}
	var unsafe []string
	need := func(t Term, where string) {
		if t.IsVar() && !limited[t.Var] {
			unsafe = append(unsafe, fmt.Sprintf("%s (%s)", t.Var, where))
		}
	}
	for _, t := range r.Head.Args {
		need(t, "head")
	}
	for _, l := range r.Body {
		if l.Negated {
			for _, t := range l.Atom.Args {
				need(t, "negated "+l.Atom.Pred)
			}
		} else if l.Atom.IsBuiltin() {
			for _, t := range l.Atom.Args {
				need(t, "builtin "+l.Atom.Pred)
			}
		}
	}
	if len(unsafe) > 0 {
		sort.Strings(unsafe)
		return fmt.Errorf("datalog: unsafe rule %q: unlimited variables %v", r.String(), dedupeStrings(unsafe))
	}
	return nil
}

// Stratify partitions the program's predicates into strata such that
// every positive dependency stays within or below a predicate's
// stratum and every negative dependency comes from a strictly lower
// stratum. It returns stratum numbers (0-based; EDB predicates get 0)
// or an error if the program has negation through recursion.
func (p *Program) Stratify() (map[string]int, error) {
	stratum := make(map[string]int)
	preds := make(map[string]bool)
	for _, r := range p.Rules {
		preds[r.Head.Pred] = true
		for _, l := range r.Body {
			if !l.Atom.IsBuiltin() {
				preds[l.Atom.Pred] = true
			}
		}
	}
	for pr := range preds {
		stratum[pr] = 0
	}
	// Iterate stratum constraints to fixpoint; more than |preds|
	// increments of any predicate proves a negative cycle.
	limit := len(preds) + 1
	for changed, rounds := true, 0; changed; rounds++ {
		if rounds > limit {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
		changed = false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if l.Atom.IsBuiltin() {
					continue
				}
				b := l.Atom.Pred
				min := stratum[b]
				if l.Negated {
					min++
				}
				if stratum[h] < min {
					if min > limit {
						return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
					}
					stratum[h] = min
					changed = true
				}
			}
		}
	}
	return stratum, nil
}

// DependencyOrder returns the program's rules grouped by stratum in
// evaluation order. Rules inherit the stratum of their head predicate.
func (p *Program) DependencyOrder() ([][]Rule, error) {
	stratum, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	groups := make([][]Rule, max+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		groups[s] = append(groups[s], r)
	}
	var out [][]Rule
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		out = [][]Rule{nil}
	}
	return out, nil
}

func dedupeStrings(xs []string) []string {
	var out []string
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
