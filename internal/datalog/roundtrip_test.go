package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTerm generates a parseable term: variables, symbols, integers.
func randTerm(rng *rand.Rand) Term {
	switch rng.Intn(3) {
	case 0:
		return V(string(rune('A'+rng.Intn(4))) + "v")
	case 1:
		syms := []string{"a", "bob", "x1", "long_name", "q"}
		return S(syms[rng.Intn(len(syms))])
	default:
		return N(int64(rng.Intn(200) - 100))
	}
}

// randAtom generates a parseable user atom.
func randAtom(rng *rand.Rand) Atom {
	preds := []string{"p", "q", "edge", "node"}
	n := rng.Intn(4)
	args := make([]Term, n)
	for i := range args {
		args[i] = randTerm(rng)
	}
	return Atom{Pred: preds[rng.Intn(len(preds))], Args: args}
}

// randBuiltin generates a parseable builtin literal whose rendering
// survives a round trip (comparisons and #add in `is` form).
func randBuiltin(rng *rand.Rand) Atom {
	x, y := randTerm(rng), randTerm(rng)
	switch rng.Intn(6) {
	case 0:
		return Atom{Pred: BuiltinEq, Args: []Term{x, y}}
	case 1:
		return Atom{Pred: BuiltinNeq, Args: []Term{x, y}}
	case 2:
		return Atom{Pred: BuiltinLt, Args: []Term{x, y}}
	case 3:
		return Atom{Pred: BuiltinLe, Args: []Term{x, y}}
	case 4:
		return Atom{Pred: BuiltinGt, Args: []Term{x, y}}
	default:
		return Atom{Pred: BuiltinAdd, Args: []Term{x, y, randTerm(rng)}}
	}
}

// randProgram generates a random parseable program. Safety is not
// required — the round trip is purely syntactic.
func randProgram(rng *rand.Rand) *Program {
	p := &Program{}
	for i := rng.Intn(4); i > 0; i-- {
		a := randAtom(rng)
		ground := true
		for _, t := range a.Args {
			if t.IsVar() {
				ground = false
			}
		}
		if ground && len(a.Args) > 0 {
			p.Facts = append(p.Facts, a)
		}
	}
	for i := 1 + rng.Intn(4); i > 0; i-- {
		r := Rule{Head: randAtom(rng)}
		for j := 1 + rng.Intn(4); j > 0; j-- {
			switch rng.Intn(4) {
			case 0:
				r.Body = append(r.Body, Neg(randAtom(rng)))
			case 1:
				r.Body = append(r.Body, Pos(randBuiltin(rng)))
			default:
				r.Body = append(r.Body, Pos(randAtom(rng)))
			}
		}
		p.Rules = append(p.Rules, r)
	}
	for i := rng.Intn(2); i > 0; i-- {
		p.Queries = append(p.Queries, randAtom(rng))
	}
	return p
}

// The printer and parser are inverse up to a fixed point: parsing a
// rendered program and rendering again must be identity.
func TestProgramPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		text := p.String()
		again, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: rendered program does not parse: %v\n%s", seed, err, text)
			return false
		}
		if again.String() != text {
			t.Logf("seed %d: round trip changed program:\n%s\nvs\n%s", seed, text, again.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Parsing is total on printed rules: every individual rendered rule
// parses back to a structurally identical rule.
func TestRuleRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Rule{Head: randAtom(rng)}
		// At least one body literal: an empty-body clause with head
		// variables is not expressible (facts must be ground).
		for j := 1 + rng.Intn(3); j > 0; j-- {
			r.Body = append(r.Body, Pos(randAtom(rng)))
		}
		prog, err := Parse(r.String())
		if err != nil {
			return false
		}
		var got string
		if len(prog.Rules) == 1 {
			got = prog.Rules[0].String()
		} else if len(prog.Facts) == 1 {
			got = Rule{Head: prog.Facts[0]}.String()
		} else {
			return false
		}
		return got == r.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
