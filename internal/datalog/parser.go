package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a Datalog program in the concrete syntax:
//
//	parent(tom, bob).                 % fact
//	anc(X, Y) :- parent(X, Y).        % rule
//	anc(X, Y) :- parent(X, Z), anc(Z, Y).
//	sg(X, Y)  :- up(X, U), sg(U, V), down(V, Y).
//	lvl(J1, X) :- lvl(J, Y), arc(Y, X), J1 is J + 1.
//	ok(X) :- node(X), not bad(X).     % stratified negation
//	?- anc(tom, Y).                   % query
//
// Identifiers starting with a lowercase letter are symbols/predicates;
// identifiers starting with an uppercase letter or '_' are variables;
// '_' alone is an anonymous variable (each occurrence fresh). Integers
// are integer constants. Quoted 'strings' are symbols. Comments run
// from '%' or '//' to end of line. Infix comparisons =, !=, <, <=, >,
// >= and the arithmetic form `X is Y + Z` / `X is Y - Z` desugar to
// builtins. succ(X, Y) is accepted as sugar for Y is X + 1.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src), anon: 0}
	prog := &Program{}
	for {
		tok := p.peek()
		if tok.kind == tokEOF {
			return prog, nil
		}
		if err := p.clause(prog); err != nil {
			return nil, err
		}
	}
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokInt
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokQuery   // ?-
	tokOp      // = != < <= > >= + -
	tokError
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.skipBlockComment()
		default:
			return l.token()
		}
	}
	return token{kind: tokEOF, line: l.line}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() {
	l.pos += 2
	for l.pos+1 < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
		}
		if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
			l.pos += 2
			return
		}
		l.pos++
	}
	l.pos = len(l.src)
}

func (l *lexer) token() token {
	start := l.pos
	c := rune(l.src[l.pos])
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", line: l.line}
	case c == ':':
		if strings.HasPrefix(l.src[l.pos:], ":-") {
			l.pos += 2
			return token{kind: tokImplies, text: ":-", line: l.line}
		}
		l.pos++
		return token{kind: tokError, text: ":", line: l.line}
	case c == '?':
		if strings.HasPrefix(l.src[l.pos:], "?-") {
			l.pos += 2
			return token{kind: tokQuery, text: "?-", line: l.line}
		}
		l.pos++
		return token{kind: tokError, text: "?", line: l.line}
	case c == '!' && strings.HasPrefix(l.src[l.pos:], "!="):
		l.pos += 2
		return token{kind: tokOp, text: "!=", line: l.line}
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{kind: tokOp, text: op, line: l.line}
	case c == '=' || c == '+':
		l.pos++
		return token{kind: tokOp, text: string(c), line: l.line}
	case c == '-':
		// Negative integer literal or minus operator.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.integer()
		}
		l.pos++
		return token{kind: tokOp, text: "-", line: l.line}
	case c == '\'' || c == '"':
		return l.quoted(byte(c))
	case isDigit(byte(c)):
		return l.integer()
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		first := rune(text[0])
		if unicode.IsUpper(first) || first == '_' {
			return token{kind: tokVar, text: text, line: l.line}
		}
		return token{kind: tokIdent, text: text, line: l.line}
	default:
		l.pos++
		return token{kind: tokError, text: string(c), line: l.line}
	}
}

func (l *lexer) integer() token {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	if err != nil {
		return token{kind: tokError, text: l.src[start:l.pos], line: l.line}
	}
	return token{kind: tokInt, num: n, text: l.src[start:l.pos], line: l.line}
}

func (l *lexer) quoted(quote byte) token {
	l.pos++ // opening quote
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != quote && l.src[l.pos] != '\n' {
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != quote {
		return token{kind: tokError, text: "unterminated string", line: l.line}
	}
	text := l.src[start:l.pos]
	l.pos++ // closing quote
	return token{kind: tokIdent, text: text, line: l.line}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool {
	return c == '_' || isDigit(c) || unicode.IsLetter(rune(c))
}

type parser struct {
	lex    *lexer
	peeked *token
	anon   int
}

func (p *parser) peek() token {
	if p.peeked == nil {
		t := p.lex.next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *parser) next() token {
	t := p.peek()
	p.peeked = nil
	return t
}

func (p *parser) errorf(tok token, format string, args ...interface{}) error {
	return fmt.Errorf("datalog: line %d: %s", tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	tok := p.next()
	if tok.kind != kind {
		return tok, p.errorf(tok, "expected %s, found %q", what, tok.text)
	}
	return tok, nil
}

func (p *parser) clause(prog *Program) error {
	if p.peek().kind == tokQuery {
		p.next()
		atom, err := p.atom()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return err
		}
		prog.AddQuery(atom)
		return nil
	}
	head, err := p.atom()
	if err != nil {
		return err
	}
	if head.IsBuiltin() {
		return fmt.Errorf("datalog: builtin %s cannot head a clause", head.Pred)
	}
	tok := p.next()
	switch tok.kind {
	case tokDot:
		if !head.IsGround() {
			return p.errorf(tok, "fact %s has variables", head)
		}
		prog.AddFact(head)
		return nil
	case tokImplies:
		body, err := p.literalList()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return err
		}
		prog.AddRule(Rule{Head: head, Body: body})
		return nil
	default:
		return p.errorf(tok, "expected '.' or ':-' after %s, found %q", head, tok.text)
	}
}

func (p *parser) literalList() ([]Literal, error) {
	var lits []Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		lits = append(lits, lit)
		if p.peek().kind != tokComma {
			return lits, nil
		}
		p.next()
	}
}

func (p *parser) literal() (Literal, error) {
	if t := p.peek(); t.kind == tokIdent && t.text == "not" {
		p.next()
		atom, err := p.atom()
		if err != nil {
			return Literal{}, err
		}
		if atom.IsBuiltin() {
			return Literal{}, p.errorf(t, "negation of builtin %s is not supported; use the complementary comparison", atom.Pred)
		}
		return Neg(atom), nil
	}
	atom, err := p.atom()
	if err != nil {
		return Literal{}, err
	}
	return Pos(atom), nil
}

// atom parses a predicate application or an infix builtin:
//
//	p(X, a)   |   X = Y   |   X != Y   |   X < Y  ...   |   X is Y + 1
func (p *parser) atom() (Atom, error) {
	tok := p.peek()
	if tok.kind == tokVar || tok.kind == tokInt {
		return p.infix()
	}
	if tok.kind != tokIdent {
		return Atom{}, p.errorf(tok, "expected atom, found %q", tok.text)
	}
	p.next()
	pred := tok.text
	if p.peek().kind != tokLParen {
		// Could be an infix form with a symbol on the left: a = X,
		// or the arithmetic check `c is A + B`.
		if next := p.peek(); next.kind == tokOp || (next.kind == tokIdent && next.text == "is") {
			return p.infixAfter(S(pred))
		}
		return Atom{Pred: pred}, nil
	}
	p.next() // (
	var args []Term
	if p.peek().kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return Atom{}, err
			}
			args = append(args, t)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Atom{}, err
	}
	// succ(X, Y) sugar: Y = X + 1.
	if pred == "succ" && len(args) == 2 {
		return Atom{Pred: BuiltinAdd, Args: []Term{args[0], N(1), args[1]}}, nil
	}
	return Atom{Pred: pred, Args: args}, nil
}

func (p *parser) infix() (Atom, error) {
	lhs, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	return p.infixAfter(lhs)
}

func (p *parser) infixAfter(lhs Term) (Atom, error) {
	tok := p.next()
	if tok.kind == tokIdent && tok.text == "is" {
		return p.isExpr(lhs)
	}
	if tok.kind != tokOp {
		return Atom{}, p.errorf(tok, "expected operator after %s, found %q", lhs, tok.text)
	}
	rhs, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	preds := map[string]string{
		"=": BuiltinEq, "!=": BuiltinNeq, "<": BuiltinLt,
		"<=": BuiltinLe, ">": BuiltinGt, ">=": BuiltinGe,
	}
	pred, ok := preds[tok.text]
	if !ok {
		return Atom{}, p.errorf(tok, "operator %q is not a comparison", tok.text)
	}
	return Atom{Pred: pred, Args: []Term{lhs, rhs}}, nil
}

// isExpr parses `LHS is A + B` or `LHS is A - B` (or bare `LHS is A`).
func (p *parser) isExpr(lhs Term) (Atom, error) {
	a, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	if p.peek().kind != tokOp {
		return Atom{Pred: BuiltinEq, Args: []Term{lhs, a}}, nil
	}
	op := p.next()
	b, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	switch op.text {
	case "+":
		// lhs = a + b
		return Atom{Pred: BuiltinAdd, Args: []Term{a, b, lhs}}, nil
	case "-":
		// lhs = a - b  <=>  a = lhs + b
		return Atom{Pred: BuiltinAdd, Args: []Term{lhs, b, a}}, nil
	default:
		return Atom{}, p.errorf(op, "unsupported arithmetic operator %q", op.text)
	}
}

func (p *parser) term() (Term, error) {
	tok := p.next()
	switch tok.kind {
	case tokVar:
		if tok.text == "_" {
			p.anon++
			return V(fmt.Sprintf("_G%d", p.anon)), nil
		}
		return V(tok.text), nil
	case tokIdent:
		return S(tok.text), nil
	case tokInt:
		return N(tok.num), nil
	default:
		return Term{}, p.errorf(tok, "expected term, found %q", tok.text)
	}
}
