package datalog

import (
	"strings"
	"testing"

	"magiccounting/internal/relation"
)

func TestTermConstructors(t *testing.T) {
	if !V("X").IsVar() || S("a").IsVar() || N(3).IsVar() {
		t.Fatal("IsVar wrong")
	}
	if V("X").String() != "X" || S("a").String() != "a" || N(3).String() != "3" {
		t.Fatal("Term String wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("V(\"\") should panic")
		}
	}()
	V("")
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("p", V("X"), S("c"))
	if a.IsGround() {
		t.Fatal("atom with variable is not ground")
	}
	if !NewAtom("p", S("c")).IsGround() {
		t.Fatal("constant atom is ground")
	}
	if !NewAtom(BuiltinEq, V("X"), N(1)).IsBuiltin() || a.IsBuiltin() {
		t.Fatal("IsBuiltin wrong")
	}
	vars := NewAtom("p", V("X"), V("Y"), V("X")).Vars(nil)
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestAtomTuple(t *testing.T) {
	a := NewAtom("p", S("x"), N(2))
	tup := a.Tuple()
	if !tup.Equal(relation.Tuple{relation.Sym("x"), relation.Int(2)}) {
		t.Fatalf("Tuple = %v", tup)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Tuple on non-ground atom should panic")
		}
	}()
	NewAtom("p", V("X")).Tuple()
}

func TestAtomStringForms(t *testing.T) {
	cases := []struct {
		atom Atom
		want string
	}{
		{NewAtom("p", V("X"), S("a")), "p(X, a)"},
		{NewAtom("q"), "q"},
		{NewAtom(BuiltinEq, V("X"), N(1)), "X = 1"},
		{NewAtom(BuiltinNeq, V("X"), V("Y")), "X != Y"},
		{NewAtom(BuiltinLt, V("X"), N(2)), "X < 2"},
		{NewAtom(BuiltinAdd, V("J"), N(1), V("J1")), "J1 is J + 1"},
	}
	for _, c := range cases {
		if got := c.atom.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRuleStringAndVars(t *testing.T) {
	r := NewRule(NewAtom("anc", V("X"), V("Y")),
		NewAtom("parent", V("X"), V("Z")),
		NewAtom("anc", V("Z"), V("Y")))
	want := "anc(X, Y) :- parent(X, Z), anc(Z, Y)."
	if r.String() != want {
		t.Fatalf("Rule String = %q", r.String())
	}
	vars := r.Vars()
	if len(vars) != 3 || vars[0] != "X" || vars[1] != "Y" || vars[2] != "Z" {
		t.Fatalf("Vars = %v", vars)
	}
	fact := Rule{Head: NewAtom("p", S("a"))}
	if fact.String() != "p(a)." {
		t.Fatalf("fact String = %q", fact.String())
	}
}

func TestLiteralString(t *testing.T) {
	if Neg(NewAtom("p", V("X"))).String() != "not p(X)" {
		t.Fatal("negated literal String wrong")
	}
}

func TestProgramRoundTripThroughString(t *testing.T) {
	src := `
e(a, b).
e(b, c).
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
?- p(a, Y).
`
	prog := MustParse(src)
	again := MustParse(prog.String())
	if prog.String() != again.String() {
		t.Fatalf("round trip changed program:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestProgramIDBAndArities(t *testing.T) {
	prog := MustParse(`
p(X, Y) :- e(X, Y).
q(X) :- p(X, X).
e(a, b).
`)
	idb := prog.IDB()
	if !idb["p"] || !idb["q"] || idb["e"] {
		t.Fatalf("IDB = %v", idb)
	}
	ar, err := prog.PredArities()
	if err != nil {
		t.Fatal(err)
	}
	if ar["p"] != 2 || ar["q"] != 1 || ar["e"] != 2 {
		t.Fatalf("arities = %v", ar)
	}
}

func TestPredAritiesConflict(t *testing.T) {
	prog := MustParse(`
p(X) :- e(X, X).
p(X, Y) :- e(X, Y).
`)
	if _, err := prog.PredArities(); err == nil {
		t.Fatal("expected arity conflict error")
	}
}

func TestAddFactPanicsOnVariables(t *testing.T) {
	var p Program
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.AddFact(NewAtom("p", V("X")))
}

func TestParseFacts(t *testing.T) {
	prog := MustParse(`e(a, b). e(b, 3). n('hello world', "x y").`)
	if len(prog.Facts) != 3 {
		t.Fatalf("facts = %v", prog.Facts)
	}
	if prog.Facts[1].Args[1].Const != relation.Int(3) {
		t.Fatal("integer constant not parsed")
	}
	if prog.Facts[2].Args[0].Const != relation.Sym("hello world") {
		t.Fatal("quoted symbol not parsed")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	prog := MustParse(`
% line comment
e(a, b). // another
/* block
   comment */ e(b, c).
`)
	if len(prog.Facts) != 2 {
		t.Fatalf("facts = %v", prog.Facts)
	}
}

func TestParseNegativeIntegerAndArithmetic(t *testing.T) {
	prog := MustParse(`lvl(J1, X) :- lvl(J, Y), arc(Y, X), J1 is J + 1.`)
	r := prog.Rules[0]
	last := r.Body[2].Atom
	if last.Pred != BuiltinAdd || last.Args[1].Const != relation.Int(1) {
		t.Fatalf("is-expr desugar = %v", last)
	}
	prog2 := MustParse(`p(X) :- q(X, J), J >= -5.`)
	cmp := prog2.Rules[0].Body[1].Atom
	if cmp.Pred != BuiltinGe || cmp.Args[1].Const != relation.Int(-5) {
		t.Fatalf("comparison = %v", cmp)
	}
}

func TestParseSubtractionDesugar(t *testing.T) {
	prog := MustParse(`down(J1, Y) :- down(J, Z), r(Y, Z), J1 is J - 1.`)
	a := prog.Rules[0].Body[2].Atom
	// J1 = J - 1  <=>  J = J1 + 1, i.e. #add(J1, 1, J).
	if a.Pred != BuiltinAdd || a.Args[0].Var != "J1" || a.Args[2].Var != "J" {
		t.Fatalf("subtraction desugar = %v", a)
	}
}

func TestParseSuccSugar(t *testing.T) {
	prog := MustParse(`p(J1) :- q(J), succ(J, J1).`)
	a := prog.Rules[0].Body[1].Atom
	if a.Pred != BuiltinAdd || a.Args[1].Const != relation.Int(1) {
		t.Fatalf("succ desugar = %v", a)
	}
}

func TestParseNegationAndAnonymousVars(t *testing.T) {
	prog := MustParse(`ok(X) :- node(X), not bad(X, _), not ugly(X).`)
	r := prog.Rules[0]
	if !r.Body[1].Negated || !r.Body[2].Negated {
		t.Fatal("negation not parsed")
	}
	anon := r.Body[1].Atom.Args[1]
	if !anon.IsVar() || !strings.HasPrefix(anon.Var, "_G") {
		t.Fatalf("anonymous var = %v", anon)
	}
}

func TestParseInfixWithSymbolLHS(t *testing.T) {
	prog := MustParse(`p(X) :- q(X, Y), a = Y.`)
	cmp := prog.Rules[0].Body[1].Atom
	if cmp.Pred != BuiltinEq || cmp.Args[0].Const != relation.Sym("a") {
		t.Fatalf("infix = %v", cmp)
	}
}

func TestParseQueries(t *testing.T) {
	prog := MustParse(`?- p(a, Y).`)
	if len(prog.Queries) != 1 || prog.Queries[0].Pred != "p" {
		t.Fatalf("queries = %v", prog.Queries)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(a`,                  // unterminated
		`p(a) :- q(a)`,         // missing period
		`p(X).`,                // fact with variable
		`p(a) :- not X < 3.`,   // negated builtin
		`?- p(a)`,              // unterminated query
		`p(a) :- q(a), , r.`,   // stray comma
		`'unterminated`,        // bad string
		`p(a) : q(a).`,         // lone colon
		`p(X) :- q(X), X ? Y.`, // bad operator
		`X = 3.`,               // builtin as clause head is a parse error
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse(`p(a`)
}
