package datalog

import (
	"fmt"
	"strings"
)

// Adornment is a bound/free annotation for a predicate's argument
// positions: a string over {'b', 'f'}, one rune per argument.
type Adornment string

// AdornmentFor computes the adornment of atom a given the set of bound
// variables: constants and bound variables are 'b', the rest 'f'.
func AdornmentFor(a Atom, bound map[string]bool) Adornment {
	var b strings.Builder
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.Var] {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return Adornment(b.String())
}

// BoundPositions returns the indices adorned 'b'.
func (ad Adornment) BoundPositions() []int {
	var out []int
	for i := 0; i < len(ad); i++ {
		if ad[i] == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// AllFree reports whether no argument is bound.
func (ad Adornment) AllFree() bool { return !strings.Contains(string(ad), "b") }

// AdornedName renders the internal predicate name for pred adorned
// with ad, e.g. sg with "bf" becomes "sg__bf". The double underscore
// keeps the name parseable and out of the way of user predicates.
func AdornedName(pred string, ad Adornment) string {
	return pred + "__" + string(ad)
}

// AdornedProgram is the result of propagating query bindings through
// an IDB: every intensional predicate is split per adornment and each
// rule is specialized with a left-to-right sideways information
// passing strategy.
type AdornedProgram struct {
	// Rules are the adorned rules; IDB predicates are renamed with
	// AdornedName, EDB predicates keep their names.
	Rules []Rule
	// QueryPred is the adorned name of the query's predicate.
	QueryPred string
	// QueryAdornment is the query's adornment.
	QueryAdornment Adornment
	// Goal is the original query atom (unrenamed).
	Goal Atom
	// Adornments lists, per original IDB predicate, the adornments
	// that were generated.
	Adornments map[string][]Adornment
}

// Adorn specializes program p for the query goal, whose bound
// positions are its constant arguments. Only positive IDB literals
// propagate bindings into recursive calls; negated IDB literals are
// rejected (the magic rewrites here are defined for positive
// programs).
func Adorn(p *Program, goal Atom) (*AdornedProgram, error) {
	idb := p.IDB()
	if !idb[goal.Pred] {
		return nil, fmt.Errorf("datalog: query predicate %s is not defined by any rule", goal.Pred)
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Negated && idb[l.Atom.Pred] {
				return nil, fmt.Errorf("datalog: adornment of negated IDB literal %s is not supported", l.Atom)
			}
		}
	}
	goalAd := AdornmentFor(goal, nil)
	out := &AdornedProgram{
		QueryPred:      AdornedName(goal.Pred, goalAd),
		QueryAdornment: goalAd,
		Goal:           goal,
		Adornments:     make(map[string][]Adornment),
	}
	type job struct {
		pred string
		ad   Adornment
	}
	done := make(map[job]bool)
	queue := []job{{goal.Pred, goalAd}}
	done[queue[0]] = true
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		out.Adornments[j.pred] = append(out.Adornments[j.pred], j.ad)
		for _, r := range p.Rules {
			if r.Head.Pred != j.pred {
				continue
			}
			if len(r.Head.Args) != len(j.ad) {
				return nil, fmt.Errorf("datalog: adornment %s does not fit %s/%d", j.ad, j.pred, len(r.Head.Args))
			}
			ar, newJobs := adornRule(r, j.ad, idb)
			out.Rules = append(out.Rules, ar)
			for _, nj := range newJobs {
				k := job{nj.pred, nj.ad}
				if !done[k] {
					done[k] = true
					queue = append(queue, k)
				}
			}
		}
	}
	return out, nil
}

// adornRule specializes one rule for a head adornment, renaming the
// head and every IDB body literal, and returns the adorned IDB body
// predicates that now need their own rules.
func adornRule(r Rule, headAd Adornment, idb map[string]bool) (Rule, []struct {
	pred string
	ad   Adornment
}) {
	bound := make(map[string]bool)
	for i, t := range r.Head.Args {
		if headAd[i] == 'b' && t.IsVar() {
			bound[t.Var] = true
		}
	}
	adorned := Rule{Head: Atom{Pred: AdornedName(r.Head.Pred, headAd), Args: r.Head.Args}}
	var jobs []struct {
		pred string
		ad   Adornment
	}
	for _, l := range r.Body {
		a := l.Atom
		switch {
		case a.IsBuiltin():
			adorned.Body = append(adorned.Body, l)
			if !l.Negated {
				propagateBuiltinBindings(a, bound)
			}
		case idb[a.Pred] && !l.Negated:
			ad := AdornmentFor(a, bound)
			adorned.Body = append(adorned.Body, Pos(Atom{Pred: AdornedName(a.Pred, ad), Args: a.Args}))
			jobs = append(jobs, struct {
				pred string
				ad   Adornment
			}{a.Pred, ad})
			bindAll(a, bound)
		default:
			// EDB literal (or negated EDB): keep as is. Positive
			// literals bind their variables.
			adorned.Body = append(adorned.Body, l)
			if !l.Negated {
				bindAll(a, bound)
			}
		}
	}
	return adorned, jobs
}

func bindAll(a Atom, bound map[string]bool) {
	for _, t := range a.Args {
		if t.IsVar() {
			bound[t.Var] = true
		}
	}
}

// propagateBuiltinBindings marks variables that an evaluable builtin
// can compute from already-bound inputs: #eq binds either side from
// the other, #add binds the third argument from any two.
func propagateBuiltinBindings(a Atom, bound map[string]bool) {
	known := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	mark := func(t Term) {
		if t.IsVar() {
			bound[t.Var] = true
		}
	}
	switch a.Pred {
	case BuiltinEq:
		if len(a.Args) == 2 {
			if known(a.Args[0]) {
				mark(a.Args[1])
			} else if known(a.Args[1]) {
				mark(a.Args[0])
			}
		}
	case BuiltinAdd:
		if len(a.Args) == 3 {
			kn := 0
			for _, t := range a.Args {
				if known(t) {
					kn++
				}
			}
			if kn >= 2 {
				for _, t := range a.Args {
					mark(t)
				}
			}
		}
	}
}
