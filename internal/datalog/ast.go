// Package datalog defines the logic-language layer of the deductive
// database: terms, atoms, rules and programs, a text parser, safety
// (range-restriction) and stratification checks, and the bound/free
// adornment pass that the magic-set and counting rewrites build on.
//
// The dialect is positive Datalog with stratified negation and a small
// set of arithmetic builtins (#add and comparisons) — exactly what the
// counting rewrites of Saccà & Zaniolo's magic counting paper require
// for their level indices J+1 / J-1.
package datalog

import (
	"fmt"
	"strings"

	"magiccounting/internal/relation"
)

// Term is a variable or a constant. Exactly one of the two is active:
// a Term with a nonempty Var name is a variable, otherwise it is the
// constant Const.
type Term struct {
	Var   string
	Const relation.Value
}

// V returns a variable term named name.
func V(name string) Term {
	if name == "" {
		panic("datalog: empty variable name")
	}
	return Term{Var: name}
}

// C returns a constant term holding v.
func C(v relation.Value) Term { return Term{Const: v} }

// S returns a symbolic-constant term.
func S(sym string) Term { return C(relation.Sym(sym)) }

// N returns an integer-constant term.
func N(n int64) Term { return C(relation.Int(n)) }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in parser syntax.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Builtin predicate names. They start with '#' so user predicates can
// never collide with them.
const (
	// BuiltinAdd is #add(A, B, C) with meaning C = A + B. It is
	// evaluable when at least two arguments are bound.
	BuiltinAdd = "#add"
	// BuiltinEq is #eq(A, B): equality, can bind one unbound side.
	BuiltinEq = "#eq"
	// BuiltinNeq, BuiltinLt, BuiltinLe, BuiltinGt, BuiltinGe are
	// comparisons requiring both sides bound.
	BuiltinNeq = "#neq"
	BuiltinLt  = "#lt"
	BuiltinLe  = "#le"
	BuiltinGt  = "#gt"
	BuiltinGe  = "#ge"
)

// IsBuiltinPred reports whether pred names a builtin.
func IsBuiltinPred(pred string) bool {
	return strings.HasPrefix(pred, "#")
}

// Atom is a predicate applied to terms: p(t1, ..., tn).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// IsBuiltin reports whether the atom's predicate is a builtin.
func (a Atom) IsBuiltin() bool { return IsBuiltinPred(a.Pred) }

// IsGround reports whether the atom has no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the distinct variable names of a to dst in first-
// occurrence order and returns the extended slice.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() && !containsString(dst, t.Var) {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// Tuple converts a ground atom's arguments to a relation tuple. It
// panics if the atom is not ground.
func (a Atom) Tuple() relation.Tuple {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar() {
			panic("datalog: Tuple on non-ground atom " + a.String())
		}
		t[i] = arg.Const
	}
	return t
}

// String renders the atom in parser syntax. Builtins render as their
// infix form where one exists.
func (a Atom) String() string {
	if a.IsBuiltin() && len(a.Args) == 2 {
		op := map[string]string{
			BuiltinEq: "=", BuiltinNeq: "!=", BuiltinLt: "<",
			BuiltinLe: "<=", BuiltinGt: ">", BuiltinGe: ">=",
		}[a.Pred]
		if op != "" {
			return fmt.Sprintf("%s %s %s", a.Args[0], op, a.Args[1])
		}
	}
	if a.Pred == BuiltinAdd && len(a.Args) == 3 {
		return fmt.Sprintf("%s is %s + %s", a.Args[2], a.Args[0], a.Args[1])
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	if len(a.Args) > 0 {
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Literal is a possibly negated atom appearing in a rule body.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos wraps an atom as a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg wraps an atom as a negated literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// String renders the literal in parser syntax.
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is a Horn clause Head :- Body. An empty body makes it a fact
// schema (the head must then be ground to be a fact).
type Rule struct {
	Head Atom
	Body []Literal
}

// NewRule builds a rule from a head and positive body atoms.
func NewRule(head Atom, body ...Atom) Rule {
	r := Rule{Head: head}
	for _, a := range body {
		r.Body = append(r.Body, Pos(a))
	}
	return r
}

// Vars returns the distinct variables of the rule in first-occurrence
// order (head first).
func (r Rule) Vars() []string {
	vars := r.Head.Vars(nil)
	for _, l := range r.Body {
		vars = l.Atom.Vars(vars)
	}
	return vars
}

// String renders the rule in parser syntax, with terminating period.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a set of rules, ground facts, and query goals.
type Program struct {
	Rules   []Rule
	Facts   []Atom
	Queries []Atom
}

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.Rules = append(p.Rules, r) }

// AddFact appends a ground fact. It panics on non-ground atoms.
func (p *Program) AddFact(a Atom) {
	if !a.IsGround() {
		panic("datalog: AddFact on non-ground atom " + a.String())
	}
	p.Facts = append(p.Facts, a)
}

// AddQuery appends a query goal.
func (p *Program) AddQuery(a Atom) { p.Queries = append(p.Queries, a) }

// IDB returns the set of intensional predicates: those defined by at
// least one rule head.
func (p *Program) IDB() map[string]bool {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// PredArities returns every predicate's arity, or an error if some
// predicate is used with two different arities.
func (p *Program) PredArities() (map[string]int, error) {
	ar := make(map[string]int)
	note := func(a Atom) error {
		if have, ok := ar[a.Pred]; ok && have != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arity %d and %d", a.Pred, have, len(a.Args))
		}
		ar[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			if err := note(l.Atom); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range p.Facts {
		if err := note(f); err != nil {
			return nil, err
		}
	}
	for _, q := range p.Queries {
		if err := note(q); err != nil {
			return nil, err
		}
	}
	return ar, nil
}

// String renders the whole program in parser syntax: facts, rules,
// then queries.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, q := range p.Queries {
		b.WriteString("?- ")
		b.WriteString(q.String())
		b.WriteString(".\n")
	}
	return b.String()
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
