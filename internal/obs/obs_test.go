package obs

import (
	"strings"
	"testing"
)

func TestSpanTreeRetrievalAccounting(t *testing.T) {
	tr := New("query", 0)
	s1 := tr.Start("step1", 0)
	r1 := tr.Start("round", 0)
	tr.End(r1, 40) // round charged 40
	r2 := tr.Start("round", 40)
	tr.End(r2, 100) // round charged 60
	tr.End(s1, 110) // 10 charged in step1 outside the rounds
	s2 := tr.Start("step2", 110)
	tr.End(s2, 300)
	root := tr.Finish(305) // 5 charged at the top level

	if root == nil {
		t.Fatal("Finish returned nil on an armed trace")
	}
	if root.Total != 305 {
		t.Fatalf("root.Total = %d, want 305", root.Total)
	}
	if got := root.SumRetrievals(); got != 305 {
		t.Fatalf("SumRetrievals = %d, want 305 (self sums must reproduce the total)", got)
	}
	if root.Retrievals != 5 {
		t.Errorf("root self = %d, want 5", root.Retrievals)
	}
	step1 := root.Find("step1")
	if step1 == nil || step1.Total != 110 || step1.Retrievals != 10 {
		t.Errorf("step1 = %+v, want total 110 self 10", step1)
	}
	if len(step1.Children) != 2 || step1.Children[0].Retrievals != 40 || step1.Children[1].Retrievals != 60 {
		t.Errorf("rounds = %+v, want 40 and 60", step1.Children)
	}
	if step2 := root.Find("step2"); step2 == nil || step2.Retrievals != 190 {
		t.Errorf("step2 = %+v, want self 190", step2)
	}
	if n := root.SpanCount(); n != 5 {
		t.Errorf("SpanCount = %d, want 5", n)
	}
}

func TestEndClosesAbandonedDescendants(t *testing.T) {
	tr := New("root", 0)
	outer := tr.Start("outer", 0)
	tr.Start("inner", 3) // never explicitly ended
	tr.End(outer, 10)
	root := tr.Finish(10)
	inner := root.Find("inner")
	if inner == nil || inner.Total != 7 {
		t.Fatalf("inner = %+v, want total 7 (closed with outer's meter)", inner)
	}
	if outer := root.Find("outer"); outer.Retrievals != 3 {
		t.Errorf("outer self = %d, want 3", outer.Retrievals)
	}
}

func TestDoubleEndIsHarmless(t *testing.T) {
	tr := New("root", 0)
	a := tr.Start("a", 0)
	tr.End(a, 5)
	tr.End(a, 9) // stray double End must not close the root
	b := tr.Start("b", 5)
	tr.End(b, 8)
	root := tr.Finish(8)
	if root == nil || len(root.Children) != 2 {
		t.Fatalf("tree corrupted by double End: %+v", root)
	}
	if root.Find("a").Total != 5 || root.Find("b").Total != 3 {
		t.Errorf("span totals wrong after double End: a=%+v b=%+v", root.Find("a"), root.Find("b"))
	}
}

func TestNilAndDisarmedAreInert(t *testing.T) {
	var nilTrace *Trace
	if nilTrace.Armed() {
		t.Error("nil trace reports armed")
	}
	s := nilTrace.Start("x", 0)
	s.Set("k", 1)
	nilTrace.End(s, 10)
	if nilTrace.Finish(10) != nil || nilTrace.Root() != nil {
		t.Error("nil trace produced a tree")
	}

	d := Disarmed()
	if d.Armed() {
		t.Error("disarmed trace reports armed")
	}
	ds := d.Start("x", 0)
	if ds != nil {
		t.Error("disarmed Start returned a span")
	}
	ds.Set("k", 1)
	d.End(ds, 10)
	if d.Finish(10) != nil {
		t.Error("disarmed trace produced a tree")
	}

	var nilSpan *Span
	if nilSpan.SumRetrievals() != 0 || nilSpan.SpanCount() != 0 || nilSpan.Find("x") != nil {
		t.Error("nil span accessors not inert")
	}
	if err := WriteText(&strings.Builder{}, nilSpan); err != nil {
		t.Errorf("WriteText(nil) = %v", err)
	}
}

func TestStartAfterFinishIsInert(t *testing.T) {
	tr := New("root", 0)
	tr.Finish(0)
	if s := tr.Start("late", 0); s != nil {
		t.Error("Start after Finish returned a span")
	}
}

func TestWriteText(t *testing.T) {
	tr := New("solve", 0)
	s1 := tr.Start("step1", 0)
	s1.Set("rounds", 2)
	s1.Set("frontier_max", 7)
	tr.End(s1, 42)
	root := tr.Finish(50)

	var b strings.Builder
	if err := WriteText(&b, root); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"solve", "retrievals=8/50", "step1", "retrievals=42", "frontier_max=7 rounds=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "\n  step1") {
		t.Errorf("child not indented:\n%s", out)
	}
}
