// Package obs is the per-query observability layer: a span tree that
// records, for every stage of a query's life — parse/validate, cache
// probe, graph classification, Step 1 and Step 2 of a magic counting
// run, engine fixpoint rounds — its wall-clock duration and the tuple
// retrievals it charged, in the paper's own cost unit.
//
// Retrieval accounting is exact by construction. Spans never count
// retrievals themselves; instead the instrumented code passes its
// meter reading (the solver's running retrieval total) to Start and
// End, and each span records the delta. A span's Retrievals field is
// its *self* cost — the meter delta across the span minus the deltas
// of its children — so summing Retrievals over every span of a
// finished tree reproduces the root's Total exactly, which the
// serving layer asserts equals core's Result.Stats.Retrievals.
//
// The zero value of the API is "off": every method is safe on a nil
// *Trace and a nil *Span and does nothing, so instrumented code holds
// an always-valid trace handle and pays one predictable-branch nil
// check per *stage boundary* (never per tuple) when tracing is
// disabled. Disarmed returns a non-nil trace that records nothing —
// the "enabled but unsampled" configuration the benchmark guard
// measures against the nil path.
//
// A Trace is single-goroutine: the solver's parallel frontier workers
// never touch it (only the coordinating loop opens and closes spans,
// at round boundaries), so no locking is needed or provided.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Span is one traced stage. Exported fields marshal into the HTTP
// trace response.
type Span struct {
	// Name identifies the stage, e.g. "step1", "round", "descent".
	Name string `json:"name"`
	// StartMS is the span's start offset from the trace start.
	StartMS float64 `json:"start_ms"`
	// DurationMS is the span's wall-clock duration.
	DurationMS float64 `json:"duration_ms"`
	// Retrievals is the span's self cost: tuple retrievals charged
	// inside the span but outside its children.
	Retrievals int64 `json:"retrievals"`
	// Total is the span's inclusive cost: all retrievals charged
	// between Start and End, children included.
	Total int64 `json:"total_retrievals"`
	// Attrs carries stage-specific sizes: frontier widths, delta
	// counts, reduced-set sizes, iteration counts.
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Children are the nested stages, in start order.
	Children []*Span `json:"children,omitempty"`

	parent     *Span
	start      time.Time
	startMeter int64
}

// Set records a stage attribute. Safe on a nil span (tracing off).
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64, 4)
	}
	s.Attrs[key] = v
}

// Trace is one query's span tree under construction. The zero Trace
// must not be used directly; obtain one from New or Disarmed.
type Trace struct {
	root  *Span
	cur   *Span // innermost open span; nil once Finish has run
	start time.Time
	armed bool
}

// New opens a trace whose root span is named name. meter is the
// instrumented meter's current reading (usually 0: a fresh solver
// charges from zero).
func New(name string, meter int64) *Trace {
	now := time.Now()
	root := &Span{Name: name, start: now, startMeter: meter}
	return &Trace{root: root, cur: root, start: now, armed: true}
}

// Disarmed returns a non-nil trace that records nothing: Start
// returns nil and End ignores it. It exists so the trace plumbing can
// be exercised — options populated, handles passed, branches taken —
// without sampling, which is exactly what the mcbench trace guard
// compares against the nil-trace path.
func Disarmed() *Trace { return &Trace{} }

// Armed reports whether the trace records spans. Safe on nil.
func (t *Trace) Armed() bool { return t != nil && t.armed }

// Start opens a span named name nested under the innermost open span,
// recording the caller's meter reading. It returns nil — and records
// nothing — on a nil or disarmed trace, or after Finish.
func (t *Trace) Start(name string, meter int64) *Span {
	if t == nil || !t.armed || t.cur == nil {
		return nil
	}
	s := &Span{Name: name, parent: t.cur, start: time.Now(), startMeter: meter}
	t.cur.Children = append(t.cur.Children, s)
	t.cur = s
	return s
}

// End closes s with the caller's meter reading, computing its
// duration and retrieval deltas. Unclosed descendants of s are closed
// with the same reading (a defensive measure; instrumented code pairs
// Start and End). Safe on a nil span.
func (t *Trace) End(s *Span, meter int64) {
	if t == nil || s == nil {
		return
	}
	// A span not on the open stack (already closed, or a stray handle)
	// must not close anything — notably not on a buggy double End.
	onStack := false
	for c := t.cur; c != nil; c = c.parent {
		if c == s {
			onStack = true
			break
		}
	}
	if !onStack {
		return
	}
	// Pop back to s: any spans left open below it share its end state.
	for t.cur != nil && t.cur != s.parent {
		c := t.cur
		c.close(t.start, meter)
		t.cur = c.parent
		if c == s {
			return
		}
	}
}

// Finish closes every open span including the root and returns the
// finished tree. The trace records nothing further. Returns nil on a
// nil or disarmed trace.
func (t *Trace) Finish(meter int64) *Span {
	if t == nil || !t.armed {
		return nil
	}
	for t.cur != nil {
		c := t.cur
		c.close(t.start, meter)
		t.cur = c.parent
	}
	return t.root
}

// Root returns the root span (nil on a nil or disarmed trace). Before
// Finish the tree is still mutating.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// close fixes a span's duration and retrieval deltas.
func (s *Span) close(traceStart time.Time, meter int64) {
	now := time.Now()
	s.StartMS = float64(s.start.Sub(traceStart).Microseconds()) / 1000
	s.DurationMS = float64(now.Sub(s.start).Microseconds()) / 1000
	s.Total = meter - s.startMeter
	s.Retrievals = s.Total
	for _, c := range s.Children {
		s.Retrievals -= c.Total
	}
}

// SumRetrievals sums the self Retrievals over the whole tree. On a
// finished tree this equals the root's Total — the invariant the
// trace-shape tests assert against the solver's Result meter.
func (s *Span) SumRetrievals() int64 {
	if s == nil {
		return 0
	}
	total := s.Retrievals
	for _, c := range s.Children {
		total += c.SumRetrievals()
	}
	return total
}

// SpanCount counts the spans in the tree (0 for nil).
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.SpanCount()
	}
	return n
}

// Find returns the first span named name in preorder, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// WriteText renders the finished tree as an indented text outline —
// the mcq -trace output:
//
//	solve                         1.042ms  retrievals=0/812
//	  step1/multiple              0.310ms  retrievals=12/402  rounds=7
//	    round                     0.021ms  retrievals=55      frontier=3 index=0
//
// Self retrievals print alone on leaves; inner spans print self/total.
func WriteText(w io.Writer, s *Span) error {
	return writeText(w, s, 0)
}

func writeText(w io.Writer, s *Span, depth int) error {
	if s == nil {
		return nil
	}
	indent := strings.Repeat("  ", depth)
	ret := fmt.Sprintf("retrievals=%d", s.Retrievals)
	if len(s.Children) > 0 {
		ret = fmt.Sprintf("retrievals=%d/%d", s.Retrievals, s.Total)
	}
	line := fmt.Sprintf("%-32s %9.3fms  %s", indent+s.Name, s.DurationMS, ret)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, s.Attrs[k])
		}
		line += "  " + strings.Join(parts, " ")
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
