package oracle

import (
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// sweepKinds are the four Figure-3 regime generators of the sweep.
var sweepKinds = []workload.RegimeKind{
	workload.KindRegular,
	workload.KindCyclicRegular,
	workload.KindMultiple,
	workload.KindRecurring,
}

// TestDifferentialSweep is the acceptance sweep: >= 200 seeded random
// instances across all four regime generators plus the adversarial
// pack, every evaluation path against the oracle, with the cost
// hierarchy checked throughout. Any failure message carries the seed
// so the instance replays exactly.
func TestDifferentialSweep(t *testing.T) {
	const seedsPerKind = 55 // 4 kinds x 55 = 220 random instances
	perRegime := map[core.Regime]int{}
	checked := 0
	for _, kind := range sweepKinds {
		for seed := int64(0); seed < seedsPerKind; seed++ {
			q := workload.RandomRegime(kind, seed, 1+int(seed%3))
			rep, err := CheckInstance(q, Options{EngineMethods: -1, CostChecks: true})
			if err != nil {
				t.Fatalf("kind=%s seed=%d size=%d: %v", kind, seed, 1+int(seed%3), err)
			}
			perRegime[rep.Regime]++
			checked++
		}
	}
	for v := 0; v < workload.AdversarialCount; v++ {
		for seed := int64(0); seed < 3; seed++ {
			q := workload.Adversarial(v, seed)
			rep, err := CheckInstance(q, Options{EngineMethods: -1, CostChecks: true})
			if err != nil {
				t.Fatalf("adversarial variant=%d seed=%d: %v", v, seed, err)
			}
			perRegime[rep.Regime]++
			checked++
		}
	}
	if checked < 200 {
		t.Fatalf("sweep covered %d instances, want >= 200", checked)
	}
	// Every regime of Figure 3 must actually occur in the sweep.
	for _, r := range []core.Regime{core.RegimeRegular, core.RegimeAcyclic, core.RegimeCyclic} {
		if perRegime[r] < 20 {
			t.Errorf("regime %s saw only %d instances, want >= 20 (distribution: %v)", r, perRegime[r], perRegime)
		}
	}
}

// TestDifferentialSweepDeep pushes the same differential check onto
// larger instances (sizes 4..6, no engine path) where the memoized
// oracle still verifies against the literal walk enumeration. Skipped
// under -short; CI runs it as part of the default test job.
func TestDifferentialSweepDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep skipped in -short mode")
	}
	for _, kind := range sweepKinds {
		for seed := int64(0); seed < 12; seed++ {
			size := 4 + int(seed%3)
			q := workload.RandomRegime(kind, 1000+seed, size)
			if _, err := CheckInstance(q, Options{EngineMethods: 2, CostChecks: true}); err != nil {
				t.Fatalf("kind=%s seed=%d size=%d: %v", kind, 1000+seed, size, err)
			}
		}
	}
}

// TestGeneratorsHitTheirRegime asserts each regime generator produces
// the magic-graph shape it promises, including the cyclic-but-regular
// family whose G_L cycles must stay invisible to the magic graph.
func TestGeneratorsHitTheirRegime(t *testing.T) {
	wantRegime := map[workload.RegimeKind]core.Regime{
		workload.KindRegular:       core.RegimeRegular,
		workload.KindCyclicRegular: core.RegimeRegular,
		workload.KindMultiple:      core.RegimeAcyclic,
		workload.KindRecurring:     core.RegimeCyclic,
	}
	for kind, want := range wantRegime {
		for seed := int64(0); seed < 25; seed++ {
			q := workload.RandomRegime(kind, seed, 2)
			if got := core.ChooseMethod(q).Regime; got != want {
				t.Errorf("kind=%s seed=%d: regime %s, want %s", kind, seed, got, want)
			}
		}
	}
	// The cyclic-but-regular generator must actually put a cycle in
	// G_L (otherwise it is just the regular generator again).
	q := workload.RandomRegime(workload.KindCyclicRegular, 1, 2)
	hasCycleArcs := false
	for _, p := range q.L {
		if p.From[0] == 'n' && p.From[1] == '-' {
			hasCycleArcs = true
		}
	}
	if !hasCycleArcs {
		t.Error("cyclic-but-regular generator emitted no off-source cycle arcs")
	}
}

// TestCheckInstanceReportsDiscrepancy builds a deliberately broken
// "method" scenario by corrupting a query between oracle and solver
// runs — i.e., checks the checker can fail — via a direct answer-set
// comparison on mismatched instances.
func TestCheckInstanceReportsDiscrepancy(t *testing.T) {
	// A healthy instance passes.
	q := workload.Adversarial(4, 0)
	if _, err := CheckInstance(q, Options{EngineMethods: 2, CostChecks: true}); err != nil {
		t.Fatalf("healthy instance failed: %v", err)
	}
	// equalStrings is the comparison backbone; pin its edge cases.
	if equalStrings([]string{"a"}, []string{"a", "b"}) || equalStrings([]string{"a"}, []string{"b"}) {
		t.Error("equalStrings accepted unequal sets")
	}
	if !equalStrings(nil, nil) || !equalStrings([]string{}, nil) {
		t.Error("equalStrings rejected empty sets")
	}
}

// FuzzSolveAgainstOracle derives a query instance from the fuzzed
// (kind, seed, size) triple via the regime generators and differentially
// checks every solver path against the oracle. The engine path is
// capped to two method pairs per input to keep the fuzz loop fast;
// the full-depth sweep above covers all eight on the seeded corpus.
func FuzzSolveAgainstOracle(f *testing.F) {
	for _, kind := range sweepKinds {
		f.Add(uint8(kind), int64(1), uint8(1))
		f.Add(uint8(kind), int64(42), uint8(2))
	}
	f.Add(uint8(200), int64(7), uint8(0)) // adversarial selector
	f.Fuzz(func(t *testing.T, kindByte uint8, seed int64, size uint8) {
		var q core.Query
		if kindByte >= 128 {
			q = workload.Adversarial(int(kindByte-128), seed)
		} else {
			kind := workload.RegimeKind(kindByte % 4)
			q = workload.RandomRegime(kind, seed, 1+int(size%3))
		}
		if _, err := CheckInstance(q, Options{EngineMethods: 2, CostChecks: true}); err != nil {
			t.Fatalf("kindByte=%d seed=%d size=%d: %v", kindByte, seed, size, err)
		}
	})
}
