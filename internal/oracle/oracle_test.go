package oracle

import (
	"reflect"
	"testing"
)

// TestAnswersHandComputed pins the oracle to instances small enough
// to verify by hand against Fact 2 directly.
func TestAnswersHandComputed(t *testing.T) {
	cases := []struct {
		name    string
		l, e, r []Arc
		source  string
		want    []string
	}{
		{
			name:   "k0 only: crossing at the source",
			e:      []Arc{{"a", "x"}},
			source: "a",
			want:   []string{"x"},
		},
		{
			name:   "k1: one L step, cross, one R step",
			l:      []Arc{{"a", "b"}},
			e:      []Arc{{"b", "x"}},
			r:      []Arc{{"y", "x"}}, // G_R arc x -> y
			source: "a",
			want:   []string{"y"},
		},
		{
			name:   "k1 without matching R step yields nothing",
			l:      []Arc{{"a", "b"}},
			e:      []Arc{{"b", "x"}},
			source: "a",
			want:   []string{},
		},
		{
			name: "same generation from the root: descendants at equal depth",
			// parent: a->b, a->c; E = identity; L = R = parent. k=0
			// gives a itself; k=1 walks to b or c, crosses the
			// identity, and the one reversed R arc from b (or c) leads
			// back to a — nobody else shares a's generation.
			l:      []Arc{{"a", "b"}, {"a", "c"}},
			e:      []Arc{{"a", "a"}, {"b", "b"}, {"c", "c"}},
			r:      []Arc{{"a", "b"}, {"a", "c"}},
			source: "a",
			want:   []string{"a"},
		},
		{
			name:   "cycle: infinitely many walk lengths, finite answers",
			l:      []Arc{{"a", "b"}, {"b", "a"}},
			e:      []Arc{{"a", "x"}},
			r:      []Arc{{"y", "x"}, {"x", "y"}}, // G_R 2-cycle x <-> y
			source: "a",
			// Even k: a --k--> a, cross to x, k R-steps from x lands on
			// x (k even). Odd k: a --k--> b, no E arc at b. So {x}.
			want: []string{"x"},
		},
		{
			name:   "separate name spaces: L-side b and R-side b differ",
			l:      []Arc{{"a", "b"}},
			e:      []Arc{{"b", "b"}},  // crosses to R-side "b"
			r:      []Arc{{"b", "b"}},  // R-side self-loop
			source: "a",
			// k=1: a->b, cross (b,b), one R step: (b,b) reversed is
			// b->b, stays at b.
			want: []string{"b"},
		},
		{
			name:   "source unknown to every relation",
			l:      []Arc{{"u", "v"}},
			e:      []Arc{{"u", "x"}},
			r:      []Arc{{"y", "x"}},
			source: "ghost",
			want:   []string{},
		},
		{
			name: "asymmetric walk lengths must match exactly",
			// a -> b -> c; E at c only; R chain x -> y -> z (reversed
			// arcs from x). k=2 crossing at c needs exactly 2 R steps.
			l:      []Arc{{"a", "b"}, {"b", "c"}},
			e:      []Arc{{"c", "x"}},
			r:      []Arc{{"y", "x"}, {"z", "y"}},
			source: "a",
			want:   []string{"z"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Answers(tc.l, tc.e, tc.r, tc.source)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Answers = %v, want %v", got, tc.want)
			}
			memo := AnswersMemo(tc.l, tc.e, tc.r, tc.source)
			if !reflect.DeepEqual(memo, tc.want) {
				t.Errorf("AnswersMemo = %v, want %v", memo, tc.want)
			}
		})
	}
}

// TestAnswersNeverNil pins the no-answers result to an empty non-nil
// slice: the serving layer marshals it as JSON [] (not null).
func TestAnswersNeverNil(t *testing.T) {
	if got := Answers(nil, nil, nil, "a"); got == nil || len(got) != 0 {
		t.Errorf("Answers on empty instance = %#v, want empty non-nil", got)
	}
	if got := AnswersMemo(nil, nil, nil, "a"); got == nil || len(got) != 0 {
		t.Errorf("AnswersMemo on empty instance = %#v, want empty non-nil", got)
	}
}

// TestDuplicateArcsAreSetSemantics asserts inputs are bags but
// semantics are sets.
func TestDuplicateArcsAreSetSemantics(t *testing.T) {
	l := []Arc{{"a", "b"}, {"a", "b"}, {"a", "b"}}
	e := []Arc{{"b", "x"}, {"b", "x"}}
	r := []Arc{{"y", "x"}, {"y", "x"}}
	want := []string{"y"}
	if got := Answers(l, e, r, "a"); !reflect.DeepEqual(got, want) {
		t.Errorf("Answers with duplicates = %v, want %v", got, want)
	}
}

// TestSolverAgreesWithAnswersMemo asserts the shared-fixpoint Solver
// answers every source — known and unknown — exactly as AnswersMemo
// does, including the never-nil contract.
func TestSolverAgreesWithAnswersMemo(t *testing.T) {
	l := []Arc{{"a", "b"}, {"b", "c"}, {"a", "c"}, {"c", "d"}}
	e := []Arc{{"b", "x"}, {"c", "y"}, {"d", "z"}}
	r := []Arc{{"p", "x"}, {"q", "y"}, {"x", "y"}, {"y", "z"}}
	solve := Solver(l, e, r)
	for _, src := range []string{"a", "b", "c", "d", "x", "ghost"} {
		got, want := solve(src), AnswersMemo(l, e, r, src)
		if got == nil {
			t.Fatalf("Solver(%q) returned nil", src)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Solver(%q) = %v, AnswersMemo = %v", src, got, want)
		}
	}
}
