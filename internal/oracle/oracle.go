// Package oracle is an independent correctness reference for the
// magic counting solvers: it computes the answers to the canonical
// strongly linear query
//
//	?- P(a, Y).
//	P(X, Y) :- E(X, Y).
//	P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
//
// straight from the paper's Fact 2 — b0 is an answer iff there is a
// walk of k arcs in the magic graph G_L from a to some x, one G_E arc
// (x, y), and k arcs in G_R from y to b0 (G_R reverses the R pairs:
// (b, c) in R is the arc c -> b) — with none of the machinery under
// test: no rewriting, no counting sets, no magic sets, no interning,
// and no code shared with internal/core. Everything here is plain
// strings and maps, deliberately naive, so a bug would have to be
// reinvented independently to go unnoticed.
//
// Two evaluators are provided. Answers is the literal transcription
// of Fact 2: it enumerates k = 0, 1, 2, ... and collects, for each k,
// the exact-k-step G_R image of the G_E crossing of the exact-k-step
// G_L frontier, up to the product-state bound nL*nR beyond which no
// minimal witness walk exists. AnswersMemo derives the same set from
// Fact 2's inductive walk decomposition, memoized over (L-node,
// R-node) pairs so it stays polynomial on any input. The differential
// tests assert the two agree before either is trusted as ground
// truth.
package oracle

import "sort"

// Arc is one (from, to) tuple of a database relation, as plain
// strings. It deliberately duplicates core.Pair so this package
// compiles without importing the code under test.
type Arc struct {
	From, To string
}

// adjacency builds a forward adjacency map, deduplicating arcs.
func adjacency(arcs []Arc) map[string][]string {
	seen := make(map[Arc]bool, len(arcs))
	out := make(map[string][]string)
	for _, a := range arcs {
		if seen[a] {
			continue
		}
		seen[a] = true
		out[a.From] = append(out[a.From], a.To)
	}
	return out
}

// reversedAdjacency builds the G_R adjacency: each R pair (b, c) is
// the descent arc c -> b.
func reversedAdjacency(arcs []Arc) map[string][]string {
	seen := make(map[Arc]bool, len(arcs))
	out := make(map[string][]string)
	for _, a := range arcs {
		if seen[a] {
			continue
		}
		seen[a] = true
		out[a.To] = append(out[a.To], a.From)
	}
	return out
}

// step advances a node set one arc along adj, returning the exact
// one-step image.
func step(set map[string]bool, adj map[string][]string) map[string]bool {
	next := make(map[string]bool)
	for u := range set {
		for _, v := range adj[u] {
			next[v] = true
		}
	}
	return next
}

// universeSizes counts the distinct L-side and R-side node names. The
// L side holds the source, every L endpoint, and every E source; the
// R side every E target and every R endpoint. The two sides are
// separate name spaces (the paper's query graph keeps them apart), so
// a constant occurring on both sides counts once per side.
func universeSizes(l, e, r []Arc, source string) (nL, nR int) {
	lSide := map[string]bool{source: true}
	rSide := map[string]bool{}
	for _, a := range l {
		lSide[a.From], lSide[a.To] = true, true
	}
	for _, a := range e {
		lSide[a.From] = true
		rSide[a.To] = true
	}
	for _, a := range r {
		rSide[a.From], rSide[a.To] = true, true
	}
	return len(lSide), len(rSide)
}

// track is one pending Fact-2 witness family: the G_E image of the
// exact-k-step G_L frontier, advancing through G_R one step per
// round until it has taken exactly k steps.
type track struct {
	remaining int
	cur       map[string]bool
}

// Answers computes the answer set of ?- P(source, Y) by enumerating
// Fact 2's walks literally. For k = 0, 1, 2, ...: take W_k, the set
// of L-nodes reachable from source by a walk of exactly k G_L arcs;
// cross G_E to get Y_k; then the R-nodes reachable from Y_k by
// exactly k G_R arcs are answers. Any answer has such a witness with
// k <= nL*nR: a longer witness repeats a (G_L position, G_R position)
// pair and both walks can be cut at the repeat, so enumeration stops
// there (or earlier, once the frontier dies and no track is live).
//
// The returned slice is sorted and never nil.
func Answers(l, e, r []Arc, source string) []string {
	lOut := adjacency(l)
	eOut := adjacency(e)
	rFwd := reversedAdjacency(r)
	nL, nR := universeSizes(l, e, r, source)
	maxK := nL * nR

	answers := make(map[string]bool)
	frontier := map[string]bool{source: true}
	var live []track
	for k := 0; k <= maxK; k++ {
		if k > 0 {
			frontier = step(frontier, lOut)
		}
		crossed := step(frontier, eOut)
		if k == 0 {
			// Zero L-steps pair with zero R-steps: the crossing
			// itself answers.
			for y := range crossed {
				answers[y] = true
			}
		} else if len(crossed) > 0 {
			live = append(live, track{remaining: k, cur: crossed})
		}
		// Every live track takes one G_R step per round; a track born
		// at k finishes after exactly k steps.
		next := live[:0]
		for _, t := range live {
			t.cur = step(t.cur, rFwd)
			t.remaining--
			if t.remaining == 0 {
				for y := range t.cur {
					answers[y] = true
				}
			} else if len(t.cur) > 0 {
				next = append(next, t)
			}
		}
		live = next
		if len(frontier) == 0 && len(live) == 0 {
			break
		}
	}
	// Drain tracks born near the end of the enumeration.
	for len(live) > 0 {
		next := live[:0]
		for _, t := range live {
			t.cur = step(t.cur, rFwd)
			t.remaining--
			if t.remaining == 0 {
				for y := range t.cur {
					answers[y] = true
				}
			} else if len(t.cur) > 0 {
				next = append(next, t)
			}
		}
		live = next
	}
	return sorted(answers)
}

// AnswersMemo computes the same set from Fact 2's walk decomposition:
// a pair (u, v) is "derivable" iff there is a k-walk u -> x in G_L, an
// arc (x, y) in G_E, and a k-walk y -> v in G_R. Peeling the first
// G_L arc and the last G_R arc gives the induction
//
//	derivable(x, y)  if (x, y) in E
//	derivable(u, v)  if u -> u' in G_L, derivable(u', v'), v' -> v in G_R
//
// memoized over at most nL*nR pairs; the answers are the v with
// derivable(source, v). The returned slice is sorted and never nil.
func AnswersMemo(l, e, r []Arc, source string) []string {
	lIn := reversedAdjacency(l) // u' -> u reversed: successors back to predecessors
	eOut := adjacency(e)
	rFwd := reversedAdjacency(r)

	type pair struct{ u, v string }
	derived := make(map[pair]bool)
	var work []pair
	add := func(u, v string) {
		p := pair{u, v}
		if !derived[p] {
			derived[p] = true
			work = append(work, p)
		}
	}
	for x, ys := range eOut {
		for _, y := range ys {
			add(x, y)
		}
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range lIn[p.u] {
			for _, v := range rFwd[p.v] {
				add(u, v)
			}
		}
	}
	answers := make(map[string]bool)
	for p := range derived {
		if p.u == source {
			answers[p.v] = true
		}
	}
	return sorted(answers)
}

// Solver runs AnswersMemo's fixpoint once and returns a function
// answering any source against it. The derivable relation is
// source-independent, so a caller verifying many sources over one
// database (the soak driver checks dozens of sources per generation)
// pays for a single fixpoint instead of one per source. The returned
// function gives the same sorted, never-nil slices as AnswersMemo.
func Solver(l, e, r []Arc) func(source string) []string {
	lIn := reversedAdjacency(l)
	eOut := adjacency(e)
	rFwd := reversedAdjacency(r)

	type pair struct{ u, v string }
	derived := make(map[pair]bool)
	var work []pair
	add := func(u, v string) {
		p := pair{u, v}
		if !derived[p] {
			derived[p] = true
			work = append(work, p)
		}
	}
	for x, ys := range eOut {
		for _, y := range ys {
			add(x, y)
		}
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range lIn[p.u] {
			for _, v := range rFwd[p.v] {
				add(u, v)
			}
		}
	}
	bySource := make(map[string]map[string]bool)
	for p := range derived {
		set := bySource[p.u]
		if set == nil {
			set = make(map[string]bool)
			bySource[p.u] = set
		}
		set[p.v] = true
	}
	return func(source string) []string { return sorted(bySource[source]) }
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
