package oracle

import (
	"errors"
	"fmt"
	"sort"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
	"magiccounting/internal/rewrite"
)

// This file is the differential checker: it runs every evaluation
// path the repository offers — the eight magic counting methods, the
// counting and magic-set baselines, the generalized cyclic counting
// variant, naive bottom-up, automatic selection, and the engine-level
// Datalog evaluation of the §4/§5 rewritten programs — on one
// instance and asserts that all of them produce exactly the oracle's
// answer set, plus the structural theorems (reduced-set conditions,
// RM monotonicity along the strategy ladder) and the Figure-3 cost
// hierarchy on tuple retrievals.

// FromQuery converts a core query into the oracle's own arc form.
func FromQuery(q core.Query) (l, e, r []Arc, source string) {
	conv := func(ps []core.Pair) []Arc {
		out := make([]Arc, 0, len(ps))
		for _, p := range ps {
			out = append(out, Arc{From: p.From, To: p.To})
		}
		return out
	}
	return conv(q.L), conv(q.E), conv(q.R), q.Source
}

// Solve runs the oracle on a core query: AnswersMemo always, and the
// literal walk enumeration as a cross-check whenever the product
// bound keeps it cheap. The two must agree — a disagreement means the
// oracle itself is broken and is reported as such.
func Solve(q core.Query) ([]string, error) {
	l, e, r, src := FromQuery(q)
	memo := AnswersMemo(l, e, r, src)
	nL, nR := universeSizes(l, e, r, src)
	if nL*nR <= 2048 {
		walk := Answers(l, e, r, src)
		if !equalStrings(memo, walk) {
			return nil, fmt.Errorf("oracle: self-check failed: memoized %v != literal walk %v", memo, walk)
		}
	}
	return memo, nil
}

// Options tunes a differential check.
type Options struct {
	// EngineMethods caps how many of the eight strategy/mode pairs run
	// through the rewritten-program engine path, the most expensive
	// leg. Negative runs all eight; zero skips the engine entirely.
	EngineMethods int
	// CostChecks adds the Figure-3 cost-hierarchy assertions on tuple
	// retrievals to the answer-set comparison.
	CostChecks bool
}

// Report summarizes one differential check that found no discrepancy.
type Report struct {
	// Regime is the instance's actual magic-graph regime.
	Regime core.Regime
	// Answers is the oracle's answer set.
	Answers []string
	// Evaluations counts the independent evaluations compared against
	// the oracle.
	Evaluations int
	// Retrievals maps method labels to their tuple-retrieval cost.
	Retrievals map[string]int64
}

var strategies = []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring}
var modes = []core.Mode{core.Independent, core.Integrated}

func methodLabel(s core.Strategy, m core.Mode, scc bool) string {
	l := "mc-" + s.String() + "-" + m.String()[:3]
	if scc {
		l = "mc-recurring-scc-" + m.String()[:3]
	}
	return l
}

// CheckInstance differentially validates every evaluation path on q.
// It returns a report when all paths agree with the oracle and all
// enabled structural and cost checks pass; the error otherwise pins
// down the first disagreeing method with both answer sets.
func CheckInstance(q core.Query, opt Options) (*Report, error) {
	want, err := Solve(q)
	if err != nil {
		return nil, err
	}
	sel := core.ChooseMethod(q)
	rep := &Report{
		Regime:     sel.Regime,
		Answers:    want,
		Retrievals: make(map[string]int64),
	}
	record := func(label string, got []string, retrievals int64) error {
		rep.Evaluations++
		rep.Retrievals[label] = retrievals
		if !equalStrings(got, want) {
			return fmt.Errorf("oracle: %s on %s instance: answers %v, oracle says %v (source %q, |L|=%d |E|=%d |R|=%d)",
				label, sel.Regime, got, want, q.Source, len(q.L), len(q.E), len(q.R))
		}
		return nil
	}

	// The eight magic counting methods, plus the recurring strategy's
	// Tarjan Step 1 variant in both modes.
	for _, s := range strategies {
		for _, m := range modes {
			res, err := q.SolveMagicCountingOpts(s, m, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("oracle: %s: %v", methodLabel(s, m, false), err)
			}
			if err := record(methodLabel(s, m, false), res.Answers, res.Stats.Retrievals); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range modes {
		res, err := q.SolveMagicCountingOpts(core.Recurring, m, core.Options{SCCStep1: true})
		if err != nil {
			return nil, fmt.Errorf("oracle: %s: %v", methodLabel(core.Recurring, m, true), err)
		}
		if err := record(methodLabel(core.Recurring, m, true), res.Answers, res.Stats.Retrievals); err != nil {
			return nil, err
		}
	}

	// Baselines: magic sets, naive bottom-up, generalized counting,
	// and pure counting — which must refuse cyclic instances with
	// ErrUnsafe and must succeed on everything else.
	if res, err := q.SolveMagic(); err != nil {
		return nil, fmt.Errorf("oracle: magic: %v", err)
	} else if err := record("magic", res.Answers, res.Stats.Retrievals); err != nil {
		return nil, err
	}
	if res, err := q.SolveNaive(); err != nil {
		return nil, fmt.Errorf("oracle: naive: %v", err)
	} else if err := record("naive", res.Answers, res.Stats.Retrievals); err != nil {
		return nil, err
	}
	if res, err := q.SolveCountingCyclic(); err != nil {
		return nil, fmt.Errorf("oracle: counting-cyclic: %v", err)
	} else if err := record("counting-cyclic", res.Answers, res.Stats.Retrievals); err != nil {
		return nil, err
	}
	res, err := q.SolveCounting()
	switch {
	case sel.Regime == core.RegimeCyclic:
		if !errors.Is(err, core.ErrUnsafe) {
			return nil, fmt.Errorf("oracle: counting on cyclic instance: err = %v, want ErrUnsafe", err)
		}
	case err != nil:
		return nil, fmt.Errorf("oracle: counting on %s instance: %v", sel.Regime, err)
	default:
		if err := record("counting", res.Answers, res.Stats.Retrievals); err != nil {
			return nil, err
		}
	}

	// Automatic selection must agree too (and its choice must match
	// the classification it reports).
	if res, rsel, err := q.SolveAuto(core.Options{}); err != nil {
		return nil, fmt.Errorf("oracle: auto: %v", err)
	} else {
		if rsel.Regime != sel.Regime {
			return nil, fmt.Errorf("oracle: auto classified %s, ChooseMethod %s", rsel.Regime, sel.Regime)
		}
		if err := record("auto", res.Answers, res.Stats.Retrievals); err != nil {
			return nil, err
		}
	}

	// Structural theorems: Step 1 outputs must satisfy the Theorem 1/2
	// conditions, RM must be successor-closed, and RM must shrink
	// monotonically along the basic → single → multiple → recurring
	// ladder (each strategy refines the previous partition).
	for _, m := range modes {
		var prevRM []bool
		var prevName string
		for _, s := range strategies {
			rs, names, err := q.ReducedSetsFor(s, m, core.Options{})
			if err != nil {
				return nil, err
			}
			if err := core.CheckReducedSets(q, rs, m); err != nil {
				return nil, fmt.Errorf("oracle: %s/%s: %v", s, m, err)
			}
			if err := core.RMClosedUnderSuccessors(q, rs); err != nil {
				return nil, fmt.Errorf("oracle: %s/%s: %v", s, m, err)
			}
			if prevRM != nil {
				for v := range rs.RM {
					if rs.RM[v] && !prevRM[v] {
						return nil, fmt.Errorf("oracle: RM ladder broken (%s mode): %s keeps node %s out of RM but %s puts it in",
							m, prevName, names[v], s)
					}
				}
			}
			prevRM, prevName = rs.RM, s.String()
		}
	}

	// Engine path: rewrite the instance into the §4/§5 Datalog
	// programs and evaluate them bottom-up on the generic engine.
	engineRuns := opt.EngineMethods
	if engineRuns < 0 || engineRuns > len(strategies)*len(modes) {
		engineRuns = len(strategies) * len(modes)
	}
	n := 0
	for _, s := range strategies {
		for _, m := range modes {
			if n >= engineRuns {
				break
			}
			n++
			got, err := engineAnswers(q, s, m)
			if err != nil {
				return nil, fmt.Errorf("oracle: engine %s/%s: %v", s, m, err)
			}
			if err := record("engine-"+s.String()+"-"+m.String()[:3], got, 0); err != nil {
				return nil, err
			}
		}
	}

	if opt.CostChecks {
		if v := costViolations(rep, sel.Regime); len(v) > 0 {
			return nil, fmt.Errorf("oracle: Figure-3 cost hierarchy violated on %s instance: %v", sel.Regime, v)
		}
	}
	return rep, nil
}

// engineAnswers evaluates the strategy/mode rewritten program for q
// on the generic bottom-up engine and returns the sorted answer set.
func engineAnswers(q core.Query, s core.Strategy, m core.Mode) ([]string, error) {
	prog, goal := programFor(q)
	mc, renamed, err := rewrite.MCProgram(prog, goal, s, m)
	if err != nil {
		return nil, err
	}
	tuples, err := engine.Answers(mc, renamed, relation.NewStore(), engine.Options{})
	if err != nil {
		return nil, err
	}
	free := -1
	for i, a := range renamed.Args {
		if a.IsVar() {
			free = i
		}
	}
	set := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		set[t[free].String()] = true
	}
	return sorted(set), nil
}

// programFor renders a core query as the canonical Datalog program
//
//	p(X, Y) :- e0(X, Y).
//	p(X, Y) :- l(X, X1), p(X1, Y1), r(Y, Y1).
//	?- p(source, Y).
//
// with the relations as ground facts.
func programFor(q core.Query) (*datalog.Program, datalog.Atom) {
	p := &datalog.Program{}
	for _, pr := range q.L {
		p.AddFact(datalog.NewAtom("l", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.E {
		p.AddFact(datalog.NewAtom("e0", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.R {
		p.AddFact(datalog.NewAtom("r", datalog.S(pr.From), datalog.S(pr.To)))
	}
	x, y, x1, y1 := datalog.V("X"), datalog.V("Y"), datalog.V("X1"), datalog.V("Y1")
	p.AddRule(datalog.NewRule(datalog.NewAtom("p", x, y), datalog.NewAtom("e0", x, y)))
	p.AddRule(datalog.NewRule(datalog.NewAtom("p", x, y),
		datalog.NewAtom("l", x, x1), datalog.NewAtom("p", x1, y1), datalog.NewAtom("r", y, y1)))
	goal := datalog.NewAtom("p", datalog.S(q.Source), y)
	p.AddQuery(goal)
	return p, goal
}

// costClaim is one Figure-3 ordering: on instances of the listed
// regimes, the left method must retrieve no more than slack times the
// right method's tuples, plus an additive allowance absorbing the
// constant Step 1 overheads that Θ notation hides on tiny instances.
type costClaim struct {
	left, right string
	regimes     []core.Regime // nil = every regime
	slack       float64
	addend      int64
}

// fig3Claims restates the Figure-3 hierarchy as per-instance
// retrieval inequalities. Slacks are deliberately tighter than the
// harness's asymptotic checks where the relation is a per-instance
// theorem (the ladder refines partitions) and looser where Figure 3
// speaks asymptotically.
var fig3Claims = []costClaim{
	// On regular graphs every magic counting method degenerates to the
	// pure counting evaluation plus Step 1's flag probes.
	{"mc-basic-ind", "counting", []core.Regime{core.RegimeRegular}, 2.0, 16},
	{"mc-basic-int", "counting", []core.Regime{core.RegimeRegular}, 2.0, 16},
	{"mc-single-int", "counting", []core.Regime{core.RegimeRegular}, 2.0, 16},
	{"mc-multiple-int", "counting", []core.Regime{core.RegimeRegular}, 2.5, 16},
	// The strategy ladder: finer partitions never lose much.
	{"mc-single-ind", "mc-basic-ind", nil, 1.25, 24},
	{"mc-single-int", "mc-basic-int", nil, 1.25, 24},
	// Integrated never loses to independent at fixed strategy beyond
	// the transfer rule's bookkeeping.
	{"mc-basic-int", "mc-basic-ind", nil, 1.25, 24},
	{"mc-single-int", "mc-single-ind", nil, 1.25, 24},
	{"mc-multiple-int", "mc-multiple-ind", nil, 1.25, 24},
	{"mc-recurring-int", "mc-recurring-ind", nil, 1.25, 24},
	// The Tarjan Step 1 repairs the naive recurring Step 1 where it
	// is superlinear: on cyclic instances.
	{"mc-recurring-scc-int", "mc-recurring-int", []core.Regime{core.RegimeCyclic}, 1.25, 64},
	// Magic counting never loses to the magic-set baseline by more
	// than Step 1 overhead.
	{"mc-multiple-int", "magic", nil, 2.5, 64},
}

// costViolations evaluates every applicable claim against the
// measured retrievals.
func costViolations(rep *Report, regime core.Regime) []string {
	var out []string
	for _, c := range fig3Claims {
		if c.regimes != nil {
			ok := false
			for _, r := range c.regimes {
				if r == regime {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		l, lok := rep.Retrievals[c.left]
		r, rok := rep.Retrievals[c.right]
		if !lok || !rok {
			continue
		}
		if float64(l) > float64(r)*c.slack+float64(c.addend) {
			out = append(out, fmt.Sprintf("%s (%d) should be <= %s (%d) x%.2f+%d",
				c.left, l, c.right, r, c.slack, c.addend))
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
