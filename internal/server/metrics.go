package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyRing is a fixed-size ring buffer of recent query latencies,
// the window behind the p50/p99 gauges of /metrics. A ring keeps the
// percentiles fresh (old traffic ages out) at O(window) memory.
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
}

func newLatencyRing(window int) *latencyRing {
	return &latencyRing{samples: make([]time.Duration, window)}
}

// record appends one latency sample, overwriting the oldest once the
// window is full.
func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// percentile returns the p-th (0..1) latency over the current window,
// nearest-rank on a sorted copy. An empty window reads 0.
func (r *latencyRing) percentile(p float64) time.Duration {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	buf := make([]time.Duration, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	rank := int(p*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return buf[rank-1]
}

// WriteMetrics writes the service counters in the Prometheus text
// exposition format.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	counters := []struct {
		name, help string
		value      any
	}{
		{"mc_queries_total", "Queries received.", st.Queries},
		{"mc_cache_hits_total", "Queries answered from the result cache.", st.CacheHits},
		{"mc_cache_misses_total", "Queries that ran a solver.", st.CacheMisses},
		{"mc_query_errors_total", "Queries that returned an error.", st.QueryErrors},
		{"mc_query_timeouts_total", "Queries cancelled by deadline.", st.QueryTimeouts},
		{"mc_fact_appends_total", "Fact-append requests handled.", st.FactAppends},
		{"mc_tuple_retrievals_total", "Tuple retrievals charged by solver runs.", st.TupleRetrievals},
		{"mc_generation", "Current database generation.", st.Generation},
		{"mc_cache_entries", "Live result-cache entries.", st.CacheEntries},
		{"mc_inflight_queries", "Queries currently holding a worker slot.", st.InFlight},
		{"mc_facts_l", "Facts in the L relation.", st.FactsL},
		{"mc_facts_e", "Facts in the E relation.", st.FactsE},
		{"mc_facts_r", "Facts in the R relation.", st.FactsR},
	}
	for _, c := range counters {
		kind := "gauge"
		if len(c.name) > 6 && c.name[len(c.name)-6:] == "_total" {
			kind = "counter"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", c.name, c.help, c.name, kind, c.name, c.value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP mc_query_latency_seconds Query latency over the ring-buffer window.\n# TYPE mc_query_latency_seconds summary\n"); err != nil {
		return err
	}
	for _, q := range []struct {
		label string
		ms    float64
	}{{"0.5", st.LatencyP50MS}, {"0.99", st.LatencyP99MS}} {
		if _, err := fmt.Fprintf(w, "mc_query_latency_seconds{quantile=%q} %g\n", q.label, q.ms/1000); err != nil {
			return err
		}
	}
	return nil
}
