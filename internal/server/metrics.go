package server

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// heapSamples name the runtime/metrics series whose sum is HeapInuse:
// spans holding live objects plus the unused tails of those spans —
// the watermark that stays flat when the process is memory-bounded
// and climbs monotonically when an artifact chain (or anything else)
// leaks.
var heapSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
}

// heapInuseBytes reads the heap-in-use watermark. A fresh sample
// slice per call keeps it safe for concurrent scrapers.
func heapInuseBytes() int64 {
	samples := make([]metrics.Sample, len(heapSamples))
	for i, name := range heapSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var total int64
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindUint64 {
			total += int64(s.Value.Uint64())
		}
	}
	return total
}

// latencyRing is a fixed-size ring buffer of recent query latencies,
// the window behind the p50/p99 gauges of /v1/stats and the summary
// quantiles of /metrics. A ring keeps the percentiles fresh (old
// traffic ages out) at O(window) memory.
type latencyRing struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
}

func newLatencyRing(window int) *latencyRing {
	return &latencyRing{samples: make([]time.Duration, window)}
}

// record appends one latency sample, overwriting the oldest once the
// window is full.
func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// percentile returns the p-th (0..1) latency over the current window,
// nearest-rank on a sorted copy. An empty window reads 0.
func (r *latencyRing) percentile(p float64) time.Duration {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	buf := make([]time.Duration, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	rank := int(p*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return buf[rank-1]
}

// histogram is a fixed-bucket Prometheus histogram: lock-free atomic
// bucket counters plus a CAS-maintained float sum. bounds are the
// bucket upper limits in ascending order; the +Inf bucket is
// implicit. Observations, sum, and count are monotone, which is all
// the exposition format requires.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one value.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the le bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns cumulative bucket counts aligned with bounds (plus
// +Inf), the total count, and the sum.
func (h *histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// write emits the histogram in the text exposition format.
func (h *histogram) write(w io.Writer, name, help string) error {
	cum, count, sum := h.snapshot()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for i, b := range h.bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest float representation, no exponent for the usual ranges.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// latencyBuckets are the mc_query_duration_seconds bucket bounds:
// half-millisecond floor (cache hits land there) up to the 30 s
// default timeout ceiling.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// retrievalBuckets are the mc_query_retrievals bucket bounds: decades
// from 10 (a trivial solve) to 10^8 (far past any sane per-query
// budget). Cache hits observe 0 and land below the first bound.
var retrievalBuckets = []float64{10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// fsyncBuckets are the mc_wal_fsync_seconds bucket bounds: from the
// ~100µs of a battery-backed write cache through the ~10ms of a
// spinning disk to a 1s ceiling that only a saturated device hits.
var fsyncBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// snapshotBuckets are the mc_snapshot_seconds bucket bounds: a
// snapshot serializes the whole database, so the range runs from
// milliseconds (small instances) to a 60s ceiling.
var snapshotBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// deltaCompileBuckets are the mc_delta_compile_seconds bucket bounds:
// a delta extend is O(nodes) slice headers plus O(delta) work, so the
// bulk of observations sit in the tens of microseconds; the upper
// bounds exist to catch a threshold misconfiguration letting huge
// deltas through.
var deltaCompileBuckets = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1, 2.5}

// labeledCounters is a fixed-key family of counters: the key space is
// closed (the eight strategy/mode combinations, the three regimes),
// so the map is built once and increments are lock-free.
type labeledCounters struct {
	order  []string
	counts map[string]*atomic.Int64
}

func newLabeledCounters(keys ...string) *labeledCounters {
	lc := &labeledCounters{order: keys, counts: make(map[string]*atomic.Int64, len(keys))}
	for _, k := range keys {
		lc.counts[k] = &atomic.Int64{}
	}
	return lc
}

// inc bumps the counter for key; unknown keys (which would indicate a
// bug — the key spaces are validated upstream) are dropped rather
// than raced in.
func (lc *labeledCounters) inc(key string) {
	if c, ok := lc.counts[key]; ok {
		c.Add(1)
	}
}

func (lc *labeledCounters) get(key string) int64 {
	if c, ok := lc.counts[key]; ok {
		return c.Load()
	}
	return 0
}

// WriteMetrics writes the service counters in the Prometheus text
// exposition format: plain counters and gauges, the per-method and
// per-regime counter families, the latency summary (ring-buffer
// quantiles plus the _sum/_count series strict scrapers require), and
// the latency and retrievals-per-query histograms.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	counters := []struct {
		name, help string
		value      any
	}{
		{"mc_queries_total", "Queries received (batch items counted individually).", st.Queries},
		{"mc_batch_requests_total", "Batch query requests received.", st.BatchRequests},
		{"mc_compiles_total", "Compiled query-graph builds, full or delta (once per generation on the happy path).", st.Compiles},
		{"mc_full_compiles_total", "Cold Compile builds over the whole database.", st.DeltaCompile.FullCompiles},
		{"mc_delta_compiles_total", "Delta Extend builds rolling the artifact across an append.", st.DeltaCompile.DeltaCompiles},
		{"mc_delta_fallbacks_total", "Appends that skipped the delta path on the fraction threshold.", st.DeltaCompile.Fallbacks},
		{"mc_chain_collapses_total", "Extend chains flattened at append time (retention cap, byte budget, or depth bound).", st.Memory.ChainCollapses},
		{"mc_queries_rejected_total", "Queries fast-failed with ErrClosed during shutdown (excluded from errors and latency).", st.QueriesRejected},
		{"mc_bad_requests_total", "Queries rejected by validation (excluded from errors and latency).", st.BadRequests},
		{"mc_cache_hits_total", "Queries answered from the result cache.", st.CacheHits},
		{"mc_cache_misses_total", "Queries that ran a solver.", st.CacheMisses},
		{"mc_query_errors_total", "Queries that returned an error.", st.QueryErrors},
		{"mc_query_timeouts_total", "Queries cancelled by deadline.", st.QueryTimeouts},
		{"mc_fact_appends_total", "Fact-append requests handled.", st.FactAppends},
		{"mc_tuple_retrievals_total", "Tuple retrievals charged by solver runs.", st.TupleRetrievals},
		{"mc_traced_queries_total", "Queries that requested a trace.", st.TracedQueries},
		{"mc_generation", "Current database generation.", st.Generation},
		{"mc_cache_entries", "Live result-cache entries.", st.CacheEntries},
		{"mc_inflight_queries", "Queries currently holding a worker slot.", st.InFlight},
		{"mc_facts_l", "Facts in the L relation.", st.FactsL},
		{"mc_facts_e", "Facts in the E relation.", st.FactsE},
		{"mc_facts_r", "Facts in the R relation.", st.FactsR},
		{"mc_wal_appends_total", "Fact batches write-ahead logged.", st.WALAppends},
		{"mc_snapshots_total", "Snapshots written (checkpoints).", st.Snapshots},
		{"mc_snapshot_failures_total", "Background checkpoints that failed.", st.SnapshotFailures},
		{"mc_recovery_replayed_records", "WAL records replayed by the last recovery.", st.RecoveryReplayedRecords},
		{"mc_resident_compiled", "Compiled-artifact generations the live Extend chain keeps resident.", st.Memory.ResidentCompiled},
		{"mc_max_resident_compiled", "Configured resident-generation cap (negative = disabled).", st.Memory.MaxResidentCompiled},
		{"mc_compiled_bytes", "ResidentBytes estimate of the live compiled artifact.", st.Memory.CompiledBytes},
		{"mc_heap_inuse_bytes", "Runtime heap in use (spans holding live objects).", st.Memory.HeapInuseBytes},
	}
	if st.Shards != nil {
		counters = append(counters,
			struct {
				name, help string
				value      any
			}{"mc_shards", "Live region shards in the compiled artifact (configured slots minus merges).", st.Shards.Live},
			struct {
				name, help string
				value      any
			}{"mc_shard_merges_total", "Region shards absorbed into a neighbor by bridging appends.", st.Shards.Merges},
		)
	}
	for _, c := range counters {
		kind := "gauge"
		if len(c.name) > 6 && c.name[len(c.name)-6:] == "_total" {
			kind = "counter"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", c.name, c.help, c.name, kind, c.name, c.value); err != nil {
			return err
		}
	}

	// Per-method and per-regime counter families. Every series of the
	// closed key space is emitted, zeros included, so dashboards see a
	// stable set.
	if _, err := fmt.Fprintf(w, "# HELP mc_queries_by_method_total Successful queries by the method actually run.\n# TYPE mc_queries_by_method_total counter\n"); err != nil {
		return err
	}
	for _, key := range s.byMethod.order {
		strategy, mode, _ := cutMethodKey(key)
		if _, err := fmt.Fprintf(w, "mc_queries_by_method_total{strategy=%q,mode=%q} %d\n", strategy, mode, s.byMethod.get(key)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP mc_queries_by_regime_total Auto-selected queries by detected Figure-3 regime.\n# TYPE mc_queries_by_regime_total counter\n"); err != nil {
		return err
	}
	for _, key := range s.byRegime.order {
		if _, err := fmt.Fprintf(w, "mc_queries_by_regime_total{regime=%q} %d\n", key, s.byRegime.get(key)); err != nil {
			return err
		}
	}

	// Per-shard query family: the slot space is closed at
	// construction, so every slot is emitted (zeros included) and a
	// merged-away slot's series simply stops growing.
	if s.byShard != nil {
		if _, err := fmt.Fprintf(w, "# HELP mc_shard_queries_total Solver runs routed to each region shard slot (cache hits route nowhere).\n# TYPE mc_shard_queries_total counter\n"); err != nil {
			return err
		}
		for _, key := range s.byShard.order {
			if _, err := fmt.Fprintf(w, "mc_shard_queries_total{shard=%q} %d\n", key, s.byShard.get(key)); err != nil {
				return err
			}
		}
	}

	// Latency summary over the ring window. A summary must expose
	// _sum and _count beside its quantiles — their absence is what
	// strict scrapers rejected in the old hand-rolled exposition; both
	// now come from the histogram's monotone totals.
	_, count, sum := s.latHist.snapshot()
	if _, err := fmt.Fprintf(w, "# HELP mc_query_latency_seconds Query latency over the ring-buffer window.\n# TYPE mc_query_latency_seconds summary\n"); err != nil {
		return err
	}
	for _, q := range []struct {
		label string
		ms    float64
	}{{"0.5", st.LatencyP50MS}, {"0.99", st.LatencyP99MS}} {
		if _, err := fmt.Fprintf(w, "mc_query_latency_seconds{quantile=%q} %g\n", q.label, q.ms/1000); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "mc_query_latency_seconds_sum %g\nmc_query_latency_seconds_count %d\n", sum, count); err != nil {
		return err
	}

	if err := s.latHist.write(w, "mc_query_duration_seconds", "Singleton query latency histogram (batches observe mc_batch_duration_seconds)."); err != nil {
		return err
	}
	if err := s.batchHist.write(w, "mc_batch_duration_seconds", "Whole-batch request latency histogram."); err != nil {
		return err
	}
	if err := s.retHist.write(w, "mc_query_retrievals", "Tuple retrievals charged per query (0 on cache hits)."); err != nil {
		return err
	}
	if err := s.fsyncHist.write(w, "mc_wal_fsync_seconds", "WAL fsync duration."); err != nil {
		return err
	}
	if err := s.deltaHist.write(w, "mc_delta_compile_seconds", "Delta compile (Extend) duration per append."); err != nil {
		return err
	}
	return s.snapHist.write(w, "mc_snapshot_seconds", "Snapshot write duration.")
}

// methodKey builds the byMethod key, and cutMethodKey splits it back
// for label rendering.
func methodKey(strategy, mode string) string { return strategy + "|" + mode }

func cutMethodKey(key string) (strategy, mode string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}
