package server

// Regression tests for the serving-path bugs the soak harness's
// metric invariants flushed out: InFlight sticking at all-workers-busy
// after Close, validation failures polluting the latency window and
// error counter, the leaked validate span, and whole-batch wall-time
// samples inflating the singleton percentiles.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/obs"
)

// TestInFlightReturnsToZero asserts the in-flight gauge counts solves
// holding a worker slot, not channel occupancy: it must read zero on
// an idle service, zero again after concurrent traffic drains, and —
// the regression — zero after Close fills the pool to drain it (the
// old len(sem) implementation permanently read all-workers-busy).
func TestInFlightReturnsToZero(t *testing.T) {
	s := New(Config{Workers: 4})
	if _, err := s.AppendFacts(FactsRequest{Parent: []core.Pair{core.P("a", "b"), core.P("b", "c")}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().InFlight; got != 0 {
		t.Fatalf("idle InFlight = %d, want 0", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Query(context.Background(), QueryRequest{Source: "a"}); err != nil {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().InFlight; got != 0 {
		t.Fatalf("post-traffic InFlight = %d, want 0", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().InFlight; got != 0 {
		t.Fatalf("post-Close InFlight = %d, want 0 (drained pool must not read busy)", got)
	}
}

// TestBadRequestsExcludedFromLatency asserts validation failures land
// in their own counter and leave the latency window untouched, so a
// client sending garbage cannot drag p50 toward microseconds.
func TestBadRequestsExcludedFromLatency(t *testing.T) {
	s := New(Config{Workers: 2})
	bad := []QueryRequest{
		{Source: ""},
		{Source: "a", Strategy: "bogus"},
		{Source: "a", Strategy: "single", Mode: "bogus"},
		{Source: "a", Mode: "integrated"}, // mode without strategy
	}
	for _, req := range bad {
		if _, err := s.Query(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("query %+v: err = %v, want ErrBadRequest", req, err)
		}
	}
	st := s.Stats()
	if st.BadRequests != int64(len(bad)) {
		t.Fatalf("BadRequests = %d, want %d", st.BadRequests, len(bad))
	}
	if st.QueryErrors != 0 {
		t.Fatalf("QueryErrors = %d, want 0 (validation failures are not query errors)", st.QueryErrors)
	}
	if _, count, _ := s.latHist.snapshot(); count != 0 {
		t.Fatalf("latency histogram has %d samples after bad requests, want 0", count)
	}

	// A real query still records one sample.
	if _, err := s.AppendFacts(FactsRequest{Parent: []core.Pair{core.P("a", "b")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), QueryRequest{Source: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, count, _ := s.latHist.snapshot(); count != 1 {
		t.Fatalf("latency histogram has %d samples after one good query, want 1", count)
	}
	if st := s.Stats(); st.Queries != int64(len(bad))+1 ||
		st.CacheHits+st.CacheMisses+st.QueryErrors+st.QueriesRejected+st.BadRequests != st.Queries {
		t.Fatalf("query accounting does not close: %+v", st)
	}
}

// TestValidateSpanClosedOnError asserts the validate span is ended on
// every exit path: after a failed validation, the next span started on
// the same trace must be a sibling of "validate", not its child (the
// leak left validate open, corrupting the rest of the tree).
func TestValidateSpanClosedOnError(t *testing.T) {
	for _, tc := range []struct {
		name                   string
		source, strategy, mode string
	}{
		{"empty source", "", "", ""},
		{"unknown strategy", "a", "bogus", ""},
		{"unknown mode", "a", "single", "bogus"},
		{"mode without strategy", "a", "", "integrated"},
	} {
		tr := obs.New("query", 0)
		if _, _, _, err := validateQuery(tr, tc.source, tc.strategy, tc.mode); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
		next := tr.Start("next", 0)
		tr.End(next, 0)
		root := tr.Finish(0)
		if n := len(root.Children); n != 2 {
			t.Fatalf("%s: root has %d children, want 2 (validate, next): %+v", tc.name, n, root)
		}
		if root.Children[0].Name != "validate" || len(root.Children[0].Children) != 0 {
			t.Fatalf("%s: validate span not closed cleanly: %+v", tc.name, root.Children[0])
		}
		if root.Children[1].Name != "next" {
			t.Fatalf("%s: next span nested under a leaked validate: %+v", tc.name, root)
		}
	}

	// The success path keeps the same shape: validate is a closed leaf.
	tr := obs.New("query", 0)
	if _, _, _, err := validateQuery(tr, "a", "single", "integrated"); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish(0)
	if len(root.Children) != 1 || root.Children[0].Name != "validate" {
		t.Fatalf("success path trace shape wrong: %+v", root)
	}
}

// TestAcquireSpanClosedOnError asserts the acquire span does not leak
// on the deadline path either (same bug class as validate).
func TestAcquireSpanClosedOnError(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.AppendFacts(FactsRequest{Parent: []core.Pair{core.P("a", "b")}}); err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker slot so the traced query times out waiting.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	_, err := s.Query(context.Background(), QueryRequest{Source: "a", TimeoutM: 20, Trace: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestBatchLatencySeparateFromQueries asserts whole-batch wall time is
// recorded into its own ring and histogram, never the singleton query
// window: one 64-item batch must leave the query histogram empty.
func TestBatchLatencySeparateFromQueries(t *testing.T) {
	s := New(Config{Workers: 4})
	var parent []core.Pair
	for i := 0; i < 64; i++ {
		parent = append(parent, core.P("root", fmt.Sprintf("n%d", i)))
	}
	if _, err := s.AppendFacts(FactsRequest{Parent: parent}); err != nil {
		t.Fatal(err)
	}
	sources := make([]string, 0, 64)
	for _, p := range parent {
		sources = append(sources, p.To)
	}
	if _, err := s.QueryBatch(context.Background(), BatchRequest{Sources: sources}); err != nil {
		t.Fatal(err)
	}
	if _, count, _ := s.latHist.snapshot(); count != 0 {
		t.Fatalf("query histogram has %d samples after a batch, want 0", count)
	}
	if _, count, _ := s.batchHist.snapshot(); count != 1 {
		t.Fatalf("batch histogram has %d samples, want 1", count)
	}
	st := s.Stats()
	if st.BatchLatencyP99MS <= 0 {
		t.Fatalf("batch p99 = %v, want > 0", st.BatchLatencyP99MS)
	}
	if st.LatencyP99MS != 0 {
		t.Fatalf("singleton p99 = %v after batch-only traffic, want 0", st.LatencyP99MS)
	}

	// A singleton query lands in the query histogram, not the batch one.
	if _, err := s.Query(context.Background(), QueryRequest{Source: "root"}); err != nil {
		t.Fatal(err)
	}
	if _, count, _ := s.latHist.snapshot(); count != 1 {
		t.Fatalf("query histogram has %d samples after one query, want 1", count)
	}
	if _, count, _ := s.batchHist.snapshot(); count != 1 {
		t.Fatalf("batch histogram has %d samples after one query, want 1", count)
	}
}

// TestBatchAccountingCloses asserts the per-item counters partition
// mc_queries_total exactly, duplicates and empty sources included:
// queries == hits + misses + errors + rejected + bad.
func TestBatchAccountingCloses(t *testing.T) {
	s := New(Config{Workers: 4})
	if _, err := s.AppendFacts(FactsRequest{Parent: []core.Pair{core.P("a", "b"), core.P("b", "c")}}); err != nil {
		t.Fatal(err)
	}
	// a solves, the duplicate a folds (counted as a hit), "" is a bad
	// request, b solves.
	resp, err := s.QueryBatch(context.Background(), BatchRequest{Sources: []string{"a", "a", "", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(resp.Items))
	}
	if !resp.Items[1].Cached {
		t.Fatalf("folded duplicate not reported cached: %+v", resp.Items[1])
	}
	st := s.Stats()
	if st.Queries != 4 {
		t.Fatalf("Queries = %d, want 4", st.Queries)
	}
	if sum := st.CacheHits + st.CacheMisses + st.QueryErrors + st.QueriesRejected + st.BadRequests; sum != st.Queries {
		t.Fatalf("accounting does not close: hits=%d misses=%d errors=%d rejected=%d bad=%d != queries=%d",
			st.CacheHits, st.CacheMisses, st.QueryErrors, st.QueriesRejected, st.BadRequests, st.Queries)
	}
	if st.BadRequests != 1 {
		t.Fatalf("BadRequests = %d, want 1 (empty batch item)", st.BadRequests)
	}
}
