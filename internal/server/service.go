// Package server is the serving layer over the core magic counting
// solvers: a long-lived Service owning the database relations L, E,
// and R, a bounded worker pool, a build-once compiled query graph
// (core.Compiled) shared read-only by every query of one database
// generation, and a per-(source, strategy, mode) result cache with
// generation-based invalidation and CLOCK (second-chance) eviction,
// so repeated bound queries against a slowly-changing database
// amortize interning, Step 1, and Step 2 instead of recomputing
// them — the workload the paper (and the magic-sets literature after
// it) is about. QueryBatch answers many bound constants against one
// snapshot with a single compile.
//
// cmd/mcserved wraps the Service in a JSON HTTP API.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/durable"
	"magiccounting/internal/obs"
)

// ErrBadRequest wraps client errors (empty source, unknown strategy
// or mode) so the HTTP layer can map them to 400 responses.
var ErrBadRequest = errors.New("server: bad request")

// ErrClosed reports a query received after Close; the HTTP layer maps
// it to 503 so load balancers retry elsewhere during shutdown.
var ErrClosed = errors.New("server: service closed")

// Config tunes a Service.
type Config struct {
	// Workers bounds the number of queries solving concurrently;
	// excess requests queue (respecting their context). Zero selects
	// GOMAXPROCS.
	Workers int
	// DefaultTimeout applies to queries that carry no deadline of
	// their own. Zero selects 30 seconds.
	DefaultTimeout time.Duration
	// CacheCap bounds the number of cached results. Zero selects 1024.
	CacheCap int
	// LatencyWindow is the latency ring-buffer size behind the p50/p99
	// metrics. Zero selects 1024.
	LatencyWindow int
	// Fsync, FsyncInterval, and WALSegmentBytes tune the durable store
	// opened by Open (see durable.Options); they have no effect on a
	// memory-only service. The zero Fsync is durable.FsyncAlways.
	Fsync           durable.FsyncPolicy
	FsyncInterval   time.Duration
	WALSegmentBytes int64
	// SnapshotEvery triggers a background Checkpoint once that many
	// facts have been appended since the last snapshot. Zero disables
	// automatic snapshots (Close still writes a final one).
	SnapshotEvery int
	// DeltaMaxFrac bounds delta compilation: an append whose
	// deduplicated delta is at most this fraction of the resulting
	// database extends the current compiled artifact in place of the
	// next query's full rebuild. Larger appends (bulk loads) fall back
	// to dropping the artifact, recompiled lazily on the next miss.
	// Zero selects 0.25; negative disables delta compilation entirely.
	DeltaMaxFrac float64
	// MaxResidentCompiled caps how many artifact generations the live
	// Extend chain may keep resident: each Extend aliases its parent,
	// so a chain of depth d pins d+1 generations of storage. When a
	// delta append would exceed the cap, the appender collapses the
	// extended artifact with core.Flatten — off the write lock, like
	// the delta compile itself — publishing a self-contained artifact
	// that frees every ancestor. Zero selects 8; negative disables the
	// generation cap (the maxDeltaChain hard cap still collapses).
	MaxResidentCompiled int
	// MaxCompiledBytes collapses the chain when its ResidentBytes
	// estimate crosses this many bytes, whatever its depth — deep
	// chains of small deltas and short chains of huge ones hit the
	// same wall. Zero selects 256 MiB; negative disables the byte
	// trigger. In sharded mode both this and MaxResidentCompiled are
	// enforced per shard.
	MaxCompiledBytes int64
	// Shards partitions the compiled artifact by graph region into
	// this many shards (core.CompileSharded): queries route to exactly
	// one shard, appends delta-compile only the shards they touch, and
	// chain collapse runs per shard. Values <= 1 serve the monolithic
	// artifact.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.DeltaMaxFrac == 0 {
		c.DeltaMaxFrac = 0.25
	}
	if c.MaxResidentCompiled == 0 {
		c.MaxResidentCompiled = 8
	}
	if c.MaxCompiledBytes == 0 {
		c.MaxCompiledBytes = 256 << 20
	}
	return c
}

// maxDeltaChain is the hard bound on Extend-chain depth, enforced
// even when Config.MaxResidentCompiled disables the retention cap:
// every delta generation aliases its parent's storage, so an
// unbounded chain would pin each generation's re-laid rows (and
// overlay maps) for the life of the newest artifact. At this depth
// the appender collapses the chain with core.Flatten and keeps delta
// compilation going — dropping the artifact here instead used to
// latch the server into fallback-forever under sustained appends,
// because the cold compile that would reset the depth only runs on a
// query miss and its publish loses every race with the next append.
const maxDeltaChain = 256

// cacheKey identifies one cached evaluation. Auto-selected queries
// cache under their own key so a hit skips even the graph
// classification that selection would redo.
type cacheKey struct {
	source   string
	strategy core.Strategy
	mode     core.Mode
	auto     bool
}

// cacheEntry is a result valid for exactly one database generation.
type cacheEntry struct {
	generation uint64
	result     *core.Result
	strategy   core.Strategy
	mode       core.Mode
	regime     string
	reason     string
	// ref is the CLOCK reference bit: readers set it on every hit
	// (under the read lock, hence atomic), and the eviction sweep
	// clears it once before a victim is taken — a second chance that
	// keeps repeatedly-hit entries resident through cache churn.
	ref atomic.Bool
}

// Service owns a database of L/E/R facts and answers magic counting
// queries against it. All methods are safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // worker-pool slots

	// appendMu serializes fact commits end to end — dedupe, the
	// write-ahead log append, and the published generation bump — so
	// record generations are assigned gaplessly and the WAL order
	// matches the commit order. Queries never touch it.
	appendMu sync.Mutex

	mu      sync.RWMutex // guards the fact slices, generation, cache
	l, e, r []core.Pair
	// Membership sets mirror the slices so appends dedupe in O(1):
	// relations are sets, and re-POSTing facts already present must
	// not invalidate the result cache. They belong to the appender
	// (guarded by appendMu, not mu — queries never read them), and are
	// nil after Open until materialized — by the background warm Open
	// launches, or by the first append, whichever runs first. setsMu
	// guards materialization only: once the maps are non-nil they are
	// never rebuilt, and only appendMu holders mutate them (ensureSets
	// runs before appendMu is taken, so the build never blocks a
	// committed append and never holds appendMu for O(database)).
	setsMu           sync.Mutex
	lSet, eSet, rSet map[core.Pair]bool
	generation       uint64
	cache            map[cacheKey]*cacheEntry
	// compiled is the build-once CSR artifact for the current
	// generation, shared read-only by every query of that generation;
	// AppendFacts drops it on a bump and the next miss recompiles.
	// In sharded mode (cfg.Shards > 1) it stays nil and sharded plays
	// the same role: one region-partitioned artifact per generation,
	// rolled forward shard by shard across appends.
	compiled *core.Compiled
	sharded  *core.ShardedCompiled
	// clock and hand are the CLOCK eviction state: the ring of resident
	// cache keys and the sweep position. Both are guarded by mu.
	clock []cacheKey
	hand  int

	// dur is the durable store behind Open; nil on a memory-only
	// service. Immutable once set (Open runs before serving), so the
	// hot path reads it without a lock. ckptMu serializes checkpoints;
	// the remaining fields drive the snapshot trigger and durability
	// metrics (see durability.go and metrics.go).
	dur              *durable.Store
	ckptMu           sync.Mutex
	sinceSnap        atomic.Int64
	snapshotting     atomic.Bool
	walAppends       atomic.Int64
	snapshots        atomic.Int64
	snapFailures     atomic.Int64
	recoveryReplayed atomic.Int64
	recoverSpan      *obs.Span
	fsyncHist        *histogram
	snapHist         *histogram

	start time.Time
	// lat holds singleton-query latencies; blat holds whole-batch
	// request latencies. They are separate windows on purpose: one
	// batch solves up to maxBatchSources items in a single wall-clock
	// sample, so mixing the two streams would drag the query p99 up
	// with every large batch (and bury batch regressions among the
	// singleton samples).
	lat  *latencyRing
	blat *latencyRing

	// latHist/batchHist and retHist observe the same streams as the
	// rings and NewRetrievals; byMethod/byRegime count successful
	// queries over their closed key spaces (see metrics.go).
	latHist   *histogram
	batchHist *histogram
	retHist   *histogram
	byMethod  *labeledCounters
	byRegime  *labeledCounters

	closed atomic.Bool

	// deltaCompiles + fullCompiles partition compiles; deltaFallbacks
	// counts appends that qualified for a delta but exceeded the
	// fraction threshold or the chain-depth bound and dropped the
	// artifact instead. lastAppendSpan is the most recent append's
	// finished span tree, surfaced in /v1/stats.
	deltaCompiles  atomic.Int64
	fullCompiles   atomic.Int64
	deltaFallbacks atomic.Int64
	// chainCollapses counts delta appends whose extended artifact was
	// flattened before publish (retention cap, byte budget, or the
	// maxDeltaChain hard bound); in sharded mode, one per collapsed
	// shard chain.
	chainCollapses atomic.Int64
	deltaHist      *histogram
	lastAppendSpan atomic.Pointer[obs.Span]
	// shardMerges counts shards absorbed by bridging appends (a merge
	// of n shards counts n-1); byShard counts successful solves per
	// shard slot. Both are zero-valued/nil on a monolithic service.
	shardMerges atomic.Int64
	byShard     *labeledCounters

	queries     atomic.Int64
	batches     atomic.Int64
	compiles    atomic.Int64
	rejected    atomic.Int64
	badRequests atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	queryErrors atomic.Int64
	timeouts    atomic.Int64
	factAppends atomic.Int64
	retrievals  atomic.Int64
	traced      atomic.Int64

	// inFlight counts solves currently holding a worker slot. It is
	// tracked separately from len(sem) because Close drains the pool by
	// filling every slot and never releasing them — after a drain,
	// len(sem) permanently reads all-workers-busy, and during the drain
	// it counts Close's own slots as if they were queries.
	inFlight atomic.Int64
}

// New creates a Service with an empty database.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	var byShard *labeledCounters
	if cfg.Shards > 1 {
		// The shard slot space is closed at construction (slots never
		// exceed the configured count, merges only vacate them), so the
		// per-shard counters are a fixed labeled family like byMethod.
		keys := make([]string, cfg.Shards)
		for i := range keys {
			keys[i] = strconv.Itoa(i)
		}
		byShard = newLabeledCounters(keys...)
	}
	return &Service{
		byShard: byShard,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		lSet:    make(map[core.Pair]bool),
		eSet:    make(map[core.Pair]bool),
		rSet:    make(map[core.Pair]bool),
		cache:   make(map[cacheKey]*cacheEntry),
		start:   time.Now(),
		lat:       newLatencyRing(cfg.LatencyWindow),
		blat:      newLatencyRing(cfg.LatencyWindow),
		latHist:   newHistogram(latencyBuckets...),
		batchHist: newHistogram(latencyBuckets...),
		retHist:   newHistogram(retrievalBuckets...),
		fsyncHist: newHistogram(fsyncBuckets...),
		snapHist:  newHistogram(snapshotBuckets...),
		deltaHist: newHistogram(deltaCompileBuckets...),
		byMethod: newLabeledCounters(
			methodKey("basic", "independent"), methodKey("basic", "integrated"),
			methodKey("single", "independent"), methodKey("single", "integrated"),
			methodKey("multiple", "independent"), methodKey("multiple", "integrated"),
			methodKey("recurring", "independent"), methodKey("recurring", "integrated"),
		),
		byRegime: newLabeledCounters("regular", "acyclic", "cyclic"),
	}
}

// shardMode reports whether the service serves region-sharded
// artifacts (Config.Shards > 1) instead of one monolithic Compiled.
func (s *Service) shardMode() bool { return s.cfg.Shards > 1 }

// artifact is the query surface shared by the monolithic and sharded
// compiled forms; the solve paths dispatch through it so the two
// serving modes cannot drift.
type artifact interface {
	ChooseMethod(source string) core.Selection
	Solve(source string, strategy core.Strategy, mode core.Mode, opts core.Options) (*core.Result, error)
}

// QueryRequest asks for the answers to ?- P(Source, Y). Strategy and
// Mode are the core names ("basic", "single", "multiple", "recurring"
// / "independent", "integrated"); an empty Strategy selects the
// method automatically per the query graph's Figure 3 regime, and an
// empty Mode with an explicit Strategy defaults to "integrated".
type QueryRequest struct {
	Source   string `json:"source"`
	Strategy string `json:"strategy,omitempty"`
	Mode     string `json:"mode,omitempty"`
	TimeoutM int64  `json:"timeout_ms,omitempty"`
	// Trace opts this request into per-stage span recording; the
	// response then carries the span tree. Off by default: the solver
	// hot path pays nothing for untraced requests.
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is one answered query.
type QueryResponse struct {
	Answers []string   `json:"answers"`
	Stats   core.Stats `json:"stats"`
	// Strategy and Mode are the method actually run (resolved when
	// auto-selected).
	Strategy string `json:"strategy"`
	Mode     string `json:"mode"`
	// Auto reports that the method was selected automatically; Regime
	// and Reason then carry the Figure-3 justification.
	Auto   bool   `json:"auto"`
	Regime string `json:"regime,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Cached reports a cache hit; NewRetrievals is the tuple
	// retrievals this request itself caused (zero on a hit; equal to
	// Stats.Retrievals on a miss).
	Cached        bool    `json:"cached"`
	NewRetrievals int64   `json:"new_retrievals"`
	Generation    uint64  `json:"generation"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	// Trace is the span tree recorded when the request set "trace";
	// its per-stage retrievals sum exactly to NewRetrievals.
	Trace *obs.Span `json:"trace,omitempty"`
}

// ParseStrategy resolves a core strategy name.
func ParseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "basic":
		return core.Basic, nil
	case "single":
		return core.Single, nil
	case "multiple":
		return core.Multiple, nil
	case "recurring":
		return core.Recurring, nil
	}
	return 0, fmt.Errorf("%w: unknown strategy %q (want basic, single, multiple, or recurring)", ErrBadRequest, s)
}

// ParseMode resolves a core mode name.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "independent":
		return core.Independent, nil
	case "integrated":
		return core.Integrated, nil
	}
	return 0, fmt.Errorf("%w: unknown mode %q (want independent or integrated)", ErrBadRequest, s)
}

// parseMethod resolves a request's method selection: an empty strategy
// selects automatically (mode must then be empty too); an explicit
// strategy defaults to integrated mode. Shared by the singleton and
// batch paths so the two cannot drift.
func parseMethod(strategy, mode string) (st core.Strategy, md core.Mode, auto bool, err error) {
	auto = strategy == ""
	if auto {
		if mode != "" {
			return 0, 0, false, fmt.Errorf("%w: mode %q given without a strategy (omit both for automatic selection)", ErrBadRequest, mode)
		}
		return 0, 0, true, nil
	}
	if st, err = ParseStrategy(strategy); err != nil {
		return 0, 0, false, err
	}
	md = core.Integrated
	if mode != "" {
		if md, err = ParseMode(mode); err != nil {
			return 0, 0, false, err
		}
	}
	return st, md, false, nil
}

// validateQuery is parseMethod plus the source check, under a
// "validate" span closed on every path. The deferred End matters:
// early error returns used to leave the span open, so anything started
// afterwards on the same trace would nest under a stage that had
// already failed, corrupting the span tree.
func validateQuery(tr *obs.Trace, source, strategy, mode string) (st core.Strategy, md core.Mode, auto bool, err error) {
	vs := tr.Start("validate", 0)
	defer tr.End(vs, 0)
	if source == "" {
		return 0, 0, false, fmt.Errorf("%w: empty source", ErrBadRequest)
	}
	return parseMethod(strategy, mode)
}

// Query answers req, consulting the result cache first. The run is
// bounded by ctx, by req.TimeoutM, and by the service default
// timeout, whichever is tightest, and by a worker-pool slot.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	started := time.Now()
	s.queries.Add(1)
	resp, err := s.query(ctx, req)
	if errors.Is(err, ErrClosed) {
		// Shutdown fast-fails are load-balancer noise, not query
		// failures: counting them as errors (and their sub-microsecond
		// latencies as samples) would skew both metrics during every
		// deploy. They get their own counter instead.
		s.rejected.Add(1)
		return nil, err
	}
	if errors.Is(err, ErrBadRequest) {
		// Validation failures never reach a solver, so their
		// sub-microsecond turnaround is not a query latency: one client
		// sending garbage would drag p50 toward zero and inflate
		// mc_query_errors_total with failures that say nothing about
		// the serving path. They mirror the ErrClosed treatment: their
		// own counter, no latency sample.
		s.badRequests.Add(1)
		return nil, err
	}
	elapsed := time.Since(started)
	s.lat.record(elapsed)
	s.latHist.observe(elapsed.Seconds())
	if err != nil {
		s.queryErrors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
		}
		return nil, err
	}
	s.retHist.observe(float64(resp.NewRetrievals))
	s.byMethod.inc(methodKey(resp.Strategy, resp.Mode))
	if resp.Auto {
		s.byRegime.inc(resp.Regime)
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	return resp, nil
}

func (s *Service) query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// tr stays nil for untraced requests; every obs call below is
	// nil-safe, so the untraced path pays one nil check per stage.
	var tr *obs.Trace
	if req.Trace {
		s.traced.Add(1)
		tr = obs.New("query", 0)
	}

	strategy, mode, auto, err := validateQuery(tr, req.Source, req.Strategy, req.Mode)
	if err != nil {
		return nil, err
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutM > 0 {
		timeout = time.Duration(req.TimeoutM) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Acquire a worker-pool slot; a cancelled wait counts against the
	// request's own deadline, keeping the pool bounded under overload.
	as := tr.Start("acquire", 0)
	select {
	case s.sem <- struct{}{}:
		if s.closed.Load() {
			// Close is draining the pool; hand the slot straight back
			// rather than holding it until our deadline.
			<-s.sem
			tr.End(as, 0)
			return nil, ErrClosed
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()
	case <-ctx.Done():
		tr.End(as, 0)
		return nil, ctx.Err()
	}
	tr.End(as, 0)

	key := cacheKey{source: req.Source, strategy: strategy, mode: mode, auto: auto}

	// Snapshot the database under the read lock. The slices are
	// copy-on-write (AppendFacts replaces them wholesale) and the
	// compiled artifact is immutable, so the solve below runs
	// lock-free on an immutable generation.
	cs := tr.Start("cache", 0)
	s.mu.RLock()
	l, e, r, gen := s.l, s.e, s.r, s.generation
	comp := s.compiled
	shc := s.sharded
	entry := s.cache[key]
	s.mu.RUnlock()

	if entry != nil && entry.generation == gen {
		entry.ref.Store(true)
		s.cacheHits.Add(1)
		cs.Set("hit", 1)
		tr.End(cs, 0)
		return &QueryResponse{
			Answers:       nonNilAnswers(entry.result.Answers),
			Stats:         entry.result.Stats,
			Strategy:      entry.strategy.String(),
			Mode:          entry.mode.String(),
			Auto:          auto,
			Regime:        entry.regime,
			Reason:        entry.reason,
			Cached:        true,
			NewRetrievals: 0,
			Generation:    gen,
			Trace:         tr.Finish(0),
		}, nil
	}
	s.cacheMisses.Add(1)
	cs.Set("hit", 0)
	tr.End(cs, 0)

	// Resolve the artifact for this generation: the routed shard view
	// in sharded mode, the monolithic Compiled otherwise. Either way
	// the solve below runs against one immutable artifact.
	var art artifact
	shard := -1
	if s.shardMode() {
		sc := s.shardedFor(shc, gen, l, e, r, tr)
		shard = sc.ShardOf(req.Source)
		art = sc
	} else {
		art = s.compiledFor(comp, gen, l, e, r, tr)
	}
	opts := core.Options{Ctx: ctx, Trace: tr}
	regime, reason := "", ""
	if auto {
		cls := tr.Start("classify", 0)
		sel := art.ChooseMethod(req.Source)
		if cls != nil {
			cls.Name = "classify/" + sel.Regime.String()
		}
		tr.End(cls, 0)
		strategy, mode = sel.Strategy, sel.Mode
		opts.SCCStep1 = sel.Options.SCCStep1
		regime, reason = sel.Regime.String(), sel.Reason
	}
	ss := tr.Start("solve", 0)
	if ss != nil && shard >= 0 {
		ss.Set("shard", int64(shard))
	}
	res, err := art.Solve(req.Source, strategy, mode, opts)
	if err != nil {
		return nil, err
	}
	tr.End(ss, res.Stats.Retrievals)
	s.retrievals.Add(res.Stats.Retrievals)
	if shard >= 0 {
		s.byShard.inc(strconv.Itoa(shard))
	}

	s.mu.Lock()
	s.storeResultLocked(key, gen, &cacheEntry{
		generation: gen,
		result:     res,
		strategy:   strategy,
		mode:       mode,
		regime:     regime,
		reason:     reason,
	})
	s.mu.Unlock()

	return &QueryResponse{
		Answers:       nonNilAnswers(res.Answers),
		Stats:         res.Stats,
		Strategy:      strategy.String(),
		Mode:          mode.String(),
		Auto:          auto,
		Regime:        regime,
		Reason:        reason,
		Cached:        false,
		NewRetrievals: res.Stats.Retrievals,
		Generation:    gen,
		Trace:         tr.Finish(res.Stats.Retrievals),
	}, nil
}

// nonNilAnswers pins the no-answers case to an empty non-nil slice so
// the HTTP layer marshals "answers": [], never null — clients index
// into the field without a presence check.
func nonNilAnswers(a []string) []string {
	if a == nil {
		return []string{}
	}
	return a
}

// maxBatchSources bounds one batch request. 1024 sources amortize one
// compile thoroughly; anything larger should be split so a single
// request cannot monopolize the worker pool for an unbounded stretch.
const maxBatchSources = 1024

// BatchRequest asks for the answers to ?- P(a, Y) for many bound
// constants a at once against one database snapshot: the compiled
// query graph is built (or fetched) once and shared by every item,
// which is the whole point of the endpoint — per-query work shrinks to
// bind-and-solve. Strategy and Mode apply to every item; empty
// Strategy selects per-item automatically. TimeoutM bounds the whole
// batch.
type BatchRequest struct {
	Sources  []string `json:"sources"`
	Strategy string   `json:"strategy,omitempty"`
	Mode     string   `json:"mode,omitempty"`
	TimeoutM int64    `json:"timeout_ms,omitempty"`
}

// BatchItem is one source's outcome. Items fail independently: a
// per-item Error (timeout, shutdown) leaves the rest of the batch
// intact. A duplicate source is folded onto its first occurrence and
// reported Cached with zero NewRetrievals.
type BatchItem struct {
	Source        string     `json:"source"`
	Answers       []string   `json:"answers"`
	Stats         core.Stats `json:"stats"`
	Strategy      string     `json:"strategy,omitempty"`
	Mode          string     `json:"mode,omitempty"`
	Auto          bool       `json:"auto"`
	Regime        string     `json:"regime,omitempty"`
	Reason        string     `json:"reason,omitempty"`
	Cached        bool       `json:"cached"`
	NewRetrievals int64      `json:"new_retrievals"`
	Error         string     `json:"error,omitempty"`
}

// BatchResponse answers a batch; Items aligns with Sources.
type BatchResponse struct {
	Items      []BatchItem `json:"items"`
	Generation uint64      `json:"generation"`
	ElapsedMS  float64     `json:"elapsed_ms"`
}

// QueryBatch answers every source of req against one snapshot of the
// database: one read-lock pass snapshots the generation, the compiled
// artifact, and the cache entries; at most one compile runs for the
// whole batch; and the misses fan out across the worker pool, each
// item acquiring a slot like a singleton query would. Per-item
// failures are reported in the item, not as a batch error.
func (s *Service) QueryBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	started := time.Now()
	s.batches.Add(1)
	if s.closed.Load() {
		s.rejected.Add(1)
		return nil, ErrClosed
	}
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("%w: empty sources", ErrBadRequest)
	}
	if len(req.Sources) > maxBatchSources {
		return nil, fmt.Errorf("%w: %d sources exceed the batch limit of %d", ErrBadRequest, len(req.Sources), maxBatchSources)
	}
	strategy, mode, auto, err := parseMethod(req.Strategy, req.Mode)
	if err != nil {
		return nil, err
	}
	s.queries.Add(int64(len(req.Sources)))

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutM > 0 {
		timeout = time.Duration(req.TimeoutM) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// One snapshot serves the whole batch: every item evaluates the
	// same immutable generation, however many appends land mid-flight.
	s.mu.RLock()
	l, e, r, gen := s.l, s.e, s.r, s.generation
	comp := s.compiled
	shc := s.sharded
	entries := make(map[string]*cacheEntry, len(req.Sources))
	for _, src := range req.Sources {
		if _, seen := entries[src]; !seen {
			entries[src] = s.cache[cacheKey{source: src, strategy: strategy, mode: mode, auto: auto}]
		}
	}
	s.mu.RUnlock()

	items := make([]BatchItem, len(req.Sources))
	store := make([]*cacheEntry, len(req.Sources))
	first := make(map[string]int, len(req.Sources))
	var missing []int
	for i, src := range req.Sources {
		items[i] = BatchItem{Source: src, Auto: auto, Answers: []string{}}
		if src == "" {
			// A validation failure, not a query failure — counted with
			// the singleton path's bad requests so mc_query_errors_total
			// only ever reports solves that went wrong.
			s.badRequests.Add(1)
			items[i].Error = "empty source"
			continue
		}
		if _, dup := first[src]; dup {
			continue // folded onto the first occurrence below
		}
		first[src] = i
		if entry := entries[src]; entry != nil && entry.generation == gen {
			entry.ref.Store(true)
			s.cacheHits.Add(1)
			items[i] = BatchItem{
				Source:   src,
				Answers:  nonNilAnswers(entry.result.Answers),
				Stats:    entry.result.Stats,
				Strategy: entry.strategy.String(),
				Mode:     entry.mode.String(),
				Auto:     auto,
				Regime:   entry.regime,
				Reason:   entry.reason,
				Cached:   true,
			}
			s.byMethod.inc(methodKey(items[i].Strategy, items[i].Mode))
			if auto {
				s.byRegime.inc(entry.regime)
			}
			continue
		}
		missing = append(missing, i)
	}

	// One artifact serves every miss. In sharded mode the items fan
	// out across the shards in parallel below — each goroutine routes
	// to its source's shard, so a batch spanning K regions keeps K
	// independent artifacts busy with no cross-shard contention.
	var art artifact
	var sc *core.ShardedCompiled
	if len(missing) > 0 {
		if s.shardMode() {
			sc = s.shardedFor(shc, gen, l, e, r, nil)
			art = sc
		} else {
			art = s.compiledFor(comp, gen, l, e, r, nil)
		}
	}
	var wg sync.WaitGroup
	for _, i := range missing {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := items[i].Source
			select {
			case s.sem <- struct{}{}:
				if s.closed.Load() {
					<-s.sem
					s.rejected.Add(1)
					items[i].Error = ErrClosed.Error()
					return
				}
				s.inFlight.Add(1)
				defer func() {
					s.inFlight.Add(-1)
					<-s.sem
				}()
			case <-ctx.Done():
				s.queryErrors.Add(1)
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					s.timeouts.Add(1)
				}
				items[i].Error = ctx.Err().Error()
				return
			}
			st, md := strategy, mode
			opts := core.Options{Ctx: ctx}
			regime, reason := "", ""
			if auto {
				sel := art.ChooseMethod(src)
				st, md = sel.Strategy, sel.Mode
				opts.SCCStep1 = sel.Options.SCCStep1
				regime, reason = sel.Regime.String(), sel.Reason
			}
			res, err := art.Solve(src, st, md, opts)
			if err != nil {
				s.queryErrors.Add(1)
				if errors.Is(err, context.DeadlineExceeded) {
					s.timeouts.Add(1)
				}
				items[i].Error = err.Error()
				return
			}
			s.cacheMisses.Add(1)
			s.retrievals.Add(res.Stats.Retrievals)
			s.retHist.observe(float64(res.Stats.Retrievals))
			if sc != nil {
				s.byShard.inc(strconv.Itoa(sc.ShardOf(src)))
			}
			s.byMethod.inc(methodKey(st.String(), md.String()))
			if auto {
				s.byRegime.inc(regime)
			}
			items[i] = BatchItem{
				Source:        src,
				Answers:       nonNilAnswers(res.Answers),
				Stats:         res.Stats,
				Strategy:      st.String(),
				Mode:          md.String(),
				Auto:          auto,
				Regime:        regime,
				Reason:        reason,
				NewRetrievals: res.Stats.Retrievals,
			}
			store[i] = &cacheEntry{
				generation: gen,
				result:     res,
				strategy:   st,
				mode:       md,
				regime:     regime,
				reason:     reason,
			}
		}(i)
	}
	wg.Wait()

	// Fold duplicates onto their first occurrence's outcome, and store
	// the fresh results under one lock. Every folded item is still one
	// query of the batch, so its outcome is counted like the original's
	// — a successful fold as a cache hit (it was answered without a
	// solve), a folded failure under the matching failure counter —
	// keeping queries == hits + misses + errors + rejected + bad exact.
	for i, src := range req.Sources {
		if j, ok := first[src]; ok && j != i {
			items[i] = items[j]
			switch {
			case items[i].Error == "":
				items[i].Cached = true
				items[i].NewRetrievals = 0
				s.cacheHits.Add(1)
			case items[i].Error == ErrClosed.Error():
				s.rejected.Add(1)
			default:
				s.queryErrors.Add(1)
			}
		}
	}
	s.mu.Lock()
	for i, entry := range store {
		if entry != nil {
			s.storeResultLocked(cacheKey{source: items[i].Source, strategy: strategy, mode: mode, auto: auto}, gen, entry)
		}
	}
	s.mu.Unlock()

	// One whole-batch wall-time sample into the batch window only:
	// recording it beside the singleton samples would inflate the query
	// p99 in proportion to batch size.
	elapsed := time.Since(started)
	s.blat.record(elapsed)
	s.batchHist.observe(elapsed.Seconds())
	return &BatchResponse{
		Items:      items,
		Generation: gen,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
	}, nil
}

// compiledFor returns the compiled CSR artifact for the snapshot taken
// at gen, building one when the cached artifact is stale. The build
// runs outside the lock on the immutable copy-on-write slices, under a
// "compile" span when tracing; concurrent misses on a fresh generation
// may compile redundantly, but only a still-current artifact is
// published, and losers just solve on their local copy.
func (s *Service) compiledFor(comp *core.Compiled, gen uint64, l, e, r []core.Pair, tr *obs.Trace) *core.Compiled {
	if comp != nil && comp.Generation == gen {
		return comp
	}
	bs := tr.Start("compile", 0)
	c := core.Compile(l, e, r)
	c.Generation = gen
	if bs != nil {
		bs.Set("l_nodes", int64(c.NumL()))
		bs.Set("r_nodes", int64(c.NumR()))
	}
	tr.End(bs, 0)
	s.compiles.Add(1)
	s.fullCompiles.Add(1)
	s.mu.Lock()
	if s.generation == gen && (s.compiled == nil || s.compiled.Generation != gen) {
		s.compiled = c
	}
	s.mu.Unlock()
	return c
}

// shardedFor is compiledFor's region-sharded analog: it returns the
// sharded artifact for the snapshot taken at gen, building one with
// CompileSharded when the cached artifact is stale. The build counts
// as one (full) compile however many shards it produces — the
// compiles metric tracks whole-database builds, and the per-shard
// breakdown lives in the shards stats block.
func (s *Service) shardedFor(shc *core.ShardedCompiled, gen uint64, l, e, r []core.Pair, tr *obs.Trace) *core.ShardedCompiled {
	if shc != nil && shc.Generation == gen {
		return shc
	}
	bs := tr.Start("compile", 0)
	c := core.CompileSharded(l, e, r, core.ShardOpts{Shards: s.cfg.Shards})
	c.SetGeneration(gen)
	if bs != nil {
		bs.Set("shards", int64(len(c.LiveSlots())))
	}
	tr.End(bs, 0)
	s.compiles.Add(1)
	s.fullCompiles.Add(1)
	s.mu.Lock()
	if s.generation == gen && (s.sharded == nil || s.sharded.Generation != gen) {
		s.sharded = c
	}
	s.mu.Unlock()
	return c
}

// storeResultLocked caches entry under key if the snapshot generation
// is still current: if AppendFacts bumped the generation mid-solve,
// the result reflects the old snapshot and must not serve future
// queries. First-time keys join the CLOCK ring, evicting a victim
// when the cache is at capacity.
func (s *Service) storeResultLocked(key cacheKey, gen uint64, entry *cacheEntry) {
	if s.generation != gen {
		return
	}
	if _, exists := s.cache[key]; !exists {
		if len(s.cache) >= s.cfg.CacheCap {
			s.evictOneLocked()
		}
		s.clock = append(s.clock, key)
	}
	s.cache[key] = entry
}

// evictOneLocked drops one cache entry by the CLOCK (second-chance)
// policy: the hand sweeps the ring of resident keys, clearing each
// set reference bit it passes and evicting the first entry found with
// its bit already clear. Entries hit since the last sweep survive one
// extra revolution, so a repeatedly-hit key outlives any amount of
// one-shot churn at full capacity — the approximation of LRU that
// needs no per-hit write lock. Terminates within two revolutions: the
// first pass clears every bit it sees.
func (s *Service) evictOneLocked() {
	for len(s.clock) > 0 {
		if s.hand >= len(s.clock) {
			s.hand = 0
		}
		k := s.clock[s.hand]
		entry := s.cache[k]
		if entry == nil {
			// Dead slot (entry purged behind the ring): compact by
			// swapping the last slot in, and resweep the position.
			last := len(s.clock) - 1
			s.clock[s.hand] = s.clock[last]
			s.clock = s.clock[:last]
			continue
		}
		if entry.ref.CompareAndSwap(true, false) {
			s.hand++ // second chance
			continue
		}
		delete(s.cache, k)
		last := len(s.clock) - 1
		s.clock[s.hand] = s.clock[last]
		s.clock = s.clock[:last]
		return
	}
}

// FactsRequest appends facts to the database relations. Parent is the
// same-generation convenience: each pair is added to both L and R,
// and identity E pairs are added for both endpoints — the classic
// L = R = parent, E = identity instance built incrementally.
type FactsRequest struct {
	L      []core.Pair `json:"l,omitempty"`
	E      []core.Pair `json:"e,omitempty"`
	R      []core.Pair `json:"r,omitempty"`
	Parent []core.Pair `json:"parent,omitempty"`
}

// FactsResponse reports an append.
type FactsResponse struct {
	Generation uint64 `json:"generation"`
	AddedL     int    `json:"added_l"`
	AddedE     int    `json:"added_e"`
	AddedR     int    `json:"added_r"`
}

// AppendFacts appends the request's pairs that the database does not
// already hold and bumps the cache generation only when something new
// was added: relations are sets, so re-POSTing known facts (a retried
// load, an idempotent producer) is a no-op that leaves every cached
// result valid. Added counts report actually-added pairs, after
// deduplication against the database and within the request. The fact
// slices are replaced copy-on-write, so queries already holding the
// previous snapshot keep evaluating an immutable database.
//
// The commit is staged so queries stall as little as possible: the
// dedupe (the O(request) part) runs against the appender-owned
// membership sets with no query-visible lock held; on a durable
// service the deduplicated delta is then logged — and, under
// FsyncAlways, fsynced — before anything becomes visible (the
// write-ahead contract: an acknowledged append survives a crash, and
// a logged-but-unacknowledged one is at worst replayed as the exact
// committed delta); only the final publish of the new slices and
// generation takes the write lock, for a few pointer swaps and the
// cache purge.
//
// When the current generation's compiled artifact exists and the
// delta is small (Config.DeltaMaxFrac), the appender rolls it forward
// with core.Extend — still outside every query-visible lock — and
// publishes the extended artifact with the new generation, so the
// queries that follow never pay a compile: amortized compile cost
// per append drops to the delta's size. Bulk loads (delta above the
// threshold), over-long extend chains, and a missing or stale
// artifact fall back to the lazy path: drop the artifact and let the
// next miss compile cold.
func (s *Service) AppendFacts(req FactsRequest) (*FactsResponse, error) {
	for _, set := range [][]core.Pair{req.L, req.E, req.R, req.Parent} {
		for _, p := range set {
			if p.From == "" || p.To == "" {
				return nil, fmt.Errorf("%w: pair with empty endpoint %+v", ErrBadRequest, p)
			}
		}
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	addL := append([]core.Pair(nil), req.L...)
	addE := append([]core.Pair(nil), req.E...)
	addR := append([]core.Pair(nil), req.R...)
	for _, p := range req.Parent {
		addL = append(addL, p)
		addR = append(addR, p)
		addE = append(addE, core.Pair{From: p.From, To: p.From}, core.Pair{From: p.To, To: p.To})
	}
	s.factAppends.Add(1)

	// Materialize the membership sets before taking appendMu: after a
	// recovery of a large database the build is O(n), and under the
	// lock it would stall this append and every one queued behind it.
	s.ensureSets()

	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	addL = dedupePending(s.lSet, addL)
	addE = dedupePending(s.eSet, addE)
	addR = dedupePending(s.rSet, addR)
	added := len(addL) + len(addE) + len(addR)
	s.mu.RLock()
	gen := s.generation
	comp := s.compiled
	shc := s.sharded
	facts := len(s.l) + len(s.e) + len(s.r)
	s.mu.RUnlock()
	if added == 0 {
		return &FactsResponse{Generation: gen}, nil
	}

	// Write-ahead: appendMu guarantees gen is still current, so the
	// record carries the generation this commit will produce, and the
	// delta is duplicate-free by the dedupe above — replay concatenates
	// records without re-deduplication.
	if s.dur != nil {
		if err := s.dur.Append(durable.Record{Gen: gen + 1, L: addL, E: addE, R: addR}); err != nil {
			return nil, fmt.Errorf("server: wal append: %w", err)
		}
		s.walAppends.Add(1)
	}

	for _, p := range addL {
		s.lSet[p] = true
	}
	for _, p := range addE {
		s.eSet[p] = true
	}
	for _, p := range addR {
		s.rSet[p] = true
	}

	// Roll the compiled artifact to the next generation while no
	// query-visible lock is held; appendMu alone serializes the
	// generation bump, so comp/shc (if current) stay current until the
	// publish below. nil means "drop and recompile lazily".
	var next *core.Compiled
	var nextSh *core.ShardedCompiled
	if s.shardMode() {
		nextSh = s.rollSharded(shc, gen, added, addL, addE, addR)
	} else {
		next = s.rollArtifact(comp, gen, facts, added, addL, addE, addR)
	}

	s.mu.Lock()
	s.l = appendCOW(s.l, addL)
	s.e = appendCOW(s.e, addE)
	s.r = appendCOW(s.r, addR)
	s.generation++
	gen = s.generation
	// Either the delta-extended artifact for the new generation, or
	// nil — the old artifact describes the old generation, so the next
	// miss rebuilds from the new slices.
	s.compiled = next
	s.sharded = nextSh
	s.invalidateGenerationLocked(gen)
	s.mu.Unlock()

	s.maybeSnapshot(added)
	return &FactsResponse{
		Generation: gen,
		AddedL:     len(addL),
		AddedE:     len(addE),
		AddedR:     len(addR),
	}, nil
}

// invalidateGenerationLocked purges every cache entry not at gen and
// rebuilds the CLOCK ring over the survivors. Purging immediately
// (rather than waiting for eviction to stumble on them) keeps the
// invariant that every cached entry is live: stale entries are
// unreachable (generation mismatch) and would otherwise sit in cache
// slots indefinitely, inflating mc_cache_entries and crowding out
// live results. The hand keeps its sweep position so surviving
// entries don't get a free extra revolution — but the rebuilt ring is
// usually shorter than the old one, so the position is clamped into
// range; an out-of-range hand would make the next evictOneLocked
// sweep start mid-wrap and, worse, index past the ring if any caller
// ever read s.clock[s.hand] before the sweep's own wrap check.
// Caller holds mu.
func (s *Service) invalidateGenerationLocked(gen uint64) {
	for k, e := range s.cache {
		if e.generation != gen {
			delete(s.cache, k)
		}
	}
	s.clock = s.clock[:0]
	for k := range s.cache {
		s.clock = append(s.clock, k)
	}
	if s.hand >= len(s.clock) {
		s.hand = 0
	}
}

// rollArtifact produces the compiled artifact to publish for the
// generation this commit creates: the current artifact extended by
// the deduplicated delta when delta compilation applies, nil (lazy
// recompile on the next query miss) otherwise. Caller holds appendMu
// — and only appendMu — so the extend runs with no query-visible
// lock held; comp and facts were snapshotted under the same appendMu
// hold, so a non-nil comp at the current generation cannot go stale
// before the publish.
//
// Delta compilation is skipped when: it is disabled (DeltaMaxFrac <
// 0); there is no artifact at the current generation to extend (a
// pure append stream stays lazy until a query compiles); or the delta
// exceeds DeltaMaxFrac of the resulting database (a bulk load — the
// aliasing win vanishes and the eager work would stall the append).
// Only the threshold skip counts as a fallback; the artifact's
// absence does not.
//
// The extended artifact is then collapsed with core.Flatten — still
// with no query-visible lock held — whenever the chain would pin more
// than MaxResidentCompiled generations, its ResidentBytes estimate
// exceeds MaxCompiledBytes, or its depth reaches the maxDeltaChain
// hard bound. The collapse keeps the delta path live (the published
// artifact is depth 0, so the next append extends it) while freeing
// every aliased ancestor; before this, hitting maxDeltaChain dropped
// the artifact and latched the server into invalidation on every
// subsequent append under sustained load.
func (s *Service) rollArtifact(comp *core.Compiled, gen uint64, facts, added int, addL, addE, addR []core.Pair) *core.Compiled {
	if s.cfg.DeltaMaxFrac < 0 || comp == nil || comp.Generation != gen {
		return nil
	}
	if frac := float64(added) / float64(facts+added); frac > s.cfg.DeltaMaxFrac {
		s.deltaFallbacks.Add(1)
		return nil
	}
	tr := obs.New("append", 0)
	sp := tr.Start("delta-compile", 0)
	started := time.Now()
	next := comp.Extend(addL, addE, addR)
	next.SetGeneration(gen + 1)
	s.deltaHist.observe(time.Since(started).Seconds())
	if sp != nil {
		sp.Set("added", int64(added))
		sp.Set("depth", int64(next.DeltaDepth()))
		sp.Set("l_nodes", int64(next.NumL()))
		sp.Set("r_nodes", int64(next.NumR()))
	}
	tr.End(sp, 0)
	s.compiles.Add(1)
	s.deltaCompiles.Add(1)
	if s.shouldCollapse(next) {
		csp := tr.Start("collapse", 0)
		cstart := time.Now()
		flat := next.Flatten()
		if csp != nil {
			csp.Set("depth", int64(next.DeltaDepth()))
			csp.Set("bytes_before", next.ResidentBytes())
			csp.Set("bytes_after", flat.ResidentBytes())
			csp.Set("elapsed_us", time.Since(cstart).Microseconds())
		}
		tr.End(csp, 0)
		next = flat
		s.chainCollapses.Add(1)
	}
	s.lastAppendSpan.Store(tr.Finish(0))
	return next
}

// shouldCollapse decides whether the freshly extended artifact must be
// flattened before publish. A chain of depth d keeps d+1 generations
// resident, so the retention cap fires at depth >= MaxResidentCompiled;
// the byte budget fires on the ResidentBytes estimate; maxDeltaChain
// fires regardless of configuration.
func (s *Service) shouldCollapse(next *core.Compiled) bool {
	depth := next.DeltaDepth()
	if depth >= maxDeltaChain {
		return true
	}
	if s.cfg.MaxResidentCompiled > 0 && depth >= s.cfg.MaxResidentCompiled {
		return true
	}
	return s.cfg.MaxCompiledBytes > 0 && next.ResidentBytes() > s.cfg.MaxCompiledBytes
}

// rollSharded is rollArtifact's region-sharded analog: it rolls the
// sharded artifact to the next generation by extending only the
// shards the delta touches. There is no whole-database fallback — a
// delta too large for one shard's Extend cold-rebuilds that shard
// alone, and a bridging delta merges just the shards it connects — so
// the artifact is never dropped once it exists, and amortized append
// cost tracks shard size, not database size. Chain collapse runs per
// touched shard: only a shard whose own chain trips the retention cap
// pays a Flatten, scoped to its facts.
//
// Accounting: each delta-extended shard is one delta compile, each
// cold-rebuilt shard one full compile (compiles == full + delta
// holds), each absorbed shard one merge. Collapses only ever fire on
// a shard this append delta-extended (a rebuilt shard publishes at
// depth 0), preserving collapses <= delta compiles. Fallbacks stay
// monolithic-only: nothing is ever dropped here.
func (s *Service) rollSharded(shc *core.ShardedCompiled, gen uint64, added int, addL, addE, addR []core.Pair) *core.ShardedCompiled {
	if s.cfg.DeltaMaxFrac < 0 || shc == nil || shc.Generation != gen {
		return nil
	}
	tr := obs.New("append", 0)
	sp := tr.Start("delta-compile", 0)
	started := time.Now()
	next, st := shc.Extend(addL, addE, addR, s.cfg.DeltaMaxFrac)
	next.SetGeneration(gen + 1)
	s.deltaHist.observe(time.Since(started).Seconds())
	if sp != nil {
		sp.Set("added", int64(added))
		sp.Set("shards_touched", int64(len(st.Touched)))
		sp.Set("merges", int64(st.Merges))
		sp.Set("depth", int64(next.MaxDeltaDepth()))
	}
	tr.End(sp, 0)
	s.compiles.Add(int64(st.DeltaExtended + st.Rebuilt))
	s.deltaCompiles.Add(int64(st.DeltaExtended))
	s.fullCompiles.Add(int64(st.Rebuilt))
	s.shardMerges.Add(int64(st.Merges))
	for _, slot := range st.Touched {
		comp := next.ShardArtifact(slot)
		if comp.DeltaDepth() == 0 || !s.shouldCollapse(comp) {
			continue
		}
		csp := tr.Start("collapse", 0)
		cstart := time.Now()
		flat := comp.Flatten()
		if csp != nil {
			csp.Set("shard", int64(slot))
			csp.Set("depth", int64(comp.DeltaDepth()))
			csp.Set("bytes_before", comp.ResidentBytes())
			csp.Set("bytes_after", flat.ResidentBytes())
			csp.Set("elapsed_us", time.Since(cstart).Microseconds())
		}
		tr.End(csp, 0)
		next.SetShardArtifact(slot, flat)
		s.chainCollapses.Add(1)
	}
	s.lastAppendSpan.Store(tr.Finish(0))
	return next
}

// ensureSets materializes the membership sets from the fact slices if
// they are still nil after a recovery. setsMu guards the build; once
// the maps are non-nil they are never rebuilt, and from then on only
// appendMu holders touch them. Appenders call this before taking
// appendMu (so a large recovered database never stalls a committed
// append for the O(n) build) and Open warms it in the background.
func (s *Service) ensureSets() {
	s.setsMu.Lock()
	defer s.setsMu.Unlock()
	if s.lSet != nil {
		return
	}
	s.mu.RLock()
	l, e, r := s.l, s.e, s.r
	s.mu.RUnlock()
	sets := make([]map[core.Pair]bool, 3)
	for i, rel := range [][]core.Pair{l, e, r} {
		set := make(map[core.Pair]bool, len(rel))
		for _, p := range rel {
			set[p] = true
		}
		sets[i] = set
	}
	s.lSet, s.eSet, s.rSet = sets[0], sets[1], sets[2]
}

// dedupePending filters add down to the pairs not in present, also
// dropping duplicates within add itself. present is read, never
// written: a request that turns out to be a full no-op must leave the
// membership sets untouched. add is filtered in place (it is always a
// request-local copy).
func dedupePending(present map[core.Pair]bool, add []core.Pair) []core.Pair {
	if len(add) == 0 {
		return nil
	}
	out := add[:0]
	seen := make(map[core.Pair]bool, len(add))
	for _, p := range add {
		if present[p] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// appendCOW appends add to base without ever growing base's backing
// array in place, so slice headers handed out under a previous read
// lock stay valid snapshots.
func appendCOW(base, add []core.Pair) []core.Pair {
	if len(add) == 0 {
		return base
	}
	out := make([]core.Pair, 0, len(base)+len(add))
	out = append(out, base...)
	return append(out, add...)
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Generation      uint64  `json:"generation"`
	FactsL          int     `json:"facts_l"`
	FactsE          int     `json:"facts_e"`
	FactsR          int     `json:"facts_r"`
	Queries         int64   `json:"queries"`
	BatchRequests   int64   `json:"batch_requests"`
	Compiles        int64   `json:"compiles"`
	QueriesRejected int64   `json:"queries_rejected"`
	BadRequests     int64   `json:"bad_requests"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheEntries    int     `json:"cache_entries"`
	QueryErrors     int64   `json:"query_errors"`
	QueryTimeouts   int64   `json:"query_timeouts"`
	FactAppends     int64   `json:"fact_appends"`
	TupleRetrievals int64   `json:"tuple_retrievals"`
	TracedQueries   int64   `json:"traced_queries"`
	Workers         int     `json:"workers"`
	InFlight        int     `json:"in_flight"`
	LatencyP50MS    float64 `json:"latency_p50_ms"`
	LatencyP99MS    float64 `json:"latency_p99_ms"`
	// BatchLatency* are whole-batch request latencies, windowed
	// separately from the singleton percentiles above.
	BatchLatencyP50MS float64 `json:"batch_latency_p50_ms"`
	BatchLatencyP99MS float64 `json:"batch_latency_p99_ms"`
	// Durable reports whether a durable store is open; the remaining
	// fields are zero on a memory-only service.
	Durable                 bool  `json:"durable"`
	WALAppends              int64 `json:"wal_appends"`
	Snapshots               int64 `json:"snapshots"`
	SnapshotFailures        int64 `json:"snapshot_failures"`
	RecoveryReplayedRecords int64 `json:"recovery_replayed_records"`
	// DeltaCompile reports the incremental-compilation state (see
	// AppendFacts and rollArtifact).
	DeltaCompile DeltaCompileStats `json:"delta_compile"`
	// Memory reports the bounded-memory state: resident artifact
	// generations, the pinned-bytes estimate, collapse activity, and
	// the process heap watermark (see rollArtifact and the
	// MaxResidentCompiled/MaxCompiledBytes knobs).
	Memory MemoryStats `json:"memory"`
	// Shards reports the region-sharded artifact state; nil on a
	// monolithic service (Config.Shards <= 1).
	Shards *ShardsStats `json:"shards,omitempty"`
}

// ShardsStats is the region-sharding block of Stats.
type ShardsStats struct {
	// Configured echoes Config.Shards; Live counts the slots still
	// holding a region after bridging appends merged some away.
	Configured int `json:"configured"`
	Live       int `json:"live"`
	// Merges counts shards absorbed into a neighbor by bridging
	// appends since startup.
	Merges int64 `json:"merges"`
	// MaxDeltaDepth is the deepest per-shard Extend chain in the live
	// artifact (Memory.ResidentCompiled mirrors it as depth+1).
	MaxDeltaDepth int `json:"max_delta_depth"`
	// Shards lists the live slots of the current artifact.
	Shards []core.ShardInfo `json:"shards"`
}

// DeltaCompileStats is the delta-compilation block of Stats.
type DeltaCompileStats struct {
	// DeltaCompiles and FullCompiles partition Compiles; Fallbacks
	// counts appends that skipped the delta path on the fraction
	// threshold (chain depth no longer falls back — it collapses; see
	// MemoryStats.ChainCollapses).
	DeltaCompiles int64   `json:"delta_compiles"`
	FullCompiles  int64   `json:"full_compiles"`
	Fallbacks     int64   `json:"fallbacks"`
	MaxFraction   float64 `json:"max_fraction"`
	// ChainDepth is the current artifact's Extend depth since its last
	// full compile (0 when cold-compiled, absent, decoded, or just
	// collapsed).
	ChainDepth int `json:"chain_depth"`
	// LastAppend is the most recent delta-compiling append's span tree.
	LastAppend *obs.Span `json:"last_append,omitempty"`
}

// MemoryStats is the bounded-memory block of Stats.
type MemoryStats struct {
	// ResidentCompiled counts the artifact generations the live Extend
	// chain keeps resident: DeltaDepth+1 for a published artifact, 0
	// when none is resident.
	ResidentCompiled int `json:"resident_compiled"`
	// CompiledBytes is the live artifact's ResidentBytes estimate.
	CompiledBytes int64 `json:"compiled_bytes"`
	// ChainCollapses counts appends whose extended artifact was
	// flattened before publish.
	ChainCollapses int64 `json:"chain_collapses"`
	// HeapInuseBytes is the runtime's heap-in-use watermark (spans
	// holding live objects, scraped from runtime/metrics) — the field
	// soak harnesses watch for monotonic growth.
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`
	// MaxResidentCompiled and MaxCompiledBytes echo the effective
	// configuration so a scraper can tell capped from uncapped runs.
	MaxResidentCompiled int   `json:"max_resident_compiled"`
	MaxCompiledBytes    int64 `json:"max_compiled_bytes"`
}

// Close marks the service closed and drains the worker pool: new
// queries and appends fail fast with ErrClosed, and Close returns once
// every in-flight solve has released its slot (or ctx expires). The
// drained slots are never released, so the pool stays shut. On a
// durable service Close then writes a final snapshot (so the next
// start recovers without replay) and closes the store; a failed drain
// does not skip that — losing the checkpoint because a query was slow
// would trade a startup cost for nothing. Idempotent: only the first
// call does the work (a second drain of the never-released slots
// would block forever).
func (s *Service) Close(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	var errs []error
	if err := s.drain(ctx); err != nil {
		errs = append(errs, err)
	}
	if s.dur != nil {
		// appendMu: no commit may straddle the store shutdown.
		s.appendMu.Lock()
		if err := s.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("server: final checkpoint: %w", err))
		}
		if err := s.dur.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: close durable store: %w", err))
		}
		s.appendMu.Unlock()
	}
	return errors.Join(errs...)
}

// drain fills the worker pool so no further query can take a slot.
func (s *Service) drain(ctx context.Context) error {
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("server: close: %d of %d workers still busy: %w",
				cap(s.sem)-i, cap(s.sem), ctx.Err())
		}
	}
	return nil
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	gen := s.generation
	fl, fe, fr := len(s.l), len(s.e), len(s.r)
	entries := len(s.cache)
	comp := s.compiled
	shc := s.sharded
	s.mu.RUnlock()
	depth, resident, compiledBytes := 0, 0, int64(0)
	var shards *ShardsStats
	if s.shardMode() {
		shards = &ShardsStats{
			Configured: s.cfg.Shards,
			Merges:     s.shardMerges.Load(),
		}
		if shc != nil {
			// ResidentBytes and ShardInfos walk the artifact, so they
			// run on the snapshot outside the lock; the artifact is
			// immutable once published.
			depth = shc.MaxDeltaDepth()
			resident = depth + 1
			compiledBytes = shc.ResidentBytes()
			shards.Live = len(shc.LiveSlots())
			shards.MaxDeltaDepth = depth
			shards.Shards = shc.ShardInfos()
		}
	} else if comp != nil {
		// ResidentBytes walks the artifact, so it runs on the snapshot
		// outside the lock; the artifact is immutable once published.
		depth = comp.DeltaDepth()
		resident = depth + 1
		compiledBytes = comp.ResidentBytes()
	}
	p50, p99 := s.lat.percentile(0.50), s.lat.percentile(0.99)
	bp50, bp99 := s.blat.percentile(0.50), s.blat.percentile(0.99)
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Generation:      gen,
		FactsL:          fl,
		FactsE:          fe,
		FactsR:          fr,
		Queries:         s.queries.Load(),
		BatchRequests:   s.batches.Load(),
		Compiles:        s.compiles.Load(),
		QueriesRejected: s.rejected.Load(),
		BadRequests:     s.badRequests.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		CacheEntries:    entries,
		QueryErrors:     s.queryErrors.Load(),
		QueryTimeouts:   s.timeouts.Load(),
		FactAppends:     s.factAppends.Load(),
		TupleRetrievals: s.retrievals.Load(),
		TracedQueries:   s.traced.Load(),
		Workers:         s.cfg.Workers,
		InFlight:        int(s.inFlight.Load()),
		LatencyP50MS:    float64(p50.Microseconds()) / 1000,
		LatencyP99MS:    float64(p99.Microseconds()) / 1000,

		BatchLatencyP50MS: float64(bp50.Microseconds()) / 1000,
		BatchLatencyP99MS: float64(bp99.Microseconds()) / 1000,

		Durable:                 s.dur != nil,
		WALAppends:              s.walAppends.Load(),
		Snapshots:               s.snapshots.Load(),
		SnapshotFailures:        s.snapFailures.Load(),
		RecoveryReplayedRecords: s.recoveryReplayed.Load(),

		DeltaCompile: DeltaCompileStats{
			DeltaCompiles: s.deltaCompiles.Load(),
			FullCompiles:  s.fullCompiles.Load(),
			Fallbacks:     s.deltaFallbacks.Load(),
			MaxFraction:   s.cfg.DeltaMaxFrac,
			ChainDepth:    depth,
			LastAppend:    s.lastAppendSpan.Load(),
		},

		Memory: MemoryStats{
			ResidentCompiled:    resident,
			CompiledBytes:       compiledBytes,
			ChainCollapses:      s.chainCollapses.Load(),
			HeapInuseBytes:      heapInuseBytes(),
			MaxResidentCompiled: s.cfg.MaxResidentCompiled,
			MaxCompiledBytes:    s.cfg.MaxCompiledBytes,
		},

		Shards: shards,
	}
}
