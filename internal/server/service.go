// Package server is the serving layer over the core magic counting
// solvers: a long-lived Service owning the database relations L, E,
// and R, a bounded worker pool, and a per-(source, strategy, mode)
// result cache with generation-based invalidation, so repeated bound
// queries against a slowly-changing database amortize Step 1 and
// Step 2 instead of recomputing them — the workload the paper (and
// the magic-sets literature after it) is about.
//
// cmd/mcserved wraps the Service in a JSON HTTP API.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/obs"
)

// ErrBadRequest wraps client errors (empty source, unknown strategy
// or mode) so the HTTP layer can map them to 400 responses.
var ErrBadRequest = errors.New("server: bad request")

// ErrClosed reports a query received after Close; the HTTP layer maps
// it to 503 so load balancers retry elsewhere during shutdown.
var ErrClosed = errors.New("server: service closed")

// Config tunes a Service.
type Config struct {
	// Workers bounds the number of queries solving concurrently;
	// excess requests queue (respecting their context). Zero selects
	// GOMAXPROCS.
	Workers int
	// DefaultTimeout applies to queries that carry no deadline of
	// their own. Zero selects 30 seconds.
	DefaultTimeout time.Duration
	// CacheCap bounds the number of cached results. Zero selects 1024.
	CacheCap int
	// LatencyWindow is the latency ring-buffer size behind the p50/p99
	// metrics. Zero selects 1024.
	LatencyWindow int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	return c
}

// cacheKey identifies one cached evaluation. Auto-selected queries
// cache under their own key so a hit skips even the graph
// classification that selection would redo.
type cacheKey struct {
	source   string
	strategy core.Strategy
	mode     core.Mode
	auto     bool
}

// cacheEntry is a result valid for exactly one database generation.
type cacheEntry struct {
	generation uint64
	result     *core.Result
	strategy   core.Strategy
	mode       core.Mode
	regime     string
	reason     string
}

// Service owns a database of L/E/R facts and answers magic counting
// queries against it. All methods are safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // worker-pool slots

	mu      sync.RWMutex // guards the fact slices, generation, cache
	l, e, r []core.Pair
	// Membership sets mirror the slices so appends dedupe in O(1):
	// relations are sets, and re-POSTing facts already present must
	// not invalidate the result cache.
	lSet, eSet, rSet map[core.Pair]bool
	generation       uint64
	cache            map[cacheKey]*cacheEntry

	start time.Time
	lat   *latencyRing

	// latHist and retHist observe the same streams as the ring and
	// NewRetrievals; byMethod/byRegime count successful queries over
	// their closed key spaces (see metrics.go).
	latHist  *histogram
	retHist  *histogram
	byMethod *labeledCounters
	byRegime *labeledCounters

	closed atomic.Bool

	queries     atomic.Int64
	rejected    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	queryErrors atomic.Int64
	timeouts    atomic.Int64
	factAppends atomic.Int64
	retrievals  atomic.Int64
	traced      atomic.Int64
}

// New creates a Service with an empty database.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		lSet:    make(map[core.Pair]bool),
		eSet:    make(map[core.Pair]bool),
		rSet:    make(map[core.Pair]bool),
		cache:   make(map[cacheKey]*cacheEntry),
		start:   time.Now(),
		lat:     newLatencyRing(cfg.LatencyWindow),
		latHist: newHistogram(latencyBuckets...),
		retHist: newHistogram(retrievalBuckets...),
		byMethod: newLabeledCounters(
			methodKey("basic", "independent"), methodKey("basic", "integrated"),
			methodKey("single", "independent"), methodKey("single", "integrated"),
			methodKey("multiple", "independent"), methodKey("multiple", "integrated"),
			methodKey("recurring", "independent"), methodKey("recurring", "integrated"),
		),
		byRegime: newLabeledCounters("regular", "acyclic", "cyclic"),
	}
}

// QueryRequest asks for the answers to ?- P(Source, Y). Strategy and
// Mode are the core names ("basic", "single", "multiple", "recurring"
// / "independent", "integrated"); an empty Strategy selects the
// method automatically per the query graph's Figure 3 regime, and an
// empty Mode with an explicit Strategy defaults to "integrated".
type QueryRequest struct {
	Source   string `json:"source"`
	Strategy string `json:"strategy,omitempty"`
	Mode     string `json:"mode,omitempty"`
	TimeoutM int64  `json:"timeout_ms,omitempty"`
	// Trace opts this request into per-stage span recording; the
	// response then carries the span tree. Off by default: the solver
	// hot path pays nothing for untraced requests.
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is one answered query.
type QueryResponse struct {
	Answers []string   `json:"answers"`
	Stats   core.Stats `json:"stats"`
	// Strategy and Mode are the method actually run (resolved when
	// auto-selected).
	Strategy string `json:"strategy"`
	Mode     string `json:"mode"`
	// Auto reports that the method was selected automatically; Regime
	// and Reason then carry the Figure-3 justification.
	Auto   bool   `json:"auto"`
	Regime string `json:"regime,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Cached reports a cache hit; NewRetrievals is the tuple
	// retrievals this request itself caused (zero on a hit; equal to
	// Stats.Retrievals on a miss).
	Cached        bool    `json:"cached"`
	NewRetrievals int64   `json:"new_retrievals"`
	Generation    uint64  `json:"generation"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	// Trace is the span tree recorded when the request set "trace";
	// its per-stage retrievals sum exactly to NewRetrievals.
	Trace *obs.Span `json:"trace,omitempty"`
}

// ParseStrategy resolves a core strategy name.
func ParseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "basic":
		return core.Basic, nil
	case "single":
		return core.Single, nil
	case "multiple":
		return core.Multiple, nil
	case "recurring":
		return core.Recurring, nil
	}
	return 0, fmt.Errorf("%w: unknown strategy %q (want basic, single, multiple, or recurring)", ErrBadRequest, s)
}

// ParseMode resolves a core mode name.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "independent":
		return core.Independent, nil
	case "integrated":
		return core.Integrated, nil
	}
	return 0, fmt.Errorf("%w: unknown mode %q (want independent or integrated)", ErrBadRequest, s)
}

// Query answers req, consulting the result cache first. The run is
// bounded by ctx, by req.TimeoutM, and by the service default
// timeout, whichever is tightest, and by a worker-pool slot.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	started := time.Now()
	s.queries.Add(1)
	resp, err := s.query(ctx, req)
	if errors.Is(err, ErrClosed) {
		// Shutdown fast-fails are load-balancer noise, not query
		// failures: counting them as errors (and their sub-microsecond
		// latencies as samples) would skew both metrics during every
		// deploy. They get their own counter instead.
		s.rejected.Add(1)
		return nil, err
	}
	elapsed := time.Since(started)
	s.lat.record(elapsed)
	s.latHist.observe(elapsed.Seconds())
	if err != nil {
		s.queryErrors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
		}
		return nil, err
	}
	s.retHist.observe(float64(resp.NewRetrievals))
	s.byMethod.inc(methodKey(resp.Strategy, resp.Mode))
	if resp.Auto {
		s.byRegime.inc(resp.Regime)
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	return resp, nil
}

func (s *Service) query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// tr stays nil for untraced requests; every obs call below is
	// nil-safe, so the untraced path pays one nil check per stage.
	var tr *obs.Trace
	if req.Trace {
		s.traced.Add(1)
		tr = obs.New("query", 0)
	}

	vs := tr.Start("validate", 0)
	if req.Source == "" {
		return nil, fmt.Errorf("%w: empty source", ErrBadRequest)
	}
	auto := req.Strategy == ""
	var strategy core.Strategy
	var mode core.Mode
	var err error
	if !auto {
		if strategy, err = ParseStrategy(req.Strategy); err != nil {
			return nil, err
		}
		mode = core.Integrated
		if req.Mode != "" {
			if mode, err = ParseMode(req.Mode); err != nil {
				return nil, err
			}
		}
	} else if req.Mode != "" {
		return nil, fmt.Errorf("%w: mode %q given without a strategy (omit both for automatic selection)", ErrBadRequest, req.Mode)
	}
	tr.End(vs, 0)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutM > 0 {
		timeout = time.Duration(req.TimeoutM) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Acquire a worker-pool slot; a cancelled wait counts against the
	// request's own deadline, keeping the pool bounded under overload.
	as := tr.Start("acquire", 0)
	select {
	case s.sem <- struct{}{}:
		if s.closed.Load() {
			// Close is draining the pool; hand the slot straight back
			// rather than holding it until our deadline.
			<-s.sem
			return nil, ErrClosed
		}
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	tr.End(as, 0)

	key := cacheKey{source: req.Source, strategy: strategy, mode: mode, auto: auto}

	// Snapshot the database under the read lock. The slices are
	// copy-on-write (AppendFacts replaces them wholesale), so the
	// solve below runs lock-free on an immutable generation.
	cs := tr.Start("cache", 0)
	s.mu.RLock()
	l, e, r, gen := s.l, s.e, s.r, s.generation
	entry := s.cache[key]
	s.mu.RUnlock()

	if entry != nil && entry.generation == gen {
		s.cacheHits.Add(1)
		cs.Set("hit", 1)
		tr.End(cs, 0)
		return &QueryResponse{
			Answers:       nonNilAnswers(entry.result.Answers),
			Stats:         entry.result.Stats,
			Strategy:      entry.strategy.String(),
			Mode:          entry.mode.String(),
			Auto:          auto,
			Regime:        entry.regime,
			Reason:        entry.reason,
			Cached:        true,
			NewRetrievals: 0,
			Generation:    gen,
			Trace:         tr.Finish(0),
		}, nil
	}
	s.cacheMisses.Add(1)
	cs.Set("hit", 0)
	tr.End(cs, 0)

	q := core.Query{L: l, E: e, R: r, Source: req.Source}
	opts := core.Options{Ctx: ctx, Trace: tr}
	regime, reason := "", ""
	if auto {
		cls := tr.Start("classify", 0)
		sel := core.ChooseMethod(q)
		if cls != nil {
			cls.Name = "classify/" + sel.Regime.String()
		}
		tr.End(cls, 0)
		strategy, mode = sel.Strategy, sel.Mode
		opts.SCCStep1 = sel.Options.SCCStep1
		regime, reason = sel.Regime.String(), sel.Reason
	}
	ss := tr.Start("solve", 0)
	res, err := q.SolveMagicCountingOpts(strategy, mode, opts)
	if err != nil {
		return nil, err
	}
	tr.End(ss, res.Stats.Retrievals)
	s.retrievals.Add(res.Stats.Retrievals)

	s.mu.Lock()
	// Only cache results still current: if AppendFacts bumped the
	// generation mid-solve, the result reflects the old snapshot and
	// must not serve future queries.
	if s.generation == gen {
		if len(s.cache) >= s.cfg.CacheCap {
			s.evictOneLocked()
		}
		s.cache[key] = &cacheEntry{
			generation: gen,
			result:     res,
			strategy:   strategy,
			mode:       mode,
			regime:     regime,
			reason:     reason,
		}
	}
	s.mu.Unlock()

	return &QueryResponse{
		Answers:       nonNilAnswers(res.Answers),
		Stats:         res.Stats,
		Strategy:      strategy.String(),
		Mode:          mode.String(),
		Auto:          auto,
		Regime:        regime,
		Reason:        reason,
		Cached:        false,
		NewRetrievals: res.Stats.Retrievals,
		Generation:    gen,
		Trace:         tr.Finish(res.Stats.Retrievals),
	}, nil
}

// nonNilAnswers pins the no-answers case to an empty non-nil slice so
// the HTTP layer marshals "answers": [], never null — clients index
// into the field without a presence check.
func nonNilAnswers(a []string) []string {
	if a == nil {
		return []string{}
	}
	return a
}

// evictOneLocked drops one cache entry at random. Every entry is
// live — AppendFacts purges dead generations on every bump and query
// only caches current-generation results — so there is no better
// victim to prefer, and random eviction over a small map needs no
// LRU bookkeeping.
func (s *Service) evictOneLocked() {
	for k := range s.cache {
		delete(s.cache, k)
		return
	}
}

// FactsRequest appends facts to the database relations. Parent is the
// same-generation convenience: each pair is added to both L and R,
// and identity E pairs are added for both endpoints — the classic
// L = R = parent, E = identity instance built incrementally.
type FactsRequest struct {
	L      []core.Pair `json:"l,omitempty"`
	E      []core.Pair `json:"e,omitempty"`
	R      []core.Pair `json:"r,omitempty"`
	Parent []core.Pair `json:"parent,omitempty"`
}

// FactsResponse reports an append.
type FactsResponse struct {
	Generation uint64 `json:"generation"`
	AddedL     int    `json:"added_l"`
	AddedE     int    `json:"added_e"`
	AddedR     int    `json:"added_r"`
}

// AppendFacts appends the request's pairs that the database does not
// already hold and bumps the cache generation only when something new
// was added: relations are sets, so re-POSTing known facts (a retried
// load, an idempotent producer) is a no-op that leaves every cached
// result valid. Added counts report actually-added pairs, after
// deduplication against the database and within the request. The fact
// slices are replaced copy-on-write, so queries already holding the
// previous snapshot keep evaluating an immutable database.
func (s *Service) AppendFacts(req FactsRequest) (*FactsResponse, error) {
	for _, set := range [][]core.Pair{req.L, req.E, req.R, req.Parent} {
		for _, p := range set {
			if p.From == "" || p.To == "" {
				return nil, fmt.Errorf("%w: pair with empty endpoint %+v", ErrBadRequest, p)
			}
		}
	}
	addL := append([]core.Pair(nil), req.L...)
	addE := append([]core.Pair(nil), req.E...)
	addR := append([]core.Pair(nil), req.R...)
	for _, p := range req.Parent {
		addL = append(addL, p)
		addR = append(addR, p)
		addE = append(addE, core.Pair{From: p.From, To: p.From}, core.Pair{From: p.To, To: p.To})
	}
	s.factAppends.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	addL = dedupePending(s.lSet, addL)
	addE = dedupePending(s.eSet, addE)
	addR = dedupePending(s.rSet, addR)
	if len(addL)+len(addE)+len(addR) == 0 {
		return &FactsResponse{Generation: s.generation}, nil
	}
	s.l = appendCOW(s.l, addL)
	s.e = appendCOW(s.e, addE)
	s.r = appendCOW(s.r, addR)
	for _, p := range addL {
		s.lSet[p] = true
	}
	for _, p := range addE {
		s.eSet[p] = true
	}
	for _, p := range addR {
		s.rSet[p] = true
	}
	s.generation++
	// Purge dead generations immediately: stale entries are
	// unreachable (generation mismatch) and would otherwise sit in
	// cache slots indefinitely, inflating mc_cache_entries and
	// crowding out live results until eviction stumbled on them. This
	// keeps the invariant that every cached entry is live.
	for k, e := range s.cache {
		if e.generation != s.generation {
			delete(s.cache, k)
		}
	}
	return &FactsResponse{
		Generation: s.generation,
		AddedL:     len(addL),
		AddedE:     len(addE),
		AddedR:     len(addR),
	}, nil
}

// dedupePending filters add down to the pairs not in present, also
// dropping duplicates within add itself. present is read, never
// written: a request that turns out to be a full no-op must leave the
// membership sets untouched. add is filtered in place (it is always a
// request-local copy).
func dedupePending(present map[core.Pair]bool, add []core.Pair) []core.Pair {
	if len(add) == 0 {
		return nil
	}
	out := add[:0]
	seen := make(map[core.Pair]bool, len(add))
	for _, p := range add {
		if present[p] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// appendCOW appends add to base without ever growing base's backing
// array in place, so slice headers handed out under a previous read
// lock stay valid snapshots.
func appendCOW(base, add []core.Pair) []core.Pair {
	if len(add) == 0 {
		return base
	}
	out := make([]core.Pair, 0, len(base)+len(add))
	out = append(out, base...)
	return append(out, add...)
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Generation      uint64  `json:"generation"`
	FactsL          int     `json:"facts_l"`
	FactsE          int     `json:"facts_e"`
	FactsR          int     `json:"facts_r"`
	Queries         int64   `json:"queries"`
	QueriesRejected int64   `json:"queries_rejected"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheEntries    int     `json:"cache_entries"`
	QueryErrors     int64   `json:"query_errors"`
	QueryTimeouts   int64   `json:"query_timeouts"`
	FactAppends     int64   `json:"fact_appends"`
	TupleRetrievals int64   `json:"tuple_retrievals"`
	TracedQueries   int64   `json:"traced_queries"`
	Workers         int     `json:"workers"`
	InFlight        int     `json:"in_flight"`
	LatencyP50MS    float64 `json:"latency_p50_ms"`
	LatencyP99MS    float64 `json:"latency_p99_ms"`
}

// Close marks the service closed and drains the worker pool: new
// queries fail fast with ErrClosed, and Close returns once every
// in-flight solve has released its slot (or ctx expires). The drained
// slots are never released, so the pool stays shut.
func (s *Service) Close(ctx context.Context) error {
	s.closed.Store(true)
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("server: close: %d of %d workers still busy: %w",
				cap(s.sem)-i, cap(s.sem), ctx.Err())
		}
	}
	return nil
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	gen := s.generation
	fl, fe, fr := len(s.l), len(s.e), len(s.r)
	entries := len(s.cache)
	s.mu.RUnlock()
	p50, p99 := s.lat.percentile(0.50), s.lat.percentile(0.99)
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Generation:      gen,
		FactsL:          fl,
		FactsE:          fe,
		FactsR:          fr,
		Queries:         s.queries.Load(),
		QueriesRejected: s.rejected.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMisses.Load(),
		CacheEntries:    entries,
		QueryErrors:     s.queryErrors.Load(),
		QueryTimeouts:   s.timeouts.Load(),
		FactAppends:     s.factAppends.Load(),
		TupleRetrievals: s.retrievals.Load(),
		TracedQueries:   s.traced.Load(),
		Workers:         s.cfg.Workers,
		InFlight:        len(s.sem),
		LatencyP50MS:    float64(p50.Microseconds()) / 1000,
		LatencyP99MS:    float64(p99.Microseconds()) / 1000,
	}
}
