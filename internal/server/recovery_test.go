package server

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/oracle"
	"magiccounting/internal/workload"
)

// dedupPairs drops duplicate pairs preserving first-occurrence order,
// so a test batch built from a slice of it is guaranteed all-new and
// each append maps to exactly one generation bump and one WAL record.
func dedupPairs(ps []core.Pair) []core.Pair {
	seen := make(map[core.Pair]bool, len(ps))
	out := make([]core.Pair, 0, len(ps))
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// batchesFor splits a workload instance into n fact batches covering
// every relation, each non-empty in at least one relation.
func batchesFor(q core.Query, n int) []FactsRequest {
	l, e, r := dedupPairs(q.L), dedupPairs(q.E), dedupPairs(q.R)
	cut := func(ps []core.Pair, i int) []core.Pair {
		lo, hi := i*len(ps)/n, (i+1)*len(ps)/n
		return ps[lo:hi]
	}
	batches := make([]FactsRequest, 0, n)
	for i := 0; i < n; i++ {
		b := FactsRequest{L: cut(l, i), E: cut(e, i), R: cut(r, i)}
		if len(b.L)+len(b.E)+len(b.R) > 0 {
			batches = append(batches, b)
		}
	}
	return batches
}

// durableService opens a durable Service on dir with synchronous
// fsync (the crash-safety configuration under test).
func durableService(t *testing.T, dir string) *Service {
	t.Helper()
	svc := New(Config{Workers: 2})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return svc
}

func mustAppend(t *testing.T, svc *Service, b FactsRequest) {
	t.Helper()
	if _, err := svc.AppendFacts(b); err != nil {
		t.Fatalf("AppendFacts: %v", err)
	}
}

// walFrames parses the record frame offsets of the single WAL segment
// in dir (the tests stay far below one segment's capacity), returning
// the segment path and each record's start offset.
func walFrames(t *testing.T, dir string) (string, []int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("glob wal segments: %v (found %d)", err, len(matches))
	}
	sort.Strings(matches)
	var path string
	var starts []int64
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatalf("read %s: %v", m, err)
		}
		off := int64(8)
		var local []int64
		for off+8 <= int64(len(data)) {
			plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
			if plen == 0 || off+8+plen > int64(len(data)) {
				break
			}
			local = append(local, off)
			off += 8 + plen
		}
		if len(local) > 0 {
			path, starts = m, local
		}
	}
	if path == "" {
		t.Fatalf("no WAL records found in %s", dir)
	}
	return path, starts
}

// querySources picks a handful of constants to query: the instance
// source plus the first few distinct L endpoints.
func querySources(q core.Query) []string {
	srcs := []string{q.Source}
	seen := map[string]bool{q.Source: true}
	for _, p := range q.L {
		if !seen[p.From] {
			seen[p.From] = true
			srcs = append(srcs, p.From)
		}
		if len(srcs) == 4 {
			break
		}
	}
	return srcs
}

// TestCrashRecoveryMatrix drives the crash scenarios the durability
// design promises to survive: for each, a durable service takes
// batches of appends and is abandoned without Close (FsyncAlways
// means everything acknowledged is already on disk — the in-process
// equivalent of SIGKILL), the on-disk state is optionally damaged,
// and a fresh service recovers from the directory. The recovered
// service must then be indistinguishable — byte-identical answers and
// solver statistics — from an uninterrupted service fed the surviving
// batches, and its answers must match the independent oracle.
func TestCrashRecoveryMatrix(t *testing.T) {
	instances := []struct {
		kind workload.RegimeKind
		seed int64
	}{
		{workload.KindRegular, 11},
		{workload.KindMultiple, 22},
		{workload.KindRecurring, 33},
	}
	const nBatches = 6

	scenarios := []struct {
		name string
		// run applies the batches to a durable service on dir and
		// simulates the crash, returning how many batches survive.
		run func(t *testing.T, dir string, batches []FactsRequest) int
	}{
		{"no-snapshot", func(t *testing.T, dir string, batches []FactsRequest) int {
			svc := durableService(t, dir)
			for _, b := range batches {
				mustAppend(t, svc, b)
			}
			return len(batches)
		}},
		{"snapshot-only", func(t *testing.T, dir string, batches []FactsRequest) int {
			svc := durableService(t, dir)
			for _, b := range batches {
				mustAppend(t, svc, b)
			}
			if err := svc.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			return len(batches)
		}},
		{"snapshot-plus-tail", func(t *testing.T, dir string, batches []FactsRequest) int {
			svc := durableService(t, dir)
			half := len(batches) / 2
			for _, b := range batches[:half] {
				mustAppend(t, svc, b)
			}
			if err := svc.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			for _, b := range batches[half:] {
				mustAppend(t, svc, b)
			}
			return len(batches)
		}},
		{"rotate-no-snapshot", func(t *testing.T, dir string, batches []FactsRequest) int {
			// Crash inside the checkpoint window: the WAL was rotated
			// (sealing the old segment and naming a GC floor) but the
			// snapshot that would cover it was never written. The sealed
			// segment is then the only copy of the early batches — replay
			// must walk it and GC must not have touched it.
			svc := durableService(t, dir)
			half := len(batches) / 2
			for _, b := range batches[:half] {
				mustAppend(t, svc, b)
			}
			if err := svc.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			for _, b := range batches[half:] {
				mustAppend(t, svc, b)
			}
			if _, err := svc.dur.Rotate(); err != nil {
				t.Fatalf("Rotate: %v", err)
			}
			return len(batches)
		}},
		{"torn-final-record", func(t *testing.T, dir string, batches []FactsRequest) int {
			svc := durableService(t, dir)
			for _, b := range batches {
				mustAppend(t, svc, b)
			}
			path, _ := walFrames(t, dir)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Shear a few bytes off the final record, as a crash mid
			// write would.
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
			return len(batches) - 1
		}},
		{"corrupt-crc-mid-segment", func(t *testing.T, dir string, batches []FactsRequest) int {
			svc := durableService(t, dir)
			for _, b := range batches {
				mustAppend(t, svc, b)
			}
			path, starts := walFrames(t, dir)
			k := len(starts) / 2
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[starts[k]+8] ^= 0xFF // first payload byte of record k
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return k
		}},
	}

	for _, inst := range instances {
		q := workload.RandomRegime(inst.kind, inst.seed, 2)
		batches := batchesFor(q, nBatches)
		if len(batches) < 3 {
			t.Fatalf("%v/%d: degenerate instance, only %d batches", inst.kind, inst.seed, len(batches))
		}
		for _, sc := range scenarios {
			t.Run(sc.name+"/"+inst.kind.String(), func(t *testing.T) {
				dir := t.TempDir()
				surviving := sc.run(t, dir, batches)

				recovered := durableService(t, dir)
				defer recovered.Close(context.Background())

				// Reference: an uninterrupted memory-only service fed
				// exactly the surviving batches.
				ref := New(Config{Workers: 2})
				for _, b := range batches[:surviving] {
					mustAppend(t, ref, b)
				}

				rst, fst := recovered.Stats(), ref.Stats()
				if rst.Generation != fst.Generation {
					t.Fatalf("recovered generation %d, reference %d", rst.Generation, fst.Generation)
				}
				if rst.FactsL != fst.FactsL || rst.FactsE != fst.FactsE || rst.FactsR != fst.FactsR {
					t.Fatalf("recovered facts L/E/R %d/%d/%d, reference %d/%d/%d",
						rst.FactsL, rst.FactsE, rst.FactsR, fst.FactsL, fst.FactsE, fst.FactsR)
				}
				// No replay artifact may duplicate a fact.
				for _, rel := range [][]core.Pair{recovered.l, recovered.e, recovered.r} {
					if len(dedupPairs(rel)) != len(rel) {
						t.Fatalf("recovered relation holds duplicates (%d pairs, %d distinct)",
							len(rel), len(dedupPairs(rel)))
					}
				}

				var ol, oe, or []oracle.Arc
				for _, p := range recovered.l {
					ol = append(ol, oracle.Arc{From: p.From, To: p.To})
				}
				for _, p := range recovered.e {
					oe = append(oe, oracle.Arc{From: p.From, To: p.To})
				}
				for _, p := range recovered.r {
					or = append(or, oracle.Arc{From: p.From, To: p.To})
				}

				for _, src := range querySources(q) {
					got, err := recovered.Query(context.Background(), QueryRequest{Source: src})
					if err != nil {
						t.Fatalf("recovered query %q: %v", src, err)
					}
					want, err := ref.Query(context.Background(), QueryRequest{Source: src})
					if err != nil {
						t.Fatalf("reference query %q: %v", src, err)
					}
					if !reflect.DeepEqual(got.Answers, want.Answers) {
						t.Fatalf("query %q: recovered answers %v, reference %v", src, got.Answers, want.Answers)
					}
					if got.Stats != want.Stats {
						t.Fatalf("query %q: recovered stats %+v, reference %+v", src, got.Stats, want.Stats)
					}
					if got.Strategy != want.Strategy || got.Mode != want.Mode || got.Regime != want.Regime {
						t.Fatalf("query %q: recovered method %s/%s (%s), reference %s/%s (%s)",
							src, got.Strategy, got.Mode, got.Regime, want.Strategy, want.Mode, want.Regime)
					}
					exact := oracle.AnswersMemo(ol, oe, or, src)
					if strings.Join(got.Answers, ",") != strings.Join(exact, ",") {
						t.Fatalf("query %q: recovered answers %v, oracle %v", src, got.Answers, exact)
					}
				}
			})
		}
	}
}

// TestRecoveryInfoShape pins the RecoveryInfo bookkeeping and the
// recover span for the snapshot-plus-tail path, and that a warm
// snapshot (no tail) hands its compiled artifact straight to the
// first query.
func TestRecoveryInfoShape(t *testing.T) {
	q := workload.RandomRegime(workload.KindRegular, 7, 2)
	batches := batchesFor(q, 4)
	dir := t.TempDir()

	svc := durableService(t, dir)
	for _, b := range batches[:2] {
		mustAppend(t, svc, b)
	}
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for _, b := range batches[2:] {
		mustAppend(t, svc, b)
	}

	rec := New(Config{Workers: 2})
	info, err := rec.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rec.Close(context.Background())
	if !info.SnapshotLoaded || info.SnapshotGeneration != 2 {
		t.Fatalf("snapshot: loaded=%v gen=%d, want loaded at gen 2", info.SnapshotLoaded, info.SnapshotGeneration)
	}
	if info.ReplayedRecords != len(batches)-2 || info.Generation != uint64(len(batches)) {
		t.Fatalf("replay: %d records to gen %d, want %d to %d",
			info.ReplayedRecords, info.Generation, len(batches)-2, len(batches))
	}
	if info.Compiled != nil {
		t.Fatal("compiled artifact kept despite a replayed tail")
	}
	span := rec.RecoverySpan()
	if span == nil || span.Name != "recover" {
		t.Fatalf("recover span missing: %+v", span)
	}
	if span.Find("load-snapshot") == nil || span.Find("replay") == nil {
		t.Fatalf("recover span lacks load-snapshot/replay children: %+v", span)
	}
	if n := span.Find("replay").Attrs["records"]; n != int64(len(batches)-2) {
		t.Fatalf("replay span records=%d, want %d", n, len(batches)-2)
	}
	if st := rec.Stats(); !st.Durable || st.RecoveryReplayedRecords != int64(len(batches)-2) {
		t.Fatalf("stats: durable=%v replayed=%d", st.Durable, st.RecoveryReplayedRecords)
	}

	// Close writes a final snapshot; the next open is warm: no replay,
	// and the snapshot's compiled artifact is served as-is.
	if err := rec.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	warm := New(Config{Workers: 2})
	winfo, err := warm.Open(dir)
	if err != nil {
		t.Fatalf("warm Open: %v", err)
	}
	defer warm.Close(context.Background())
	if winfo.ReplayedRecords != 0 || winfo.Compiled == nil {
		t.Fatalf("warm open: %d replayed, compiled=%v; want 0 with artifact", winfo.ReplayedRecords, winfo.Compiled != nil)
	}
	before := warm.Stats().Compiles
	if _, err := warm.Query(context.Background(), QueryRequest{Source: q.Source}); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if after := warm.Stats().Compiles; after != before {
		t.Fatalf("warm query compiled (%d -> %d) despite snapshot artifact", before, after)
	}
}

// TestOpenRequiresEmptyService pins the lifecycle contract.
func TestOpenRequiresEmptyService(t *testing.T) {
	svc := New(Config{Workers: 1})
	mustAppend(t, svc, FactsRequest{L: []core.Pair{core.P("a", "b")}})
	if _, err := svc.Open(t.TempDir()); err == nil {
		t.Fatal("Open on a non-empty service succeeded")
	}
	dir := t.TempDir()
	d := durableService(t, dir)
	defer d.Close(context.Background())
	if _, err := d.Open(dir); err == nil {
		t.Fatal("second Open succeeded")
	}
}
