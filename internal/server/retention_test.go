package server

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// appendChainN seeds svc with n disjoint chain links via chainFacts
// and fails the test on any append error.
func appendChainN(t *testing.T, svc *Service, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := svc.AppendFacts(chainFacts(prefix, i)); err != nil {
			t.Fatalf("append %s[%d]: %v", prefix, i, err)
		}
	}
}

// compareAnswers queries both services for the same sources and
// demands identical answer sets.
func compareAnswers(t *testing.T, label string, got, want *Service, sources []string) {
	t.Helper()
	for _, src := range sources {
		g, gerr := got.Query(context.Background(), QueryRequest{Source: src})
		w, werr := want.Query(context.Background(), QueryRequest{Source: src})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s src=%s: error mismatch: got %v, want %v", label, src, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if !reflect.DeepEqual(g.Answers, w.Answers) {
			t.Fatalf("%s src=%s: answers diverge:\n got %v\nwant %v", label, src, g.Answers, w.Answers)
		}
	}
}

// TestChainCollapseResetsDepth is the retention-cap property: under a
// long run of small delta appends the chain depth must stay below
// MaxResidentCompiled (each crossing collapses to a flat artifact),
// the collapse counter must track every flatten, delta compilation
// must never stop, and answers must match an unbounded reference.
func TestChainCollapseResetsDepth(t *testing.T) {
	svc := New(Config{Workers: 2, DeltaMaxFrac: 0.99, MaxResidentCompiled: 4, MaxCompiledBytes: -1})
	defer svc.Close(context.Background())
	ref := New(Config{Workers: 2, DeltaMaxFrac: -1, MaxCompiledBytes: -1})
	defer ref.Close(context.Background())

	appendChainN(t, svc, "seed", 1)
	appendChainN(t, ref, "seed", 1)
	// Compile the artifact so the appends below extend it.
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "seed_n0"}); err != nil {
		t.Fatalf("warm query: %v", err)
	}

	const appends = 20
	for i := 0; i < appends; i++ {
		req := chainFacts("delta", i)
		if _, err := svc.AppendFacts(req); err != nil {
			t.Fatalf("delta append %d: %v", i, err)
		}
		if _, err := ref.AppendFacts(req); err != nil {
			t.Fatalf("ref append %d: %v", i, err)
		}
		st := svc.Stats()
		if st.DeltaCompile.ChainDepth >= 4 {
			t.Fatalf("append %d: chain depth %d reached the cap 4", i, st.DeltaCompile.ChainDepth)
		}
		if st.Memory.ResidentCompiled > 4 {
			t.Fatalf("append %d: %d resident generations, cap 4", i, st.Memory.ResidentCompiled)
		}
	}

	st := svc.Stats()
	if st.DeltaCompile.DeltaCompiles != appends {
		t.Fatalf("delta compiles = %d, want %d (the collapse must not break the delta path)", st.DeltaCompile.DeltaCompiles, appends)
	}
	// Depth walks 0→3 then collapses on the 4th, so 20 appends force 5.
	if st.Memory.ChainCollapses != 5 {
		t.Fatalf("chain collapses = %d, want 5", st.Memory.ChainCollapses)
	}
	if st.Memory.CompiledBytes <= 0 {
		t.Fatalf("compiled bytes estimate = %d, want > 0", st.Memory.CompiledBytes)
	}
	if st.Memory.HeapInuseBytes <= 0 {
		t.Fatalf("heap inuse = %d, want > 0", st.Memory.HeapInuseBytes)
	}

	sources := []string{"seed_n0", "delta_n0", fmt.Sprintf("delta_n%d", appends-1), "absent"}
	compareAnswers(t, "retention", svc, ref, sources)
}

// TestDeltaResumesPastChainCap is the fallback-latch regression: with
// the retention triggers disabled, appends past maxDeltaChain must
// collapse at the hard bound and keep delta-compiling — before the
// fix, depth 256 dropped the artifact and every subsequent append
// fell back to invalidation with no path home (the cold compile that
// would reset the depth loses its publish race with the next append).
func TestDeltaResumesPastChainCap(t *testing.T) {
	svc := New(Config{Workers: 2, DeltaMaxFrac: 0.99, MaxResidentCompiled: -1, MaxCompiledBytes: -1})
	defer svc.Close(context.Background())

	appendChainN(t, svc, "seed", 1)
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "seed_n0"}); err != nil {
		t.Fatalf("warm query: %v", err)
	}

	appends := maxDeltaChain + 10
	for i := 0; i < appends; i++ {
		if _, err := svc.AppendFacts(chainFacts("delta", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.DeltaCompile.DeltaCompiles != int64(appends) {
		t.Fatalf("mc_delta_compiles_total = %d after %d appends, want %d (stopped climbing past the cap)",
			st.DeltaCompile.DeltaCompiles, appends, appends)
	}
	if st.DeltaCompile.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 (depth must collapse, not fall back)", st.DeltaCompile.Fallbacks)
	}
	if st.Memory.ChainCollapses != 1 {
		t.Fatalf("chain collapses = %d, want exactly 1 (at the hard bound)", st.Memory.ChainCollapses)
	}
	if st.DeltaCompile.ChainDepth != 10 {
		t.Fatalf("chain depth = %d, want 10 (reset at %d, then 10 more links)", st.DeltaCompile.ChainDepth, maxDeltaChain)
	}

	// The collapsed-and-re-extended artifact must still answer
	// correctly for facts on both sides of the collapse boundary.
	ref := New(Config{Workers: 2, DeltaMaxFrac: -1})
	defer ref.Close(context.Background())
	appendChainN(t, ref, "seed", 1)
	for i := 0; i < appends; i++ {
		if _, err := ref.AppendFacts(chainFacts("delta", i)); err != nil {
			t.Fatalf("ref append %d: %v", i, err)
		}
	}
	sources := []string{"seed_n0", "delta_n0", fmt.Sprintf("delta_n%d", maxDeltaChain-2), fmt.Sprintf("delta_n%d", appends-1)}
	compareAnswers(t, "past-cap", svc, ref, sources)
}

// TestCollapseOnBytes checks the byte trigger: with a 1-byte budget
// every delta append collapses, publishing a flat artifact each time.
func TestCollapseOnBytes(t *testing.T) {
	svc := New(Config{Workers: 2, DeltaMaxFrac: 0.99, MaxResidentCompiled: -1, MaxCompiledBytes: 1})
	defer svc.Close(context.Background())

	appendChainN(t, svc, "seed", 1)
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "seed_n0"}); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	const appends = 5
	for i := 0; i < appends; i++ {
		if _, err := svc.AppendFacts(chainFacts("delta", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if depth := svc.Stats().DeltaCompile.ChainDepth; depth != 0 {
			t.Fatalf("append %d: depth %d, want 0 (1-byte budget collapses every append)", i, depth)
		}
	}
	st := svc.Stats()
	if st.Memory.ChainCollapses != appends {
		t.Fatalf("chain collapses = %d, want %d", st.Memory.ChainCollapses, appends)
	}
	if st.DeltaCompile.DeltaCompiles != appends {
		t.Fatalf("delta compiles = %d, want %d", st.DeltaCompile.DeltaCompiles, appends)
	}
}

// TestClockHandClampAfterPurge is the CLOCK-hand regression: a
// generation purge rebuilds the ring over the survivors, so a hand
// parked near the end of the old ring can exceed the new ring's
// length. The clamp must bring it back in range and the next eviction
// must still terminate and evict a real entry.
func TestClockHandClampAfterPurge(t *testing.T) {
	svc := New(Config{Workers: 1, CacheCap: 8})
	defer svc.Close(context.Background())

	appendChainN(t, svc, "seed", 8)
	// Fill the cache with entries at the current generation.
	for i := 0; i < 8; i++ {
		if _, err := svc.Query(context.Background(), QueryRequest{Source: fmt.Sprintf("seed_n%d", i)}); err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
	}
	svc.mu.Lock()
	if len(svc.clock) != 8 {
		svc.mu.Unlock()
		t.Fatalf("ring size = %d, want 8", len(svc.clock))
	}
	// Park the hand near the end of the ring, then purge against a
	// generation nothing matches: the rebuilt ring is empty, and the
	// old hand position is far out of range.
	svc.hand = 7
	svc.invalidateGenerationLocked(svc.generation + 1)
	if len(svc.clock) != 0 || len(svc.cache) != 0 {
		svc.mu.Unlock()
		t.Fatalf("purge left %d ring slots, %d entries", len(svc.clock), len(svc.cache))
	}
	if svc.hand != 0 {
		svc.mu.Unlock()
		t.Fatalf("hand = %d after purge to empty ring, want 0", svc.hand)
	}
	svc.mu.Unlock()

	// Partial survival: re-fill, mark a few entries stale by hand, and
	// purge with the hand past the survivor count.
	for i := 0; i < 8; i++ {
		if _, err := svc.Query(context.Background(), QueryRequest{Source: fmt.Sprintf("seed_n%d", i)}); err != nil {
			t.Fatalf("refill query %d: %v", i, err)
		}
	}
	svc.mu.Lock()
	gen := svc.generation
	stale := 0
	for _, e := range svc.cache {
		if stale == 6 {
			break
		}
		e.generation = gen + 1 // not current: the purge must drop it
		stale++
	}
	svc.hand = 7
	svc.invalidateGenerationLocked(gen)
	if len(svc.clock) != 2 {
		svc.mu.Unlock()
		t.Fatalf("ring size = %d after purge, want 2 survivors", len(svc.clock))
	}
	if svc.hand >= len(svc.clock) {
		svc.mu.Unlock()
		t.Fatalf("hand = %d out of range for ring of %d", svc.hand, len(svc.clock))
	}
	// The next eviction sweep must terminate and take a real entry.
	before := len(svc.cache)
	svc.evictOneLocked()
	if len(svc.cache) != before-1 {
		svc.mu.Unlock()
		t.Fatalf("evict after purge removed %d entries, want 1", before-len(svc.cache))
	}
	svc.mu.Unlock()
}

// TestMemoryMetricsExposition checks the new series reach /metrics
// with the right names and kinds.
func TestMemoryMetricsExposition(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	appendChainN(t, svc, "seed", 2)
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "seed_n0"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	var sb strings.Builder
	if err := svc.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mc_resident_compiled gauge",
		"# TYPE mc_compiled_bytes gauge",
		"# TYPE mc_heap_inuse_bytes gauge",
		"# TYPE mc_chain_collapses_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
	if strings.Contains(out, "mc_heap_inuse_bytes 0\n") {
		t.Fatalf("heap gauge reads 0")
	}
}
