package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/durable"
)

// TestConcurrentAppendCheckpointQuery hammers a durable service with
// concurrent appenders, an explicit checkpointer, and queriers (with
// the automatic snapshot trigger also firing), under -race in CI. It
// asserts the two durability invariants concurrency could break: the
// generation a query reports never regresses, and the state that
// survives a subsequent close/reopen is exactly the committed state.
func TestConcurrentAppendCheckpointQuery(t *testing.T) {
	dir := t.TempDir()
	svc := New(Config{
		Workers: 4,
		// FsyncNever keeps the test fast; crash safety is the recovery
		// matrix's concern, this test is about interleavings.
		Fsync:         durable.FsyncNever,
		SnapshotEvery: 40,
	})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}

	const (
		appenders  = 2
		batchesPer = 40
		queriers   = 3
	)
	var wg sync.WaitGroup
	errc := make(chan error, appenders+queriers+1)

	// Appenders: disjoint chains, so every batch commits something.
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < batchesPer; i++ {
				node := func(j int) string { return fmt.Sprintf("a%d_n%d", a, j) }
				req := FactsRequest{
					L: []core.Pair{{From: node(i), To: node(i + 1)}},
					E: []core.Pair{{From: node(i), To: node(i)}},
					R: []core.Pair{{From: node(i), To: node(i + 1)}},
				}
				if _, err := svc.AppendFacts(req); err != nil {
					errc <- fmt.Errorf("appender %d: %w", a, err)
					return
				}
			}
		}(a)
	}

	// Checkpointer: explicit snapshots racing the automatic ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := svc.Checkpoint(); err != nil {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	// Queriers: per-goroutine generation monotonicity.
	for qi := 0; qi < queriers; qi++ {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			var lastGen uint64
			src := fmt.Sprintf("a%d_n0", qi%appenders)
			for i := 0; i < 60; i++ {
				resp, err := svc.Query(context.Background(), QueryRequest{Source: src})
				if err != nil {
					errc <- fmt.Errorf("querier %d: %w", qi, err)
					return
				}
				if resp.Generation < lastGen {
					errc <- fmt.Errorf("querier %d: generation regressed %d -> %d", qi, lastGen, resp.Generation)
					return
				}
				lastGen = resp.Generation
			}
		}(qi)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	wantGen := svc.Stats().Generation
	wantL, wantE, wantR := svc.Stats().FactsL, svc.Stats().FactsE, svc.Stats().FactsR
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := New(Config{Workers: 2})
	info, err := re.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close(context.Background())
	st := re.Stats()
	if st.Generation != wantGen || st.FactsL != wantL || st.FactsE != wantE || st.FactsR != wantR {
		t.Fatalf("reopened state gen=%d L/E/R=%d/%d/%d, want gen=%d %d/%d/%d (replayed %d)",
			st.Generation, st.FactsL, st.FactsE, st.FactsR, wantGen, wantL, wantE, wantR, info.ReplayedRecords)
	}
	if info.ReplayedRecords != 0 {
		t.Fatalf("clean close still replayed %d records (final checkpoint missing)", info.ReplayedRecords)
	}
}
