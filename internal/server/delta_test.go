package server

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/durable"
)

// chainFacts builds the i-th link of a disjoint chain: one L arc, one
// identity E fact, one R arc — every batch commits something new.
func chainFacts(prefix string, i int) FactsRequest {
	node := func(j int) string { return fmt.Sprintf("%s_n%d", prefix, j) }
	return FactsRequest{
		L: []core.Pair{{From: node(i), To: node(i + 1)}},
		E: []core.Pair{{From: node(i), To: node(i)}},
		R: []core.Pair{{From: node(i), To: node(i + 1)}},
	}
}

// TestDeltaCompileOnAppend is the happy path: once a query has
// compiled the artifact, a small append rolls it forward instead of
// dropping it — the next query pays no compile, the artifact's chain
// depth grows, and the stats block reports the delta build.
func TestDeltaCompileOnAppend(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close(context.Background())
	for i := 0; i < 20; i++ {
		if _, err := svc.AppendFacts(chainFacts("base", i)); err != nil {
			t.Fatalf("seed append %d: %v", i, err)
		}
	}
	// First query compiles cold and publishes the artifact.
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "base_n0"}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if got := svc.fullCompiles.Load(); got != 1 {
		t.Fatalf("full compiles after first query = %d, want 1", got)
	}

	for i := 0; i < 5; i++ {
		if _, err := svc.AppendFacts(chainFacts("delta", i)); err != nil {
			t.Fatalf("delta append %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.DeltaCompile.DeltaCompiles != 5 {
		t.Fatalf("delta compiles = %d, want 5", st.DeltaCompile.DeltaCompiles)
	}
	if st.DeltaCompile.ChainDepth != 5 {
		t.Fatalf("chain depth = %d, want 5", st.DeltaCompile.ChainDepth)
	}
	if st.Compiles != 6 {
		t.Fatalf("total compiles = %d, want 6 (1 full + 5 delta)", st.Compiles)
	}
	if st.DeltaCompile.LastAppend == nil || st.DeltaCompile.LastAppend.Find("delta-compile") == nil {
		t.Fatalf("last-append span missing its delta-compile child: %+v", st.DeltaCompile.LastAppend)
	}

	svc.mu.RLock()
	comp, gen := svc.compiled, svc.generation
	l, e, r := svc.l, svc.e, svc.r
	svc.mu.RUnlock()
	if comp == nil || comp.Generation != gen {
		t.Fatalf("extended artifact not published for generation %d: %+v", gen, comp)
	}
	if err := comp.StructuralEqual(core.Compile(l, e, r)); err != nil {
		t.Fatalf("rolled artifact diverges from cold compile: %v", err)
	}

	// The next query must hit the rolled artifact, not recompile.
	resp, err := svc.Query(context.Background(), QueryRequest{Source: "delta_n0"})
	if err != nil {
		t.Fatalf("post-delta query: %v", err)
	}
	if resp.Generation != gen {
		t.Fatalf("query generation %d, want %d", resp.Generation, gen)
	}
	if got := svc.fullCompiles.Load(); got != 1 {
		t.Fatalf("full compiles after rolled-artifact query = %d, want 1", got)
	}
}

// TestDeltaFallback pins the two skip conditions: a delta above
// DeltaMaxFrac drops the artifact (lazy recompile, fallback counted),
// and a negative DeltaMaxFrac disables the path entirely (PR-5
// behavior, no fallback counted).
func TestDeltaFallback(t *testing.T) {
	t.Run("threshold", func(t *testing.T) {
		svc := New(Config{Workers: 2, DeltaMaxFrac: 0.05})
		defer svc.Close(context.Background())
		for i := 0; i < 10; i++ {
			if _, err := svc.AppendFacts(chainFacts("base", i)); err != nil {
				t.Fatalf("seed append: %v", err)
			}
		}
		if _, err := svc.Query(context.Background(), QueryRequest{Source: "base_n0"}); err != nil {
			t.Fatalf("query: %v", err)
		}
		// 30 facts into a 30-fact database: far above 5%.
		var req FactsRequest
		for i := 0; i < 10; i++ {
			f := chainFacts("bulk", i)
			req.L = append(req.L, f.L...)
			req.E = append(req.E, f.E...)
			req.R = append(req.R, f.R...)
		}
		if _, err := svc.AppendFacts(req); err != nil {
			t.Fatalf("bulk append: %v", err)
		}
		st := svc.Stats()
		if st.DeltaCompile.Fallbacks != 1 || st.DeltaCompile.DeltaCompiles != 0 {
			t.Fatalf("fallbacks = %d, delta compiles = %d; want 1, 0", st.DeltaCompile.Fallbacks, st.DeltaCompile.DeltaCompiles)
		}
		svc.mu.RLock()
		comp := svc.compiled
		svc.mu.RUnlock()
		if comp != nil {
			t.Fatalf("artifact should have been dropped on fallback, got generation %d", comp.Generation)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		svc := New(Config{Workers: 2, DeltaMaxFrac: -1})
		defer svc.Close(context.Background())
		for i := 0; i < 10; i++ {
			if _, err := svc.AppendFacts(chainFacts("base", i)); err != nil {
				t.Fatalf("seed append: %v", err)
			}
		}
		if _, err := svc.Query(context.Background(), QueryRequest{Source: "base_n0"}); err != nil {
			t.Fatalf("query: %v", err)
		}
		if _, err := svc.AppendFacts(chainFacts("delta", 0)); err != nil {
			t.Fatalf("delta append: %v", err)
		}
		st := svc.Stats()
		if st.DeltaCompile.DeltaCompiles != 0 || st.DeltaCompile.Fallbacks != 0 {
			t.Fatalf("disabled path ran: delta=%d fallbacks=%d", st.DeltaCompile.DeltaCompiles, st.DeltaCompile.Fallbacks)
		}
		svc.mu.RLock()
		comp := svc.compiled
		svc.mu.RUnlock()
		if comp != nil {
			t.Fatalf("artifact should stay dropped with delta disabled")
		}
	})
}

// TestFirstAppendAfterRecovery covers the recovered-sets path: after
// Open the membership sets are rebuilt off the append lock (warmed in
// the background), and the first appends still dedupe exactly — a
// re-POST of recovered facts is a generation-preserving no-op.
func TestFirstAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	svc := New(Config{Workers: 2, Fsync: durable.FsyncNever})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 25; i++ {
		if _, err := svc.AppendFacts(chainFacts("base", i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	svc = New(Config{Workers: 2, Fsync: durable.FsyncNever})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc.Close(context.Background())
	gen := svc.Stats().Generation

	// Re-POST a recovered fact: must dedupe against the rebuilt sets
	// and leave the generation alone.
	resp, err := svc.AppendFacts(chainFacts("base", 3))
	if err != nil {
		t.Fatalf("idempotent re-append: %v", err)
	}
	if resp.Generation != gen || resp.AddedL+resp.AddedE+resp.AddedR != 0 {
		t.Fatalf("re-append changed state: gen %d->%d, added %d/%d/%d",
			gen, resp.Generation, resp.AddedL, resp.AddedE, resp.AddedR)
	}
	// A genuinely new fact still commits.
	resp, err = svc.AppendFacts(chainFacts("fresh", 0))
	if err != nil {
		t.Fatalf("fresh append: %v", err)
	}
	if resp.Generation != gen+1 || resp.AddedL != 1 {
		t.Fatalf("fresh append: gen %d (want %d), addedL %d", resp.Generation, gen+1, resp.AddedL)
	}
}

// TestConcurrentAppendExtendQueryCheckpoint is the -race suite for
// the rolling artifact: concurrent appenders keep extending the
// compiled artifact while queriers solve on whatever generation they
// snapshot and a checkpointer persists it mid-roll. At the end the
// published artifact must be structurally equivalent to a cold
// compile of the final database, and a reopened service must answer
// identically.
func TestConcurrentAppendExtendQueryCheckpoint(t *testing.T) {
	dir := t.TempDir()
	svc := New(Config{
		Workers:       4,
		Fsync:         durable.FsyncNever,
		SnapshotEvery: 50,
	})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Seed and compile so the appenders extend from the start.
	for i := 0; i < 10; i++ {
		if _, err := svc.AppendFacts(chainFacts("seed", i)); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "seed_n0"}); err != nil {
		t.Fatalf("seed query: %v", err)
	}

	const (
		appenders  = 2
		batchesPer = 50
		queriers   = 3
	)
	var wg sync.WaitGroup
	errc := make(chan error, appenders+queriers+1)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < batchesPer; i++ {
				if _, err := svc.AppendFacts(chainFacts(fmt.Sprintf("a%d", a), i)); err != nil {
					errc <- fmt.Errorf("appender %d: %w", a, err)
					return
				}
			}
		}(a)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				src := fmt.Sprintf("a%d_n%d", i%appenders, i%batchesPer)
				if _, err := svc.Query(context.Background(), QueryRequest{Source: src}); err != nil {
					errc <- fmt.Errorf("querier %d: %w", q, err)
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := svc.Checkpoint(); err != nil {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	svc.mu.RLock()
	comp, gen := svc.compiled, svc.generation
	l, e, r := svc.l, svc.e, svc.r
	svc.mu.RUnlock()
	cold := core.Compile(l, e, r)
	if comp != nil {
		if comp.Generation != gen {
			t.Fatalf("published artifact generation %d != %d", comp.Generation, gen)
		}
		if err := comp.StructuralEqual(cold); err != nil {
			t.Fatalf("final artifact diverges from cold compile: %v", err)
		}
	}
	want, err := cold.Solve("a0_n0", core.Multiple, core.Integrated, core.Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	resp, err := svc.Query(context.Background(), QueryRequest{Source: "a0_n0", Strategy: "multiple", Mode: "integrated"})
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	if !reflect.DeepEqual(resp.Answers, want.Answers) {
		t.Fatalf("served answers diverge: %v != %v", resp.Answers, want.Answers)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The snapshot written mid-roll (possibly of an extended artifact)
	// must recover to the same answers.
	svc2 := New(Config{Workers: 2, Fsync: durable.FsyncNever})
	if _, err := svc2.Open(dir); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close(context.Background())
	resp2, err := svc2.Query(context.Background(), QueryRequest{Source: "a0_n0", Strategy: "multiple", Mode: "integrated"})
	if err != nil {
		t.Fatalf("recovered query: %v", err)
	}
	if !reflect.DeepEqual(resp2.Answers, want.Answers) {
		t.Fatalf("recovered answers diverge: %v != %v", resp2.Answers, want.Answers)
	}
}
