package server

import (
	"errors"
	"fmt"
	"time"

	"magiccounting/internal/durable"
	"magiccounting/internal/obs"
)

// Open attaches a durable store at dir to an empty Service: the newest
// valid snapshot is loaded, the WAL tail replayed, and every
// subsequent AppendFacts is write-ahead logged per the configured
// fsync policy. Must run before the service takes traffic (the hot
// path reads s.dur without a lock on that basis). The whole recovery
// runs under a "recover" span (see RecoverySpan) whose
// "load-snapshot" and "replay" children carry sizes and durations.
//
// A directory written by an incompatible format version fails with
// durable.ErrIncompatibleVersion rather than misparsing.
func (s *Service) Open(dir string) (*durable.RecoveryInfo, error) {
	if s.dur != nil {
		return nil, errors.New("server: durable store already open")
	}
	s.mu.RLock()
	empty := s.generation == 0 && len(s.l)+len(s.e)+len(s.r) == 0
	s.mu.RUnlock()
	if !empty {
		return nil, errors.New("server: Open requires an empty service (facts already appended)")
	}
	opts := durable.Options{
		Fsync:         s.cfg.Fsync,
		FsyncInterval: s.cfg.FsyncInterval,
		SegmentBytes:  s.cfg.WALSegmentBytes,
		OnFsync:       func(d time.Duration) { s.fsyncHist.observe(d.Seconds()) },
	}
	tr := obs.New("recover", 0)
	st, info, err := durable.Open(dir, opts, tr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.dur = st
	s.l, s.e, s.r = info.L, info.E, info.R
	s.generation = info.Generation
	// The snapshot's artifact is current only when no tail was
	// replayed past it (durable.Open already nils it otherwise); with
	// it in place the first query skips the compile entirely. A
	// sharded service never adopts the snapshot's monolithic artifact
	// — its first query compiles the sharded form from the recovered
	// facts instead.
	if !s.shardMode() {
		s.compiled = info.Compiled
	}
	// Drop the empty sets New built: they must be rebuilt from the
	// recovered slices (see ensureSets).
	s.lSet, s.eSet, s.rSet = nil, nil, nil
	s.mu.Unlock()
	s.recoveryReplayed.Store(int64(info.ReplayedRecords))
	s.recoverSpan = tr.Finish(0)
	// Warm the membership sets off the request path: a large recovered
	// database pays the O(n) build here, in the background, instead of
	// inside the first append (ensureSets serializes the two, so an
	// append landing mid-build simply waits for this one).
	go s.ensureSets()
	return info, nil
}

// RecoverySpan returns the finished "recover" span tree from Open
// (nil on a memory-only service). Immutable once Open returns.
func (s *Service) RecoverySpan() *obs.Span { return s.recoverSpan }

// Checkpoint writes a snapshot of the current generation and
// garbage-collects the WAL behind it. Safe to call at any time on a
// durable service (concurrent checkpoints serialize; a generation
// already snapshotted is a no-op) and a no-op on a memory-only one.
//
// The ordering makes the snapshot self-consistently recoverable under
// concurrent appends: the WAL is rotated first, so every record of
// the soon-to-be-covered generations lives in a sealed segment below
// the returned floor; the database view is captured after, so its
// generation is at least that of any such record; and commits that
// land mid-checkpoint are in the new segment, above the floor, where
// recovery replays them on top of this snapshot.
func (s *Service) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.mu.RLock()
	gen := s.generation
	s.mu.RUnlock()
	if last, ok := s.dur.LastSnapshotGeneration(); ok && last == gen {
		return nil // nothing committed since the last snapshot
	}

	floor, err := s.dur.Rotate()
	if err != nil {
		return err
	}
	s.mu.RLock()
	l, e, r := s.l, s.e, s.r
	gen = s.generation
	comp := s.compiled
	s.mu.RUnlock()
	// Snapshot the compiled artifact too (building it if no query has
	// yet): recovery then starts warm, and the build is shared with
	// the serving path via the usual publish. A sharded service
	// snapshots facts only (nil artifact — the snapshot format is
	// monolithic) and recompiles its shards on the first query after
	// recovery.
	if s.shardMode() {
		comp = nil
	} else {
		comp = s.compiledFor(comp, gen, l, e, r, nil)
	}
	start := time.Now()
	err = s.dur.WriteSnapshot(durable.Snapshot{Gen: gen, L: l, E: e, R: r, Compiled: comp}, floor)
	s.snapHist.observe(time.Since(start).Seconds())
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	s.snapshots.Add(1)
	s.sinceSnap.Store(0)
	return nil
}

// maybeSnapshot runs the automatic-snapshot policy after a commit of
// added facts: once SnapshotEvery facts have accumulated since the
// last snapshot, one background Checkpoint is kicked off (never more
// than one at a time — a slow snapshot must not pile up goroutines).
func (s *Service) maybeSnapshot(added int) {
	if s.dur == nil || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.sinceSnap.Add(int64(added)) < int64(s.cfg.SnapshotEvery) {
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.snapshotting.Store(false)
		if s.closed.Load() {
			return // shutdown owns the final checkpoint
		}
		if err := s.Checkpoint(); err != nil {
			s.snapFailures.Add(1)
		}
	}()
}
