package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"magiccounting/internal/core"
)

func postJSON(t *testing.T, client *http.Client, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return v
}

// TestEndToEnd is the serving-layer acceptance flow: load facts, see
// the second identical query hit the cache with zero new retrievals,
// see a facts append invalidate it, and see a tight deadline cancel a
// heavy query promptly.
func TestEndToEnd(t *testing.T) {
	ts := httptest.NewServer(NewHandler(New(Config{Workers: 4})))
	defer ts.Close()
	c := ts.Client()

	// Same-generation chain ann -> bob -> cat, plus a cousin branch.
	resp, body := postJSON(t, c, ts.URL+"/v1/facts",
		`{"parent": [{"from":"ann","to":"bob"}, {"from":"bob","to":"cat"}, {"from":"amy","to":"bob"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts: status %d: %s", resp.StatusCode, body)
	}
	facts := decode[FactsResponse](t, body)
	if facts.Generation != 1 {
		t.Fatalf("generation = %d, want 1", facts.Generation)
	}

	// First query: a miss that runs a solver.
	resp, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	first := decode[QueryResponse](t, body)
	if first.Cached {
		t.Fatalf("first query reported a cache hit: %+v", first)
	}
	if first.NewRetrievals == 0 || first.NewRetrievals != first.Stats.Retrievals {
		t.Fatalf("first query retrievals: new=%d stats=%d", first.NewRetrievals, first.Stats.Retrievals)
	}
	if !first.Auto || first.Regime == "" {
		t.Fatalf("expected auto selection with a regime, got %+v", first)
	}
	// ann and amy share a generation (both parents of bob via the SG
	// identity encoding).
	want := []string{"amy", "ann"}
	if fmt.Sprint(first.Answers) != fmt.Sprint(want) {
		t.Fatalf("answers = %v, want %v", first.Answers, want)
	}

	// Second identical query: cache hit, zero new retrievals.
	_, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann"}`)
	second := decode[QueryResponse](t, body)
	if !second.Cached || second.NewRetrievals != 0 {
		t.Fatalf("second query: cached=%v new_retrievals=%d, want hit with 0", second.Cached, second.NewRetrievals)
	}
	if fmt.Sprint(second.Answers) != fmt.Sprint(first.Answers) {
		t.Fatalf("cached answers %v != original %v", second.Answers, first.Answers)
	}

	// A facts append bumps the generation; the same query misses and
	// sees the new data.
	postJSON(t, c, ts.URL+"/v1/facts", `{"parent": [{"from":"zoe","to":"bob"}]}`)
	_, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann"}`)
	third := decode[QueryResponse](t, body)
	if third.Cached {
		t.Fatalf("query after append still cached: %+v", third)
	}
	if third.Generation != 2 {
		t.Fatalf("generation = %d, want 2", third.Generation)
	}
	want = []string{"amy", "ann", "zoe"}
	if fmt.Sprint(third.Answers) != fmt.Sprint(want) {
		t.Fatalf("answers after append = %v, want %v", third.Answers, want)
	}

	// Explicit strategy and mode are honored verbatim.
	_, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann", "strategy": "multiple", "mode": "independent"}`)
	explicit := decode[QueryResponse](t, body)
	if explicit.Auto || explicit.Strategy != "multiple" || explicit.Mode != "independent" {
		t.Fatalf("explicit method not honored: %+v", explicit)
	}

	// Stats and metrics reflect the traffic.
	resp, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": ""}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty source: status %d, want 400", resp.StatusCode)
	}
	getResp, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := func() Stats {
		defer getResp.Body.Close()
		var st Stats
		if err := json.NewDecoder(getResp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if stats.CacheHits != 1 || stats.CacheMisses != 3 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/3", stats.CacheHits, stats.CacheMisses)
	}
	// The empty-source 400 is a bad request, not a query error: it
	// lands in its own counter and stays out of the latency window.
	if stats.QueryErrors != 0 || stats.BadRequests != 1 || stats.Generation != 2 {
		t.Fatalf("stats errors/bad/generation = %d/%d/%d, want 0/1/2",
			stats.QueryErrors, stats.BadRequests, stats.Generation)
	}
	health, err := c.Get(ts.URL + "/healthz")
	if err != nil || health.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, health)
	}
	health.Body.Close()
	metrics, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(metrics.Body)
	metrics.Body.Close()
	for _, want := range []string{"mc_queries_total", "mc_cache_hits_total 1", "mc_generation 2", `mc_query_latency_seconds{quantile="0.99"}`} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, mbuf.String())
		}
	}
}

// TestQueryTimeoutCancelsMidFixpoint loads a cyclic graph large
// enough that even the auto-selected recurring/SCC method needs
// hundreds of thousands of retrievals (well over 100ms of wall time)
// and asserts a 1ms deadline aborts
// the solve with a deadline error long before completion.
func TestQueryTimeoutCancelsMidFixpoint(t *testing.T) {
	s := New(Config{Workers: 2})
	var facts FactsRequest
	const n = 30000
	for i := 0; i < n; i++ {
		facts.Parent = append(facts.Parent, core.Pair{
			From: fmt.Sprintf("v%d", i),
			To:   fmt.Sprintf("v%d", (i+1)%n),
		})
	}
	if _, err := s.AppendFacts(facts); err != nil {
		t.Fatal(err)
	}
	started := time.Now()
	_, err := s.Query(context.Background(), QueryRequest{Source: "v0", TimeoutM: 1})
	elapsed := time.Since(started)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Prompt: orders of magnitude under the seconds a full run takes.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if st := s.Stats(); st.QueryTimeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.QueryTimeouts)
	}

	// The HTTP layer maps the overrun to 504.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "v0", "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestConcurrentQueriesAndAppends hammers queries against fact
// appends. Each append adds exactly one E fact reaching a fresh
// answer, so at generation g the answer set of source "a" has exactly
// g members: any response where len(Answers) != Generation is a stale
// cache hit (or a torn snapshot), and the race detector checks the
// copy-on-write discipline underneath.
func TestConcurrentQueriesAndAppends(t *testing.T) {
	s := New(Config{Workers: 8})
	const appends = 60
	var wg sync.WaitGroup
	var stop atomic.Bool
	var hits atomic.Int64

	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 1; g <= appends; g++ {
			_, err := s.AppendFacts(FactsRequest{E: []core.Pair{{From: "a", To: fmt.Sprintf("y%03d", g)}}})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			strategies := []string{"", "basic", "multiple", "recurring"}
			for i := 0; !stop.Load(); i++ {
				resp, err := s.Query(context.Background(), QueryRequest{
					Source:   "a",
					Strategy: strategies[(w+i)%len(strategies)],
				})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(resp.Answers) != int(resp.Generation) {
					t.Errorf("stale result: %d answers at generation %d (cached=%v)",
						len(resp.Answers), resp.Generation, resp.Cached)
					return
				}
				if resp.Cached {
					hits.Add(1)
					if resp.NewRetrievals != 0 {
						t.Errorf("cache hit with %d new retrievals", resp.NewRetrievals)
						return
					}
				}
			}
		}(w)
	}
	// Let queries overlap the append storm, then wind down.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Quiesced: the same query twice must now hit the final generation.
	r1, err := s.Query(context.Background(), QueryRequest{Source: "a"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query(context.Background(), QueryRequest{Source: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Generation != appends || len(r2.Answers) != appends || !r2.Cached {
		t.Fatalf("after quiesce: gen=%d answers=%d cached=%v, want %d/%d/true",
			r1.Generation, len(r2.Answers), r2.Cached, appends, appends)
	}
}

func TestParseErrors(t *testing.T) {
	s := New(Config{})
	cases := []QueryRequest{
		{Source: "a", Strategy: "bogus"},
		{Source: "a", Strategy: "basic", Mode: "bogus"},
		{Source: "a", Mode: "integrated"}, // mode without strategy
		{Source: ""},
	}
	for _, req := range cases {
		if _, err := s.Query(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Query(%+v) err = %v, want ErrBadRequest", req, err)
		}
	}
	if _, err := s.AppendFacts(FactsRequest{L: []core.Pair{{From: "a"}}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("AppendFacts with empty endpoint: err = %v, want ErrBadRequest", err)
	}
}

func TestCacheEviction(t *testing.T) {
	s := New(Config{CacheCap: 2})
	if _, err := s.AppendFacts(FactsRequest{E: []core.Pair{{From: "a", To: "x"}, {From: "b", To: "y"}, {From: "c", To: "z"}}}); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"a", "b", "c"} {
		if _, err := s.Query(context.Background(), QueryRequest{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheEntries > 2 {
		t.Fatalf("cache entries = %d, want <= 2", st.CacheEntries)
	}
}

func TestLatencyRing(t *testing.T) {
	r := newLatencyRing(4)
	if got := r.percentile(0.5); got != 0 {
		t.Fatalf("empty ring p50 = %v", got)
	}
	for _, d := range []time.Duration{40, 10, 30, 20, 50} { // 40 ages out
		r.record(d)
	}
	if got := r.percentile(0.5); got != 20 && got != 30 {
		t.Fatalf("p50 = %v, want 20 or 30", got)
	}
	if got := r.percentile(0.99); got != 50 {
		t.Fatalf("p99 = %v, want 50", got)
	}
}
