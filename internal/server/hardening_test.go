package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"magiccounting/internal/core"
	"magiccounting/internal/oracle"
	"magiccounting/internal/workload"
)

// TestAppendFactsDedupe pins the set semantics of the database:
// appending pairs already present (or repeated within one request)
// adds nothing, keeps the generation unchanged, and reports accurate
// Added counts for mixed requests.
func TestAppendFactsDedupe(t *testing.T) {
	s := New(Config{})
	first, err := s.AppendFacts(FactsRequest{
		L: []core.Pair{{From: "a", To: "b"}, {From: "a", To: "b"}}, // intra-request dup
		E: []core.Pair{{From: "b", To: "x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation != 1 || first.AddedL != 1 || first.AddedE != 1 || first.AddedR != 0 {
		t.Fatalf("first append = %+v, want generation 1, added 1/1/0", first)
	}

	// Re-POST of known facts: a full no-op, generation unchanged.
	again, err := s.AppendFacts(FactsRequest{
		L: []core.Pair{{From: "a", To: "b"}},
		E: []core.Pair{{From: "b", To: "x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation != 1 || again.AddedL != 0 || again.AddedE != 0 || again.AddedR != 0 {
		t.Fatalf("idempotent re-append = %+v, want generation 1, added 0/0/0", again)
	}

	// Mixed request: only the genuinely new pair counts and bumps.
	mixed, err := s.AppendFacts(FactsRequest{
		L: []core.Pair{{From: "a", To: "b"}, {From: "b", To: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Generation != 2 || mixed.AddedL != 1 {
		t.Fatalf("mixed append = %+v, want generation 2, added_l 1", mixed)
	}

	// Parent expansion dedupes too: the shared endpoint bob gets one
	// identity E pair however many parent pairs mention it, and a
	// re-POST of the same parent pairs is again a no-op.
	parent := FactsRequest{Parent: []core.Pair{{From: "ann", To: "bob"}, {From: "bob", To: "cat"}}}
	pr, err := s.AppendFacts(parent)
	if err != nil {
		t.Fatal(err)
	}
	if pr.AddedE != 3 { // ann, bob, cat — not 4
		t.Fatalf("parent expansion added_e = %d, want 3", pr.AddedE)
	}
	pr2, err := s.AppendFacts(parent)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.Generation != pr.Generation || pr2.AddedL+pr2.AddedE+pr2.AddedR != 0 {
		t.Fatalf("parent re-append = %+v, want no-op at generation %d", pr2, pr.Generation)
	}
}

// TestIdempotentRepostPreservesCache is the serving-path regression
// the oracle sweep motivated: a producer re-POSTing facts the service
// already holds must not nuke the result cache.
func TestIdempotentRepostPreservesCache(t *testing.T) {
	ts := httptest.NewServer(NewHandler(New(Config{Workers: 2})))
	defer ts.Close()
	c := ts.Client()

	facts := `{"parent": [{"from":"ann","to":"bob"}, {"from":"bob","to":"cat"}]}`
	if resp, body := postJSON(t, c, ts.URL+"/v1/facts", facts); resp.StatusCode != http.StatusOK {
		t.Fatalf("facts: status %d: %s", resp.StatusCode, body)
	}
	_, body := postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann"}`)
	if q := decode[QueryResponse](t, body); q.Cached {
		t.Fatalf("first query cached: %+v", q)
	}

	// Identical re-POST: generation must hold and the cache survive.
	resp, body := postJSON(t, c, ts.URL+"/v1/facts", facts)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-POST: status %d: %s", resp.StatusCode, body)
	}
	if fr := decode[FactsResponse](t, body); fr.Generation != 1 {
		t.Fatalf("re-POST generation = %d, want 1", fr.Generation)
	}
	_, body = postJSON(t, c, ts.URL+"/v1/query", `{"source": "ann"}`)
	if q := decode[QueryResponse](t, body); !q.Cached || q.NewRetrievals != 0 {
		t.Fatalf("query after idempotent re-POST missed the cache: %+v", q)
	}
}

// TestAnswersMarshalAsEmptyArray asserts the wire format at the HTTP
// layer: a query with no answers returns "answers": [], never null.
func TestAnswersMarshalAsEmptyArray(t *testing.T) {
	ts := httptest.NewServer(NewHandler(New(Config{Workers: 2})))
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "nobody"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte("null")) {
		t.Fatalf("response contains null: %s", body)
	}
	if !bytes.Contains(body, []byte(`"answers": []`)) {
		t.Fatalf(`response missing "answers": []: %s`, body)
	}
	// The cached path serves the same entry; it must normalize too.
	_, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "nobody"}`)
	if !bytes.Contains(body, []byte(`"answers": []`)) {
		t.Fatalf(`cached response missing "answers": []: %s`, body)
	}
	if q := decode[QueryResponse](t, body); !q.Cached {
		t.Fatalf("second query not cached: %+v", q)
	}
}

// TestRequestBodyTooLarge asserts the body cap: a request over
// maxBodyBytes gets 413, not an unbounded buffer in the decoder.
func TestRequestBodyTooLarge(t *testing.T) {
	ts := httptest.NewServer(NewHandler(New(Config{Workers: 2})))
	defer ts.Close()

	huge := `{"source": "` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %.200s", resp.StatusCode, body)
	}
}

// TestTrailingJSONRejected asserts one-value framing: concatenated
// JSON documents are a malformed request, not silently dropped data.
func TestTrailingJSONRejected(t *testing.T) {
	ts := httptest.NewServer(NewHandler(New(Config{Workers: 2})))
	defer ts.Close()

	for _, body := range []string{
		`{"source": "a"}{"source": "b"}`,
		`{"source": "a"} 42`,
		`{"source": "a"} garbage`,
	} {
		resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400: %s", body, resp.StatusCode, out)
		}
	}
	// A single value with trailing whitespace stays valid.
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "a"}`+"\n  \n")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trailing whitespace rejected: status %d: %s", resp.StatusCode, out)
	}
}

// TestLatencyRingEdgeCases covers the percentile window states the
// basic test skips: single sample, exactly full, and wrapped-around.
func TestLatencyRingEdgeCases(t *testing.T) {
	// Single sample: every percentile reads it.
	r := newLatencyRing(4)
	r.record(7)
	for _, p := range []float64{0.0, 0.5, 0.99, 1.0} {
		if got := r.percentile(p); got != 7 {
			t.Errorf("single sample p%.2f = %v, want 7", p, got)
		}
	}

	// Exactly full window, no wrap: all samples visible.
	r = newLatencyRing(4)
	for _, d := range []time.Duration{40, 10, 30, 20} {
		r.record(d)
	}
	if got := r.percentile(1.0); got != 40 {
		t.Errorf("full window p100 = %v, want 40", got)
	}
	if got := r.percentile(0.5); got != 20 {
		t.Errorf("full window p50 = %v, want 20 (nearest rank of 10,20,30,40)", got)
	}

	// Wrap-around: the overwritten oldest sample must not resurface.
	r = newLatencyRing(2)
	for _, d := range []time.Duration{100, 1, 2} { // 100 ages out
		r.record(d)
	}
	if got := r.percentile(1.0); got != 2 {
		t.Errorf("wrapped p100 = %v, want 2 (100 aged out)", got)
	}
	if got := r.percentile(0.0); got != 1 {
		t.Errorf("wrapped p0 = %v, want 1", got)
	}
}

// TestWriteErrorStatusMapping pins the error-to-status table,
// including the 499 client-disconnect convention.
func TestWriteErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("%w: empty source", ErrBadRequest), http.StatusBadRequest},
		{fmt.Errorf("solve: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("solve: %w", context.Canceled), 499},
		{errors.New("unexpected"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
		if got := decode[errorBody](t, rec.Body.Bytes()); got.Error == "" {
			t.Errorf("writeError(%v) wrote empty error body", tc.err)
		}
	}
}

// FuzzServiceQuery drives the whole serving path — append, solve
// every method, cache — against the oracle on generator-derived
// instances, and asserts the idempotent-re-POST invariant on each.
func FuzzServiceQuery(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(1))
	f.Add(uint8(1), int64(2), uint8(1))
	f.Add(uint8(2), int64(3), uint8(2))
	f.Add(uint8(3), int64(4), uint8(2))
	f.Add(uint8(200), int64(5), uint8(0)) // adversarial selector
	f.Fuzz(func(t *testing.T, kindByte uint8, seed int64, size uint8) {
		var q core.Query
		if kindByte >= 128 {
			q = workload.Adversarial(int(kindByte-128), seed)
		} else {
			q = workload.RandomRegime(workload.RegimeKind(kindByte%4), seed, 1+int(size%3))
		}
		l, e, r, src := oracle.FromQuery(q)
		want := oracle.AnswersMemo(l, e, r, src)

		s := New(Config{Workers: 2})
		ctx := context.Background()
		req := FactsRequest{L: q.L, E: q.E, R: q.R}
		first, err := s.AppendFacts(req)
		if err != nil {
			t.Fatalf("append: %v", err)
		}

		check := func(label string, resp *QueryResponse) {
			if resp.Answers == nil {
				t.Fatalf("%s: nil Answers", label)
			}
			if len(resp.Answers) != len(want) {
				t.Fatalf("%s: answers %v, oracle wants %v", label, resp.Answers, want)
			}
			for i := range want {
				if resp.Answers[i] != want[i] {
					t.Fatalf("%s: answers %v, oracle wants %v", label, resp.Answers, want)
				}
			}
		}
		auto, err := s.Query(ctx, QueryRequest{Source: q.Source})
		if err != nil {
			t.Fatalf("auto query: %v", err)
		}
		check("auto", auto)
		for _, strat := range []string{"basic", "single", "multiple", "recurring"} {
			for _, mode := range []string{"independent", "integrated"} {
				resp, err := s.Query(ctx, QueryRequest{Source: q.Source, Strategy: strat, Mode: mode})
				if err != nil {
					t.Fatalf("%s/%s: %v", strat, mode, err)
				}
				check(strat+"/"+mode, resp)
			}
		}

		// Idempotent re-POST: same facts, same generation, cache intact.
		again, err := s.AppendFacts(req)
		if err != nil {
			t.Fatalf("re-append: %v", err)
		}
		if again.Generation != first.Generation {
			t.Fatalf("re-append bumped generation %d -> %d", first.Generation, again.Generation)
		}
		cached, err := s.Query(ctx, QueryRequest{Source: q.Source})
		if err != nil {
			t.Fatalf("cached query: %v", err)
		}
		if !cached.Cached || cached.NewRetrievals != 0 {
			t.Fatalf("query after idempotent re-POST missed the cache: %+v", cached)
		}
		check("cached", cached)
	})
}
