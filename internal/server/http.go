package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// NewHandler exposes the service as a JSON HTTP API:
//
//	POST /v1/query        {"source": "a", "strategy": "...", "mode": "...", "timeout_ms": 100}
//	POST /v1/query/batch  {"sources": ["a", "b"], "strategy": "...", "mode": "...", "timeout_ms": 100}
//	POST /v1/facts        {"l": [...], "e": [...], "r": [...], "parent": [...]} (pairs are {"from": "x", "to": "y"})
//	GET  /v1/stats        service counters as JSON
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus text exposition
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		resp, err := s.Query(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		resp, err := s.QueryBatch(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/facts", func(w http.ResponseWriter, r *http.Request) {
		var req FactsRequest
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		resp, err := s.AppendFacts(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies. Fact loads are the largest
// legitimate requests; 8 MiB holds hundreds of thousands of pairs,
// while an unbounded body would let one client buffer arbitrary
// memory into the decoder.
const maxBodyBytes = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return err
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return err
	}
	// Exactly one JSON value per request: trailing content means the
	// client framed the request wrong, and silently ignoring it would
	// drop data the client believed it sent.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		err = errors.New("trailing data after JSON body")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors to HTTP statuses: bad requests to
// 400, a closed (shutting-down) service to 503, deadline overruns to
// 504, client disconnects to 499 (nginx's convention), everything
// else to 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}
