package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"magiccounting/internal/core"
)

// genealogyFacts loads the example genealogy shape: gens generations
// of width-wide same-generation families plus one corruption back arc
// making the instance cyclic (so auto selection picks recurring).
func genealogyFacts(t *testing.T, s *Service, gens, width int) {
	t.Helper()
	name := func(g, i int) string { return fmt.Sprintf("p%d_%d", g, i) }
	var req FactsRequest
	for g := 0; g < gens; g++ {
		for i := 0; i < width; i++ {
			req.Parent = append(req.Parent, core.Pair{From: name(g, i), To: name(g+1, (i+g)%width)})
		}
	}
	req.Parent = append(req.Parent, core.Pair{From: name(4, 0), To: name(1, 0)})
	if _, err := s.AppendFacts(req); err != nil {
		t.Fatal(err)
	}
}

// TestQueryTraceShape is the serving-layer acceptance invariant: a
// traced query returns a span tree whose per-stage retrievals sum
// exactly to the meter the response reports, untraced queries carry
// no tree, and a traced cache hit reports a zero-retrieval tree.
func TestQueryTraceShape(t *testing.T) {
	s := New(Config{Workers: 2})
	genealogyFacts(t, s, 6, 4)

	plain, err := s.Query(context.Background(), QueryRequest{Source: "p0_0"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced query returned a trace: %+v", plain.Trace)
	}

	genealogyFacts(t, s, 7, 4) // bump the generation so the next query misses
	traced, err := s.Query(context.Background(), QueryRequest{Source: "p0_0", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	root := traced.Trace
	if root == nil {
		t.Fatal("traced query returned no trace")
	}
	if traced.Cached {
		t.Fatalf("expected a miss after the generation bump: %+v", traced)
	}
	if got, want := root.SumRetrievals(), traced.Stats.Retrievals; got != want {
		t.Errorf("span retrievals sum to %d, Result meter says %d", got, want)
	}
	if root.Total != traced.NewRetrievals {
		t.Errorf("root total %d != new_retrievals %d", root.Total, traced.NewRetrievals)
	}
	for _, want := range []string{"validate", "acquire", "cache", "solve", "step2/integrated"} {
		if root.Find(want) == nil {
			t.Errorf("trace missing %q span", want)
		}
	}
	if traced.Auto {
		if root.Find("classify/"+traced.Regime) == nil {
			t.Errorf("auto trace missing classify span for regime %q", traced.Regime)
		}
	}
	if cs := root.Find("cache"); cs == nil || cs.Attrs["hit"] != 0 {
		t.Errorf("cache span should record a miss: %+v", cs)
	}

	// Traced hit: same query again, spans but zero retrievals.
	hit, err := s.Query(context.Background(), QueryRequest{Source: "p0_0", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Trace == nil {
		t.Fatalf("expected traced cache hit, got cached=%v trace=%v", hit.Cached, hit.Trace)
	}
	if hit.Trace.Total != 0 || hit.Trace.SumRetrievals() != 0 {
		t.Errorf("cache-hit trace charged retrievals: total=%d", hit.Trace.Total)
	}
	if cs := hit.Trace.Find("cache"); cs == nil || cs.Attrs["hit"] != 1 {
		t.Errorf("hit span should record hit=1: %+v", cs)
	}
	if st := s.Stats(); st.TracedQueries != 2 {
		t.Errorf("traced_queries = %d, want 2", st.TracedQueries)
	}

	// Through HTTP: the tree marshals and the sum survives the trip.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	genealogyFacts(t, s, 8, 4)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "p0_0", "trace": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query over HTTP: status %d: %s", resp.StatusCode, body)
	}
	wire := decode[QueryResponse](t, body)
	if wire.Trace == nil {
		t.Fatalf("no trace over HTTP: %s", body)
	}
	if got, want := wire.Trace.SumRetrievals(), wire.Stats.Retrievals; got != want {
		t.Errorf("wire trace sums to %d, stats say %d", got, want)
	}
}

// expositionLine matches one sample line of the Prometheus text
// format: name, optional {labels}, and a value token (validated by
// ParseFloat below, which accepts the format's scientific notation
// and +Inf).
var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// TestMetricsExposition is the golden-format test for /metrics: every
// line parses, every family declares HELP and TYPE before its
// samples, the latency summary carries _sum and _count, and both
// histograms are internally consistent (cumulative buckets, +Inf
// bucket equal to _count).
func TestMetricsExposition(t *testing.T) {
	s := New(Config{Workers: 2})
	genealogyFacts(t, s, 6, 4)
	for _, req := range []QueryRequest{
		{Source: "p0_0"},
		{Source: "p0_0"}, // hit
		{Source: "p0_1", Strategy: "basic", Mode: "independent"},
		{Source: "missing-node"},
	} {
		if _, err := s.Query(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	declared := map[string]string{} // family -> type
	values := map[string]float64{}  // full series (name+labels) -> value
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			declared[parts[2]] = parts[3]
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		family := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(family, suffix)
			if declared[base] == "histogram" || declared[base] == "summary" {
				family = base
				break
			}
		}
		if _, ok := declared[family]; !ok {
			t.Errorf("series %q has no TYPE declaration", m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = v
	}

	if declared["mc_query_latency_seconds"] != "summary" {
		t.Fatalf("mc_query_latency_seconds declared as %q", declared["mc_query_latency_seconds"])
	}
	// The satellite bug: the summary previously lacked _sum and _count.
	sum, okSum := values["mc_query_latency_seconds_sum"]
	count, okCount := values["mc_query_latency_seconds_count"]
	if !okSum || !okCount {
		t.Fatalf("summary missing _sum (%v) or _count (%v):\n%s", okSum, okCount, text)
	}
	if count != 4 || sum <= 0 {
		t.Errorf("summary count=%v sum=%v, want count 4 and positive sum", count, sum)
	}

	for _, hist := range []string{"mc_query_duration_seconds", "mc_query_retrievals"} {
		if declared[hist] != "histogram" {
			t.Fatalf("%s declared as %q", hist, declared[hist])
		}
		buckets := 0
		for series := range values {
			if strings.HasPrefix(series, hist+"_bucket") {
				buckets++
			}
		}
		if buckets < 2 {
			t.Fatalf("%s has %d buckets", hist, buckets)
		}
		inf, ok := values[hist+`_bucket{le="+Inf"}`]
		if !ok {
			t.Fatalf("%s missing +Inf bucket", hist)
		}
		if c := values[hist+"_count"]; c != inf {
			t.Errorf("%s: +Inf bucket %v != count %v", hist, inf, c)
		}
		if c := values[hist+"_count"]; c != 4 {
			t.Errorf("%s count = %v, want 4", hist, c)
		}
	}

	// Method and regime counters reflect the traffic: two auto queries
	// resolved plus one explicit basic/independent.
	if v := values[`mc_queries_by_method_total{strategy="basic",mode="independent"}`]; v != 1 {
		t.Errorf("basic/independent counter = %v, want 1", v)
	}
	var regimeTotal, methodTotal float64
	for series, v := range values {
		if strings.HasPrefix(series, "mc_queries_by_regime_total") {
			regimeTotal += v
		}
		if strings.HasPrefix(series, "mc_queries_by_method_total") {
			methodTotal += v
		}
	}
	if methodTotal != 4 {
		t.Errorf("method counters sum to %v, want 4 (every successful query)", methodTotal)
	}
	if regimeTotal != 3 {
		t.Errorf("regime counters sum to %v, want 3 (the auto queries)", regimeTotal)
	}
}

// TestHistogramGolden pins the exposition rendering of the histogram
// primitive byte-for-byte.
func TestHistogramGolden(t *testing.T) {
	h := newHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 2, 10} {
		h.observe(v)
	}
	var buf bytes.Buffer
	if err := h.write(&buf, "t_metric", "Help text."); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_metric Help text.
# TYPE t_metric histogram
t_metric_bucket{le="1"} 1
t_metric_bucket{le="2"} 2
t_metric_bucket{le="5"} 2
t_metric_bucket{le="+Inf"} 3
t_metric_sum 12.5
t_metric_count 3
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestLatencyRingConcurrent hammers record and percentile from many
// goroutines; the race detector checks the locking, and percentile
// must never observe a torn length.
func TestLatencyRingConcurrent(t *testing.T) {
	r := newLatencyRing(64)
	h := newHistogram(latencyBuckets...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					r.record(time.Duration(i) * time.Microsecond)
					h.observe(float64(i) / 1e6)
				} else {
					if p := r.percentile(0.99); p < 0 {
						t.Errorf("negative percentile %v", p)
					}
					_, _, _ = h.snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.count.Load(); got != 4*500 {
		t.Errorf("histogram count %d, want %d", got, 4*500)
	}
}

// TestCachePurgeOnGenerationBump is the stale-cache regression test:
// after an append bumps the generation, mc_cache_entries (and
// Stats.CacheEntries behind it) must report only live entries — dead
// generations are purged eagerly, not left to eviction.
func TestCachePurgeOnGenerationBump(t *testing.T) {
	s := New(Config{})
	genealogyFacts(t, s, 4, 3)
	for _, src := range []string{"p0_0", "p0_1", "p0_2"} {
		if _, err := s.Query(context.Background(), QueryRequest{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheEntries != 3 {
		t.Fatalf("cache entries = %d, want 3", st.CacheEntries)
	}
	if _, err := s.AppendFacts(FactsRequest{E: []core.Pair{{From: "solo", To: "solo"}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Errorf("cache entries after generation bump = %d, want 0 (stale entries must be purged)", st.CacheEntries)
	}
	if _, err := s.Query(context.Background(), QueryRequest{Source: "p0_0"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Errorf("cache entries after requery = %d, want 1", st.CacheEntries)
	}
}

// TestServiceClose: Close drains the pool after in-flight queries
// finish, later queries fail fast with ErrClosed, and the HTTP layer
// maps that to 503.
func TestServiceClose(t *testing.T) {
	s := New(Config{Workers: 2})
	genealogyFacts(t, s, 4, 3)
	if _, err := s.Query(context.Background(), QueryRequest{Source: "p0_0"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Query(context.Background(), QueryRequest{Source: "p0_0"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close: err = %v, want ErrClosed", err)
	}
	// Shutdown fast-fails count as rejections, not errors, and leave
	// the latency window untouched — retries during a deploy must not
	// skew either metric.
	if st := s.Stats(); st.QueriesRejected != 1 || st.QueryErrors != 0 {
		t.Errorf("rejected/errors after Close = %d/%d, want 1/0", st.QueriesRejected, st.QueryErrors)
	}

	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"source": "p0_0"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestCloseWaitsForInFlight: Close blocks until a running solve
// releases its worker slot.
func TestCloseWaitsForInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	genealogyFacts(t, s, 6, 4)
	release := make(chan struct{})
	done := make(chan struct{})
	s.sem <- struct{}{} // occupy the only slot, standing in for a long solve
	go func() {
		<-release
		<-s.sem
	}()
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	select {
	case <-done:
		t.Fatal("Close returned while a slot was still held")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the slot was released")
	}
}
