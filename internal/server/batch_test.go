package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"magiccounting/internal/core"
)

// TestClockEvictionKeepsHotKey is the second-chance guarantee: a key
// that is re-hit between insertions must survive any amount of
// one-shot churn at full capacity, where the old random eviction would
// eventually have picked it.
func TestClockEvictionKeepsHotKey(t *testing.T) {
	s := New(Config{Workers: 2, CacheCap: 2})
	genealogyFacts(t, s, 6, 8)

	hot := QueryRequest{Source: "p0_0"}
	if resp, err := s.Query(context.Background(), hot); err != nil || resp.Cached {
		t.Fatalf("first hot query: err=%v cached=%v", err, resp.Cached)
	}
	if resp, err := s.Query(context.Background(), hot); err != nil || !resp.Cached {
		t.Fatalf("second hot query: err=%v cached=%v, want hit", err, resp.Cached)
	}
	// Churn: every cold query is a fresh key forcing an eviction once
	// the cache is full. The hot key's reference bit, set by the hit
	// between insertions, must always divert the clock hand onto the
	// one-shot entries.
	for i := 0; i < 20; i++ {
		cold := QueryRequest{Source: fmt.Sprintf("p1_%d", i%8), Strategy: []string{"basic", "multiple"}[i/8%2], Mode: []string{"independent", "integrated"}[i%2]}
		if _, err := s.Query(context.Background(), cold); err != nil {
			t.Fatalf("cold query %d: %v", i, err)
		}
		resp, err := s.Query(context.Background(), hot)
		if err != nil {
			t.Fatalf("hot query after churn %d: %v", i, err)
		}
		if !resp.Cached {
			t.Fatalf("hot key evicted after %d churn rounds", i+1)
		}
	}
	if st := s.Stats(); st.CacheEntries > 2 {
		t.Errorf("cache entries = %d, want <= 2 (CacheCap)", st.CacheEntries)
	}
}

// TestQueryBatch covers the batch endpoint at the Service layer:
// answers match singleton queries, one compile serves the whole batch,
// duplicates fold onto their first occurrence, per-item errors leave
// the rest intact, and a re-batch hits the cache throughout.
func TestQueryBatch(t *testing.T) {
	s := New(Config{Workers: 4})
	genealogyFacts(t, s, 6, 4)

	sources := []string{"p0_0", "p0_1", "p0_0", "", "p0_2"}
	resp, err := s.QueryBatch(context.Background(), BatchRequest{Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != len(sources) {
		t.Fatalf("items = %d, want %d", len(resp.Items), len(sources))
	}
	for i, src := range sources {
		if resp.Items[i].Source != src {
			t.Errorf("item %d source = %q, want %q", i, resp.Items[i].Source, src)
		}
	}
	if resp.Items[3].Error == "" {
		t.Errorf("empty source item carried no error: %+v", resp.Items[3])
	}
	for _, i := range []int{0, 1, 4} {
		it := resp.Items[i]
		if it.Error != "" || it.Cached || it.NewRetrievals == 0 {
			t.Errorf("item %d = %+v, want solved fresh", i, it)
		}
		single, err := s.Query(context.Background(), QueryRequest{Source: it.Source})
		if err != nil {
			t.Fatal(err)
		}
		if !single.Cached {
			t.Errorf("singleton re-query of %q missed the cache the batch filled", it.Source)
		}
		if strings.Join(single.Answers, ",") != strings.Join(it.Answers, ",") {
			t.Errorf("item %d answers %v != singleton answers %v", i, it.Answers, single.Answers)
		}
	}
	// The duplicate folds onto item 0's outcome, reported as cached.
	dup := resp.Items[2]
	if !dup.Cached || dup.NewRetrievals != 0 || dup.Error != "" {
		t.Errorf("duplicate item = %+v, want cached fold of item 0", dup)
	}
	if strings.Join(dup.Answers, ",") != strings.Join(resp.Items[0].Answers, ",") {
		t.Errorf("duplicate answers %v != first occurrence %v", dup.Answers, resp.Items[0].Answers)
	}

	// One compile amortized the batch and the singleton re-queries.
	if st := s.Stats(); st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (one build per generation)", st.Compiles)
	}
	if st := s.Stats(); st.BatchRequests != 1 {
		t.Errorf("batch_requests = %d, want 1", st.BatchRequests)
	}

	// Re-batch: everything hits, nothing recompiles.
	again, err := s.QueryBatch(context.Background(), BatchRequest{Sources: []string{"p0_0", "p0_1", "p0_2"}})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range again.Items {
		if !it.Cached || it.NewRetrievals != 0 || it.Error != "" {
			t.Errorf("re-batch item %d = %+v, want cache hit", i, it)
		}
	}
	if st := s.Stats(); st.Compiles != 1 {
		t.Errorf("compiles after re-batch = %d, want still 1", st.Compiles)
	}

	// Explicit method batches validate once and cache under the
	// method's own key.
	basic, err := s.QueryBatch(context.Background(), BatchRequest{Sources: []string{"p0_0"}, Strategy: "basic", Mode: "independent"})
	if err != nil {
		t.Fatal(err)
	}
	if it := basic.Items[0]; it.Strategy != "basic" || it.Mode != "independent" || it.Cached {
		t.Errorf("explicit-method item = %+v, want fresh basic/independent", it)
	}

	// Request-level validation errors fail the whole batch.
	for _, bad := range []BatchRequest{
		{},
		{Sources: []string{"p0_0"}, Strategy: "bogus"},
		{Sources: []string{"p0_0"}, Mode: "integrated"},
		{Sources: make([]string, maxBatchSources+1)},
	} {
		if _, err := s.QueryBatch(context.Background(), bad); err == nil {
			t.Errorf("QueryBatch(%+v) succeeded, want ErrBadRequest", bad)
		}
	}
}

// TestQueryBatchHTTP drives the endpoint through the HTTP layer: the
// route exists, items marshal with non-null answers, and request-level
// errors map to 400.
func TestQueryBatchHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	genealogyFacts(t, s, 5, 3)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query/batch",
		`{"sources": ["p0_0", "p0_1", "missing-node"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	wire := decode[BatchResponse](t, body)
	if len(wire.Items) != 3 {
		t.Fatalf("items = %d, want 3: %s", len(wire.Items), body)
	}
	for i, it := range wire.Items {
		if it.Answers == nil {
			t.Errorf("item %d has nil answers: %s", i, body)
		}
		if it.Error != "" {
			t.Errorf("item %d errored: %s", i, it.Error)
		}
	}
	// A source absent from the database still answers (empty set).
	if len(wire.Items[2].Answers) != 0 {
		t.Errorf("missing-node answers = %v, want empty", wire.Items[2].Answers)
	}

	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query/batch", `{"sources": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query/batch", `{"sources": ["a"], "strategy": "bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus strategy: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentBatchesAndAppends races batches, singleton queries,
// and fact appends. Every batch evaluates one snapshot: all its
// successful items must agree with the generation it reports (the same
// len(Answers) == Generation invariant the singleton test pins), and
// the race detector checks the compiled-artifact publication and the
// CLOCK bookkeeping underneath.
func TestConcurrentBatchesAndAppends(t *testing.T) {
	s := New(Config{Workers: 8})
	const appends = 40
	var wg sync.WaitGroup
	var stop atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 1; g <= appends; g++ {
			if _, err := s.AppendFacts(FactsRequest{E: []core.Pair{{From: "a", To: fmt.Sprintf("y%03d", g)}}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if w%2 == 0 {
					resp, err := s.QueryBatch(context.Background(), BatchRequest{Sources: []string{"a", "a", "b"}})
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					for j, it := range resp.Items[:2] {
						if it.Error != "" {
							t.Errorf("batch item %d: %s", j, it.Error)
							return
						}
						if len(it.Answers) != int(resp.Generation) {
							t.Errorf("stale batch item: %d answers at generation %d (cached=%v)",
								len(it.Answers), resp.Generation, it.Cached)
							return
						}
					}
				} else {
					resp, err := s.Query(context.Background(), QueryRequest{Source: "a"})
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if len(resp.Answers) != int(resp.Generation) {
						t.Errorf("stale result: %d answers at generation %d", len(resp.Answers), resp.Generation)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Quiesced: one more batch sees the final generation everywhere.
	resp, err := s.QueryBatch(context.Background(), BatchRequest{Sources: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != appends || len(resp.Items[0].Answers) != appends {
		t.Fatalf("after quiesce: gen=%d answers=%d, want %d/%d",
			resp.Generation, len(resp.Items[0].Answers), appends, appends)
	}
}
