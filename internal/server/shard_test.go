package server

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/durable"
)

// regionFacts seeds n chain links under each of the given region
// prefixes: prefixes never share a symbol, so each one is its own weak
// component of the combined graph and lands in its own shard (up to
// packing).
func regionFacts(t *testing.T, svc *Service, regions []string, n int) {
	t.Helper()
	for _, prefix := range regions {
		for i := 0; i < n; i++ {
			if _, err := svc.AppendFacts(chainFacts(prefix, i)); err != nil {
				t.Fatalf("seed append %s/%d: %v", prefix, i, err)
			}
		}
	}
}

// TestShardedServiceEquivalence is the serving-layer equivalence
// oracle: a sharded service and a monolithic one fed the same facts
// must return byte-identical answers and solver stats for every
// source, under explicit methods, auto-selection, and batch fan-out.
func TestShardedServiceEquivalence(t *testing.T) {
	regions := []string{"g0", "g1", "g2", "g3", "g4", "g5"}
	sh := New(Config{Workers: 4, Shards: 4})
	defer sh.Close(context.Background())
	mono := New(Config{Workers: 4})
	defer mono.Close(context.Background())
	regionFacts(t, sh, regions, 6)
	regionFacts(t, mono, regions, 6)

	var sources []string
	for _, prefix := range regions {
		sources = append(sources, prefix+"_n0", prefix+"_n3", prefix+"_n6")
	}
	sources = append(sources, "no_such_source")

	methods := []struct{ strategy, mode string }{
		{"", ""}, // auto-selected
		{"basic", "independent"},
		{"multiple", "integrated"},
		{"recurring", "integrated"},
	}
	for _, m := range methods {
		for _, src := range sources {
			req := QueryRequest{Source: src, Strategy: m.strategy, Mode: m.mode}
			got, err := sh.Query(context.Background(), req)
			if err != nil {
				t.Fatalf("sharded query %s %s/%s: %v", src, m.strategy, m.mode, err)
			}
			want, err := mono.Query(context.Background(), req)
			if err != nil {
				t.Fatalf("monolithic query %s %s/%s: %v", src, m.strategy, m.mode, err)
			}
			if !reflect.DeepEqual(got.Answers, want.Answers) {
				t.Fatalf("%s %s/%s: answers %v != %v", src, m.strategy, m.mode, got.Answers, want.Answers)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s %s/%s: stats %+v != %+v", src, m.strategy, m.mode, got.Stats, want.Stats)
			}
			if got.Strategy != want.Strategy || got.Mode != want.Mode || got.Regime != want.Regime {
				t.Fatalf("%s: method (%s,%s,%s) != (%s,%s,%s)", src,
					got.Strategy, got.Mode, got.Regime, want.Strategy, want.Mode, want.Regime)
			}
		}
	}

	// Batch fan-out routes every item to its own shard; the cache is
	// warm on both sides by now, so clear it via nothing — instead use
	// fresh sources order to exercise the batch path itself.
	breq := BatchRequest{Sources: sources, Strategy: "multiple", Mode: "integrated"}
	gotB, err := sh.QueryBatch(context.Background(), breq)
	if err != nil {
		t.Fatalf("sharded batch: %v", err)
	}
	wantB, err := mono.QueryBatch(context.Background(), breq)
	if err != nil {
		t.Fatalf("monolithic batch: %v", err)
	}
	for i := range gotB.Items {
		if !reflect.DeepEqual(gotB.Items[i].Answers, wantB.Items[i].Answers) {
			t.Fatalf("batch item %s: %v != %v", gotB.Items[i].Source, gotB.Items[i].Answers, wantB.Items[i].Answers)
		}
	}

	// Per-shard routing counters cover exactly the solver runs: a
	// cache hit never consults the artifact, so it routes nowhere.
	var routed int64
	for _, key := range sh.byShard.order {
		routed += sh.byShard.get(key)
	}
	if misses := sh.cacheMisses.Load(); routed != misses {
		t.Fatalf("per-shard routing counters sum to %d, want %d cache misses", routed, misses)
	}
	st := sh.Stats()
	if st.Shards == nil {
		t.Fatal("sharded service reports no Shards stats block")
	}
	if st.Shards.Configured != 4 || st.Shards.Live != 4 {
		t.Fatalf("shards block: configured %d live %d, want 4/4", st.Shards.Configured, st.Shards.Live)
	}
	if mono.Stats().Shards != nil {
		t.Fatal("monolithic service grew a Shards stats block")
	}
}

// TestShardedAppendAccounting pins the sharded metric identities the
// soak harness asserts: compiles == full + delta across the sharded
// roll, merges surface in the stats block, and an append touching one
// region leaves the other shards' artifacts untouched.
func TestShardedAppendAccounting(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 4})
	defer svc.Close(context.Background())
	regionFacts(t, svc, []string{"g0", "g1", "g2", "g3"}, 8)

	// First query compiles the sharded artifact: one compile, one full.
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "g0_n0"}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	st := svc.Stats()
	if st.Compiles != 1 || st.DeltaCompile.FullCompiles != 1 {
		t.Fatalf("after cold compile: compiles %d full %d, want 1/1", st.Compiles, st.DeltaCompile.FullCompiles)
	}

	// A small single-region append delta-extends exactly one shard.
	if _, err := svc.AppendFacts(chainFacts("g1", 8)); err != nil {
		t.Fatalf("delta append: %v", err)
	}
	st = svc.Stats()
	if st.DeltaCompile.DeltaCompiles != 1 {
		t.Fatalf("delta compiles after one-region append = %d, want 1", st.DeltaCompile.DeltaCompiles)
	}
	if st.Shards == nil || st.Shards.MaxDeltaDepth != 1 {
		t.Fatalf("max delta depth after one delta = %+v, want 1", st.Shards)
	}
	if st.Memory.ResidentCompiled != st.Shards.MaxDeltaDepth+1 {
		t.Fatalf("resident compiled %d != max depth %d + 1", st.Memory.ResidentCompiled, st.Shards.MaxDeltaDepth)
	}

	// A bridging append merges g0's and g2's shards (if they share a
	// slot the merge count stays zero but the artifact must still be
	// correct; with 4 regions and 4 slots they do not).
	if _, err := svc.AppendFacts(FactsRequest{L: []core.Pair{{From: "g0_n0", To: "g2_n0"}}}); err != nil {
		t.Fatalf("bridging append: %v", err)
	}
	st = svc.Stats()
	if st.Shards.Merges != 1 {
		t.Fatalf("merges after bridging append = %d, want 1", st.Shards.Merges)
	}
	if st.Shards.Live != 3 {
		t.Fatalf("live shards after merge = %d, want 3", st.Shards.Live)
	}
	if st.Compiles != st.DeltaCompile.FullCompiles+st.DeltaCompile.DeltaCompiles {
		t.Fatalf("compiles %d != full %d + delta %d",
			st.Compiles, st.DeltaCompile.FullCompiles, st.DeltaCompile.DeltaCompiles)
	}
	if st.Memory.ChainCollapses > st.DeltaCompile.DeltaCompiles {
		t.Fatalf("collapses %d exceed delta compiles %d", st.Memory.ChainCollapses, st.DeltaCompile.DeltaCompiles)
	}

	// The rolled artifact answers like a cold compile of the full
	// database — across the merge boundary.
	svc.mu.RLock()
	l, e, r := svc.l, svc.e, svc.r
	svc.mu.RUnlock()
	want, err := core.Compile(l, e, r).Solve("g0_n0", core.Multiple, core.Integrated, core.Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	resp, err := svc.Query(context.Background(), QueryRequest{Source: "g0_n0", Strategy: "multiple", Mode: "integrated"})
	if err != nil {
		t.Fatalf("post-merge query: %v", err)
	}
	if !reflect.DeepEqual(resp.Answers, want.Answers) || resp.Stats != want.Stats {
		t.Fatalf("post-merge query diverges: %v/%+v != %v/%+v",
			resp.Answers, resp.Stats, want.Answers, want.Stats)
	}
}

// TestShardedRetentionCollapse pins per-shard chain collapse: with a
// resident cap, repeated single-region appends flatten only the shard
// whose chain trips the cap, and the collapse count stays within the
// delta-compile count (the soak invariant).
func TestShardedRetentionCollapse(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 2, MaxResidentCompiled: 3})
	defer svc.Close(context.Background())
	regionFacts(t, svc, []string{"g0", "g1"}, 12)
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "g0_n0"}); err != nil {
		t.Fatalf("compile query: %v", err)
	}
	for i := 12; i < 30; i++ {
		if _, err := svc.AppendFacts(chainFacts("g0", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.Memory.ChainCollapses == 0 {
		t.Fatal("no chain collapse despite a 3-generation cap and 18 deltas")
	}
	if st.Memory.ChainCollapses > st.DeltaCompile.DeltaCompiles {
		t.Fatalf("collapses %d exceed delta compiles %d", st.Memory.ChainCollapses, st.DeltaCompile.DeltaCompiles)
	}
	if st.Memory.ResidentCompiled > st.Memory.MaxResidentCompiled {
		t.Fatalf("resident %d above cap %d after collapses", st.Memory.ResidentCompiled, st.Memory.MaxResidentCompiled)
	}
	resp, err := svc.Query(context.Background(), QueryRequest{Source: "g0_n0", Strategy: "multiple", Mode: "integrated"})
	if err != nil {
		t.Fatalf("post-collapse query: %v", err)
	}
	svc.mu.RLock()
	l, e, r := svc.l, svc.e, svc.r
	svc.mu.RUnlock()
	want, err := core.Compile(l, e, r).Solve("g0_n0", core.Multiple, core.Integrated, core.Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if !reflect.DeepEqual(resp.Answers, want.Answers) {
		t.Fatalf("post-collapse answers diverge: %v != %v", resp.Answers, want.Answers)
	}
}

// TestShardedDurableRestart covers the sharding/durability seam: a
// sharded service snapshots facts only (the snapshot format carries a
// monolithic artifact), so recovery must land on the same answers with
// a cold sharded compile — and a monolithic restart over the same data
// directory must agree too.
func TestShardedDurableRestart(t *testing.T) {
	dir := t.TempDir()
	svc := New(Config{Workers: 2, Shards: 4, Fsync: durable.FsyncNever})
	if _, err := svc.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	regionFacts(t, svc, []string{"g0", "g1", "g2"}, 5)
	if _, err := svc.Query(context.Background(), QueryRequest{Source: "g1_n0"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	want, err := svc.Query(context.Background(), QueryRequest{Source: "g1_n2", Strategy: "multiple", Mode: "integrated"})
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for _, cfg := range []Config{
		{Workers: 2, Shards: 4, Fsync: durable.FsyncNever},
		{Workers: 2, Fsync: durable.FsyncNever},
	} {
		re := New(cfg)
		if _, err := re.Open(dir); err != nil {
			t.Fatalf("reopen (shards=%d): %v", cfg.Shards, err)
		}
		got, err := re.Query(context.Background(), QueryRequest{Source: "g1_n2", Strategy: "multiple", Mode: "integrated"})
		if err != nil {
			t.Fatalf("recovered query (shards=%d): %v", cfg.Shards, err)
		}
		if !reflect.DeepEqual(got.Answers, want.Answers) || got.Stats != want.Stats {
			t.Fatalf("recovered answers diverge (shards=%d): %v/%+v != %v/%+v",
				cfg.Shards, got.Answers, got.Stats, want.Answers, want.Stats)
		}
		if err := re.Close(context.Background()); err != nil {
			t.Fatalf("re-close (shards=%d): %v", cfg.Shards, err)
		}
	}
}

// TestShardedMetricsExposition pins the shard series in /metrics: a
// sharded service emits the shard gauge, the merge counter, and the
// closed per-slot routing family; a monolithic service emits none of
// them (the soak harness treats a missing asserted metric as a
// violation, so the shard series must stay out of its invariant set).
func TestShardedMetricsExposition(t *testing.T) {
	sh := New(Config{Workers: 2, Shards: 2})
	defer sh.Close(context.Background())
	regionFacts(t, sh, []string{"g0", "g1"}, 3)
	if _, err := sh.Query(context.Background(), QueryRequest{Source: "g0_n0"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	var buf strings.Builder
	if err := sh.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, series := range []string{
		"mc_shards 2",
		"mc_shard_merges_total 0",
		`mc_shard_queries_total{shard="0"}`,
		`mc_shard_queries_total{shard="1"}`,
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("sharded /metrics missing %q:\n%s", series, out)
		}
	}

	mono := New(Config{Workers: 2})
	defer mono.Close(context.Background())
	buf.Reset()
	if err := mono.WriteMetrics(&buf); err != nil {
		t.Fatalf("monolithic WriteMetrics: %v", err)
	}
	if strings.Contains(buf.String(), "mc_shard") {
		t.Fatal("monolithic /metrics leaked shard series")
	}
}

// TestShardedBatchParallel exercises the batch fan-out on a sharded
// artifact under a real worker pool: every item must succeed and
// agree with singleton queries issued afterwards (same generation, no
// appends in between).
func TestShardedBatchParallel(t *testing.T) {
	svc := New(Config{Workers: 8, Shards: 4, CacheCap: 0})
	defer svc.Close(context.Background())
	regions := []string{"g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	regionFacts(t, svc, regions, 4)
	var sources []string
	for _, prefix := range regions {
		sources = append(sources, prefix+"_n0", prefix+"_n2")
	}
	resp, err := svc.QueryBatch(context.Background(), BatchRequest{Sources: sources, Strategy: "single", Mode: "independent"})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, item := range resp.Items {
		if item.Error != "" {
			t.Fatalf("batch item %s failed: %s", sources[i], item.Error)
		}
		single, err := svc.Query(context.Background(), QueryRequest{Source: sources[i], Strategy: "single", Mode: "independent"})
		if err != nil {
			t.Fatalf("singleton %s: %v", sources[i], err)
		}
		if !reflect.DeepEqual(item.Answers, single.Answers) || item.Stats != single.Stats {
			t.Fatalf("batch item %s diverges from singleton: %v/%+v != %v/%+v",
				sources[i], item.Answers, item.Stats, single.Answers, single.Stats)
		}
	}
}
