package engine

import (
	"runtime"
	"strconv"
	"sync"

	"magiccounting/internal/datalog"
	"magiccounting/internal/relation"
)

// roundTask is one unit of a seminaive round: a rule evaluated either
// fully (deltaPos < 0, round 0) or with the body literal at deltaPos
// reading delta instead of its stored relation.
type roundTask struct {
	rule     datalog.Rule
	ruleIdx  int
	head     *relation.Relation
	deltaPos int
	delta    *relation.Relation
}

// parEval holds the per-stratum state for parallel round evaluation:
// the worker budget, the statically compiled probe column specs, and
// the prepass that builds every index the read-only phase will probe.
//
// Correctness argument, in two halves. (1) A round runs in parallel
// only when no task reads a predicate any task in the round writes
// (independent below). Sequential evaluation applies inserts while
// tasks run, but under that gate no task can observe them, so every
// task sees exactly the pre-round state — the same state the parallel
// workers read. (2) Workers buffer their emitted head tuples instead
// of inserting, and the merge replays the buffers through the same
// insert-dedup-stats sink in task order, i.e. in the order the
// sequential loop would have produced them. Together: identical
// derived tuples in identical order, identical stats, and — because a
// probe's retrieval charge depends only on the state it reads, and
// reads never race writes — an identical meter total.
type parEval struct {
	workers int
	store   *relation.Store
	// probeCols[ruleIdx][bodyPos] is the column spec matchAtom probes
	// with at that position (nil for builtins and all-free probes).
	probeCols [][][]int
	// deltaSpecs maps a recursive predicate to the column specs its
	// delta relations get probed with.
	deltaSpecs map[string][][]int
	prepassed  bool
}

// resolveWorkers normalizes Options.Workers: 0 or 1 is sequential,
// negative means one worker per CPU.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.NumCPU()
	}
	return w
}

// newParEval compiles the parallel-evaluation plan for a stratum, or
// returns nil when the options call for sequential evaluation.
func newParEval(rules []datalog.Rule, heads map[string]bool, store *relation.Store, opts Options) *parEval {
	w := resolveWorkers(opts.Workers)
	if w <= 1 || len(rules) < 2 {
		return nil
	}
	pe := &parEval{
		workers:    w,
		store:      store,
		probeCols:  make([][][]int, len(rules)),
		deltaSpecs: make(map[string][][]int),
	}
	seen := make(map[string]bool)
	for i, r := range rules {
		pe.probeCols[i] = compileProbes(r)
		for pos, l := range r.Body {
			cols := pe.probeCols[i][pos]
			if len(cols) == 0 || l.Negated || !heads[l.Atom.Pred] {
				continue
			}
			// This position can be evaluated against a delta of
			// l.Atom.Pred, which will need an index on cols.
			key := l.Atom.Pred + "/" + specString(cols)
			if !seen[key] {
				seen[key] = true
				pe.deltaSpecs[l.Atom.Pred] = append(pe.deltaSpecs[l.Atom.Pred], cols)
			}
		}
	}
	return pe
}

func specString(cols []int) string {
	s := ""
	for _, c := range cols {
		s += strconv.Itoa(c) + ","
	}
	return s
}

// compileProbes statically computes, for each body position of r, the
// bound column spec matchAtom will pass to Lookup at that position —
// by replaying orderBody's variable-binding accrual: a column is bound
// if its term is a constant or a variable bound by an earlier
// (non-negated) literal in the evaluation order.
func compileProbes(r datalog.Rule) [][]int {
	order := orderBody(r)
	cols := make([][]int, len(r.Body))
	bound := make(map[string]bool)
	bindAll := func(a datalog.Atom) {
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, pos := range order {
		l := r.Body[pos]
		if l.Atom.IsBuiltin() {
			bindAll(l.Atom)
			continue
		}
		var cs []int
		for i, t := range l.Atom.Args {
			if !t.IsVar() || bound[t.Var] {
				cs = append(cs, i)
			}
		}
		cols[pos] = cs
		if !l.Negated {
			bindAll(l.Atom)
		}
	}
	return cols
}

// independent reports whether the round's tasks are mutually
// conflict-free: no task reads — at a non-delta position or under
// negation — a predicate that any task in the round writes. Under
// this condition the sequential round's intra-round insert visibility
// is provably empty, so the buffered parallel execution is
// indistinguishable from it.
func (pe *parEval) independent(tasks []roundTask) bool {
	writes := make(map[string]bool, len(tasks))
	for i := range tasks {
		writes[tasks[i].rule.Head.Pred] = true
	}
	for i := range tasks {
		for pos, l := range tasks[i].rule.Body {
			if l.Atom.IsBuiltin() || pos == tasks[i].deltaPos {
				continue
			}
			if writes[l.Atom.Pred] {
				return false
			}
		}
	}
	return true
}

// prepass builds every index the compiled probe specs need on the
// stored relations, so the read-only parallel phase never falls back
// to a scan (and, more importantly, never mutates a shared relation).
// Index builds are uncharged, exactly like the lazy builds of the
// sequential path. Runs once per stratum.
func (pe *parEval) prepass(rules []datalog.Rule) {
	if pe.prepassed {
		return
	}
	pe.prepassed = true
	for i, r := range rules {
		for pos, l := range r.Body {
			cols := pe.probeCols[i][pos]
			if l.Atom.IsBuiltin() || len(cols) == 0 {
				continue
			}
			if rel, ok := pe.store.Lookup(l.Atom.Pred); ok {
				rel.EnsureIndex(cols...)
			}
		}
	}
}

// indexDelta pre-builds the indexes the next round's tasks will probe
// on a freshly filled delta relation.
func (pe *parEval) indexDelta(pred string, d *relation.Relation) {
	if pe == nil {
		return
	}
	for _, cols := range pe.deltaSpecs[pred] {
		d.EnsureIndex(cols...)
	}
}

// runRound evaluates one seminaive round. Emitted head tuples reach
// sink in deterministic task order: sequentially when the round has a
// read/write conflict (or no parallel plan), otherwise via buffered
// workers and an ordered merge.
func runRound(store *relation.Store, pe *parEval, rules []datalog.Rule, tasks []roundTask, sink func(*roundTask, relation.Tuple)) {
	if pe == nil || len(tasks) < 2 || !pe.independent(tasks) {
		for i := range tasks {
			tk := &tasks[i]
			evalRule(tk.rule, store, tk.delta, tk.deltaPos, false, func(t relation.Tuple) { sink(tk, t) })
		}
		return
	}
	pe.prepass(rules)
	bufs := make([][]relation.Tuple, len(tasks))
	sem := make(chan struct{}, pe.workers)
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tk := &tasks[i]
			evalRule(tk.rule, store, tk.delta, tk.deltaPos, true, func(t relation.Tuple) {
				bufs[i] = append(bufs[i], t)
			})
		}(i)
	}
	wg.Wait()
	for i := range tasks {
		for _, t := range bufs[i] {
			sink(&tasks[i], t)
		}
	}
}
