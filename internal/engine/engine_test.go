package engine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"magiccounting/internal/datalog"
	"magiccounting/internal/relation"
)

// run evaluates src with the given options and returns the answers to
// its (single) query as rendered strings.
func run(t *testing.T, src string, opts Options) []string {
	t.Helper()
	prog := datalog.MustParse(src)
	if len(prog.Queries) != 1 {
		t.Fatalf("test program must have one query, has %d", len(prog.Queries))
	}
	store := relation.NewStore()
	tuples, err := Answers(prog, prog.Queries[0], store, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(tuples))
	for i, tup := range tuples {
		out[i] = tup.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const ancestorSrc = `
parent(tom, bob). parent(bob, ann). parent(bob, pat). parent(ann, jim).
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
?- anc(tom, Y).
`

func TestAncestorSeminaive(t *testing.T) {
	got := run(t, ancestorSrc, Options{})
	want := []string{"(tom, ann)", "(tom, bob)", "(tom, jim)", "(tom, pat)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestAncestorNaiveMatchesSeminaive(t *testing.T) {
	a := run(t, ancestorSrc, Options{Naive: true})
	b := run(t, ancestorSrc, Options{})
	if !equalStrings(a, b) {
		t.Fatalf("naive %v != seminaive %v", a, b)
	}
}

func TestSameGeneration(t *testing.T) {
	src := `
up(a, b). up(b, c). up(x, b). up(y, c).
sg(X, X) :- person(X).
sg(X, Y) :- up(X, U), sg(U, V), up(Y, V).
person(a). person(b). person(c). person(x). person(y).
?- sg(a, Y).
`
	got := run(t, src, Options{})
	want := []string{"(a, a)", "(a, x)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestTransitiveClosureOnCycleTerminates(t *testing.T) {
	src := `
e(a, b). e(b, c). e(c, a).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
`
	got := run(t, src, Options{})
	want := []string{"(a, a)", "(a, b)", "(a, c)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestArithmeticLevels(t *testing.T) {
	src := `
arc(a, b). arc(b, c).
lvl(0, a).
lvl(J1, X) :- lvl(J, Y), arc(Y, X), J1 is J + 1.
?- lvl(J, X).
`
	got := run(t, src, Options{})
	want := []string{"(0, a)", "(1, b)", "(2, c)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestIterationGuardTripsOnDivergentCounting(t *testing.T) {
	src := `
arc(a, b). arc(b, a).
lvl(0, a).
lvl(J1, X) :- lvl(J, Y), arc(Y, X), J1 is J + 1.
`
	prog := datalog.MustParse(src)
	store := relation.NewStore()
	_, err := Eval(prog, store, Options{MaxIterations: 50})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
}

func TestStratifiedNegation(t *testing.T) {
	src := `
node(a). node(b). node(c). node(d).
e(a, b). e(b, c).
reach(a).
reach(Y) :- reach(X), e(X, Y).
unreach(X) :- node(X), not reach(X).
?- unreach(X).
`
	got := run(t, src, Options{})
	want := []string{"(d)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestComparisonsFilter(t *testing.T) {
	src := `
n(1). n(2). n(3). n(4).
big(X) :- n(X), X >= 3.
pair(X, Y) :- n(X), n(Y), X < Y, Y <= 2.
?- big(X).
`
	got := run(t, src, Options{})
	want := []string{"(3)", "(4)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestNeqAndEqBuiltins(t *testing.T) {
	src := `
n(1). n(2).
diff(X, Y) :- n(X), n(Y), X != Y.
?- diff(X, Y).
`
	got := run(t, src, Options{})
	want := []string{"(1, 2)", "(2, 1)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestEqBindsVariable(t *testing.T) {
	src := `
n(1). n(2).
copy(Y) :- n(X), Y = X.
?- copy(Y).
`
	got := run(t, src, Options{})
	want := []string{"(1)", "(2)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestBuiltinDeferredAcrossTextualOrder(t *testing.T) {
	// Z is Q + 1 appears before Q is bound; orderBody must defer it.
	src := `
q(5).
p(Z) :- Z is Q + 1, q(Q).
?- p(Z).
`
	got := run(t, src, Options{})
	want := []string{"(6)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestSubtractionDescent(t *testing.T) {
	src := `
pc(2, x).
r(y, x). r(z, y).
pc(J1, Y) :- pc(J, Y1), r(Y, Y1), J1 is J - 1.
ans(Y) :- pc(0, Y).
?- ans(Y).
`
	got := run(t, src, Options{})
	want := []string{"(z)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	src := `
e(a, a). e(a, b). e(b, b).
loop(X) :- e(X, X).
?- loop(X).
`
	got := run(t, src, Options{})
	want := []string{"(a)", "(b)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestGroundFactRuleFiresOnce(t *testing.T) {
	src := `
start(a) :- seed.
seed.
?- start(X).
`
	got := run(t, src, Options{})
	want := []string{"(a)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
}

func TestAnswersOnUndefinedPredicate(t *testing.T) {
	prog := datalog.MustParse(`e(a, b).`)
	store := relation.NewStore()
	got, err := Answers(prog, datalog.NewAtom("nosuch", datalog.V("X")), store, Options{})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want empty", got, err)
	}
}

func TestMatchRespectsConstantsAndRepeatedVars(t *testing.T) {
	prog := datalog.MustParse(`
e(a, b). e(a, a). e(b, b).
p(X, Y) :- e(X, Y).
`)
	store := relation.NewStore()
	if _, err := Eval(prog, store, Options{}); err != nil {
		t.Fatal(err)
	}
	same := Match(store, datalog.NewAtom("p", datalog.V("X"), datalog.V("X")))
	if len(same) != 2 {
		t.Fatalf("p(X,X) = %v", same)
	}
	froma := Match(store, datalog.NewAtom("p", datalog.S("a"), datalog.V("Y")))
	if len(froma) != 2 {
		t.Fatalf("p(a,Y) = %v", froma)
	}
}

func TestEvalRejectsUnsafeProgram(t *testing.T) {
	prog := datalog.MustParse(`p(X, Y) :- e(X, X).`)
	store := relation.NewStore()
	if _, err := Eval(prog, store, Options{}); err == nil {
		t.Fatal("unsafe program should be rejected")
	}
}

func TestEvalRejectsUnstratifiable(t *testing.T) {
	prog := datalog.MustParse(`
move(a, b).
win(X) :- move(X, Y), not win(Y).
`)
	store := relation.NewStore()
	if _, err := Eval(prog, store, Options{}); err == nil {
		t.Fatal("unstratifiable program should be rejected")
	}
}

func TestStatsReported(t *testing.T) {
	prog := datalog.MustParse(ancestorSrc)
	store := relation.NewStore()
	stats, err := Eval(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != 8 { // the full anc closure has 8 tuples
		t.Fatalf("Derived = %d, want 8", stats.Derived)
	}
	if stats.Iterations < 3 {
		t.Fatalf("Iterations = %d, want >= 3", stats.Iterations)
	}
	if store.Meter().Retrievals() == 0 {
		t.Fatal("evaluation should charge the meter")
	}
	if stats.DerivedByPred["anc"] != 8 {
		t.Fatalf("DerivedByPred = %v, want anc:8", stats.DerivedByPred)
	}
	if stats.Strata != 1 {
		t.Fatalf("Strata = %d, want 1", stats.Strata)
	}
}

func TestStatsPerPredicateAcrossStrata(t *testing.T) {
	prog := datalog.MustParse(`
node(a). node(b). e(a, b).
reach(a).
reach(Y) :- reach(X), e(X, Y).
dead(X) :- node(X), not reach(X).
`)
	store := relation.NewStore()
	stats, err := Eval(prog, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strata != 2 {
		t.Fatalf("Strata = %d, want 2", stats.Strata)
	}
	// reach(a) is a loaded fact, not a derivation; only reach(b) is
	// derived. No node is dead.
	if stats.DerivedByPred["reach"] != 1 || stats.DerivedByPred["dead"] != 0 {
		t.Fatalf("DerivedByPred = %v", stats.DerivedByPred)
	}
}

func TestSeminaiveCheaperThanNaiveOnChain(t *testing.T) {
	var src string
	src += "tc(X, Y) :- e(X, Y).\n"
	src += "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < 30; i++ {
		src += "e(n" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ", n" + string(rune('a'+(i+1)/26)) + string(rune('a'+(i+1)%26)) + ").\n"
	}
	prog := datalog.MustParse(src)
	naive := relation.NewStore()
	if _, err := Eval(prog, naive, Options{Naive: true}); err != nil {
		t.Fatal(err)
	}
	semi := relation.NewStore()
	if _, err := Eval(prog, semi, Options{}); err != nil {
		t.Fatal(err)
	}
	if naive.Relation("tc", 2).Len() != semi.Relation("tc", 2).Len() {
		t.Fatal("naive and seminaive disagree")
	}
	if semi.Meter().Retrievals() >= naive.Meter().Retrievals() {
		t.Fatalf("seminaive (%d) should beat naive (%d) on a chain",
			semi.Meter().Retrievals(), naive.Meter().Retrievals())
	}
}

// Property: naive and seminaive compute the same transitive closure on
// random graphs.
func TestNaiveSeminaiveAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &datalog.Program{}
		prog.AddRule(datalog.NewRule(
			datalog.NewAtom("tc", datalog.V("X"), datalog.V("Y")),
			datalog.NewAtom("e", datalog.V("X"), datalog.V("Y"))))
		prog.AddRule(datalog.NewRule(
			datalog.NewAtom("tc", datalog.V("X"), datalog.V("Y")),
			datalog.NewAtom("e", datalog.V("X"), datalog.V("Z")),
			datalog.NewAtom("tc", datalog.V("Z"), datalog.V("Y"))))
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 8; i++ {
			prog.AddFact(datalog.NewAtom("e",
				datalog.S(names[rng.Intn(len(names))]),
				datalog.S(names[rng.Intn(len(names))])))
		}
		s1 := relation.NewStore()
		s2 := relation.NewStore()
		if _, err := Eval(prog, s1, Options{Naive: true}); err != nil {
			return false
		}
		if _, err := Eval(prog, s2, Options{}); err != nil {
			return false
		}
		a := s1.Relation("tc", 2).SortedTuples()
		b := s2.Relation("tc", 2).SortedTuples()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComparisonsOnSymbolsAreLexicographic(t *testing.T) {
	src := `
w(apple). w(pear). w(fig).
lt(X, Y) :- w(X), w(Y), X < Y.
?- lt(X, Y).
`
	got := run(t, src, Options{})
	want := []string{"(apple, fig)", "(apple, pear)", "(fig, pear)"}
	if !equalStrings(got, want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	// The other comparison operators on symbols.
	src2 := `
w(apple). w(pear).
cmp(X, Y) :- w(X), w(Y), X >= Y, X > apple, Y <= pear.
?- cmp(X, Y).
`
	got2 := run(t, src2, Options{})
	want2 := []string{"(pear, apple)", "(pear, pear)"}
	if !equalStrings(got2, want2) {
		t.Fatalf("answers = %v, want %v", got2, want2)
	}
}

func TestArithmeticOnSymbolFailsQuietly(t *testing.T) {
	// #add over a symbol is simply unsatisfiable, not an error.
	src := `
q(apple). q(3).
p(Z) :- q(X), Z is X + 1.
?- p(Z).
`
	got := run(t, src, Options{})
	if !equalStrings(got, []string{"(4)"}) {
		t.Fatalf("answers = %v, want [(4)]", got)
	}
}

func TestAddBindsEachPosition(t *testing.T) {
	// X is Z - 7 desugars to #add(X, 7, Z) with Z bound, exercising
	// the bind-first-argument branch of #add.
	src := `
q(10).
first(X) :- q(Z), X is Z - 7.
?- first(X).
`
	got := run(t, src, Options{})
	if !equalStrings(got, []string{"(3)"}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestAnswersPropagatesEvalError(t *testing.T) {
	prog := datalog.MustParse(`p(X, Y) :- e(X, X).`) // unsafe
	if _, err := Answers(prog, datalog.NewAtom("p", datalog.V("X"), datalog.V("Y")), relation.NewStore(), Options{}); err == nil {
		t.Fatal("Answers should surface Eval errors")
	}
}

func TestEqOnConstantsFilters(t *testing.T) {
	src := `
q(a). q(b).
p(X) :- q(X), X = a.
?- p(X).
`
	got := run(t, src, Options{})
	if !equalStrings(got, []string{"(a)"}) {
		t.Fatalf("answers = %v", got)
	}
}

func TestMultiStratumPipeline(t *testing.T) {
	src := `
node(a). node(b). node(c).
e(a, b).
reach(a).
reach(Y) :- reach(X), e(X, Y).
dead(X) :- node(X), not reach(X).
deadpair(X, Y) :- dead(X), dead(Y), X != Y.
?- deadpair(X, Y).
`
	got := run(t, src, Options{})
	if len(got) != 0 {
		t.Fatalf("deadpair = %v, want empty (only c is dead)", got)
	}
}
