// Package engine evaluates Datalog programs bottom-up over the
// relation store: naive and seminaive fixpoints, stratified negation,
// arithmetic builtins, and iteration guards that turn non-terminating
// computations (e.g. the counting rewrite on cyclic data, the unsafe
// regime of Saccà & Zaniolo's Table 1) into clean errors.
package engine

import (
	"context"
	"errors"
	"fmt"

	"magiccounting/internal/datalog"
	"magiccounting/internal/obs"
	"magiccounting/internal/relation"
)

// ErrIterationLimit is returned when a stratum's fixpoint fails to
// converge within Options.MaxIterations — the engine's safety guard.
var ErrIterationLimit = errors.New("engine: iteration limit exceeded (non-terminating fixpoint?)")

// Options configures an evaluation.
type Options struct {
	// Naive forces the naive fixpoint (re-deriving everything each
	// round) instead of seminaive differentials. Used for ground truth
	// and ablation benchmarks.
	Naive bool
	// MaxIterations bounds the rounds of any one stratum's fixpoint.
	// Zero selects DefaultMaxIterations.
	MaxIterations int
	// Ctx, when non-nil, cancels the evaluation: every fixpoint round
	// polls it and Eval returns ctx.Err() once it is done, matching
	// the cancellation semantics of the core solver path.
	Ctx context.Context
	// Workers sets the worker pool for seminaive delta rounds. A round
	// is parallelized only when its rule evaluations are provably
	// independent (no task reads a predicate another task writes);
	// conflicting rounds fall back to the sequential loop, so results,
	// stats, and meter counts are identical to Workers == 0 in every
	// case. 0 or 1 runs sequentially; negative uses one worker per CPU.
	Workers int
	// Trace, when non-nil and armed, receives the evaluation's span
	// tree: one span per stratum with per-round children carrying the
	// round's duration, its meter delta (tuple retrievals charged to
	// the store), and the delta-relation sizes feeding it. Tracing
	// never touches the meter, so results and charges are identical
	// with and without it.
	Trace *obs.Trace
}

// ctxErr polls the options context (nil context never errs).
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// DefaultMaxIterations is the default per-stratum round bound. It is
// far above anything a terminating program needs on test data.
const DefaultMaxIterations = 1 << 20

// Stats reports what an evaluation did.
type Stats struct {
	// Iterations counts fixpoint rounds summed over strata.
	Iterations int
	// Derived counts tuples added to IDB relations.
	Derived int
	// DerivedByPred breaks Derived down per IDB predicate — the
	// profile that shows where an evaluation spends its work (e.g.
	// how many magic tuples vs. modified-rule tuples a rewrite
	// materializes).
	DerivedByPred map[string]int
	// Strata is the number of evaluation strata.
	Strata int
}

// note records a derivation in the stats.
func (s *Stats) note(pred string) {
	s.Derived++
	if s.DerivedByPred == nil {
		s.DerivedByPred = make(map[string]int)
	}
	s.DerivedByPred[pred]++
}

// Eval materializes every IDB predicate of p into store, loading the
// program's facts first. The store's meter keeps charging as usual, so
// callers can read the tuple-retrieval cost afterwards.
func Eval(p *datalog.Program, store *relation.Store, opts Options) (*Stats, error) {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = DefaultMaxIterations
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	if err := p.CheckSafety(); err != nil {
		return nil, err
	}
	arities, err := p.PredArities()
	if err != nil {
		return nil, err
	}
	ls := opts.Trace.Start("load", store.Meter().Retrievals())
	for _, f := range p.Facts {
		store.Relation(f.Pred, len(f.Args)).Insert(f.Tuple())
	}
	// Make sure every referenced predicate exists, so evaluation of
	// rules over empty relations works.
	for pred, ar := range arities {
		if !datalog.IsBuiltinPred(pred) {
			store.Relation(pred, ar)
		}
	}
	ls.Set("facts", int64(len(p.Facts)))
	opts.Trace.End(ls, store.Meter().Retrievals())
	strata, err := p.DependencyOrder()
	if err != nil {
		return nil, err
	}
	stats := &Stats{Strata: len(strata)}
	for i, rules := range strata {
		sp := opts.Trace.Start(fmt.Sprintf("stratum/%d", i), store.Meter().Retrievals())
		sp.Set("rules", int64(len(rules)))
		before := stats.Iterations
		err := evalStratum(rules, store, opts, stats)
		sp.Set("iterations", int64(stats.Iterations-before))
		opts.Trace.End(sp, store.Meter().Retrievals())
		if err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// Answers evaluates p and returns the sorted tuples matching goal.
func Answers(p *datalog.Program, goal datalog.Atom, store *relation.Store, opts Options) ([]relation.Tuple, error) {
	if _, err := Eval(p, store, opts); err != nil {
		return nil, err
	}
	return Match(store, goal), nil
}

// Match returns the sorted tuples of goal's relation consistent with
// the goal's constants and repeated variables.
func Match(store *relation.Store, goal datalog.Atom) []relation.Tuple {
	rel, ok := store.Lookup(goal.Pred)
	if !ok {
		return nil
	}
	env := make(bindings)
	var out []relation.Tuple
	matchAtom(rel, goal, env, func(t relation.Tuple) {
		out = append(out, t.Clone())
	})
	res := relation.New("match", rel.Arity(), nil)
	for _, t := range out {
		res.Insert(t)
	}
	return res.SortedTuples()
}

func evalStratum(rules []datalog.Rule, store *relation.Store, opts Options, stats *Stats) error {
	if len(rules) == 0 {
		return nil
	}
	heads := make(map[string]bool)
	for _, r := range rules {
		heads[r.Head.Pred] = true
		store.Relation(r.Head.Pred, len(r.Head.Args))
	}
	if opts.Naive {
		return evalNaive(rules, store, opts, stats)
	}
	return evalSeminaive(rules, heads, store, opts, stats)
}

func evalNaive(rules []datalog.Rule, store *relation.Store, opts Options, stats *Stats) error {
	rt := roundTrace{tr: opts.Trace, meter: store.Meter()}
	defer rt.done()
	for round := 0; ; round++ {
		if round >= opts.MaxIterations {
			return fmt.Errorf("%w after %d rounds", ErrIterationLimit, round)
		}
		if err := opts.ctxErr(); err != nil {
			return err
		}
		rt.begin(round, -1)
		stats.Iterations++
		added := 0
		for _, r := range rules {
			r := r
			rel := store.Relation(r.Head.Pred, len(r.Head.Args))
			evalRule(r, store, nil, -1, false, func(t relation.Tuple) {
				if rel.Insert(t) {
					added++
					stats.note(r.Head.Pred)
				}
			})
		}
		if added == 0 {
			return nil
		}
	}
}

func evalSeminaive(rules []datalog.Rule, heads map[string]bool, store *relation.Store, opts Options, stats *Stats) error {
	pe := newParEval(rules, heads, store, opts)
	rt := roundTrace{tr: opts.Trace, meter: store.Meter()}
	defer rt.done()

	// Round 0: full evaluation seeds the deltas.
	rt.begin(0, -1)
	deltas := make(map[string]*relation.Relation)
	stats.Iterations++
	tasks := make([]roundTask, 0, len(rules))
	for i, r := range rules {
		rel := store.Relation(r.Head.Pred, len(r.Head.Args))
		if deltas[r.Head.Pred] == nil {
			deltas[r.Head.Pred] = store.Scratch("Δ"+r.Head.Pred, rel.Arity())
		}
		tasks = append(tasks, roundTask{rule: r, ruleIdx: i, head: rel, deltaPos: -1})
	}
	runRound(store, pe, rules, tasks, func(tk *roundTask, t relation.Tuple) {
		if tk.head.Insert(t) {
			stats.note(tk.rule.Head.Pred)
			deltas[tk.rule.Head.Pred].Insert(t)
		}
	})
	for pred, d := range deltas {
		pe.indexDelta(pred, d)
	}
	for round := 1; ; round++ {
		if round >= opts.MaxIterations {
			return fmt.Errorf("%w after %d rounds", ErrIterationLimit, round)
		}
		if err := opts.ctxErr(); err != nil {
			return err
		}
		total := 0
		for _, d := range deltas {
			total += d.Len()
		}
		if total == 0 {
			return nil
		}
		rt.begin(round, int64(total))
		stats.Iterations++
		next := make(map[string]*relation.Relation)
		tasks = tasks[:0]
		for ri, r := range rules {
			rel := store.Relation(r.Head.Pred, len(r.Head.Args))
			if next[r.Head.Pred] == nil {
				next[r.Head.Pred] = store.Scratch("Δ"+r.Head.Pred, rel.Arity())
			}
			// One differential per recursive body literal: match that
			// literal against its predicate's delta, the rest against
			// the full relations.
			for i, l := range r.Body {
				if l.Negated || l.Atom.IsBuiltin() || !heads[l.Atom.Pred] {
					continue
				}
				d := deltas[l.Atom.Pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				tasks = append(tasks, roundTask{rule: r, ruleIdx: ri, head: rel, deltaPos: i, delta: d})
			}
		}
		runRound(store, pe, rules, tasks, func(tk *roundTask, t relation.Tuple) {
			if tk.head.Insert(t) {
				stats.note(tk.rule.Head.Pred)
				next[tk.rule.Head.Pred].Insert(t)
			}
		})
		for pred, nd := range next {
			pe.indexDelta(pred, nd)
		}
		deltas = next
	}
}

// bindings maps variable names to constants during body evaluation.
type bindings map[string]relation.Value

// evalRule enumerates the ground heads derivable from r. If deltaPos
// is non-negative, the body literal at that original position reads
// from delta instead of its stored relation. Builtins and negated
// literals are deferred until their inputs are bound, so rules only
// need to be statically safe, not textually ordered. With readOnly
// set, relation probes never build indexes lazily, so concurrent
// evaluations over a shared store are race-free.
func evalRule(r datalog.Rule, store *relation.Store, delta *relation.Relation, deltaPos int, readOnly bool, emit func(relation.Tuple)) {
	order := orderBody(r)
	env := make(bindings)
	var walk func(i int)
	walk = func(i int) {
		if i == len(order) {
			t := make(relation.Tuple, len(r.Head.Args))
			for k, arg := range r.Head.Args {
				t[k] = valueOf(arg, env)
			}
			emit(t)
			return
		}
		l := r.Body[order[i]]
		switch {
		case l.Atom.IsBuiltin():
			evalBuiltin(l.Atom, env, func() { walk(i + 1) })
		case l.Negated:
			rel, ok := store.Lookup(l.Atom.Pred)
			if !ok || !hasMatch(rel, l.Atom, env, readOnly) {
				walk(i + 1)
			}
		default:
			rel, ok := store.Lookup(l.Atom.Pred)
			if order[i] == deltaPos {
				rel, ok = delta, delta != nil
			}
			if !ok {
				return
			}
			matchAtomMode(rel, l.Atom, env, readOnly, func(relation.Tuple) { walk(i + 1) })
		}
	}
	walk(0)
}

// orderBody returns an evaluation order of r's body positions that
// keeps positive non-builtin literals in textual order but schedules
// each builtin and negated literal at the earliest point where it is
// evaluable. Unschedulable literals (unsafe rules) stay at the end in
// textual order, where evaluation will report the unbound variable.
func orderBody(r datalog.Rule) []int {
	n := len(r.Body)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make(map[string]bool)
	evaluable := func(l datalog.Literal) bool {
		known := func(t datalog.Term) bool { return !t.IsVar() || bound[t.Var] }
		if l.Negated {
			for _, t := range l.Atom.Args {
				if !known(t) {
					return false
				}
			}
			return true
		}
		a := l.Atom
		switch a.Pred {
		case datalog.BuiltinEq:
			return known(a.Args[0]) || known(a.Args[1])
		case datalog.BuiltinAdd:
			kn := 0
			for _, t := range a.Args {
				if known(t) {
					kn++
				}
			}
			return kn >= 2
		default: // comparisons
			for _, t := range a.Args {
				if !known(t) {
					return false
				}
			}
			return true
		}
	}
	bind := func(l datalog.Literal) {
		if l.Negated {
			return
		}
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for len(order) < n {
		picked := -1
		// Deferred literals first, as soon as they become evaluable.
		for i, l := range r.Body {
			if !used[i] && (l.Negated || l.Atom.IsBuiltin()) && evaluable(l) {
				picked = i
				break
			}
		}
		if picked == -1 {
			for i, l := range r.Body {
				if !used[i] && !l.Negated && !l.Atom.IsBuiltin() {
					picked = i
					break
				}
			}
		}
		if picked == -1 {
			// Only unevaluable builtins/negations remain; emit them in
			// textual order and let evaluation flag the unsafe rule.
			for i := range r.Body {
				if !used[i] {
					picked = i
					break
				}
			}
		}
		used[picked] = true
		order = append(order, picked)
		bind(r.Body[picked])
	}
	return order
}

// valueOf resolves a term under env; it panics on unbound variables,
// which CheckSafety rules out for well-formed programs.
func valueOf(t datalog.Term, env bindings) relation.Value {
	if !t.IsVar() {
		return t.Const
	}
	v, ok := env[t.Var]
	if !ok {
		panic("engine: unbound variable " + t.Var + " (program not range-restricted?)")
	}
	return v
}

// matchAtom unifies atom a against rel under env, calling next for
// every matching tuple with the atom's free variables bound. Bindings
// added for a match are undone before trying the next tuple.
func matchAtom(rel *relation.Relation, a datalog.Atom, env bindings, next func(relation.Tuple)) {
	matchAtomMode(rel, a, env, false, next)
}

// matchAtomMode is matchAtom with an explicit probe mode: readOnly
// probes use LookupReadOnly (identical matches and identical meter
// charges, but no lazy index builds), which makes them safe to run
// concurrently against a shared relation.
func matchAtomMode(rel *relation.Relation, a datalog.Atom, env bindings, readOnly bool, next func(relation.Tuple)) {
	var cols []int
	var vals []relation.Value
	for i, t := range a.Args {
		if !t.IsVar() {
			cols = append(cols, i)
			vals = append(vals, t.Const)
		} else if v, ok := env[t.Var]; ok {
			cols = append(cols, i)
			vals = append(vals, v)
		}
	}
	lookup := rel.Lookup
	if readOnly {
		lookup = rel.LookupReadOnly
	}
	lookup(cols, vals, func(t relation.Tuple) bool {
		var boundHere []string
		ok := true
		for i, arg := range a.Args {
			if !arg.IsVar() {
				continue
			}
			if v, bound := env[arg.Var]; bound {
				if v != t[i] {
					ok = false
					break
				}
				continue
			}
			env[arg.Var] = t[i]
			boundHere = append(boundHere, arg.Var)
		}
		if ok {
			next(t)
		}
		for _, v := range boundHere {
			delete(env, v)
		}
		return true
	})
}

// hasMatch reports whether any tuple of rel matches a under env
// (used for negated literals; all variables are bound by safety).
func hasMatch(rel *relation.Relation, a datalog.Atom, env bindings, readOnly bool) bool {
	found := false
	matchAtomMode(rel, a, env, readOnly, func(relation.Tuple) { found = true })
	return found
}

// evalBuiltin evaluates a builtin atom under env, calling next for
// each solution (0 or 1). It may temporarily bind output variables.
func evalBuiltin(a datalog.Atom, env bindings, next func()) {
	get := func(t datalog.Term) (relation.Value, bool) {
		if !t.IsVar() {
			return t.Const, true
		}
		v, ok := env[t.Var]
		return v, ok
	}
	withBinding := func(t datalog.Term, v relation.Value) {
		if !t.IsVar() {
			if t.Const == v {
				next()
			}
			return
		}
		if old, ok := env[t.Var]; ok {
			if old == v {
				next()
			}
			return
		}
		env[t.Var] = v
		next()
		delete(env, t.Var)
	}
	switch a.Pred {
	case datalog.BuiltinEq:
		x, xok := get(a.Args[0])
		y, yok := get(a.Args[1])
		switch {
		case xok && yok:
			if x == y {
				next()
			}
		case xok:
			withBinding(a.Args[1], x)
		case yok:
			withBinding(a.Args[0], y)
		default:
			panic("engine: = with both sides unbound")
		}
	case datalog.BuiltinAdd:
		x, xok := get(a.Args[0])
		y, yok := get(a.Args[1])
		z, zok := get(a.Args[2])
		// All bound arguments must be integers; a symbol simply fails
		// to satisfy arithmetic.
		for _, pair := range []struct {
			ok bool
			v  relation.Value
		}{{xok, x}, {yok, y}, {zok, z}} {
			if pair.ok && !pair.v.IsInt() {
				return
			}
		}
		switch {
		case xok && yok:
			withBinding(a.Args[2], relation.Int(x.Num()+y.Num()))
		case xok && zok:
			withBinding(a.Args[1], relation.Int(z.Num()-x.Num()))
		case yok && zok:
			withBinding(a.Args[0], relation.Int(z.Num()-y.Num()))
		default:
			panic("engine: #add with fewer than two bound arguments")
		}
	case datalog.BuiltinNeq, datalog.BuiltinLt, datalog.BuiltinLe, datalog.BuiltinGt, datalog.BuiltinGe:
		x, xok := get(a.Args[0])
		y, yok := get(a.Args[1])
		if !xok || !yok {
			panic("engine: comparison " + a.Pred + " with unbound argument")
		}
		if compare(a.Pred, x, y) {
			next()
		}
	default:
		panic("engine: unknown builtin " + a.Pred)
	}
}

func compare(pred string, x, y relation.Value) bool {
	switch pred {
	case datalog.BuiltinNeq:
		return x != y
	case datalog.BuiltinLt, datalog.BuiltinLe, datalog.BuiltinGt, datalog.BuiltinGe:
		if !x.IsInt() || !y.IsInt() {
			// Order symbols lexicographically so comparisons are total.
			xi, yi := x.String(), y.String()
			switch pred {
			case datalog.BuiltinLt:
				return xi < yi
			case datalog.BuiltinLe:
				return xi <= yi
			case datalog.BuiltinGt:
				return xi > yi
			default:
				return xi >= yi
			}
		}
		switch pred {
		case datalog.BuiltinLt:
			return x.Num() < y.Num()
		case datalog.BuiltinLe:
			return x.Num() <= y.Num()
		case datalog.BuiltinGt:
			return x.Num() > y.Num()
		default:
			return x.Num() >= y.Num()
		}
	}
	return false
}
