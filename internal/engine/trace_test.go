package engine

import (
	"fmt"
	"testing"

	"magiccounting/internal/datalog"
	"magiccounting/internal/obs"
	"magiccounting/internal/relation"
)

func traceProgram(n int) *datalog.Program {
	src := "tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
	}
	return datalog.MustParse(src)
}

// TestEvalTraceMeterExact: the engine trace's per-span retrievals sum
// exactly to the store meter, and tracing changes neither stats nor
// derived tuples.
func TestEvalTraceMeterExact(t *testing.T) {
	for _, naive := range []bool{false, true} {
		name := "seminaive"
		if naive {
			name = "naive"
		}
		t.Run(name, func(t *testing.T) {
			plainStore := relation.NewStore()
			plain, err := Eval(traceProgram(12), plainStore, Options{Naive: naive})
			if err != nil {
				t.Fatal(err)
			}

			store := relation.NewStore()
			tr := obs.New("eval", store.Meter().Retrievals())
			traced, err := Eval(traceProgram(12), store, Options{Naive: naive, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			root := tr.Finish(store.Meter().Retrievals())
			if root == nil {
				t.Fatal("no trace produced")
			}
			if traced.Iterations != plain.Iterations || traced.Derived != plain.Derived {
				t.Errorf("tracing changed stats: %+v vs %+v", traced, plain)
			}
			if store.Meter().Retrievals() != plainStore.Meter().Retrievals() {
				t.Errorf("tracing changed the meter: %d vs %d",
					store.Meter().Retrievals(), plainStore.Meter().Retrievals())
			}
			if got, want := root.SumRetrievals(), store.Meter().Retrievals(); got != want {
				t.Errorf("span retrievals sum to %d, meter says %d", got, want)
			}
			if root.Find("stratum/0") == nil {
				t.Error("missing stratum span")
			}
			if root.Find("round") == nil {
				t.Error("missing round spans")
			}
			if root.Find("load") == nil {
				t.Error("missing load span")
			}
		})
	}
}

// TestEvalTraceRoundCap: fixpoints deeper than traceRoundCap merge
// their tail rounds into one span, keeping the sum exact.
func TestEvalTraceRoundCap(t *testing.T) {
	store := relation.NewStore()
	tr := obs.New("eval", 0)
	if _, err := Eval(traceProgram(traceRoundCap*2), store, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	root := tr.Finish(store.Meter().Retrievals())
	if got, want := root.SumRetrievals(), store.Meter().Retrievals(); got != want {
		t.Fatalf("capped trace sums to %d, meter %d", got, want)
	}
	stratum := root.Find("stratum/0")
	if stratum == nil {
		t.Fatal("missing stratum span")
	}
	rounds, tails := 0, 0
	for _, c := range stratum.Children {
		switch c.Name {
		case "round":
			rounds++
		case "rounds":
			tails++
		}
	}
	if rounds != traceRoundCap || tails != 1 {
		t.Errorf("got %d round spans and %d tails, want %d and 1", rounds, tails, traceRoundCap)
	}
}

// TestEvalTraceParallelRounds: tracing composes with the parallel
// round path (trace calls happen only at round boundaries on the
// coordinating goroutine).
func TestEvalTraceParallelRounds(t *testing.T) {
	src := "a(X, Y) :- e(X, Y).\nb(X, Y) :- f(X, Y).\na(X, Y) :- e(X, Z), a(Z, Y).\nb(X, Y) :- f(X, Z), b(Z, Y).\n"
	for i := 0; i < 16; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\nf(m%d, m%d).\n", i, i+1, i, i+1)
	}
	prog := datalog.MustParse(src)

	seq := relation.NewStore()
	seqStats, err := Eval(datalog.MustParse(src), seq, Options{})
	if err != nil {
		t.Fatal(err)
	}

	store := relation.NewStore()
	tr := obs.New("eval", 0)
	stats, err := Eval(prog, store, Options{Workers: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish(store.Meter().Retrievals())
	if stats.Derived != seqStats.Derived {
		t.Errorf("parallel traced run derived %d, sequential %d", stats.Derived, seqStats.Derived)
	}
	if got, want := root.SumRetrievals(), store.Meter().Retrievals(); got != want {
		t.Errorf("span retrievals sum to %d, meter says %d", got, want)
	}
}
