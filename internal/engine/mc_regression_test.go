// Package engine_test (external so it can import rewrite, which
// itself imports engine) pins the engine-level evaluation of the
// rewritten programs on the oracle sweep's minimized regression
// instances: the same Fact-2 answer sets the core solvers pin in
// internal/core must come out of MCProgram + bottom-up evaluation.
package engine_test

import (
	"sort"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/relation"
	"magiccounting/internal/rewrite"
)

// mcProgram builds the canonical strongly linear program for q:
// p(X,Y) :- e0(X,Y).  p(X,Y) :- l(X,X1), p(X1,Y1), r(Y,Y1).
// with the goal p(source, Y).
func mcProgram(q core.Query) (*datalog.Program, datalog.Atom) {
	p := &datalog.Program{}
	for _, pr := range q.L {
		p.AddFact(datalog.NewAtom("l", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.E {
		p.AddFact(datalog.NewAtom("e0", datalog.S(pr.From), datalog.S(pr.To)))
	}
	for _, pr := range q.R {
		p.AddFact(datalog.NewAtom("r", datalog.S(pr.From), datalog.S(pr.To)))
	}
	x, y, x1, y1 := datalog.V("X"), datalog.V("Y"), datalog.V("X1"), datalog.V("Y1")
	p.AddRule(datalog.NewRule(datalog.NewAtom("p", x, y), datalog.NewAtom("e0", x, y)))
	p.AddRule(datalog.NewRule(datalog.NewAtom("p", x, y),
		datalog.NewAtom("l", x, x1), datalog.NewAtom("p", x1, y1), datalog.NewAtom("r", y, y1)))
	goal := datalog.NewAtom("p", datalog.S(q.Source), y)
	p.AddQuery(goal)
	return p, goal
}

func rewrittenAnswers(t *testing.T, q core.Query, s core.Strategy, m core.Mode) []string {
	t.Helper()
	prog, goal := mcProgram(q)
	mc, renamed, err := rewrite.MCProgram(prog, goal, s, m)
	if err != nil {
		t.Fatalf("MCProgram(%s, %s): %v", s, m, err)
	}
	tuples, err := engine.Answers(mc, renamed, relation.NewStore(), engine.Options{})
	if err != nil {
		t.Fatalf("Answers(%s, %s): %v", s, m, err)
	}
	free := -1
	for i, a := range renamed.Args {
		if a.IsVar() {
			free = i
		}
	}
	set := make(map[string]bool, len(tuples))
	for _, tup := range tuples {
		set[tup[free].String()] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TestRewrittenProgramsMatchOracleRegressions evaluates every
// strategy/mode rewriting of the minimized regression instances
// through the Datalog engine and pins the hand-computed Fact-2
// answer sets.
func TestRewrittenProgramsMatchOracleRegressions(t *testing.T) {
	cases := []struct {
		name    string
		q       core.Query
		answers []string
	}{
		{
			name: "regular chain",
			q: core.Query{
				L:      []core.Pair{core.P("a", "b")},
				E:      []core.Pair{core.P("b", "x"), core.P("a", "w")},
				R:      []core.Pair{core.P("y", "x")},
				Source: "a",
			},
			answers: []string{"w", "y"},
		},
		{
			name: "multiple via skip arc",
			q: core.Query{
				L:      []core.Pair{core.P("a", "b"), core.P("b", "c"), core.P("a", "c")},
				E:      []core.Pair{core.P("c", "x")},
				R:      []core.Pair{core.P("y", "x"), core.P("z", "y")},
				Source: "a",
			},
			answers: []string{"y", "z"},
		},
		{
			name: "recurring two-cycle",
			q: core.Query{
				L:      []core.Pair{core.P("a", "b"), core.P("b", "a")},
				E:      []core.Pair{core.P("a", "x")},
				R:      []core.Pair{core.P("y", "x"), core.P("x", "y")},
				Source: "a",
			},
			answers: []string{"x"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, s := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
				for _, m := range []core.Mode{core.Independent, core.Integrated} {
					got := rewrittenAnswers(t, tc.q, s, m)
					if len(got) != len(tc.answers) {
						t.Errorf("%s/%s: answers %v, want %v", s, m, got, tc.answers)
						continue
					}
					for i := range got {
						if got[i] != tc.answers[i] {
							t.Errorf("%s/%s: answers %v, want %v", s, m, got, tc.answers)
							break
						}
					}
				}
			}
		})
	}
}
