package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"magiccounting/internal/datalog"
	"magiccounting/internal/relation"
)

// evalBoth evaluates src sequentially and with a forced worker pool
// and requires byte-identical outcomes: same stats, same meter total,
// and the same tuples in every relation of the store.
func evalBoth(t *testing.T, src string) {
	t.Helper()
	prog := datalog.MustParse(src)

	seqStore := relation.NewStore()
	seqStats, err := Eval(prog, seqStore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parStore := relation.NewStore()
	parStats, err := Eval(prog, parStore, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seqStats, parStats) {
		t.Errorf("stats: sequential %+v, parallel %+v", seqStats, parStats)
	}
	if s, p := seqStore.Meter().Retrievals(), parStore.Meter().Retrievals(); s != p {
		t.Errorf("retrievals: sequential %d, parallel %d", s, p)
	}
	seqNames, parNames := seqStore.Names(), parStore.Names()
	if !reflect.DeepEqual(seqNames, parNames) {
		t.Fatalf("relations: sequential %v, parallel %v", seqNames, parNames)
	}
	for _, name := range seqNames {
		sr, _ := seqStore.Lookup(name)
		pr, _ := parStore.Lookup(name)
		if !reflect.DeepEqual(sr.SortedTuples(), pr.SortedTuples()) {
			t.Errorf("%s: tuple sets differ between sequential and parallel", name)
		}
	}
}

// unionTCSrc builds a transitive closure over the union of two edge
// relations: a stratum with two independent recursive rules, the case
// the conflict gate lets run in parallel.
func unionTCSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		pred := "e1"
		if i%2 == 1 {
			pred = "e2"
		}
		fmt.Fprintf(&b, "%s(n%d, n%d).\n", pred, i, i+1)
		if i%5 == 0 && i+3 <= n {
			fmt.Fprintf(&b, "e2(n%d, n%d).\n", i, i+3)
		}
	}
	b.WriteString(`
path(X, Y) :- e1(X, Y).
path(X, Y) :- e2(X, Y).
path(X, Y) :- path(X, Z), e1(Z, Y).
path(X, Y) :- path(X, Z), e2(Z, Y).
?- path(n0, Y).
`)
	return b.String()
}

// mutualSrc builds a mutually recursive even/odd program: two rules
// with different heads in one stratum, each reading only the other's
// delta plus an EDB relation — parallelizable every delta round.
func mutualSrc(n int) string {
	var b strings.Builder
	b.WriteString("even(z0).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "num(z%d, z%d).\n", i, i+1)
	}
	b.WriteString(`
odd(Y) :- even(X), num(X, Y).
even(Y) :- odd(X), num(X, Y).
?- even(X).
`)
	return b.String()
}

// nonlinearSrc builds the nonlinear transitive closure: the recursive
// rule reads its own head at a non-delta position, so every round
// conflicts and the parallel run must fall back to sequential rounds.
func nonlinearSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(n%d, n%d).\n", i, i+1)
		if i%4 == 0 && i+2 <= n {
			fmt.Fprintf(&b, "e(n%d, n%d).\n", i, i+2)
		}
	}
	b.WriteString(`
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
?- tc(n0, Y).
`)
	return b.String()
}

func TestParallelEvalMatchesSequential(t *testing.T) {
	cases := map[string]string{
		"unionTC":   unionTCSrc(60),
		"mutual":    mutualSrc(80),
		"nonlinear": nonlinearSrc(24),
		"ancestor":  ancestorSrc,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { evalBoth(t, src) })
	}
}

// The same equivalence on random edge sets, as a property.
func TestParallelEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := 6 + rng.Intn(8)
		for i := 0; i < 3*n; i++ {
			pred := "e1"
			if rng.Intn(2) == 1 {
				pred = "e2"
			}
			fmt.Fprintf(&b, "%s(n%d, n%d).\n", pred, rng.Intn(n), rng.Intn(n))
		}
		b.WriteString(`
path(X, Y) :- e1(X, Y).
path(X, Y) :- e2(X, Y).
path(X, Y) :- path(X, Z), e1(Z, Y).
path(X, Y) :- path(X, Z), e2(Z, Y).
?- path(n0, Y).
`)
		evalBoth(t, b.String())
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// compileProbes must agree with the column specs matchAtom actually
// probes with, since the prepass builds exactly those indexes.
func TestCompileProbesBoundColumns(t *testing.T) {
	prog := datalog.MustParse(`
p(X, Y) :- e(a, X), f(X, Y), g(Y, b), X != Y.
?- p(X, Y).
`)
	r := prog.Rules[0]
	cols := compileProbes(r)
	want := [][]int{{0}, {0}, {0, 1}, nil}
	if !reflect.DeepEqual(cols, want) {
		t.Fatalf("compileProbes = %v, want %v", cols, want)
	}
}
