package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"magiccounting/internal/datalog"
	"magiccounting/internal/relation"
)

// transitiveClosure builds a tc program over a chain of n arcs, big
// enough to need many fixpoint rounds.
func transitiveClosure(t *testing.T, n int) *datalog.Program {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(n%d, n%d).\n", i, i+1)
	}
	b.WriteString("tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).\n")
	p, err := datalog.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEvalCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Eval(transitiveClosure(t, 8), relation.NewStore(), Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvalCtxCancelMidFixpoint(t *testing.T) {
	for _, naive := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel after evaluation has started: the per-round poll must
		// notice. A chain of 300 needs ~300 rounds, so cancelling from
		// a goroutine racing round 1 is reliably mid-run; the already-
		// cancelled case above covers the immediate path.
		go cancel()
		_, err := Eval(transitiveClosure(t, 300), relation.NewStore(), Options{Naive: naive, Ctx: ctx})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("naive=%v: err = %v, want nil or context.Canceled", naive, err)
		}
		cancel()
	}
}

func TestEvalNilCtxUnaffected(t *testing.T) {
	p := transitiveClosure(t, 8)
	stats, err := Eval(p, relation.NewStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Eval(transitiveClosure(t, 8), relation.NewStore(), Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != bg.Derived || stats.Iterations != bg.Iterations {
		t.Fatalf("background ctx changed evaluation: %+v vs %+v", stats, bg)
	}
}
