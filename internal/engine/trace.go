package engine

import (
	"magiccounting/internal/obs"
	"magiccounting/internal/relation"
)

// traceRoundCap bounds per-round child spans per stratum, mirroring
// the core solver's cap: rounds past it merge into one tail span with
// exact meter-delta accounting.
const traceRoundCap = 64

// roundTrace emits fixpoint-round spans under the open stratum span.
// It is a stack value; with tracing disabled every call is one nil
// check.
type roundTrace struct {
	tr    *obs.Trace
	meter *relation.Meter
	cur   *obs.Span
	seen  int
	n     int64
	tail  bool
}

// begin closes the previous round span and opens the next. delta is
// the number of delta tuples feeding the round (< 0 omits the attr,
// for the naive evaluator's full rounds).
func (rt *roundTrace) begin(round int, delta int64) {
	if rt.tr == nil {
		return
	}
	if rt.tail {
		rt.n++
		return
	}
	if rt.cur != nil {
		rt.tr.End(rt.cur, rt.meter.Retrievals())
	}
	rt.seen++
	if rt.seen > traceRoundCap {
		rt.tail = true
		rt.n = 1
		rt.cur = rt.tr.Start("rounds", rt.meter.Retrievals())
		rt.cur.Set("from", int64(round))
		return
	}
	rt.cur = rt.tr.Start("round", rt.meter.Retrievals())
	rt.cur.Set("index", int64(round))
	if delta >= 0 {
		rt.cur.Set("delta", delta)
	}
}

// done closes the open round (or tail) span.
func (rt *roundTrace) done() {
	if rt.cur == nil {
		return
	}
	if rt.tail {
		rt.cur.Set("rounds", rt.n)
	}
	rt.tr.End(rt.cur, rt.meter.Retrievals())
	rt.cur = nil
}
