package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestMethodRegistry(t *testing.T) {
	if len(Methods) != 13 {
		t.Fatalf("method count = %d, want 13", len(Methods))
	}
	seen := map[string]bool{}
	for _, m := range Methods {
		if m.Name == "" || m.Describe == "" || m.Run == nil {
			t.Fatalf("incomplete method def %+v", m)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate method %s", m.Name)
		}
		seen[m.Name] = true
	}
	if _, ok := MethodByName("magic"); !ok {
		t.Fatal("magic missing")
	}
	if _, ok := MethodByName("nosuch"); ok {
		t.Fatal("unknown method resolved")
	}
	if len(MethodNames()) != len(Methods) {
		t.Fatal("MethodNames length mismatch")
	}
}

func TestAllMethodsAgreeOnRegimeWorkloads(t *testing.T) {
	for _, regime := range []Regime{Regular, Acyclic, Cyclic} {
		q := RegimeWorkload(regime, 16)
		want, err := q.SolveNaive()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods {
			res, err := m.Run(q)
			if err != nil {
				if regime == Cyclic && m.Name == "counting" {
					continue // the expected unsafe case
				}
				t.Fatalf("%s on %s: %v", m.Name, regime, err)
			}
			if len(res.Answers) != len(want.Answers) {
				t.Fatalf("%s on %s: %d answers, want %d", m.Name, regime, len(res.Answers), len(want.Answers))
			}
		}
	}
}

func TestTab1ShapesHold(t *testing.T) {
	tab := Tab1([]int{16, 32})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		regime, counting, magic := row[0], row[4], row[5]
		if regime == "cyclic" {
			if counting != "unsafe" {
				t.Fatalf("cyclic counting = %s, want unsafe", counting)
			}
			continue
		}
		var c, m int64
		mustScan(t, counting, &c)
		mustScan(t, magic, &m)
		if regime == "regular" && c >= m {
			t.Fatalf("regular: counting %d should beat magic %d", c, m)
		}
	}
}

func TestTab1RatiosBounded(t *testing.T) {
	// The measured/Θ ratios must stay within a constant band across
	// the sweep — that is what "reproducing the Θ rows" means here.
	tab := Tab1([]int{16, 32, 64})
	for _, row := range tab.Rows {
		for _, col := range []int{8, 9} {
			if row[col] == "—" {
				continue
			}
			var ratio float64
			mustScan(t, row[col], &ratio)
			if ratio <= 0 || ratio > 8 {
				t.Fatalf("ratio %s out of band in row %v", row[col], row)
			}
		}
	}
}

func TestTab2BasicTracksWinner(t *testing.T) {
	tab := Tab2([]int{16, 32})
	for _, row := range tab.Rows {
		regime := row[0]
		var magic, bi, bt int64
		mustScan(t, row[3], &magic)
		mustScan(t, row[4], &bi)
		mustScan(t, row[5], &bt)
		switch regime {
		case "regular":
			var counting int64
			mustScan(t, row[2], &counting)
			if float64(bi) > 1.7*float64(counting) {
				t.Fatalf("regular basic %d vs counting %d", bi, counting)
			}
		default:
			if float64(bi) > 1.7*float64(magic) || float64(bt) > 1.7*float64(magic) {
				t.Fatalf("%s basic %d/%d vs magic %d", regime, bi, bt, magic)
			}
		}
	}
}

func TestTab3SingleBeatsBasic(t *testing.T) {
	tab := Tab3([]int{16, 32})
	for _, row := range tab.Rows {
		var b, si, st int64
		mustScan(t, row[5], &b)
		mustScan(t, row[6], &si)
		mustScan(t, row[7], &st)
		// S_IND ≤ B is a Θ relation: on frontier graphs where every
		// prefix node reaches the non-regular region (m_ĵ ≈ 0), the
		// independent single method pays its counting part on top of
		// nearly the basic method's magic part, so allow the additive
		// slack the Θ notation hides.
		if float64(si) > 1.3*float64(b) {
			t.Fatalf("single-ind %d should be <= 1.3x basic %d (row %v)", si, b, row)
		}
		if st > si {
			t.Fatalf("single-int %d should be <= single-ind %d (row %v)", st, si, row)
		}
	}
	// The integrated single method's advantage over basic must grow
	// with the regular prefix length.
	firstGap := gap(t, tab.Rows[0])
	lastGap := gap(t, tab.Rows[1])
	if lastGap <= firstGap {
		t.Fatalf("single advantage should grow with prefix: %f vs %f", firstGap, lastGap)
	}
}

func gap(t *testing.T, row []string) float64 {
	var b, st int64
	mustScan(t, row[5], &b)
	mustScan(t, row[7], &st)
	return float64(b) - float64(st)
}

func TestTab4MultipleBeatsSingle(t *testing.T) {
	tab := Tab4([]int{16, 32})
	for _, row := range tab.Rows {
		var si, mi, mt int64
		mustScan(t, row[3], &si)
		mustScan(t, row[5], &mi)
		mustScan(t, row[6], &mt)
		if mi > si {
			t.Fatalf("multiple-ind %d should be <= single-ind %d (row %v)", mi, si, row)
		}
		if mt > mi {
			t.Fatalf("multiple-int %d should be <= multiple-ind %d (row %v)", mt, mi, row)
		}
	}
}

func TestTab5RecurringBeatsMultipleStep2(t *testing.T) {
	tab := Tab5([]int{24, 48})
	for _, row := range tab.Rows {
		var mi, ri, rt, rs int64
		mustScan(t, row[3], &mi)
		mustScan(t, row[5], &ri)
		mustScan(t, row[6], &rt)
		mustScan(t, row[7], &rs)
		// Recurring wins on average (its Step 1 is costlier but Step 2
		// far cheaper on this shape); allow the asymptotic claim some
		// slack at small sizes.
		if float64(ri) > 2.2*float64(mi) {
			t.Fatalf("recurring-ind %d should not exceed multiple-ind %d by >2.2x", ri, mi)
		}
		if rt > ri {
			t.Fatalf("recurring-int %d should be <= recurring-ind %d", rt, ri)
		}
		if rs > rt {
			t.Fatalf("recurring-scc %d should be <= recurring-int %d (cheaper Step 1)", rs, rt)
		}
	}
}

func TestFig1Table(t *testing.T) {
	tab := Fig1()
	unsafeSeen := false
	for _, row := range tab.Rows {
		if row[3] == "unsafe" {
			if row[1] != "counting" || !strings.Contains(row[0], "cyclic") {
				t.Fatalf("unexpected unsafe row %v", row)
			}
			unsafeSeen = true
			continue
		}
		if !strings.Contains(row[2], "b3") || !strings.Contains(row[2], "b9") {
			t.Fatalf("row %v missing paper answers", row)
		}
	}
	if !unsafeSeen {
		t.Fatal("cyclic counting row should be unsafe")
	}
}

func TestFig2Table(t *testing.T) {
	tab := Fig2()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Basic assigns all 12 nodes to RM; recurring only the 4 cycle
	// nodes.
	if tab.Rows[0][1] != "12" || tab.Rows[3][1] != "4" {
		t.Fatalf("RM sizes = %v / %v", tab.Rows[0], tab.Rows[3])
	}
}

func TestFig3HierarchyHolds(t *testing.T) {
	violations := CheckHierarchy([]int{16, 32, 64})
	for _, v := range violations {
		t.Error(v)
	}
}

func TestFig3TableRenders(t *testing.T) {
	tab := Fig3([]int{16})
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "mc-recurring-scc") || !strings.Contains(out, "unsafe") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "tab3", "tab4", "tab5", "fig1", "fig2", "fig3"} {
		tab, err := ByID(id, []int{8, 16})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
	if _, err := ByID("nope", DefaultSizes); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestAllProducesEveryExperiment(t *testing.T) {
	tables := All()
	if len(tables) != 8 {
		t.Fatalf("All() = %d tables, want 8", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		ids[tab.ID] = true
	}
	for _, want := range []string{"Table 1", "Table 5", "Figure 1", "Figure 3"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestRegimeWorkloadClasses(t *testing.T) {
	if p := RegimeWorkload(Regular, 20).Params(); !p.Regular {
		t.Fatal("regular workload not regular")
	}
	if p := RegimeWorkload(Acyclic, 20).Params(); p.Regular || p.Cyclic {
		t.Fatal("acyclic workload wrong class")
	}
	if p := RegimeWorkload(Cyclic, 20).Params(); !p.Cyclic {
		t.Fatal("cyclic workload not cyclic")
	}
}

func TestCostRendersUnsafe(t *testing.T) {
	counting, _ := MethodByName("counting")
	q := RegimeWorkload(Cyclic, 12)
	if cost(counting, q) != "unsafe" {
		t.Fatal("cost should render unsafe")
	}
}

func TestMustCostPanicsOnUnsafe(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	counting, _ := MethodByName("counting")
	mustCost(counting, RegimeWorkload(Cyclic, 12))
}

func mustScan(t *testing.T, s string, v interface{}) {
	t.Helper()
	if _, err := fmt.Sscan(s, v); err != nil {
		t.Fatalf("scan %q: %v", s, err)
	}
}
