package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 3}, {0.99, 5}, {0.01, 1}, {1.0, 5},
	}
	for _, tc := range cases {
		if got := Percentile(samples, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	// The input must not be reordered.
	if samples[0] != 5 {
		t.Errorf("Percentile sorted its input in place: %v", samples)
	}
}

func TestParseMetrics(t *testing.T) {
	text := `# HELP mc_queries_total Queries received.
# TYPE mc_queries_total counter
mc_queries_total 42

mc_query_duration_seconds_bucket{le="0.001"} 7
mc_queries_by_regime_total{regime="acyclic"} 3
mc_query_latency_seconds_sum 1.25
`
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"mc_queries_total": 42,
		`mc_query_duration_seconds_bucket{le="0.001"}`: 7,
		`mc_queries_by_regime_total{regime="acyclic"}`: 3,
		"mc_query_latency_seconds_sum":                 1.25,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("metric %s = %v, want %v", k, m[k], v)
		}
	}
	if _, err := ParseMetrics(strings.NewReader("garbage_line_without_value\n")); err == nil {
		t.Error("malformed line did not error")
	}
}

// consistentMetrics is a scrape satisfying every invariant.
func consistentMetrics() map[string]float64 {
	return map[string]float64{
		"mc_compiles_total":               10,
		"mc_full_compiles_total":          4,
		"mc_delta_compiles_total":         6,
		"mc_queries_total":                100,
		"mc_cache_hits_total":             60,
		"mc_cache_misses_total":           30,
		"mc_query_errors_total":           3,
		"mc_queries_rejected_total":       0,
		"mc_bad_requests_total":           7,
		"mc_query_timeouts_total":         1,
		"mc_query_duration_seconds_count": 93,
		"mc_batch_duration_seconds_count": 5,
		"mc_batch_requests_total":         5,
		"mc_inflight_queries":             0,
		"mc_snapshot_failures_total":      0,
		"mc_chain_collapses_total":        2,
		"mc_resident_compiled":            3,
		"mc_max_resident_compiled":        8,
	}
}

func TestCheckInvariantsHold(t *testing.T) {
	if v := CheckInvariants(consistentMetrics()); len(v) != 0 {
		t.Fatalf("consistent scrape reported violations: %v", v)
	}
}

func TestCheckInvariantsCatchSkew(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(map[string]float64)
	}{
		{"compile partition", func(m map[string]float64) { m["mc_delta_compiles_total"]++ }},
		{"query accounting", func(m map[string]float64) { m["mc_bad_requests_total"]-- }},
		{"timeouts above errors", func(m map[string]float64) { m["mc_query_timeouts_total"] = 4 }},
		{"latency samples above queries", func(m map[string]float64) { m["mc_query_duration_seconds_count"] = 101 }},
		{"batch samples above batches", func(m map[string]float64) { m["mc_batch_duration_seconds_count"] = 6 }},
		{"stuck inflight", func(m map[string]float64) { m["mc_inflight_queries"] = 2 }},
		{"snapshot failure", func(m map[string]float64) { m["mc_snapshot_failures_total"] = 1 }},
		{"collapses above delta compiles", func(m map[string]float64) { m["mc_chain_collapses_total"] = 7 }},
		{"resident above cap", func(m map[string]float64) { m["mc_resident_compiled"] = 9 }},
	}
	for _, tc := range cases {
		m := consistentMetrics()
		tc.mutate(m)
		if v := CheckInvariants(m); len(v) != 1 {
			t.Errorf("%s: got %d violations %v, want exactly 1", tc.name, len(v), v)
		}
	}
}

func TestCheckInvariantsReportMissingMetric(t *testing.T) {
	m := consistentMetrics()
	delete(m, "mc_compiles_total")
	v := CheckInvariants(m)
	if len(v) != 1 || !strings.Contains(v[0], "metric missing") || !strings.Contains(v[0], "mc_compiles_total") {
		t.Fatalf("missing metric not reported as such: %v", v)
	}
}

func TestEvaluateSLO(t *testing.T) {
	report := func() *SoakReport {
		return &SoakReport{
			Classes: map[string]*ClassStats{
				"query": MakeClassStats([]float64{1, 2, 3, 40}, map[int]int{200: 4}),
				"batch": MakeClassStats([]float64{10, 20}, map[int]int{200: 2}),
			},
		}
	}

	r := report()
	r.Evaluate(DefaultSLO())
	if !r.Pass || len(r.SLOViolations) != 0 {
		t.Fatalf("clean run failed default SLO: %v", r.SLOViolations)
	}

	// A tight p99 ceiling trips on the slow tail.
	r = report()
	r.Evaluate(SLOSpec{Classes: map[string]ClassSLO{"query": {P99MS: 10}}})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "query p99") {
		t.Fatalf("p99 ceiling not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}

	// A class the run never exercised is not a violation.
	r = report()
	r.Evaluate(SLOSpec{Classes: map[string]ClassSLO{"append": {P50MS: 1}}})
	if !r.Pass {
		t.Fatalf("absent class tripped its ceiling: %v", r.SLOViolations)
	}

	// Divergences, unexpected statuses, and invariant violations fail
	// at their (zero) default ceilings.
	r = report()
	r.Oracle.Divergences = 1
	r.UnexpectedStatuses = []string{"op 9 query: status 500"}
	r.InvariantViolations = []string{"compiles == full + delta: off by one"}
	r.Evaluate(DefaultSLO())
	if r.Pass || len(r.SLOViolations) != 3 {
		t.Fatalf("hard failures not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}
}

func TestSoakReportRoundTrip(t *testing.T) {
	r := &SoakReport{
		Seed: 42, DurationSeconds: 3, TargetQPS: 100, AchievedQPS: 98.5, Ops: 300,
		Classes: map[string]*ClassStats{
			"query": MakeClassStats([]float64{1, 2}, map[int]int{200: 2}),
		},
		Oracle: OracleCheck{Generations: 4, Sources: 20},
	}
	r.Evaluate(DefaultSLO())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seed": 42`, `"pass": true`, `"p50_ms"`, `"200": 2`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON report missing %s:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	r.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"PASS", "query", "oracle: 20 sources over 4 generations"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// memSamples builds n evenly spaced samples whose heap follows f(i).
func memSamples(n int, heap func(i int) int64) []MemorySample {
	out := make([]MemorySample, n)
	for i := range out {
		out[i] = MemorySample{
			ElapsedSeconds:   float64(i),
			HeapInuseBytes:   heap(i),
			CompiledBytes:    1 << 20,
			ResidentCompiled: 3,
		}
	}
	return out
}

func TestMakeMemoryCheck(t *testing.T) {
	// Flat heap: mid and late watermarks agree.
	mc := MakeMemoryCheck(memSamples(16, func(int) int64 { return 100 }))
	if mc.Samples != 16 || mc.HeapMidBytes != 100 || mc.HeapLateBytes != 100 {
		t.Fatalf("flat heap folded wrong: %+v", mc)
	}
	if mc.CompiledMaxBytes != 1<<20 || mc.ResidentMax != 3 {
		t.Fatalf("compiled/resident maxima wrong: %+v", mc)
	}
	// Monotone growth: late watermark well above mid.
	mc = MakeMemoryCheck(memSamples(16, func(i int) int64 { return int64(100 * (i + 1)) }))
	if mc.HeapLateBytes <= mc.HeapMidBytes {
		t.Fatalf("growing heap not detected: mid=%d late=%d", mc.HeapMidBytes, mc.HeapLateBytes)
	}
	// Too few samples for watermarks: maxima still folded.
	mc = MakeMemoryCheck(memSamples(4, func(int) int64 { return 100 }))
	if mc.Samples != 4 || mc.HeapMidBytes != 0 || mc.HeapLateBytes != 0 {
		t.Fatalf("short run should skip watermarks: %+v", mc)
	}
	if mc.CompiledMaxBytes != 1<<20 {
		t.Fatalf("short run lost the compiled max: %+v", mc)
	}
}

func TestEvaluateMemoryAndRecoverySLO(t *testing.T) {
	base := func() *SoakReport {
		return &SoakReport{Classes: map[string]*ClassStats{}}
	}

	// Flat heap passes the growth rule.
	r := base()
	r.Memory = MakeMemoryCheck(memSamples(16, func(int) int64 { return 1 << 20 }))
	r.Evaluate(SLOSpec{MaxHeapGrowthFrac: 0.25})
	if !r.Pass {
		t.Fatalf("flat heap failed the growth rule: %v", r.SLOViolations)
	}

	// Monotone growth trips it.
	r = base()
	r.Memory = MakeMemoryCheck(memSamples(16, func(i int) int64 { return int64((i + 1) << 20) }))
	r.Evaluate(SLOSpec{MaxHeapGrowthFrac: 0.25})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "heap watermark grew") {
		t.Fatalf("heap growth not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}

	// An armed heap rule with no samples is a violation, not a pass.
	r = base()
	r.Evaluate(SLOSpec{MaxHeapGrowthFrac: 0.25})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "no usable memory samples") {
		t.Fatalf("missing samples not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}

	// Compiled-bytes ceiling.
	r = base()
	r.Memory = MakeMemoryCheck(memSamples(16, func(int) int64 { return 1 << 20 }))
	r.Evaluate(SLOSpec{MaxCompiledBytes: 1 << 10})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "compiled-artifact estimate") {
		t.Fatalf("compiled ceiling not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}

	// Recovery floor and boundary failures.
	r = base()
	r.Recoveries = 1
	r.Evaluate(SLOSpec{MinRecoveries: 2})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "recoveries below") {
		t.Fatalf("recovery floor not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}
	r = base()
	r.Recoveries = 2
	r.RecoveryFailures = []string{"restart 1: generation went backwards"}
	r.Evaluate(SLOSpec{MinRecoveries: 2})
	if r.Pass || len(r.SLOViolations) != 1 || !strings.Contains(r.SLOViolations[0], "recovery failure") {
		t.Fatalf("boundary failure not enforced: pass=%v %v", r.Pass, r.SLOViolations)
	}
	r = base()
	r.Recoveries = 2
	r.Evaluate(SLOSpec{MinRecoveries: 2})
	if !r.Pass {
		t.Fatalf("satisfied recovery spec failed: %v", r.SLOViolations)
	}
}
