// Package harness defines one executable experiment per table and
// figure of the paper's evaluation, running the core methods over
// generated workloads and reporting measured tuple-retrieval costs
// next to the paper's Θ predictions. cmd/mcbench, bench_test.go, and
// EXPERIMENTS.md are all driven from here.
package harness

import (
	"fmt"
	"io"
	"strings"

	"magiccounting/internal/core"
)

// MethodDef names a runnable method.
type MethodDef struct {
	// Name is the CLI-facing identifier, e.g. "mc-multiple-int".
	Name string
	// Describe is a one-line human description.
	Describe string
	// Run evaluates a query with the method.
	Run func(core.Query) (*core.Result, error)
	// RunOpts evaluates with run options (context, tracing). Nil for
	// methods with no options-taking entry point (naive, magic), which
	// therefore cannot be traced.
	RunOpts func(core.Query, core.Options) (*core.Result, error)
	// RunC evaluates a bound source against a pre-built Compiled — the
	// build-once path for callers solving many sources over one
	// database (mcq -sources, the compile amortization probes).
	RunC func(*core.Compiled, string, core.Options) (*core.Result, error)
}

// Methods lists every evaluable method: the naive ground truth, the
// two baselines, the eight magic counting family members, and the two
// extensions.
var Methods = []MethodDef{
	{"naive", "naive bottom-up evaluation of the original program", core.Query.SolveNaive, nil,
		func(c *core.Compiled, src string, _ core.Options) (*core.Result, error) { return c.SolveNaive(src) }},
	{"counting", "counting method (§2); unsafe on cyclic magic graphs", core.Query.SolveCounting,
		func(q core.Query, o core.Options) (*core.Result, error) { return q.SolveCountingOpts(o) },
		func(c *core.Compiled, src string, o core.Options) (*core.Result, error) { return c.SolveCounting(src, o) }},
	{"counting-cyclic", "generalized counting extension (safe, [MPS]/[SZ2] footnote)", core.Query.SolveCountingCyclic,
		func(q core.Query, o core.Options) (*core.Result, error) { return q.SolveCountingCyclicOpts(o) },
		func(c *core.Compiled, src string, o core.Options) (*core.Result, error) { return c.SolveCountingCyclic(src, o) }},
	{"magic", "magic set method (§2)", core.Query.SolveMagic, nil,
		func(c *core.Compiled, src string, _ core.Options) (*core.Result, error) { return c.SolveMagic(src) }},
	{"mc-basic-ind", "basic magic counting, independent (§4, §6)", mc(core.Basic, core.Independent), mcOpts(core.Basic, core.Independent), mcC(core.Basic, core.Independent)},
	{"mc-basic-int", "basic magic counting, integrated (§5, §6)", mc(core.Basic, core.Integrated), mcOpts(core.Basic, core.Integrated), mcC(core.Basic, core.Integrated)},
	{"mc-single-ind", "single magic counting, independent (§7)", mc(core.Single, core.Independent), mcOpts(core.Single, core.Independent), mcC(core.Single, core.Independent)},
	{"mc-single-int", "single magic counting, integrated (§7; the [SZ1] method)", mc(core.Single, core.Integrated), mcOpts(core.Single, core.Integrated), mcC(core.Single, core.Integrated)},
	{"mc-multiple-ind", "multiple magic counting, independent (§8)", mc(core.Multiple, core.Independent), mcOpts(core.Multiple, core.Independent), mcC(core.Multiple, core.Independent)},
	{"mc-multiple-int", "multiple magic counting, integrated (§8)", mc(core.Multiple, core.Integrated), mcOpts(core.Multiple, core.Integrated), mcC(core.Multiple, core.Integrated)},
	{"mc-recurring-ind", "recurring magic counting, independent (§9)", mc(core.Recurring, core.Independent), mcOpts(core.Recurring, core.Independent), mcC(core.Recurring, core.Independent)},
	{"mc-recurring-int", "recurring magic counting, integrated (§9)", mc(core.Recurring, core.Integrated), mcOpts(core.Recurring, core.Integrated), mcC(core.Recurring, core.Integrated)},
	{"mc-recurring-scc", "recurring integrated with the Tarjan Step 1 (§9 improvement)",
		func(q core.Query) (*core.Result, error) {
			return q.SolveMagicCountingOpts(core.Recurring, core.Integrated, core.Options{SCCStep1: true})
		},
		func(q core.Query, o core.Options) (*core.Result, error) {
			o.SCCStep1 = true
			return q.SolveMagicCountingOpts(core.Recurring, core.Integrated, o)
		},
		func(c *core.Compiled, src string, o core.Options) (*core.Result, error) {
			o.SCCStep1 = true
			return c.Solve(src, core.Recurring, core.Integrated, o)
		}},
}

func mc(s core.Strategy, m core.Mode) func(core.Query) (*core.Result, error) {
	return func(q core.Query) (*core.Result, error) { return q.SolveMagicCounting(s, m) }
}

func mcOpts(s core.Strategy, m core.Mode) func(core.Query, core.Options) (*core.Result, error) {
	return func(q core.Query, o core.Options) (*core.Result, error) {
		return q.SolveMagicCountingOpts(s, m, o)
	}
}

func mcC(s core.Strategy, m core.Mode) func(*core.Compiled, string, core.Options) (*core.Result, error) {
	return func(c *core.Compiled, src string, o core.Options) (*core.Result, error) {
		return c.Solve(src, s, m, o)
	}
}

// MethodByName finds a method definition.
func MethodByName(name string) (MethodDef, bool) {
	for _, m := range Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodDef{}, false
}

// MethodNames lists the registered method names in order.
func MethodNames() []string {
	names := make([]string, len(Methods))
	for i, m := range Methods {
		names[i] = m.Name
	}
	return names
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// cost runs a method and formats its retrieval count; errors (the
// counting method's ErrUnsafe) render as the paper's "unsafe".
func cost(def MethodDef, q core.Query) string {
	res, err := def.Run(q)
	if err != nil {
		return "unsafe"
	}
	return fmt.Sprintf("%d", res.Stats.Retrievals)
}

// mustCost runs a method that is expected to succeed and returns the
// retrieval count.
func mustCost(def MethodDef, q core.Query) int64 {
	res, err := def.Run(q)
	if err != nil {
		panic(fmt.Sprintf("harness: %s failed: %v", def.Name, err))
	}
	return res.Stats.Retrievals
}
