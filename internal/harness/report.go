package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteHierarchyDOT renders Figure 3's partial order as Graphviz DOT:
// one node per method, one arc per ≤ claim, labeled with the regimes
// it holds on (solid for strict claims, dashed for average-case
// ones, matching the paper's solid/dotted arcs).
func WriteHierarchyDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, `digraph "fig3_hierarchy" {`); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=BT;`)
	nodes := map[string]bool{}
	for _, c := range Fig3Claims {
		nodes[c.Left] = true
		nodes[c.Right] = true
	}
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %q;\n", n)
	}
	for _, c := range Fig3Claims {
		style := "solid"
		if c.Slack > 1.0 {
			style = "dashed"
		}
		label := ""
		for i, r := range c.Regimes {
			if i > 0 {
				label += ","
			}
			label += string(r)[:1] // R, a, c initials as the paper labels arcs
		}
		fmt.Fprintf(w, "  %q -> %q [style=%s, label=%q];\n", c.Left, c.Right, style, label)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// JSONTable is the machine-readable form of a Table.
type JSONTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteJSON renders tables as a JSON array, for downstream plotting.
func WriteJSON(w io.Writer, tables []*Table) error {
	out := make([]JSONTable, len(tables))
	for i, t := range tables {
		out[i] = JSONTable{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
