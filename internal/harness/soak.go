package harness

// This file is the analysis half of the soak harness: the SLO spec
// cmd/mcsoak asserts at end of run, the nearest-rank percentile used
// for per-class latency stats, a Prometheus text-exposition parser for
// the final /metrics scrape, the metric-consistency invariants that
// must hold on any idle server, and the SoakReport the driver emits as
// JSON and as a human summary. It is all pure computation — the HTTP
// driving lives in cmd/mcsoak — so every piece is unit-testable.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ClassSLO is the latency ceiling for one request class, in
// milliseconds. A zero ceiling is unlimited, so a partial spec file
// only constrains what it names.
type ClassSLO struct {
	P50MS float64 `json:"p50_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
}

// SLOSpec is the declarative pass/fail contract a soak run is held
// to. Classes is keyed by request class ("query", "bad", "batch",
// "append", "stats" — the workload.OpKind names). The Max* ceilings
// all default to zero: any oracle divergence, unexpected HTTP status,
// or metric-invariant violation fails the run unless the spec says
// otherwise.
type SLOSpec struct {
	Classes                map[string]ClassSLO `json:"classes"`
	MaxDivergences         int                 `json:"max_divergences"`
	MaxUnexpectedStatuses  int                 `json:"max_unexpected_statuses"`
	MaxInvariantViolations int                 `json:"max_invariant_violations"`
	// MaxHeapGrowthFrac is the heap-watermark ceiling: the late-run
	// heap-in-use watermark may exceed the mid-run watermark by at
	// most this fraction (0.25 = 25% growth). Mid vs late (rather than
	// start vs end) skips the warm-up ramp, so what the rule catches
	// is monotonic growth in steady state — the leak signature. Zero
	// disables the rule; it also needs memory samples in the report.
	MaxHeapGrowthFrac float64 `json:"max_heap_growth_frac,omitempty"`
	// MaxCompiledBytes caps the resident compiled-artifact estimate
	// observed at any sample. Zero disables.
	MaxCompiledBytes int64 `json:"max_compiled_bytes,omitempty"`
	// MinRecoveries is the floor on kill/restart cycles a
	// fault-injection run must complete (each one verified across the
	// boundary); a run configured to inject faults that never did is a
	// vacuous pass. Zero disables.
	MinRecoveries int `json:"min_recoveries,omitempty"`
}

// DefaultSLO is the ceiling set the CI smoke job runs under: generous
// enough that a loaded shared runner passes, tight enough that a
// serving-path regression (a batch in the singleton window, a solver
// stall) still trips it.
func DefaultSLO() SLOSpec {
	return SLOSpec{
		Classes: map[string]ClassSLO{
			"query":  {P50MS: 50, P99MS: 250},
			"bad":    {P50MS: 50, P99MS: 250},
			"batch":  {P50MS: 250, P99MS: 1000},
			"append": {P50MS: 250, P99MS: 2000},
			"stats":  {P50MS: 50, P99MS: 250},
		},
	}
}

// LoadSLO reads a JSON SLOSpec from path. The file replaces the
// default spec wholesale; zero-valued ceilings mean unlimited.
func LoadSLO(path string) (SLOSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SLOSpec{}, err
	}
	var spec SLOSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return SLOSpec{}, fmt.Errorf("harness: parse SLO spec %s: %w", path, err)
	}
	return spec, nil
}

// Percentile returns the p-th (0..1) value of samples by nearest rank
// on a sorted copy, matching the server's own ring-buffer percentile
// so driver-side and server-side numbers are comparable. Empty input
// reads 0.
func Percentile(samples []float64, p float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	buf := make([]float64, n)
	copy(buf, samples)
	sort.Float64s(buf)
	rank := int(p*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return buf[rank-1]
}

// ParseMetrics reads a Prometheus text exposition into a flat map.
// Keys are the series as written — "mc_queries_total" for plain
// series, `mc_queries_by_regime_total{regime="acyclic"}` for labeled
// ones — so invariant checks look up exact names. Comment and blank
// lines are skipped; a malformed sample line is an error (the scrape
// came from our own exposition writer, so leniency would only hide
// bugs in it).
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("harness: malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("harness: metric line %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

// invariant is one metric-consistency rule: check receives a lookup
// that records any metric it needs as required, so a scrape missing
// one of them reports "metric missing" instead of silently passing on
// zeros.
type invariant struct {
	name  string
	check func(get func(string) float64) (ok bool, detail string)
}

// invariants are the consistency rules every idle (no requests in
// flight, not shut down) server must satisfy, recomputed from the raw
// /metrics scrape rather than trusted from /v1/stats. They are the
// checks that originally flushed out the InFlight, bad-request, and
// batch-latency accounting bugs.
var invariants = []invariant{
	{"compiles == full + delta", func(get func(string) float64) (bool, string) {
		c, f, d := get("mc_compiles_total"), get("mc_full_compiles_total"), get("mc_delta_compiles_total")
		return c == f+d, fmt.Sprintf("compiles=%g full=%g delta=%g", c, f, d)
	}},
	{"queries == hits + misses + errors + rejected + bad", func(get func(string) float64) (bool, string) {
		q := get("mc_queries_total")
		h, m := get("mc_cache_hits_total"), get("mc_cache_misses_total")
		e, rej, bad := get("mc_query_errors_total"), get("mc_queries_rejected_total"), get("mc_bad_requests_total")
		return q == h+m+e+rej+bad,
			fmt.Sprintf("queries=%g hits=%g misses=%g errors=%g rejected=%g bad=%g", q, h, m, e, rej, bad)
	}},
	{"timeouts <= errors", func(get func(string) float64) (bool, string) {
		to, e := get("mc_query_timeouts_total"), get("mc_query_errors_total")
		return to <= e, fmt.Sprintf("timeouts=%g errors=%g", to, e)
	}},
	{"query latency samples <= queries", func(get func(string) float64) (bool, string) {
		n, q := get("mc_query_duration_seconds_count"), get("mc_queries_total")
		return n <= q, fmt.Sprintf("samples=%g queries=%g", n, q)
	}},
	{"batch latency samples <= batch requests", func(get func(string) float64) (bool, string) {
		n, b := get("mc_batch_duration_seconds_count"), get("mc_batch_requests_total")
		return n <= b, fmt.Sprintf("samples=%g batches=%g", n, b)
	}},
	{"no queries in flight", func(get func(string) float64) (bool, string) {
		n := get("mc_inflight_queries")
		return n == 0, fmt.Sprintf("inflight=%g", n)
	}},
	{"no snapshot failures", func(get func(string) float64) (bool, string) {
		n := get("mc_snapshot_failures_total")
		return n == 0, fmt.Sprintf("failures=%g", n)
	}},
	{"chain collapses <= delta compiles", func(get func(string) float64) (bool, string) {
		c, d := get("mc_chain_collapses_total"), get("mc_delta_compiles_total")
		return c <= d, fmt.Sprintf("collapses=%g delta=%g", c, d)
	}},
	{"resident compiled within configured cap", func(get func(string) float64) (bool, string) {
		// mc_resident_compiled is DeltaDepth+1, and the collapse fires
		// when a fresh extend reaches the cap — so depth stays < cap and
		// resident stays <= cap. A cap of 0 in the scrape means the
		// server disabled it (negative config); nothing to assert.
		r, limit := get("mc_resident_compiled"), get("mc_max_resident_compiled")
		if limit <= 0 {
			return true, "cap disabled"
		}
		return r <= limit, fmt.Sprintf("resident=%g cap=%g", r, limit)
	}},
}

// CheckInvariants evaluates every metric-consistency rule against a
// parsed /metrics scrape and returns one violation string per broken
// rule (empty means all hold). A rule whose metrics are absent from
// the scrape is reported broken, not skipped.
func CheckInvariants(metrics map[string]float64) []string {
	var violations []string
	for _, inv := range invariants {
		var missing []string
		get := func(name string) float64 {
			v, ok := metrics[name]
			if !ok {
				missing = append(missing, name)
			}
			return v
		}
		ok, detail := inv.check(get)
		if len(missing) > 0 {
			violations = append(violations, fmt.Sprintf("%s: metric missing: %s", inv.name, strings.Join(missing, ", ")))
			continue
		}
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: %s", inv.name, detail))
		}
	}
	return violations
}

// ClassStats summarizes one request class's latency and status
// distribution over a soak run. Statuses is keyed by the decimal HTTP
// status (string-keyed for JSON).
type ClassStats struct {
	Count    int            `json:"count"`
	P50MS    float64        `json:"p50_ms"`
	P99MS    float64        `json:"p99_ms"`
	MaxMS    float64        `json:"max_ms"`
	Statuses map[string]int `json:"statuses"`
}

// MakeClassStats folds raw millisecond samples and a status histogram
// into the report form.
func MakeClassStats(ms []float64, statuses map[int]int) *ClassStats {
	cs := &ClassStats{Count: len(ms), Statuses: make(map[string]int, len(statuses))}
	cs.P50MS = Percentile(ms, 0.50)
	cs.P99MS = Percentile(ms, 0.99)
	for _, v := range ms {
		if v > cs.MaxMS {
			cs.MaxMS = v
		}
	}
	for code, n := range statuses {
		cs.Statuses[strconv.Itoa(code)] = n
	}
	return cs
}

// OracleCheck summarizes the end-of-run answer verification:
// Generations and Sources count what was replayed through the oracle,
// Divergences counts answers that disagreed with it (or the same
// (generation, source) answered two different ways by the server),
// Unverifiable counts sampled answers skipped because the ledger had
// no complete fact set for their generation (a lost append response).
type OracleCheck struct {
	Generations  int      `json:"generations"`
	Sources      int      `json:"sources"`
	Divergences  int      `json:"divergences"`
	Unverifiable int      `json:"unverifiable"`
	Details      []string `json:"details,omitempty"`
}

// MemorySample is one periodic scrape of the server's /v1/stats
// memory block during a soak.
type MemorySample struct {
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	HeapInuseBytes   int64   `json:"heap_inuse_bytes"`
	CompiledBytes    int64   `json:"compiled_bytes"`
	ResidentCompiled int     `json:"resident_compiled"`
}

// MemoryCheck folds a soak's memory samples into the watermarks the
// SLO rules compare: HeapMidBytes is the peak heap over the second
// quarter of samples (past warm-up, before any late-run growth),
// HeapLateBytes the peak over the final quarter. A leak shows as late
// well above mid; a bounded server holds them within the allowed
// fraction of each other.
type MemoryCheck struct {
	Samples          int   `json:"samples"`
	HeapMidBytes     int64 `json:"heap_mid_bytes"`
	HeapLateBytes    int64 `json:"heap_late_bytes"`
	CompiledMaxBytes int64 `json:"compiled_max_bytes"`
	ResidentMax      int   `json:"resident_max"`
}

// MakeMemoryCheck computes the watermarks from raw samples. Fewer
// than 8 samples (the windows would be 1-2 points of GC noise)
// returns a check with only Samples set; Evaluate treats that as "no
// memory data" when a heap rule is armed.
func MakeMemoryCheck(samples []MemorySample) *MemoryCheck {
	mc := &MemoryCheck{Samples: len(samples)}
	for _, s := range samples {
		if s.CompiledBytes > mc.CompiledMaxBytes {
			mc.CompiledMaxBytes = s.CompiledBytes
		}
		if s.ResidentCompiled > mc.ResidentMax {
			mc.ResidentMax = s.ResidentCompiled
		}
	}
	n := len(samples)
	if n < 8 {
		return mc
	}
	peak := func(lo, hi int) int64 {
		var p int64
		for _, s := range samples[lo:hi] {
			if s.HeapInuseBytes > p {
				p = s.HeapInuseBytes
			}
		}
		return p
	}
	mc.HeapMidBytes = peak(n/4, n/2)
	mc.HeapLateBytes = peak(3*n/4, n)
	return mc
}

// SoakReport is the full outcome of one soak run, written as JSON for
// CI artifacts and rendered as a summary for humans. Pass is set by
// Evaluate.
type SoakReport struct {
	Seed            int64                  `json:"seed"`
	DurationSeconds float64                `json:"duration_seconds"`
	TargetQPS       float64                `json:"target_qps"`
	AchievedQPS     float64                `json:"achieved_qps"`
	Ops             int                    `json:"ops"`
	Classes         map[string]*ClassStats `json:"classes"`
	Oracle          OracleCheck            `json:"oracle"`
	// UnexpectedStatuses lists responses whose HTTP status was not the
	// one the operation's kind predicts (200, or 400 for the
	// intentional probes), capped by the driver.
	UnexpectedStatuses []string `json:"unexpected_statuses,omitempty"`
	// InvariantViolations is CheckInvariants over the final scrape.
	InvariantViolations []string `json:"invariant_violations,omitempty"`
	// Recoveries counts completed kill/restart cycles under fault
	// injection; RecoveryFailures lists boundary checks that failed
	// (a restart that lost generations, a child that never came back).
	Recoveries       int      `json:"recoveries,omitempty"`
	RecoveryFailures []string `json:"recovery_failures,omitempty"`
	// Memory is the folded memory-sample record (nil when the run did
	// not sample).
	Memory *MemoryCheck `json:"memory,omitempty"`
	// SLOViolations and Pass are filled by Evaluate.
	SLOViolations []string `json:"slo_violations,omitempty"`
	Pass          bool     `json:"pass"`
}

// Evaluate asserts spec against the report, filling SLOViolations and
// Pass. Latency ceilings apply only to classes the spec names and
// only when nonzero; the divergence, status, and invariant ceilings
// always apply.
func (r *SoakReport) Evaluate(spec SLOSpec) {
	r.SLOViolations = nil
	var names []string
	for name := range spec.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		slo := spec.Classes[name]
		cs := r.Classes[name]
		if cs == nil || cs.Count == 0 {
			continue
		}
		if slo.P50MS > 0 && cs.P50MS > slo.P50MS {
			r.SLOViolations = append(r.SLOViolations,
				fmt.Sprintf("%s p50 %.2fms exceeds ceiling %.2fms", name, cs.P50MS, slo.P50MS))
		}
		if slo.P99MS > 0 && cs.P99MS > slo.P99MS {
			r.SLOViolations = append(r.SLOViolations,
				fmt.Sprintf("%s p99 %.2fms exceeds ceiling %.2fms", name, cs.P99MS, slo.P99MS))
		}
	}
	if r.Oracle.Divergences > spec.MaxDivergences {
		r.SLOViolations = append(r.SLOViolations,
			fmt.Sprintf("%d oracle divergences exceed the allowed %d", r.Oracle.Divergences, spec.MaxDivergences))
	}
	if n := len(r.UnexpectedStatuses); n > spec.MaxUnexpectedStatuses {
		r.SLOViolations = append(r.SLOViolations,
			fmt.Sprintf("%d unexpected HTTP statuses exceed the allowed %d", n, spec.MaxUnexpectedStatuses))
	}
	if n := len(r.InvariantViolations); n > spec.MaxInvariantViolations {
		r.SLOViolations = append(r.SLOViolations,
			fmt.Sprintf("%d metric-invariant violations exceed the allowed %d", n, spec.MaxInvariantViolations))
	}
	// Recovery rules: any failed boundary check fails the run outright,
	// and a fault-injection spec demands its minimum cycle count.
	for _, f := range r.RecoveryFailures {
		r.SLOViolations = append(r.SLOViolations, fmt.Sprintf("recovery failure: %s", f))
	}
	if spec.MinRecoveries > 0 && r.Recoveries < spec.MinRecoveries {
		r.SLOViolations = append(r.SLOViolations,
			fmt.Sprintf("%d recoveries below the required %d", r.Recoveries, spec.MinRecoveries))
	}
	// Memory rules.
	if spec.MaxHeapGrowthFrac > 0 {
		switch {
		case r.Memory == nil || r.Memory.HeapMidBytes == 0:
			r.SLOViolations = append(r.SLOViolations,
				"heap-growth SLO set but the run collected no usable memory samples")
		case float64(r.Memory.HeapLateBytes) > float64(r.Memory.HeapMidBytes)*(1+spec.MaxHeapGrowthFrac):
			r.SLOViolations = append(r.SLOViolations,
				fmt.Sprintf("heap watermark grew %.1f%% mid-to-late (%d -> %d bytes), ceiling %.1f%%",
					100*(float64(r.Memory.HeapLateBytes)/float64(r.Memory.HeapMidBytes)-1),
					r.Memory.HeapMidBytes, r.Memory.HeapLateBytes, 100*spec.MaxHeapGrowthFrac))
		}
	}
	if spec.MaxCompiledBytes > 0 && r.Memory != nil && r.Memory.CompiledMaxBytes > spec.MaxCompiledBytes {
		r.SLOViolations = append(r.SLOViolations,
			fmt.Sprintf("compiled-artifact estimate peaked at %d bytes, ceiling %d",
				r.Memory.CompiledMaxBytes, spec.MaxCompiledBytes))
	}
	r.Pass = len(r.SLOViolations) == 0
}

// WriteJSON writes the report as indented JSON.
func (r *SoakReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the report for a terminal: per-class latency table,
// oracle verdict, and every violation.
func (r *SoakReport) Summary(w io.Writer) {
	fmt.Fprintf(w, "soak: seed=%d duration=%.1fs target=%.0fqps achieved=%.1fqps ops=%d\n",
		r.Seed, r.DurationSeconds, r.TargetQPS, r.AchievedQPS, r.Ops)
	tbl := &Table{
		ID:     "soak",
		Title:  "per-class latency",
		Header: []string{"class", "count", "p50 ms", "p99 ms", "max ms", "statuses"},
	}
	var names []string
	for name := range r.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := r.Classes[name]
		var codes []string
		for code := range cs.Statuses {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		parts := make([]string, 0, len(codes))
		for _, code := range codes {
			parts = append(parts, fmt.Sprintf("%s:%d", code, cs.Statuses[code]))
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, strconv.Itoa(cs.Count),
			fmt.Sprintf("%.2f", cs.P50MS), fmt.Sprintf("%.2f", cs.P99MS), fmt.Sprintf("%.2f", cs.MaxMS),
			strings.Join(parts, " "),
		})
	}
	tbl.Render(w)
	fmt.Fprintf(w, "oracle: %d sources over %d generations checked, %d divergences, %d unverifiable\n",
		r.Oracle.Sources, r.Oracle.Generations, r.Oracle.Divergences, r.Oracle.Unverifiable)
	if r.Recoveries > 0 || len(r.RecoveryFailures) > 0 {
		fmt.Fprintf(w, "fault injection: %d kill/restart cycles, %d boundary failures\n",
			r.Recoveries, len(r.RecoveryFailures))
	}
	for _, f := range r.RecoveryFailures {
		fmt.Fprintf(w, "  recovery failure: %s\n", f)
	}
	if m := r.Memory; m != nil && m.Samples > 0 {
		fmt.Fprintf(w, "memory: %d samples, heap mid=%.1fMiB late=%.1fMiB, compiled max=%.1fMiB, resident max=%d\n",
			m.Samples, float64(m.HeapMidBytes)/(1<<20), float64(m.HeapLateBytes)/(1<<20),
			float64(m.CompiledMaxBytes)/(1<<20), m.ResidentMax)
	}
	for _, d := range r.Oracle.Details {
		fmt.Fprintf(w, "  divergence: %s\n", d)
	}
	for _, v := range r.UnexpectedStatuses {
		fmt.Fprintf(w, "unexpected status: %s\n", v)
	}
	for _, v := range r.InvariantViolations {
		fmt.Fprintf(w, "invariant violated: %s\n", v)
	}
	for _, v := range r.SLOViolations {
		fmt.Fprintf(w, "SLO violated: %s\n", v)
	}
	if r.Pass {
		fmt.Fprintln(w, "PASS")
	} else {
		fmt.Fprintln(w, "FAIL")
	}
}
