package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteHierarchyDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHierarchyDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "fig3_hierarchy"`,
		`"counting" -> "magic"`,
		`"mc-multiple-ind" -> "mc-single-ind"`,
		"style=dashed", "style=solid",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "->") != len(Fig3Claims) {
		t.Fatalf("arc count = %d, want %d", strings.Count(out, "->"), len(Fig3Claims))
	}
}

func TestWriteJSON(t *testing.T) {
	tables := []*Table{Fig2()}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tables); err != nil {
		t.Fatal(err)
	}
	var decoded []JSONTable
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].ID != "Figure 2" || len(decoded[0].Rows) != 4 {
		t.Fatalf("decoded = %+v", decoded)
	}
}
