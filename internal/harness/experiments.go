package harness

import (
	"fmt"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// Regime names a magic-graph class of Table 1.
type Regime string

const (
	Regular Regime = "regular"
	Acyclic Regime = "acyclic" // non-regular acyclic
	Cyclic  Regime = "cyclic"
)

// RegimeWorkload generates the canonical workload used for a regime at
// scale n: a binary same-generation tree (regular), a shortcut chain
// (acyclic non-regular), or a lasso (cyclic).
func RegimeWorkload(r Regime, n int) core.Query {
	switch r {
	case Regular:
		// A grid keeps every node single while giving the magic set
		// method quadratically many P_M pairs per level — the shape
		// where Table 1's Θ(mL+nL·mR) vs Θ(mL·mR) split is visible.
		side := 2
		for side*side < n {
			side++
		}
		return workload.Grid(side, side)
	case Acyclic:
		return workload.ShortcutChain(n, 3)
	case Cyclic:
		return workload.Lasso(n/2, n-n/2)
	default:
		panic("harness: unknown regime " + string(r))
	}
}

// DefaultSizes is the sweep used by the experiment tables.
var DefaultSizes = []int{16, 32, 64}

// Tab1 regenerates Table 1: counting vs magic set cost across the
// three magic-graph regimes, against the paper's Θ formulas.
func Tab1(sizes []int) *Table {
	t := &Table{
		ID:    "Table 1",
		Title: "costs of the counting and magic set methods (tuple retrievals)",
		Header: []string{"regime", "nL", "mL", "mR", "counting", "magic",
			"Θ_C", "Θ_Ms", "C/Θ_C", "Ms/Θ_Ms"},
	}
	counting, _ := MethodByName("counting")
	magic, _ := MethodByName("magic")
	for _, regime := range []Regime{Regular, Acyclic, Cyclic} {
		for _, n := range sizes {
			q := RegimeWorkload(regime, n)
			p := q.Params()
			var thetaC int64
			switch regime {
			case Regular:
				thetaC = int64(p.ML + p.NL*p.MR)
			case Acyclic:
				thetaC = int64(p.NL*p.ML + p.NL*p.MR)
			case Cyclic:
				thetaC = 0 // unsafe
			}
			thetaMs := int64(p.ML * p.MR)
			cCost := cost(counting, q)
			msCost := mustCost(magic, q)
			row := []string{
				string(regime),
				fmt.Sprint(p.NL), fmt.Sprint(p.ML), fmt.Sprint(p.MR),
				cCost, fmt.Sprint(msCost),
				thetaStr(thetaC), fmt.Sprint(thetaMs),
				ratioStr(cCost, thetaC), fmt.Sprintf("%.2f", float64(msCost)/float64(thetaMs)),
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"counting is Θ(mL+nL·mR) regular, Θ(nL·mL+nL·mR) acyclic, unsafe cyclic; magic is Θ(mL·mR) throughout",
		"ratios should stay bounded (and roughly flat) as sizes grow")
	return t
}

func thetaStr(v int64) string {
	if v == 0 {
		return "—"
	}
	return fmt.Sprint(v)
}

func ratioStr(measured string, theta int64) string {
	if measured == "unsafe" || theta == 0 {
		return "—"
	}
	var m int64
	fmt.Sscan(measured, &m)
	return fmt.Sprintf("%.2f", float64(m)/float64(theta))
}

// Tab2 regenerates Table 2: the basic magic counting methods match
// counting on regular graphs and magic on non-regular ones.
func Tab2(sizes []int) *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "costs of the basic magic counting methods",
		Header: []string{"regime", "nL", "counting", "magic", "mc-basic-ind", "mc-basic-int"},
	}
	counting, _ := MethodByName("counting")
	magic, _ := MethodByName("magic")
	bi, _ := MethodByName("mc-basic-ind")
	bt, _ := MethodByName("mc-basic-int")
	for _, regime := range []Regime{Regular, Acyclic, Cyclic} {
		for _, n := range sizes {
			q := RegimeWorkload(regime, n)
			p := q.Params()
			t.Rows = append(t.Rows, []string{
				string(regime), fmt.Sprint(p.NL),
				cost(counting, q), fmt.Sprint(mustCost(magic, q)),
				fmt.Sprint(mustCost(bi, q)), fmt.Sprint(mustCost(bt, q)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"B =_R C (within Step 1 overhead) and B =_{A,C} Ms: basic follows the winner of Table 1 in each regime")
	return t
}

// Tab3 regenerates Table 3: the single methods on frontier graphs
// with a regular prefix region of growing size.
func Tab3(sizes []int) *Table {
	t := &Table{
		ID:    "Table 3",
		Title: "costs of the single magic counting methods (frontier graphs)",
		Header: []string{"cyclic", "low", "i_x", "nX", "mX",
			"mc-basic-ind", "mc-single-ind", "mc-single-int"},
	}
	b, _ := MethodByName("mc-basic-ind")
	si, _ := MethodByName("mc-single-ind")
	st, _ := MethodByName("mc-single-int")
	for _, cyc := range []bool{false, true} {
		for _, low := range sizes {
			q := workload.SingleFrontier(low, 10, cyc)
			p := q.Params()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(cyc), fmt.Sprint(low), fmt.Sprint(p.IX),
				fmt.Sprint(p.NX), fmt.Sprint(p.MX),
				fmt.Sprint(mustCost(b, q)),
				fmt.Sprint(mustCost(si, q)),
				fmt.Sprint(mustCost(st, q)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"S_IND ≤ B and S_INT ≤ S_IND on non-regular graphs (Proposition 5): the regular prefix is kept in RC")
	return t
}

// Tab4 regenerates Table 4: the multiple methods on comb graphs where
// a single early multiple node ruins the single method's split but
// not the multiple method's.
func Tab4(sizes []int) *Table {
	t := &Table{
		ID:    "Table 4",
		Title: "costs of the multiple magic counting methods (comb graphs)",
		Header: []string{"spine", "nS", "mS",
			"mc-single-ind", "mc-single-int", "mc-multiple-ind", "mc-multiple-int"},
	}
	si, _ := MethodByName("mc-single-ind")
	st, _ := MethodByName("mc-single-int")
	mi, _ := MethodByName("mc-multiple-ind")
	mt, _ := MethodByName("mc-multiple-int")
	for _, spine := range sizes {
		q := workload.Comb(spine)
		p := q.Params()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(spine), fmt.Sprint(p.NS), fmt.Sprint(p.MS),
			fmt.Sprint(mustCost(si, q)), fmt.Sprint(mustCost(st, q)),
			fmt.Sprint(mustCost(mi, q)), fmt.Sprint(mustCost(mt, q)),
		})
	}
	t.Notes = append(t.Notes,
		"M ≤ S (Proposition 6): the multiple methods keep every single node in RC regardless of level")
	return t
}

// Tab5 regenerates Table 5: the recurring methods on cycle-tail
// graphs whose multiple region only the recurring strategy keeps in
// RC, plus the cost of the two Step 1 variants.
func Tab5(sizes []int) *Table {
	t := &Table{
		ID:    "Table 5",
		Title: "costs of the recurring magic counting methods (cycle-tail graphs)",
		Header: []string{"spine", "nM", "mM",
			"mc-multiple-ind", "mc-multiple-int", "mc-recurring-ind", "mc-recurring-int", "mc-recurring-scc"},
	}
	mi, _ := MethodByName("mc-multiple-ind")
	mt, _ := MethodByName("mc-multiple-int")
	ri, _ := MethodByName("mc-recurring-ind")
	rt, _ := MethodByName("mc-recurring-int")
	rs, _ := MethodByName("mc-recurring-scc")
	for _, spine := range sizes {
		q := workload.CycleTail(spine, 6)
		p := q.Params()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(spine), fmt.Sprint(p.NM), fmt.Sprint(p.MM),
			fmt.Sprint(mustCost(mi, q)), fmt.Sprint(mustCost(mt, q)),
			fmt.Sprint(mustCost(ri, q)), fmt.Sprint(mustCost(rt, q)),
			fmt.Sprint(mustCost(rs, q)),
		})
	}
	t.Notes = append(t.Notes,
		"R ≤~ M on average (Proposition 7); Step 1 is no longer O(mL), which the SCC variant repairs")
	return t
}

// Fig1 reruns the Figure 1 example: the reconstructed query graph in
// its three regimes, with every method's answer count and cost.
func Fig1() *Table {
	t := &Table{
		ID:     "Figure 1",
		Title:  "the paper's running example (reconstruction): answers and costs per regime",
		Header: []string{"variant", "method", "answers", "retrievals"},
	}
	variants := []struct {
		name string
		q    core.Query
	}{
		{"base (regular)", workload.PaperFig1()},
		{"+⟨a2,a5⟩ (acyclic)", workload.PaperFig1Acyclic()},
		{"+⟨a5,a2⟩ (cyclic)", workload.PaperFig1Cyclic()},
	}
	for _, v := range variants {
		for _, name := range []string{"counting", "magic", "mc-multiple-int", "mc-recurring-int"} {
			def, _ := MethodByName(name)
			res, err := def.Run(v.q)
			if err != nil {
				t.Rows = append(t.Rows, []string{v.name, name, "—", "unsafe"})
				continue
			}
			t.Rows = append(t.Rows, []string{
				v.name, name,
				fmt.Sprintf("%v", res.Answers),
				fmt.Sprint(res.Stats.Retrievals),
			})
		}
	}
	t.Notes = append(t.Notes,
		"every safe run returns the paper's answer set {b3 b5 b7 b8 b9}; b3 is reached through the cyclic R-side path at b8")
	return t
}

// Fig2 reruns the Figure 2 example: per-strategy reduced sets and the
// §7–§9 graph parameters of the reconstructed magic graph.
func Fig2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "reduced sets and graph parameters of the reconstructed magic graph",
		Header: []string{"strategy", "|RM|", "|RC| pairs", "RM members"},
	}
	q := workload.PaperFig2()
	for _, s := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
		rs, names, err := q.ReducedSetsFor(s, core.Independent, core.Options{})
		if err != nil {
			panic(err)
		}
		var rm []string
		for v, in := range rs.RM {
			if in {
				rm = append(rm, names[v])
			}
		}
		nRM, nRC := len(rm), len(rs.RCPairs())
		t.Rows = append(t.Rows, []string{
			s.String(), fmt.Sprint(nRM), fmt.Sprint(nRC), fmt.Sprintf("%v", rm),
		})
	}
	p := q.Params()
	t.Notes = append(t.Notes,
		fmt.Sprintf("i_x=%d nX=%d mX=%d nĵ=%d mĵ=%d (paper: 2,4,3,1,1)", p.IX, p.NX, p.MX, p.NJhat, p.MJhat),
		fmt.Sprintf("nS=%d mS=%d nî=%d mî=%d (paper: 6,6,2,3)", p.NS, p.MS, p.NIhat, p.MIhat),
		fmt.Sprintf("nM=%d mM=%d nm̂=%d mm̂=%d (paper: 8,9 and — see DESIGN.md — 7,8 unattainable; reconstruction pins 5,7)",
			p.NM, p.MM, p.NMhat, p.MMhat),
	)
	return t
}

// HierarchyClaim is one ≤ relation of Figure 3: on graphs of the
// given regimes, Left should cost no more than Right (within the slack
// factor, which absorbs Step 1 overheads the Θ notation hides).
type HierarchyClaim struct {
	Left, Right string
	Regimes     []Regime
	Slack       float64
}

// Fig3Claims are the orderings Figure 3 asserts, restated over the
// method registry. Slack 1.0 means a strict ≤ in measured cost;
// larger slacks cover claims that hold asymptotically or on average.
var Fig3Claims = []HierarchyClaim{
	// Counting beats magic off-cycle (Proposition 2).
	{"counting", "magic", []Regime{Regular, Acyclic}, 1.0},
	// All magic counting methods coincide with counting on regular
	// graphs, paying only the Step 1 flag probes.
	{"mc-basic-ind", "counting", []Regime{Regular}, 1.6},
	{"mc-single-int", "counting", []Regime{Regular}, 1.6},
	{"mc-multiple-int", "counting", []Regime{Regular}, 2.2},
	{"mc-recurring-int", "counting", []Regime{Regular}, 2.2},
	// The strategy ladder, independent mode (Propositions 5–7).
	{"mc-single-ind", "mc-basic-ind", []Regime{Regular, Acyclic, Cyclic}, 1.05},
	{"mc-multiple-ind", "mc-single-ind", []Regime{Regular, Acyclic, Cyclic}, 1.3},
	{"mc-recurring-ind", "mc-multiple-ind", []Regime{Regular, Acyclic, Cyclic}, 2.2},
	// The strategy ladder, integrated mode.
	{"mc-single-int", "mc-basic-int", []Regime{Regular, Acyclic, Cyclic}, 1.05},
	{"mc-multiple-int", "mc-single-int", []Regime{Regular, Acyclic, Cyclic}, 1.3},
	{"mc-recurring-int", "mc-multiple-int", []Regime{Regular, Acyclic, Cyclic}, 2.2},
	// Integrated beats independent at fixed strategy.
	{"mc-single-int", "mc-single-ind", []Regime{Regular, Acyclic, Cyclic}, 1.0},
	{"mc-multiple-int", "mc-multiple-ind", []Regime{Regular, Acyclic, Cyclic}, 1.0},
	{"mc-recurring-int", "mc-recurring-ind", []Regime{Regular, Acyclic, Cyclic}, 1.0},
	// Magic counting never loses to the magic set method by more than
	// Step 1 overhead, and wins where counting applies.
	{"mc-multiple-int", "magic", []Regime{Regular, Acyclic, Cyclic}, 1.6},
	// The Tarjan Step 1 repairs the recurring method's superlinear
	// reduced-set computation where it hurts: on cyclic graphs.
	{"mc-recurring-scc", "mc-recurring-int", []Regime{Cyclic}, 1.0},
}

// CheckHierarchy evaluates every Figure 3 claim on the regime
// workloads at the given sizes, returning human-readable violations
// (empty = the measured hierarchy matches the paper).
func CheckHierarchy(sizes []int) []string {
	var violations []string
	type key struct {
		name   string
		regime Regime
		n      int
	}
	memo := map[key]int64{}
	get := func(name string, regime Regime, n int) int64 {
		k := key{name, regime, n}
		if v, ok := memo[k]; ok {
			return v
		}
		def, ok := MethodByName(name)
		if !ok {
			panic("harness: unknown method " + name)
		}
		v := mustCost(def, RegimeWorkload(regime, n))
		memo[k] = v
		return v
	}
	for _, c := range Fig3Claims {
		for _, regime := range c.Regimes {
			for _, n := range sizes {
				l := get(c.Left, regime, n)
				r := get(c.Right, regime, n)
				if float64(l) > float64(r)*c.Slack {
					violations = append(violations, fmt.Sprintf(
						"%s (%d) should be ≤ %s (%d) ×%.2f on %s n=%d",
						c.Left, l, c.Right, r, c.Slack, regime, n))
				}
			}
		}
	}
	return violations
}

// Fig3 renders the full method-by-regime cost matrix plus the claim
// verdicts.
func Fig3(sizes []int) *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "efficiency hierarchy: cost of every method per regime",
		Header: []string{"regime", "n"},
	}
	names := []string{"counting", "magic", "mc-basic-ind", "mc-basic-int",
		"mc-single-ind", "mc-single-int", "mc-multiple-ind", "mc-multiple-int",
		"mc-recurring-ind", "mc-recurring-int", "mc-recurring-scc"}
	t.Header = append(t.Header, names...)
	for _, regime := range []Regime{Regular, Acyclic, Cyclic} {
		for _, n := range sizes {
			q := RegimeWorkload(regime, n)
			row := []string{string(regime), fmt.Sprint(n)}
			for _, name := range names {
				def, _ := MethodByName(name)
				row = append(row, cost(def, q))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	violations := CheckHierarchy(sizes)
	if len(violations) == 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("all %d Figure 3 orderings hold on this sweep", len(Fig3Claims)))
	} else {
		for _, v := range violations {
			t.Notes = append(t.Notes, "VIOLATION: "+v)
		}
	}
	return t
}

// All runs every experiment at the default sizes.
func All() []*Table {
	return []*Table{
		Tab1(DefaultSizes), Tab2(DefaultSizes), Tab3(DefaultSizes),
		Tab4(DefaultSizes), Tab5(DefaultSizes),
		Fig1(), Fig2(), Fig3(DefaultSizes),
	}
}

// ByID returns the experiment runner for an id like "tab1" or "fig3".
func ByID(id string, sizes []int) (*Table, error) {
	switch id {
	case "tab1":
		return Tab1(sizes), nil
	case "tab2":
		return Tab2(sizes), nil
	case "tab3":
		return Tab3(sizes), nil
	case "tab4":
		return Tab4(sizes), nil
	case "tab5":
		return Tab5(sizes), nil
	case "fig1":
		return Fig1(), nil
	case "fig2":
		return Fig2(), nil
	case "fig3":
		return Fig3(sizes), nil
	case "growth":
		return GrowthTable(sizes), nil
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (want tab1..tab5, fig1..fig3, growth)", id)
	}
}
