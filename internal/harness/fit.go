package harness

import (
	"fmt"
	"math"

	"magiccounting/internal/core"
)

// GrowthPoint is one (problem size, cost) sample of a sweep.
type GrowthPoint struct {
	// Size is the structural size the cost is regressed against
	// (we use m_L + m_R, the database size).
	Size int
	// Cost is the measured tuple-retrieval count.
	Cost int64
}

// FitExponent estimates the growth exponent alpha of cost ≈ c·size^alpha
// by least-squares regression in log-log space. At least two points
// with distinct sizes are required.
func FitExponent(points []GrowthPoint) (alpha float64, err error) {
	var xs, ys []float64
	for _, p := range points {
		if p.Size <= 0 || p.Cost <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.Size)))
		ys = append(ys, math.Log(float64(p.Cost)))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("harness: need at least two positive samples, have %d", len(xs))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("harness: all samples have the same size")
	}
	return (n*sxy - sx*sy) / den, nil
}

// MethodGrowth sweeps a method over the regime workloads at the given
// sizes and fits its cost growth exponent against database size.
func MethodGrowth(method string, regime Regime, sizes []int) (float64, error) {
	def, ok := MethodByName(method)
	if !ok {
		return 0, fmt.Errorf("harness: unknown method %q", method)
	}
	var points []GrowthPoint
	for _, n := range sizes {
		q := RegimeWorkload(regime, n)
		p := q.Params()
		res, err := def.Run(q)
		if err != nil {
			return 0, err
		}
		points = append(points, GrowthPoint{Size: p.ML + p.MR, Cost: res.Stats.Retrievals})
	}
	return FitExponent(points)
}

// GrowthTable reports fitted exponents for the headline methods per
// regime — the quantitative form of Table 1's asymptotic claims.
func GrowthTable(sizes []int) *Table {
	t := &Table{
		ID:     "Growth",
		Title:  "fitted cost growth exponents (cost ~ size^alpha over the sweep)",
		Header: []string{"regime", "method", "alpha"},
		Notes: []string{
			"regular: counting grows ~linearly in database size, magic super-linearly",
			"the gap between the two alphas is Table 1's asymptotic separation",
		},
	}
	for _, regime := range []Regime{Regular, Acyclic, Cyclic} {
		for _, m := range []string{"counting", "magic", "mc-multiple-int", "mc-recurring-scc"} {
			if regime == Cyclic && m == "counting" {
				t.Rows = append(t.Rows, []string{string(regime), m, "unsafe"})
				continue
			}
			alpha, err := MethodGrowth(m, regime, sizes)
			if err != nil {
				t.Rows = append(t.Rows, []string{string(regime), m, "error"})
				continue
			}
			t.Rows = append(t.Rows, []string{string(regime), m, fmt.Sprintf("%.2f", alpha)})
		}
	}
	return t
}

// CostBoundCheck verifies that a method's measured cost stays within
// factor times a Θ bound computed from the graph parameters, across
// the sweep. It returns violations.
func CostBoundCheck(method string, regime Regime, sizes []int, bound func(core.GraphParams) int64, factor float64) []string {
	def, ok := MethodByName(method)
	if !ok {
		return []string{"unknown method " + method}
	}
	var violations []string
	for _, n := range sizes {
		q := RegimeWorkload(regime, n)
		p := q.Params()
		res, err := def.Run(q)
		if err != nil {
			violations = append(violations, fmt.Sprintf("%s on %s n=%d: %v", method, regime, n, err))
			continue
		}
		if limit := float64(bound(p)) * factor; float64(res.Stats.Retrievals) > limit {
			violations = append(violations, fmt.Sprintf(
				"%s on %s n=%d: cost %d exceeds %.0f", method, regime, n, res.Stats.Retrievals, limit))
		}
	}
	return violations
}
