package harness

import (
	"math"
	"testing"

	"magiccounting/internal/core"
)

func TestFitExponentExact(t *testing.T) {
	// cost = 3·size^2 exactly.
	var pts []GrowthPoint
	for _, s := range []int{10, 20, 40, 80} {
		pts = append(pts, GrowthPoint{Size: s, Cost: int64(3 * s * s)})
	}
	alpha, err := FitExponent(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-2) > 0.01 {
		t.Fatalf("alpha = %f, want 2", alpha)
	}
}

func TestFitExponentErrors(t *testing.T) {
	if _, err := FitExponent(nil); err == nil {
		t.Fatal("no samples should error")
	}
	if _, err := FitExponent([]GrowthPoint{{10, 5}, {10, 9}}); err == nil {
		t.Fatal("degenerate sizes should error")
	}
	if _, err := FitExponent([]GrowthPoint{{10, 5}, {0, 9}, {-3, 2}}); err == nil {
		t.Fatal("nonpositive samples must be dropped, leaving too few")
	}
}

// Table 1's asymptotics, quantitatively: on the regular regime the
// counting method's exponent stays well below the magic set method's.
func TestGrowthSeparationOnRegular(t *testing.T) {
	sizes := []int{25, 64, 144, 400}
	cAlpha, err := MethodGrowth("counting", Regular, sizes)
	if err != nil {
		t.Fatal(err)
	}
	mAlpha, err := MethodGrowth("magic", Regular, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if cAlpha > 1.25 {
		t.Fatalf("counting alpha = %.2f, want ~1 on regular graphs", cAlpha)
	}
	if mAlpha < cAlpha+0.3 {
		t.Fatalf("magic alpha %.2f should exceed counting %.2f by a clear margin", mAlpha, cAlpha)
	}
}

// On the cyclic regime the safe methods all stay within the magic
// set method's Θ(mL·mR) envelope.
func TestCostBoundsCyclic(t *testing.T) {
	bound := func(p core.GraphParams) int64 { return int64(p.ML*p.MR) + int64(p.ML) + 64 }
	for _, m := range []string{"magic", "mc-basic-ind", "mc-multiple-int", "mc-recurring-scc"} {
		if v := CostBoundCheck(m, Cyclic, []int{16, 64, 128}, bound, 2.0); len(v) != 0 {
			t.Fatalf("%s: %v", m, v)
		}
	}
}

func TestCostBoundCheckReportsViolationsAndUnknown(t *testing.T) {
	tiny := func(core.GraphParams) int64 { return 1 }
	if v := CostBoundCheck("magic", Regular, []int{16}, tiny, 1.0); len(v) == 0 {
		t.Fatal("impossible bound should be violated")
	}
	if v := CostBoundCheck("nosuch", Regular, []int{16}, tiny, 1.0); len(v) == 0 {
		t.Fatal("unknown method should report")
	}
	if v := CostBoundCheck("counting", Cyclic, []int{16}, tiny, 1.0); len(v) == 0 {
		t.Fatal("unsafe run should report")
	}
}

func TestMethodGrowthErrors(t *testing.T) {
	if _, err := MethodGrowth("nosuch", Regular, []int{16, 32}); err == nil {
		t.Fatal("unknown method should error")
	}
	if _, err := MethodGrowth("counting", Cyclic, []int{16, 32}); err == nil {
		t.Fatal("unsafe method should error")
	}
}

func TestGrowthTableRuns(t *testing.T) {
	tab := GrowthTable([]int{16, 36, 64})
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	sawUnsafe := false
	for _, row := range tab.Rows {
		if row[2] == "unsafe" {
			sawUnsafe = true
		}
		if row[2] == "error" {
			t.Fatalf("unexpected error row %v", row)
		}
	}
	if !sawUnsafe {
		t.Fatal("cyclic counting row should be unsafe")
	}
}
