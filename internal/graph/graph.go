// Package graph provides the directed-graph substrate underlying the
// magic-counting analysis: adjacency storage, breadth-first levels,
// reachability, Tarjan's linear-time strongly-connected-components
// algorithm (the [Tar] reference of the paper), walk-length analysis,
// and the single/multiple/recurring node classification of Saccà and
// Zaniolo §3, together with a brute-force oracle used to validate the
// fast classifiers.
package graph

import "fmt"

// Digraph is a directed graph over nodes 0..N-1 with parallel arcs
// collapsed. The zero value is an empty graph; add nodes and arcs with
// AddNode/AddArc.
type Digraph struct {
	out  [][]int32
	in   [][]int32
	m    int
	seen map[int64]struct{} // arc dedupe
	// clamped records that every out/in row has cap == len (true for
	// Extend results), letting a chained Extend bulk-copy the row
	// tables instead of re-clamping row by row. AddArc clears it: an
	// in-place append can leave spare capacity behind.
	clamped bool
}

// NewDigraph returns a graph with n isolated nodes.
func NewDigraph(n int) *Digraph {
	g := &Digraph{seen: make(map[int64]struct{})}
	g.AddNodes(n)
	return g
}

// FromAdjacency builds a graph directly from per-node successor
// lists, which must already be duplicate-free with every id in
// [0, len(out)). It takes ownership of out (rows must not grow past
// their capacity afterwards) and builds the reverse adjacency in two
// counting passes over one backing array — no per-arc map work and no
// per-node allocations, which is what makes decoding a persisted
// compiled artifact cheap. The arc-dedupe index is built lazily by
// the first AddArc instead of here; until then HasArc scans the row.
func FromAdjacency(out [][]int32) *Digraph {
	n := len(out)
	g := &Digraph{out: out, in: make([][]int32, n)}
	start := make([]int32, n+1)
	for _, row := range out {
		g.m += len(row)
		for _, v := range row {
			start[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		start[v+1] += start[v]
	}
	back := make([]int32, g.m)
	pos := make([]int32, n)
	copy(pos, start[:n])
	for u, row := range out {
		for _, v := range row {
			back[pos[v]] = int32(u)
			pos[v]++
		}
	}
	for v := 0; v < n; v++ {
		g.in[v] = back[start[v]:start[v+1]:start[v+1]]
	}
	return g
}

// FromRows wraps already-built forward and reverse adjacency into a
// graph without copying or validating: out[u] lists u's successors,
// in[v] lists v's predecessors, and m is the arc count — the caller
// guarantees the two views describe the same duplicate-free arc set.
// The graph aliases the given tables, so both sides must treat them
// as immutable from here on; in particular AddArc must never be
// called on the result (a reallocating append would write into the
// shared header table). Every row must already be cap-clamped
// (cap == len). This is the zero-cost bridge for callers that
// maintain CSR-style adjacency themselves and need a graph view of
// it — a delta-extended artifact's magic graph shares its relation
// tables instead of re-laying them.
func FromRows(out, in [][]int32, m int) *Digraph {
	return &Digraph{out: out, in: in, m: m, clamped: true}
}

// Extend returns a new graph holding g's nodes plus extraNodes fresh
// isolated ones, and g's arcs plus arcs. g is not modified and stays
// fully usable. The delta arcs' endpoints act as the patch frontier:
// only their forward and reverse adjacency rows are re-laid (copied
// once, on first touch, then grown privately); every row the delta
// does not touch aliases g's storage, cap-clamped so neither graph
// can ever grow into the other's backing array. arcs must be
// in-range, deduplicated against g and within themselves — the
// caller-side dedupe that Extend's O(nodes + delta) bound assumes.
// The arc-dedupe index is deferred exactly as in FromAdjacency.
func (g *Digraph) Extend(extraNodes int, arcs [][2]int32) *Digraph {
	n := len(g.out) + extraNodes
	ng := &Digraph{out: make([][]int32, n), in: make([][]int32, n), m: g.m}
	if g.clamped {
		copy(ng.out, g.out)
		copy(ng.in, g.in)
	} else {
		for i, row := range g.out {
			ng.out[i] = row[:len(row):len(row)]
		}
		for i, row := range g.in {
			ng.in[i] = row[:len(row):len(row)]
		}
	}
	for _, a := range arcs {
		u, v := a[0], a[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			panic(fmt.Sprintf("graph: extend arc (%d,%d) out of range, n=%d", u, v, n))
		}
		// cap == len on every copied row, so the first append per
		// touched row reallocates out of the shared storage.
		ng.out[u] = append(ng.out[u], v)
		ng.in[v] = append(ng.in[v], u)
		ng.m++
	}
	// Re-clamp the touched rows: with every row back at cap == len the
	// next Extend in the chain bulk-copies the tables.
	for _, a := range arcs {
		u, v := a[0], a[1]
		ng.out[u] = ng.out[u][:len(ng.out[u]):len(ng.out[u])]
		ng.in[v] = ng.in[v][:len(ng.in[v]):len(ng.in[v])]
	}
	ng.clamped = true
	return ng
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.out) }

// M returns the number of (distinct) arcs.
func (g *Digraph) M() int { return g.m }

// AddNode appends a fresh isolated node and returns its id.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// AddNodes appends n isolated nodes.
func (g *Digraph) AddNodes(n int) {
	for i := 0; i < n; i++ {
		g.AddNode()
	}
}

// AddArc inserts the arc u -> v, ignoring duplicates. It panics on
// out-of-range endpoints. Self-loops are allowed.
func (g *Digraph) AddArc(u, v int) {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range, n=%d", u, v, len(g.out)))
	}
	if g.seen == nil {
		// A FromAdjacency graph deferred its dedupe index; pay for it
		// on the first mutation.
		g.seen = make(map[int64]struct{}, g.m)
		for u2, row := range g.out {
			for _, v2 := range row {
				g.seen[int64(u2)<<32|int64(uint32(v2))] = struct{}{}
			}
		}
	}
	key := int64(u)<<32 | int64(uint32(v))
	if _, dup := g.seen[key]; dup {
		return
	}
	g.seen[key] = struct{}{}
	g.out[u] = append(g.out[u], int32(v))
	g.in[v] = append(g.in[v], int32(u))
	g.m++
	g.clamped = false
}

// HasArc reports whether u -> v is present.
func (g *Digraph) HasArc(u, v int) bool {
	if g.seen == nil {
		for _, w := range g.out[u] {
			if w == int32(v) {
				return true
			}
		}
		return false
	}
	key := int64(u)<<32 | int64(uint32(v))
	_, ok := g.seen[key]
	return ok
}

// Out returns the successors of u. The slice must not be modified.
func (g *Digraph) Out(u int) []int32 { return g.out[u] }

// In returns the predecessors of u. The slice must not be modified.
func (g *Digraph) In(u int) []int32 { return g.in[u] }

// OutDegree returns the number of arcs leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of arcs entering u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// BFSLevels returns the shortest-path distance from src to every node,
// with -1 for unreachable nodes.
func (g *Digraph) BFSLevels(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Reachable returns the set of nodes reachable from src (including src
// itself) as a boolean mask.
func (g *Digraph) Reachable(src int) []bool {
	mask := make([]bool, g.N())
	if src < 0 || src >= g.N() {
		return mask
	}
	mask[src] = true
	stack := []int32{int32(src)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !mask[v] {
				mask[v] = true
				stack = append(stack, v)
			}
		}
	}
	return mask
}

// ReverseReachable returns the set of nodes from which target is
// reachable (including target), following arcs backwards.
func (g *Digraph) ReverseReachable(targets []int) []bool {
	mask := make([]bool, g.N())
	var stack []int32
	for _, t := range targets {
		if t >= 0 && t < g.N() && !mask[t] {
			mask[t] = true
			stack = append(stack, int32(t))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.in[u] {
			if !mask[v] {
				mask[v] = true
				stack = append(stack, v)
			}
		}
	}
	return mask
}

// Induced returns the subgraph induced by the nodes where keep is
// true, along with old->new and new->old id maps (old ids absent from
// the subgraph map to -1).
func (g *Digraph) Induced(keep []bool) (sub *Digraph, oldToNew []int, newToOld []int) {
	oldToNew = make([]int, g.N())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	sub = NewDigraph(0)
	for i := 0; i < g.N(); i++ {
		if keep[i] {
			oldToNew[i] = sub.AddNode()
			newToOld = append(newToOld, i)
		}
	}
	for u := 0; u < g.N(); u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.out[u] {
			if keep[v] {
				sub.AddArc(oldToNew[u], oldToNew[int(v)])
			}
		}
	}
	return sub, oldToNew, newToOld
}
