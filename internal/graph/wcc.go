package graph

// This file adds the weak-connectivity layer behind region sharding:
// a query from source a can only ever touch the weakly connected
// region of the symbol graph containing a (Fact 2's walks follow arcs
// of L, E, and R, all of which stay inside one weak component), so
// partitioning a database along weak components is answer-preserving
// by construction. UnionFind is exported because core builds the
// component structure over symbol ids while interning, before any
// Digraph exists.

// UnionFind is a disjoint-set forest over elements 0..n-1 with union
// by size and path halving, the classic near-constant-amortized
// structure. The zero value is unusable; construct with NewUnionFind.
type UnionFind struct {
	parent []int32
	size   []int32
	comps  int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), size: make([]int32, n), comps: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Find returns the representative of x's set, halving the path as it
// walks so later finds shorten.
func (u *UnionFind) Find(x int) int {
	p := u.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets of x and y, reporting whether they were
// distinct. The larger set's representative wins; ties keep x's.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	u.size[rx] += u.size[ry]
	u.comps--
	return true
}

// Sets reports the number of disjoint sets remaining.
func (u *UnionFind) Sets() int { return u.comps }

// WCCResult is the weakly-connected-component decomposition of a
// digraph, shaped like SCCResult: Comp maps each node to its
// component, components are numbered 0..NumComps-1 in order of their
// smallest node (so the numbering is deterministic), and Size counts
// each component's nodes.
type WCCResult struct {
	Comp     []int
	Size     []int
	NumComps int
}

// WeaklyConnectedComponents decomposes the graph into its weakly
// connected components: maximal node sets connected when every arc is
// read as undirected. Runs in near-linear time via union-find over
// the arc set. Isolated nodes form singleton components.
func (g *Digraph) WeaklyConnectedComponents() WCCResult {
	n := g.N()
	u := NewUnionFind(n)
	for v := 0; v < n; v++ {
		for _, w := range g.out[v] {
			u.Union(v, int(w))
		}
	}
	res := WCCResult{Comp: make([]int, n)}
	// Number components by smallest contained node: one ascending scan
	// assigns a fresh id the first time each root is seen.
	rootID := make(map[int]int, u.Sets())
	for v := 0; v < n; v++ {
		r := u.Find(v)
		id, ok := rootID[r]
		if !ok {
			id = res.NumComps
			rootID[r] = id
			res.Size = append(res.Size, 0)
			res.NumComps++
		}
		res.Comp[v] = id
		res.Size[id]++
	}
	return res
}
