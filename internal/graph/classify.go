package graph

// Class is the Saccà–Zaniolo classification of a magic-graph node b
// with respect to a source node a, by the set I_b of lengths of walks
// from a to b (Proposition 1 of the paper).
type Class uint8

const (
	// Unreachable: no walk from the source reaches the node, so it is
	// not in the magic set at all.
	Unreachable Class = iota
	// Single: exactly one distance — all paths from the source have
	// the same length.
	Single
	// Multiple: finitely many (>= 2) distances — at least two acyclic
	// paths of different lengths.
	Multiple
	// Recurring: infinitely many distances — some cyclic path from
	// the source reaches the node.
	Recurring
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case Single:
		return "single"
	case Multiple:
		return "multiple"
	case Recurring:
		return "recurring"
	default:
		return "unreachable"
	}
}

// Classification holds the per-node analysis of a magic graph.
type Classification struct {
	// Class[v] is the node's class relative to the source.
	Class []Class
	// FirstIndex[v] is the shortest walk length from the source
	// (BFS distance), or -1 if unreachable.
	FirstIndex []int
	// Indices[v] lists all walk lengths for single and multiple
	// nodes, sorted ascending. For recurring nodes (infinite index
	// sets) and unreachable nodes it is nil.
	Indices [][]int
	// Regular reports whether every reachable node is single.
	Regular bool
	// HasRecurring reports whether any reachable node is recurring
	// (the regime where the pure counting method is unsafe).
	HasRecurring bool
}

// Classify determines the class of every node relative to src using
// Tarjan SCC for the recurring set (linear time) and a level-by-level
// walk enumeration, confined to non-recurring nodes, for the exact
// index sets of single and multiple nodes. This is the efficient
// Step 1 the paper sketches at the end of §9: recurring nodes are
// detected in O(N+M) and the index enumeration costs only on the
// multiple region.
func (g *Digraph) Classify(src int) *Classification {
	n := g.N()
	c := &Classification{
		Class:      make([]Class, n),
		FirstIndex: g.BFSLevels(src),
		Indices:    make([][]int, n),
		Regular:    true,
	}
	if src < 0 || src >= n {
		return c
	}
	reach := g.Reachable(src)

	// Recurring = reachable and reachable from a reachable cyclic node.
	cyc := g.CyclicNodes()
	var seeds []int
	for v := 0; v < n; v++ {
		if reach[v] && cyc[v] {
			seeds = append(seeds, v)
		}
	}
	fromCycle := g.ReverseReachableForward(seeds)
	for v := 0; v < n; v++ {
		if reach[v] && fromCycle[v] {
			c.Class[v] = Recurring
			c.HasRecurring = true
			c.Regular = false
		}
	}

	// Walks that end at a non-recurring node never pass through a
	// recurring node (anything downstream of a recurring node is
	// recurring), so a level DP restricted to non-recurring nodes
	// enumerates their full index sets. All such walks are simple
	// paths, so n-1 levels suffice.
	cur := make([]bool, n)
	nxt := make([]bool, n)
	if c.Class[src] != Recurring {
		cur[src] = true
		c.Indices[src] = append(c.Indices[src], 0)
	}
	for level := 1; level < n; level++ {
		any := false
		for i := range nxt {
			nxt[i] = false
		}
		for u := 0; u < n; u++ {
			if !cur[u] {
				continue
			}
			for _, v := range g.out[u] {
				if c.Class[v] == Recurring {
					continue
				}
				if !nxt[v] {
					nxt[v] = true
					any = true
					c.Indices[v] = append(c.Indices[v], level)
				}
			}
		}
		cur, nxt = nxt, cur
		if !any {
			break
		}
	}
	for v := 0; v < n; v++ {
		if !reach[v] || c.Class[v] == Recurring {
			continue
		}
		switch len(c.Indices[v]) {
		case 0:
			// Reachable only through recurring territory; but anything
			// downstream of a recurring node is recurring, so this
			// cannot happen for a correctly built graph.
			c.Class[v] = Recurring
			c.HasRecurring = true
			c.Regular = false
		case 1:
			c.Class[v] = Single
		default:
			c.Class[v] = Multiple
			c.Regular = false
		}
	}
	return c
}

// ReverseReachableForward returns the set of nodes reachable from any
// of the seed nodes following arcs forward (seeds included).
func (g *Digraph) ReverseReachableForward(seeds []int) []bool {
	mask := make([]bool, g.N())
	var stack []int32
	for _, s := range seeds {
		if s >= 0 && s < g.N() && !mask[s] {
			mask[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !mask[v] {
				mask[v] = true
				stack = append(stack, v)
			}
		}
	}
	return mask
}

// WalkLengthSets enumerates, for every node, the set of walk lengths
// from src up to and including maxLen, by level DP over the full graph
// (recurring regions included). It is the brute-force oracle used to
// validate Classify and the Step 1 algorithms: O(maxLen * M) time.
func (g *Digraph) WalkLengthSets(src, maxLen int) [][]int {
	n := g.N()
	out := make([][]int, n)
	if src < 0 || src >= n {
		return out
	}
	cur := make([]bool, n)
	nxt := make([]bool, n)
	cur[src] = true
	out[src] = append(out[src], 0)
	for level := 1; level <= maxLen; level++ {
		any := false
		for i := range nxt {
			nxt[i] = false
		}
		for u := 0; u < n; u++ {
			if !cur[u] {
				continue
			}
			for _, v := range g.out[u] {
				if !nxt[v] {
					nxt[v] = true
					any = true
					out[v] = append(out[v], level)
				}
			}
		}
		cur, nxt = nxt, cur
		if !any {
			break
		}
	}
	return out
}

// ClassifyOracle is a deliberately naive classifier used only in tests
// to cross-check Classify: it enumerates walk lengths up to 2N and
// derives the class from first principles. A node with a walk of
// length >= N has walked through a cycle (pigeonhole), hence is
// recurring; otherwise the number of distinct lengths decides.
func (g *Digraph) ClassifyOracle(src int) []Class {
	n := g.N()
	classes := make([]Class, n)
	sets := g.WalkLengthSets(src, 2*n)
	for v := 0; v < n; v++ {
		set := sets[v]
		switch {
		case len(set) == 0:
			classes[v] = Unreachable
		case set[len(set)-1] >= n:
			classes[v] = Recurring
		case len(set) == 1:
			classes[v] = Single
		default:
			classes[v] = Multiple
		}
	}
	return classes
}
