package graph

// SCCResult describes the strongly connected components of a digraph.
type SCCResult struct {
	// Comp[v] is the component id of node v. Ids are assigned in
	// reverse topological order of the condensation (a component's id
	// is greater than the ids of components it can reach). This is the
	// order Tarjan's algorithm emits naturally.
	Comp []int
	// Size[c] is the number of nodes in component c.
	Size []int
	// NumComps is the number of components.
	NumComps int
}

// SCC computes strongly connected components with an iterative version
// of Tarjan's depth-first algorithm, in O(N+M) time. The paper's §9
// cites exactly this algorithm for detecting recurring nodes in linear
// time.
func (g *Digraph) SCC() *SCCResult {
	n := g.N()
	res := &SCCResult{Comp: make([]int, n)}
	for i := range res.Comp {
		res.Comp[i] = -1
	}
	index := make([]int32, n) // discovery order, 0 = unvisited
	low := make([]int32, n)
	onStack := make([]bool, n)
	var stack []int32   // Tarjan stack
	var next int32 = 1  // next discovery index
	type frame struct { // explicit DFS stack
		v  int32
		ai int // next out-arc to consider
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ai < len(g.out[v]) {
				w := g.out[v][f.ai]
				f.ai++
				if index[w] == 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: pop a component if v is a root.
			if low[v] == index[v] {
				c := res.NumComps
				res.NumComps++
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.Comp[w] = c
					size++
					if w == v {
						break
					}
				}
				res.Size = append(res.Size, size)
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[p] > low[v] {
					low[p] = low[v]
				}
			}
		}
	}
	return res
}

// CyclicNodes returns the mask of nodes lying on some directed cycle:
// members of a component of size >= 2, or nodes with a self-loop.
func (g *Digraph) CyclicNodes() []bool {
	scc := g.SCC()
	mask := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if scc.Size[scc.Comp[v]] >= 2 || g.HasArc(v, v) {
			mask[v] = true
		}
	}
	return mask
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	for _, c := range g.CyclicNodes() {
		if c {
			return false
		}
	}
	return true
}
