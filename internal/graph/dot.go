package graph

import (
	"fmt"
	"io"
	"sort"
)

// DOTOptions controls DOT rendering.
type DOTOptions struct {
	// Name labels the digraph (default "G").
	Name string
	// Label returns a node's display label; nil uses the node id.
	Label func(v int) string
	// Classes optionally colors nodes by their magic-graph class
	// (single = green, multiple = orange, recurring = red,
	// unreachable = gray).
	Classes []Class
}

// WriteDOT renders the graph in Graphviz DOT syntax, deterministically
// (nodes and arcs in id order), so outputs are diff- and test-stable.
func (g *Digraph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	label := opts.Label
	if label == nil {
		label = func(v int) string { return fmt.Sprintf("n%d", v) }
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if opts.Classes != nil && v < len(opts.Classes) {
			attrs = fmt.Sprintf(" [style=filled, fillcolor=%q, tooltip=%q]",
				classColor(opts.Classes[v]), opts.Classes[v].String())
		}
		if _, err := fmt.Fprintf(w, "  %q%s;\n", label(v), attrs); err != nil {
			return err
		}
	}
	for u := 0; u < g.N(); u++ {
		out := append([]int32(nil), g.Out(u)...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		for _, v := range out {
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", label(u), label(int(v))); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func classColor(c Class) string {
	switch c {
	case Single:
		return "palegreen"
	case Multiple:
		return "orange"
	case Recurring:
		return "salmon"
	default:
		return "lightgray"
	}
}
