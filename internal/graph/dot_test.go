package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "G"`, `"n0" -> "n1"`, `"n1" -> "n2"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithClassesAndLabels(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {0, 3}})
	cls := g.Classify(0)
	names := []string{"a", "b", "c", "d"}
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Name:    "magic",
		Label:   func(v int) string { return names[v] },
		Classes: cls.Class,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `digraph "magic"`) {
		t.Fatal("name missing")
	}
	if !strings.Contains(out, "salmon") { // recurring nodes b, c
		t.Fatalf("recurring color missing:\n%s", out)
	}
	if !strings.Contains(out, "palegreen") { // single nodes a, d
		t.Fatalf("single color missing:\n%s", out)
	}
	if !strings.Contains(out, `"a" -> "b"`) {
		t.Fatal("labeled arc missing")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 3}, {0, 1}, {0, 2}})
	var a, b bytes.Buffer
	if err := g.WriteDOT(&a, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("DOT output not deterministic")
	}
	// Arcs must be sorted by target id.
	out := a.String()
	if strings.Index(out, `"n0" -> "n1"`) > strings.Index(out, `"n0" -> "n3"`) {
		t.Fatal("arcs not sorted")
	}
}
