package graph

import (
	"math/rand"
	"testing"
)

// wccOracle computes weak components by brute force: repeated BFS over
// the undirected view (out and in arcs alike), components numbered in
// order of their smallest node — the same canonical numbering the fast
// decomposition promises.
func wccOracle(g *Digraph) WCCResult {
	n := g.N()
	res := WCCResult{Comp: make([]int, n)}
	for i := range res.Comp {
		res.Comp[i] = -1
	}
	for v := 0; v < n; v++ {
		if res.Comp[v] != -1 {
			continue
		}
		id := res.NumComps
		res.NumComps++
		res.Size = append(res.Size, 0)
		queue := []int{v}
		res.Comp[v] = id
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			res.Size[id]++
			for _, rows := range [][]int32{g.out[u], g.in[u]} {
				for _, w := range rows {
					if res.Comp[w] == -1 {
						res.Comp[w] = id
						queue = append(queue, int(w))
					}
				}
			}
		}
	}
	return res
}

func TestWeaklyConnectedComponentsAgainstOracle(t *testing.T) {
	cases := []struct {
		name string
		n    int
		arcs [][2]int
	}{
		{"empty", 0, nil},
		{"isolated", 4, nil},
		{"chain", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{"two-regions", 6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}}},
		{"antiparallel", 4, [][2]int{{1, 0}, {3, 2}}},
		{"self-loop", 3, [][2]int{{0, 0}, {1, 2}}},
		{"cycle-plus-island", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}}},
		{"converging", 5, [][2]int{{0, 2}, {1, 2}, {3, 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewDigraph(tc.n)
			for _, a := range tc.arcs {
				g.AddArc(a[0], a[1])
			}
			got, want := g.WeaklyConnectedComponents(), wccOracle(g)
			if got.NumComps != want.NumComps {
				t.Fatalf("NumComps = %d, oracle %d", got.NumComps, want.NumComps)
			}
			for v := range got.Comp {
				if got.Comp[v] != want.Comp[v] {
					t.Fatalf("node %d: comp %d, oracle %d", v, got.Comp[v], want.Comp[v])
				}
			}
			for i := range got.Size {
				if got.Size[i] != want.Size[i] {
					t.Fatalf("component %d: size %d, oracle %d", i, got.Size[i], want.Size[i])
				}
			}
		})
	}
}

// TestWeaklyConnectedComponentsProperties checks the decomposition on
// seeded random graphs: every node lands in exactly one in-range
// component, sizes account for every node exactly once, no arc
// crosses components, and the result matches the brute-force oracle.
func TestWeaklyConnectedComponentsProperties(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := NewDigraph(n)
		arcs := rng.Intn(2 * n)
		for i := 0; i < arcs; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		res := g.WeaklyConnectedComponents()
		if len(res.Comp) != n || len(res.Size) != res.NumComps {
			t.Fatalf("seed %d: shape Comp=%d Size=%d NumComps=%d over n=%d",
				seed, len(res.Comp), len(res.Size), res.NumComps, n)
		}
		total := 0
		counted := make([]int, res.NumComps)
		for v, c := range res.Comp {
			if c < 0 || c >= res.NumComps {
				t.Fatalf("seed %d: node %d in out-of-range component %d", seed, v, c)
			}
			counted[c]++
		}
		for i, sz := range res.Size {
			if counted[i] != sz {
				t.Fatalf("seed %d: component %d counts %d nodes, Size says %d", seed, i, counted[i], sz)
			}
			total += sz
		}
		if total != n {
			t.Fatalf("seed %d: sizes sum to %d, want %d", seed, total, n)
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if res.Comp[u] != res.Comp[v] {
					t.Fatalf("seed %d: arc (%d,%d) crosses components %d and %d",
						seed, u, v, res.Comp[u], res.Comp[v])
				}
			}
		}
		want := wccOracle(g)
		for v := range res.Comp {
			if res.Comp[v] != want.Comp[v] {
				t.Fatalf("seed %d: node %d comp %d, oracle %d", seed, v, res.Comp[v], want.Comp[v])
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("fresh forest has %d sets, want 5", u.Sets())
	}
	if !u.Union(0, 1) || !u.Union(3, 4) {
		t.Fatal("first unions reported no-op")
	}
	if u.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	if u.Sets() != 3 {
		t.Fatalf("after two merges: %d sets, want 3", u.Sets())
	}
	if u.Find(0) != u.Find(1) || u.Find(3) != u.Find(4) {
		t.Fatal("merged elements have distinct representatives")
	}
	if u.Find(2) == u.Find(0) || u.Find(2) == u.Find(3) {
		t.Fatal("singleton joined a merged set")
	}
	u.Union(1, 3)
	if u.Find(0) != u.Find(4) || u.Sets() != 2 {
		t.Fatal("transitive merge failed")
	}
}
