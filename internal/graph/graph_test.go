package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildGraph constructs a digraph from an arc list over n nodes.
func buildGraph(n int, arcs [][2]int) *Digraph {
	g := NewDigraph(n)
	for _, a := range arcs {
		g.AddArc(a[0], a[1])
	}
	return g
}

// randomGraph builds a random digraph with n nodes and about m arcs.
func randomGraph(rng *rand.Rand, n, m int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i < m; i++ {
		g.AddArc(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestAddArcDedupeAndDegrees(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 1) // self-loop
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (duplicate collapsed)", g.M())
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 || g.InDegree(0) != 0 {
		t.Fatalf("degree mismatch: out0=%d in1=%d in0=%d", g.OutDegree(0), g.InDegree(1), g.InDegree(0))
	}
	if !g.HasArc(1, 1) || g.HasArc(2, 0) {
		t.Fatal("HasArc wrong")
	}
}

func TestAddArcOutOfRangePanics(t *testing.T) {
	g := NewDigraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddArc(0, 5)
}

func TestAddNodeReturnsSequentialIDs(t *testing.T) {
	g := NewDigraph(0)
	if g.AddNode() != 0 || g.AddNode() != 1 {
		t.Fatal("AddNode ids not sequential")
	}
	g.AddNodes(3)
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
}

func TestBFSLevelsChain(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	got := g.BFSLevels(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSLevels = %v, want %v", got, want)
		}
	}
	if g.BFSLevels(3)[0] != -1 {
		t.Fatal("unreachable node should be -1")
	}
	if g.BFSLevels(-1)[0] != -1 {
		t.Fatal("invalid source should leave all -1")
	}
}

func TestBFSLevelsShortestOfTwoPaths(t *testing.T) {
	// 0->1->2->3 and shortcut 0->3.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if d := g.BFSLevels(0)[3]; d != 1 {
		t.Fatalf("dist(3) = %d, want 1", d)
	}
}

func TestReachable(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	r := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reachable = %v, want %v", r, want)
		}
	}
}

func TestReverseReachable(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 2}, {4, 0}})
	r := g.ReverseReachable([]int{2})
	want := []bool{true, true, true, true, true}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ReverseReachable = %v, want %v", r, want)
		}
	}
	if r := g.ReverseReachable([]int{3}); r[0] || !r[3] {
		t.Fatal("ReverseReachable(3) wrong")
	}
}

func TestReverseReachableForward(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {3, 0}})
	r := g.ReverseReachableForward([]int{1})
	if !r[1] || !r[2] || r[0] || r[3] {
		t.Fatalf("forward closure from 1 = %v", r)
	}
}

func TestInduced(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	sub, oldToNew, newToOld := g.Induced([]bool{true, true, false, true})
	if sub.N() != 3 || sub.M() != 2 { // arcs 0->1 and 0->3 survive
		t.Fatalf("sub has n=%d m=%d", sub.N(), sub.M())
	}
	if oldToNew[2] != -1 {
		t.Fatal("dropped node should map to -1")
	}
	if newToOld[oldToNew[3]] != 3 {
		t.Fatal("id maps not inverse")
	}
	if !sub.HasArc(oldToNew[0], oldToNew[3]) {
		t.Fatal("surviving arc missing")
	}
}

func TestSCCChainIsAllSingletons(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	scc := g.SCC()
	if scc.NumComps != 4 {
		t.Fatalf("NumComps = %d, want 4", scc.NumComps)
	}
	if !g.IsAcyclic() {
		t.Fatal("chain should be acyclic")
	}
}

func TestSCCCycleAndTail(t *testing.T) {
	// 0->1->2->0 cycle with tail 2->3.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	scc := g.SCC()
	if scc.NumComps != 2 {
		t.Fatalf("NumComps = %d, want 2", scc.NumComps)
	}
	c := scc.Comp[0]
	if scc.Comp[1] != c || scc.Comp[2] != c || scc.Comp[3] == c {
		t.Fatalf("Comp = %v", scc.Comp)
	}
	if scc.Size[c] != 3 {
		t.Fatalf("cycle component size = %d", scc.Size[c])
	}
	if g.IsAcyclic() {
		t.Fatal("graph has a cycle")
	}
}

func TestSCCReverseTopologicalIDs(t *testing.T) {
	// Condensation A -> B: A's id must be greater than B's.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}})
	scc := g.SCC()
	if scc.Comp[0] <= scc.Comp[2] {
		t.Fatalf("expected upstream component to have larger id: %v", scc.Comp)
	}
}

func TestCyclicNodesSelfLoop(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 1}, {1, 2}})
	cyc := g.CyclicNodes()
	if cyc[0] || !cyc[1] || cyc[2] {
		t.Fatalf("CyclicNodes = %v", cyc)
	}
}

// Oracle SCC: two nodes are in the same component iff each reaches the
// other. Verified on random graphs.
func TestSCCMatchesReachabilityOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := randomGraph(rng, n, rng.Intn(3*n))
		scc := g.SCC()
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(v)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := scc.Comp[u] == scc.Comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestClassifyChainAllSingle(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	c := g.Classify(0)
	for v := 0; v < 4; v++ {
		if c.Class[v] != Single {
			t.Fatalf("node %d class = %v, want single", v, c.Class[v])
		}
		if len(c.Indices[v]) != 1 || c.Indices[v][0] != v {
			t.Fatalf("node %d indices = %v", v, c.Indices[v])
		}
	}
	if !c.Regular || c.HasRecurring {
		t.Fatal("chain should be regular and non-recurring")
	}
}

func TestClassifyDiamondIsRegular(t *testing.T) {
	// Two paths of equal length: still single.
	g := buildGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	c := g.Classify(0)
	if c.Class[3] != Single || !c.Regular {
		t.Fatalf("diamond sink class = %v, regular = %v", c.Class[3], c.Regular)
	}
}

func TestClassifyShortcutMakesMultiple(t *testing.T) {
	// 0->1->2 plus 0->2: node 2 has distances {1,2}.
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	c := g.Classify(0)
	if c.Class[2] != Multiple {
		t.Fatalf("class(2) = %v, want multiple", c.Class[2])
	}
	if got := c.Indices[2]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("indices(2) = %v, want [1 2]", got)
	}
	if c.Regular {
		t.Fatal("graph is not regular")
	}
	if c.HasRecurring {
		t.Fatal("graph has no cycle")
	}
}

func TestClassifyCycleMakesRecurring(t *testing.T) {
	// 0->1->2->1 cycle, 2->3 downstream.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}})
	c := g.Classify(0)
	for _, v := range []int{1, 2, 3} {
		if c.Class[v] != Recurring {
			t.Fatalf("class(%d) = %v, want recurring", v, c.Class[v])
		}
	}
	if c.Class[0] != Single {
		t.Fatalf("class(0) = %v, want single (upstream of cycle)", c.Class[0])
	}
	if !c.HasRecurring || c.Regular {
		t.Fatal("flags wrong")
	}
}

func TestClassifyUnreachable(t *testing.T) {
	g := buildGraph(3, [][2]int{{1, 2}})
	c := g.Classify(0)
	if c.Class[1] != Unreachable || c.Class[2] != Unreachable {
		t.Fatal("disconnected nodes should be unreachable")
	}
	if c.FirstIndex[1] != -1 {
		t.Fatal("FirstIndex of unreachable should be -1")
	}
	if !c.Regular {
		t.Fatal("unreachable nodes must not break regularity")
	}
}

func TestClassifySourceOnCycle(t *testing.T) {
	g := buildGraph(2, [][2]int{{0, 0}, {0, 1}})
	c := g.Classify(0)
	if c.Class[0] != Recurring || c.Class[1] != Recurring {
		t.Fatalf("self-loop source: %v", c.Class)
	}
}

func TestClassifyMatchesOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomGraph(rng, n, rng.Intn(3*n))
		fast := g.Classify(0)
		slow := g.ClassifyOracle(0)
		for v := 0; v < n; v++ {
			if fast.Class[v] != slow[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassifyIndicesMatchWalkSetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := randomGraph(rng, n, rng.Intn(2*n))
		c := g.Classify(0)
		walks := g.WalkLengthSets(0, n-1)
		for v := 0; v < n; v++ {
			if c.Class[v] != Single && c.Class[v] != Multiple {
				continue
			}
			if len(c.Indices[v]) != len(walks[v]) {
				return false
			}
			for i := range walks[v] {
				if c.Indices[v][i] != walks[v][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWalkLengthSetsLasso(t *testing.T) {
	// 0->1, 1->2, 2->1 (2-cycle): node 1 has lengths 1,3,5,...
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	sets := g.WalkLengthSets(0, 6)
	want1 := []int{1, 3, 5}
	if len(sets[1]) != 3 {
		t.Fatalf("walk set(1) = %v", sets[1])
	}
	for i, w := range want1 {
		if sets[1][i] != w {
			t.Fatalf("walk set(1) = %v, want %v", sets[1], want1)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		Unreachable: "unreachable",
		Single:      "single",
		Multiple:    "multiple",
		Recurring:   "recurring",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
