package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"magiccounting/internal/core"
)

func mkRecord(gen uint64, n int) Record {
	rec := Record{Gen: gen}
	for i := 0; i < n; i++ {
		rec.L = append(rec.L, core.P(name(gen, i), name(gen, i+1)))
		rec.E = append(rec.E, core.P(name(gen, i), rname(gen, i)))
		rec.R = append(rec.R, core.P(rname(gen, i), rname(gen, i+1)))
	}
	return rec
}

func name(gen uint64, i int) string  { return "n" + string(rune('a'+int(gen)%26)) + itoa(i) }
func rname(gen uint64, i int) string { return "r" + string(rune('a'+int(gen)%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *RecoveryInfo) {
	t.Helper()
	st, info, err := Open(dir, opts, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, info
}

func appendAll(t *testing.T, st *Store, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatalf("Append gen %d: %v", rec.Gen, err)
		}
	}
}

// TestWALRoundtrip: append, close, reopen, replay everything.
func TestWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, info := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	if info.Generation != 0 || info.ReplayedRecords != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	recs := []Record{mkRecord(1, 3), mkRecord(2, 1), mkRecord(3, 5)}
	appendAll(t, st, recs...)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, info2 := mustOpen(t, dir, Options{})
	if info2.Generation != 3 || info2.ReplayedRecords != 3 {
		t.Fatalf("recovered gen %d, %d records; want 3, 3", info2.Generation, info2.ReplayedRecords)
	}
	wantFacts := 0
	for _, r := range recs {
		wantFacts += r.Facts()
	}
	if got := len(info2.L) + len(info2.E) + len(info2.R); got != wantFacts {
		t.Fatalf("recovered %d facts, want %d", got, wantFacts)
	}
	if info2.L[0] != recs[0].L[0] || info2.R[len(info2.R)-1] != recs[2].R[len(recs[2].R)-1] {
		t.Fatal("recovered facts out of order")
	}
}

// TestWALRotation: a tiny segment cap forces several segments; replay
// must walk all of them in order.
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 256})
	for g := uint64(1); g <= 20; g++ {
		appendAll(t, st, mkRecord(g, 2))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(paths))
	}
	_, info := mustOpen(t, dir, Options{})
	if info.Generation != 20 || info.ReplayedRecords != 20 {
		t.Fatalf("recovered gen %d, %d records; want 20, 20", info.Generation, info.ReplayedRecords)
	}
}

// TestTornFinalRecordTruncated: a record cut mid-write is dropped and
// the file truncated, and the log accepts new appends afterwards.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendAll(t, st, mkRecord(1, 2), mkRecord(2, 2), mkRecord(3, 2))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, _ := listSegments(dir)
	fi, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(paths[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2, info := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	if info.Generation != 2 || info.ReplayedRecords != 2 {
		t.Fatalf("recovered gen %d, %d records; want 2, 2", info.Generation, info.ReplayedRecords)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("expected TruncatedBytes > 0 for a torn tail")
	}
	// The log is clean again: gen 3 can be re-committed and survives.
	appendAll(t, st2, mkRecord(3, 4))
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, info3 := mustOpen(t, dir, Options{})
	if info3.Generation != 3 || info3.ReplayedRecords != 3 || info3.TruncatedBytes != 0 {
		t.Fatalf("post-repair recovery: %+v", info3)
	}
}

// TestCorruptCRCMidSegment: a checksum failure that is not the final
// record cuts replay at the last durable prefix and discards the
// unreachable suffix (and any later segments).
func TestCorruptCRCMidSegment(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	offsets := []int64{}
	for g := uint64(1); g <= 4; g++ {
		appendAll(t, st, mkRecord(g, 2))
		st.w.mu.Lock()
		offsets = append(offsets, st.w.size)
		st.w.mu.Unlock()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, _ := listSegments(dir)
	// Flip one payload byte inside record 2 (between offsets[0] and
	// offsets[1], past its 8-byte frame header).
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[0]+recordHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, info := mustOpen(t, dir, Options{})
	if info.Generation != 1 || info.ReplayedRecords != 1 {
		t.Fatalf("recovered gen %d, %d records; want 1, 1 (prefix before corruption)", info.Generation, info.ReplayedRecords)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("expected the corrupt suffix to be counted as truncated")
	}
}

// TestCorruptionDropsLaterSegments: corruption in segment k makes
// every later segment unreachable (its records would open a
// generation gap), so recovery removes them.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 300})
	for g := uint64(1); g <= 12; g++ {
		appendAll(t, st, mkRecord(g, 2))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, _ := listSegments(dir)
	if len(paths) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the first segment's last record
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, info := mustOpen(t, dir, Options{})
	if info.DroppedSegments != len(paths)-1 {
		t.Fatalf("dropped %d segments, want %d", info.DroppedSegments, len(paths)-1)
	}
	left, _, _ := listSegments(dir)
	if len(left) != 1 {
		t.Fatalf("%d segments remain, want 1", len(left))
	}
	if info.Generation >= 12 {
		t.Fatalf("generation %d should be below 12 after losing a suffix", info.Generation)
	}
}

// TestSnapshotRoundtripAndGC: snapshot + tail replay, artifact
// preserved only when current, old segments and snapshots collected.
func TestSnapshotRoundtripAndGC(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendAll(t, st, mkRecord(1, 3), mkRecord(2, 3))

	var l, e, r []core.Pair
	for _, rec := range []Record{mkRecord(1, 3), mkRecord(2, 3)} {
		l = append(l, rec.L...)
		e = append(e, rec.E...)
		r = append(r, rec.R...)
	}
	comp := core.Compile(l, e, r)
	comp.Generation = 2
	floor, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(Snapshot{Gen: 2, L: l, E: e, R: r, Compiled: comp}, floor); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot-only recovery: artifact current, zero replay.
	_, info := mustOpen(t, dir, Options{})
	if !info.SnapshotLoaded || info.Generation != 2 || info.ReplayedRecords != 0 {
		t.Fatalf("snapshot-only recovery: %+v", info)
	}
	if info.Compiled == nil || info.Compiled.Generation != 2 {
		t.Fatal("snapshot artifact lost or stale")
	}
	if len(info.L) != len(l) || len(info.E) != len(e) || len(info.R) != len(r) {
		t.Fatalf("snapshot facts: %d/%d/%d, want %d/%d/%d", len(info.L), len(info.E), len(info.R), len(l), len(e), len(r))
	}

	// Tail past the snapshot invalidates the artifact.
	st2, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendAll(t, st2, mkRecord(3, 2))
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, info2 := mustOpen(t, dir, Options{})
	if info2.Generation != 3 || info2.ReplayedRecords != 1 {
		t.Fatalf("snapshot+tail recovery: %+v", info2)
	}
	if info2.Compiled != nil {
		t.Fatal("stale artifact must be dropped when a tail was replayed")
	}

	// GC: only segments >= floor and at most two snapshots remain.
	_, seqs, _ := listSegments(dir)
	for _, seq := range seqs {
		if seq < floor {
			t.Fatalf("segment %d below floor %d survived GC", seq, floor)
		}
	}
}

// TestRotateCrashKeepsSealedSegments: a crash in the window between
// Rotate (which seals the active segment and names the GC floor) and
// WriteSnapshot (which would persist the state those segments encode)
// must lose nothing. The sealed segment is not covered by any
// snapshot, so recovery has to replay it — and neither recovery nor a
// later snapshot at a fresh floor may delete records that only the
// log holds.
func TestRotateCrashKeepsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendAll(t, st, mkRecord(1, 2), mkRecord(2, 2))
	floor, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Writes land in the new active segment; the sealed one now holds
	// gens 1-2 and nothing else references them.
	appendAll(t, st, mkRecord(3, 2))
	// Crash: no WriteSnapshot, no Close. FsyncAlways means every
	// acknowledged append above is already on stable storage.

	paths, seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("expected 2 segments (sealed + active), got %d", len(paths))
	}
	if seqs[1] != floor {
		t.Fatalf("active segment seq %d, Rotate reported floor %d", seqs[1], floor)
	}

	st2, info := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	if info.SnapshotLoaded {
		t.Fatal("no snapshot was ever written")
	}
	if info.Generation != 3 || info.ReplayedRecords != 3 {
		t.Fatalf("recovered gen %d, %d records; want 3, 3", info.Generation, info.ReplayedRecords)
	}
	if info.ReplayedSegments != 2 || info.DroppedSegments != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("recovery touched sealed segments: %+v", info)
	}
	after, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(paths) {
		t.Fatalf("recovery changed segment count: %d -> %d", len(paths), len(after))
	}

	// The interrupted checkpoint retries from scratch: a fresh Rotate
	// names a fresh floor, and only then may the old segments go.
	appendAll(t, st2, mkRecord(4, 1))
	floor2, err := st2.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	l, e, r := info.L, info.E, info.R
	rec4 := mkRecord(4, 1)
	l = append(append([]core.Pair{}, l...), rec4.L...)
	e = append(append([]core.Pair{}, e...), rec4.E...)
	r = append(append([]core.Pair{}, r...), rec4.R...)
	if err := st2.WriteSnapshot(Snapshot{Gen: 4, L: l, E: e, R: r}, floor2); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, info2 := mustOpen(t, dir, Options{})
	if info2.Generation != 4 || info2.ReplayedRecords != 0 || !info2.SnapshotLoaded {
		t.Fatalf("post-checkpoint recovery: %+v", info2)
	}
	if got := len(info2.L) + len(info2.E) + len(info2.R); got != len(l)+len(e)+len(r) {
		t.Fatalf("post-checkpoint facts: %d, want %d", got, len(l)+len(e)+len(r))
	}
}

// TestSnapshotFallback: a corrupt newest snapshot falls back to the
// previous one plus a longer replay.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	appendAll(t, st, mkRecord(1, 2))
	floor, _ := st.Rotate()
	snap1 := Snapshot{Gen: 1, L: mkRecord(1, 2).L, E: mkRecord(1, 2).E, R: mkRecord(1, 2).R}
	if err := st.WriteSnapshot(snap1, floor); err != nil {
		t.Fatal(err)
	}
	appendAll(t, st, mkRecord(2, 2))
	floor2, _ := st.Rotate()
	l2 := append(append([]core.Pair{}, snap1.L...), mkRecord(2, 2).L...)
	e2 := append(append([]core.Pair{}, snap1.E...), mkRecord(2, 2).E...)
	r2 := append(append([]core.Pair{}, snap1.R...), mkRecord(2, 2).R...)
	if err := st.WriteSnapshot(Snapshot{Gen: 2, L: l2, E: e2, R: r2}, floor2); err != nil {
		t.Fatal(err)
	}
	appendAll(t, st, mkRecord(3, 1))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the gen-2 snapshot's payload.
	path := filepath.Join(dir, snapshotName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, info := mustOpen(t, dir, Options{})
	if info.SnapshotGeneration != 1 {
		t.Fatalf("fell back to snapshot gen %d, want 1", info.SnapshotGeneration)
	}
	if len(info.SkippedSnapshots) != 1 || !strings.Contains(info.SkippedSnapshots[0], "checksum") {
		t.Fatalf("SkippedSnapshots = %v", info.SkippedSnapshots)
	}
	// Replay covers the gap: gen 2 and 3 come from the log.
	if info.Generation != 3 || info.ReplayedRecords != 2 {
		t.Fatalf("fallback recovery: gen %d, %d records; want 3, 2", info.Generation, info.ReplayedRecords)
	}
}

// TestVersionMismatchRejected: a future-format segment or snapshot
// must fail Open with ErrIncompatibleVersion, not be misparsed.
func TestVersionMismatchRejected(t *testing.T) {
	for _, kind := range []string{"wal", "snap"} {
		dir := t.TempDir()
		st, _ := mustOpen(t, dir, Options{})
		appendAll(t, st, mkRecord(1, 1))
		floor, _ := st.Rotate()
		if err := st.WriteSnapshot(Snapshot{Gen: 1, L: mkRecord(1, 1).L}, floor); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		var path string
		if kind == "wal" {
			paths, _, _ := listSegments(dir)
			path = paths[0]
		} else {
			path = filepath.Join(dir, snapshotName(1))
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[5] = formatVersion + 1 // the version byte
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = Open(dir, Options{}, nil)
		if !errors.Is(err, ErrIncompatibleVersion) {
			t.Fatalf("%s version bump: err = %v, want ErrIncompatibleVersion", kind, err)
		}
	}
}

// TestClosedStore: appends after Close fail with ErrClosed.
func TestClosedStore(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkRecord(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestIntervalFsync exercises the background sync loop: appends under
// the interval policy get synced by the ticker (observed via OnFsync)
// and survive a reopen.
func TestIntervalFsync(t *testing.T) {
	dir := t.TempDir()
	synced := make(chan time.Duration, 16)
	st, _ := mustOpen(t, dir, Options{
		Fsync:         FsyncInterval,
		FsyncInterval: 5 * time.Millisecond,
		OnFsync:       func(d time.Duration) { synced <- d },
	})
	appendAll(t, st, mkRecord(1, 2))
	select {
	case <-synced:
	case <-time.After(2 * time.Second):
		t.Fatal("interval policy never fsynced")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := mustOpen(t, dir, Options{})
	if info.Generation != 1 {
		t.Fatalf("recovered gen %d, want 1", info.Generation)
	}
}
