package durable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"magiccounting/internal/core"
)

// Record is one committed fact batch: the deduplicated pairs one
// AppendFacts commit added, tagged with the generation the commit
// produced. Records are written ahead of the in-memory commit and are
// duplicate-free by construction (the writer dedupes against its
// membership sets before logging), so replay concatenates deltas
// without re-deduplication.
type Record struct {
	Gen     uint64
	L, E, R []core.Pair
}

// Facts counts the pairs in the record.
func (r Record) Facts() int { return len(r.L) + len(r.E) + len(r.R) }

// encodeRecordPayload serializes a record:
//
//	uvarint gen | relation L | relation E | relation R
//	relation   = uvarint count | count × pair
//	pair       = uvarint len(from) | from | uvarint len(to) | to
func encodeRecordPayload(rec Record) []byte {
	n := 16
	for _, rel := range [][]core.Pair{rec.L, rec.E, rec.R} {
		n += 8
		for _, p := range rel {
			n += len(p.From) + len(p.To) + 8
		}
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, rec.Gen)
	for _, rel := range [][]core.Pair{rec.L, rec.E, rec.R} {
		buf = binary.AppendUvarint(buf, uint64(len(rel)))
		for _, p := range rel {
			buf = binary.AppendUvarint(buf, uint64(len(p.From)))
			buf = append(buf, p.From...)
			buf = binary.AppendUvarint(buf, uint64(len(p.To)))
			buf = append(buf, p.To...)
		}
	}
	return buf
}

// decodeRecordPayload parses one record payload. The whole payload
// must be consumed: trailing bytes mean the CRC protected a frame the
// encoder never wrote.
func decodeRecordPayload(data []byte) (Record, error) {
	r := payloadReader{data: data}
	rec := Record{Gen: r.uvarint()}
	for _, dst := range []*[]core.Pair{&rec.L, &rec.E, &rec.R} {
		n := r.uvarint()
		if r.err != nil {
			break
		}
		if n > uint64(len(data)) {
			r.err = errors.New("relation count exceeds payload")
			break
		}
		pairs := make([]core.Pair, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			from := r.str()
			to := r.str()
			pairs = append(pairs, core.Pair{From: from, To: to})
		}
		*dst = pairs
	}
	if r.err != nil {
		return Record{}, fmt.Errorf("%w: record payload: %v", ErrCorrupt, r.err)
	}
	if r.off != len(data) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes in record payload", ErrCorrupt, len(data)-r.off)
	}
	return rec, nil
}

// payloadReader is the package's error-latching byte cursor.
type payloadReader struct {
	data []byte
	off  int
	err  error
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = errors.New("truncated uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) str() string {
	l := r.uvarint()
	if r.err != nil {
		return ""
	}
	if l > uint64(len(r.data)-r.off) {
		r.err = errors.New("truncated string")
		return ""
	}
	s := string(r.data[r.off : r.off+int(l)])
	r.off += int(l)
	return s
}
