// Package durable is the persistence layer under the serving tier: an
// append-only, length-prefixed, CRC32-checksummed write-ahead log of
// fact batches (segment files with rotation and a configurable fsync
// policy), point-in-time snapshots that carry the raw L/E/R fact
// slices plus the compiled CSR artifact, and a recovery path that
// loads the newest valid snapshot and replays the WAL tail.
//
// The durability contract follows the magic-set maintenance reading
// of the paper's cost model: base facts are the cheap, authoritative
// state — they are logged synchronously ahead of every commit — while
// derived state (the Compiled artifact) is recomputable and therefore
// only snapshotted opportunistically. Recovery trusts the snapshot
// for bulk state and the log for the tail, truncating a torn final
// record instead of failing; a checksum failure mid-log cuts replay
// at the last durable prefix.
//
// On-disk layout (one directory per store):
//
//	wal-<seq>.log    segment: 8-byte header, then records
//	                 header  = "MCWAL" | version byte | 2 zero bytes
//	                 record  = uint32 payload len | uint32 CRC32(payload) | payload
//	snap-<gen>.snap  snapshot: 8-byte header ("MCSNP" | version | 0 0),
//	                 uint32 CRC32(payload), uint64 payload len, payload
//
// Both headers carry the format-version byte; opening a directory
// written by a different version fails with ErrIncompatibleVersion so
// an operator sees a clear startup error instead of silent
// misparsing.
package durable

import (
	"errors"
	"fmt"
	"time"
)

const (
	// formatVersion is the on-disk format version stamped into every
	// segment and snapshot header. Bump on any incompatible change.
	formatVersion = 1

	headerLen       = 8
	recordHeaderLen = 8

	// maxRecordBytes bounds a single WAL record. The HTTP layer caps
	// request bodies at 8 MiB, so any larger length prefix is framing
	// corruption, not data — treating it as such keeps a corrupted
	// length from driving a giant allocation.
	maxRecordBytes = 64 << 20
)

var (
	walMagic  = [5]byte{'M', 'C', 'W', 'A', 'L'}
	snapMagic = [5]byte{'M', 'C', 'S', 'N', 'P'}
)

var (
	// ErrIncompatibleVersion reports a segment or snapshot written by
	// a different format version of this package.
	ErrIncompatibleVersion = errors.New("durable: incompatible format version")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("durable: store closed")
	// ErrCorrupt reports a file that is not a valid segment or
	// snapshot at all (bad magic, impossible structure).
	ErrCorrupt = errors.New("durable: corrupt file")
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every append: an acknowledged commit
	// survives power loss. The policy for correctness-first serving.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background tick (Options.FsyncInterval):
	// a crash may lose the last interval's appends, never more.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache: fastest, loses
	// an unbounded tail on power loss (process crashes still recover
	// everything the kernel accepted).
	FsyncNever
)

// ParseFsyncPolicy resolves the flag spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

// String names the policy (the flag spelling).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// Options tunes a store.
type Options struct {
	// Fsync is the WAL sync policy. The zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval.
	// Zero selects 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it would exceed
	// this size. Zero selects 64 MiB.
	SegmentBytes int64
	// OnFsync, when non-nil, observes the duration of every WAL fsync
	// (the serving layer feeds its mc_wal_fsync_seconds histogram).
	OnFsync func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}
