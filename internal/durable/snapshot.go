package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"magiccounting/internal/core"
)

// Snapshot is one point-in-time image of the database: the raw fact
// slices, the generation they correspond to, and (optionally) the
// compiled CSR artifact for that generation so recovery skips the
// map-heavy Compile.
type Snapshot struct {
	Gen     uint64
	L, E, R []core.Pair
	// Compiled is the artifact for generation Gen; nil is valid (the
	// loader then leaves compilation to the first query).
	Compiled *core.Compiled
	// compiledRaw holds the still-encoded artifact of a decoded
	// snapshot. Materializing it costs real work, and recovery drops
	// the artifact whenever a WAL tail is replayed past the snapshot —
	// so the payload decoder defers it and Open calls decodeArtifact
	// only when the artifact will actually be used.
	compiledRaw []byte
}

// decodeArtifact materializes the deferred compiled artifact, if any.
// The bytes sit behind the snapshot frame's CRC, so a failure here is
// an encoding incompatibility, not silent disk rot.
func (s *Snapshot) decodeArtifact() error {
	if s.compiledRaw == nil {
		return nil
	}
	c, tail, err := core.DecodeCompiled(s.compiledRaw)
	if err != nil {
		return fmt.Errorf("%w: snapshot artifact: %v", ErrCorrupt, err)
	}
	if len(tail) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after snapshot artifact", ErrCorrupt, len(tail))
	}
	s.Compiled, s.compiledRaw = c, nil
	return nil
}

func snapshotName(gen uint64) string { return fmt.Sprintf("snap-%016x.snap", gen) }

func parseSnapshotGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len("snap-"):len(name)-len(".snap")], 16, 64)
	return gen, err == nil
}

// encodeSnapshotPayload serializes a snapshot. Facts are interned:
// one table of every distinct constant, then each relation as pairs
// of table indexes. Decoding therefore allocates one string per
// distinct constant instead of two per fact — the difference between
// replaying a long log and loading its snapshot.
//
//	uvarint gen
//	uvarint |names| | names (uvarint len | bytes)
//	3 × relation: uvarint count | count × (uvarint fromIdx | uvarint toIdx)
//	1 byte hasCompiled | [compiled artifact (core codec)]
func encodeSnapshotPayload(snap Snapshot) []byte {
	idx := make(map[string]uint64)
	var names []string
	intern := func(s string) uint64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint64(len(names))
		idx[s] = i
		names = append(names, s)
		return i
	}
	rels := [][]core.Pair{snap.L, snap.E, snap.R}
	for _, rel := range rels {
		for _, p := range rel {
			intern(p.From)
			intern(p.To)
		}
	}
	buf := make([]byte, 0, 1024)
	buf = binary.AppendUvarint(buf, snap.Gen)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, s := range names {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, rel := range rels {
		buf = binary.AppendUvarint(buf, uint64(len(rel)))
		for _, p := range rel {
			buf = binary.AppendUvarint(buf, idx[p.From])
			buf = binary.AppendUvarint(buf, idx[p.To])
		}
	}
	if snap.Compiled != nil {
		buf = append(buf, 1)
		buf = snap.Compiled.AppendBinary(buf)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeSnapshotPayload(data []byte) (*Snapshot, error) {
	r := payloadReader{data: data}
	snap := &Snapshot{Gen: r.uvarint()}
	nNames := r.uvarint()
	if r.err != nil || nNames > uint64(len(data)) {
		return nil, fmt.Errorf("%w: snapshot name table", ErrCorrupt)
	}
	names := make([]string, 0, nNames)
	for i := uint64(0); i < nNames && r.err == nil; i++ {
		names = append(names, r.str())
	}
	for _, dst := range []*[]core.Pair{&snap.L, &snap.E, &snap.R} {
		n := r.uvarint()
		if r.err != nil || n > uint64(len(data)) {
			return nil, fmt.Errorf("%w: snapshot relation count", ErrCorrupt)
		}
		pairs := make([]core.Pair, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			fi, ti := r.uvarint(), r.uvarint()
			if fi >= uint64(len(names)) || ti >= uint64(len(names)) {
				return nil, fmt.Errorf("%w: snapshot fact references name %d of %d", ErrCorrupt, max(fi, ti), len(names))
			}
			pairs = append(pairs, core.Pair{From: names[fi], To: names[ti]})
		}
		*dst = pairs
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: snapshot payload: %v", ErrCorrupt, r.err)
	}
	if r.off >= len(data) {
		return nil, fmt.Errorf("%w: snapshot missing artifact flag", ErrCorrupt)
	}
	hasCompiled := data[r.off] == 1
	rest := data[r.off+1:]
	if hasCompiled {
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: snapshot artifact flag set but artifact missing", ErrCorrupt)
		}
		snap.compiledRaw = rest
	} else if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in snapshot", ErrCorrupt, len(rest))
	}
	return snap, nil
}

// writeSnapshotFile writes the snapshot atomically: temp file, fsync,
// rename, directory fsync. A crash mid-write leaves at most a stale
// .tmp that the next load ignores.
func writeSnapshotFile(dir string, snap Snapshot) error {
	payload := encodeSnapshotPayload(snap)
	frame := make([]byte, 0, headerLen+12+len(payload))
	frame = append(frame, fileHeader(snapMagic)...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
	frame = append(frame, payload...)

	tmp := filepath.Join(dir, snapshotName(snap.Gen)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName(snap.Gen))); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// loadSnapshotFile reads and validates one snapshot file.
func loadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := checkHeader(data, snapMagic, path); err != nil {
		return nil, err
	}
	body := data[headerLen:]
	if len(body) < 12 {
		return nil, fmt.Errorf("%w: %s: short snapshot frame", ErrCorrupt, path)
	}
	crc := binary.LittleEndian.Uint32(body[0:4])
	plen := binary.LittleEndian.Uint64(body[4:12])
	payload := body[12:]
	if plen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: %s: payload length %d, frame says %d (torn write)", ErrCorrupt, path, len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: %s: snapshot checksum mismatch", ErrCorrupt, path)
	}
	return decodeSnapshotPayload(payload)
}

// loadNewestSnapshot finds the newest snapshot that validates,
// skipping corrupt or torn ones (an older valid snapshot plus a
// longer replay still recovers). A version mismatch is not skipped:
// the whole directory belongs to another format, and silently
// ignoring it would replay a WAL written by that format too.
func loadNewestSnapshot(dir string) (*Snapshot, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := parseSnapshotGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	var skipped []string
	for _, gen := range gens {
		path := filepath.Join(dir, snapshotName(gen))
		snap, err := loadSnapshotFile(path)
		if err != nil {
			if errors.Is(err, ErrIncompatibleVersion) {
				return nil, nil, err
			}
			skipped = append(skipped, fmt.Sprintf("%s: %v", filepath.Base(path), err))
			continue
		}
		return snap, skipped, nil
	}
	return nil, skipped, nil
}
