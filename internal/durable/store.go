package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"magiccounting/internal/core"
	"magiccounting/internal/obs"
)

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// Generation is the recovered database generation: the snapshot's,
	// advanced by every replayed WAL record.
	Generation uint64
	// L, E, R are the recovered fact slices (snapshot facts plus
	// replayed deltas, duplicate-free by the write-side contract).
	L, E, R []core.Pair
	// Compiled is the snapshot's CSR artifact when it is still current
	// for Generation (no tail was replayed past it); nil otherwise.
	Compiled *core.Compiled
	// SnapshotLoaded and SnapshotGeneration describe the snapshot used.
	SnapshotLoaded     bool
	SnapshotGeneration uint64
	// SkippedSnapshots lists corrupt snapshot files passed over for an
	// older valid one.
	SkippedSnapshots []string
	// ReplayedRecords and ReplayedSegments count the WAL tail replay.
	ReplayedRecords  int
	ReplayedSegments int
	// TruncatedBytes is the size of the invalid suffix cut from the
	// log (a torn final record, or everything from a mid-segment
	// checksum failure on). DroppedSegments counts whole segments
	// discarded because they followed that cut.
	TruncatedBytes  int64
	DroppedSegments int
}

// Store is an open durable directory: the active WAL for appends plus
// the snapshot lifecycle. Obtain one from Open.
type Store struct {
	dir string
	w   *wal

	mu          sync.Mutex
	lastSnapGen uint64
	hasSnap     bool
}

// scannedRec is one valid record plus its start offset, so replay can
// cut the file exactly at the first invalid or out-of-order record.
type scannedRec struct {
	rec   Record
	start int64
}

// scanSegment parses one segment: every valid record in order, the
// offset after the last valid one, and the file size. It never fails
// on a torn or checksum-corrupt suffix — that is the caller's
// truncation decision — but does fail on version or magic mismatches.
func scanSegment(path string) (recs []scannedRec, goodLen, total int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	total = int64(len(data))
	if len(data) < headerLen {
		// Crashed during segment creation: nothing durable here.
		return nil, 0, total, nil
	}
	if err := checkHeader(data, walMagic, path); err != nil {
		return nil, 0, 0, err
	}
	off := int64(headerLen)
	for {
		if off+recordHeaderLen > total {
			break // torn or clean EOF
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen == 0 || plen > maxRecordBytes || off+recordHeaderLen+plen > total {
			break // torn length or impossible frame
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break // checksum failure: cut here
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			break // CRC-valid but unparseable: treat as corruption, cut
		}
		recs = append(recs, scannedRec{rec: rec, start: off})
		off += recordHeaderLen + plen
	}
	return recs, off, total, nil
}

// Open opens (or initializes) a durable directory: load the newest
// valid snapshot, replay the WAL tail in generation order, truncate
// any invalid suffix, and leave the log ready for appends. tr, when
// armed, receives "load-snapshot" and "replay" child spans so startup
// cost is traceable.
func Open(dir string, opts Options, tr *obs.Trace) (*Store, *RecoveryInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{}

	ls := tr.Start("load-snapshot", 0)
	snap, skipped, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	info.SkippedSnapshots = skipped
	if snap != nil {
		info.SnapshotLoaded = true
		info.SnapshotGeneration = snap.Gen
		info.Generation = snap.Gen
		info.L, info.E, info.R = snap.L, snap.E, snap.R
		ls.Set("generation", int64(snap.Gen))
		ls.Set("facts", int64(len(snap.L)+len(snap.E)+len(snap.R)))
	}
	tr.End(ls, 0)

	rs := tr.Start("replay", 0)
	paths, seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	activeSeq, activeSize := uint64(0), int64(0)
	for i, path := range paths {
		recs, goodLen, total, err := scanSegment(path)
		if err != nil {
			return nil, nil, err
		}
		cut := goodLen
		stop := goodLen < total // invalid suffix present
		for _, sr := range recs {
			if sr.rec.Gen <= info.Generation {
				continue // already covered by the snapshot
			}
			if sr.rec.Gen != info.Generation+1 {
				// A generation gap means the log lost a committed
				// prefix record: nothing after this point is trustworthy.
				cut, stop = sr.start, true
				break
			}
			info.L = append(info.L, sr.rec.L...)
			info.E = append(info.E, sr.rec.E...)
			info.R = append(info.R, sr.rec.R...)
			info.Generation = sr.rec.Gen
			info.ReplayedRecords++
		}
		info.ReplayedSegments++
		activeSeq, activeSize = seqs[i], cut
		if stop {
			info.TruncatedBytes += total - cut
			if err := os.Truncate(path, cut); err != nil {
				return nil, nil, fmt.Errorf("durable: truncate %s: %w", path, err)
			}
			for _, late := range paths[i+1:] {
				fi, statErr := os.Stat(late)
				if statErr == nil {
					info.TruncatedBytes += fi.Size()
				}
				if err := os.Remove(late); err != nil {
					return nil, nil, fmt.Errorf("durable: drop segment %s: %w", late, err)
				}
				info.DroppedSegments++
			}
			syncDir(dir)
			break
		}
	}
	rs.Set("records", int64(info.ReplayedRecords))
	rs.Set("segments", int64(info.ReplayedSegments))
	rs.Set("truncated_bytes", info.TruncatedBytes)
	tr.End(rs, 0)

	// A replayed tail past the snapshot invalidates its artifact, so
	// the deferred decode is only paid when the artifact is current.
	if snap != nil && info.Generation == snap.Gen {
		da := tr.Start("decode-artifact", 0)
		if err := snap.decodeArtifact(); err != nil {
			return nil, nil, err
		}
		info.Compiled = snap.Compiled
		tr.End(da, 0)
	}

	w, err := openWAL(dir, opts, activeSeq, activeSize)
	if err != nil {
		return nil, nil, err
	}
	st := &Store{dir: dir, w: w}
	if info.SnapshotLoaded {
		st.hasSnap, st.lastSnapGen = true, info.SnapshotGeneration
	}
	return st, info, nil
}

// Append logs one committed fact batch. Under FsyncAlways it returns
// only after the record is on stable storage — the write-ahead half
// of the serving layer's commit.
func (st *Store) Append(rec Record) error {
	return st.w.append(encodeRecordPayload(rec))
}

// Sync forces the WAL to stable storage regardless of policy.
func (st *Store) Sync() error { return st.w.sync() }

// Rotate seals the active segment and returns the new segment's
// sequence number — the floor below which a subsequent WriteSnapshot
// may garbage-collect (every record already appended lives below it).
func (st *Store) Rotate() (uint64, error) { return st.w.rotate() }

// WriteSnapshot persists snap atomically, then garbage-collects. The
// two newest snapshots are retained (the previous one survives as a
// fallback if the newest is later found corrupt), and a sealed
// segment (seq < floorSeq, per the Rotate contract) is deleted only
// once every record in it is covered by the *oldest* retained
// snapshot — so the fallback snapshot always has the WAL tail it
// would need.
func (st *Store) WriteSnapshot(snap Snapshot, floorSeq uint64) error {
	if err := writeSnapshotFile(st.dir, snap); err != nil {
		return err
	}
	st.mu.Lock()
	st.hasSnap, st.lastSnapGen = true, snap.Gen
	st.mu.Unlock()

	// Trim snapshots to the newest two; the oldest survivor sets the
	// replay floor the retained WAL must cover.
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := parseSnapshotGen(e.Name()); ok && gen < snap.Gen {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	coveredGen := snap.Gen
	if len(gens) > 0 {
		coveredGen = gens[0] // the retained fallback snapshot
		for _, g := range gens[1:] {
			if err := os.Remove(filepath.Join(st.dir, snapshotName(g))); err != nil {
				return err
			}
		}
	}

	paths, seqs, err := listSegments(st.dir)
	if err != nil {
		return err
	}
	for i, seq := range seqs {
		if seq >= floorSeq {
			continue
		}
		recs, _, _, serr := scanSegment(paths[i])
		if serr != nil {
			continue // leave anything odd for recovery to judge
		}
		if len(recs) == 0 || recs[len(recs)-1].rec.Gen <= coveredGen {
			if err := os.Remove(paths[i]); err != nil {
				return err
			}
		}
	}
	syncDir(st.dir)
	return nil
}

// LastSnapshotGeneration reports the newest persisted snapshot's
// generation (ok=false when none exists yet).
func (st *Store) LastSnapshotGeneration() (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastSnapGen, st.hasSnap
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Close syncs and closes the WAL. Idempotent.
func (st *Store) Close() error { return st.w.close() }
