package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// wal is the append side of the log: one active segment file, rotated
// by size, synced per the configured policy. All methods are safe for
// concurrent use; appends serialize on the internal mutex (the
// serving layer additionally serializes commits, so the lock is
// uncontended on the hot path).
type wal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64 // active segment sequence number
	size   int64  // bytes written to the active segment
	dirty  bool   // unsynced bytes pending (interval policy)
	broken error  // sticky write-failure state; set when recovery-by-truncate failed
	closed bool

	stop chan struct{} // interval-sync goroutine shutdown
	done chan struct{}
}

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// parseSegmentSeq extracts the sequence number from a segment file
// name, reporting ok=false for non-segment names.
func parseSegmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len("wal-"):len(name)-len(".log")], 16, 64)
	return seq, err == nil
}

// listSegments returns the directory's segment paths in sequence
// order.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	paths := make([]string, len(seqs))
	for i, seq := range seqs {
		paths[i] = filepath.Join(dir, segmentName(seq))
	}
	return paths, seqs, nil
}

func fileHeader(magic [5]byte) []byte {
	h := make([]byte, headerLen)
	copy(h, magic[:])
	h[5] = formatVersion
	return h
}

// checkHeader validates a file's 8-byte header against the magic and
// the format version.
func checkHeader(data []byte, magic [5]byte, path string) error {
	if len(data) < headerLen {
		return fmt.Errorf("%w: %s: short header (%d bytes)", ErrCorrupt, path, len(data))
	}
	for i := range magic {
		if data[i] != magic[i] {
			return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
		}
	}
	if data[5] != formatVersion {
		return fmt.Errorf("%w: %s holds format version %d, this binary writes version %d",
			ErrIncompatibleVersion, path, data[5], formatVersion)
	}
	return nil
}

// openWAL opens the active segment for appending (at size, past any
// truncated tail) or creates segment 1 in an empty directory.
func openWAL(dir string, opts Options, seq uint64, size int64) (*wal, error) {
	w := &wal{dir: dir, opts: opts, seq: seq, size: size}
	if seq == 0 {
		if err := w.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if size < headerLen {
			// A segment that crashed during creation: rewrite a clean
			// header over whatever partial bytes exist.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.WriteAt(fileHeader(walMagic), 0); err != nil {
				f.Close()
				return nil, err
			}
			size = headerLen
		}
		if _, err := f.Seek(size, 0); err != nil {
			f.Close()
			return nil, err
		}
		w.f, w.size = f, size
	}
	if opts.Fsync == FsyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// createSegmentLocked closes the active segment (if any) and starts
// segment seq with a fresh header. Caller holds mu (or owns w
// exclusively during open).
func (w *wal) createSegmentLocked(seq uint64) error {
	if w.f != nil {
		if w.dirty {
			w.syncLocked() // durability boundary: a rotated-away segment is final
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(fileHeader(walMagic)); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.size, w.dirty = f, seq, headerLen, false
	syncDir(w.dir)
	return nil
}

// append frames and writes one record payload, rotating first when
// the segment is full, then syncs per policy. On a write failure the
// partial frame is truncated away so the log never accumulates a torn
// record mid-file; if even the truncate fails the wal latches broken.
func (w *wal) append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.broken != nil {
		return fmt.Errorf("durable: wal is failed: %w", w.broken)
	}
	if w.size > headerLen && w.size+recordHeaderLen+int64(len(payload)) > w.opts.SegmentBytes {
		if err := w.createSegmentLocked(w.seq + 1); err != nil {
			return err
		}
	}
	frame := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[recordHeaderLen:], payload)
	start := w.size
	if _, err := w.f.Write(frame); err != nil {
		if terr := w.f.Truncate(start); terr != nil {
			w.broken = fmt.Errorf("write: %v; truncate: %v", err, terr)
		} else {
			w.f.Seek(start, 0)
		}
		return fmt.Errorf("durable: wal append: %w", err)
	}
	w.size = start + int64(len(frame))
	w.dirty = true
	if w.opts.Fsync == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

// syncLocked flushes the active segment to stable storage and feeds
// the observer. Caller holds mu.
func (w *wal) syncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	if w.opts.OnFsync != nil {
		w.opts.OnFsync(time.Since(start))
	}
	if err == nil {
		w.dirty = false
	}
	return err
}

// sync forces an fsync regardless of policy.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if !w.dirty {
		return nil
	}
	return w.syncLocked()
}

// syncLoop is the FsyncInterval background ticker.
func (w *wal) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				w.syncLocked()
			}
			w.mu.Unlock()
		case <-w.stop:
			return
		}
	}
}

// rotate seals the active segment and opens the next one, returning
// the new segment's sequence number: every record written before the
// call lives in a segment with a smaller sequence, which is the
// garbage-collection floor checkpointing relies on.
func (w *wal) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.createSegmentLocked(w.seq + 1); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// close syncs and closes the active segment. Further appends fail
// with ErrClosed.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.dirty {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best effort: not every platform supports it, and losing a
// directory entry is recoverable (the file simply is not found).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
