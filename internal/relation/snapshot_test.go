package relation

import (
	"fmt"
	"sync"
	"testing"
)

func TestSnapshotIsFrozenAndStable(t *testing.T) {
	s := NewStore()
	r := s.Relation("edge", 2)
	for i := 0; i < 100; i++ {
		r.InsertValues(Sym(fmt.Sprintf("a%d", i)), Int(int64(i)))
	}
	r.EnsureIndex(0)
	snap := s.Snapshot()
	sr, ok := snap.Lookup("edge")
	if !ok || !sr.Frozen() || sr.Len() != 100 {
		t.Fatalf("snapshot edge: ok=%v frozen=%v len=%d", ok, sr.Frozen(), sr.Len())
	}

	// Concurrent readers over the snapshot while the original keeps
	// growing: the snapshot must stay at 100 tuples, indexed probes
	// and scan fallbacks both safe (the race detector watches).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 400; i++ {
			r.InsertValues(Sym(fmt.Sprintf("a%d", i)), Int(int64(i)))
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Indexed probe (index on col 0 copied into the snapshot).
				n := sr.MatchCount([]int{0}, []Value{Sym("a42")})
				if n != 1 {
					t.Errorf("indexed probe found %d tuples, want 1", n)
					return
				}
				// Unindexed probe: frozen relations fall back to a scan
				// instead of building an index.
				n = sr.MatchCount([]int{1}, []Value{Int(7)})
				if n != 1 {
					t.Errorf("scan probe found %d tuples, want 1", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sr.Len() != 100 || r.Len() != 400 {
		t.Fatalf("len snapshot=%d original=%d, want 100/400", sr.Len(), r.Len())
	}
	if snap.Meter().Retrievals() == 0 {
		t.Fatal("snapshot probes charged nothing")
	}
}

func TestFrozenRelationRejectsWrites(t *testing.T) {
	s := NewStore()
	s.Relation("p", 1).InsertValues(Sym("x"))
	snap := s.Snapshot()
	sr, _ := snap.Lookup("p")
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen relation did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Insert", func() { sr.InsertValues(Sym("y")) })
	mustPanic("EnsureIndex", func() { sr.EnsureIndex(0) })
}
