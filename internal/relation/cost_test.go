package relation

// The tuple-retrieval accounting is the foundation of every
// experimental claim in this repository, so the charging policy of
// each access path is pinned down exactly here.

import "testing"

func costFixture() (*Meter, *Relation, *Relation) {
	m := &Meter{}
	l := New("l", 2, m)
	l.Insert(pair("a", "b"))
	l.Insert(pair("a", "c"))
	l.Insert(pair("d", "e"))
	r := New("r", 2, m)
	r.Insert(pair("b", "x"))
	r.Insert(pair("b", "y"))
	r.Insert(pair("z", "w"))
	return m, l, r
}

func TestJoinCharges(t *testing.T) {
	m, l, r := costFixture()
	// Force the index build before metering so only the join charges.
	r.EnsureIndex(0)
	m.Reset()
	j := l.Join("j", []int{1}, r, []int{0})
	// 3 left scans + 2 matches (b->x, b->y); inserts are free.
	if got := m.Retrievals(); got != 5 {
		t.Fatalf("join charged %d, want 5", got)
	}
	if j.Len() != 2 {
		t.Fatalf("join size = %d", j.Len())
	}
}

func TestSemiJoinCharges(t *testing.T) {
	m, l, r := costFixture()
	r.EnsureIndex(0)
	m.Reset()
	s := l.SemiJoin("s", []int{1}, r, []int{0})
	// 3 left scans + 1 successful probe (the b probe stops at the
	// first match; c and e probes find nothing and charge nothing).
	if got := m.Retrievals(); got != 4 {
		t.Fatalf("semijoin charged %d, want 4", got)
	}
	if s.Len() != 1 {
		t.Fatalf("semijoin size = %d", s.Len())
	}
}

func TestDifferenceCharges(t *testing.T) {
	m := &Meter{}
	a := New("a", 1, m)
	b := New("b", 1, m)
	for _, s := range []string{"x", "y", "z"} {
		a.Insert(Tuple{Sym(s)})
	}
	b.Insert(Tuple{Sym("y")})
	m.Reset()
	a.Difference("d", b)
	// 3 scans of a + 3 membership probes against b.
	if got := m.Retrievals(); got != 6 {
		t.Fatalf("difference charged %d, want 6", got)
	}
}

func TestProjectAndSelectCharges(t *testing.T) {
	m, l, _ := costFixture()
	m.Reset()
	l.Project("p", 0)
	if got := m.Retrievals(); got != 3 {
		t.Fatalf("project charged %d, want 3 (one per scanned tuple)", got)
	}
	m.Reset()
	l.Select("s", func(Tuple) bool { return false })
	if got := m.Retrievals(); got != 3 {
		t.Fatalf("select charged %d, want 3", got)
	}
}

func TestInsertIsFree(t *testing.T) {
	m := &Meter{}
	r := New("e", 1, m)
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{Int(int64(i))})
	}
	if m.Retrievals() != 0 {
		t.Fatalf("inserts charged %d, want 0 (storage is not retrieval)", m.Retrievals())
	}
}

func TestEnsureIndexIsFree(t *testing.T) {
	m, l, _ := costFixture()
	m.Reset()
	l.EnsureIndex(1)
	if m.Retrievals() != 0 {
		t.Fatalf("index build charged %d, want 0 (amortized into load)", m.Retrievals())
	}
}
