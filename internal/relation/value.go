// Package relation implements the in-memory relational storage layer
// used by the deductive-database engine: typed constants, tuples,
// hash-indexed relations with set semantics, and the relational
// operators (selection, projection, join, semijoin, union, difference)
// needed for bottom-up Datalog evaluation.
//
// Every access path is metered: a Meter counts tuple retrievals, the
// cost unit under which Saccà and Zaniolo's "Magic Counting Methods"
// (SIGMOD 1987) states all of its complexity results ("the basic cost
// unit is the cost of retrieving a tuple in a database relation").
package relation

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Kind discriminates the constant types storable in a tuple field.
type Kind uint8

const (
	// KindSym is an uninterpreted symbolic constant (a Datalog atom
	// such as john or arc_17).
	KindSym Kind = iota
	// KindInt is a 64-bit signed integer constant, used for counting
	// indices and arithmetic builtins.
	KindInt
)

// Value is a single constant: a symbol or an integer. The zero Value
// is the empty symbol. Values are comparable and can key maps.
type Value struct {
	kind Kind
	num  int64
	sym  string
}

// Sym returns the symbolic constant named s.
func Sym(s string) Value { return Value{kind: KindSym, sym: s} }

// Int returns the integer constant n.
func Int(n int64) Value { return Value{kind: KindInt, num: n} }

// Kind reports which constant type v holds.
func (v Value) Kind() Kind { return v.kind }

// IsInt reports whether v is an integer constant.
func (v Value) IsInt() bool { return v.kind == KindInt }

// Num returns the integer held by v. It panics if v is not an integer;
// use IsInt to test first.
func (v Value) Num() int64 {
	if v.kind != KindInt {
		panic("relation: Num on non-integer value " + v.String())
	}
	return v.num
}

// Name returns the symbol held by v. It panics if v is not a symbol.
func (v Value) Name() string {
	if v.kind != KindSym {
		panic("relation: Name on non-symbol value " + v.String())
	}
	return v.sym
}

// String renders v the way the Datalog parser would read it back.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.num, 10)
	}
	return v.sym
}

// Less orders values: integers before symbols, then by value. It gives
// relations a deterministic iteration order for tests and reports.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind == KindInt
	}
	if v.kind == KindInt {
		return v.num < w.num
	}
	return v.sym < w.sym
}

// Tuple is an ordered list of constants. Tuples in a relation all
// share the relation's arity.
type Tuple []Value

// Key encodes t as a string usable as a map key. The encoding is
// injective: each field is length-prefixed.
func (t Tuple) Key() string {
	b := make([]byte, 0, 8*len(t))
	for _, v := range t {
		if v.kind == KindInt {
			b = append(b, 'i')
			b = strconv.AppendInt(b, v.num, 10)
		} else {
			b = append(b, 's')
			b = strconv.AppendInt(b, int64(len(v.sym)), 10)
			b = append(b, ':')
			b = append(b, v.sym...)
		}
		b = append(b, '|')
	}
	return string(b)
}

// Equal reports whether t and u have the same fields.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Less orders tuples field by field; shorter tuples sort first.
func (t Tuple) Less(u Tuple) bool {
	for i := 0; i < len(t) && i < len(u); i++ {
		if t[i] != u[i] {
			return t[i].Less(u[i])
		}
	}
	return len(t) < len(u)
}

// Clone returns a copy of t that does not share backing storage.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// String renders t as a parenthesized list: (a, 3, b).
func (t Tuple) String() string {
	b := make([]byte, 0, 16)
	b = append(b, '(')
	for i, v := range t {
		if i > 0 {
			b = append(b, ',', ' ')
		}
		b = append(b, v.String()...)
	}
	b = append(b, ')')
	return string(b)
}

// Meter accumulates tuple-retrieval counts. A single Meter is shared
// by all relations participating in one query evaluation, so the total
// reflects the whole method, mirroring the paper's cost model. The
// counter is atomic, so concurrent evaluations (e.g. parallel queries
// against a frozen store snapshot) may share one Meter safely.
type Meter struct {
	retrievals atomic.Int64
}

// Add charges n tuple retrievals. A nil Meter is a no-op, so unmetered
// relations cost nothing to use.
func (m *Meter) Add(n int64) {
	if m != nil {
		m.retrievals.Add(n)
	}
}

// Retrievals returns the tuples retrieved so far. A nil Meter reads 0.
func (m *Meter) Retrievals() int64 {
	if m == nil {
		return 0
	}
	return m.retrievals.Load()
}

// Reset zeroes the counter.
func (m *Meter) Reset() {
	if m != nil {
		m.retrievals.Store(0)
	}
}

// String formats the meter for reports.
func (m *Meter) String() string {
	return fmt.Sprintf("%d tuple retrievals", m.Retrievals())
}
