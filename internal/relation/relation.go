package relation

import (
	"fmt"
	"sort"
	"strconv"
)

// Relation is a set of same-arity tuples with optional hash indexes on
// column subsets. Insertion is set-semantics: duplicates are ignored.
// Scans and index probes charge the relation's Meter one retrieval per
// tuple produced.
type Relation struct {
	name    string
	arity   int
	meter   *Meter
	tuples  []Tuple
	present map[string]struct{}
	indexes map[string]*index // keyed by column-spec string
	frozen  bool              // read-only: no inserts, no lazy index builds
}

type index struct {
	cols    []int
	buckets map[string][]int // key over cols -> tuple positions
}

// New creates an empty relation with the given name and arity, charging
// retrievals to meter (which may be nil for an unmetered relation).
func New(name string, arity int, meter *Meter) *Relation {
	if arity < 0 {
		panic("relation: negative arity for " + name)
	}
	return &Relation{
		name:    name,
		arity:   arity,
		meter:   meter,
		present: make(map[string]struct{}),
		indexes: make(map[string]*index),
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Meter returns the meter charged by this relation's access paths.
func (r *Relation) Meter() *Meter { return r.meter }

// SetMeter redirects this relation's cost accounting to m.
func (r *Relation) SetMeter(m *Meter) { r.meter = m }

// Freeze marks the relation read-only. A frozen relation is safe for
// concurrent readers: Insert panics, and Lookup never builds an index
// lazily — a probe with no prebuilt index falls back to a filtered
// scan instead of mutating the index map. Build any hot-path indexes
// with EnsureIndex before freezing. Freezing is irreversible.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen }

// Insert adds t to the relation if not already present and reports
// whether it was new. The tuple is copied, so callers may reuse t.
func (r *Relation) Insert(t Tuple) bool {
	if r.frozen {
		panic("relation: Insert into frozen relation " + r.name)
	}
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: %s has arity %d, inserting %d-tuple %v", r.name, r.arity, len(t), t))
	}
	k := t.Key()
	if _, ok := r.present[k]; ok {
		return false
	}
	r.present[k] = struct{}{}
	c := t.Clone()
	pos := len(r.tuples)
	r.tuples = append(r.tuples, c)
	for _, ix := range r.indexes {
		ik := keyAt(c, ix.cols)
		ix.buckets[ik] = append(ix.buckets[ik], pos)
	}
	return true
}

// InsertValues is Insert on a tuple built from vs.
func (r *Relation) InsertValues(vs ...Value) bool { return r.Insert(Tuple(vs)) }

// Contains reports whether t is in the relation. It charges one
// retrieval (the probe fetches the matching tuple, if any).
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.present[t.Key()]
	r.meter.Add(1)
	return ok
}

// Scan calls fn for every tuple, charging one retrieval each. fn must
// not modify the tuple. Returning false from fn stops the scan early.
func (r *Relation) Scan(fn func(Tuple) bool) {
	for _, t := range r.tuples {
		r.meter.Add(1)
		if !fn(t) {
			return
		}
	}
}

// Tuples returns the stored tuples in insertion order, uncharged. It is
// intended for result extraction and tests, not for evaluation joins.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// SortedTuples returns a sorted copy of the tuples, for deterministic
// output.
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// EnsureIndex builds (once) a hash index on the given columns.
func (r *Relation) EnsureIndex(cols ...int) {
	spec := colSpec(cols)
	if _, ok := r.indexes[spec]; ok {
		return
	}
	if r.frozen {
		panic("relation: EnsureIndex on frozen relation " + r.name)
	}
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("relation: index column %d out of range for %s/%d", c, r.name, r.arity))
		}
	}
	ix := &index{cols: append([]int(nil), cols...), buckets: make(map[string][]int)}
	for pos, t := range r.tuples {
		k := keyAt(t, ix.cols)
		ix.buckets[k] = append(ix.buckets[k], pos)
	}
	r.indexes[spec] = ix
}

// Lookup calls fn for every tuple whose cols match vals, charging one
// retrieval per tuple produced. It uses a hash index, building one on
// first use. Returning false from fn stops the lookup early.
func (r *Relation) Lookup(cols []int, vals []Value, fn func(Tuple) bool) {
	if len(cols) != len(vals) {
		panic("relation: Lookup cols/vals length mismatch on " + r.name)
	}
	if len(cols) == 0 {
		r.Scan(fn)
		return
	}
	spec := colSpec(cols)
	ix, ok := r.indexes[spec]
	if !ok {
		if r.frozen {
			// No lazy build on a frozen relation: a filtered scan keeps
			// concurrent readers mutation-free at the cost of one
			// retrieval per matching tuple, as an index probe charges.
			r.scanMatch(cols, vals, fn)
			return
		}
		r.EnsureIndex(cols...)
		ix = r.indexes[spec]
	}
	k := keyAt(Tuple(vals), indexIdentity(len(vals)))
	for _, pos := range ix.buckets[k] {
		r.meter.Add(1)
		if !fn(r.tuples[pos]) {
			return
		}
	}
}

// scanMatch is Lookup's index-free fallback: a full scan filtered on
// cols = vals, charging one retrieval per matching tuple.
func (r *Relation) scanMatch(cols []int, vals []Value, fn func(Tuple) bool) {
	for _, t := range r.tuples {
		match := true
		for i, c := range cols {
			if t[c] != vals[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r.meter.Add(1)
		if !fn(t) {
			return
		}
	}
}

// snapshot returns a frozen copy charging to meter. It shares the
// (append-only) tuple storage with r but owns its membership and
// index maps, so later inserts into r never touch the snapshot.
func (r *Relation) snapshot(meter *Meter) *Relation {
	c := &Relation{
		name:    r.name,
		arity:   r.arity,
		meter:   meter,
		tuples:  r.tuples[:len(r.tuples):len(r.tuples)],
		present: make(map[string]struct{}, len(r.present)),
		indexes: make(map[string]*index, len(r.indexes)),
		frozen:  true,
	}
	for k := range r.present {
		c.present[k] = struct{}{}
	}
	for spec, ix := range r.indexes {
		cix := &index{cols: append([]int(nil), ix.cols...), buckets: make(map[string][]int, len(ix.buckets))}
		for k, pos := range ix.buckets {
			cix.buckets[k] = pos[:len(pos):len(pos)]
		}
		c.indexes[spec] = cix
	}
	return c
}

// MatchCount returns how many tuples match vals on cols, charging one
// retrieval per matching tuple (they are produced to be counted).
func (r *Relation) MatchCount(cols []int, vals []Value) int {
	n := 0
	r.Lookup(cols, vals, func(Tuple) bool { n++; return true })
	return n
}

// Clone returns a deep copy sharing the meter but not storage or
// indexes.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.arity, r.meter)
	for _, t := range r.tuples {
		c.Insert(t)
	}
	return c
}

// InsertAll inserts every tuple of s into r and returns how many were
// new. The relations must have equal arity.
func (r *Relation) InsertAll(s *Relation) int {
	if s.arity != r.arity {
		panic(fmt.Sprintf("relation: InsertAll arity mismatch %s/%d vs %s/%d", r.name, r.arity, s.name, s.arity))
	}
	added := 0
	for _, t := range s.tuples {
		if r.Insert(t) {
			added++
		}
	}
	return added
}

// Difference returns the tuples of r not present in s, as a new
// relation named name. Each candidate charges one retrieval from r and
// one membership probe against s.
func (r *Relation) Difference(name string, s *Relation) *Relation {
	out := New(name, r.arity, r.meter)
	r.Scan(func(t Tuple) bool {
		if !s.Contains(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Project returns a new relation named name holding the given columns
// of every tuple, deduplicated. Each source tuple charges one
// retrieval.
func (r *Relation) Project(name string, cols ...int) *Relation {
	out := New(name, len(cols), r.meter)
	r.Scan(func(t Tuple) bool {
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Insert(p)
		return true
	})
	return out
}

// Select returns the tuples satisfying pred, as a new relation.
func (r *Relation) Select(name string, pred func(Tuple) bool) *Relation {
	out := New(name, r.arity, r.meter)
	r.Scan(func(t Tuple) bool {
		if pred(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Join computes the natural join of r and s on r.cols[i] = s.cols[i],
// emitting r's tuple concatenated with s's tuple, as a new relation.
// Cost: one retrieval per r tuple plus one per matching s tuple.
func (r *Relation) Join(name string, rCols []int, s *Relation, sCols []int) *Relation {
	if len(rCols) != len(sCols) {
		panic("relation: Join column lists differ in length")
	}
	out := New(name, r.arity+s.arity, r.meter)
	vals := make([]Value, len(rCols))
	r.Scan(func(t Tuple) bool {
		for i, c := range rCols {
			vals[i] = t[c]
		}
		s.Lookup(sCols, vals, func(u Tuple) bool {
			j := make(Tuple, 0, len(t)+len(u))
			j = append(j, t...)
			j = append(j, u...)
			out.Insert(j)
			return true
		})
		return true
	})
	return out
}

// SemiJoin returns the tuples of r that have at least one match in s
// on the given columns. Cost: one retrieval per r tuple plus one per
// probe that finds a match.
func (r *Relation) SemiJoin(name string, rCols []int, s *Relation, sCols []int) *Relation {
	if len(rCols) != len(sCols) {
		panic("relation: SemiJoin column lists differ in length")
	}
	out := New(name, r.arity, r.meter)
	vals := make([]Value, len(rCols))
	r.Scan(func(t Tuple) bool {
		for i, c := range rCols {
			vals[i] = t[c]
		}
		matched := false
		s.Lookup(sCols, vals, func(Tuple) bool {
			matched = true
			return false
		})
		if matched {
			out.Insert(t)
		}
		return true
	})
	return out
}

// String summarizes the relation for debugging: name/arity and size.
func (r *Relation) String() string {
	return fmt.Sprintf("%s/%d[%d]", r.name, r.arity, len(r.tuples))
}

func colSpec(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
	}
	return string(b)
}

func keyAt(t Tuple, cols []int) string {
	sub := make(Tuple, len(cols))
	for i, c := range cols {
		sub[i] = t[c]
	}
	return sub.Key()
}

func indexIdentity(n int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return id
}
