package relation

import (
	"fmt"
	"sort"
	"strconv"
)

// Relation is a set of same-arity tuples with optional hash indexes on
// column subsets. Insertion is set-semantics: duplicates are ignored.
// Scans and index probes charge the relation's Meter one retrieval per
// tuple produced.
//
// Internally every stored constant is interned into a dense int32 id
// (see symtab), and all hash structures — the membership set, the
// index buckets — are keyed by fixed-width integer encodings of those
// ids: a packed uint64 for width ≤ 2, a compact byte string for wider
// rows. The hot paths (Insert dedup, Contains, index probes) therefore
// allocate nothing and never re-encode a value as a string.
type Relation struct {
	name   string
	arity  int
	meter  *Meter
	syms   *symtab
	tuples []Tuple
	ids    []int32 // interned image of tuples: arity ids per tuple

	present  *intSet             // membership, arity <= 2
	presentW map[string]struct{} // membership, arity >= 3

	indexes  map[uint64]*index // keyed by packed col spec (<= 8 cols)
	indexesW map[string]*index // rare wide specs (> 8 cols)
	ixList   []*index          // all indexes, flat for Insert's update loop

	arena  []Value // current chunk backing stored tuples
	frozen bool    // read-only: no inserts, no lazy index builds
}

type index struct {
	cols     []int
	buckets  map[uint64][]int32 // key over cols -> tuple positions, <= 2 cols
	bucketsW map[string][]int32 // wider keys
}

// wideBufCap sizes the stack scratch used to build wide keys: rows up
// to 16 columns encode without a heap allocation.
const wideBufCap = 64

// New creates an empty relation with the given name and arity, charging
// retrievals to meter (which may be nil for an unmetered relation). The
// relation owns a private symbol table; relations created through a
// Store share the store's table instead.
func New(name string, arity int, meter *Meter) *Relation {
	return newRelation(name, arity, meter, newSymtab())
}

func newRelation(name string, arity int, meter *Meter, syms *symtab) *Relation {
	if arity < 0 {
		panic("relation: negative arity for " + name)
	}
	r := &Relation{
		name:    name,
		arity:   arity,
		meter:   meter,
		syms:    syms,
		indexes: make(map[uint64]*index),
	}
	if arity <= 2 {
		r.present = newIntSet()
	} else {
		r.presentW = make(map[string]struct{})
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Meter returns the meter charged by this relation's access paths.
func (r *Relation) Meter() *Meter { return r.meter }

// SetMeter redirects this relation's cost accounting to m.
func (r *Relation) SetMeter(m *Meter) { r.meter = m }

// Freeze marks the relation read-only. A frozen relation is safe for
// concurrent readers: Insert panics, and Lookup never builds an index
// lazily — a probe with no prebuilt index falls back to a filtered
// scan instead of mutating the index map. Build any hot-path indexes
// with EnsureIndex before freezing. Freezing is irreversible.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen }

// narrowKey packs up to two ids into a uint64. Each membership or
// bucket map belongs to exactly one fixed width, so 0-, 1-, and 2-id
// encodings can never meet in the same map and need no tagging.
func narrowKey(ids []int32) uint64 {
	switch len(ids) {
	case 0:
		return 0
	case 1:
		return uint64(uint32(ids[0]))
	default:
		return uint64(uint32(ids[0]))<<32 | uint64(uint32(ids[1]))
	}
}

// appendWide encodes ids as fixed 4-byte words onto b. The encoding is
// injective per width, which is all a single map requires.
func appendWide(b []byte, ids []int32) []byte {
	for _, id := range ids {
		u := uint32(id)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return b
}

// Insert adds t to the relation if not already present and reports
// whether it was new. The tuple is copied, so callers may reuse t.
func (r *Relation) Insert(t Tuple) bool {
	if r.frozen {
		panic("relation: Insert into frozen relation " + r.name)
	}
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: %s has arity %d, inserting %d-tuple %v", r.name, r.arity, len(t), t))
	}
	// Intern into the tail of r.ids, rolled back if t is a duplicate.
	// Appending before the dedup probe lets the probe key slice the
	// flat storage instead of a temporary.
	base := len(r.ids)
	for _, v := range t {
		r.ids = append(r.ids, r.syms.intern(v))
	}
	ids := r.ids[base:]
	if r.present != nil {
		if !r.present.add(narrowKey(ids)) {
			r.ids = r.ids[:base]
			return false
		}
	} else {
		var buf [wideBufCap]byte
		b := appendWide(buf[:0], ids)
		if _, dup := r.presentW[string(b)]; dup {
			r.ids = r.ids[:base]
			return false
		}
		r.presentW[string(b)] = struct{}{}
	}
	pos := int32(len(r.tuples))
	r.tuples = append(r.tuples, r.cloneStored(t))
	for _, ix := range r.ixList {
		ix.insert(ids, pos)
	}
	return true
}

// arenaChunkMax caps the storage chunk size. Chunks start small (so a
// two-tuple delta relation does not pin kilobytes) and double per
// chunk, keeping both the waste and the allocation count within a
// constant factor of the stored data.
const arenaChunkMax = 1024

// cloneStored copies t into the relation's chunked arena and returns a
// capacity-capped slice of the chunk, so later appends can never
// scribble past a stored tuple. Full chunks are simply abandoned to
// the tuples that reference them.
func (r *Relation) cloneStored(t Tuple) Tuple {
	if len(r.arena)+len(t) > cap(r.arena) {
		n := 2 * cap(r.arena)
		if n > arenaChunkMax {
			n = arenaChunkMax
		}
		if n < 16 {
			n = 16
		}
		if n < len(t) {
			n = len(t)
		}
		r.arena = make([]Value, 0, n)
	}
	base := len(r.arena)
	r.arena = append(r.arena, t...)
	return Tuple(r.arena[base : base+len(t) : base+len(t)])
}

// insert files the row at pos under its bucket key.
func (ix *index) insert(ids []int32, pos int32) {
	if ix.buckets != nil {
		var kbuf [2]int32
		k := narrowKey(subIDs(kbuf[:0], ids, ix.cols))
		ix.buckets[k] = append(ix.buckets[k], pos)
		return
	}
	var buf [wideBufCap]byte
	var kbuf [16]int32
	k := string(appendWide(buf[:0], subIDs(kbuf[:0], ids, ix.cols)))
	ix.bucketsW[k] = append(ix.bucketsW[k], pos)
}

// subIDs gathers ids at the given columns onto dst.
func subIDs(dst []int32, ids []int32, cols []int) []int32 {
	for _, c := range cols {
		dst = append(dst, ids[c])
	}
	return dst
}

// InsertValues is Insert on a tuple built from vs.
func (r *Relation) InsertValues(vs ...Value) bool { return r.Insert(Tuple(vs)) }

// Contains reports whether t is in the relation. It charges one
// retrieval (the probe fetches the matching tuple, if any).
func (r *Relation) Contains(t Tuple) bool {
	r.meter.Add(1)
	var buf [16]int32
	ids, ok := r.resolve(buf[:0], t)
	if !ok {
		return false
	}
	if r.present != nil {
		return r.present.has(narrowKey(ids))
	}
	var bbuf [wideBufCap]byte
	_, ok = r.presentW[string(appendWide(bbuf[:0], ids))]
	return ok
}

// resolve maps vals to their interned ids without interning: a miss
// proves the value is stored nowhere in this relation's symbol table,
// so the caller can answer "no match" immediately.
func (r *Relation) resolve(dst []int32, vals []Value) ([]int32, bool) {
	for _, v := range vals {
		id, ok := r.syms.lookup(v)
		if !ok {
			return nil, false
		}
		dst = append(dst, id)
	}
	return dst, true
}

// Scan calls fn for every tuple, charging one retrieval each. fn must
// not modify the tuple. Returning false from fn stops the scan early.
func (r *Relation) Scan(fn func(Tuple) bool) {
	for _, t := range r.tuples {
		r.meter.Add(1)
		if !fn(t) {
			return
		}
	}
}

// Tuples returns a copy of the stored tuple list in insertion order,
// uncharged. The returned slice is the caller's; the tuples themselves
// are shared with the relation and must not be mutated. It is intended
// for result extraction and tests, not for evaluation joins.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	return out
}

// SortedTuples returns a sorted copy of the tuples, for deterministic
// output.
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// specKey packs a column list into a uint64 map key, one byte per
// column. Specs longer than 8 columns (or with column numbers ≥ 255)
// fall back to the string form, kept in a separate map so the two
// encodings never collide.
func specKey(cols []int) (uint64, bool) {
	if len(cols) > 8 {
		return 0, false
	}
	var k uint64
	for _, c := range cols {
		if c >= 255 {
			return 0, false
		}
		k = k<<8 | uint64(c+1)
	}
	return k, true
}

// findIndex returns the index on exactly this column list, if built.
func (r *Relation) findIndex(cols []int) *index {
	if k, ok := specKey(cols); ok {
		return r.indexes[k]
	}
	if r.indexesW == nil {
		return nil
	}
	return r.indexesW[colSpec(cols)]
}

// EnsureIndex builds (once) a hash index on the given columns.
func (r *Relation) EnsureIndex(cols ...int) {
	if r.findIndex(cols) != nil {
		return
	}
	if r.frozen {
		panic("relation: EnsureIndex on frozen relation " + r.name)
	}
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("relation: index column %d out of range for %s/%d", c, r.name, r.arity))
		}
	}
	ix := &index{cols: append([]int(nil), cols...)}
	if len(cols) <= 2 {
		ix.buckets = make(map[uint64][]int32)
	} else {
		ix.bucketsW = make(map[string][]int32)
	}
	for pos := range r.tuples {
		ix.insert(r.row(pos), int32(pos))
	}
	r.ixList = append(r.ixList, ix)
	if k, ok := specKey(cols); ok {
		r.indexes[k] = ix
		return
	}
	if r.indexesW == nil {
		r.indexesW = make(map[string]*index)
	}
	r.indexesW[colSpec(cols)] = ix
}

// row returns the interned id row of tuple pos.
func (r *Relation) row(pos int) []int32 {
	return r.ids[pos*r.arity : (pos+1)*r.arity]
}

// Lookup calls fn for every tuple whose cols match vals, charging one
// retrieval per tuple produced. It uses a hash index, building one on
// first use. Returning false from fn stops the lookup early.
func (r *Relation) Lookup(cols []int, vals []Value, fn func(Tuple) bool) {
	r.lookup(cols, vals, fn, false)
}

// LookupReadOnly is Lookup without the lazy index build: a probe with
// no prebuilt index falls back to a filtered scan, which charges
// exactly what the index probe would (one retrieval per matching
// tuple). It exists for read-only phases — e.g. the engine's parallel
// rule evaluation — where concurrent readers probe a relation that is
// mutable in principle but quiescent by protocol.
func (r *Relation) LookupReadOnly(cols []int, vals []Value, fn func(Tuple) bool) {
	r.lookup(cols, vals, fn, true)
}

func (r *Relation) lookup(cols []int, vals []Value, fn func(Tuple) bool, readOnly bool) {
	if len(cols) != len(vals) {
		panic("relation: Lookup cols/vals length mismatch on " + r.name)
	}
	if len(cols) == 0 {
		r.Scan(fn)
		return
	}
	ix := r.findIndex(cols)
	if ix == nil {
		if r.frozen || readOnly {
			// No lazy build on a frozen relation or during a read-only
			// phase: a filtered scan keeps concurrent readers
			// mutation-free at the cost of one retrieval per matching
			// tuple, exactly as an index probe charges.
			r.scanMatch(cols, vals, fn)
			return
		}
		r.EnsureIndex(cols...)
		ix = r.findIndex(cols)
	}
	var buf [16]int32
	pids, ok := r.resolve(buf[:0], vals)
	if !ok {
		return // a probe value stored nowhere matches nothing
	}
	var positions []int32
	if ix.buckets != nil {
		positions = ix.buckets[narrowKey(pids)]
	} else {
		var bbuf [wideBufCap]byte
		positions = ix.bucketsW[string(appendWide(bbuf[:0], pids))]
	}
	for _, pos := range positions {
		r.meter.Add(1)
		if !fn(r.tuples[pos]) {
			return
		}
	}
}

// scanMatch is Lookup's index-free fallback: a full scan filtered on
// cols = vals, charging one retrieval per matching tuple. The filter
// compares interned ids, so an unresolvable probe value matches
// nothing (uncharged, like an empty bucket) and resolvable ones cost
// an integer compare per row instead of a Value compare.
func (r *Relation) scanMatch(cols []int, vals []Value, fn func(Tuple) bool) {
	var buf [16]int32
	pids, ok := r.resolve(buf[:0], vals)
	if !ok {
		return
	}
	arity := r.arity
	for pos := range r.tuples {
		row := r.ids[pos*arity : pos*arity+arity]
		match := true
		for i, c := range cols {
			if row[c] != pids[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r.meter.Add(1)
		if !fn(r.tuples[pos]) {
			return
		}
	}
}

// snapshot returns a frozen copy charging to meter, resolving symbols
// through syms (the snapshot owner's cloned table). It shares the
// (append-only) tuple and id storage with r but owns its membership
// and index maps, so later inserts into r never touch the snapshot.
func (r *Relation) snapshot(meter *Meter, syms *symtab) *Relation {
	c := &Relation{
		name:    r.name,
		arity:   r.arity,
		meter:   meter,
		syms:    syms,
		tuples:  r.tuples[:len(r.tuples):len(r.tuples)],
		ids:     r.ids[:len(r.ids):len(r.ids)],
		indexes: make(map[uint64]*index, len(r.indexes)),
		frozen:  true,
	}
	if r.present != nil {
		c.present = r.present.clone()
	} else {
		c.presentW = make(map[string]struct{}, len(r.presentW))
		for k := range r.presentW {
			c.presentW[k] = struct{}{}
		}
	}
	for spec, ix := range r.indexes {
		cx := ix.clone()
		c.indexes[spec] = cx
		c.ixList = append(c.ixList, cx)
	}
	if len(r.indexesW) > 0 {
		c.indexesW = make(map[string]*index, len(r.indexesW))
		for spec, ix := range r.indexesW {
			cx := ix.clone()
			c.indexesW[spec] = cx
			c.ixList = append(c.ixList, cx)
		}
	}
	return c
}

// clone copies the index with capped bucket slices, so appends in the
// original allocate fresh backing instead of scribbling on the copy.
func (ix *index) clone() *index {
	c := &index{cols: append([]int(nil), ix.cols...)}
	if ix.buckets != nil {
		c.buckets = make(map[uint64][]int32, len(ix.buckets))
		for k, pos := range ix.buckets {
			c.buckets[k] = pos[:len(pos):len(pos)]
		}
	} else {
		c.bucketsW = make(map[string][]int32, len(ix.bucketsW))
		for k, pos := range ix.bucketsW {
			c.bucketsW[k] = pos[:len(pos):len(pos)]
		}
	}
	return c
}

// MatchCount returns how many tuples match vals on cols, charging one
// retrieval per matching tuple (they are produced to be counted).
func (r *Relation) MatchCount(cols []int, vals []Value) int {
	n := 0
	r.Lookup(cols, vals, func(Tuple) bool { n++; return true })
	return n
}

// Clone returns a deep copy sharing the meter but not storage or
// indexes.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.arity, r.meter)
	for _, t := range r.tuples {
		c.Insert(t)
	}
	return c
}

// InsertAll inserts every tuple of s into r and returns how many were
// new. The relations must have equal arity.
func (r *Relation) InsertAll(s *Relation) int {
	if s.arity != r.arity {
		panic(fmt.Sprintf("relation: InsertAll arity mismatch %s/%d vs %s/%d", r.name, r.arity, s.name, s.arity))
	}
	added := 0
	for _, t := range s.tuples {
		if r.Insert(t) {
			added++
		}
	}
	return added
}

// Difference returns the tuples of r not present in s, as a new
// relation named name. Each candidate charges one retrieval from r and
// one membership probe against s.
func (r *Relation) Difference(name string, s *Relation) *Relation {
	out := New(name, r.arity, r.meter)
	r.Scan(func(t Tuple) bool {
		if !s.Contains(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Project returns a new relation named name holding the given columns
// of every tuple, deduplicated. Each source tuple charges one
// retrieval.
func (r *Relation) Project(name string, cols ...int) *Relation {
	out := New(name, len(cols), r.meter)
	r.Scan(func(t Tuple) bool {
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Insert(p)
		return true
	})
	return out
}

// Select returns the tuples satisfying pred, as a new relation.
func (r *Relation) Select(name string, pred func(Tuple) bool) *Relation {
	out := New(name, r.arity, r.meter)
	r.Scan(func(t Tuple) bool {
		if pred(t) {
			out.Insert(t)
		}
		return true
	})
	return out
}

// Join computes the natural join of r and s on r.cols[i] = s.cols[i],
// emitting r's tuple concatenated with s's tuple, as a new relation.
// Cost: one retrieval per r tuple plus one per matching s tuple.
func (r *Relation) Join(name string, rCols []int, s *Relation, sCols []int) *Relation {
	if len(rCols) != len(sCols) {
		panic("relation: Join column lists differ in length")
	}
	out := New(name, r.arity+s.arity, r.meter)
	vals := make([]Value, len(rCols))
	r.Scan(func(t Tuple) bool {
		for i, c := range rCols {
			vals[i] = t[c]
		}
		s.Lookup(sCols, vals, func(u Tuple) bool {
			j := make(Tuple, 0, len(t)+len(u))
			j = append(j, t...)
			j = append(j, u...)
			out.Insert(j)
			return true
		})
		return true
	})
	return out
}

// SemiJoin returns the tuples of r that have at least one match in s
// on the given columns. Cost: one retrieval per r tuple plus one per
// probe that finds a match.
func (r *Relation) SemiJoin(name string, rCols []int, s *Relation, sCols []int) *Relation {
	if len(rCols) != len(sCols) {
		panic("relation: SemiJoin column lists differ in length")
	}
	out := New(name, r.arity, r.meter)
	vals := make([]Value, len(rCols))
	r.Scan(func(t Tuple) bool {
		for i, c := range rCols {
			vals[i] = t[c]
		}
		matched := false
		s.Lookup(sCols, vals, func(Tuple) bool {
			matched = true
			return false
		})
		if matched {
			out.Insert(t)
		}
		return true
	})
	return out
}

// String summarizes the relation for debugging: name/arity and size.
func (r *Relation) String() string {
	return fmt.Sprintf("%s/%d[%d]", r.name, r.arity, len(r.tuples))
}

// colSpec renders a column list as a string key, used only for the
// rare wide specs that do not fit the packed uint64 form.
func colSpec(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
	}
	return string(b)
}
