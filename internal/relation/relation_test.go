package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func pair(a, b string) Tuple { return Tuple{Sym(a), Sym(b)} }

func TestInsertSetSemantics(t *testing.T) {
	r := New("e", 2, nil)
	if !r.Insert(pair("a", "b")) {
		t.Fatal("first insert should be new")
	}
	if r.Insert(pair("a", "b")) {
		t.Fatal("duplicate insert should report false")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.InsertValues(Sym("a"), Sym("c")) {
		t.Fatal("distinct tuple rejected")
	}
}

func TestInsertArityPanic(t *testing.T) {
	r := New("e", 2, nil)
	mustPanic(t, "wrong arity insert", func() { r.Insert(Tuple{Sym("a")}) })
	mustPanic(t, "negative arity", func() { New("x", -1, nil) })
}

func TestInsertCopiesTuple(t *testing.T) {
	r := New("e", 1, nil)
	tup := Tuple{Sym("a")}
	r.Insert(tup)
	tup[0] = Sym("b")
	if got := r.Tuples()[0][0].Name(); got != "a" {
		t.Fatalf("stored tuple mutated through caller slice: %q", got)
	}
}

func TestScanChargesMeterAndStops(t *testing.T) {
	m := &Meter{}
	r := New("e", 2, m)
	r.Insert(pair("a", "b"))
	r.Insert(pair("a", "c"))
	r.Insert(pair("b", "c"))
	seen := 0
	r.Scan(func(Tuple) bool { seen++; return true })
	if seen != 3 || m.Retrievals() != 3 {
		t.Fatalf("seen=%d meter=%d, want 3/3", seen, m.Retrievals())
	}
	m.Reset()
	r.Scan(func(Tuple) bool { return false })
	if m.Retrievals() != 1 {
		t.Fatalf("early stop should charge 1, got %d", m.Retrievals())
	}
}

func TestLookupUsesIndexAndCharges(t *testing.T) {
	m := &Meter{}
	r := New("e", 2, m)
	r.Insert(pair("a", "b"))
	r.Insert(pair("a", "c"))
	r.Insert(pair("b", "c"))
	m.Reset()
	var got []string
	r.Lookup([]int{0}, []Value{Sym("a")}, func(t Tuple) bool {
		got = append(got, t[1].Name())
		return true
	})
	sort.Strings(got)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if m.Retrievals() != 2 {
		t.Fatalf("lookup charged %d, want 2 (only matches)", m.Retrievals())
	}
}

func TestLookupSeesInsertsAfterIndexBuilt(t *testing.T) {
	r := New("e", 2, nil)
	r.Insert(pair("a", "b"))
	r.EnsureIndex(1)
	r.Insert(pair("c", "b"))
	n := 0
	r.Lookup([]int{1}, []Value{Sym("b")}, func(Tuple) bool { n++; return true })
	if n != 2 {
		t.Fatalf("index missed post-build insert: got %d matches, want 2", n)
	}
}

func TestLookupEmptyColsIsScan(t *testing.T) {
	r := New("e", 2, nil)
	r.Insert(pair("a", "b"))
	n := 0
	r.Lookup(nil, nil, func(Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("empty-cols lookup saw %d tuples", n)
	}
}

func TestLookupMismatchedArgsPanic(t *testing.T) {
	r := New("e", 2, nil)
	mustPanic(t, "cols/vals mismatch", func() {
		r.Lookup([]int{0}, nil, func(Tuple) bool { return true })
	})
	mustPanic(t, "bad index column", func() { r.EnsureIndex(5) })
}

func TestContains(t *testing.T) {
	m := &Meter{}
	r := New("e", 2, m)
	r.Insert(pair("a", "b"))
	if !r.Contains(pair("a", "b")) || r.Contains(pair("b", "a")) {
		t.Fatal("Contains wrong")
	}
	if m.Retrievals() != 2 {
		t.Fatalf("Contains charged %d, want 2", m.Retrievals())
	}
}

func TestMatchCount(t *testing.T) {
	r := New("e", 2, nil)
	r.Insert(pair("a", "b"))
	r.Insert(pair("a", "c"))
	if n := r.MatchCount([]int{0}, []Value{Sym("a")}); n != 2 {
		t.Fatalf("MatchCount = %d, want 2", n)
	}
	if n := r.MatchCount([]int{0}, []Value{Sym("z")}); n != 0 {
		t.Fatalf("MatchCount(miss) = %d, want 0", n)
	}
}

func TestProject(t *testing.T) {
	r := New("e", 2, nil)
	r.Insert(pair("a", "b"))
	r.Insert(pair("a", "c"))
	p := r.Project("p", 0)
	if p.Len() != 1 || p.Arity() != 1 {
		t.Fatalf("Project dedupe failed: %v", p)
	}
	swapped := r.Project("s", 1, 0)
	if !swapped.Tuples()[0].Equal(pair("b", "a")) {
		t.Fatal("column reorder failed")
	}
}

func TestSelect(t *testing.T) {
	r := New("e", 2, nil)
	r.Insert(pair("a", "b"))
	r.Insert(pair("b", "b"))
	s := r.Select("loops", func(t Tuple) bool { return t[0] == t[1] })
	if s.Len() != 1 || !s.Tuples()[0].Equal(pair("b", "b")) {
		t.Fatalf("Select = %v", s.Tuples())
	}
}

func TestJoin(t *testing.T) {
	l := New("l", 2, nil)
	l.Insert(pair("a", "b"))
	l.Insert(pair("a", "c"))
	e := New("e", 2, nil)
	e.Insert(pair("b", "x"))
	e.Insert(pair("b", "y"))
	j := l.Join("j", []int{1}, e, []int{0})
	if j.Arity() != 4 || j.Len() != 2 {
		t.Fatalf("Join = %v", j.Tuples())
	}
	for _, tup := range j.Tuples() {
		if tup[1] != tup[2] {
			t.Fatalf("join columns disagree: %v", tup)
		}
	}
	mustPanic(t, "join col mismatch", func() { l.Join("x", []int{0, 1}, e, []int{0}) })
}

func TestSemiJoin(t *testing.T) {
	l := New("l", 2, nil)
	l.Insert(pair("a", "b"))
	l.Insert(pair("a", "z"))
	e := New("e", 1, nil)
	e.Insert(Tuple{Sym("b")})
	s := l.SemiJoin("s", []int{1}, e, []int{0})
	if s.Len() != 1 || !s.Tuples()[0].Equal(pair("a", "b")) {
		t.Fatalf("SemiJoin = %v", s.Tuples())
	}
}

func TestDifference(t *testing.T) {
	a := New("a", 1, nil)
	b := New("b", 1, nil)
	for _, s := range []string{"x", "y", "z"} {
		a.Insert(Tuple{Sym(s)})
	}
	b.Insert(Tuple{Sym("y")})
	d := a.Difference("d", b)
	if d.Len() != 2 {
		t.Fatalf("Difference = %v", d.Tuples())
	}
	if d.Contains(Tuple{Sym("y")}) {
		t.Fatal("difference kept removed tuple")
	}
}

func TestInsertAllAndClone(t *testing.T) {
	a := New("a", 1, nil)
	a.Insert(Tuple{Sym("x")})
	b := a.Clone()
	b.Insert(Tuple{Sym("y")})
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatal("Clone shares storage")
	}
	c := New("c", 1, nil)
	c.Insert(Tuple{Sym("x")})
	if added := c.InsertAll(b); added != 1 {
		t.Fatalf("InsertAll added %d, want 1", added)
	}
	mustPanic(t, "InsertAll arity", func() { c.InsertAll(New("d", 2, nil)) })
}

func TestSortedTuplesDeterministic(t *testing.T) {
	r := New("e", 1, nil)
	for _, s := range []string{"c", "a", "b"} {
		r.Insert(Tuple{Sym(s)})
	}
	got := r.SortedTuples()
	want := []string{"a", "b", "c"}
	for i, tup := range got {
		if tup[0].Name() != want[i] {
			t.Fatalf("SortedTuples[%d] = %v", i, tup)
		}
	}
}

// Property: Lookup returns exactly the tuples a full filtered scan
// would, on random binary relations over a small domain.
func TestLookupMatchesFilteredScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("e", 2, nil)
		dom := []string{"a", "b", "c", "d"}
		for i := 0; i < 30; i++ {
			r.Insert(pair(dom[rng.Intn(4)], dom[rng.Intn(4)]))
		}
		key := Sym(dom[rng.Intn(4)])
		col := rng.Intn(2)
		want := map[string]bool{}
		r.Scan(func(t Tuple) bool {
			if t[col] == key {
				want[t.Key()] = true
			}
			return true
		})
		got := map[string]bool{}
		r.Lookup([]int{col}, []Value{key}, func(t Tuple) bool {
			got[t.Key()] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoreRelationCreationAndArityCheck(t *testing.T) {
	s := NewStore()
	r := s.Relation("e", 2)
	if r2 := s.Relation("e", 2); r2 != r {
		t.Fatal("Relation should return the same instance")
	}
	mustPanic(t, "arity conflict", func() { s.Relation("e", 3) })
	if !s.Has("e") || s.Has("q") {
		t.Fatal("Has wrong")
	}
	if _, ok := s.Lookup("e"); !ok {
		t.Fatal("Lookup failed")
	}
	s.Drop("e")
	if s.Has("e") {
		t.Fatal("Drop failed")
	}
}

func TestStoreSharedMeter(t *testing.T) {
	s := NewStore()
	a := s.Relation("a", 1)
	b := s.Relation("b", 1)
	a.Insert(Tuple{Sym("x")})
	b.Insert(Tuple{Sym("y")})
	a.Scan(func(Tuple) bool { return true })
	b.Scan(func(Tuple) bool { return true })
	if s.Meter().Retrievals() != 2 {
		t.Fatalf("store meter = %d, want 2", s.Meter().Retrievals())
	}
}

func TestStoreNamesSortedAndTotals(t *testing.T) {
	s := NewStore()
	s.Relation("z", 1).Insert(Tuple{Sym("1")})
	s.Relation("a", 1).Insert(Tuple{Sym("1")})
	s.Relation("a", 1).Insert(Tuple{Sym("2")})
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("Names = %v", names)
	}
	if s.TotalTuples() != 3 {
		t.Fatalf("TotalTuples = %d", s.TotalTuples())
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.Relation("e", 1).Insert(Tuple{Sym("x")})
	c := s.Clone()
	c.Relation("e", 1).Insert(Tuple{Sym("y")})
	if s.Relation("e", 1).Len() != 1 || c.Relation("e", 1).Len() != 2 {
		t.Fatal("Clone shares relations")
	}
	if c.Meter() == s.Meter() {
		t.Fatal("Clone shares meter")
	}
}
