package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randTuple draws a tuple mixing symbols and ints from a small domain,
// so random probes hit and miss both kinds.
func randTuple(rng *rand.Rand, arity int) Tuple {
	t := make(Tuple, arity)
	for i := range t {
		if rng.Intn(2) == 0 {
			t[i] = Sym(fmt.Sprintf("s%d", rng.Intn(8)))
		} else {
			t[i] = Int(int64(rng.Intn(8)))
		}
	}
	return t
}

// collect runs one probe and returns the matched tuples plus the
// retrievals it charged.
func collect(r *Relation, cols []int, vals []Value, readOnly bool) ([]Tuple, int64) {
	before := r.Meter().Retrievals()
	var out []Tuple
	probe := r.Lookup
	if readOnly {
		probe = r.LookupReadOnly
	}
	probe(cols, vals, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out, r.Meter().Retrievals() - before
}

// An indexed Lookup, a read-only scan fallback, and a frozen scan must
// be observationally identical: same tuples in the same order and the
// same meter charge — the invariant the parallel read phases rely on.
func TestLookupIndexVsScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + rng.Intn(4)
		n := rng.Intn(60)

		indexed := NewStore().Scratch("indexed", arity)
		scanRO := NewStore().Scratch("scan-ro", arity)
		frozen := NewStore().Scratch("frozen", arity)
		for i := 0; i < n; i++ {
			tup := randTuple(rng, arity)
			indexed.Insert(tup)
			scanRO.Insert(tup)
			frozen.Insert(tup)
		}
		frozen.Freeze()

		for probe := 0; probe < 8; probe++ {
			var cols []int
			var vals []Value
			for c := 0; c < arity; c++ {
				if rng.Intn(2) == 0 {
					cols = append(cols, c)
					vals = append(vals, randTuple(rng, 1)[0])
				}
			}
			if len(cols) > 0 {
				indexed.EnsureIndex(cols...)
			}
			it, ic := collect(indexed, cols, vals, false)
			st, sc := collect(scanRO, cols, vals, true)
			ft, fc := collect(frozen, cols, vals, false)
			if !reflect.DeepEqual(it, st) || !reflect.DeepEqual(it, ft) {
				t.Logf("seed %d: tuples differ: indexed %v, scan %v, frozen %v", seed, it, st, ft)
				return false
			}
			if ic != sc || ic != fc {
				t.Logf("seed %d: charges differ: indexed %d, scan %d, frozen %d", seed, ic, sc, fc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
