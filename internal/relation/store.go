package relation

import (
	"fmt"
	"sort"
)

// Store is a named collection of relations — the database a Datalog
// evaluation runs against. All relations created through a Store share
// its Meter and its symbol table, so a constant is interned once
// store-wide and every cross-relation probe compares dense ids.
type Store struct {
	meter     *Meter
	syms      *symtab
	relations map[string]*Relation
}

// NewStore creates an empty store with a fresh meter.
func NewStore() *Store {
	return &Store{meter: &Meter{}, syms: newSymtab(), relations: make(map[string]*Relation)}
}

// Meter returns the store-wide cost meter.
func (s *Store) Meter() *Meter { return s.meter }

// Relation returns the relation for pred, creating an empty one of the
// given arity on first use. It panics if pred exists with a different
// arity: Datalog predicates have a single arity.
func (s *Store) Relation(pred string, arity int) *Relation {
	r, ok := s.relations[pred]
	if !ok {
		r = newRelation(pred, arity, s.meter, s.syms)
		s.relations[pred] = r
		return r
	}
	if r.Arity() != arity {
		panic(fmt.Sprintf("relation: predicate %s used with arity %d and %d", pred, r.Arity(), arity))
	}
	return r
}

// Scratch returns a transient relation sharing the store's meter and
// symbol table but not registered in the store — e.g. a seminaive
// delta. Sharing the table keeps probes between scratch and stored
// relations on the interned fast path.
func (s *Store) Scratch(name string, arity int) *Relation {
	return newRelation(name, arity, s.meter, s.syms)
}

// Lookup returns the relation for pred if present.
func (s *Store) Lookup(pred string) (*Relation, bool) {
	r, ok := s.relations[pred]
	return r, ok
}

// Has reports whether pred exists in the store.
func (s *Store) Has(pred string) bool {
	_, ok := s.relations[pred]
	return ok
}

// Drop removes pred from the store, if present.
func (s *Store) Drop(pred string) { delete(s.relations, pred) }

// Names returns the predicate names in sorted order.
func (s *Store) Names() []string {
	names := make([]string, 0, len(s.relations))
	for n := range s.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the store. The clone gets its own meter.
func (s *Store) Clone() *Store {
	c := NewStore()
	for name, r := range s.relations {
		cr := c.Relation(name, r.Arity())
		for _, t := range r.tuples {
			cr.Insert(t)
		}
	}
	return c
}

// Snapshot returns a frozen copy-on-write view of the store for
// concurrent readers: every relation in the snapshot is frozen (no
// inserts, no lazy index builds), shares the original's append-only
// tuple storage, and charges to the snapshot's own fresh atomic
// Meter. The snapshot also owns a clone of the symbol table, so the
// original's writer may keep interning fresh constants while snapshot
// readers resolve probes. The caller must ensure no writer runs
// concurrently with Snapshot itself; afterwards, writers may keep
// inserting into the original while any number of goroutines read the
// snapshot.
func (s *Store) Snapshot() *Store {
	c := &Store{
		meter:     &Meter{},
		syms:      s.syms.clone(),
		relations: make(map[string]*Relation, len(s.relations)),
	}
	for name, r := range s.relations {
		c.relations[name] = r.snapshot(c.meter, c.syms)
	}
	return c
}

// TotalTuples returns the number of tuples across all relations.
func (s *Store) TotalTuples() int {
	n := 0
	for _, r := range s.relations {
		n += r.Len()
	}
	return n
}
