package relation

import (
	"fmt"
	"testing"
)

// benchTuples returns n distinct arity-2 symbol tuples.
func benchTuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Sym(fmt.Sprintf("a%d", i)), Sym(fmt.Sprintf("b%d", i%97))}
	}
	return out
}

// BenchmarkInsertFresh measures inserting distinct tuples into a
// growing relation: the dedup probe, the stored copy, and the index
// update. The relations come from one Store, so the symbol table is
// warm after the first round — the regime every evaluation runs in,
// where the EDB interned the constants long before any derived
// relation sees them.
func BenchmarkInsertFresh(b *testing.B) {
	tuples := benchTuples(1 << 12)
	store := NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(tuples) == 0 {
			b.StopTimer()
			r := store.Scratch("bench", 2)
			r.EnsureIndex(0)
			b.StartTimer()
			benchRel = r
		}
		benchRel.Insert(tuples[i%len(tuples)])
	}
}

var benchRel *Relation

// BenchmarkInsertDup measures re-inserting tuples that are already
// present: pure set-membership probing, the hot path of every
// seminaive dedup.
func BenchmarkInsertDup(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := New("bench", 2, nil)
	for _, t := range tuples {
		r.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Insert(tuples[i%len(tuples)])
	}
}

// BenchmarkContains measures the membership probe.
func BenchmarkContains(b *testing.B) {
	tuples := benchTuples(1 << 10)
	m := &Meter{}
	r := New("bench", 2, m)
	for _, t := range tuples {
		r.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Contains(tuples[i%len(tuples)])
	}
}

// BenchmarkLookupIndexed measures an index probe producing a handful
// of tuples — the join/matchAtom hot path.
func BenchmarkLookupIndexed(b *testing.B) {
	tuples := benchTuples(1 << 10)
	m := &Meter{}
	r := New("bench", 2, m)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.EnsureIndex(1)
	cols := []int{1}
	vals := make([]Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][1]
		r.Lookup(cols, vals, func(Tuple) bool { return true })
	}
}

// BenchmarkLookupMiss measures a probe that matches nothing.
func BenchmarkLookupMiss(b *testing.B) {
	tuples := benchTuples(1 << 10)
	r := New("bench", 2, nil)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.EnsureIndex(0)
	cols := []int{0}
	vals := []Value{Sym("nowhere")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(cols, vals, func(Tuple) bool { return true })
	}
}

// BenchmarkFrozenScanLookup measures the frozen no-index fallback.
func BenchmarkFrozenScanLookup(b *testing.B) {
	tuples := benchTuples(1 << 8)
	m := &Meter{}
	r := New("bench", 2, m)
	for _, t := range tuples {
		r.Insert(t)
	}
	r.Freeze()
	cols := []int{0}
	vals := make([]Value, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = tuples[i%len(tuples)][0]
		r.Lookup(cols, vals, func(Tuple) bool { return true })
	}
}
