package relation

// symtab interns Values into dense int32 ids. All relations of a Store
// share one table, so a constant is hashed once on first insert and
// every later membership probe, index key, or dedup check works on
// fixed-width integers instead of re-encoding the value as a string.
// Symbols and integers live in separate maps keyed by their raw
// representation: the runtime's specialized string and int64 hashers
// are markedly faster than hashing the composite Value struct.
//
// Concurrency contract: intern mutates and must only run from the
// single-writer side (Insert). lookup is read-only, so any number of
// readers may probe concurrently as long as no intern runs — the
// regime of frozen snapshots and of the engine's parallel read phase.
type symtab struct {
	syms map[string]int32
	nums map[int64]int32
	next int32
}

func newSymtab() *symtab {
	return &symtab{syms: make(map[string]int32), nums: make(map[int64]int32)}
}

// intern returns v's id, assigning the next dense id on first sight.
func (s *symtab) intern(v Value) int32 {
	if v.kind == KindSym {
		if id, ok := s.syms[v.sym]; ok {
			return id
		}
		id := s.next
		s.next++
		s.syms[v.sym] = id
		return id
	}
	if id, ok := s.nums[v.num]; ok {
		return id
	}
	id := s.next
	s.next++
	s.nums[v.num] = id
	return id
}

// lookup returns v's id if v was ever interned. A miss proves v is
// stored in no relation sharing this table.
func (s *symtab) lookup(v Value) (int32, bool) {
	if v.kind == KindSym {
		id, ok := s.syms[v.sym]
		return id, ok
	}
	id, ok := s.nums[v.num]
	return id, ok
}

// clone returns an independent copy with identical assignments, so a
// store snapshot keeps resolving ids while the original table keeps
// growing under its writer.
func (s *symtab) clone() *symtab {
	c := &symtab{
		syms: make(map[string]int32, len(s.syms)),
		nums: make(map[int64]int32, len(s.nums)),
		next: s.next,
	}
	for v, id := range s.syms {
		c.syms[v] = id
	}
	for v, id := range s.nums {
		c.nums[v] = id
	}
	return c
}
