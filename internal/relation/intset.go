package relation

// intSet is an open-addressed hash set of packed uint64 keys — the
// membership structure behind Insert dedup and Contains for narrow
// (arity ≤ 2) relations. A flat probe sequence over a power-of-two
// slot array beats the general-purpose map by ~2x on this workload:
// no bucket indirection, no tophash lane, one multiply for the hash.
//
// Slots store key+1 so zero can mark emptiness; packed keys use at
// most 63 bits (two non-negative int32 ids), so the +1 never wraps.
type intSet struct {
	slots []uint64
	mask  uint64
	shift uint
	n     int
}

const intSetMinCap = 16 // power of two

// fib64 is 2^64/phi, the multiplicative (Fibonacci) hashing constant:
// consecutive ids scatter across the high bits the shift selects.
const fib64 = 0x9E3779B97F4A7C15

func newIntSet() *intSet {
	return &intSet{slots: make([]uint64, intSetMinCap), mask: intSetMinCap - 1, shift: 64 - 4}
}

// add inserts k, reporting whether it was absent.
func (s *intSet) add(k uint64) bool {
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	e := k + 1
	i := (k * fib64) >> s.shift
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = e
			s.n++
			return true
		}
		if v == e {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// has reports whether k is in the set.
func (s *intSet) has(k uint64) bool {
	e := k + 1
	i := (k * fib64) >> s.shift
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == e {
			return true
		}
		i = (i + 1) & s.mask
	}
}

func (s *intSet) len() int { return s.n }

func (s *intSet) grow() {
	old := s.slots
	s.slots = make([]uint64, 2*len(old))
	s.mask = uint64(len(s.slots) - 1)
	s.shift--
	s.n = 0
	for _, v := range old {
		if v != 0 {
			s.add(v - 1)
		}
	}
}

// clone returns an independent copy.
func (s *intSet) clone() *intSet {
	c := &intSet{slots: make([]uint64, len(s.slots)), mask: s.mask, shift: s.shift, n: s.n}
	copy(c.slots, s.slots)
	return c
}
