package relation

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	v := Sym("john")
	if v.Kind() != KindSym || v.Name() != "john" || v.IsInt() {
		t.Fatalf("Sym accessor mismatch: %#v", v)
	}
	n := Int(-7)
	if n.Kind() != KindInt || n.Num() != -7 || !n.IsInt() {
		t.Fatalf("Int accessor mismatch: %#v", n)
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic(t, "Num on symbol", func() { Sym("x").Num() })
	mustPanic(t, "Name on int", func() { Int(1).Name() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Sym("abc"), "abc"},
		{Int(42), "42"},
		{Int(-3), "-3"},
		{Sym(""), ""},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueLessTotalOrderSamples(t *testing.T) {
	// ints before syms, then by value
	ordered := []Value{Int(-5), Int(0), Int(9), Sym(""), Sym("a"), Sym("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Less(ordered[j])
			want := i < j
			if got != want {
				t.Errorf("Less(%v, %v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueEqualityAsMapKey(t *testing.T) {
	m := map[Value]int{Sym("a"): 1, Int(1): 2}
	if m[Sym("a")] != 1 || m[Int(1)] != 2 {
		t.Fatal("Value not usable as map key")
	}
	if _, ok := m[Sym("1")]; ok {
		t.Fatal("Sym(\"1\") should differ from Int(1)")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Pairs that a naive separator-free encoding would confuse.
	pairs := [][2]Tuple{
		{Tuple{Sym("ab"), Sym("c")}, Tuple{Sym("a"), Sym("bc")}},
		{Tuple{Sym("a|b")}, Tuple{Sym("a"), Sym("b")}},
		{Tuple{Int(12), Int(3)}, Tuple{Int(1), Int(23)}},
		{Tuple{Sym("1")}, Tuple{Int(1)}},
		{Tuple{Sym("")}, Tuple{}},
		{Tuple{Sym("s1:x")}, Tuple{Sym("x")}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("Key collision: %v and %v both encode to %q", p[0], p[1], p[0].Key())
		}
	}
}

func TestTupleKeyInjectiveProperty(t *testing.T) {
	f := func(a, b []int16, s1, s2 string) bool {
		t1 := make(Tuple, 0, len(a)+1)
		for _, n := range a {
			t1 = append(t1, Int(int64(n)))
		}
		t1 = append(t1, Sym(s1))
		t2 := make(Tuple, 0, len(b)+1)
		for _, n := range b {
			t2 = append(t2, Int(int64(n)))
		}
		t2 = append(t2, Sym(s2))
		if t1.Equal(t2) {
			return t1.Key() == t2.Key()
		}
		return t1.Key() != t2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleEqualCloneString(t *testing.T) {
	a := Tuple{Sym("x"), Int(3)}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b[0] = Sym("y")
	if a.Equal(b) {
		t.Fatal("clone shares storage with original")
	}
	if a.Equal(Tuple{Sym("x")}) {
		t.Fatal("tuples of different length compared equal")
	}
	if got := a.String(); got != "(x, 3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTupleLess(t *testing.T) {
	a := Tuple{Int(1), Sym("a")}
	b := Tuple{Int(1), Sym("b")}
	c := Tuple{Int(1)}
	if !a.Less(b) || b.Less(a) {
		t.Error("field ordering wrong")
	}
	if !c.Less(a) || a.Less(c) {
		t.Error("prefix tuple should sort first")
	}
	if a.Less(a) {
		t.Error("tuple less than itself")
	}
}

func TestMeterNilSafety(t *testing.T) {
	var m *Meter
	m.Add(5)
	if m.Retrievals() != 0 {
		t.Fatal("nil meter should read 0")
	}
	m.Reset() // must not panic
}

func TestMeterAccumulatesAndResets(t *testing.T) {
	m := &Meter{}
	m.Add(3)
	m.Add(4)
	if m.Retrievals() != 7 {
		t.Fatalf("Retrievals = %d, want 7", m.Retrievals())
	}
	if m.String() != "7 tuple retrievals" {
		t.Fatalf("String = %q", m.String())
	}
	m.Reset()
	if m.Retrievals() != 0 {
		t.Fatal("Reset did not zero the meter")
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
