package core

import (
	"fmt"
	"testing"

	"magiccounting/internal/obs"
)

// traceFixture is a cyclic same-generation instance large enough to
// exercise Step 1 rounds, the magic part, and the descent.
func traceFixture() Query {
	var parent []Pair
	name := func(g, i int) string { return fmt.Sprintf("t%d_%d", g, i) }
	for g := 0; g < 6; g++ {
		for i := 0; i < 4; i++ {
			parent = append(parent, P(name(g, i), name(g+1, (i+g)%4)))
		}
	}
	parent = append(parent, P(name(4, 0), name(1, 0))) // back arc: recurring nodes
	return SameGeneration(parent, name(0, 0))
}

// TestTraceRetrievalSumsMatchMeter is the tentpole invariant: for
// every method, the span tree's per-stage self retrievals sum exactly
// to the Result meter, and the traced run returns the same answers
// and stats as the untraced one.
func TestTraceRetrievalSumsMatchMeter(t *testing.T) {
	q := traceFixture()
	for _, strategy := range []Strategy{Basic, Single, Multiple, Recurring} {
		for _, mode := range []Mode{Independent, Integrated} {
			name := strategy.String() + "/" + mode.String()
			t.Run(name, func(t *testing.T) {
				plain, err := q.SolveMagicCounting(strategy, mode)
				if err != nil {
					t.Fatal(err)
				}
				tr := obs.New("solve", 0)
				traced, err := q.SolveMagicCountingOpts(strategy, mode, Options{Trace: tr})
				if err != nil {
					t.Fatal(err)
				}
				root := tr.Finish(traced.Stats.Retrievals)
				if root == nil {
					t.Fatal("no trace produced")
				}
				if traced.Stats != plain.Stats {
					t.Errorf("tracing changed stats: %+v vs %+v", traced.Stats, plain.Stats)
				}
				if len(traced.Answers) != len(plain.Answers) {
					t.Errorf("tracing changed answers: %d vs %d", len(traced.Answers), len(plain.Answers))
				}
				if got := root.SumRetrievals(); got != traced.Stats.Retrievals {
					t.Errorf("span retrievals sum to %d, meter says %d", got, traced.Stats.Retrievals)
				}
				if root.Total != traced.Stats.Retrievals {
					t.Errorf("root total %d, meter %d", root.Total, traced.Stats.Retrievals)
				}
				if root.Find("step1/"+strategy.String()) == nil {
					t.Errorf("missing step1 span; tree: %+v", root.Children)
				}
				if root.Find("step2/"+mode.String()) == nil {
					t.Errorf("missing step2 span")
				}
			})
		}
	}
}

// TestTraceCountingAndAuto covers the counting solver's trace path
// and SolveAuto's classify span.
func TestTraceCountingAndAuto(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "b"), P("b", "c"), P("c", "d")}, "a")
	tr := obs.New("solve", 0)
	res, err := q.SolveCountingOpts(Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish(res.Stats.Retrievals)
	if got := root.SumRetrievals(); got != res.Stats.Retrievals {
		t.Errorf("counting trace sums to %d, meter %d", got, res.Stats.Retrievals)
	}
	for _, want := range []string{"counting", "exit", "descent"} {
		if root.Find(want) == nil {
			t.Errorf("counting trace missing %q span", want)
		}
	}

	tr = obs.New("solve", 0)
	res, sel, err := q.SolveAuto(Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root = tr.Finish(res.Stats.Retrievals)
	if root.Find("classify/"+sel.Regime.String()) == nil {
		t.Errorf("auto trace missing classify span for regime %s", sel.Regime)
	}
	if got := root.SumRetrievals(); got != res.Stats.Retrievals {
		t.Errorf("auto trace sums to %d, meter %d", got, res.Stats.Retrievals)
	}
}

// TestTraceRoundCap: a chain deeper than traceRoundCap merges excess
// rounds into one tail span without losing retrieval exactness.
func TestTraceRoundCap(t *testing.T) {
	var parent []Pair
	for i := 0; i < traceRoundCap*3; i++ {
		parent = append(parent, P(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
	}
	q := SameGeneration(parent, "c0")
	tr := obs.New("solve", 0)
	res, err := q.SolveMagicCountingOpts(Basic, Integrated, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish(res.Stats.Retrievals)
	if got := root.SumRetrievals(); got != res.Stats.Retrievals {
		t.Fatalf("capped trace sums to %d, meter %d", got, res.Stats.Retrievals)
	}
	step1 := root.Find("step1/basic")
	if step1 == nil {
		t.Fatal("missing step1 span")
	}
	rounds := 0
	var tail *obs.Span
	for _, c := range step1.Children {
		switch c.Name {
		case "round":
			rounds++
		case "rounds":
			tail = c
		}
	}
	if rounds != traceRoundCap {
		t.Errorf("%d round spans, want exactly traceRoundCap=%d", rounds, traceRoundCap)
	}
	if tail == nil {
		t.Fatal("missing tail span for rounds past the cap")
	}
	if tail.Attrs["rounds"] == 0 {
		t.Errorf("tail span has no merged-round count: %+v", tail.Attrs)
	}
}

// TestTraceDisarmedMatchesDisabled: a disarmed trace changes nothing
// about the run and records nothing — the unsampled configuration the
// bench guard measures.
func TestTraceDisarmedMatchesDisabled(t *testing.T) {
	q := traceFixture()
	plain, err := q.SolveMagicCounting(Recurring, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	d := obs.Disarmed()
	unsampled, err := q.SolveMagicCountingOpts(Recurring, Integrated, Options{Trace: d})
	if err != nil {
		t.Fatal(err)
	}
	if unsampled.Stats != plain.Stats {
		t.Errorf("disarmed trace changed stats: %+v vs %+v", unsampled.Stats, plain.Stats)
	}
	if d.Finish(0) != nil {
		t.Error("disarmed trace recorded spans")
	}
}
