package core

import "slices"

// levelSet is a counting-style relation: levels[j] holds the node ids
// with index j, deduplicated per level by a denseSet.
type levelSet struct {
	levels []denseSet
	pairs  int
}

func newLevelSet() *levelSet { return &levelSet{} }

// add inserts (j, v) and reports whether it was new.
func (s *levelSet) add(j int, v int32) bool {
	for len(s.levels) <= j {
		s.levels = append(s.levels, denseSet{})
	}
	if !s.levels[j].add(v) {
		return false
	}
	s.pairs++
	return true
}

// has reports whether (j, v) is present.
func (s *levelSet) has(j int, v int32) bool {
	return j >= 0 && j < len(s.levels) && s.levels[j].has(v)
}

// remove deletes (j, v) if present, reporting whether it was there.
// Only the theorem-boundary tests mutate reduced sets this way.
func (s *levelSet) remove(j int, v int32) bool {
	if j < 0 || j >= len(s.levels) || !s.levels[j].remove(v) {
		return false
	}
	s.pairs--
	return true
}

// at returns the nodes with index j (nil when out of range).
func (s *levelSet) at(j int) []int32 {
	if j < 0 || j >= len(s.levels) {
		return nil
	}
	return s.levels[j].members()
}

// maxLevel returns the highest populated index, or -1 when empty.
func (s *levelSet) maxLevel() int {
	for j := len(s.levels) - 1; j >= 0; j-- {
		if s.levels[j].size() > 0 {
			return j
		}
	}
	return -1
}

// countingSets runs the counting-set fixpoint of §2:
//
//	CS(0, a).
//	CS(J+1, X1) :- CS(J, X), L(X, X1).
//
// level by level. A level index reaching the number of L-nodes proves
// a walk through a cycle (pigeonhole), i.e. a recurring node, so the
// computation stops with ErrUnsafe — this is the guard that turns the
// paper's "unsafe" verdict into a clean error instead of divergence.
// iterations receives one tick per level computed.
func (in *instance) countingSets() (*levelSet, int, error) {
	sp := in.tr.Start("counting", in.retrievals)
	cs := newLevelSet()
	cs.add(0, in.src)
	n := in.nL
	iterations := 0
	rt := roundTrace{in: in}
	for j := 0; len(cs.at(j)) > 0 && !in.stopped(); j++ {
		rt.begin(j, len(cs.at(j)))
		iterations++
		if j+1 > n {
			rt.done()
			in.tr.End(sp, in.retrievals)
			return nil, iterations, ErrUnsafe
		}
		// Semijoin CS ⋉ L over the frontier, sharded when workers are
		// configured; each node costs 1 + len(lOut[x]).
		in.expandLevel(cs, cs.at(j), &in.c.lOut, j+1)
	}
	rt.done()
	if sp != nil {
		sp.Set("iterations", int64(iterations))
		sp.Set("cs_pairs", int64(cs.pairs))
	}
	in.tr.End(sp, in.retrievals)
	return cs, iterations, nil
}

// seedExit applies the counting exit rule to every seed pair:
//
//	P_C(J, Y) :- seed(J, X), E(X, Y).
func (in *instance) seedExit(pc, seed *levelSet) {
	sp := in.tr.Start("exit", in.retrievals)
	for j := 0; j < len(seed.levels) && !in.stopped(); j++ {
		in.expandLevel(pc, seed.at(j), &in.c.eOut, j)
	}
	if sp != nil {
		sp.Set("levels", int64(len(seed.levels)))
		sp.Set("seeded", int64(pc.pairs))
	}
	in.tr.End(sp, in.retrievals)
}

// descend runs the counting descent to completion:
//
//	P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1).
//	Answer(Y)   :- P_C(0, Y).
//
// returning the answer node set and one iteration tick per level.
func (in *instance) descend(pc *levelSet) (*denseSet, int) {
	sp := in.tr.Start("descent", in.retrievals)
	iterations := 0
	rt := roundTrace{in: in}
	for j := pc.maxLevel(); j >= 1 && !in.stopped(); j-- {
		rt.begin(j, len(pc.at(j)))
		iterations++
		in.expandLevel(pc, pc.at(j), &in.c.rOut, j-1)
	}
	rt.done()
	answers := &denseSet{}
	for _, y := range pc.at(0) {
		answers.add(y)
	}
	if sp != nil {
		sp.Set("iterations", int64(iterations))
		sp.Set("answers", int64(answers.size()))
	}
	in.tr.End(sp, in.retrievals)
	return answers, iterations
}

// countingDescent runs the modified rules of the counting method
// (§2, rules 3–5) from a seed counting set.
func (in *instance) countingDescent(seed *levelSet) (*denseSet, int) {
	pc := newLevelSet()
	in.seedExit(pc, seed)
	return in.descend(pc)
}

// SolveCounting evaluates the query with the pure counting method
// (program Q_C of §2). It returns ErrUnsafe when the magic graph is
// cyclic; Table 1's other rows cost Θ(m_L + n_L·m_R) on regular
// graphs and Θ(n_L·m_L + n_L·m_R) on acyclic non-regular ones.
func (q Query) SolveCounting() (*Result, error) {
	return q.SolveCountingOpts(Options{})
}

// SolveCountingOpts is SolveCounting with explicit options (context
// cancellation, worker pool for the frontier rounds).
func (q Query) SolveCountingOpts(opts Options) (*Result, error) {
	return compileTraced(q, opts.Trace).SolveCounting(q.Source, opts)
}

// SolveCounting runs the pure counting method for one source on the
// compiled instance.
func (c *Compiled) SolveCounting(source string, opts Options) (*Result, error) {
	in := c.bind(source)
	in.configure(opts)
	cs, iter, err := in.countingSets()
	if err != nil {
		return nil, err
	}
	answers, dIter := in.countingDescent(cs)
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:      in.retrievals,
			Iterations:      iter + dIter,
			CountingSetSize: cs.pairs,
		},
	}, nil
}

// SolveCountingCyclic evaluates the query with the generalized
// counting extension sketched in the paper's [MPS]/[SZ2] footnote:
// counting-set indices are capped at 2·n_L−1 (beyond which every
// index belongs to a recurring node whose answers a magic-style pass
// already covers), making the method safe on cyclic graphs at cost
// Θ(n_L·m_L + n_L²·m_R) — the footnote's Θ(m·n³) family. It exists to
// reproduce the paper's claim that even safe counting variants lose
// to magic counting on cyclic data.
func (q Query) SolveCountingCyclic() (*Result, error) {
	return q.SolveCountingCyclicOpts(Options{})
}

// SolveCountingCyclicOpts is SolveCountingCyclic with explicit options.
func (q Query) SolveCountingCyclicOpts(opts Options) (*Result, error) {
	return compileTraced(q, opts.Trace).SolveCountingCyclic(q.Source, opts)
}

// SolveCountingCyclic runs the bounded-index counting extension for
// one source on the compiled instance.
func (c *Compiled) SolveCountingCyclic(source string, opts Options) (*Result, error) {
	in := c.bind(source)
	in.configure(opts)
	n := in.nL
	bound := 2*n - 1
	cs := newLevelSet()
	cs.add(0, in.src)
	iterations := 0
	for j := 0; j < bound && len(cs.at(j)) > 0; j++ {
		iterations++
		in.expandLevel(cs, cs.at(j), &in.c.lOut, j+1)
	}
	// The bounded descent covers every answer whose E-crossing node is
	// single or multiple: their index sets lie entirely below n.
	answers, dIter := in.countingDescent(cs)
	// Nodes holding an index >= n are recurring (pigeonhole): their
	// index sets are infinite, so no bounded counting pass can cover
	// them. Close the gap with a magic-style sweep whose exit rule is
	// seeded only from the recurring nodes, preserving safety.
	rec := &denseSet{}
	for j := n; j < len(cs.levels); j++ {
		for _, v := range cs.at(j) {
			rec.add(v)
		}
	}
	if rec.size() > 0 {
		exit := append([]int32(nil), rec.members()...)
		slices.Sort(exit)
		pm, mIter := in.magicPairs(exit, in.reachableSet(), nil)
		for _, y := range pm.bySource(in.src) {
			answers.add(y)
		}
		pm.release()
		dIter += mIter
	}
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:      in.retrievals,
			Iterations:      iterations + dIter,
			CountingSetSize: cs.pairs,
		},
	}, nil
}
