package core

// levelSet is a counting-style relation: levels[j] holds the node ids
// with index j, deduplicated per level.
type levelSet struct {
	levels [][]int32
	member []map[int32]bool // per-level membership, parallel to levels
	pairs  int
}

func newLevelSet() *levelSet { return &levelSet{} }

// add inserts (j, v) and reports whether it was new.
func (s *levelSet) add(j int, v int32) bool {
	for len(s.levels) <= j {
		s.levels = append(s.levels, nil)
		s.member = append(s.member, make(map[int32]bool))
	}
	if s.member[j][v] {
		return false
	}
	s.member[j][v] = true
	s.levels[j] = append(s.levels[j], v)
	s.pairs++
	return true
}

// has reports whether (j, v) is present.
func (s *levelSet) has(j int, v int32) bool {
	return j >= 0 && j < len(s.levels) && s.member[j][v]
}

// at returns the nodes with index j (nil when out of range).
func (s *levelSet) at(j int) []int32 {
	if j < 0 || j >= len(s.levels) {
		return nil
	}
	return s.levels[j]
}

// maxLevel returns the highest populated index, or -1 when empty.
func (s *levelSet) maxLevel() int {
	for j := len(s.levels) - 1; j >= 0; j-- {
		if len(s.levels[j]) > 0 {
			return j
		}
	}
	return -1
}

// countingSets runs the counting-set fixpoint of §2:
//
//	CS(0, a).
//	CS(J+1, X1) :- CS(J, X), L(X, X1).
//
// level by level. A level index reaching the number of L-nodes proves
// a walk through a cycle (pigeonhole), i.e. a recurring node, so the
// computation stops with ErrUnsafe — this is the guard that turns the
// paper's "unsafe" verdict into a clean error instead of divergence.
// iterations receives one tick per level computed.
func (in *instance) countingSets() (*levelSet, int, error) {
	cs := newLevelSet()
	cs.add(0, in.src)
	n := len(in.lNames)
	iterations := 0
	for j := 0; len(cs.at(j)) > 0 && !in.stopped(); j++ {
		iterations++
		if j+1 > n {
			return nil, iterations, ErrUnsafe
		}
		for _, x := range cs.at(j) {
			in.charge(1 + int64(len(in.lOut[x]))) // semijoin CS ⋉ L
			for _, x1 := range in.lOut[x] {
				cs.add(j+1, x1)
			}
		}
	}
	return cs, iterations, nil
}

// seedExit applies the counting exit rule to every seed pair:
//
//	P_C(J, Y) :- seed(J, X), E(X, Y).
func (in *instance) seedExit(pc, seed *levelSet) {
	for j := 0; j < len(seed.levels) && !in.stopped(); j++ {
		for _, x := range seed.at(j) {
			in.charge(1 + int64(len(in.eOut[x])))
			for _, y := range in.eOut[x] {
				pc.add(j, y)
			}
		}
	}
}

// descend runs the counting descent to completion:
//
//	P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1).
//	Answer(Y)   :- P_C(0, Y).
//
// returning the answer node set and one iteration tick per level.
func (in *instance) descend(pc *levelSet) (map[int32]bool, int) {
	iterations := 0
	for j := pc.maxLevel(); j >= 1 && !in.stopped(); j-- {
		iterations++
		for _, y1 := range pc.at(j) {
			in.charge(1 + int64(len(in.rOut[y1])))
			for _, y := range in.rOut[y1] {
				pc.add(j-1, y)
			}
		}
	}
	answers := make(map[int32]bool)
	for _, y := range pc.at(0) {
		answers[y] = true
	}
	return answers, iterations
}

// countingDescent runs the modified rules of the counting method
// (§2, rules 3–5) from a seed counting set.
func (in *instance) countingDescent(seed *levelSet) (map[int32]bool, int) {
	pc := newLevelSet()
	in.seedExit(pc, seed)
	return in.descend(pc)
}

// SolveCounting evaluates the query with the pure counting method
// (program Q_C of §2). It returns ErrUnsafe when the magic graph is
// cyclic; Table 1's other rows cost Θ(m_L + n_L·m_R) on regular
// graphs and Θ(n_L·m_L + n_L·m_R) on acyclic non-regular ones.
func (q Query) SolveCounting() (*Result, error) {
	in := build(q)
	cs, iter, err := in.countingSets()
	if err != nil {
		return nil, err
	}
	answers, dIter := in.countingDescent(cs)
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:      in.retrievals,
			Iterations:      iter + dIter,
			CountingSetSize: cs.pairs,
		},
	}, nil
}

// SolveCountingCyclic evaluates the query with the generalized
// counting extension sketched in the paper's [MPS]/[SZ2] footnote:
// counting-set indices are capped at 2·n_L−1 (beyond which every
// index belongs to a recurring node whose answers a magic-style pass
// already covers), making the method safe on cyclic graphs at cost
// Θ(n_L·m_L + n_L²·m_R) — the footnote's Θ(m·n³) family. It exists to
// reproduce the paper's claim that even safe counting variants lose
// to magic counting on cyclic data.
func (q Query) SolveCountingCyclic() (*Result, error) {
	in := build(q)
	n := len(in.lNames)
	bound := 2*n - 1
	cs := newLevelSet()
	cs.add(0, in.src)
	iterations := 0
	for j := 0; j < bound && len(cs.at(j)) > 0; j++ {
		iterations++
		for _, x := range cs.at(j) {
			in.charge(1 + int64(len(in.lOut[x])))
			for _, x1 := range in.lOut[x] {
				cs.add(j+1, x1)
			}
		}
	}
	// The bounded descent covers every answer whose E-crossing node is
	// single or multiple: their index sets lie entirely below n.
	answers, dIter := in.countingDescent(cs)
	// Nodes holding an index >= n are recurring (pigeonhole): their
	// index sets are infinite, so no bounded counting pass can cover
	// them. Close the gap with a magic-style sweep whose exit rule is
	// seeded only from the recurring nodes, preserving safety.
	rec := make(map[int32]bool)
	for j := n; j < len(cs.levels); j++ {
		for _, v := range cs.at(j) {
			rec[v] = true
		}
	}
	if len(rec) > 0 {
		exit := make([]int32, 0, len(rec))
		for v := range rec {
			exit = append(exit, v)
		}
		sortInt32(exit)
		pm, mIter := in.magicPairs(exit, in.reachableSet(), nil)
		for y := range pm.bySource(in.src) {
			answers[y] = true
		}
		dIter += mIter
	}
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:      in.retrievals,
			Iterations:      iterations + dIter,
			CountingSetSize: cs.pairs,
		},
	}, nil
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
