package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// bigCycle builds the same-generation instance over one directed
// n-cycle: every node is recurring, so the whole graph lands in the
// magic part and the solve scans it several times over.
func bigCycle(n int) Query {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = P(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", (i+1)%n))
	}
	return SameGeneration(pairs, "v0")
}

func TestSolveCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{Independent, Integrated} {
		for _, s := range []Strategy{Basic, Single, Multiple, Recurring} {
			_, err := bigCycle(64).SolveMagicCountingCtx(ctx, s, mode)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v/%v: err = %v, want context.Canceled", s, mode, err)
			}
		}
	}
}

func TestSolveCtxDeadlineStopsMidFixpoint(t *testing.T) {
	// Big enough that building and solving takes tens of milliseconds
	// on any machine, so a 1ms deadline always expires mid-run.
	q := bigCycle(30000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	started := time.Now()
	_, err := q.SolveMagicCountingCtx(ctx, Recurring, Integrated)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(started); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, full run is seconds — not prompt", elapsed)
	}
}

func TestSolveCtxNilAndBackgroundUnaffected(t *testing.T) {
	q := bigCycle(32)
	plain, err := q.SolveMagicCounting(Multiple, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := q.SolveMagicCountingOpts(Multiple, Integrated, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(plain.Answers) != fmt.Sprint(bg.Answers) || plain.Stats != bg.Stats {
		t.Fatalf("background ctx changed the run: %+v vs %+v", plain, bg)
	}
}

func TestChooseMethodRegimes(t *testing.T) {
	chain := SameGeneration([]Pair{P("a", "b"), P("b", "c")}, "a")
	// Two walks of different length reach d: a->d and a->b->d.
	multi := SameGeneration([]Pair{P("a", "b"), P("b", "d"), P("a", "d")}, "a")
	cyclic := SameGeneration([]Pair{P("a", "b"), P("b", "a")}, "a")
	cases := []struct {
		name     string
		q        Query
		regime   Regime
		strategy Strategy
		scc      bool
	}{
		{"regular", chain, RegimeRegular, Basic, false},
		{"acyclic", multi, RegimeAcyclic, Multiple, false},
		{"cyclic", cyclic, RegimeCyclic, Recurring, true},
	}
	for _, c := range cases {
		sel := ChooseMethod(c.q)
		if sel.Regime != c.regime || sel.Strategy != c.strategy || sel.Mode != Integrated || sel.Options.SCCStep1 != c.scc {
			t.Errorf("%s: got %+v", c.name, sel)
		}
		if sel.Reason == "" {
			t.Errorf("%s: empty reason", c.name)
		}
		// The selected method must agree with ground truth.
		res, selDup, err := c.q.SolveAuto(Options{})
		if err != nil {
			t.Fatalf("%s: SolveAuto: %v", c.name, err)
		}
		if selDup.Strategy != sel.Strategy {
			t.Errorf("%s: SolveAuto picked %v, ChooseMethod %v", c.name, selDup.Strategy, sel.Strategy)
		}
		naive, err := c.q.SolveNaive()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Answers) != fmt.Sprint(naive.Answers) {
			t.Errorf("%s: auto answers %v != naive %v", c.name, res.Answers, naive.Answers)
		}
	}
}
