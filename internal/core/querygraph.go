package core

import (
	"io"

	"magiccounting/internal/graph"
)

// GraphParams are the query-graph measures of §3 and the refinement
// parameters of §§7–9, computed on the subgraph reachable from the
// source (the paper's G_Q). They parameterize every cost formula in
// Tables 1–5.
type GraphParams struct {
	// NL, ML: nodes and arcs of the magic graph G_L (reachable part).
	NL, ML int
	// NR, MR: nodes and arcs of G_R reachable along answer paths.
	NR, MR int
	// NE, ME: nodes incident to and arcs of G_E inside G_Q.
	NE, ME int

	// Regular: every magic-graph node is single. Cyclic: some node is
	// recurring (the counting method's unsafe regime).
	Regular, Cyclic bool

	// IX is i_x of §7: the smallest first-index of a non-single node
	// (NL+1 when the graph is regular).
	IX int
	// NX, MX: single nodes with first index below IX, and the arcs of
	// the subgraph they induce.
	NX, MX int
	// NJhat, MJhat: the §7 hatted measures — nodes of the NX region
	// with no path to any node of first index >= IX, and the arcs
	// entering them.
	NJhat, MJhat int

	// NS, MS: single nodes and the arcs among them (§8).
	NS, MS int
	// NIhat, MIhat: single nodes with no path to a multiple or
	// recurring node, and the arcs entering them (§8).
	NIhat, MIhat int

	// NM, MM: single-or-multiple nodes and the arcs among them (§9).
	NM, MM int
	// NMhat, MMhat: single-or-multiple nodes with no path to a
	// recurring node, and the arcs entering them (§9).
	NMhat, MMhat int
}

// Params analyzes the query instance and returns its graph measures.
func (q Query) Params() GraphParams {
	in := build(q)
	var p GraphParams

	lg := in.lGraph()
	cls := lg.Classify(int(in.src))
	reachL := lg.Reachable(int(in.src))
	for v := 0; v < lg.N(); v++ {
		if !reachL[v] {
			continue
		}
		p.NL++
		for _, w := range lg.Out(v) {
			if reachL[w] {
				p.ML++
			}
		}
	}
	p.Regular = cls.Regular
	p.Cyclic = cls.HasRecurring

	// R-side reachability: an R node enters G_Q through an E arc from
	// a reachable L node, then along descent arcs.
	nR := in.nR
	reachR := make([]bool, nR)
	var stack []int32
	for v := 0; v < in.nL; v++ {
		if !reachL[v] {
			continue
		}
		for _, y := range in.eOut(int32(v)) {
			p.ME++
			if !reachR[y] {
				reachR[y] = true
				stack = append(stack, y)
			}
		}
	}
	for len(stack) > 0 {
		y := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y2 := range in.rOut(y) {
			p.MR++
			if !reachR[y2] {
				reachR[y2] = true
				stack = append(stack, y2)
			}
		}
	}
	for _, r := range reachR {
		if r {
			p.NR++
		}
	}
	p.NE = p.NL + p.NR

	// §7 parameters.
	p.IX = p.NL + 1
	for v := 0; v < lg.N(); v++ {
		if cls.Class[v] == graph.Multiple || cls.Class[v] == graph.Recurring {
			if cls.FirstIndex[v] < p.IX {
				p.IX = cls.FirstIndex[v]
			}
		}
	}
	inX := make([]bool, lg.N())
	var high []int
	for v := 0; v < lg.N(); v++ {
		if !reachL[v] {
			continue
		}
		if cls.FirstIndex[v] < p.IX {
			inX[v] = true
		} else {
			high = append(high, v)
		}
	}
	p.NX, p.MX = countRegion(lg, inX)
	p.NJhat, p.MJhat = countHatted(lg, reachL, inX, high)

	// §8 parameters.
	inS := make([]bool, lg.N())
	var nonSingle []int
	for v := 0; v < lg.N(); v++ {
		if !reachL[v] {
			continue
		}
		if cls.Class[v] == graph.Single {
			inS[v] = true
		} else {
			nonSingle = append(nonSingle, v)
		}
	}
	p.NS, p.MS = countRegion(lg, inS)
	p.NIhat, p.MIhat = countHatted(lg, reachL, inS, nonSingle)

	// §9 parameters.
	inM := make([]bool, lg.N())
	var recurring []int
	for v := 0; v < lg.N(); v++ {
		if !reachL[v] {
			continue
		}
		if cls.Class[v] == graph.Recurring {
			recurring = append(recurring, v)
		} else {
			inM[v] = true
		}
	}
	p.NM, p.MM = countRegion(lg, inM)
	p.NMhat, p.MMhat = countHatted(lg, reachL, inM, recurring)
	return p
}

// WriteMagicGraphDOT renders the query's magic graph G_L in Graphviz
// DOT syntax, coloring nodes by their single/multiple/recurring
// class. Useful for inspecting why a method chose its reduced sets.
func (q Query) WriteMagicGraphDOT(w io.Writer) error {
	in := build(q)
	g := in.lGraph()
	cls := g.Classify(int(in.src))
	return g.WriteDOT(w, graph.DOTOptions{
		Name:    "magic_graph",
		Label:   func(v int) string { return in.lName(int32(v)) },
		Classes: cls.Class,
	})
}

// countRegion returns the node count of the masked region and the
// number of arcs with both endpoints inside it.
func countRegion(g *graph.Digraph, mask []bool) (nodes, arcs int) {
	for v := 0; v < g.N(); v++ {
		if !mask[v] {
			continue
		}
		nodes++
		for _, w := range g.Out(v) {
			if mask[w] {
				arcs++
			}
		}
	}
	return nodes, arcs
}

// countHatted returns, for a region and its "bad" complement seeds,
// the count of region nodes with no directed path to any bad node and
// the number of arcs (from anywhere reachable) entering those nodes —
// the paper's hatted n/m parameters.
func countHatted(g *graph.Digraph, reach, region []bool, bad []int) (nodes, arcs int) {
	canReachBad := g.ReverseReachable(bad)
	safe := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		safe[v] = region[v] && !canReachBad[v]
	}
	for v := 0; v < g.N(); v++ {
		if !safe[v] {
			continue
		}
		nodes++
		for _, u := range g.In(v) {
			if reach[u] {
				arcs++
			}
		}
	}
	return nodes, arcs
}
