package core

// Regime is the database regime of Figure 3 and Table 1: the shape of
// the magic graph reachable from the query constant, which decides
// which method the paper's efficiency hierarchy ranks best.
type Regime uint8

const (
	// RegimeRegular: every magic-graph node is single; the pure
	// counting method is safe and optimal.
	RegimeRegular Regime = iota
	// RegimeAcyclic: some node is multiple but none recurring; the
	// counting method still terminates but wastes work re-deriving.
	RegimeAcyclic
	// RegimeCyclic: some node is recurring; pure counting diverges
	// and only magic-gated methods are safe.
	RegimeCyclic
)

// String names the regime as Figure 3 labels its arcs.
func (r Regime) String() string {
	switch r {
	case RegimeRegular:
		return "regular"
	case RegimeAcyclic:
		return "acyclic"
	default:
		return "cyclic"
	}
}

// Selection is a method choice with the analysis that justified it.
type Selection struct {
	Strategy Strategy
	Mode     Mode
	Options  Options
	Regime   Regime
	// Reason is a one-line human-readable justification.
	Reason string
}

// ChooseMethod picks a magic counting method for the query the way
// Figure 3's efficiency hierarchy ranks them per regime:
//
//   - regular graphs: basic/integrated — Step 1 is a single Θ(m_L)
//     BFS and Step 2 degenerates to the pure counting method, the
//     optimum of Table 1's first row;
//   - acyclic non-regular graphs: multiple/integrated — the bounded
//     two-occurrence fixpoint isolates exactly the single nodes at
//     Θ(m_L), beating single (coarser split) and recurring (whose
//     naive Step 1 costs Θ(n_L·m_L));
//   - cyclic graphs: recurring/integrated with the Tarjan SCC Step 1
//     — the finest split at O(m_L + n_m·m_m), the paper's §9
//     improvement, confining magic evaluation to the truly recurring
//     nodes.
//
// The analysis itself is a linear-time classification of the magic
// graph and is not charged to any meter.
func ChooseMethod(q Query) Selection {
	return Compile(q.L, q.E, q.R).ChooseMethod(q.Source)
}

// ChooseMethod picks a magic counting method for one source on the
// compiled instance; see the function-level ChooseMethod for the
// selection policy. The classification reuses the precomputed magic
// graph, so repeated selections cost no rebuild.
func (c *Compiled) ChooseMethod(source string) Selection {
	in := c.bind(source)
	cls := in.lGraph().Classify(int(in.src))
	switch {
	case cls.Regular:
		return Selection{
			Strategy: Basic,
			Mode:     Integrated,
			Regime:   RegimeRegular,
			Reason:   "magic graph is regular: basic/integrated degenerates to the optimal pure counting evaluation",
		}
	case !cls.HasRecurring:
		return Selection{
			Strategy: Multiple,
			Mode:     Integrated,
			Regime:   RegimeAcyclic,
			Reason:   "magic graph is acyclic but non-regular: multiple/integrated isolates the single nodes in Θ(m_L)",
		}
	default:
		return Selection{
			Strategy: Recurring,
			Mode:     Integrated,
			Options:  Options{SCCStep1: true},
			Regime:   RegimeCyclic,
			Reason:   "magic graph is cyclic: recurring/integrated with the Tarjan Step 1 confines magic work to recurring nodes",
		}
	}
}

// SolveAuto evaluates the query with the method ChooseMethod selects,
// returning the selection alongside the result. opts supplies run
// options (notably Ctx); the selection's own Options are merged in.
func (q Query) SolveAuto(opts Options) (*Result, Selection, error) {
	return compileTraced(q, opts.Trace).SolveAuto(q.Source, opts)
}

// SolveAuto evaluates one source on the compiled instance with the
// method ChooseMethod selects, returning the selection alongside the
// result.
func (c *Compiled) SolveAuto(source string, opts Options) (*Result, Selection, error) {
	cs := opts.Trace.Start("classify", 0)
	sel := c.ChooseMethod(source)
	if cs != nil {
		cs.Name = "classify/" + sel.Regime.String()
	}
	opts.Trace.End(cs, 0)
	run := sel.Options
	run.Ctx = opts.Ctx
	run.Trace = opts.Trace
	run.Workers = opts.Workers
	run.ParallelThreshold = opts.ParallelThreshold
	res, err := c.Solve(source, sel.Strategy, sel.Mode, run)
	return res, sel, err
}
