// Flatten property suite: collapsing an Extend chain must produce an
// artifact structurally identical to both the chain and a cold
// Compile over the concatenated relations, observationally identical
// to the chain for every method, self-contained (DeltaDepth 0, codec
// layout matching the chain's), and cheaper by the ResidentBytes
// estimate than the chain it replaces.
package core_test

import (
	"fmt"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// buildChain compiles the base split of q and extends it in `steps`
// increments, returning the end-of-chain artifact plus the
// concatenated relations it should be equivalent to.
func buildChain(q core.Query, steps int) (*core.Compiled, core.Query) {
	base, rest := splitQuery(q, 0.3, 0.3, 0.3)
	comp := core.Compile(base.L, base.E, base.R)
	comp.SetGeneration(1)
	acc := core.Query{Source: q.Source}
	acc.L = append(acc.L, base.L...)
	acc.E = append(acc.E, base.E...)
	acc.R = append(acc.R, base.R...)
	for i := 0; i < steps; i++ {
		cut := func(p []core.Pair) []core.Pair {
			k := len(p) / steps
			if i == steps-1 {
				return p[i*k:]
			}
			return p[i*k : (i+1)*k]
		}
		dL, dE, dR := cut(rest.L), cut(rest.E), cut(rest.R)
		next := comp.Extend(dL, dE, dR)
		next.SetGeneration(comp.Generation + 1)
		acc.L = append(acc.L, dL...)
		acc.E = append(acc.E, dE...)
		acc.R = append(acc.R, dR...)
		comp = next
	}
	return comp, acc
}

// TestFlattenAgainstChain is the property test: over every regime
// kind, flattening a multi-step chain preserves structure against
// both the chain and a cold compile, resets DeltaDepth, preserves
// Generation and the relation tags, and answers every method/source
// combination identically.
func TestFlattenAgainstChain(t *testing.T) {
	kinds := []struct {
		name string
		kind workload.RegimeKind
	}{
		{"regular", workload.KindRegular},
		{"cyclic-regular", workload.KindCyclicRegular},
		{"multiple", workload.KindMultiple},
		{"recurring", workload.KindRecurring},
	}
	for _, k := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			label := fmt.Sprintf("%s/seed=%d", k.name, seed)
			q := workload.RandomRegime(k.kind, seed, 3)
			chain, acc := buildChain(q, 6)
			flat := chain.Flatten()

			if err := flat.StructuralEqual(chain); err != nil {
				t.Fatalf("%s: flattened artifact diverges from the chain: %v", label, err)
			}
			cold := core.Compile(acc.L, acc.E, acc.R)
			if err := flat.StructuralEqual(cold); err != nil {
				t.Fatalf("%s: flattened artifact diverges from cold compile: %v", label, err)
			}
			if flat.DeltaDepth() != 0 {
				t.Fatalf("%s: DeltaDepth = %d after Flatten, want 0", label, flat.DeltaDepth())
			}
			if flat.Generation != chain.Generation {
				t.Fatalf("%s: Flatten changed Generation %d -> %d", label, chain.Generation, flat.Generation)
			}
			cl, ce, cr := chain.RelationGenerations()
			fl, fe, fr := flat.RelationGenerations()
			if fl != cl || fe != ce || fr != cr {
				t.Fatalf("%s: Flatten changed relation tags (%d,%d,%d) -> (%d,%d,%d)", label, cl, ce, cr, fl, fe, fr)
			}

			sources := []string{q.Source, "absent-from-everything"}
			if len(acc.L) > 0 {
				sources = append(sources, acc.L[len(acc.L)-1].To)
			}
			for _, src := range sources {
				for _, s := range equivStrategies {
					for _, m := range equivModes {
						want, werr := chain.Solve(src, s, m, core.Options{})
						got, gerr := flat.Solve(src, s, m, core.Options{})
						checkSame(t, fmt.Sprintf("%s src=%s %v/%v", label, src, s, m), want, werr, got, gerr)
					}
				}
			}
		}
	}
}

// TestFlattenSelfContained checks the collapse contracts that make
// Flatten usable as a retention mechanism: a self-contained artifact
// is returned as-is, the flattened artifact keeps working after the
// chain is dropped, it can seed a fresh Extend chain, its encoding is
// byte-identical to the chain's, and the byte estimate shrinks.
func TestFlattenSelfContained(t *testing.T) {
	q := workload.RandomRegime(workload.KindMultiple, 7, 3)
	chain, acc := buildChain(q, 8)

	flat := chain.Flatten()
	t.Run("idempotent", func(t *testing.T) {
		if again := flat.Flatten(); again != flat {
			t.Fatalf("Flatten of a flat artifact allocated a copy")
		}
		cold := core.Compile(acc.L, acc.E, acc.R)
		if cold.Flatten() != cold {
			t.Fatalf("Flatten of a cold compile allocated a copy")
		}
	})
	t.Run("extend-after-flatten", func(t *testing.T) {
		d := []core.Pair{{From: "post-collapse-x", To: "post-collapse-y"}}
		wantL := append(append([]core.Pair(nil), acc.L...), d...)
		cold := core.Compile(wantL, acc.E, acc.R)
		ext := flat.Extend(d, nil, nil)
		if err := ext.StructuralEqual(cold); err != nil {
			t.Fatalf("Extend after Flatten diverges: %v", err)
		}
		if ext.DeltaDepth() != 1 {
			t.Fatalf("DeltaDepth after Extend-of-flat = %d, want 1", ext.DeltaDepth())
		}
	})
	t.Run("codec-identity", func(t *testing.T) {
		ce := chain.AppendBinary(nil)
		fe := flat.AppendBinary(nil)
		if len(ce) != len(fe) {
			t.Fatalf("encoding lengths diverge: chain %d, flat %d", len(ce), len(fe))
		}
		for i := range ce {
			if ce[i] != fe[i] {
				t.Fatalf("encodings diverge at byte %d", i)
			}
		}
	})
	t.Run("resident-bytes", func(t *testing.T) {
		cb, fb := chain.ResidentBytes(), flat.ResidentBytes()
		if fb <= 0 {
			t.Fatalf("flat ResidentBytes = %d, want > 0", fb)
		}
		if fb > cb {
			t.Fatalf("Flatten grew the estimate: chain %d, flat %d", cb, fb)
		}
		var nilc *core.Compiled
		if nilc.ResidentBytes() != 0 {
			t.Fatalf("nil ResidentBytes != 0")
		}
	})
	t.Run("estimate-grows-with-chain", func(t *testing.T) {
		// Each Extend link adds overlay maps and re-laid rows, so the
		// estimate must be monotone along a chain built from disjoint
		// deltas — the signal the server's byte threshold keys on.
		comp := core.Compile(nil, nil, nil)
		prev := comp.ResidentBytes()
		for i := 0; i < 5; i++ {
			comp = comp.Extend([]core.Pair{{From: fmt.Sprintf("g%d-a", i), To: fmt.Sprintf("g%d-b", i)}}, nil, nil)
			if b := comp.ResidentBytes(); b <= prev {
				t.Fatalf("step %d: estimate did not grow: %d <= %d", i, b, prev)
			} else {
				prev = b
			}
		}
	})
}
