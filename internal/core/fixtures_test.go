package core

import (
	"math/rand"
	"testing"
)

// fig1Query reconstructs the Figure 1 query graph of the paper from
// the properties its prose states: the magic graph over a, a1..a5 is
// regular; adding ⟨a2, a5⟩ makes it acyclic non-regular (a5 becomes
// multiple); adding ⟨a5, a2⟩ makes it cyclic (a2, a3, a5 recurring);
// the answer set is {b3, b5, b7, b8, b9}, with b3 reached only
// through a cyclic R-side path (the self-loop at b8).
func fig1Query() Query {
	return Query{
		L: []Pair{
			P("a", "a1"), P("a", "a2"), P("a1", "a3"),
			P("a2", "a3"), P("a3", "a5"), P("a1", "a4"),
		},
		E: []Pair{P("a1", "b3"), P("a5", "b8"), P("a4", "b6")},
		R: []Pair{
			P("b5", "b3"), // arc b3 -> b5 in G_R
			P("b8", "b8"), // self-loop at b8
			P("b9", "b8"),
			P("b7", "b9"),
			P("b3", "b7"),
			P("b4", "b6"),
			P("b2", "b1"), P("b1", "b2"), // unreachable extra R nodes
		},
		Source: "a",
	}
}

var fig1Answers = []string{"b3", "b5", "b7", "b8", "b9"}

// fig1Acyclic adds ⟨a2, a5⟩: a5 becomes multiple, graph stays acyclic.
func fig1Acyclic() Query {
	q := fig1Query()
	q.L = append(q.L, P("a2", "a5"))
	return q
}

// fig1Cyclic adds ⟨a5, a2⟩: a2, a3, a5 become recurring.
func fig1Cyclic() Query {
	q := fig1Query()
	q.L = append(q.L, P("a5", "a2"))
	return q
}

// fig2Parent is the reconstructed magic graph of Figure 2 over nodes
// a..l. It reproduces the paper's reduced sets for all four
// strategies and fourteen of the sixteen §7–§9 parameter values (see
// DESIGN.md: the two §9 hatted values printed in the paper are
// unattainable under its own reduced sets, so the reconstruction pins
// the values this graph actually has).
//
// Classification: single {a,b,c,d,e,f}, multiple {h,k},
// recurring {g,i,j,l}; i_x = 2.
func fig2Parent() []Pair {
	return []Pair{
		P("a", "b"), P("a", "c"), P("a", "d"),
		P("b", "e"), P("b", "f"), P("c", "f"),
		P("c", "h"), P("e", "h"), P("h", "k"),
		P("e", "g"), P("g", "i"), P("i", "g"),
		P("i", "j"), P("j", "l"),
	}
}

func fig2Query() Query { return SameGeneration(fig2Parent(), "a") }

// chainQuery is a same-generation instance over a simple chain of n
// arcs: the magic graph is regular.
func chainQuery(n int) Query {
	var parent []Pair
	for i := 0; i < n; i++ {
		parent = append(parent, P(nodeName(i), nodeName(i+1)))
	}
	return SameGeneration(parent, nodeName(0))
}

func nodeName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := ""
	for {
		name = string(letters[i%26]) + name
		i /= 26
		if i == 0 {
			return "n" + name
		}
	}
}

// randomQuery builds a random canonical query over small domains:
// independently random L, E, and R relations, so all magic-graph
// regimes (regular, multiple, cyclic) occur.
func randomQuery(rng *rand.Rand) Query {
	nL := 2 + rng.Intn(7)
	nR := 2 + rng.Intn(7)
	var q Query
	q.Source = lName(0)
	for i := 0; i < rng.Intn(3*nL); i++ {
		q.L = append(q.L, P(lName(rng.Intn(nL)), lName(rng.Intn(nL))))
	}
	for i := 0; i < 1+rng.Intn(nL); i++ {
		q.E = append(q.E, P(lName(rng.Intn(nL)), rName(rng.Intn(nR))))
	}
	for i := 0; i < rng.Intn(3*nR); i++ {
		q.R = append(q.R, P(rName(rng.Intn(nR)), rName(rng.Intn(nR))))
	}
	return q
}

// randomAcyclicQuery is randomQuery with L restricted to forward arcs,
// so the magic graph never has cycles and the counting method is safe.
func randomAcyclicQuery(rng *rand.Rand) Query {
	q := randomQuery(rng)
	var acyclic []Pair
	for _, p := range q.L {
		if p.From < p.To {
			acyclic = append(acyclic, p)
		}
	}
	q.L = acyclic
	return q
}

func lName(i int) string { return "x" + string(rune('0'+i)) }
func rName(i int) string { return "y" + string(rune('0'+i)) }

func equalAnswers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allMagicCountingSpecs enumerates the eight family members.
func allMagicCountingSpecs() []struct {
	Strategy Strategy
	Mode     Mode
} {
	var specs []struct {
		Strategy Strategy
		Mode     Mode
	}
	for _, s := range []Strategy{Basic, Single, Multiple, Recurring} {
		for _, m := range []Mode{Independent, Integrated} {
			specs = append(specs, struct {
				Strategy Strategy
				Mode     Mode
			}{s, m})
		}
	}
	return specs
}

func TestNodeNameIsInjectiveOverRange(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		n := nodeName(i)
		if seen[n] {
			t.Fatalf("nodeName collision at %d: %s", i, n)
		}
		seen[n] = true
	}
}
