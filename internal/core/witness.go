package core

import "fmt"

// Proof is provenance for one answer: the concrete path of Fact 2 —
// k arcs of L from the source to the crossing node, one E arc, and k
// arcs of R down to the answer.
type Proof struct {
	// LPath lists the L-nodes from the source to the crossing node
	// (length k+1).
	LPath []string
	// Crossing is the E arc used, from LPath's last node.
	Crossing Pair
	// RPath lists the R-nodes from the E target down to the answer
	// (length k+1).
	RPath []string
}

// K returns the path's half-length k.
func (p *Proof) K() int { return len(p.LPath) - 1 }

// String renders the proof as the paper draws its example paths.
func (p *Proof) String() string {
	return fmt.Sprintf("L:%v E:(%s,%s) R:%v", p.LPath, p.Crossing.From, p.Crossing.To, p.RPath)
}

// Witness returns a minimal-k proof that answer is in the query's
// answer set, or an error if it is not. It searches the product space
// (L-node, R-node) backward-forward: a state (x, y) at step k means
// the source reaches x in k L-steps and y reaches the answer in k
// R-steps; a state with an E arc x→y closes the proof. The search is
// BFS over at most n_L·n_R states, so it terminates even on cyclic
// databases.
func Witness(q Query, answer string) (*Proof, error) {
	in := build(q)
	var target int32 = -1
	for id, name := range in.c.rNames {
		if name == answer {
			target = int32(id)
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("core: %q does not occur in the R/E domain", answer)
	}
	// rUp is the inverse of the descent adjacency: rUp[b] = nodes one
	// R-step above b (i.e. c with descent arc c -> b).
	rUp := make([][]int32, in.nR)
	for c := 0; c < in.nR; c++ {
		for _, b := range in.rOut(int32(c)) {
			rUp[b] = append(rUp[b], int32(c))
		}
	}
	eSet := make(map[int64]bool)
	for x := 0; x < in.nL; x++ {
		for _, y := range in.eOut(int32(x)) {
			eSet[int64(x)<<32|int64(uint32(y))] = true
		}
	}
	type state struct{ x, y int32 }
	parent := map[state]state{}
	seen := map[state]bool{}
	start := state{in.src, target}
	seen[start] = true
	queue := []state{start}
	var goal *state
	for len(queue) > 0 && goal == nil {
		s := queue[0]
		queue = queue[1:]
		if eSet[int64(s.x)<<32|int64(uint32(s.y))] {
			g := s
			goal = &g
			break
		}
		for _, x1 := range in.lOut(s.x) {
			for _, y1 := range rUp[s.y] {
				n := state{x1, y1}
				if !seen[n] {
					seen[n] = true
					parent[n] = s
					queue = append(queue, n)
				}
			}
		}
	}
	if goal == nil {
		return nil, fmt.Errorf("core: %q is not an answer of the query", answer)
	}
	// Reconstruct the two paths from the goal back to the start.
	var lRev, rRev []string
	s := *goal
	for {
		lRev = append(lRev, in.lName(s.x))
		rRev = append(rRev, in.c.rNames[s.y])
		p, ok := parent[s]
		if !ok {
			break
		}
		s = p
	}
	proof := &Proof{Crossing: Pair{From: in.lName(goal.x), To: ""}}
	for i := len(lRev) - 1; i >= 0; i-- {
		proof.LPath = append(proof.LPath, lRev[i])
	}
	// The R path runs from the E target down to the answer: the goal
	// state holds the E target, the start state the answer.
	proof.RPath = append(proof.RPath, rRev...)
	// Identify the E arc used.
	for _, y := range in.eOut(goal.x) {
		if y == goal.y {
			proof.Crossing.To = in.c.rNames[y]
			break
		}
	}
	return proof, nil
}

// VerifyProof checks a proof against the database: every consecutive
// LPath pair must be an L fact, the crossing an E fact, and every
// consecutive RPath pair a reversed R fact (R(lower, upper)).
func VerifyProof(q Query, p *Proof) error {
	if len(p.LPath) != len(p.RPath) {
		return fmt.Errorf("core: proof paths have unequal length %d vs %d", len(p.LPath), len(p.RPath))
	}
	has := func(rel []Pair, from, to string) bool {
		for _, pr := range rel {
			if pr.From == from && pr.To == to {
				return true
			}
		}
		return false
	}
	if len(p.LPath) == 0 || p.LPath[0] != q.Source {
		return fmt.Errorf("core: proof does not start at the source")
	}
	for i := 0; i+1 < len(p.LPath); i++ {
		if !has(q.L, p.LPath[i], p.LPath[i+1]) {
			return fmt.Errorf("core: missing L fact (%s, %s)", p.LPath[i], p.LPath[i+1])
		}
	}
	if !has(q.E, p.Crossing.From, p.Crossing.To) {
		return fmt.Errorf("core: missing E fact (%s, %s)", p.Crossing.From, p.Crossing.To)
	}
	if p.Crossing.From != p.LPath[len(p.LPath)-1] || p.Crossing.To != p.RPath[0] {
		return fmt.Errorf("core: crossing arc does not join the two paths")
	}
	for i := 0; i+1 < len(p.RPath); i++ {
		// Descent step from RPath[i] to RPath[i+1] uses R(lower, upper).
		if !has(q.R, p.RPath[i+1], p.RPath[i]) {
			return fmt.Errorf("core: missing R fact (%s, %s)", p.RPath[i+1], p.RPath[i])
		}
	}
	return nil
}

// SolveWithReducedSets evaluates the query with caller-supplied
// reduced sets, bypassing Step 1. It exists to let tests and studies
// probe the exact boundary of Theorems 1 and 2: sets violating the
// conditions produce wrong answers, which CheckReducedSets predicts.
func SolveWithReducedSets(q Query, rs *ReducedSets, mode Mode) (*Result, error) {
	in := build(q)
	var answers *denseSet
	var iter int
	if mode == Integrated {
		answers, iter = in.solveIntegrated(rs)
	} else {
		answers, iter = in.solveIndependent(rs)
	}
	rm, rc := rs.counts()
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals: in.retrievals,
			Iterations: iter,
			RMSize:     rm,
			RCSize:     rc,
		},
	}, nil
}
