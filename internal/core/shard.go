package core

import (
	"sort"

	"magiccounting/internal/graph"
)

// This file is the region-sharding layer: CompileSharded partitions a
// database along the weakly connected components of its combined
// symbol graph (L and R arcs inside their own domains, E arcs
// bridging them) and compiles one independent artifact per shard. The
// partition is answer-preserving by construction: Fact 2's walks
// follow L, E, and R arcs only, so the region a query from source a
// can ever touch is contained in a's weak component, which lives
// whole inside one shard. Every query therefore routes to exactly one
// shard — smaller symbol tables, hotter caches — and maintenance is
// per-shard: an append delta-compiles only the shards it touches, an
// append that bridges regions merges the affected shards (and only
// them), and chain collapse runs shard by shard instead of forcing a
// whole-database Flatten.

// ShardOpts tunes CompileSharded.
type ShardOpts struct {
	// Shards is the target shard count K. Components are packed onto K
	// shards greedily, largest first. Values below 1 select 1.
	Shards int
}

// factRope is a chunked fact list: each Extend appends one chunk (an
// O(chunks) outer copy, never an O(shard) pair copy — the pair slices
// themselves are shared with the parent artifact), and readers
// materialize the flat form only when a rebuild or merge actually
// needs it.
type factRope [][]Pair

// flat materializes the rope. A single-chunk rope returns its chunk
// unchanged, so a freshly rebuilt shard materializes for free.
func (fr factRope) flat() []Pair {
	if len(fr) == 1 {
		return fr[0]
	}
	n := 0
	for _, c := range fr {
		n += len(c)
	}
	out := make([]Pair, 0, n)
	for _, c := range fr {
		out = append(out, c...)
	}
	return out
}

// appendChunk returns a rope covering base plus chunk without growing
// base's backing array in place (parents share ropes with children).
func appendChunk(base factRope, chunk []Pair) factRope {
	if len(chunk) == 0 {
		return base
	}
	out := make(factRope, 0, len(base)+1)
	out = append(out, base...)
	return append(out, chunk)
}

// shardChunkFold bounds a shard's total chunk count: past it the ropes
// collapse to single chunks, so the per-append outer copy stays O(1)
// amortized over a long append stream.
const shardChunkFold = 256

// shard is one region shard: the facts that landed in it (as chunked
// ropes, kept so a bridging append can merge or rebuild this shard
// without touching any other) plus the compiled artifact over exactly
// those facts.
type shard struct {
	l, e, r factRope
	nfacts  int
	comp    *Compiled
}

func (sh *shard) facts() int { return sh.nfacts }

// ShardedCompiled is a database compiled as K independent region
// shards behind a symbol->shard router. Like Compiled it is immutable
// once published and safe for any number of concurrent queries;
// Extend returns a new artifact sharing everything the delta does not
// touch. Generation follows the Compiled convention: zero from
// CompileSharded, stamped by the caller via SetGeneration (the
// per-shard artifacts keep their own internal tags and are not
// restamped — routing and staleness are decided at this level).
type ShardedCompiled struct {
	Generation uint64

	// shards[i] is slot i's shard. A slot vacated by a merge keeps an
	// empty placeholder (queries can no longer reach it — see redirect)
	// so slot indexes stay stable for routing and metrics.
	shards []*shard

	// routeL/routeR map each symbol name to its home slot; the overlay
	// chains hold symbols interned by Extend, append-only, exactly like
	// a Compiled's symbol overlays (a name is routed in exactly one
	// link, so there is no shadowing). redirect folds merges: a lookup
	// yields a slot, and redirect[slot] is the live shard that absorbed
	// it — merges re-point one array entry instead of rewriting every
	// symbol's route.
	routeL, routeR map[string]int32
	lOv, rOv       *symOv
	redirect       []int32
	// ovDepth counts overlay links; past routeFoldDepth an Extend folds
	// the chains into fresh base maps so lookups stay O(1) amortized.
	ovDepth int
	// ovOwnedL/ovOwnedR mark whether the head overlay link was created
	// by this artifact's own Extend (writable) or inherited from the
	// parent (shared read-only, so a fresh link must be prepended).
	ovOwnedL, ovOwnedR bool
}

// routeFoldDepth bounds the router overlay chains: each Extend adds at
// most one link per side, and a genuine lookup miss probes every link,
// so a long-running append stream folds the chain back into the base
// maps once it reaches this depth.
const routeFoldDepth = 64

// ShardExtendStats reports what one sharded Extend did: which live
// slots were touched (ascending, deduplicated), how many of those
// were rolled with a delta Extend versus cold-rebuilt in place, and
// how many shard merges a bridging delta forced (a merge of n shards
// counts n-1).
type ShardExtendStats struct {
	Touched       []int
	DeltaExtended int
	Rebuilt       int
	Merges        int
}

// CompileSharded interns the database's symbol graph, decomposes it
// into weakly connected components, packs the components onto K
// shards (largest fact-count first onto the emptiest shard, ties to
// the lowest slot — deterministic in the input order), and compiles
// each shard independently. With K=1 it degenerates to a single shard
// holding the whole database.
func CompileSharded(L, E, R []Pair, opts ShardOpts) *ShardedCompiled {
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	// Intern the two symbol domains, in the same relation order a cold
	// Compile uses so component numbering is deterministic.
	lid := make(map[string]int32, len(L))
	rid := make(map[string]int32, len(R))
	var lNames, rNames []string
	internL := func(name string) int32 {
		if id, ok := lid[name]; ok {
			return id
		}
		id := int32(len(lNames))
		lid[name] = id
		lNames = append(lNames, name)
		return id
	}
	internR := func(name string) int32 {
		if id, ok := rid[name]; ok {
			return id
		}
		id := int32(len(rNames))
		rid[name] = id
		rNames = append(rNames, name)
		return id
	}
	for _, p := range L {
		internL(p.From)
		internL(p.To)
	}
	for _, p := range E {
		internL(p.From)
		internR(p.To)
	}
	for _, p := range R {
		internR(p.From)
		internR(p.To)
	}
	nL := len(lNames)

	// The combined symbol graph: L-nodes 0..nL-1, R-nodes nL.., every
	// fact one arc. Weak components of this graph are the regions.
	g := graph.NewDigraph(nL + len(rNames))
	for _, p := range L {
		g.AddArc(int(lid[p.From]), int(lid[p.To]))
	}
	for _, p := range E {
		g.AddArc(int(lid[p.From]), nL+int(rid[p.To]))
	}
	for _, p := range R {
		g.AddArc(nL+int(rid[p.From]), nL+int(rid[p.To]))
	}
	wcc := g.WeaklyConnectedComponents()

	// Pack components onto K slots by fact count, largest first onto
	// the currently-lightest slot. Both endpoints of a fact share a
	// component, so counting by the From endpoint counts each fact once.
	compFacts := make([]int, wcc.NumComps)
	for _, p := range L {
		compFacts[wcc.Comp[lid[p.From]]]++
	}
	for _, p := range E {
		compFacts[wcc.Comp[lid[p.From]]]++
	}
	for _, p := range R {
		compFacts[wcc.Comp[nL+int(rid[p.From])]]++
	}
	order := make([]int, wcc.NumComps)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return compFacts[order[a]] > compFacts[order[b]]
	})
	slotFacts := make([]int, k)
	compSlot := make([]int32, wcc.NumComps)
	for _, c := range order {
		best := 0
		for s := 1; s < k; s++ {
			if slotFacts[s] < slotFacts[best] {
				best = s
			}
		}
		compSlot[c] = int32(best)
		slotFacts[best] += compFacts[c]
	}

	sc := &ShardedCompiled{
		shards:   make([]*shard, k),
		routeL:   make(map[string]int32, nL),
		routeR:   make(map[string]int32, len(rNames)),
		redirect: make([]int32, k),
	}
	for id, name := range lNames {
		sc.routeL[name] = compSlot[wcc.Comp[id]]
	}
	for id, name := range rNames {
		sc.routeR[name] = compSlot[wcc.Comp[nL+id]]
	}
	// Distribute facts in relation order, so each shard's Compile sees
	// its facts in the same relative order the monolithic build would.
	ls, es, rs := make([][]Pair, k), make([][]Pair, k), make([][]Pair, k)
	for _, p := range L {
		slot := compSlot[wcc.Comp[lid[p.From]]]
		ls[slot] = append(ls[slot], p)
	}
	for _, p := range E {
		slot := compSlot[wcc.Comp[lid[p.From]]]
		es[slot] = append(es[slot], p)
	}
	for _, p := range R {
		slot := compSlot[wcc.Comp[nL+int(rid[p.From])]]
		rs[slot] = append(rs[slot], p)
	}
	for i := range sc.shards {
		sc.shards[i] = &shard{
			l:      factRope{ls[i]},
			e:      factRope{es[i]},
			r:      factRope{rs[i]},
			nfacts: len(ls[i]) + len(es[i]) + len(rs[i]),
			comp:   Compile(ls[i], es[i], rs[i]),
		}
		sc.redirect[i] = int32(i)
	}
	return sc
}

// SetGeneration stamps the artifact's generation. The per-shard
// artifacts are not restamped: staleness is decided at this level,
// and their internal tags only order their own Extend chains.
func (sc *ShardedCompiled) SetGeneration(gen uint64) { sc.Generation = gen }

// ShardOf returns the live slot that answers queries from source. A
// source absent from every relation routes to slot 0: it binds as a
// virtual isolated node, and an isolated node's answers and stats are
// identical on every shard.
func (sc *ShardedCompiled) ShardOf(source string) int {
	if slot, ok := lookupSym(sc.routeL, sc.lOv, source); ok {
		return int(sc.redirect[slot])
	}
	return 0
}

// Solve answers ?- P(source, Y) on the source's shard. Answers and
// Stats are byte-identical to solving the monolithic Compiled: the
// evaluation can only touch source's weak component, which the shard
// contains whole.
func (sc *ShardedCompiled) Solve(source string, strategy Strategy, mode Mode, opts Options) (*Result, error) {
	return sc.shards[sc.ShardOf(source)].comp.Solve(source, strategy, mode, opts)
}

// ChooseMethod picks a method for one source per its shard's magic
// graph; the classification is confined to the source-reachable
// region, so the selection matches the monolithic artifact's.
func (sc *ShardedCompiled) ChooseMethod(source string) Selection {
	return sc.shards[sc.ShardOf(source)].comp.ChooseMethod(source)
}

// SolveAuto evaluates one source with the method ChooseMethod selects.
func (sc *ShardedCompiled) SolveAuto(source string, opts Options) (*Result, Selection, error) {
	return sc.shards[sc.ShardOf(source)].comp.SolveAuto(source, opts)
}

// NumShards reports the slot count K (vacated slots included).
func (sc *ShardedCompiled) NumShards() int { return len(sc.shards) }

// LiveSlots returns the slots that still own a shard (ascending):
// slot i is live while redirect[i] == i, and loses that the moment a
// merge absorbs it.
func (sc *ShardedCompiled) LiveSlots() []int {
	out := make([]int, 0, len(sc.shards))
	for i, r := range sc.redirect {
		if int(r) == i {
			out = append(out, i)
		}
	}
	return out
}

// ShardArtifact returns slot i's compiled artifact (nil only for a
// vacated slot's placeholder before any query, which callers never
// route to).
func (sc *ShardedCompiled) ShardArtifact(i int) *Compiled { return sc.shards[i].comp }

// SetShardArtifact swaps slot i's artifact, for a retention policy
// collapsing one shard's Extend chain (c must compile the same facts
// — typically ShardArtifact(i).Flatten()). Only safe before the
// ShardedCompiled is published: afterwards it is shared read-only.
func (sc *ShardedCompiled) SetShardArtifact(i int, c *Compiled) {
	sh := *sc.shards[i]
	sh.comp = c
	sc.shards[i] = &sh
}

// ShardFacts reports slot i's fact count.
func (sc *ShardedCompiled) ShardFacts(i int) int { return sc.shards[i].facts() }

// MaxDeltaDepth reports the deepest per-shard Extend chain.
func (sc *ShardedCompiled) MaxDeltaDepth() int {
	depth := 0
	for _, i := range sc.LiveSlots() {
		if d := sc.shards[i].comp.DeltaDepth(); d > depth {
			depth = d
		}
	}
	return depth
}

// ResidentBytes estimates the storage the sharded artifact keeps
// reachable: every live shard's compiled estimate, the per-shard fact
// slices (pair headers; the strings are shared with the caller's
// database), and the router tables.
func (sc *ShardedCompiled) ResidentBytes() int64 {
	var b int64
	for _, i := range sc.LiveSlots() {
		sh := sc.shards[i]
		b += sh.comp.ResidentBytes()
		b += int64(sh.facts()) * 2 * stringHeaderBytes
		b += int64(len(sh.l)+len(sh.e)+len(sh.r)) * sliceHeaderBytes
	}
	b += int64(len(sc.routeL)+len(sc.routeR)) * mapEntryBytes
	for _, ov := range []*symOv{sc.lOv, sc.rOv} {
		for ; ov != nil; ov = ov.prev {
			b += int64(len(ov.m))*mapEntryBytes + sliceHeaderBytes
		}
	}
	b += int64(len(sc.redirect)) * 4
	return b
}

// ShardInfo is one live shard's summary, for stats surfaces.
type ShardInfo struct {
	Slot          int   `json:"slot"`
	Facts         int   `json:"facts"`
	LNodes        int   `json:"l_nodes"`
	RNodes        int   `json:"r_nodes"`
	DeltaDepth    int   `json:"delta_depth"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// ShardInfos summarizes the live shards in slot order.
func (sc *ShardedCompiled) ShardInfos() []ShardInfo {
	var out []ShardInfo
	for _, i := range sc.LiveSlots() {
		sh := sc.shards[i]
		out = append(out, ShardInfo{
			Slot:          i,
			Facts:         sh.facts(),
			LNodes:        sh.comp.NumL(),
			RNodes:        sh.comp.NumR(),
			DeltaDepth:    sh.comp.DeltaDepth(),
			ResidentBytes: sh.comp.ResidentBytes(),
		})
	}
	return out
}

// Extend returns a new sharded artifact covering the parent's facts
// plus the delta, touching only the shards the delta reaches. The
// parent is not modified and stays fully usable.
//
// The delta is grouped by connectivity: a union-find over (live
// shards + fresh symbols) joins each pair's endpoints, so every group
// lands whole in one shard and the partition invariant (no fact's
// endpoints ever split across shards) is preserved. Per group:
//
//   - one live shard touched, delta within maxFrac of the resulting
//     shard: the shard's artifact rolls forward with Compiled.Extend —
//     cost O(shard), not O(database), which is the point of sharding;
//   - one live shard touched, delta too large (a bulk load into one
//     region): the shard alone is cold-rebuilt, scoped to its facts;
//   - several live shards touched (the delta bridges regions): the
//     members merge into the lowest slot — their facts concatenate in
//     slot order, the union compiles cold, and the vacated slots
//     redirect to the survivor;
//   - no live shard touched (an entirely fresh region): the group
//     joins the live shard currently holding the fewest facts.
//
// maxFrac <= 0 disables the delta path (touched shards always rebuild
// cold, still scoped to the shard). Generation follows the Compiled
// convention: copied from the parent, restamped by the caller.
func (sc *ShardedCompiled) Extend(dL, dE, dR []Pair, maxFrac float64) (*ShardedCompiled, ShardExtendStats) {
	child := &ShardedCompiled{
		Generation: sc.Generation,
		shards:     append([]*shard(nil), sc.shards...),
		routeL:     sc.routeL,
		routeR:     sc.routeR,
		lOv:        sc.lOv,
		rOv:        sc.rOv,
		redirect:   append([]int32(nil), sc.redirect...),
		ovDepth:    sc.ovDepth,
	}
	var stats ShardExtendStats
	if len(dL)+len(dE)+len(dR) == 0 {
		return child, stats
	}

	// Union-find over live slots (nodes 0..K-1; only live ones are ever
	// resolved to) plus one node per fresh symbol, allocated on demand.
	k := len(child.shards)
	uf := graph.NewUnionFind(k + 2*(len(dL)+len(dE)+len(dR)))
	nextNode := k
	freshL := make(map[string]int)
	freshR := make(map[string]int)
	var freshLOrder, freshROrder []string
	resolveL := func(name string) int {
		if slot, ok := lookupSym(child.routeL, child.lOv, name); ok {
			return int(child.redirect[slot])
		}
		if n, ok := freshL[name]; ok {
			return n
		}
		n := nextNode
		nextNode++
		freshL[name] = n
		freshLOrder = append(freshLOrder, name)
		return n
	}
	resolveR := func(name string) int {
		if slot, ok := lookupSym(child.routeR, child.rOv, name); ok {
			return int(child.redirect[slot])
		}
		if n, ok := freshR[name]; ok {
			return n
		}
		n := nextNode
		nextNode++
		freshR[name] = n
		freshROrder = append(freshROrder, name)
		return n
	}
	for _, p := range dL {
		uf.Union(resolveL(p.From), resolveL(p.To))
	}
	for _, p := range dE {
		uf.Union(resolveL(p.From), resolveR(p.To))
	}
	for _, p := range dR {
		uf.Union(resolveR(p.From), resolveR(p.To))
	}

	// Partition the delta by group, groups ordered by first occurrence
	// in the delta (deterministic in the input).
	type group struct {
		dl, de, dr []Pair
		freshL     []string
		freshR     []string
	}
	groups := make(map[int]*group)
	var groupOrder []int
	groupFor := func(node int) *group {
		root := uf.Find(node)
		gp, ok := groups[root]
		if !ok {
			gp = &group{}
			groups[root] = gp
			groupOrder = append(groupOrder, root)
		}
		return gp
	}
	for _, p := range dL {
		gp := groupFor(resolveL(p.From))
		gp.dl = append(gp.dl, p)
	}
	for _, p := range dE {
		gp := groupFor(resolveL(p.From))
		gp.de = append(gp.de, p)
	}
	for _, p := range dR {
		gp := groupFor(resolveR(p.From))
		gp.dr = append(gp.dr, p)
	}
	for _, name := range freshLOrder {
		groupFor(freshL[name]).freshL = append(groupFor(freshL[name]).freshL, name)
	}
	for _, name := range freshROrder {
		groupFor(freshR[name]).freshR = append(groupFor(freshR[name]).freshR, name)
	}
	// Live member slots per group root, ascending by construction.
	members := make(map[int][]int)
	for i := 0; i < k; i++ {
		if int(child.redirect[i]) != i {
			continue
		}
		root := uf.Find(i)
		if _, ok := groups[root]; ok {
			members[root] = append(members[root], i)
		}
	}

	touched := make(map[int]bool)
	for _, root := range groupOrder {
		gp := groups[root]
		live := members[root]
		var target int
		switch {
		case len(live) == 0:
			// An entirely fresh region: join the lightest live shard.
			target = -1
			for _, i := range child.LiveSlots() {
				if target < 0 || child.shards[i].facts() < child.shards[target].facts() {
					target = i
				}
			}
			child.extendShard(target, gp.dl, gp.de, gp.dr, maxFrac, &stats)
		case len(live) == 1:
			target = live[0]
			child.extendShard(target, gp.dl, gp.de, gp.dr, maxFrac, &stats)
		default:
			// Bridging delta: merge every member into the lowest slot.
			target = live[0]
			merged := &shard{}
			for _, m := range live {
				sh := child.shards[m]
				merged.l = append(merged.l, sh.l...)
				merged.e = append(merged.e, sh.e...)
				merged.r = append(merged.r, sh.r...)
				merged.nfacts += sh.nfacts
			}
			if len(gp.dl) > 0 {
				merged.l = append(merged.l, gp.dl)
			}
			if len(gp.de) > 0 {
				merged.e = append(merged.e, gp.de)
			}
			if len(gp.dr) > 0 {
				merged.r = append(merged.r, gp.dr)
			}
			merged.nfacts += len(gp.dl) + len(gp.de) + len(gp.dr)
			fl, fe, fr := merged.l.flat(), merged.e.flat(), merged.r.flat()
			merged.comp = Compile(fl, fe, fr)
			merged.l, merged.e, merged.r = factRope{fl}, factRope{fe}, factRope{fr}
			child.shards[target] = merged
			for _, m := range live[1:] {
				child.shards[m] = &shard{comp: Compile(nil, nil, nil)}
				// Re-point every slot that resolved to m (m itself plus
				// any slot a previous merge had already folded into it).
				for s, r := range child.redirect {
					if int(r) == m {
						child.redirect[s] = int32(target)
					}
				}
			}
			stats.Merges += len(live) - 1
			stats.Rebuilt++
		}
		touched[target] = true
		child.routeFresh(gp.freshL, gp.freshR, int32(target))
	}

	for i := range touched {
		stats.Touched = append(stats.Touched, i)
	}
	sort.Ints(stats.Touched)
	child.maybeFoldRoutes()
	return child, stats
}

// extendShard rolls one slot forward by its group's delta: a delta
// Extend when it fits under maxFrac, a scoped cold rebuild otherwise.
func (sc *ShardedCompiled) extendShard(slot int, dl, de, dr []Pair, maxFrac float64, stats *ShardExtendStats) {
	old := sc.shards[slot]
	added := len(dl) + len(de) + len(dr)
	next := &shard{
		l:      appendChunk(old.l, dl),
		e:      appendChunk(old.e, de),
		r:      appendChunk(old.r, dr),
		nfacts: old.nfacts + added,
	}
	frac := float64(added) / float64(next.nfacts)
	if maxFrac > 0 && frac <= maxFrac {
		next.comp = old.comp.Extend(dl, de, dr)
		stats.DeltaExtended++
	} else {
		fl, fe, fr := next.l.flat(), next.e.flat(), next.r.flat()
		next.comp = Compile(fl, fe, fr)
		next.l, next.e, next.r = factRope{fl}, factRope{fe}, factRope{fr}
		stats.Rebuilt++
	}
	if len(next.l)+len(next.e)+len(next.r) > shardChunkFold {
		next.l = factRope{next.l.flat()}
		next.e = factRope{next.e.flat()}
		next.r = factRope{next.r.flat()}
	}
	sc.shards[slot] = next
}

// routeFresh routes a group's fresh symbols to their slot via the
// overlay chains, prepending at most one new link per Extend.
func (sc *ShardedCompiled) routeFresh(lNames, rNames []string, slot int32) {
	if len(lNames) > 0 {
		if sc.lOv == nil || !sc.ovOwnedL {
			sc.lOv = &symOv{prev: sc.lOv, m: make(map[string]int32, len(lNames))}
			sc.ovOwnedL = true
			sc.ovDepth++
		}
		for _, name := range lNames {
			sc.lOv.m[name] = slot
		}
	}
	if len(rNames) > 0 {
		if sc.rOv == nil || !sc.ovOwnedR {
			sc.rOv = &symOv{prev: sc.rOv, m: make(map[string]int32, len(rNames))}
			sc.ovOwnedR = true
			sc.ovDepth++
		}
		for _, name := range rNames {
			sc.rOv.m[name] = slot
		}
	}
}

// maybeFoldRoutes folds over-long router overlay chains into fresh
// base maps — O(symbols), amortized across the routeFoldDepth appends
// that grew the chain.
func (sc *ShardedCompiled) maybeFoldRoutes() {
	if sc.ovDepth <= routeFoldDepth {
		return
	}
	fold := func(base map[string]int32, ov *symOv) map[string]int32 {
		out := make(map[string]int32, len(base))
		for name, slot := range base {
			out[name] = slot
		}
		for ; ov != nil; ov = ov.prev {
			for name, slot := range ov.m {
				out[name] = slot
			}
		}
		return out
	}
	sc.routeL = fold(sc.routeL, sc.lOv)
	sc.routeR = fold(sc.routeR, sc.rOv)
	sc.lOv, sc.rOv = nil, nil
	sc.ovDepth = 0
}

