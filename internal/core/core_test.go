package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFig1NaiveAnswer(t *testing.T) {
	res, err := fig1Query().SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, fig1Answers) {
		t.Fatalf("naive answers = %v, want %v", res.Answers, fig1Answers)
	}
}

func TestFig1CountingMatchesPaperAnswer(t *testing.T) {
	res, err := fig1Query().SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, fig1Answers) {
		t.Fatalf("counting answers = %v, want %v", res.Answers, fig1Answers)
	}
}

func TestFig1MagicMatchesPaperAnswer(t *testing.T) {
	res, err := fig1Query().SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, fig1Answers) {
		t.Fatalf("magic answers = %v, want %v", res.Answers, fig1Answers)
	}
	if res.Stats.MagicSetSize != 6 { // a, a1..a5
		t.Fatalf("|MS| = %d, want 6", res.Stats.MagicSetSize)
	}
}

func TestFig1RegimeTransitions(t *testing.T) {
	base := fig1Query().Params()
	if !base.Regular || base.Cyclic {
		t.Fatalf("base Figure 1 should be regular: %+v", base)
	}
	acyc := fig1Acyclic().Params()
	if acyc.Regular || acyc.Cyclic {
		t.Fatalf("⟨a2,a5⟩ should give acyclic non-regular: %+v", acyc)
	}
	cyc := fig1Cyclic().Params()
	if !cyc.Cyclic {
		t.Fatalf("⟨a5,a2⟩ should give cyclic: %+v", cyc)
	}
}

func TestFig1AnswerStableAcrossRegimes(t *testing.T) {
	// The added magic-graph arcs create no new answers in this
	// instance, so all safe methods must agree across all three
	// regimes.
	for _, q := range []Query{fig1Query(), fig1Acyclic(), fig1Cyclic()} {
		res, err := q.SolveMagic()
		if err != nil {
			t.Fatal(err)
		}
		if !equalAnswers(res.Answers, fig1Answers) {
			t.Fatalf("magic answers = %v, want %v", res.Answers, fig1Answers)
		}
	}
}

func TestFig1CyclicCountingUnsafe(t *testing.T) {
	_, err := fig1Cyclic().SolveCounting()
	if !errors.Is(err, ErrUnsafe) {
		t.Fatalf("err = %v, want ErrUnsafe", err)
	}
}

func TestFig1AcyclicCountingStillSafe(t *testing.T) {
	res, err := fig1Acyclic().SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, fig1Answers) {
		t.Fatalf("counting answers = %v, want %v", res.Answers, fig1Answers)
	}
}

func TestFig1AllMagicCountingMethodsAllRegimes(t *testing.T) {
	for _, q := range []Query{fig1Query(), fig1Acyclic(), fig1Cyclic()} {
		for _, spec := range allMagicCountingSpecs() {
			res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
			if err != nil {
				t.Fatalf("%v/%v: %v", spec.Strategy, spec.Mode, err)
			}
			if !equalAnswers(res.Answers, fig1Answers) {
				t.Fatalf("%v/%v answers = %v, want %v",
					spec.Strategy, spec.Mode, res.Answers, fig1Answers)
			}
		}
	}
}

// Figure 2: the paper lists the reduced sets every strategy must
// produce on this magic graph (§4 d, §7, §8, §9 examples).
func TestFig2ReducedSetsMatchPaper(t *testing.T) {
	q := fig2Query()
	cases := []struct {
		strategy Strategy
		wantRM   []string
		wantRC   []string // RC node values (without indices)
	}{
		{Basic, []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}, nil},
		{Single, []string{"e", "f", "g", "h", "i", "j", "k", "l"}, []string{"a", "b", "c", "d"}},
		{Multiple, []string{"g", "h", "i", "j", "k", "l"}, []string{"a", "b", "c", "d", "e", "f"}},
		{Recurring, []string{"g", "i", "j", "l"}, []string{"a", "b", "c", "d", "e", "f", "h", "k"}},
	}
	for _, c := range cases {
		rs, names, err := q.ReducedSetsFor(c.strategy, Independent, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var gotRM []string
		for v, in := range rs.RM {
			if in {
				gotRM = append(gotRM, names[v])
			}
		}
		sortStrings(gotRM)
		if !equalAnswers(gotRM, c.wantRM) {
			t.Errorf("%v RM = %v, want %v", c.strategy, gotRM, c.wantRM)
		}
		rcSet := map[string]bool{}
		for j := range rs.RC.levels {
			for _, v := range rs.RC.at(j) {
				rcSet[names[v]] = true
			}
		}
		var gotRC []string
		for n := range rcSet {
			gotRC = append(gotRC, n)
		}
		sortStrings(gotRC)
		if !equalAnswers(gotRC, c.wantRC) {
			t.Errorf("%v RC = %v, want %v", c.strategy, gotRC, c.wantRC)
		}
	}
}

func TestFig2RecurringSCCMatchesNaiveStep1(t *testing.T) {
	q := fig2Query()
	naive, names, err := q.ReducedSetsFor(Recurring, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scc, _, err := q.ReducedSetsFor(Recurring, Independent, Options{SCCStep1: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range names {
		if naive.RM[v] != scc.RM[v] {
			t.Fatalf("RM disagreement at %s", names[v])
		}
	}
	if naive.RC.pairs != scc.RC.pairs {
		t.Fatalf("RC pairs: naive %d, scc %d", naive.RC.pairs, scc.RC.pairs)
	}
}

// Figure 2 graph parameters, §7–§9. Fourteen of the sixteen published
// values; the two §9 hatted values are pinned to the reconstruction
// (see fixtures_test.go).
func TestFig2Params(t *testing.T) {
	p := fig2Query().Params()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"NL", p.NL, 12}, {"ML", p.ML, 14},
		{"IX", p.IX, 2},
		{"NX", p.NX, 4}, {"MX", p.MX, 3},
		{"NJhat", p.NJhat, 1}, {"MJhat", p.MJhat, 1},
		{"NS", p.NS, 6}, {"MS", p.MS, 6},
		{"NIhat", p.NIhat, 2}, {"MIhat", p.MIhat, 3},
		{"NM", p.NM, 8}, {"MM", p.MM, 9},
		{"NMhat", p.NMhat, 5}, {"MMhat", p.MMhat, 7},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if p.Regular || !p.Cyclic {
		t.Errorf("Regular=%v Cyclic=%v, want false/true", p.Regular, p.Cyclic)
	}
}

func TestFig2AllMethodsAgreeWithNaive(t *testing.T) {
	q := fig2Query()
	want, err := q.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Answers) == 0 {
		t.Fatal("fixture should have answers")
	}
	res, err := q.SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, want.Answers) {
		t.Fatalf("magic = %v, want %v", res.Answers, want.Answers)
	}
	for _, spec := range allMagicCountingSpecs() {
		res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
		if err != nil {
			t.Fatalf("%v/%v: %v", spec.Strategy, spec.Mode, err)
		}
		if !equalAnswers(res.Answers, want.Answers) {
			t.Fatalf("%v/%v = %v, want %v", spec.Strategy, spec.Mode, res.Answers, want.Answers)
		}
	}
	if _, err := q.SolveCounting(); !errors.Is(err, ErrUnsafe) {
		t.Fatal("counting should be unsafe on Figure 2 (cyclic)")
	}
	cyc, err := q.SolveCountingCyclic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(cyc.Answers, want.Answers) {
		t.Fatalf("generalized counting = %v, want %v", cyc.Answers, want.Answers)
	}
}

func TestChainCountingBeatsMagic(t *testing.T) {
	q := chainQuery(60)
	c, err := q.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(c.Answers, m.Answers) {
		t.Fatal("counting and magic disagree on chain")
	}
	if c.Stats.Retrievals >= m.Stats.Retrievals {
		t.Fatalf("counting (%d) should beat magic (%d) on a regular chain",
			c.Stats.Retrievals, m.Stats.Retrievals)
	}
}

func TestChainMagicCountingEqualsCounting(t *testing.T) {
	// On regular graphs every magic counting method degenerates to the
	// counting method: RM is empty, so the cost is within Step 1
	// overhead of pure counting.
	q := chainQuery(40)
	c, err := q.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range allMagicCountingSpecs() {
		res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if !equalAnswers(res.Answers, c.Answers) {
			t.Fatalf("%v/%v disagrees with counting", spec.Strategy, spec.Mode)
		}
		if res.Stats.RMSize != 0 {
			t.Fatalf("%v/%v: RM should be empty on a regular graph", spec.Strategy, spec.Mode)
		}
		if !res.Stats.Regular {
			t.Fatalf("%v/%v: regular flag not set", spec.Strategy, spec.Mode)
		}
	}
}

func TestSameGenerationBuildsIdentityExit(t *testing.T) {
	q := SameGeneration([]Pair{P("p", "c1"), P("p", "c2")}, "p")
	res, err := q.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	// p is of the same generation as itself only (children are one
	// level down from p, not reachable at p's own level).
	if !equalAnswers(res.Answers, []string{"p"}) {
		t.Fatalf("answers = %v", res.Answers)
	}
}

func TestSameGenerationSiblings(t *testing.T) {
	// Two children of the same parent are of the same generation.
	q := SameGeneration([]Pair{P("c1", "p"), P("c2", "p")}, "c1")
	res, err := q.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, []string{"c1", "c2"}) {
		t.Fatalf("answers = %v", res.Answers)
	}
}

func TestSourceNotInDatabase(t *testing.T) {
	q := Query{
		L:      []Pair{P("x", "y")},
		E:      []Pair{P("x", "r")},
		R:      nil,
		Source: "orphan",
	}
	for _, solve := range []func() (*Result, error){
		q.SolveCounting, q.SolveMagic, q.SolveNaive,
	} {
		res, err := solve()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != 0 {
			t.Fatalf("answers = %v, want none", res.Answers)
		}
	}
}

func TestExitArcOutsideRDomain(t *testing.T) {
	// E reaches a constant that never occurs in R: still an answer.
	q := Query{
		L:      []Pair{P("a", "b")},
		E:      []Pair{P("a", "ghost")},
		R:      nil,
		Source: "a",
	}
	res, err := q.SolveMagic()
	if err != nil {
		t.Fatal(err)
	}
	if !equalAnswers(res.Answers, []string{"ghost"}) {
		t.Fatalf("answers = %v", res.Answers)
	}
	for _, spec := range allMagicCountingSpecs() {
		res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if !equalAnswers(res.Answers, []string{"ghost"}) {
			t.Fatalf("%v/%v answers = %v", spec.Strategy, spec.Mode, res.Answers)
		}
	}
}

func TestSelfLoopAtSource(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "a"), P("a", "b")}, "a")
	if _, err := q.SolveCounting(); !errors.Is(err, ErrUnsafe) {
		t.Fatal("self-loop should make counting unsafe")
	}
	want, err := q.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range allMagicCountingSpecs() {
		res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if !equalAnswers(res.Answers, want.Answers) {
			t.Fatalf("%v/%v = %v, want %v", spec.Strategy, spec.Mode, res.Answers, want.Answers)
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	q := Query{Source: "a"}
	res, err := q.SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %v", res.Answers)
	}
	res, err = q.SolveMagicCounting(Recurring, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %v", res.Answers)
	}
}

// The central correctness property: on arbitrary random instances,
// every safe method agrees with naive evaluation.
func TestAllMethodsMatchNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		want, err := q.SolveNaive()
		if err != nil {
			return false
		}
		if res, err := q.SolveMagic(); err != nil || !equalAnswers(res.Answers, want.Answers) {
			t.Logf("seed %d: magic mismatch: %v", seed, err)
			return false
		}
		if res, err := q.SolveCountingCyclic(); err != nil || !equalAnswers(res.Answers, want.Answers) {
			t.Logf("seed %d: generalized counting mismatch: %v", seed, err)
			return false
		}
		for _, spec := range allMagicCountingSpecs() {
			res, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
			if err != nil || !equalAnswers(res.Answers, want.Answers) {
				t.Logf("seed %d: %v/%v mismatch: got %v want %v err %v",
					seed, spec.Strategy, spec.Mode, res, want.Answers, err)
				return false
			}
		}
		// The SCC step 1 variant must agree too.
		res, err := q.SolveMagicCountingOpts(Recurring, Integrated, Options{SCCStep1: true})
		if err != nil || !equalAnswers(res.Answers, want.Answers) {
			t.Logf("seed %d: recurring-scc mismatch: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// On acyclic instances the counting method is safe and must agree.
func TestCountingMatchesNaiveOnAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomAcyclicQuery(rng)
		want, err := q.SolveNaive()
		if err != nil {
			return false
		}
		res, err := q.SolveCounting()
		if err != nil {
			t.Logf("seed %d: counting unsafe on acyclic graph: %v", seed, err)
			return false
		}
		return equalAnswers(res.Answers, want.Answers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Step 1 outputs always satisfy the Theorem 1/2 conditions and the
// successor-closure invariant the integrated evaluation needs.
func TestReducedSetConditionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		for _, spec := range allMagicCountingSpecs() {
			for _, opts := range []Options{{}, {SCCStep1: true}} {
				if opts.SCCStep1 && spec.Strategy != Recurring {
					continue
				}
				rs, _, err := q.ReducedSetsFor(spec.Strategy, spec.Mode, opts)
				if err != nil {
					return false
				}
				if err := CheckReducedSets(q, rs, spec.Mode); err != nil {
					t.Logf("seed %d %v/%v: %v", seed, spec.Strategy, spec.Mode, err)
					return false
				}
				if err := RMClosedUnderSuccessors(q, rs); err != nil {
					t.Logf("seed %d %v/%v: %v", seed, spec.Strategy, spec.Mode, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Violating the theorem conditions must be detected by the checker.
func TestCheckReducedSetsDetectsViolations(t *testing.T) {
	q := fig2Query()
	rs, names, err := q.ReducedSetsFor(Multiple, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a node from RM entirely: condition (a).
	for v := range rs.RM {
		if rs.RM[v] {
			rs.RM[v] = false
			break
		}
	}
	if err := CheckReducedSets(q, rs, Independent); err == nil {
		t.Fatal("condition (a) violation not detected")
	}
	// Remove one index of a multiple node from the recurring RC:
	// condition (b).
	rs2, _, err := q.ReducedSetsFor(Recurring, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hID int32 = -1
	for v, n := range names {
		if n == "h" {
			hID = int32(v)
		}
	}
	if hID < 0 {
		t.Fatal("fixture node h missing")
	}
	for j := range rs2.RC.levels {
		if rs2.RC.remove(j, hID) {
			break
		}
	}
	if err := CheckReducedSets(q, rs2, Independent); err == nil {
		t.Fatal("condition (b) violation not detected")
	}
	// Missing (0, a): condition (c), integrated only.
	rs3, _, err := q.ReducedSetsFor(Basic, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReducedSets(q, rs3, Integrated); err == nil {
		t.Fatal("condition (c) violation not detected")
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := fig2Query().SolveMagicCounting(Multiple, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Retrievals == 0 || s.Iterations == 0 || s.MagicSetSize != 12 ||
		s.RMSize != 6 || s.RCSize != 6 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStrategyModeStrings(t *testing.T) {
	if Basic.String() != "basic" || Single.String() != "single" ||
		Multiple.String() != "multiple" || Recurring.String() != "recurring" {
		t.Fatal("Strategy.String wrong")
	}
	if Independent.String() != "independent" || Integrated.String() != "integrated" {
		t.Fatal("Mode.String wrong")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}

func TestUnknownStrategyError(t *testing.T) {
	if _, err := fig1Query().SolveMagicCounting(Strategy(99), Independent); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if _, _, err := fig1Query().ReducedSetsFor(Strategy(99), Independent, Options{}); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func TestResultString(t *testing.T) {
	res, err := chainQuery(3).SolveCounting()
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty Result.String")
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
