package core

import "magiccounting/internal/obs"

// traceRoundCap bounds the per-round child spans one fixpoint phase
// emits: a deep recursion would otherwise turn the trace into one
// span per level. Rounds past the cap merge into a single tail span,
// which keeps the meter-delta accounting exact — the tail span's
// retrievals are simply the remaining rounds' total.
const traceRoundCap = 64

// roundTrace emits the per-round spans of one fixpoint loop as
// sequential children of the currently open phase span. It is a stack
// value; with tracing disabled every call is a nil check. Usage:
//
//	rt := roundTrace{in: in}
//	for ... { rt.begin(lvl, len(frontier)); ... }
//	rt.done()
type roundTrace struct {
	in   *instance
	cur  *obs.Span
	seen int   // rounds begun, for the cap
	n    int64 // rounds merged into the tail span
	tail bool
}

// begin closes the previous round span and opens the next, recording
// the round's index and frontier size. From round traceRoundCap on,
// it opens (once) a single tail span that absorbs the rest.
func (rt *roundTrace) begin(index, frontier int) {
	in := rt.in
	if in.tr == nil {
		return
	}
	if rt.tail {
		rt.n++
		return
	}
	if rt.cur != nil {
		in.tr.End(rt.cur, in.retrievals)
	}
	rt.seen++
	if rt.seen > traceRoundCap {
		rt.tail = true
		rt.n = 1
		rt.cur = in.tr.Start("rounds", in.retrievals)
		rt.cur.Set("from", int64(index))
		return
	}
	rt.cur = in.tr.Start("round", in.retrievals)
	rt.cur.Set("index", int64(index))
	rt.cur.Set("frontier", int64(frontier))
}

// done closes the open round (or tail) span.
func (rt *roundTrace) done() {
	if rt.cur == nil {
		return
	}
	if rt.tail {
		rt.cur.Set("rounds", rt.n)
	}
	rt.in.tr.End(rt.cur, rt.in.retrievals)
	rt.cur = nil
}
