// Package core implements the query-evaluation methods of Saccà &
// Zaniolo, "Magic Counting Methods" (SIGMOD 1987), for the canonical
// strongly linear query class
//
//	?- P(a, Y).
//	P(X, Y) :- E(X, Y).
//	P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
//
// It provides the two baselines — the counting method and the magic
// set method (§2) — and the full magic counting family: the basic,
// single, multiple, and recurring strategies for constructing the
// reduced sets RM and RC (§§6–9), each in independent (§4) and
// integrated (§5) mode.
//
// Costs are accounted in the paper's unit, tuple retrievals from the
// database relations L, E, and R (plus dedup probes on derived
// relations), so the Θ bounds of Tables 1–5 can be measured directly.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"magiccounting/internal/graph"
	"magiccounting/internal/obs"
)

// ErrUnsafe reports that the pure counting method would not terminate:
// the magic graph has a recurring node, so the counting set is
// infinite (the "unsafe" entry of Table 1).
var ErrUnsafe = errors.New("core: counting method is unsafe (cyclic magic graph)")

// Pair is one fact of a binary database relation.
type Pair struct {
	From, To string
}

// P is shorthand for constructing a Pair.
func P(from, to string) Pair { return Pair{From: from, To: to} }

// Query is an instance of the canonical strongly linear query: the
// three database relations and the bound constant of the query goal
// ?- P(Source, Y).
//
// In the same-generation reading, L and R are both the parent
// relation and E is the identity (everyone is their own generation
// peer); the general form lets the three relations differ.
type Query struct {
	L      []Pair
	E      []Pair
	R      []Pair
	Source string
}

// SameGeneration builds the classic instance: L = R = parent and
// E = {(x, x) | x occurs anywhere in parent or equals source}.
func SameGeneration(parent []Pair, source string) Query {
	seen := make(map[string]bool)
	var e []Pair
	add := func(x string) {
		if !seen[x] {
			seen[x] = true
			e = append(e, Pair{x, x})
		}
	}
	add(source)
	for _, p := range parent {
		add(p.From)
		add(p.To)
	}
	return Query{L: parent, E: e, R: parent, Source: source}
}

// instance is the interned graph form of a Query. L-nodes and R-nodes
// live in separate id spaces, as in the paper's query graph: the same
// constant occurring in L and in R yields two distinct nodes.
type instance struct {
	lNames []string
	rNames []string

	lOut [][]int32 // G_L arcs: L-node -> L-nodes
	lIn  [][]int32 // reverse of lOut
	eOut [][]int32 // G_E arcs: L-node -> R-nodes
	rOut [][]int32 // descent arcs: rOut[c] = {b : (b, c) in R}

	src int32 // source L-node

	retrievals int64 // tuple retrievals charged so far

	workers      int // frontier workers; <= 1 means sequential
	parThreshold int // min frontier size for a parallel round

	// tr receives the run's span tree; nil when tracing is off, in
	// which case every instrumentation point is one nil check at a
	// stage or round boundary — never per tuple.
	tr *obs.Trace

	ctx       context.Context // nil when cancellation is disabled
	ctxStride int64           // charges since the last deadline poll
	ctxErr    error           // sticky ctx.Err(), set once observed
}

// ctxPollStride bounds how many charge calls may pass between two
// polls of ctx.Err(). Each charge call corresponds to at least one
// tuple retrieval, so a stride of 1024 keeps cancellation latency in
// the microsecond range without putting a syscall-ish check on the
// hot path.
const ctxPollStride = 1024

// setContext arms cancellation. A nil or Background context leaves
// the instance uncancellable (zero overhead in charge).
func (in *instance) setContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	in.ctx = ctx
}

// configure applies run options: cancellation context, the frontier
// worker pool, and the trace sink.
func (in *instance) configure(opts Options) {
	in.tr = opts.Trace
	in.setContext(opts.Ctx)
	in.workers = resolveWorkers(opts.Workers)
	in.parThreshold = opts.ParallelThreshold
	if in.parThreshold <= 0 {
		in.parThreshold = defaultParallelThreshold
	}
}

// stopped reports whether the run's context has been observed as
// cancelled. Fixpoint loops test it in their conditions so a
// timed-out query stops mid-fixpoint instead of burning CPU.
func (in *instance) stopped() bool { return in.ctxErr != nil }

// pollCtx forces an immediate deadline check (used at phase
// boundaries, where a check is cheap relative to the phase).
func (in *instance) pollCtx() {
	if in.ctx != nil && in.ctxErr == nil {
		in.ctxErr = in.ctx.Err()
	}
}

// build interns a query into graph form. The source and E-arc
// endpoints are interned even when they do not occur in L or R, so
// answers that the paper's pure graph formalism would not draw (exit
// tuples leaving the L/R domains) are still produced.
func build(q Query) *instance {
	in := &instance{}
	lid := make(map[string]int32)
	rid := make(map[string]int32)
	internL := func(name string) int32 {
		if id, ok := lid[name]; ok {
			return id
		}
		id := int32(len(in.lNames))
		lid[name] = id
		in.lNames = append(in.lNames, name)
		in.lOut = append(in.lOut, nil)
		in.lIn = append(in.lIn, nil)
		in.eOut = append(in.eOut, nil)
		return id
	}
	internR := func(name string) int32 {
		if id, ok := rid[name]; ok {
			return id
		}
		id := int32(len(in.rNames))
		rid[name] = id
		in.rNames = append(in.rNames, name)
		in.rOut = append(in.rOut, nil)
		return id
	}
	in.src = internL(q.Source)
	type arc struct{ u, v int32 }
	addUnique := func(seen map[arc]bool, u, v int32) bool {
		a := arc{u, v}
		if seen[a] {
			return false
		}
		seen[a] = true
		return true
	}
	lSeen := make(map[arc]bool)
	for _, p := range q.L {
		u, v := internL(p.From), internL(p.To)
		if addUnique(lSeen, u, v) {
			in.lOut[u] = append(in.lOut[u], v)
			in.lIn[v] = append(in.lIn[v], u)
		}
	}
	eSeen := make(map[arc]bool)
	for _, p := range q.E {
		u, v := internL(p.From), internR(p.To)
		if addUnique(eSeen, u, v) {
			in.eOut[u] = append(in.eOut[u], v)
		}
	}
	rSeen := make(map[arc]bool)
	for _, p := range q.R {
		b, c := internR(p.From), internR(p.To)
		if addUnique(rSeen, b, c) {
			in.rOut[c] = append(in.rOut[c], b)
		}
	}
	return in
}

// charge adds n tuple retrievals and, every ctxPollStride calls,
// polls the run's context so long fixpoints notice cancellation.
func (in *instance) charge(n int64) {
	in.retrievals += n
	if in.ctx != nil {
		in.ctxStride++
		if in.ctxStride >= ctxPollStride {
			in.ctxStride = 0
			if in.ctxErr == nil {
				in.ctxErr = in.ctx.Err()
			}
		}
	}
}

// lGraph converts the magic graph G_L to a graph.Digraph for analysis.
func (in *instance) lGraph() *graph.Digraph {
	g := graph.NewDigraph(len(in.lNames))
	for u := range in.lOut {
		for _, v := range in.lOut[u] {
			g.AddArc(u, int(v))
		}
	}
	return g
}

// answerNames maps an answer node set to constant names, sorted once
// here at result construction.
func (in *instance) answerNames(set *denseSet) []string {
	out := make([]string, 0, set.size())
	for _, id := range set.members() {
		out = append(out, in.rNames[id])
	}
	sort.Strings(out)
	return out
}

// Stats describes one method run: its cost in the paper's unit and
// the sizes of the intermediate sets.
type Stats struct {
	// Retrievals is the total tuple-retrieval cost.
	Retrievals int64
	// Iterations counts fixpoint rounds across all phases.
	Iterations int
	// MagicSetSize is |MS| where the method computes it (0 otherwise).
	MagicSetSize int
	// CountingSetSize is the number of (index, node) pairs in the
	// counting set or reduced counting set used.
	CountingSetSize int
	// RMSize and RCSize are the reduced-set sizes for magic counting
	// methods (RCSize counts (index, node) pairs).
	RMSize, RCSize int
	// Regular reports whether Step 1 found the magic graph regular
	// (all nodes single), where that is determined.
	Regular bool
}

// Result is a method's answer set with its statistics.
type Result struct {
	// Answers holds the sorted constants y with P(source, y).
	Answers []string
	Stats   Stats
}

// String summarizes the result for logs and examples.
func (r *Result) String() string {
	return fmt.Sprintf("%d answers, %d tuple retrievals, %d iterations",
		len(r.Answers), r.Stats.Retrievals, r.Stats.Iterations)
}
