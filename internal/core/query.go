// Package core implements the query-evaluation methods of Saccà &
// Zaniolo, "Magic Counting Methods" (SIGMOD 1987), for the canonical
// strongly linear query class
//
//	?- P(a, Y).
//	P(X, Y) :- E(X, Y).
//	P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
//
// It provides the two baselines — the counting method and the magic
// set method (§2) — and the full magic counting family: the basic,
// single, multiple, and recurring strategies for constructing the
// reduced sets RM and RC (§§6–9), each in independent (§4) and
// integrated (§5) mode.
//
// Costs are accounted in the paper's unit, tuple retrievals from the
// database relations L, E, and R (plus dedup probes on derived
// relations), so the Θ bounds of Tables 1–5 can be measured directly.
//
// The database relations compile once into an immutable Compiled
// artifact (CSR adjacency plus interned symbol tables) that any
// number of concurrent queries share; the Query.Solve* methods are
// thin compile-and-run wrappers over it.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"magiccounting/internal/graph"
	"magiccounting/internal/obs"
)

// ErrUnsafe reports that the pure counting method would not terminate:
// the magic graph has a recurring node, so the counting set is
// infinite (the "unsafe" entry of Table 1).
var ErrUnsafe = errors.New("core: counting method is unsafe (cyclic magic graph)")

// Pair is one fact of a binary database relation.
type Pair struct {
	From, To string
}

// P is shorthand for constructing a Pair.
func P(from, to string) Pair { return Pair{From: from, To: to} }

// Query is an instance of the canonical strongly linear query: the
// three database relations and the bound constant of the query goal
// ?- P(Source, Y).
//
// In the same-generation reading, L and R are both the parent
// relation and E is the identity (everyone is their own generation
// peer); the general form lets the three relations differ.
type Query struct {
	L      []Pair
	E      []Pair
	R      []Pair
	Source string
}

// SameGeneration builds the classic instance: L = R = parent and
// E = {(x, x) | x occurs anywhere in parent or equals source}.
func SameGeneration(parent []Pair, source string) Query {
	seen := make(map[string]bool)
	var e []Pair
	add := func(x string) {
		if !seen[x] {
			seen[x] = true
			e = append(e, Pair{x, x})
		}
	}
	add(source)
	for _, p := range parent {
		add(p.From)
		add(p.To)
	}
	return Query{L: parent, E: e, R: parent, Source: source}
}

// instance is the per-run state of one query evaluation: a bound
// source over a shared *Compiled, plus the retrieval meter, trace
// sink, and cancellation state. It is cheap to create (bind is O(1))
// and never outlives the run; everything heavy lives in the Compiled.
type instance struct {
	c *Compiled

	// nL and nR are the effective domain sizes for this run. nL is
	// len(c.lNames) plus one when the source is a virtual node (a
	// constant occurring in no relation), so every n-dependent bound
	// and charge matches a build that interned the source.
	nL, nR int

	src     int32  // source L-node (may be the virtual id len(c.lNames))
	srcName string // the source constant, for the virtual node's name

	retrievals int64 // tuple retrievals charged so far

	workers      int // frontier workers; <= 1 means sequential
	parThreshold int // min frontier size for a parallel round

	// tr receives the run's span tree; nil when tracing is off, in
	// which case every instrumentation point is one nil check at a
	// stage or round boundary — never per tuple.
	tr *obs.Trace

	ctx       context.Context // nil when cancellation is disabled
	deadline  time.Time       // ctx's deadline, zero when it has none
	ctxStride int64           // charges since the last deadline poll
	ctxErr    error           // sticky ctx.Err(), set once observed
}

// Adjacency accessors: one bounds check over the shared CSR graphs.
// The virtual source id falls past every offset table and reads as an
// empty row.
func (in *instance) lOut(x int32) []int32 { return in.c.lOut.row(x) }
func (in *instance) lIn(x int32) []int32  { return in.c.lIn.row(x) }
func (in *instance) eOut(x int32) []int32 { return in.c.eOut.row(x) }
func (in *instance) rOut(y int32) []int32 { return in.c.rOut.row(y) }

// lName resolves an L-node id to its constant, covering the virtual
// source node.
func (in *instance) lName(v int32) string {
	if int(v) < len(in.c.lNames) {
		return in.c.lNames[v]
	}
	return in.srcName
}

// lNamesFull returns the L-domain name table for this run, appending
// the virtual source when the run has one. Callers receive a slice
// they may keep: it is either the shared immutable table or a fresh
// copy.
func (in *instance) lNamesFull() []string {
	if in.nL == len(in.c.lNames) {
		return in.c.lNames
	}
	out := make([]string, 0, in.nL)
	out = append(out, in.c.lNames...)
	return append(out, in.srcName)
}

// ctxPollStride bounds how many charge calls may pass between two
// polls of ctx.Err(). Each charge call corresponds to at least one
// tuple retrieval, so a stride of 1024 keeps cancellation latency in
// the microsecond range without putting a syscall-ish check on the
// hot path.
const ctxPollStride = 1024

// setContext arms cancellation. A nil or Background context leaves
// the instance uncancellable (zero overhead in charge). The deadline
// is captured separately because ctx.Err() only flips when the
// context's timer goroutine fires — which coarse-timer environments
// delay by tens of milliseconds — while a fast solve can finish
// first; polls compare the clock against the deadline directly so a
// timed-out run is caught at the next poll regardless of timer
// resolution.
func (in *instance) setContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	in.ctx = ctx
	if d, ok := ctx.Deadline(); ok {
		in.deadline = d
	}
}

// observeCtx is the shared poll body: sticky ctx.Err() first, then the
// direct deadline comparison.
func (in *instance) observeCtx() {
	if in.ctxErr = in.ctx.Err(); in.ctxErr == nil &&
		!in.deadline.IsZero() && time.Now().After(in.deadline) {
		in.ctxErr = context.DeadlineExceeded
	}
}

// configure applies run options: cancellation context, the frontier
// worker pool, and the trace sink.
func (in *instance) configure(opts Options) {
	in.tr = opts.Trace
	in.setContext(opts.Ctx)
	in.workers = resolveWorkers(opts.Workers)
	in.parThreshold = opts.ParallelThreshold
	if in.parThreshold <= 0 {
		in.parThreshold = defaultParallelThreshold
	}
}

// stopped reports whether the run's context has been observed as
// cancelled. Fixpoint loops test it in their conditions so a
// timed-out query stops mid-fixpoint instead of burning CPU.
func (in *instance) stopped() bool { return in.ctxErr != nil }

// pollCtx forces an immediate deadline check (used at phase
// boundaries, where a check is cheap relative to the phase).
func (in *instance) pollCtx() {
	if in.ctx != nil && in.ctxErr == nil {
		in.observeCtx()
	}
}

// build compiles a query and binds its source — the one-shot path the
// Query.Solve* wrappers and the internal tests use. Serving paths
// call Compile once and bind per query instead.
func build(q Query) *instance {
	return Compile(q.L, q.E, q.R).bind(q.Source)
}

// charge adds n tuple retrievals and, every ctxPollStride calls,
// polls the run's context so long fixpoints notice cancellation.
func (in *instance) charge(n int64) {
	in.retrievals += n
	if in.ctx != nil {
		in.ctxStride++
		if in.ctxStride >= ctxPollStride {
			in.ctxStride = 0
			if in.ctxErr == nil {
				in.observeCtx()
			}
		}
	}
}

// lGraph returns the magic graph G_L as a graph.Digraph for analysis.
// The compiled artifact carries it prebuilt; only a run with a
// virtual source needs the one-node extension, built on demand.
func (in *instance) lGraph() *graph.Digraph {
	if in.nL == len(in.c.lNames) {
		return in.c.lg
	}
	g := graph.NewDigraph(in.nL)
	for u := 0; u < len(in.c.lNames); u++ {
		for _, v := range in.c.lOut.row(int32(u)) {
			g.AddArc(u, int(v))
		}
	}
	return g
}

// answerNames maps an answer node set to constant names, sorted once
// here at result construction.
func (in *instance) answerNames(set *denseSet) []string {
	out := make([]string, 0, set.size())
	for _, id := range set.members() {
		out = append(out, in.c.rNames[id])
	}
	sort.Strings(out)
	return out
}

// Stats describes one method run: its cost in the paper's unit and
// the sizes of the intermediate sets.
type Stats struct {
	// Retrievals is the total tuple-retrieval cost.
	Retrievals int64
	// Iterations counts fixpoint rounds across all phases.
	Iterations int
	// MagicSetSize is |MS| where the method computes it (0 otherwise).
	MagicSetSize int
	// CountingSetSize is the number of (index, node) pairs in the
	// counting set or reduced counting set used.
	CountingSetSize int
	// RMSize and RCSize are the reduced-set sizes for magic counting
	// methods (RCSize counts (index, node) pairs).
	RMSize, RCSize int
	// Regular reports whether Step 1 found the magic graph regular
	// (all nodes single), where that is determined.
	Regular bool
}

// Result is a method's answer set with its statistics.
type Result struct {
	// Answers holds the sorted constants y with P(source, y).
	Answers []string
	Stats   Stats
}

// String summarizes the result for logs and examples.
func (r *Result) String() string {
	return fmt.Sprintf("%d answers, %d tuple retrievals, %d iterations",
		len(r.Answers), r.Stats.Retrievals, r.Stats.Iterations)
}
