package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExplainIntegratedOnFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := Explain(&buf, fig2Query(), Multiple, Integrated); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"strategy=multiple mode=integrated",
		"classification: cyclic",
		"single:", "multiple:", "recurring:",
		"i_x = 2",
		"RM = [g h i j k l]",
		"theorem conditions",
		"(0,source) ∈ RC",
		"step 2 (integrated)",
		"answers:",
		"counting unsafe",
		"magic set",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in explain output:\n%s", want, out)
		}
	}
}

func TestExplainIndependentOnRegular(t *testing.T) {
	var buf bytes.Buffer
	if err := Explain(&buf, chainQuery(6), Basic, Independent); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "classification: regular") {
		t.Fatalf("missing regular classification:\n%s", out)
	}
	if !strings.Contains(out, "step 2 (independent)") {
		t.Fatalf("missing independent plan:\n%s", out)
	}
	if !strings.Contains(out, "for comparison: counting") {
		t.Fatalf("missing comparison:\n%s", out)
	}
}

func TestExplainAcyclic(t *testing.T) {
	var buf bytes.Buffer
	if err := Explain(&buf, fig1Acyclic(), Single, Integrated); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "acyclic non-regular") {
		t.Fatalf("missing acyclic classification:\n%s", buf.String())
	}
}

func TestExplainUnknownStrategy(t *testing.T) {
	var buf bytes.Buffer
	if err := Explain(&buf, chainQuery(3), Strategy(99), Independent); err == nil {
		t.Fatal("unknown strategy should error")
	}
}
