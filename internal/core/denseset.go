package core

// denseSet is an insert-ordered set of non-negative int32 ids — the
// membership structure behind counting levels, P_M rows, and answer
// sets. Node ids are dense (assigned by interning), so membership is
// a bitset probe; the insertion-order list makes iteration cheap and
// deterministic. Small sets skip the bitset entirely: most counting
// levels hold a handful of nodes, and a linear scan of ≤16 ints beats
// any hashing. The zero value is an empty set.
type denseSet struct {
	list []int32  // members in insertion order
	bits []uint64 // membership bitmap, built once the list outgrows denseSmall
}

// denseSmall is the list length up to which membership is a linear
// scan and no bitset is maintained.
const denseSmall = 16

// has reports whether v is a member.
func (s *denseSet) has(v int32) bool {
	if s.bits != nil {
		w := int(v >> 6)
		return w < len(s.bits) && s.bits[w]&(1<<(uint(v)&63)) != 0
	}
	for _, x := range s.list {
		if x == v {
			return true
		}
	}
	return false
}

func (s *denseSet) setBit(v int32) {
	w := int(v >> 6)
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(v) & 63)
}

// add inserts v, reporting whether it was absent.
func (s *denseSet) add(v int32) bool {
	if s.has(v) {
		return false
	}
	s.list = append(s.list, v)
	if s.bits == nil {
		if len(s.list) > denseSmall {
			for _, x := range s.list {
				s.setBit(x)
			}
		}
	} else {
		s.setBit(v)
	}
	return true
}

// remove deletes v if present, preserving the order of the remaining
// members. It exists for the reduced-set surgery the theorem-boundary
// tests perform, not for any hot path.
func (s *denseSet) remove(v int32) bool {
	if !s.has(v) {
		return false
	}
	for i, x := range s.list {
		if x == v {
			s.list = append(s.list[:i], s.list[i+1:]...)
			break
		}
	}
	if s.bits != nil {
		s.bits[v>>6] &^= 1 << (uint(v) & 63)
	}
	return true
}

// reset empties the set while keeping its backing arrays for reuse
// (the sync.Pool recycling path). The bitmap is cleared before
// truncation so no stale bit can resurface when the capacity is
// regrown.
func (s *denseSet) reset() {
	s.list = s.list[:0]
	clear(s.bits)
	s.bits = s.bits[:0]
}

// members returns the set in insertion order. The slice is the set's
// own storage: callers must not mutate it, and adds during iteration
// are visible to the iterating loop.
func (s *denseSet) members() []int32 { return s.list }

// size returns the number of members.
func (s *denseSet) size() int { return len(s.list) }
