package core

import (
	"math/rand"
	"testing"
)

// residentGroundTruth recomputes a flat artifact's resident-byte
// estimate from first principles: it asserts the artifact really is
// in flat form (no Extend chain, no symbol overlays, no row-form
// graphs) and then walks every table with the estimator's published
// constants written out literally, independent of ResidentBytes'
// own traversal.
func residentGroundTruth(t *testing.T, c *Compiled) int64 {
	t.Helper()
	if c.depth != 0 {
		t.Fatalf("ground truth needs a flat artifact, got depth %d", c.depth)
	}
	if c.lidOv != nil || c.ridOv != nil {
		t.Fatal("ground truth needs a flat artifact, got symbol overlays")
	}
	var b int64
	for _, names := range [][]string{c.lNames, c.rNames} {
		b += int64(len(names)) * 16 // string headers
		for _, s := range names {
			b += int64(len(s))
		}
	}
	b += int64(len(c.lid)+len(c.rid)) * 48 // interning map entries
	for _, g := range []*csr{&c.lOut, &c.lIn, &c.eOut, &c.rOut} {
		if g.rows != nil {
			t.Fatal("ground truth needs a flat artifact, got a row-form graph")
		}
		b += int64(len(g.off)+len(g.arcs)) * 4
	}
	if c.lg != nil {
		b += int64(c.lg.N())*2*24 + int64(c.lg.M())*4
	}
	return b
}

// TestResidentBytesExactOnFlat is the estimator-exactness property
// across seeded instances: on a flat artifact (cold compile, and a
// Flatten of any Extend chain) the estimate must equal the recomputed
// ground-truth walk, and the flat estimate must never exceed the
// chain's estimate — the direction a retention policy relies on when
// it collapses a chain to get back under budget.
func TestResidentBytesExactOnFlat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)

		cold := Compile(q.L, q.E, q.R)
		if got, want := cold.ResidentBytes(), residentGroundTruth(t, cold); got != want {
			t.Fatalf("seed %d: cold estimate %d, ground truth %d", seed, got, want)
		}

		// Build a chain over a random split, then collapse it.
		cut := func(p []Pair) ([]Pair, []Pair) {
			k := rng.Intn(len(p) + 1)
			return p[:k], p[k:]
		}
		bl, dl := cut(q.L)
		be, de := cut(q.E)
		br, dr := cut(q.R)
		chain := Compile(bl, be, br).Extend(dl, de, dr)
		flat := chain.Flatten()
		if got, want := flat.ResidentBytes(), residentGroundTruth(t, flat); got != want {
			t.Fatalf("seed %d: flattened estimate %d, ground truth %d", seed, got, want)
		}
		if flat.ResidentBytes() > chain.ResidentBytes() {
			t.Fatalf("seed %d: flat estimate %d exceeds the chain's %d",
				seed, flat.ResidentBytes(), chain.ResidentBytes())
		}
	}
}
