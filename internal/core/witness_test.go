package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWitnessFig1Answers(t *testing.T) {
	q := fig1Query()
	for _, ans := range fig1Answers {
		p, err := Witness(q, ans)
		if err != nil {
			t.Fatalf("%s: %v", ans, err)
		}
		if err := VerifyProof(q, p); err != nil {
			t.Fatalf("%s: invalid proof %v: %v", ans, p, err)
		}
		if p.RPath[len(p.RPath)-1] != ans {
			t.Fatalf("%s: proof ends at %s", ans, p.RPath[len(p.RPath)-1])
		}
	}
}

func TestWitnessPaperPathForB5(t *testing.T) {
	// The paper: "b5 is in the answer because of the path a, a1, b3, b5".
	p, err := Witness(fig1Query(), "b5")
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 1 {
		t.Fatalf("k = %d, want 1", p.K())
	}
	if p.LPath[1] != "a1" || p.Crossing.To != "b3" || p.RPath[1] != "b5" {
		t.Fatalf("proof = %v, want the paper's path a,a1,b3,b5", p)
	}
}

func TestWitnessUsesCyclicRPathForB3(t *testing.T) {
	// b3 is only reachable through the self-loop at b8 (k = 3).
	p, err := Witness(fig1Query(), "b3")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(fig1Query(), p); err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 {
		t.Fatalf("k = %d, want 3 (via a,a1,a3,a5 and the b8 descent)", p.K())
	}
}

func TestWitnessNonAnswer(t *testing.T) {
	q := fig1Query()
	if _, err := Witness(q, "b6"); err == nil {
		t.Fatal("b6 is not an answer")
	}
	if _, err := Witness(q, "nowhere"); err == nil {
		t.Fatal("unknown constant should error")
	}
}

func TestWitnessOnCyclicMagicGraph(t *testing.T) {
	q := fig1Cyclic()
	for _, ans := range fig1Answers {
		p, err := Witness(q, ans)
		if err != nil {
			t.Fatalf("%s: %v", ans, err)
		}
		if err := VerifyProof(q, p); err != nil {
			t.Fatalf("%s: %v", ans, err)
		}
	}
}

// Property: every answer of a random query has a verifiable witness,
// and no non-answer does.
func TestWitnessCompleteAndSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		res, err := q.SolveNaive()
		if err != nil {
			return false
		}
		isAnswer := map[string]bool{}
		for _, a := range res.Answers {
			isAnswer[a] = true
		}
		for _, a := range res.Answers {
			p, err := Witness(q, a)
			if err != nil {
				t.Logf("seed %d: answer %s has no witness: %v", seed, a, err)
				return false
			}
			if err := VerifyProof(q, p); err != nil {
				t.Logf("seed %d: invalid proof for %s: %v", seed, a, err)
				return false
			}
		}
		// Probe a few non-answers.
		for i := 0; i < 3; i++ {
			name := rName(rng.Intn(7))
			if isAnswer[name] {
				continue
			}
			if _, err := Witness(q, name); err == nil {
				t.Logf("seed %d: non-answer %s got a witness", seed, name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestVerifyProofRejectsTampering(t *testing.T) {
	q := fig1Query()
	p, err := Witness(q, "b5")
	if err != nil {
		t.Fatal(err)
	}
	tampered := *p
	tampered.LPath = append([]string{}, p.LPath...)
	tampered.LPath[0] = "a2"
	if err := VerifyProof(q, &tampered); err == nil {
		t.Error("wrong source not detected")
	}
	tampered2 := *p
	tampered2.Crossing = Pair{From: "a1", To: "b8"}
	if err := VerifyProof(q, &tampered2); err == nil {
		t.Error("wrong crossing not detected")
	}
	tampered3 := *p
	tampered3.RPath = []string{"b3"}
	if err := VerifyProof(q, &tampered3); err == nil {
		t.Error("unequal path lengths not detected")
	}
}

func TestProofString(t *testing.T) {
	p, err := Witness(fig1Query(), "b5")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Fatal("empty proof string")
	}
}

// The Theorem 1 tightness construction from the paper's proof: drop a
// node b from both reduced sets, extend the database with a fresh
// chain hanging off b (the proof's adversarial instance), and the
// method misses the new answer — while CheckReducedSets flags the
// violation beforehand.
func TestTheoremOneTightness(t *testing.T) {
	q := fig2Query()
	rs, names, err := q.ReducedSetsFor(Multiple, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Remove node k (a multiple node in RC... it is in RM for the
	// multiple method; pick f, a single node in RC) from RC.
	var fID int32 = -1
	for v, n := range names {
		if n == "f" {
			fID = int32(v)
		}
	}
	for j := range rs.RC.levels {
		rs.RC.remove(j, fID)
	}
	if err := CheckReducedSets(q, rs, Independent); err == nil {
		t.Fatal("checker should flag the dropped node")
	}
	// The proof's construction: attach e-arc f -> w2, R-chain
	// w2 -> w1 -> w0 (f is at distance 2, so k = 2 descent steps land
	// on w0), making w0 an answer the crippled sets must miss.
	adv := q
	adv.E = append(append([]Pair(nil), q.E...), P("f", "w2"))
	adv.R = append(append([]Pair(nil), q.R...), P("w1", "w2"), P("w0", "w1"))
	want, err := adv.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(want.Answers, "w0") {
		t.Fatalf("w0 should be an answer of the adversarial instance: %v", want.Answers)
	}
	got, err := SolveWithReducedSets(adv, rs, Independent)
	if err != nil {
		t.Fatal(err)
	}
	if containsString(got.Answers, "w0") {
		t.Fatal("crippled reduced sets should miss w0 (Theorem 1 tightness)")
	}
}

// With valid reduced sets, SolveWithReducedSets matches the normal
// entry point.
func TestSolveWithReducedSetsMatchesSolver(t *testing.T) {
	q := fig2Query()
	for _, spec := range allMagicCountingSpecs() {
		rs, _, err := q.ReducedSetsFor(spec.Strategy, spec.Mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := SolveWithReducedSets(q, rs, spec.Mode)
		if err != nil {
			t.Fatal(err)
		}
		normal, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if !equalAnswers(direct.Answers, normal.Answers) {
			t.Fatalf("%v/%v: %v vs %v", spec.Strategy, spec.Mode, direct.Answers, normal.Answers)
		}
	}
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
