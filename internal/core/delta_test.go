// Delta-compilation equivalence suite: Extend(dL,dE,dR) on a
// compiled prefix must be indistinguishable from a cold Compile over
// the concatenated relations — structurally (same symbol tables, same
// per-row CSR contents and order, same magic graph) and
// observationally (byte-identical Results, Stats included, for every
// method). The suite drives seeded workload.RandomRegime instances
// through randomized prefix/delta splits, multi-step extend chains,
// and the snapshot codec, and a fuzz target extends the split search.
package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// splitQuery cuts each relation of q at the given fractions of its
// length: the prefix plays the already-compiled database, the tail
// the append delta.
func splitQuery(q core.Query, fl, fe, fr float64) (base, delta core.Query) {
	cut := func(p []core.Pair, f float64) ([]core.Pair, []core.Pair) {
		k := int(f * float64(len(p)))
		return p[:k], p[k:]
	}
	base.Source, delta.Source = q.Source, q.Source
	base.L, delta.L = cut(q.L, fl)
	base.E, delta.E = cut(q.E, fe)
	base.R, delta.R = cut(q.R, fr)
	return base, delta
}

// checkExtendEquivalence compiles base, extends by delta, and demands
// the result match a cold compile of the whole instance: structural
// identity, then identical solver outcomes across methods and a few
// sources (including one interned only by the delta and one absent
// everywhere).
func checkExtendEquivalence(t *testing.T, label string, whole, base, delta core.Query) {
	t.Helper()
	cold := core.Compile(whole.L, whole.E, whole.R)
	parent := core.Compile(base.L, base.E, base.R)
	ext := parent.Extend(delta.L, delta.E, delta.R)
	if err := ext.StructuralEqual(cold); err != nil {
		t.Fatalf("%s: extended artifact diverges from cold compile: %v", label, err)
	}
	// The parent must be untouched by the extension (in-flight queries
	// keep using it): re-extending must still match.
	again := parent.Extend(delta.L, delta.E, delta.R)
	if err := again.StructuralEqual(cold); err != nil {
		t.Fatalf("%s: second Extend of the same parent diverges: %v", label, err)
	}
	sources := []string{whole.Source, "absent-from-everything"}
	if len(delta.L) > 0 {
		sources = append(sources, delta.L[len(delta.L)-1].To)
	}
	for _, src := range sources {
		for _, s := range equivStrategies {
			for _, m := range equivModes {
				want, werr := cold.Solve(src, s, m, core.Options{})
				got, gerr := ext.Solve(src, s, m, core.Options{})
				checkSame(t, fmt.Sprintf("%s src=%s %v/%v", label, src, s, m), want, werr, got, gerr)
			}
		}
		want, wsel, werr := cold.SolveAuto(src, core.Options{})
		got, gsel, gerr := ext.SolveAuto(src, core.Options{})
		checkSame(t, fmt.Sprintf("%s src=%s auto", label, src), want, werr, got, gerr)
		if werr == nil && !reflect.DeepEqual(wsel, gsel) {
			t.Errorf("%s src=%s: auto selection diverged: %+v != %+v", label, src, wsel, gsel)
		}
	}
}

// TestExtendAgainstCompile is the property test over the seeded regime
// generators: for every regime kind, seed, and a few random splits,
// Compile(prefix)+Extend(tail) ≡ Compile(whole).
func TestExtendAgainstCompile(t *testing.T) {
	kinds := []struct {
		name string
		kind workload.RegimeKind
	}{
		{"regular", workload.KindRegular},
		{"cyclic-regular", workload.KindCyclicRegular},
		{"multiple", workload.KindMultiple},
		{"recurring", workload.KindRecurring},
	}
	for _, k := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			q := workload.RandomRegime(k.kind, seed, 3)
			rng := rand.New(rand.NewSource(seed * 977))
			for split := 0; split < 3; split++ {
				fl, fe, fr := rng.Float64(), rng.Float64(), rng.Float64()
				label := fmt.Sprintf("%s/seed=%d/split=%.2f,%.2f,%.2f", k.name, seed, fl, fe, fr)
				base, delta := splitQuery(q, fl, fe, fr)
				checkExtendEquivalence(t, label, q, base, delta)
			}
		}
	}
}

// TestExtendEdgeCases pins the boundary shapes: empty parent, empty
// delta, delta entirely duplicating the parent (idempotency), and a
// delta touching a single relation (the wholesale-aliasing path).
func TestExtendEdgeCases(t *testing.T) {
	q := workload.Lasso(5, 4)
	cold := core.Compile(q.L, q.E, q.R)

	t.Run("empty-parent", func(t *testing.T) {
		ext := core.Compile(nil, nil, nil).Extend(q.L, q.E, q.R)
		if err := ext.StructuralEqual(cold); err != nil {
			t.Fatalf("extend from empty diverges: %v", err)
		}
	})
	t.Run("empty-delta", func(t *testing.T) {
		ext := cold.Extend(nil, nil, nil)
		if err := ext.StructuralEqual(cold); err != nil {
			t.Fatalf("empty delta diverges: %v", err)
		}
		if ext.DeltaDepth() != 1 {
			t.Fatalf("DeltaDepth = %d, want 1", ext.DeltaDepth())
		}
	})
	t.Run("duplicate-delta", func(t *testing.T) {
		ext := cold.Extend(q.L, q.E, q.R)
		if err := ext.StructuralEqual(cold); err != nil {
			t.Fatalf("re-sent facts changed the artifact: %v", err)
		}
	})
	t.Run("single-relation", func(t *testing.T) {
		whole := q
		whole.L = append(append([]core.Pair(nil), q.L...), core.Pair{From: "fresh-x", To: "fresh-y"})
		ext := cold.Extend([]core.Pair{{From: "fresh-x", To: "fresh-y"}}, nil, nil)
		if err := ext.StructuralEqual(core.Compile(whole.L, whole.E, whole.R)); err != nil {
			t.Fatalf("L-only delta diverges: %v", err)
		}
		_, eGen, rGen := func() (l, e, r uint64) { return ext.RelationGenerations() }()
		pl, pe, pr := cold.RelationGenerations()
		if eGen != pe || rGen != pr {
			t.Fatalf("untouched relations changed generation: got e=%d r=%d, parent e=%d r=%d", eGen, rGen, pe, pr)
		}
		if l, _, _ := ext.RelationGenerations(); l == pl {
			t.Fatalf("touched L relation kept the parent tag %d", l)
		}
	})
}

// TestExtendChain extends the same artifact many times in sequence —
// the serving layer's rolling-artifact shape — and checks structural
// identity against a cold compile at every step, plus the generation
// stamping contract SetGeneration provides.
func TestExtendChain(t *testing.T) {
	q := workload.RandomRegime(workload.KindMultiple, 7, 3)
	base, rest := splitQuery(q, 0.3, 0.3, 0.3)
	comp := core.Compile(base.L, base.E, base.R)
	comp.SetGeneration(1)
	accL := append([]core.Pair(nil), base.L...)
	accE := append([]core.Pair(nil), base.E...)
	accR := append([]core.Pair(nil), base.R...)

	steps := 8
	for i := 0; i < steps; i++ {
		lo := func(p []core.Pair) []core.Pair {
			k := len(p) / steps
			if i == steps-1 {
				return p[i*k:]
			}
			return p[i*k : (i+1)*k]
		}
		dL, dE, dR := lo(rest.L), lo(rest.E), lo(rest.R)
		next := comp.Extend(dL, dE, dR)
		next.SetGeneration(comp.Generation + 1)
		if next.DeltaDepth() != i+1 {
			t.Fatalf("step %d: DeltaDepth = %d, want %d", i, next.DeltaDepth(), i+1)
		}
		accL = append(accL, dL...)
		accE = append(accE, dE...)
		accR = append(accR, dR...)
		if err := next.StructuralEqual(core.Compile(accL, accE, accR)); err != nil {
			t.Fatalf("step %d: chain diverged from cold compile: %v", i, err)
		}
		// The previous link must still answer for its own prefix.
		if res, err := comp.Solve(q.Source, core.Basic, core.Integrated, core.Options{}); err != nil && res == nil && err.Error() == "" {
			t.Fatalf("step %d: parent artifact broken: %v", i, err)
		}
		comp = next
	}
}

// TestExtendCodecIdentity checks the snapshot interplay: an extended
// artifact encodes through the same flat layout as a cold-compiled
// one, the decode round trip is exact (re-encoding reproduces the
// bytes), and the decoded artifact still compiles the same database
// as the cold build.
func TestExtendCodecIdentity(t *testing.T) {
	q := workload.RandomRegime(workload.KindRecurring, 11, 3)
	base, delta := splitQuery(q, 0.5, 0.4, 0.6)
	cold := core.Compile(q.L, q.E, q.R)
	ext := core.Compile(base.L, base.E, base.R).Extend(delta.L, delta.E, delta.R)
	ext.SetGeneration(42)

	enc := ext.AppendBinary(nil)
	dec, rest, err := core.DecodeCompiled(enc)
	if err != nil {
		t.Fatalf("decode extended encoding: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d bytes", len(rest))
	}
	if dec.Generation != 42 {
		t.Fatalf("decoded generation %d, want 42", dec.Generation)
	}
	if err := dec.StructuralEqual(ext); err != nil {
		t.Fatalf("decoded artifact diverges from the encoded one: %v", err)
	}
	if err := dec.StructuralEqual(cold); err != nil {
		t.Fatalf("decoded artifact diverges from the cold compile: %v", err)
	}
	re := dec.AppendBinary(nil)
	if len(re) != len(enc) {
		t.Fatalf("re-encoding length diverges: %d != %d", len(re), len(enc))
	}
	for i := range re {
		if re[i] != enc[i] {
			t.Fatalf("re-encoding diverges at byte %d", i)
		}
	}
	for _, src := range []string{q.Source, "absent-from-everything"} {
		want, werr := cold.Solve(src, core.Multiple, core.Integrated, core.Options{})
		got, gerr := dec.Solve(src, core.Multiple, core.Integrated, core.Options{})
		checkSame(t, fmt.Sprintf("decoded src=%s", src), want, werr, got, gerr)
	}
}

// FuzzExtendAgainstCompile lets the fuzzer hunt for a (regime, seed,
// split) combination where Extend and Compile disagree.
func FuzzExtendAgainstCompile(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(40), uint8(80), uint8(120))
	f.Add(uint8(1), int64(2), uint8(0), uint8(255), uint8(128))
	f.Add(uint8(2), int64(3), uint8(200), uint8(10), uint8(90))
	f.Add(uint8(3), int64(4), uint8(255), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, kind uint8, seed int64, cl, ce, cr uint8) {
		q := workload.RandomRegime(workload.RegimeKind(kind%4), seed, 2)
		base, delta := splitQuery(q,
			float64(cl)/255, float64(ce)/255, float64(cr)/255)
		cold := core.Compile(q.L, q.E, q.R)
		ext := core.Compile(base.L, base.E, base.R).Extend(delta.L, delta.E, delta.R)
		if err := ext.StructuralEqual(cold); err != nil {
			t.Fatalf("kind=%d seed=%d split=(%d,%d,%d): %v", kind%4, seed, cl, ce, cr, err)
		}
		want, werr := cold.Solve(q.Source, core.Multiple, core.Integrated, core.Options{})
		got, gerr := ext.Solve(q.Source, core.Multiple, core.Integrated, core.Options{})
		checkSame(t, "fuzz", want, werr, got, gerr)
	})
}
