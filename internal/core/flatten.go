package core

import (
	"magiccounting/internal/graph"
)

// This file is the chain-collapse layer: Flatten folds an Extend chain
// back into the self-contained form a cold Compile produces, and
// ResidentBytes estimates how much storage an artifact keeps reachable
// — the two pieces a serving layer needs to keep a long-running
// append-heavy process memory-bounded. An Extend chain aliases its
// parent's storage at every link, so the newest artifact pins every
// ancestor's re-laid rows, row-header tables, and symbol-overlay maps
// back to the last full compile; Flatten rebuilds exactly the arrays a
// cold compile would hold, after which the ancestors become garbage.

// Flatten collapses a delta-extended artifact into a self-contained
// one: the four adjacency graphs are rebuilt in flat CSR form (no
// per-row header tables, no rows aliasing an ancestor's storage), the
// symbol-overlay chains are folded into fresh base interning maps, and
// the magic graph is rebuilt over the flat adjacency — so nothing in
// the result keeps a parent artifact reachable. Generation and the
// per-relation generation tags are preserved; DeltaDepth resets to 0,
// re-arming a serving layer's chain-depth budget.
//
// The result is StructuralEqual to the receiver (identical symbol
// tables and per-row adjacency — Flatten renumbers nothing), and
// therefore to the cold Compile over the same database up to delta
// interning order, exactly like the chain it replaces. The receiver is
// not modified and stays fully usable: in-flight queries keep
// evaluating the chain while its flattened replacement is published.
//
// An artifact that is already self-contained (cold-compiled, decoded,
// or previously flattened) is returned as-is. Cost is O(nodes + arcs)
// — the same order as the cold compile's layout passes, without the
// interning and dedupe hashing.
func (c *Compiled) Flatten() *Compiled {
	if c.depth == 0 && c.lidOv == nil && c.ridOv == nil &&
		c.lOut.rows == nil && c.lIn.rows == nil && c.eOut.rows == nil && c.rOut.rows == nil {
		return c
	}
	nL, nR := len(c.lNames), len(c.rNames)
	f := &Compiled{
		Generation: c.Generation,
		// Fresh backing arrays: the chain's name slices share a backing
		// array with every ancestor (Extend appends to cap-clamped
		// views), so copying is what severs the alias.
		lNames: append(make([]string, 0, nL), c.lNames...),
		rNames: append(make([]string, 0, nR), c.rNames...),
		lid:    make(map[string]int32, nL),
		rid:    make(map[string]int32, nR),
		lGen:   c.lGen,
		eGen:   c.eGen,
		rGen:   c.rGen,
	}
	// Fold the overlay chains away: the name tables list every symbol
	// (base and overlaid) in id order, so rebuilding the base maps from
	// them subsumes the whole chain.
	for i, name := range f.lNames {
		f.lid[name] = int32(i)
	}
	for i, name := range f.rNames {
		f.rid[name] = int32(i)
	}
	f.lOut = c.lOut.flatten(nL)
	f.lIn = c.lIn.flatten(nL)
	f.eOut = c.eOut.flatten(nL)
	f.rOut = c.rOut.flatten(nR)
	// Rebuild the magic graph over the flat forward CSR, exactly as the
	// snapshot decode does: rows alias the flat arc array cap-clamped,
	// so the graph costs headers plus its reverse table, nothing more.
	rows := make([][]int32, nL)
	for u := 0; u < nL; u++ {
		lo, hi := f.lOut.off[u], f.lOut.off[u+1]
		rows[u] = f.lOut.arcs[lo:hi:hi]
	}
	f.lg = graph.FromAdjacency(rows)
	return f
}

// mapEntryBytes is the estimator's cost of one map[string]int32 entry:
// a 16-byte string header and a 4-byte value in the bucket, bucket
// bookkeeping, and load-factor slack. Approximate by design.
const mapEntryBytes = 48

// stringHeaderBytes is the slice-element cost of one name (the header;
// the character bytes are counted separately).
const stringHeaderBytes = 16

// sliceHeaderBytes is the cost of one []int32 row header in a
// rows-form adjacency table.
const sliceHeaderBytes = 24

// ResidentBytes estimates the storage this artifact keeps reachable:
// symbol tables (headers, characters, interning maps, overlay chains),
// the four adjacency graphs, and the magic graph. It is a deterministic
// walk of the artifact's own structure, not a heap measurement — rows
// that alias a slice of an ancestor's larger array are counted at
// their visible length, so a deep Extend chain's estimate understates
// the true pinned set. That bias is the useful direction for a
// retention policy: the flat form's estimate is exact, so when a
// chain's (understated) estimate exceeds a budget, collapsing to the
// flat form genuinely frees at least the difference.
func (c *Compiled) ResidentBytes() int64 {
	if c == nil {
		return 0
	}
	var b int64
	for _, names := range [][]string{c.lNames, c.rNames} {
		b += int64(len(names)) * stringHeaderBytes
		for _, s := range names {
			b += int64(len(s))
		}
	}
	b += int64(len(c.lid)+len(c.rid)) * mapEntryBytes
	for ov := c.lidOv; ov != nil; ov = ov.prev {
		b += int64(len(ov.m))*mapEntryBytes + sliceHeaderBytes
	}
	for ov := c.ridOv; ov != nil; ov = ov.prev {
		b += int64(len(ov.m))*mapEntryBytes + sliceHeaderBytes
	}
	for _, g := range []*csr{&c.lOut, &c.lIn, &c.eOut, &c.rOut} {
		b += g.residentBytes()
	}
	if c.lg != nil {
		// Header tables both ways plus the reverse arc storage; the
		// forward rows alias an adjacency table counted above.
		b += int64(c.lg.N())*2*sliceHeaderBytes + int64(c.lg.M())*4
	}
	return b
}

// residentBytes estimates one adjacency graph's storage: the two flat
// arrays, or the row-header table plus each row's visible arcs.
func (g *csr) residentBytes() int64 {
	if g.rows == nil {
		return int64(len(g.off)+len(g.arcs)) * 4
	}
	b := int64(len(g.rows)) * sliceHeaderBytes
	for _, row := range g.rows {
		b += int64(len(row)) * 4
	}
	return b
}
